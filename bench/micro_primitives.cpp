// Microbenchmarks (google-benchmark) for the primitives the Setchain
// algorithms lean on: SHA-512 hashing, Ed25519 signing/verification, the szx
// codec on the Arbitrum-like workload, canonical epoch hashing, and the
// simulation kernel's event throughput. These justify the CostModel
// constants used in calibrated runs (core/config.hpp).
#include <benchmark/benchmark.h>

#include "codec/lz77.hpp"
#include "core/batch.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/pki.hpp"
#include "crypto/sha512.hpp"
#include "sim/simulation.hpp"
#include "workload/arbitrum_like.hpp"

namespace {

using namespace setchain;

codec::Bytes sample_payload(std::size_t size) {
  workload::ArbitrumLikeGenerator gen(1);
  return gen.make_payload(1, static_cast<std::uint32_t>(size));
}

void BM_Sha512(benchmark::State& state) {
  const codec::Bytes data = sample_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha512::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(438)->Arg(4096)->Arg(65536);

void BM_Ed25519Sign(benchmark::State& state) {
  crypto::Pki pki(1);
  pki.register_process(0);
  const codec::Bytes msg = sample_payload(438);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pki.sign(0, msg));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  crypto::Pki pki(1);
  pki.register_process(0);
  const codec::Bytes msg = sample_payload(438);
  const auto sig = pki.sign(0, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pki.verify(0, msg, sig));
  }
}
BENCHMARK(BM_Ed25519Verify);

void BM_SzxCompressBatch(benchmark::State& state) {
  workload::ArbitrumLikeGenerator gen(2);
  codec::Bytes batch;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    codec::append(batch, gen.make_payload(static_cast<std::uint64_t>(i), gen.sample_size()));
  }
  double ratio = 0;
  for (auto _ : state) {
    const auto comp = codec::lz77_compress(batch);
    ratio = codec::compression_ratio(batch, comp);
    benchmark::DoNotOptimize(comp);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
  state.counters["ratio"] = ratio;
}
BENCHMARK(BM_SzxCompressBatch)->Arg(100)->Arg(500);

void BM_SzxDecompressBatch(benchmark::State& state) {
  workload::ArbitrumLikeGenerator gen(2);
  codec::Bytes batch;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    codec::append(batch, gen.make_payload(static_cast<std::uint64_t>(i), gen.sample_size()));
  }
  const auto comp = codec::lz77_compress(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::lz77_decompress(comp));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_SzxDecompressBatch)->Arg(100)->Arg(500);

void BM_EpochHash(benchmark::State& state) {
  std::vector<std::pair<core::ElementId, std::uint64_t>> ids;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    ids.emplace_back(static_cast<core::ElementId>(i), static_cast<std::uint64_t>(i * 31));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::epoch_hash(1, ids, core::Fidelity::kFull));
  }
}
BENCHMARK(BM_EpochHash)->Arg(100)->Arg(500);

void BM_SimulationEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    int counter = 0;
    for (int i = 0; i < 10'000; ++i) {
      s.schedule_at(i, [&counter] { ++counter; });
    }
    s.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_SimulationEventThroughput);

}  // namespace
