#pragma once

#include <cstdlib>
#include <string>

#include "analysis/model.hpp"
#include "runner/experiment.hpp"
#include "runner/report.hpp"

namespace setchain::bench {

using runner::Algorithm;
using runner::Scenario;

/// SETCHAIN_BENCH_SCALE scales the add window (default 1.0 = the paper's
/// 50 s). Values < 1 shorten every run proportionally for quick iteration;
/// the printed series/tables note the effective window.
inline double bench_scale() {
  if (const char* s = std::getenv("SETCHAIN_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.01 && v <= 1.0) return v;
  }
  return 1.0;
}

/// The paper's evaluation scenario (§4): n servers, clients add for 50 s,
/// CometBFT-like ledger with 0.5 MB blocks at ~0.8 blocks/s.
inline Scenario paper_scenario(Algorithm algo, std::uint32_t n, double rate,
                               std::uint32_t collector, sim::Time delay = 0) {
  Scenario s;
  s.algorithm = algo;
  s.n = n;
  s.sending_rate = rate;
  s.collector_limit = collector;
  s.network_delay = delay;
  s.add_duration = sim::from_seconds(50 * bench_scale());
  s.horizon = sim::from_seconds(300 * bench_scale());
  s.fidelity = core::Fidelity::kCalibrated;
  // The very highest rates drop per-element set bookkeeping (DESIGN.md):
  // workload ids are unique by construction, so the sets only cost memory.
  s.lean_state = rate >= 50'000;
  return s;
}

/// Analytical throughput overlay for a scenario (Appendix D with the run's
/// measured compression ratio).
inline double analytical_throughput(const Scenario& s, double measured_ratio) {
  analysis::ModelParams p;
  p.block_rate = 1.0 / sim::to_seconds(s.block_interval);
  // The paper quotes R ~= 0.8 blocks/s for 1.25 s intervals.
  p.block_capacity = static_cast<double>(s.block_bytes);
  p.n = s.n;
  p.collector_size = s.collector_limit;
  p.compress_ratio = measured_ratio;
  switch (s.algorithm) {
    case Algorithm::kVanilla:
      return analysis::vanilla_throughput(p);
    case Algorithm::kCompresschain:
      return analysis::compresschain_throughput(p);
    case Algorithm::kHashchain:
      return analysis::hashchain_throughput(p);
  }
  return 0.0;
}

}  // namespace setchain::bench
