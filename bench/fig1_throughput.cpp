// Figure 1: throughput over time (rolling 9 s average of committed
// elements/s) for the three Setchain algorithms, 10 servers, no added
// network delay. Panels: (left) 5,000 el/s with collector 100, (center)
// 10,000 el/s with collector 100 (Vanilla excluded, as in the paper),
// (right) 10,000 el/s with collector 500. The dotted analytical bound of
// Appendix D is printed alongside each measured series.
#include "bench_common.hpp"

namespace {

using namespace setchain;
using namespace setchain::bench;

void panel(const char* name, double rate, std::uint32_t collector,
           bool include_vanilla) {
  runner::print_subtitle(std::string("Fig. 1 ") + name + ": rate " +
                         runner::fmt_rate(rate) + " el/s, collector " +
                         std::to_string(collector));
  std::vector<Algorithm> algos;
  if (include_vanilla) algos.push_back(Algorithm::kVanilla);
  algos.push_back(Algorithm::kCompresschain);
  algos.push_back(Algorithm::kHashchain);

  for (const Algorithm algo : algos) {
    const Scenario s = paper_scenario(algo, 10, rate, collector);
    runner::Experiment e(s);
    e.run();
    const auto r = e.result();
    const double analytical = analytical_throughput(s, r.measured_compress_ratio);
    std::printf("\n%s  (analytical bound %.0f el/s, min(rate, bound) = %.0f)\n",
                runner::algorithm_name(algo), analytical,
                std::min(rate, analytical));
    const auto series = e.recorder().committed().rolling_rate(
        sim::from_seconds(9), sim::from_seconds(5), sim::from_seconds(r.sim_seconds) +
                                                        sim::from_seconds(5));
    runner::print_rate_series(runner::algorithm_name(algo), series, 24);
    runner::print_run_summary(s, r);
  }
}

}  // namespace

int main() {
  runner::print_title(
      "Figure 1 - Throughput over time of the Setchain algorithms (10 servers)");
  if (bench_scale() < 1.0) {
    std::printf("note: SETCHAIN_BENCH_SCALE=%.2f shortens the 50 s add window\n",
                bench_scale());
  }
  panel("left", 5'000, 100, /*include_vanilla=*/true);
  panel("center", 10'000, 100, /*include_vanilla=*/false);
  panel("right", 10'000, 500, /*include_vanilla=*/false);
  std::printf(
      "\nExpected shape (paper): Vanilla and Compresschain saturate well below\n"
      "the sending rate and keep committing long after clients stop (stress\n"
      "peak at the end); Hashchain tracks the sending rate and finishes\n"
      "shortly after the last element is added; collector 500 relieves\n"
      "Hashchain at 10k el/s.\n");
  return 0;
}
