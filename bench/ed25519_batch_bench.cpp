// Single-signature vs batch Ed25519 verification throughput at batch sizes
// {1, 8, 64, 512}. Prints a human-readable table plus one machine-readable
// line prefixed with "BENCH " carrying the results as JSON.
//
//   --smoke   reduced workload + correctness self-checks (all-valid batch
//             accepted, forged culprit identified, agreement with scalar
//             verify); exit code 0 only if the checks pass. Registered as a
//             CTest smoke target so the batch path runs on every push.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "crypto/ed25519.hpp"
#include "sim/rng.hpp"

namespace {

using setchain::crypto::Ed25519;

struct Signed {
  Ed25519::PublicKey pub;
  setchain::codec::Bytes msg;
  Ed25519::Signature sig;
};

/// `n` signed messages from a pool of `n_signers` keypairs — the shape of a
/// Setchain block, whose signatures come from a bounded signer set (servers
/// for proofs/hash-batches, a recurring client population for elements).
std::vector<Signed> make_signed(std::size_t n, std::size_t n_signers,
                                std::uint64_t seed_tag) {
  setchain::sim::Rng rng(seed_tag);
  std::vector<std::pair<Ed25519::Seed, Ed25519::PublicKey>> signers(n_signers);
  for (auto& [seed, pub] : signers) {
    for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next_u64());
    pub = Ed25519::public_key(seed);
  }
  std::vector<Signed> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& [seed, pub] = signers[i % n_signers];
    out[i].pub = pub;
    out[i].msg.resize(64);
    for (auto& b : out[i].msg) b = static_cast<std::uint8_t>(rng.next_u64());
    out[i].sig = Ed25519::sign(seed, out[i].pub, out[i].msg);
  }
  return out;
}

std::vector<Ed25519::BatchEntry> entries_of(const std::vector<Signed>& s) {
  std::vector<Ed25519::BatchEntry> out;
  out.reserve(s.size());
  for (const auto& x : s) out.push_back(Ed25519::BatchEntry{&x.pub, x.msg, &x.sig});
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool self_check() {
  bool ok = true;
  // All-valid batch accepted with every verdict true.
  auto good = make_signed(16, 16, 7);
  const auto r1 = Ed25519::verify_batch(entries_of(good));
  ok = ok && r1.all_valid;
  // Exactly one forged entry: the bisection must name it.
  auto forged = make_signed(16, 4, 8);
  forged[9].sig[3] ^= 0x40;
  const auto r2 = Ed25519::verify_batch(entries_of(forged));
  ok = ok && !r2.all_valid;
  for (std::size_t i = 0; i < forged.size(); ++i) ok = ok && r2.valid[i] == (i != 9);
  // Verdicts agree with scalar verify.
  for (std::size_t i = 0; i < forged.size(); ++i) {
    ok = ok && r2.valid[i] == Ed25519::verify(forged[i].pub, forged[i].msg, forged[i].sig);
  }
  if (!ok) std::fprintf(stderr, "ed25519_batch_bench: self-check FAILED\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (!self_check()) return 1;

  // Total signatures verified per mode; smoke keeps CI cheap while still
  // driving every batch size through the real code path.
  const std::size_t total = smoke ? 512 : 4096;
  const std::vector<std::size_t> sizes = {1, 8, 64, 512};
  // Signer-pool size: a Setchain deployment's signature traffic comes from
  // a bounded set of servers and recurring clients.
  const std::size_t n_signers = 16;

  std::printf("ed25519 batch verification bench (%zu signatures per mode, %zu signers%s)\n",
              total, n_signers, smoke ? ", smoke" : "");

  // Baseline: scalar verify, one signature at a time.
  const auto pool = make_signed(std::min<std::size_t>(total, 512), n_signers, 42);
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t valid = 0;
  for (std::size_t i = 0; i < total; ++i) {
    const auto& s = pool[i % pool.size()];
    valid += Ed25519::verify(s.pub, s.msg, s.sig) ? 1 : 0;
  }
  const double single_s = seconds_since(t0);
  if (valid != total) {
    std::fprintf(stderr, "ed25519_batch_bench: scalar baseline rejected a valid sig\n");
    return 1;
  }
  const double single_rate = static_cast<double>(total) / single_s;
  std::printf("  %-12s %10.0f verifies/s  (%.1f us/sig)\n", "single", single_rate,
              1e6 * single_s / static_cast<double>(total));

  std::string json = "{\"name\":\"ed25519_batch\",\"total_sigs\":" + std::to_string(total) +
                     ",\"smoke\":" + (smoke ? std::string("true") : std::string("false")) +
                     ",\"single_verifies_per_s\":" + std::to_string(single_rate) +
                     ",\"batch\":[";

  bool batch64_ok = false;
  for (std::size_t bi = 0; bi < sizes.size(); ++bi) {
    const std::size_t bsz = sizes[bi];
    const auto batch_pool = make_signed(bsz, n_signers, 1000 + bsz);
    const auto batch_entries = entries_of(batch_pool);
    const std::size_t rounds = (total + bsz - 1) / bsz;
    const auto t1 = std::chrono::steady_clock::now();
    bool all = true;
    for (std::size_t r = 0; r < rounds; ++r) {
      all = all && Ed25519::verify_batch(batch_entries).all_valid;
    }
    const double batch_s = seconds_since(t1);
    if (!all) {
      std::fprintf(stderr, "ed25519_batch_bench: batch-%zu rejected valid sigs\n", bsz);
      return 1;
    }
    const double rate = static_cast<double>(rounds * bsz) / batch_s;
    const double speedup = rate / single_rate;
    if (bsz == 64) batch64_ok = speedup >= 2.0;
    std::printf("  batch-%-6zu %10.0f verifies/s  (%.1f us/sig, %.2fx single)\n", bsz,
                rate, 1e6 * batch_s / static_cast<double>(rounds * bsz), speedup);
    json += std::string(bi ? "," : "") + "{\"size\":" + std::to_string(bsz) +
            ",\"verifies_per_s\":" + std::to_string(rate) +
            ",\"speedup\":" + std::to_string(speedup) + "}";
  }
  json += "]}";
  std::printf("BENCH %s\n", json.c_str());

  if (!batch64_ok) {
    // Advisory in smoke mode (shared CI runners have noisy clocks); a hard
    // failure locally where the measurement is meaningful.
    std::fprintf(stderr, "ed25519_batch_bench: batch-64 speedup below 2x single\n");
    if (!smoke) return 1;
  }
  return 0;
}
