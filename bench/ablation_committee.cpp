// Ablation (paper §4.1, proposed improvement): "More efficient methods could
// be employed, such as having only a set of 2f+1 servers sign each
// batch-hash". This bench compares full co-signing (every server signs every
// batch-hash — the evaluated algorithm) against a deterministic 2f+1
// committee at the stress point of Fig. 1 center (10 servers, 10,000 el/s,
// collector 100), where the hash-reversal path saturates.
#include "bench_common.hpp"

int main() {
  using namespace setchain;
  using namespace setchain::bench;

  runner::print_title(
      "Ablation - Hashchain signer committee (10 servers, 10k el/s, c=100)");

  struct Config {
    const char* name;
    std::uint32_t committee;
  };
  const std::uint32_t n = 10;
  const std::uint32_t f = (n - 1) / 3;  // 3
  const Config configs[] = {
      {"all servers sign (paper)", 0},
      {"2f+1 committee", 2 * f + 1},
      {"f+1 committee (minimum)", f + 1},
  };

  std::vector<std::vector<std::string>> rows;
  for (const Config& c : configs) {
    Scenario s = paper_scenario(Algorithm::kHashchain, n, 10'000, 100);
    s.hashchain_committee = c.committee;
    runner::Experiment e(s);
    e.run();
    const auto r = e.result();
    rows.push_back({c.name, runner::fmt_eff(r.efficiency_50),
                    runner::fmt_eff(r.efficiency_100),
                    runner::fmt_rate(r.avg_throughput_50s),
                    std::to_string(r.net_bytes / 1'000'000) + " MB",
                    std::to_string(r.blocks)});
    runner::print_run_summary(s, r);
  }
  runner::print_table({"Signing policy", "eff@50s", "eff@100s", "avg el/s (50s)",
                       "network traffic", "blocks"},
                      rows);
  std::printf(
      "\nExpected shape: the committee cuts hash-batch ledger transactions and\n"
      "reversal requests per batch from n to ~committee size, relieving the\n"
      "bottleneck the paper identified — higher efficiency and less traffic\n"
      "at the same sending rate. f+1 is the smallest committee that can still\n"
      "consolidate; it helps further but leaves no slack under faults.\n");
  return 0;
}
