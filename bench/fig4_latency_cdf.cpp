// Figure 4: cumulative distribution of the latency experienced by elements
// until they reach five stages: (1) first CometBFT mempool, (2) f+1
// mempools, (3) all mempools, (4) inclusion in a ledger block, (5) commit
// (f+1 epoch-proofs on the ledger). Scenario: 10 servers, 1,250 el/s,
// collector 100, no added delay — one panel per algorithm.
#include "bench_common.hpp"
#include "metrics/stats.hpp"

namespace {

using namespace setchain;
using namespace setchain::bench;

void panel(Algorithm algo) {
  Scenario s = paper_scenario(algo, 10, 1'250, 100);
  s.per_element_metrics = true;
  runner::Experiment e(s);
  e.run();
  const auto r = e.result();

  runner::print_subtitle(std::string("Fig. 4 ") + runner::algorithm_name(algo));
  auto& rec = e.recorder();
  const struct {
    const char* name;
    metrics::Stage stage;
  } stages[] = {
      {"First mempool", metrics::Stage::kMempoolFirst},
      {"f+1 mempools", metrics::Stage::kMempoolQuorum},
      {"All mempools", metrics::Stage::kMempoolAll},
      {"Ledger", metrics::Stage::kLedger},
      {"f+1 epoch-proofs", metrics::Stage::kCommitted},
  };
  for (const auto& st : stages) {
    runner::print_cdf_quantiles(st.name, rec.stage_latencies(st.stage));
  }
  runner::print_run_summary(s, r);
}

}  // namespace

int main() {
  runner::print_title(
      "Figure 4 - Latency CDF per pipeline stage (10 servers, 1,250 el/s, c=100)");
  panel(Algorithm::kVanilla);
  panel(Algorithm::kCompresschain);
  panel(Algorithm::kHashchain);
  std::printf(
      "\nExpected shape (paper): Vanilla reaches mempools almost immediately\n"
      "(elements go straight to CometBFT) but takes tens of seconds to reach\n"
      "the ledger and commit; Compresschain/Hashchain delay the mempool stages\n"
      "by the collector wait, then commit within one-two seconds of reaching\n"
      "the ledger — commit latency below ~4 s with probability ~1.\n");
  return 0;
}
