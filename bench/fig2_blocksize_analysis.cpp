// Figure 2 (right): analytical throughput of the three Setchain algorithms
// for ledger block sizes 0.5 MB .. 128 MB (collector 500, 10 servers,
// everything else as in the evaluation platform). Pure Appendix-D model —
// the paper plots the same closed forms.
#include "analysis/model.hpp"
#include "runner/report.hpp"

int main() {
  using namespace setchain;

  runner::print_title(
      "Figure 2 (right) - Analytical throughput vs block size (collector 500)");

  analysis::ModelParams base;
  base.block_rate = 0.8;
  base.element_size = 438;
  base.proof_size = 139;
  base.hash_batch_size = 139;
  base.n = 10;
  base.collector_size = 500;
  base.compress_ratio = 3.5;

  std::vector<std::vector<std::string>> rows;
  for (const double mb : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
    analysis::ModelParams p = base;
    p.block_capacity = mb * 1e6;
    rows.push_back({runner::fmt_double(mb, 1) + " MB",
                    runner::fmt_rate(analysis::vanilla_throughput(p)),
                    runner::fmt_rate(analysis::compresschain_throughput(p)),
                    runner::fmt_rate(analysis::hashchain_throughput(p))});
  }
  runner::print_table({"Block size", "Vanilla el/s", "Compresschain el/s",
                       "Hashchain el/s"},
                      rows);
  std::printf(
      "\nPaper reference points: with CometBFT's usual 4 MB blocks Hashchain\n"
      "reaches ~10^6 el/s; with 128 MB blocks more than 30 million el/s.\n");
  return 0;
}
