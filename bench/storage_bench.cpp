// Storage bench: WAL append throughput across fsync modes, plus recovery
// (open + full replay) time as the logged history grows. Emits
// machine-readable JSON on stdout (and to --json PATH) — the per-PR
// `BENCH_storage.json` trajectory snapshots come from here.
//
//   ./bench/storage_bench --records 20000 --payload 256 --json BENCH_storage.json
//
// The append loops measure the durability tax directly: `always` pays one
// fdatasync per record, `interval` amortizes it on a timer, `off` leaves
// persistence to the page cache (the in-process restart tests run this
// mode — a process kill loses nothing the page cache holds). Recovery is
// measured cold: a fresh Wal::open (segment scan + CRC over every record)
// followed by a full replay into a counter, which is exactly the startup
// path a restarted node pays before it can rejoin its cluster.
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "storage/storage.hpp"

namespace {

using namespace setchain;
using Clock = std::chrono::steady_clock;

struct Options {
  std::uint64_t records = 20'000;
  std::size_t payload = 256;
  std::uint64_t segment_bytes = 8u << 20;
  std::string json_path;
  bool smoke = false;
};

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/setchain_bench_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path + "'";
    (void)std::system(cmd.c_str());
  }
};

struct AppendResult {
  double records_per_sec = 0;
  double mb_per_sec = 0;
  std::uint64_t fsyncs = 0;
  std::size_t segments = 0;
};

AppendResult bench_append(const Options& opt, storage::FsyncMode mode) {
  TempDir dir;
  storage::Wal wal;
  std::string diag;
  storage::WalOptions wo;
  wo.dir = dir.path;
  wo.fsync = mode;
  wo.segment_bytes = opt.segment_bytes;
  if (!wal.open(wo, &diag)) {
    std::fprintf(stderr, "wal open failed: %s\n", diag.c_str());
    std::exit(1);
  }
  const codec::Bytes payload(opt.payload, 0xAB);
  const auto t0 = Clock::now();
  for (std::uint64_t h = 1; h <= opt.records; ++h) {
    if (!wal.append(storage::WalRecordKind::kBlock, h, payload)) {
      std::fprintf(stderr, "append failed at height %llu\n",
                   static_cast<unsigned long long>(h));
      std::exit(1);
    }
  }
  wal.sync();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  AppendResult r;
  r.records_per_sec = secs > 0 ? static_cast<double>(opt.records) / secs : 0;
  r.mb_per_sec =
      secs > 0 ? static_cast<double>(wal.counters().bytes_appended) / secs / 1e6 : 0;
  r.fsyncs = wal.counters().fsyncs;
  r.segments = wal.segment_count();
  return r;
}

struct RecoveryResult {
  std::uint64_t records = 0;
  double open_ms = 0;    // segment scan + CRC of every record + torn-tail check
  double replay_ms = 0;  // feed every payload back through the replay callback
};

RecoveryResult bench_recovery(const Options& opt, std::uint64_t records) {
  TempDir dir;
  const codec::Bytes payload(opt.payload, 0xCD);
  {
    storage::Wal wal;
    std::string diag;
    storage::WalOptions wo;
    wo.dir = dir.path;
    wo.fsync = storage::FsyncMode::kOff;
    wo.segment_bytes = opt.segment_bytes;
    if (!wal.open(wo, &diag)) std::exit(1);
    for (std::uint64_t h = 1; h <= records; ++h) {
      wal.append(storage::WalRecordKind::kBlock, h, payload);
    }
  }

  RecoveryResult r;
  r.records = records;
  storage::Wal wal;
  std::string diag;
  storage::WalOptions wo;
  wo.dir = dir.path;
  wo.fsync = storage::FsyncMode::kOff;
  wo.segment_bytes = opt.segment_bytes;
  const auto t0 = Clock::now();
  if (!wal.open(wo, &diag)) std::exit(1);
  const auto t1 = Clock::now();
  std::uint64_t replayed = 0;
  wal.replay(
      [&](storage::WalRecordKind, std::uint64_t, codec::ByteView p) {
        replayed += p.size();
      },
      &diag);
  const auto t2 = Clock::now();
  r.open_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.replay_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--records") opt.records = std::stoull(next());
    else if (a == "--payload") opt.payload = std::stoul(next());
    else if (a == "--segment-bytes") opt.segment_bytes = std::stoull(next());
    else if (a == "--json") opt.json_path = next();
    else if (a == "--smoke") {
      opt.smoke = true;
      opt.records = 2'000;
    } else {
      std::fprintf(stderr, "unknown arg %s\n", a.c_str());
      return 2;
    }
  }

  // fsync=always is measured over a reduced record count: at one fdatasync
  // per record it is orders of magnitude slower, and a few hundred syncs
  // already give a stable per-record cost.
  Options always_opt = opt;
  always_opt.records = std::min<std::uint64_t>(opt.records, 500);
  const AppendResult always = bench_append(always_opt, storage::FsyncMode::kAlways);
  const AppendResult interval = bench_append(opt, storage::FsyncMode::kInterval);
  const AppendResult off = bench_append(opt, storage::FsyncMode::kOff);

  const std::vector<std::uint64_t> histories = {opt.records / 4, opt.records,
                                                opt.records * 4};
  std::vector<RecoveryResult> recov;
  for (const auto h : histories) recov.push_back(bench_recovery(opt, h));

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"storage\",\"config\":{\"records\":%llu,\"payload_bytes\":%zu,"
      "\"segment_bytes\":%llu},"
      "\"append\":{"
      "\"always\":{\"records_per_sec\":%.0f,\"mb_per_sec\":%.2f,\"fsyncs\":%llu},"
      "\"interval\":{\"records_per_sec\":%.0f,\"mb_per_sec\":%.2f,\"fsyncs\":%llu},"
      "\"off\":{\"records_per_sec\":%.0f,\"mb_per_sec\":%.2f,\"fsyncs\":%llu,"
      "\"segments\":%zu}},"
      "\"recovery\":["
      "{\"records\":%llu,\"open_ms\":%.2f,\"replay_ms\":%.2f},"
      "{\"records\":%llu,\"open_ms\":%.2f,\"replay_ms\":%.2f},"
      "{\"records\":%llu,\"open_ms\":%.2f,\"replay_ms\":%.2f}]}",
      static_cast<unsigned long long>(opt.records), opt.payload,
      static_cast<unsigned long long>(opt.segment_bytes),
      always.records_per_sec, always.mb_per_sec,
      static_cast<unsigned long long>(always.fsyncs),
      interval.records_per_sec, interval.mb_per_sec,
      static_cast<unsigned long long>(interval.fsyncs),
      off.records_per_sec, off.mb_per_sec,
      static_cast<unsigned long long>(off.fsyncs), off.segments,
      static_cast<unsigned long long>(recov[0].records), recov[0].open_ms,
      recov[0].replay_ms, static_cast<unsigned long long>(recov[1].records),
      recov[1].open_ms, recov[1].replay_ms,
      static_cast<unsigned long long>(recov[2].records), recov[2].open_ms,
      recov[2].replay_ms);
  std::printf("%s\n", json);
  if (!opt.json_path.empty()) {
    if (FILE* f = std::fopen(opt.json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json);
      std::fclose(f);
    }
  }

  if (opt.smoke) {
    // Self-check: every mode must have sustained appends, `always` must
    // actually have fsynced per record, and recovery must scale sanely.
    if (interval.records_per_sec <= 0 || off.records_per_sec <= 0 ||
        always.fsyncs < always_opt.records) {
      std::fprintf(stderr, "storage_bench smoke FAILED\n");
      return 1;
    }
    std::fprintf(stderr, "storage_bench smoke OK\n");
  }
  return 0;
}
