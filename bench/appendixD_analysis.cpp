// Appendix D.1: the analytical throughput values for the evaluation
// parameters (n=10, C=0.5 MB, le=438 B, lp=lh=139 B, R=0.8 blocks/s), with
// the compression ratios the paper measured (r=2.7 at c=100, r=3.5 at
// c=500), side by side with the ratios our szx codec actually achieves on
// the synthetic Arbitrum-like trace.
#include "bench_common.hpp"

int main() {
  using namespace setchain;
  using namespace setchain::bench;

  runner::print_title("Appendix D.1 - Analytical throughput for the paper's setup");

  analysis::ModelParams p;
  p.block_rate = 0.8;
  p.block_capacity = 500'000;
  p.element_size = 438;
  p.proof_size = 139;
  p.hash_batch_size = 139;
  p.n = 10;

  const double measured_r100 = runner::Experiment::measure_compress_ratio({}, 100, 1);
  const double measured_r500 = runner::Experiment::measure_compress_ratio({}, 500, 1);

  std::vector<std::vector<std::string>> rows;
  p.collector_size = 100;
  p.compress_ratio = 2.7;
  rows.push_back({"Vanilla", "-", "-", runner::fmt_rate(analysis::vanilla_throughput(p)),
                  "955"});
  rows.push_back({"Compresschain", "100", "2.7 (paper)",
                  runner::fmt_rate(analysis::compresschain_throughput(p)), "2497"});
  p.compress_ratio = measured_r100;
  rows.push_back({"Compresschain", "100",
                  runner::fmt_double(measured_r100, 2) + " (szx)",
                  runner::fmt_rate(analysis::compresschain_throughput(p)), "-"});
  p.collector_size = 500;
  p.compress_ratio = 3.5;
  rows.push_back({"Compresschain", "500", "3.5 (paper)",
                  runner::fmt_rate(analysis::compresschain_throughput(p)), "3330"});
  p.compress_ratio = measured_r500;
  rows.push_back({"Compresschain", "500",
                  runner::fmt_double(measured_r500, 2) + " (szx)",
                  runner::fmt_rate(analysis::compresschain_throughput(p)), "-"});
  p.collector_size = 100;
  rows.push_back({"Hashchain", "100", "-",
                  runner::fmt_rate(analysis::hashchain_throughput(p)), "27157"});
  p.collector_size = 500;
  rows.push_back({"Hashchain", "500", "-",
                  runner::fmt_rate(analysis::hashchain_throughput(p)), "147857"});

  runner::print_table({"Algorithm", "collector", "ratio", "analytical el/s",
                       "paper el/s"},
                      rows);

  p.collector_size = 500;
  p.compress_ratio = 3.5;
  const double tv = analysis::vanilla_throughput(p);
  const double tc = analysis::compresschain_throughput(p);
  const double th = analysis::hashchain_throughput(p);
  std::printf("\nSpeedup ratios at c=500: Th/Tv = %.0f (paper ~155), Th/Tc = %.0f"
              " (paper ~44)\n",
              th / tv, th / tc);
  return 0;
}
