// Figure 2 (left): pushing the Hashchain limits, collector size 500,
// 10 servers. The paper drives the sending rate up and finds a ~20k el/s
// bottleneck caused by hash-reversal (batch exchange between servers); with
// hash-reversal and validation removed ("Hashchain Light", all servers
// assumed correct) it reaches ~134k el/s out of the analytical ~148k.
// Compresschain is run with and without decompression+validation; Vanilla
// is the baseline.
#include "bench_common.hpp"

namespace {

using namespace setchain;
using namespace setchain::bench;

struct Variant {
  const char* name;
  Algorithm algo;
  double rate;
  bool validate;
  bool hash_reversal;
};

}  // namespace

int main() {
  runner::print_title(
      "Figure 2 (left) - Highest achieved throughput, collector 500, 10 servers");

  const Variant variants[] = {
      {"Vanilla", Algorithm::kVanilla, 5'000, true, true},
      {"Compresschain", Algorithm::kCompresschain, 25'000, true, true},
      {"Compresschain Light", Algorithm::kCompresschain, 25'000, false, true},
      {"Hashchain (reversal) @25k", Algorithm::kHashchain, 25'000, true, true},
      {"Hashchain (reversal) @50k", Algorithm::kHashchain, 50'000, true, true},
      {"Hashchain Light (no reversal)", Algorithm::kHashchain, 150'000, true, false},
  };

  std::vector<std::vector<std::string>> rows;
  for (const Variant& v : variants) {
    Scenario s = paper_scenario(v.algo, 10, v.rate, 500);
    s.validate_batches = v.validate;
    s.hash_reversal = v.hash_reversal;
    runner::Experiment e(s);
    e.run();
    const auto r = e.result();

    // Peak of the 9 s rolling average — the quantity Fig. 2 plots.
    double peak = 0.0;
    for (const auto& p : e.recorder().committed().rolling_rate(
             sim::from_seconds(9), sim::from_seconds(3),
             sim::from_seconds(r.sim_seconds + 5))) {
      peak = std::max(peak, p.rate);
    }
    const double analytical = analytical_throughput(s, r.measured_compress_ratio);
    rows.push_back({v.name, runner::fmt_rate(v.rate),
                    runner::fmt_rate(r.avg_throughput_50s),
                    runner::fmt_rate(r.sustained_throughput), runner::fmt_rate(peak),
                    runner::fmt_rate(analytical)});
    runner::print_run_summary(s, r);
  }
  runner::print_table({"Variant", "sending rate", "avg el/s (to 50s)",
                       "sustained el/s", "peak el/s", "analytical el/s"},
                      rows);
  std::printf(
      "\nExpected shape (paper): Hashchain with hash-reversal bottlenecks around\n"
      "~20k el/s regardless of further rate increases; Hashchain Light reaches\n"
      ">100k (134k measured vs 148k analytical in the paper); Compresschain\n"
      "variants stay far below Hashchain; Vanilla's sustained rate matches its\n"
      "analytical ledger bound.\n");
  return 0;
}
