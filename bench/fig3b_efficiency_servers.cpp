// Figure 3b: efficiency vs number of servers (4, 7, 10) at the base
// 10,000 el/s sending rate with no added delay.
#include "fig3_common.hpp"

int main() {
  using namespace setchain;
  using namespace setchain::bench;

  runner::print_title("Figure 3b - Efficiency vs number of servers (10,000 el/s)");
  std::printf("cells: efficiency at 50 s / 75 s / 100 s\n\n");

  const std::vector<std::uint32_t> server_counts = {4, 7, 10};
  const auto grid = run_grid(fig3_variants(), server_counts,
                             [](const AlgoVariant& v, std::uint32_t n) {
                               return run_variant(v.algo, n, 10'000, v.collector, 0);
                             });
  std::vector<std::vector<std::string>> rows;
  for (std::size_t vi = 0; vi < fig3_variants().size(); ++vi) {
    std::vector<std::string> row{fig3_variants()[vi].name};
    for (const auto& res : grid[vi]) row.push_back(eff_cells(res.run));
    rows.push_back(std::move(row));
  }
  runner::print_table({"Variant", "4 servers", "7 servers", "10 servers"}, rows);
  std::printf(
      "\nExpected shape (paper): Vanilla lowest everywhere (even at 4 servers);\n"
      "Compresschain low and decreasing with more servers; Hashchain near 1,\n"
      "dipping only at 10 servers with collector 100.\n");
  return 0;
}
