#pragma once

// Shared scaffolding for the Fig. 3 efficiency benches and the Fig. 5 commit
// time benches: both sweep the same five algorithm variants over one axis of
// the Table-1 grid, starting from the base scenario (10 servers,
// 10,000 el/s, no delay).
#include "bench_common.hpp"
#include "runner/parallel.hpp"

namespace setchain::bench {

struct AlgoVariant {
  const char* name;
  Algorithm algo;
  std::uint32_t collector;
};

/// The five bar groups of Fig. 3 / Fig. 5.
inline const std::vector<AlgoVariant>& fig3_variants() {
  static const std::vector<AlgoVariant> kVariants = {
      {"Vanilla", Algorithm::kVanilla, 100},
      {"Compresschain c=100", Algorithm::kCompresschain, 100},
      {"Compresschain c=500", Algorithm::kCompresschain, 500},
      {"Hashchain c=100", Algorithm::kHashchain, 100},
      {"Hashchain c=500", Algorithm::kHashchain, 500},
  };
  return kVariants;
}

struct SweepResult {
  runner::RunResult run;
  std::optional<double> commit_first;
  std::array<std::optional<double>, 5> commit_fraction;  // 10%..50%
};

inline SweepResult run_variant(Algorithm algo, std::uint32_t n, double rate,
                               std::uint32_t collector, sim::Time delay) {
  const Scenario s = paper_scenario(algo, n, rate, collector, delay);
  runner::Experiment e(s);
  e.run();
  SweepResult out;
  out.run = e.result();
  out.commit_first = e.recorder().commit_time_of_first();
  for (int i = 0; i < 5; ++i) {
    out.commit_fraction[static_cast<std::size_t>(i)] =
        e.recorder().commit_time_of_fraction(0.1 * (i + 1));
  }
  return out;
}

inline std::string eff_cells(const runner::RunResult& r) {
  return runner::fmt_eff(r.efficiency_50) + " / " + runner::fmt_eff(r.efficiency_75) +
         " / " + runner::fmt_eff(r.efficiency_100);
}

/// Run the full (variant x axis) grid with a worker pool — every cell is an
/// independent simulation (see runner/parallel.hpp). Returns
/// results[variant][axis].
template <typename Axis, typename Fn>
std::vector<std::vector<SweepResult>> run_grid(const std::vector<AlgoVariant>& variants,
                                               const std::vector<Axis>& axis,
                                               Fn&& run_one) {
  const std::size_t cols = axis.size();
  const auto flat = runner::parallel_map<SweepResult>(
      variants.size() * cols, [&](std::size_t i) {
        return run_one(variants[i / cols], axis[i % cols]);
      });
  std::vector<std::vector<SweepResult>> grid(variants.size());
  for (std::size_t v = 0; v < variants.size(); ++v) {
    grid[v].assign(flat.begin() + static_cast<std::ptrdiff_t>(v * cols),
                   flat.begin() + static_cast<std::ptrdiff_t>((v + 1) * cols));
  }
  return grid;
}

}  // namespace setchain::bench
