// Figure 3a: efficiency (committed / added, measured after 50, 75 and 100 s)
// as a function of the sending rate, for the five algorithm variants.
// Base scenario: 10 servers, no added network delay; rates 500, 1,000,
// 5,000, 10,000 el/s (Table 1).
#include "fig3_common.hpp"

int main() {
  using namespace setchain;
  using namespace setchain::bench;

  runner::print_title("Figure 3a - Efficiency vs sending rate (10 servers, 0 delay)");
  std::printf("cells: efficiency at 50 s / 75 s / 100 s\n\n");

  const std::vector<double> rates = {500, 1'000, 5'000, 10'000};
  const auto grid = run_grid(fig3_variants(), rates,
                             [](const AlgoVariant& v, double rate) {
                               return run_variant(v.algo, 10, rate, v.collector, 0);
                             });
  std::vector<std::vector<std::string>> rows;
  for (std::size_t vi = 0; vi < fig3_variants().size(); ++vi) {
    std::vector<std::string> row{fig3_variants()[vi].name};
    for (const auto& res : grid[vi]) row.push_back(eff_cells(res.run));
    rows.push_back(std::move(row));
  }
  runner::print_table({"Variant", "500 el/s", "1000 el/s", "5000 el/s", "10000 el/s"},
                      rows);
  std::printf(
      "\nExpected shape (paper): everything reaches efficiency 1 by 75 s at 500\n"
      "and 1,000 el/s; at 5,000+ Vanilla collapses; Compresschain degrades and\n"
      "a larger collector barely helps it; Hashchain only dips at 10,000 el/s\n"
      "with collector 100 and recovers with collector 500.\n");
  return 0;
}
