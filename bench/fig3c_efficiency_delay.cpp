// Figure 3c: efficiency vs artificial network delay (0, 30, 100 ms added to
// every message) at 10 servers and 10,000 el/s — the WAN-emulation axis of
// Table 1.
#include "fig3_common.hpp"

int main() {
  using namespace setchain;
  using namespace setchain::bench;

  runner::print_title("Figure 3c - Efficiency vs network delay (10 servers, 10k el/s)");
  std::printf("cells: efficiency at 50 s / 75 s / 100 s\n\n");

  const std::vector<double> delays_ms = {0, 30, 100};
  const auto grid =
      run_grid(fig3_variants(), delays_ms, [](const AlgoVariant& v, double d) {
        return run_variant(v.algo, 10, 10'000, v.collector, sim::from_millis(d));
      });
  std::vector<std::vector<std::string>> rows;
  for (std::size_t vi = 0; vi < fig3_variants().size(); ++vi) {
    std::vector<std::string> row{fig3_variants()[vi].name};
    for (const auto& res : grid[vi]) row.push_back(eff_cells(res.run));
    rows.push_back(std::move(row));
  }
  runner::print_table({"Variant", "0 ms", "30 ms", "100 ms"}, rows);
  std::printf(
      "\nExpected shape (paper): efficiency decreases with delay for every\n"
      "algorithm; even at 100 ms Hashchain with collector 500 reaches full\n"
      "efficiency within 100 s.\n");
  return 0;
}
