// Live-cluster throughput bench: an open-loop client fleet over real TCP
// against an in-process n-node cluster (the exact NodeHost/TcpTransport
// stack the daemon runs), measuring sustained add throughput and ack
// latency percentiles. Emits machine-readable JSON on stdout (and to
// --json PATH) — the per-PR `BENCH_net.json` trajectory snapshots come
// from here.
//
//   ./bench/net_throughput_bench --algo hashchain --nodes 4 --conns 8
//       --duration-s 5 --json BENCH_net.json
//
// Open-loop drive: the fleet schedules arrivals on a fixed interval
// (--rate, per connection) independent of responses; --rate 0 means "as
// fast as the socket accepts", bounded only by --window locally-queued
// unacked requests so memory stays finite when the cluster saturates.
// Latency is measured schedule-to-ack, so queueing delay above a saturated
// node is charged to the node, as an open-loop client should.
//
// The fleet itself is the src/load library (one epoll thread multiplexing
// every session; see docs/LOAD_HARNESS.md): the load generator must scale
// better than the system under test, or high --conns measurements
// bottleneck on the generator's own scheduling instead of the cluster's.
// This file only maps the bench's historical CLI and JSON schema onto it.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/element.hpp"
#include "load/fleet.hpp"
#include "load/local_cluster.hpp"
#include "load/report.hpp"
#include "runner/scenario.hpp"
#include "workload/arbitrum_like.hpp"

namespace {

using namespace setchain;
using Clock = std::chrono::steady_clock;

struct Options {
  std::uint32_t nodes = 4;
  std::uint32_t conns = 8;
  std::uint32_t window = 64;    // max locally-queued unacked adds per conn
  double rate = 0;              // adds/sec per conn; 0 = as fast as possible
  double duration_s = 5.0;
  runner::Algorithm algo = runner::Algorithm::kHashchain;
  runner::LedgerMode ledger = runner::LedgerMode::kFixedSequencer;
  std::string json_path;
  bool smoke = false;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--nodes") opt.nodes = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--conns") opt.conns = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--window") opt.window = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--rate") opt.rate = std::stod(next());
    else if (a == "--duration-s") opt.duration_s = std::stod(next());
    else if (a == "--json") opt.json_path = next();
    else if (a == "--algo") {
      const auto algo = runner::parse_algorithm(next());
      if (!algo) { std::fprintf(stderr, "bad --algo\n"); return 2; }
      opt.algo = *algo;
    } else if (a == "--ledger") {
      const std::string m = next();
      if (m == "consensus") opt.ledger = runner::LedgerMode::kConsensus;
      else if (m == "sequencer") opt.ledger = runner::LedgerMode::kFixedSequencer;
      else { std::fprintf(stderr, "bad --ledger\n"); return 2; }
    } else if (a == "--smoke") {
      opt.smoke = true;
      opt.duration_s = 2.0;
      opt.conns = 2;
      opt.window = 16;
    } else {
      std::fprintf(stderr, "unknown arg %s\n", a.c_str());
      return 2;
    }
  }

  net::NodeHostConfig cfg;
  cfg.n = opt.nodes;
  cfg.f = (opt.nodes - 1) / 3;
  cfg.algorithm = opt.algo;
  cfg.ledger_mode = opt.ledger;
  cfg.seed = 42;
  cfg.collector_limit = 64;
  cfg.collector_timeout = sim::from_millis(50);
  cfg.block_interval = sim::from_millis(50);
  cfg.sync_interval = sim::from_millis(400);
  load::LocalCluster cluster(cfg);

  // Pre-generate (and pre-sign) the workload outside the measured window.
  // All connections share one signed element pool, striped by connection so
  // every element is offered exactly once.
  const std::size_t budget = std::min<std::size_t>(
      200'000, opt.rate > 0
                   ? static_cast<std::size_t>(opt.rate * opt.conns * opt.duration_s * 1.3) + 256
                   : static_cast<std::size_t>(40'000 * opt.duration_s));
  crypto::Pki pki(cfg.seed);
  for (crypto::ProcessId p = 0; p < cfg.n + cfg.client_slots; ++p) {
    pki.register_process(p);
  }
  workload::ArbitrumLikeGenerator gen(cfg.seed ^ 0xBE7C4ULL);
  core::ElementFactory factory(gen, pki, core::Fidelity::kFull);
  std::vector<core::Element> elements;
  elements.reserve(budget);
  for (std::size_t s = 0; s < budget; ++s) {
    elements.push_back(factory.make(cfg.n, s));
  }

  cluster.start();
  // Let the mesh dial before load starts.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  load::FleetConfig fc;
  fc.targets = cluster.targets();
  fc.cluster = cluster.cluster_id();
  fc.sessions = opt.conns;
  fc.window = opt.window;

  // The bench's historical --rate is per connection on a fixed interval;
  // the fleet schedule is fleet-wide, so kUniform at rate * conns is the
  // same offered load.
  load::ArrivalConfig arrival;
  arrival.kind = load::ArrivalKind::kUniform;
  arrival.rate = opt.rate * opt.conns;
  arrival.seed = cfg.seed;

  load::PooledElementSource source(elements, opt.conns);
  load::LoadFleet fleet(fc);

  const auto t0 = Clock::now();
  fleet.connect();
  const load::PhaseStats st = fleet.run_phase(source, arrival, opt.duration_s);
  // Snapshot resource usage while every session is still connected — the
  // thread-per-connection signature disappears the moment clients hang up.
  const load::ProcSample live = load::sample_proc();
  const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  fleet.close();

  cluster.shutdown();

  const std::uint64_t acked = st.acked;
  const double eps = wall_s > 0 ? static_cast<double>(acked) / wall_s : 0;
  const double p50 = static_cast<double>(st.latency_us.percentile(0.50)) / 1000.0;
  const double p99 = static_cast<double>(st.latency_us.percentile(0.99)) / 1000.0;

  const auto tc = cluster.counters_total();
  const std::uint64_t decode_errors = tc.decode_errors;

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"net_throughput\",\"config\":{\"nodes\":%u,\"conns\":%u,"
      "\"window\":%u,\"rate_per_conn\":%.1f,\"duration_s\":%.2f,"
      "\"algo\":\"%s\",\"ledger\":\"%s\"},"
      "\"results\":{\"elements_sent\":%llu,\"elements_acked\":%llu,"
      "\"elements_accepted\":%llu,\"elements_per_sec\":%.1f,"
      "\"elements_per_sec_per_node\":%.1f,\"ack_p50_ms\":%.3f,"
      "\"ack_p99_ms\":%.3f,\"wall_s\":%.2f},"
      "\"transport\":{\"frames_tx\":%llu,\"frames_rx\":%llu,"
      "\"send_drops\":%llu,\"decode_errors\":%llu},"
      "\"process\":{\"threads_live\":%llu,\"vm_hwm_kb\":%llu}}",
      opt.nodes, opt.conns, opt.window, opt.rate, opt.duration_s,
      runner::algorithm_name(opt.algo),
      opt.ledger == runner::LedgerMode::kConsensus ? "consensus" : "sequencer",
      static_cast<unsigned long long>(st.sent),
      static_cast<unsigned long long>(acked),
      static_cast<unsigned long long>(st.accepted), eps, eps / opt.nodes, p50,
      p99, wall_s, static_cast<unsigned long long>(tc.frames_sent),
      static_cast<unsigned long long>(tc.frames_received),
      static_cast<unsigned long long>(tc.send_drops),
      static_cast<unsigned long long>(decode_errors),
      static_cast<unsigned long long>(live.threads),
      static_cast<unsigned long long>(live.vm_hwm_kb));
  std::printf("%s\n", json);
  if (!opt.json_path.empty()) {
    if (FILE* f = std::fopen(opt.json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json);
      std::fclose(f);
    }
  }

  if (opt.smoke) {
    // Self-check: the cluster must actually have served traffic cleanly.
    if (acked == 0 || decode_errors != 0 || st.decode_errors != 0) {
      std::fprintf(stderr,
                   "net_throughput_bench smoke FAILED: acked=%llu "
                   "decode_errors=%llu client_decode_errors=%llu\n",
                   static_cast<unsigned long long>(acked),
                   static_cast<unsigned long long>(decode_errors),
                   static_cast<unsigned long long>(st.decode_errors));
      return 1;
    }
    std::fprintf(stderr, "net_throughput_bench smoke OK\n");
  }
  return 0;
}
