// Live-cluster throughput bench: an open-loop client fleet over real TCP
// against an in-process n-node cluster (the exact NodeHost/TcpTransport
// stack the daemon runs), measuring sustained add throughput and ack
// latency percentiles. Emits machine-readable JSON on stdout (and to
// --json PATH) — the per-PR `BENCH_net.json` trajectory snapshots come
// from here.
//
//   ./bench/net_throughput_bench --algo hashchain --nodes 4 --conns 8
//       --duration-s 5 --json BENCH_net.json
//
// Open-loop drive: each connection schedules sends on a fixed interval
// (--rate, per connection) independent of responses; --rate 0 means "as
// fast as the socket accepts", bounded only by --window locally-queued
// unacked requests so memory stays finite when the cluster saturates.
// Latency is measured schedule-to-ack, so queueing delay above a saturated
// node is charged to the node, as an open-loop client should.
//
// The whole fleet is driven by ONE thread multiplexing every connection
// through poll(): the load generator must scale better than the system
// under test, or high --conns measurements bottleneck on the generator's
// own scheduling instead of the cluster's.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/element.hpp"
#include "net/node_host.hpp"
#include "net/tcp.hpp"
#include "runner/scenario.hpp"
#include "workload/arbitrum_like.hpp"

namespace {

using namespace setchain;
using Clock = std::chrono::steady_clock;

struct Options {
  std::uint32_t nodes = 4;
  std::uint32_t conns = 8;
  std::uint32_t window = 64;    // max locally-queued unacked adds per conn
  double rate = 0;              // adds/sec per conn; 0 = as fast as possible
  double duration_s = 5.0;
  runner::Algorithm algo = runner::Algorithm::kHashchain;
  runner::LedgerMode ledger = runner::LedgerMode::kFixedSequencer;
  std::string json_path;
  bool smoke = false;
};

struct ConnStats {
  std::uint64_t sent = 0;
  std::uint64_t acked = 0;
  std::uint64_t accepted = 0;
  std::vector<double> latency_ms;
};

/// In-process cluster: the tcp_cluster_test topology without gtest.
struct BenchCluster {
  net::NodeHostConfig cfg;
  std::vector<std::unique_ptr<sim::Simulation>> sims;
  std::vector<std::unique_ptr<net::TcpTransport>> transports;
  std::vector<std::unique_ptr<net::NodeHost>> hosts;
  std::vector<std::thread> pumps;
  std::atomic<bool> stop{false};

  explicit BenchCluster(const Options& opt) {
    cfg.n = opt.nodes;
    cfg.f = (opt.nodes - 1) / 3;
    cfg.algorithm = opt.algo;
    cfg.ledger_mode = opt.ledger;
    cfg.seed = 42;
    cfg.collector_limit = 64;
    cfg.collector_timeout = sim::from_millis(50);
    cfg.block_interval = sim::from_millis(50);
    cfg.sync_interval = sim::from_millis(400);

    std::vector<std::string> peer_addrs;
    const std::uint64_t cluster = net::NodeHost::cluster_id_of(cfg);
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      net::TcpConfig tc;
      tc.self = i;
      tc.n = cfg.n;
      tc.cluster = cluster;
      tc.listen_port = 0;
      tc.peers = peer_addrs;
      tc.peers.resize(cfg.n);
      transports.push_back(std::make_unique<net::TcpTransport>(tc));
      peer_addrs.push_back("127.0.0.1:" +
                           std::to_string(transports[i]->listen_port()));
    }
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      net::NodeHostConfig c = cfg;
      c.id = i;
      sims.push_back(std::make_unique<sim::Simulation>());
      hosts.push_back(std::make_unique<net::NodeHost>(c, *sims[i], *transports[i]));
    }
  }

  void start() {
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      hosts[i]->start();
      transports[i]->start();
    }
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      pumps.emplace_back([this, i] { hosts[i]->run_realtime(stop); });
    }
  }

  void shutdown() {
    if (stop.exchange(true)) return;
    for (auto& t : pumps) {
      if (t.joinable()) t.join();
    }
    for (auto& t : transports) t->stop();
  }

  ~BenchCluster() { shutdown(); }
};

bool send_all_blocking(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t w = ::send(fd, data, len, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd p{fd, POLLOUT, 0};
        ::poll(&p, 1, 100);
        continue;
      }
      return false;
    }
    data += w;
    len -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Thread count and peak RSS of this process (cluster + client fleet),
/// sampled from /proc while the run is live. The thread count is the
/// clearest resource signature of the transport architecture: thread-per-
/// connection scales it with --conns, an event loop keeps it flat.
struct ProcSample {
  std::uint64_t threads = 0;
  std::uint64_t vm_hwm_kb = 0;
};

ProcSample sample_proc() {
  ProcSample s;
  if (FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
      unsigned long long v = 0;
      if (std::sscanf(line, "Threads: %llu", &v) == 1) s.threads = v;
      else if (std::sscanf(line, "VmHWM: %llu", &v) == 1) s.vm_hwm_kb = v;
    }
    std::fclose(f);
  }
  return s;
}

/// One open-loop client connection's state. All connections are advanced by
/// a single fleet thread; a connection never blocks it — partial writes park
/// in `outbuf` until poll() reports POLLOUT.
struct ClientConn {
  int fd = -1;
  bool alive = false;
  std::size_t next_elem = 0;  // index into the shared pool; advances by conns
  std::uint64_t next_req = 1;
  Clock::time_point next_send;
  std::unordered_map<std::uint64_t, Clock::time_point> in_flight;
  net::wire::FrameReader reader;
  codec::Bytes outbuf;  // frame bytes not yet accepted by the socket
  std::size_t out_off = 0;
  ConnStats stats;
};

bool conn_connect(ClientConn& c, std::uint16_t port, std::uint64_t cluster) {
  c.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (c.fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(c.fd);
    c.fd = -1;
    return false;
  }
  const int one = 1;
  ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  net::wire::Hello h;
  h.role = net::wire::kRoleClient;
  h.sender = 0;  // informational for clients; the transport assigns the id
  h.cluster = cluster;
  const codec::Bytes hello =
      net::wire::encode_frame(net::wire::MsgType::kHello, net::wire::encode_hello(h));
  if (!send_all_blocking(c.fd, hello.data(), hello.size())) {
    ::close(c.fd);
    c.fd = -1;
    return false;
  }
  c.alive = true;
  return true;
}

void conn_read_acks(ClientConn& c, std::uint8_t* buf, std::size_t buf_len) {
  for (;;) {
    const ssize_t got = ::recv(c.fd, buf, buf_len, MSG_DONTWAIT);
    if (got == 0) {
      c.alive = false;
      return;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) c.alive = false;
      return;
    }
    c.reader.feed(codec::ByteView(buf, static_cast<std::size_t>(got)));
    net::wire::Frame f;
    while (c.reader.next(f) == net::wire::DecodeStatus::kOk) {
      if (f.type != net::wire::MsgType::kAddResponse) continue;
      const auto resp = net::wire::parse_add_response(f.payload);
      if (!resp) continue;
      const auto it = c.in_flight.find(resp->req_id);
      if (it == c.in_flight.end()) continue;
      ++c.stats.acked;
      if (resp->accepted) ++c.stats.accepted;
      c.stats.latency_ms.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - it->second)
              .count());
      c.in_flight.erase(it);
    }
    if (c.reader.failed()) {
      c.alive = false;
      return;
    }
    if (static_cast<std::size_t>(got) < buf_len) return;  // drained
  }
}

/// Push pending bytes; returns true when outbuf is empty again.
bool conn_flush(ClientConn& c) {
  while (c.out_off < c.outbuf.size()) {
    const ssize_t w = ::send(c.fd, c.outbuf.data() + c.out_off,
                             c.outbuf.size() - c.out_off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) c.alive = false;
      return false;
    }
    c.out_off += static_cast<std::size_t>(w);
  }
  c.outbuf.clear();
  c.out_off = 0;
  return true;
}

/// Schedule and emit sends for one connection up to its window/rate budget.
void conn_pump_sends(ClientConn& c, const Options& opt,
                     const std::vector<core::Element>& elements,
                     std::chrono::nanoseconds interval) {
  if (!c.outbuf.empty() && !conn_flush(c)) return;  // still backpressured
  while (c.alive && c.in_flight.size() < opt.window &&
         c.next_elem < elements.size()) {
    const auto now = Clock::now();
    if (now < c.next_send) return;
    net::wire::AddRequest req;
    req.req_id = c.next_req++;
    req.element = elements[c.next_elem];
    c.next_elem += opt.conns;
    c.outbuf = net::wire::encode_frame(
        net::wire::MsgType::kAddRequest, net::wire::encode_add_request(req));
    c.out_off = 0;
    // Open loop: the element is considered "offered" at its schedule time,
    // so latency includes any socket backpressure stall.
    c.in_flight.emplace(req.req_id, opt.rate > 0 ? c.next_send : now);
    ++c.stats.sent;
    c.next_send = opt.rate > 0 ? c.next_send + interval : now;
    if (!conn_flush(c)) return;  // wait for POLLOUT before the next frame
  }
}

/// Drive the whole fleet off one thread: poll() across every connection,
/// drain acks, flush backpressured writes, schedule fresh sends.
void run_fleet(const Options& opt, const BenchCluster& cluster,
               std::uint64_t cluster_id,
               const std::vector<core::Element>& elements,
               Clock::time_point t_end, std::vector<ClientConn>& conns,
               ProcSample& live_sample) {
  const std::chrono::nanoseconds interval =
      opt.rate > 0
          ? std::chrono::nanoseconds(static_cast<std::int64_t>(1e9 / opt.rate))
          : std::chrono::nanoseconds(0);
  for (std::uint32_t i = 0; i < opt.conns; ++i) {
    ClientConn& c = conns[i];
    c.next_elem = i;
    c.in_flight.reserve(opt.window * 2);
    c.stats.latency_ms.reserve(4096);
    conn_connect(c, cluster.transports[i % opt.nodes]->listen_port(), cluster_id);
    c.next_send = Clock::now();
  }

  std::vector<pollfd> pfds(opt.conns);
  std::vector<std::uint8_t> buf(64 * 1024);
  const auto poll_round = [&](bool sending, int wait_ms) -> std::size_t {
    std::size_t alive = 0;
    for (std::uint32_t i = 0; i < opt.conns; ++i) {
      ClientConn& c = conns[i];
      pfds[i].fd = c.alive ? c.fd : -1;  // poll() ignores negative fds
      pfds[i].events =
          static_cast<short>(POLLIN | (c.outbuf.empty() ? 0 : POLLOUT));
      pfds[i].revents = 0;
      if (c.alive) ++alive;
    }
    if (alive == 0) return 0;
    ::poll(pfds.data(), pfds.size(), wait_ms);
    for (std::uint32_t i = 0; i < opt.conns; ++i) {
      ClientConn& c = conns[i];
      if (!c.alive) continue;
      if (pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
        conn_read_acks(c, buf.data(), buf.size());
      }
      if (c.alive && sending) conn_pump_sends(c, opt, elements, interval);
    }
    return alive;
  };

  while (Clock::now() < t_end) {
    if (poll_round(/*sending=*/true, /*wait_ms=*/1) == 0) break;
  }
  // Snapshot resource usage while every connection is still open — the
  // thread-per-connection signature disappears the moment clients hang up.
  live_sample = sample_proc();
  // Grace window: collect in-flight acks so tail latency is not truncated.
  const auto t_drain = Clock::now() + std::chrono::milliseconds(1500);
  while (Clock::now() < t_drain) {
    bool pending = false;
    for (const auto& c : conns) {
      if (c.alive && !c.in_flight.empty()) pending = true;
    }
    if (!pending || poll_round(/*sending=*/false, /*wait_ms=*/10) == 0) break;
  }
  for (auto& c : conns) {
    if (c.fd >= 0) ::close(c.fd);
  }
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  const std::size_t k =
      std::min(v.size() - 1, static_cast<std::size_t>(p * (v.size() - 1)));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k), v.end());
  return v[k];
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (a == "--nodes") opt.nodes = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--conns") opt.conns = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--window") opt.window = static_cast<std::uint32_t>(std::stoul(next()));
    else if (a == "--rate") opt.rate = std::stod(next());
    else if (a == "--duration-s") opt.duration_s = std::stod(next());
    else if (a == "--json") opt.json_path = next();
    else if (a == "--algo") {
      const auto algo = runner::parse_algorithm(next());
      if (!algo) { std::fprintf(stderr, "bad --algo\n"); return 2; }
      opt.algo = *algo;
    } else if (a == "--ledger") {
      const std::string m = next();
      if (m == "consensus") opt.ledger = runner::LedgerMode::kConsensus;
      else if (m == "sequencer") opt.ledger = runner::LedgerMode::kFixedSequencer;
      else { std::fprintf(stderr, "bad --ledger\n"); return 2; }
    } else if (a == "--smoke") {
      opt.smoke = true;
      opt.duration_s = 2.0;
      opt.conns = 2;
      opt.window = 16;
    } else {
      std::fprintf(stderr, "unknown arg %s\n", a.c_str());
      return 2;
    }
  }

  BenchCluster cluster(opt);
  const std::uint64_t cluster_id = net::NodeHost::cluster_id_of(cluster.cfg);

  // Pre-generate (and pre-sign) the workload outside the measured window.
  // All connections share one signed element pool, striped by connection so
  // every element is offered exactly once.
  const std::size_t budget = std::min<std::size_t>(
      200'000, opt.rate > 0
                   ? static_cast<std::size_t>(opt.rate * opt.conns * opt.duration_s * 1.3) + 256
                   : static_cast<std::size_t>(40'000 * opt.duration_s));
  crypto::Pki pki(cluster.cfg.seed);
  for (crypto::ProcessId p = 0; p < cluster.cfg.n + cluster.cfg.client_slots; ++p) {
    pki.register_process(p);
  }
  workload::ArbitrumLikeGenerator gen(cluster.cfg.seed ^ 0xBE7C4ULL);
  core::ElementFactory factory(gen, pki, core::Fidelity::kFull);
  std::vector<core::Element> elements;
  elements.reserve(budget);
  for (std::size_t s = 0; s < budget; ++s) {
    elements.push_back(factory.make(cluster.cfg.n, s));
  }

  cluster.start();
  // Let the mesh dial before load starts.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const auto t0 = Clock::now();
  const auto t_end = t0 + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(opt.duration_s));
  std::vector<ClientConn> conns(opt.conns);
  ProcSample live;
  run_fleet(opt, cluster, cluster_id, elements, t_end, conns, live);
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  cluster.shutdown();

  std::uint64_t sent = 0, acked = 0, accepted = 0;
  std::vector<double> lat;
  for (auto& c : conns) {
    const ConnStats& s = c.stats;
    sent += s.sent;
    acked += s.acked;
    accepted += s.accepted;
    lat.insert(lat.end(), s.latency_ms.begin(), s.latency_ms.end());
  }
  const double eps = wall_s > 0 ? static_cast<double>(acked) / wall_s : 0;
  const double p50 = percentile(lat, 0.50);
  const double p99 = percentile(lat, 0.99);

  std::uint64_t frames_tx = 0, frames_rx = 0, drops = 0, decode_errors = 0;
  for (const auto& t : cluster.transports) {
    const auto c = t->counters();
    frames_tx += c.frames_sent;
    frames_rx += c.frames_received;
    drops += c.send_drops;
    decode_errors += c.decode_errors;
  }

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"net_throughput\",\"config\":{\"nodes\":%u,\"conns\":%u,"
      "\"window\":%u,\"rate_per_conn\":%.1f,\"duration_s\":%.2f,"
      "\"algo\":\"%s\",\"ledger\":\"%s\"},"
      "\"results\":{\"elements_sent\":%llu,\"elements_acked\":%llu,"
      "\"elements_accepted\":%llu,\"elements_per_sec\":%.1f,"
      "\"elements_per_sec_per_node\":%.1f,\"ack_p50_ms\":%.3f,"
      "\"ack_p99_ms\":%.3f,\"wall_s\":%.2f},"
      "\"transport\":{\"frames_tx\":%llu,\"frames_rx\":%llu,"
      "\"send_drops\":%llu,\"decode_errors\":%llu},"
      "\"process\":{\"threads_live\":%llu,\"vm_hwm_kb\":%llu}}",
      opt.nodes, opt.conns, opt.window, opt.rate, opt.duration_s,
      runner::algorithm_name(opt.algo),
      opt.ledger == runner::LedgerMode::kConsensus ? "consensus" : "sequencer",
      static_cast<unsigned long long>(sent), static_cast<unsigned long long>(acked),
      static_cast<unsigned long long>(accepted), eps, eps / opt.nodes, p50, p99,
      wall_s, static_cast<unsigned long long>(frames_tx),
      static_cast<unsigned long long>(frames_rx),
      static_cast<unsigned long long>(drops),
      static_cast<unsigned long long>(decode_errors),
      static_cast<unsigned long long>(live.threads),
      static_cast<unsigned long long>(live.vm_hwm_kb));
  std::printf("%s\n", json);
  if (!opt.json_path.empty()) {
    if (FILE* f = std::fopen(opt.json_path.c_str(), "w")) {
      std::fprintf(f, "%s\n", json);
      std::fclose(f);
    }
  }

  if (opt.smoke) {
    // Self-check: the cluster must actually have served traffic cleanly.
    if (acked == 0 || decode_errors != 0) {
      std::fprintf(stderr, "net_throughput_bench smoke FAILED: acked=%llu decode_errors=%llu\n",
                   static_cast<unsigned long long>(acked),
                   static_cast<unsigned long long>(decode_errors));
      return 1;
    }
    std::fprintf(stderr, "net_throughput_bench smoke OK\n");
  }
  return 0;
}
