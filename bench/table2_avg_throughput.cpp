// Table 2: average throughput achieved up to 50 s for the three Fig. 1
// scenarios (left: 5,000 el/s c=100; center: 10,000 el/s c=100; right:
// 10,000 el/s c=500), 10 servers, no added delay.
//
// Paper values (el/s): Vanilla 171/100/100, Compresschain 996/571/743,
// Hashchain 4183/2540/7369. Shape to reproduce: Hashchain >> Compresschain
// >> Vanilla in every column, and Hashchain improving with collector 500.
#include "bench_common.hpp"

int main() {
  using namespace setchain;
  using namespace setchain::bench;

  runner::print_title("Table 2 - Throughput comparison (up to 50 s) for Figure 1");

  struct Col {
    const char* name;
    double rate;
    std::uint32_t collector;
  };
  const Col cols[] = {{"Left (5k, c=100)", 5'000, 100},
                      {"Center (10k, c=100)", 10'000, 100},
                      {"Right (10k, c=500)", 10'000, 500}};
  const Algorithm algos[] = {Algorithm::kVanilla, Algorithm::kCompresschain,
                             Algorithm::kHashchain};

  std::vector<std::vector<std::string>> rows;
  for (const Algorithm algo : algos) {
    std::vector<std::string> row{runner::algorithm_name(algo)};
    for (const Col& col : cols) {
      const Scenario s = paper_scenario(algo, 10, col.rate, col.collector);
      const auto r = runner::run_scenario(s);
      row.push_back(runner::fmt_rate(r.avg_throughput_50s) + " el/s");
    }
    rows.push_back(std::move(row));
  }
  runner::print_table({"Algorithm", cols[0].name, cols[1].name, cols[2].name}, rows);
  std::printf(
      "\nPaper reference: Vanilla 171/100/100, Compresschain 996/571/743,\n"
      "Hashchain 4183/2540/7369 el/s. Absolute numbers depend on the testbed;\n"
      "the ordering and the collector-500 gain for Hashchain must hold.\n");
  return 0;
}
