// Figure 5 (Appendix F): commit time of the first element and of the
// 10%..50% fractions of all added elements, swept over (a) sending rate,
// (b) number of servers, (c) network delay — same grids as Fig. 3.
#include "fig3_common.hpp"

namespace {

using namespace setchain;
using namespace setchain::bench;

std::string commit_cells(const SweepResult& r) {
  std::string s = runner::fmt_opt_seconds(r.commit_first);
  for (const auto& f : r.commit_fraction) s += " / " + runner::fmt_opt_seconds(f);
  return s;
}

template <typename Axis, typename Fn>
void sweep(const char* title, const std::vector<std::string>& headers,
           const std::vector<Axis>& axis, Fn&& run_one) {
  runner::print_subtitle(title);
  std::printf("cells: commit time [s] of first / 10%% / 20%% / 30%% / 40%% / 50%%"
              " of elements ('-' = not reached before the horizon)\n");
  const auto grid = run_grid(fig3_variants(), axis, run_one);
  std::vector<std::vector<std::string>> rows;
  for (std::size_t vi = 0; vi < fig3_variants().size(); ++vi) {
    std::vector<std::string> row{fig3_variants()[vi].name};
    for (const auto& res : grid[vi]) row.push_back(commit_cells(res));
    rows.push_back(std::move(row));
  }
  runner::print_table(headers, rows);
}

}  // namespace

int main() {
  runner::print_title("Figure 5 - Commit times under different scenarios");

  sweep("Fig. 5a - impact of sending rate (10 servers, 0 delay)",
        {"Variant", "500 el/s", "1000 el/s", "5000 el/s", "10000 el/s"},
        std::vector<double>{500, 1'000, 5'000, 10'000},
        [](const AlgoVariant& v, double rate) {
          return run_variant(v.algo, 10, rate, v.collector, 0);
        });

  sweep("Fig. 5b - impact of number of servers (10,000 el/s, 0 delay)",
        {"Variant", "4 servers", "7 servers", "10 servers"},
        std::vector<std::uint32_t>{4, 7, 10},
        [](const AlgoVariant& v, std::uint32_t n) {
          return run_variant(v.algo, n, 10'000, v.collector, 0);
        });

  sweep("Fig. 5c - impact of network delay (10 servers, 10,000 el/s)",
        {"Variant", "0 ms", "30 ms", "100 ms"},
        std::vector<double>{0, 30, 100},
        [](const AlgoVariant& v, double ms) {
          return run_variant(v.algo, 10, 10'000, v.collector, sim::from_millis(ms));
        });

  std::printf(
      "\nExpected shape (paper): Vanilla commits its first element earliest but\n"
      "its fractions drag out under load; higher rates and delays push commit\n"
      "times up; more servers slow Vanilla/Compresschain slightly while\n"
      "Hashchain benefits (more peers for the reversal service).\n");
  return 0;
}
