// scenario_cli: run any Setchain scenario from the command line and print
// the paper-style metrics — a small workbench for exploring the parameter
// space beyond the bundled benchmarks.
//
//   $ ./scenario_cli --algo hashchain --n 10 --rate 10000 --collector 500
//                    --delay-ms 30 --duration 50 --series
//
// Flags (all optional):
//   --algo vanilla|compresschain|hashchain   (default hashchain)
//   --n <servers>            --rate <el/s>       --collector <entries>
//   --f <k>                  --delay-ms <ms>     --duration <s>
//   --horizon <s>            --committee <k>     --no-reversal
//   --no-validate            --full-fidelity     --seed <u64>
//   --series
//   --byz-refuse <node>      --byz-corrupt <node> --byz-fake <node>
//   (fault-injection flags are repeatable, one node index each)
//
// Network/process fault schedule (repeatable; times in seconds, * = any
// node, heal/restart 'never' keeps the fault active to the horizon):
//   --fault-drop FROM,TO,P,START,END          drop link messages w.p. P
//   --fault-partition N1+N2+..,START,HEAL[,oneway]   cut group off cluster
//   --fault-delay MS,START,END                add MS ms to every message
//   --fault-crash NODE,START,RESTART[,wipe]   crash (RESTART may be 'never')
//
// Parameter sanity (f within the Byzantine bound, fault targets within the
// cluster, heal times after starts, drop probabilities in [0,1], ...) is
// Scenario::validate()'s job; violations are printed verbatim.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "runner/report.hpp"

namespace {

using namespace setchain;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--algo vanilla|compresschain|hashchain] [--n N]\n"
               "          [--rate EL_PER_S] [--collector C] [--f K] [--delay-ms MS]\n"
               "          [--duration S] [--horizon S] [--committee K]\n"
               "          [--no-reversal] [--no-validate] [--full-fidelity]\n"
               "          [--seed U64] [--series]\n"
               "          [--byz-refuse NODE] [--byz-corrupt NODE] [--byz-fake NODE]\n"
               "          [--fault-drop FROM,TO,P,START,END]\n"
               "          [--fault-partition N1+N2+..,START,HEAL[,oneway]]\n"
               "          [--fault-delay MS,START,END]\n"
               "          [--fault-crash NODE,START,RESTART[,wipe]]\n",
               argv0);
  std::exit(2);
}

/// Split "a,b,c" on commas (no escaping; empty fields are kept).
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t at = text.find(sep, begin);
    out.push_back(text.substr(begin, at - begin));
    if (at == std::string::npos) break;
    begin = at + 1;
  }
  return out;
}

sim::NodeId parse_node(const std::string& text, const char* argv0) {
  if (text == "*") return sim::kAnyNode;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v >= sim::kAnyNode) usage(argv0);
  return static_cast<sim::NodeId>(v);
}

double parse_f64(const std::string& text, const char* argv0) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') usage(argv0);
  return v;
}

/// END/HEAL/RESTART field: seconds, or 'never'.
sim::Time parse_heal(const std::string& text, const char* argv0) {
  if (text == "never") return sim::kNeverHeals;
  return sim::from_seconds(parse_f64(text, argv0));
}

}  // namespace

int main(int argc, char** argv) {
  runner::Scenario s;
  s.algorithm = runner::Algorithm::kHashchain;
  s.n = 10;
  s.sending_rate = 10'000;
  s.collector_limit = 100;
  bool print_series = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    // Strict parses: atoi/atof would turn a typo into a silent 0.
    auto next_u32 = [&]() -> std::uint32_t {
      const char* text = next();
      char* end = nullptr;
      const unsigned long v = std::strtoul(text, &end, 10);
      if (end == text || *end != '\0' || v > 0xFFFFFFFFul) usage(argv[0]);
      return static_cast<std::uint32_t>(v);
    };
    auto next_u64 = [&]() -> std::uint64_t {
      const char* text = next();
      char* end = nullptr;
      const unsigned long long v = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0') usage(argv[0]);
      return v;
    };
    auto next_f64 = [&]() -> double {
      const char* text = next();
      char* end = nullptr;
      const double v = std::strtod(text, &end);
      if (end == text || *end != '\0') usage(argv[0]);
      return v;
    };
    if (arg == "--algo") {
      const auto algo = runner::parse_algorithm(next());
      if (!algo) usage(argv[0]);
      s.algorithm = *algo;
    } else if (arg == "--n") {
      s.n = next_u32();
    } else if (arg == "--rate") {
      s.sending_rate = next_f64();
    } else if (arg == "--collector") {
      s.collector_limit = next_u32();
    } else if (arg == "--f") {
      s.f = next_u32();
    } else if (arg == "--delay-ms") {
      s.network_delay = sim::from_millis(next_f64());
    } else if (arg == "--duration") {
      s.add_duration = sim::from_seconds(next_f64());
    } else if (arg == "--horizon") {
      s.horizon = sim::from_seconds(next_f64());
    } else if (arg == "--committee") {
      s.hashchain_committee = next_u32();
    } else if (arg == "--no-reversal") {
      s.hash_reversal = false;
    } else if (arg == "--no-validate") {
      s.validate_batches = false;
    } else if (arg == "--full-fidelity") {
      s.fidelity = core::Fidelity::kFull;
    } else if (arg == "--seed") {
      s.seed = next_u64();
    } else if (arg == "--series") {
      print_series = true;
    } else if (arg == "--byz-refuse") {
      s.byz_refuse_batch.push_back(next_u32());
    } else if (arg == "--byz-corrupt") {
      s.byz_corrupt_proofs.push_back(next_u32());
    } else if (arg == "--byz-fake") {
      s.byz_fake_hashes.push_back(next_u32());
    } else if (arg == "--fault-drop") {
      const auto p = split(next(), ',');
      if (p.size() != 5) usage(argv[0]);
      s.faults.faults.push_back(sim::Fault::drop(
          parse_node(p[0], argv[0]), parse_node(p[1], argv[0]),
          parse_f64(p[2], argv[0]), sim::from_seconds(parse_f64(p[3], argv[0])),
          parse_heal(p[4], argv[0])));
    } else if (arg == "--fault-partition") {
      const auto p = split(next(), ',');
      if (p.size() != 3 && p.size() != 4) usage(argv[0]);
      if (p.size() == 4 && p[3] != "oneway") usage(argv[0]);
      std::vector<sim::NodeId> group;
      for (const auto& node : split(p[0], '+')) group.push_back(parse_node(node, argv[0]));
      s.faults.faults.push_back(sim::Fault::partition(
          std::move(group), sim::from_seconds(parse_f64(p[1], argv[0])),
          parse_heal(p[2], argv[0]), /*symmetric=*/p.size() == 3));
    } else if (arg == "--fault-delay") {
      const auto p = split(next(), ',');
      if (p.size() != 3) usage(argv[0]);
      s.faults.faults.push_back(sim::Fault::delay_spike(
          sim::from_millis(parse_f64(p[0], argv[0])),
          sim::from_seconds(parse_f64(p[1], argv[0])), parse_heal(p[2], argv[0])));
    } else if (arg == "--fault-crash") {
      const auto p = split(next(), ',');
      if (p.size() != 3 && p.size() != 4) usage(argv[0]);
      if (p.size() == 4 && p[3] != "wipe") usage(argv[0]);
      s.faults.faults.push_back(sim::Fault::crash(
          parse_node(p[0], argv[0]), sim::from_seconds(parse_f64(p[1], argv[0])),
          parse_heal(p[2], argv[0]), /*wipe=*/p.size() == 4));
    } else {
      usage(argv[0]);
    }
  }
  if (const auto errors = s.validate(); !errors.empty()) {
    for (const auto& e : errors) std::fprintf(stderr, "scenario error: %s\n", e.c_str());
    usage(argv[0]);
  }
  s.lean_state = s.sending_rate >= 50'000;

  runner::Experiment e(s);
  e.run();
  const auto r = e.result();

  runner::print_title(std::string("Scenario: ") + runner::algorithm_name(s.algorithm));
  runner::print_run_summary(s, r);
  std::printf("  f (Byzantine bound)     : %u (quorum f+1 = %u)\n", s.f_value(),
              s.f_value() + 1);
  std::printf("  avg throughput (to 50s) : %.1f el/s\n", r.avg_throughput_50s);
  std::printf("  sustained throughput    : %.1f el/s\n", r.sustained_throughput);
  std::printf("  efficiency 50/75/100 s  : %.2f / %.2f / %.2f\n", r.efficiency_50,
              r.efficiency_75, r.efficiency_100);
  const auto first = e.recorder().commit_time_of_first();
  const auto half = e.recorder().commit_time_of_fraction(0.5);
  std::printf("  first commit            : %s s\n",
              runner::fmt_opt_seconds(first).c_str());
  std::printf("  50%% committed by        : %s s\n",
              runner::fmt_opt_seconds(half).c_str());

  if (const auto* inj = e.fault_injector()) {
    const auto& st = inj->stats();
    std::printf(
        "  faults: dropped %llu (random %llu, partition %llu, crash %llu), "
        "delayed %llu msgs (+%.0f ms total)\n",
        static_cast<unsigned long long>(st.total_dropped()),
        static_cast<unsigned long long>(st.dropped_random),
        static_cast<unsigned long long>(st.dropped_partition),
        static_cast<unsigned long long>(st.dropped_crash),
        static_cast<unsigned long long>(st.delayed), sim::to_millis(st.delay_added));
    std::uint64_t crashes = 0;
    for (std::uint32_t i = 0; i < s.n; ++i) crashes += e.server(i).crash_count();
    if (crashes > 0) {
      std::printf("  faults: server crashes    : %llu\n",
                  static_cast<unsigned long long>(crashes));
    }
  }

  if (print_series) {
    const auto series = e.recorder().committed().rolling_rate(
        sim::from_seconds(9), sim::from_seconds(5),
        sim::from_seconds(r.sim_seconds) + sim::from_seconds(5));
    runner::print_rate_series("committed (9 s rolling)", series, 40);
  }
  return 0;
}
