// Digital registry: the paper motivates Setchain with registries like the
// MIT digital-diploma project, where entries need tamper-evident, ordered-
// by-epoch storage but no order *within* an epoch. This example runs a
// credential registry on Compresschain through the setchain::api facade: an
// issuer publishes diplomas via a QuorumClient, an independent auditor later
// verifies each diploma against an f+1 quorum of servers (proofs gathered
// across the cluster — no single registry server is trusted), and
// tampered/forged entries are rejected by every server.
//
//   $ ./digital_registry
#include <cstdio>
#include <string>

#include "api/quorum_client.hpp"
#include "core/compresschain.hpp"
#include "core/invariants.hpp"
#include "ledger/ledger_node.hpp"

namespace {

using namespace setchain;

struct Registry {
  static constexpr std::uint32_t kServers = 4;
  core::SetchainParams params;
  crypto::Pki pki{2026};
  ledger::InstantLedger ledger{kServers};
  std::vector<std::unique_ptr<core::CompresschainServer>> servers;

  Registry() {
    params.n = kServers;
    params.f = 1;
    params.fidelity = core::Fidelity::kFull;
    params.collector_limit = 8;
    params.collector_timeout = 0;
    for (crypto::ProcessId s = 0; s < kServers; ++s) pki.register_process(s);

    core::ServerContext ctx;
    ctx.ledger = &ledger;
    ctx.pki = &pki;
    ctx.params = &params;
    for (std::uint32_t i = 0; i < kServers; ++i) {
      auto srv = std::make_unique<core::CompresschainServer>(ctx, i);
      ledger.on_new_block(i, [p = srv.get()](const ledger::Block& b) {
        p->on_new_block(b);
      });
      servers.push_back(std::move(srv));
    }
  }

  api::QuorumClient make_client(api::WritePolicy policy, std::size_t primary) {
    return api::make_quorum_client(servers, pki, params.f, params.fidelity, policy,
                                   primary);
  }

  /// Issue a credential: the issuing institution is a Setchain client with
  /// its own key; the diploma text is the element payload.
  core::Element issue(crypto::ProcessId issuer, std::uint64_t serial,
                      const std::string& text) {
    core::Element e;
    e.client = issuer;
    e.id = core::make_element_id(issuer, serial);
    e.payload = codec::to_bytes(text);
    codec::Writer w;
    w.u64le(e.id);
    w.bytes(e.payload);
    e.sig = pki.sign(issuer, w.buffer());
    codec::Writer ser;
    core::serialize_element(ser, e);
    e.wire_size = static_cast<std::uint32_t>(ser.size());
    return e;
  }

  bool pump() {
    for (auto& s : servers) s->collector().flush();
    return ledger.seal_block();
  }
  void settle() {
    for (int round = 0; round < 30; ++round) {
      if (!pump() && !pump()) return;
    }
  }
};

}  // namespace

int main() {
  Registry registry;
  const crypto::ProcessId mit = 500;  // issuing institution
  registry.pki.register_process(mit);

  // The issuer submits through server 0 (its quorum client's primary).
  api::QuorumClient issuer = registry.make_client(api::WritePolicy::kPrimary, 0);

  std::vector<core::ElementId> issued;
  const char* students[] = {"ada lovelace, B.Sc. computer science, 2026",
                            "alan turing, Ph.D. mathematics, 2026",
                            "grace hopper, M.Sc. physics, 2026",
                            "maryam mirzakhani, Ph.D. mathematics, 2026"};
  std::uint64_t serial = 1;
  for (const char* diploma : students) {
    const auto e = registry.issue(mit, serial++, diploma);
    issued.push_back(e.id);
    if (!issuer.add(e).ok) {
      std::printf("issue failed for: %s\n", diploma);
      return 1;
    }
  }
  std::printf("issued %zu diplomas through server 0\n", issued.size());

  // A forged diploma (signature from the wrong key) must be rejected by
  // every server the client fails over to — the add comes back not-ok.
  core::Element forged = registry.issue(mit, 99, "eve mallory, Ph.D. everything");
  forged.sig[3] ^= 0x10;
  const auto forged_result = issuer.add(forged);
  std::printf("forged diploma accepted? %s (refused by all %zu servers tried)\n",
              forged_result.ok ? "YES (BUG)" : "no", forged_result.attempted);

  registry.settle();

  // The auditor is an independent client: it reconciles the registry from
  // an f+1 quorum and commits each diploma only on f+1 valid epoch-proofs
  // from distinct servers, gathered across the cluster.
  api::QuorumClient auditor = registry.make_client(api::WritePolicy::kPrimary, 3);
  std::size_t verified = 0;
  for (const auto id : issued) {
    const auto v = auditor.wait_committed(id, [&] { return registry.pump(); });
    if (v.committed) ++verified;
  }
  std::printf("auditor verified %zu/%zu diplomas against the quorum (f+1 = %u proofs"
              " each)\n",
              verified, issued.size(), auditor.quorum());

  // Registry-wide consistency: every server agrees on every epoch.
  std::vector<const core::SetchainServer*> servers;
  for (auto& s : registry.servers) servers.push_back(s.get());
  const auto safety = core::check_safety(servers);
  std::printf("registry consistency across servers: %s\n",
              safety.ok() ? "OK" : safety.to_string().c_str());

  return (verified == issued.size() && !forged_result.ok && safety.ok()) ? 0 : 1;
}
