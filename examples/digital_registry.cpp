// Digital registry: the paper motivates Setchain with registries like the
// MIT digital-diploma project, where entries need tamper-evident, ordered-
// by-epoch storage but no order *within* an epoch. This example runs a
// credential registry on Compresschain: an issuer publishes diplomas, an
// independent auditor later verifies a diploma against a single server
// using epoch-proofs, and tampered/forged entries are rejected.
//
//   $ ./digital_registry
#include <cstdio>
#include <string>

#include "core/client.hpp"
#include "core/compresschain.hpp"
#include "core/invariants.hpp"
#include "ledger/ledger_node.hpp"

namespace {

using namespace setchain;

struct Registry {
  static constexpr std::uint32_t kServers = 4;
  core::SetchainParams params;
  crypto::Pki pki{2026};
  ledger::InstantLedger ledger{kServers};
  std::vector<std::unique_ptr<core::CompresschainServer>> servers;

  Registry() {
    params.n = kServers;
    params.f = 1;
    params.fidelity = core::Fidelity::kFull;
    params.collector_limit = 8;
    params.collector_timeout = 0;
    for (crypto::ProcessId s = 0; s < kServers; ++s) pki.register_process(s);

    core::ServerContext ctx;
    ctx.ledger = &ledger;
    ctx.pki = &pki;
    ctx.params = &params;
    for (std::uint32_t i = 0; i < kServers; ++i) {
      auto srv = std::make_unique<core::CompresschainServer>(ctx, i);
      ledger.on_new_block(i, [p = srv.get()](const ledger::Block& b) {
        p->on_new_block(b);
      });
      servers.push_back(std::move(srv));
    }
  }

  /// Issue a credential: the issuing institution is a Setchain client with
  /// its own key; the diploma text is the element payload.
  core::Element issue(crypto::ProcessId issuer, std::uint64_t serial,
                      const std::string& text) {
    core::Element e;
    e.client = issuer;
    e.id = core::make_element_id(issuer, serial);
    e.payload = codec::to_bytes(text);
    codec::Writer w;
    w.u64le(e.id);
    w.bytes(e.payload);
    e.sig = pki.sign(issuer, w.buffer());
    codec::Writer ser;
    core::serialize_element(ser, e);
    e.wire_size = static_cast<std::uint32_t>(ser.size());
    return e;
  }

  void settle() {
    for (int round = 0; round < 30; ++round) {
      for (auto& s : servers) s->collector().flush();
      if (!ledger.seal_block()) {
        for (auto& s : servers) s->collector().flush();
        if (!ledger.seal_block()) return;
      }
    }
  }
};

}  // namespace

int main() {
  Registry registry;
  const crypto::ProcessId mit = 500;  // issuing institution
  registry.pki.register_process(mit);

  // Issue a batch of diplomas through server 0.
  std::vector<core::ElementId> issued;
  const char* students[] = {"ada lovelace, B.Sc. computer science, 2026",
                            "alan turing, Ph.D. mathematics, 2026",
                            "grace hopper, M.Sc. physics, 2026",
                            "maryam mirzakhani, Ph.D. mathematics, 2026"};
  std::uint64_t serial = 1;
  for (const char* diploma : students) {
    const auto e = registry.issue(mit, serial++, diploma);
    issued.push_back(e.id);
    if (!registry.servers[0]->add(e)) {
      std::printf("issue failed for: %s\n", diploma);
      return 1;
    }
  }
  std::printf("issued %zu diplomas through server 0\n", issued.size());

  // A forged diploma (signature from the wrong key) must be rejected.
  core::Element forged = registry.issue(mit, 99, "eve mallory, Ph.D. everything");
  forged.sig[3] ^= 0x10;
  const bool forged_accepted = registry.servers[2]->add(forged);
  std::printf("forged diploma accepted? %s\n", forged_accepted ? "YES (BUG)" : "no");

  registry.settle();

  // The auditor talks to ONE server (possibly a different one than the
  // issuer used) and verifies each diploma with f+1 epoch-proofs.
  std::size_t verified = 0;
  for (const auto id : issued) {
    const auto v = core::SetchainClient::verify(*registry.servers[3], id,
                                                registry.pki, registry.params);
    if (v.committed) ++verified;
  }
  std::printf("auditor verified %zu/%zu diplomas against server 3 (f+1 = %u proofs"
              " each)\n",
              verified, issued.size(), registry.params.f + 1);

  // Registry-wide consistency: every server agrees on every epoch.
  std::vector<const core::SetchainServer*> servers;
  for (auto& s : registry.servers) servers.push_back(s.get());
  const auto safety = core::check_safety(servers);
  std::printf("registry consistency across servers: %s\n",
              safety.ok() ? "OK" : safety.to_string().c_str());

  return (verified == issued.size() && !forged_accepted && safety.ok()) ? 0 : 1;
}
