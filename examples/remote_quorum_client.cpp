// Remote quorum client: the paper's Byzantine-tolerant client protocol
// against a LIVE Setchain cluster over TCP — the same QuorumClient the
// simulated examples use, pointed at RemoteNode stubs instead of in-process
// servers (the facade is the seam; nothing else changes).
//
// Spawn the cluster first (see README "Run a live cluster"), then:
//
//   $ ./remote_quorum_client --n 4 --f 1 --algo hashchain --seed 42
//       --node 127.0.0.1:7101 --node 127.0.0.1:7102
//       --node 127.0.0.1:7103 --node 127.0.0.1:7104 --count 24
//   (one command line; wrapped here for readability)
//
// Self-checking: exits 0 only when every added element reaches the
// f+1-agreed quorum view AND one element passes the f+1 epoch-proof commit
// check — so the CI smoke (scripts/tcp_cluster_smoke.sh) can assert a real
// cluster end to end.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/quorum_client.hpp"
#include "net/node_host.hpp"
#include "net/remote_node.hpp"
#include "net/tcp.hpp"

int main(int argc, char** argv) {
  using namespace setchain;
  using namespace std::chrono_literals;

  std::uint32_t n = 4, f = 1, count = 24, first_seq = 0;
  bool have_first_seq = false;
  std::uint64_t seed = 42;
  runner::Algorithm algo = runner::Algorithm::kHashchain;
  runner::LedgerMode ledger = runner::LedgerMode::kFixedSequencer;
  std::vector<std::string> nodes;
  int wait_seconds = 60;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(2);
      return argv[++i];
    };
    if (arg == "--n") {
      n = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--f") {
      f = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--count") {
      count = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--algo") {
      const auto a = runner::parse_algorithm(value());
      if (!a) return 2;
      algo = *a;
    } else if (arg == "--ledger") {
      const auto m = runner::parse_ledger_mode(value());
      if (!m) return 2;
      ledger = *m;
    } else if (arg == "--first-seq") {
      // Element-sequence offset: a second client run against the same
      // cluster must mint FRESH element ids (ids are (client, seq) pairs).
      // Without the flag the client derives it from the cluster's quorum
      // view, so restarted durable clusters accept fresh runs unattended.
      first_seq = static_cast<std::uint32_t>(std::atoi(value()));
      have_first_seq = true;
    } else if (arg == "--node") {
      nodes.emplace_back(value());
    } else if (arg == "--wait-seconds") {
      wait_seconds = std::atoi(value());
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (nodes.size() != n) {
    std::fprintf(stderr, "need exactly n --node entries (got %zu, n=%u)\n",
                 nodes.size(), n);
    return 2;
  }

  // Shared deterministic PKI: the daemons derive the same keys from the same
  // seed, so elements signed here validate over there.
  const std::uint64_t cluster =
      net::wire::cluster_id(seed, n, f, static_cast<std::uint8_t>(algo),
                            static_cast<std::uint8_t>(ledger));
  crypto::Pki pki(seed);
  for (crypto::ProcessId p = 0; p < n + 64; ++p) pki.register_process(p);
  const crypto::ProcessId client_id = n;  // first pre-registered client slot

  // One RemoteNode (TCP stub) per daemon; QuorumClient over all of them,
  // broadcasting adds so no single server is trusted with an element.
  std::vector<std::unique_ptr<net::RemoteNode>> stubs;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string host;
    std::uint16_t port = 0;
    if (!net::parse_host_port(nodes[i], host, port)) {
      std::fprintf(stderr, "bad --node %s\n", nodes[i].c_str());
      return 2;
    }
    net::TcpRpcChannel::Config ch;
    ch.host = host;
    ch.port = port;
    ch.client_id = client_id;
    ch.cluster = cluster;
    stubs.push_back(std::make_unique<net::RemoteNode>(
        std::make_unique<net::TcpRpcChannel>(ch), i, 3000ms));
  }
  api::QuorumClient client = api::make_quorum_client(
      stubs, pki, f, core::Fidelity::kFull, api::WritePolicy::kAll);

  // Wait for the cluster to come up: the first node that answers an epoch
  // query proves the wire path works.
  const auto boot_deadline = std::chrono::steady_clock::now() + 15s;
  for (;;) {
    const auto failures_before = stubs[0]->rpc_failures();
    stubs[0]->epoch();
    if (stubs[0]->rpc_failures() == failures_before) break;  // RPC answered
    if (std::chrono::steady_clock::now() > boot_deadline) {
      std::fprintf(stderr, "cluster did not come up within 15 s\n");
      return 1;
    }
    std::this_thread::sleep_for(200ms);
  }

  // No --first-seq: scan the quorum view for this client's highest used
  // sequence so a rerun against a recovered (or long-lived) cluster mints
  // fresh ids automatically instead of colliding with its own history.
  if (!have_first_seq) {
    const auto view0 = client.get();
    std::uint64_t next = 0;
    for (const auto id : view0.the_set) {
      if (core::element_client(id) != client_id) continue;
      const std::uint64_t s = id & ((std::uint64_t{1} << 40) - 1);
      if (s + 1 > next) next = s + 1;
    }
    first_seq = static_cast<std::uint32_t>(next);
    if (first_seq != 0) {
      std::printf("derived --first-seq %u from the cluster's quorum view\n",
                  first_seq);
    }
  }

  // Add `count` signed elements through the quorum protocol.
  workload::ArbitrumLikeGenerator gen(seed ^ 0xC11E47ULL);
  core::ElementFactory factory(gen, pki, core::Fidelity::kFull);
  std::vector<core::ElementId> added;
  for (std::uint32_t s = first_seq; s < first_seq + count; ++s) {
    const core::Element e = factory.make(client_id, s);
    const auto r = client.add(e);
    if (r.ok) added.push_back(e.id);
  }
  std::printf("added %zu/%u elements through QuorumClient(kAll)\n", added.size(),
              count);
  if (added.size() != count) {
    std::fprintf(stderr, "FAIL: not every add was accepted by a server\n");
    return 1;
  }

  // Wait until the f+1-agreed quorum view contains every element.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(wait_seconds);
  api::QuorumClient::View view;
  for (;;) {
    view = client.get();
    std::size_t present = 0;
    for (const auto id : added) present += view.the_set.contains(id) ? 1 : 0;
    if (present == added.size()) break;
    if (std::chrono::steady_clock::now() > deadline) {
      std::fprintf(stderr,
                   "FAIL: only %zu/%zu elements consolidated within %d s "
                   "(quorum epoch %llu)\n",
                   present, added.size(), wait_seconds,
                   static_cast<unsigned long long>(view.epoch));
      return 1;
    }
    std::this_thread::sleep_for(250ms);
  }
  std::printf("quorum view: epoch %llu, %zu elements consolidated\n",
              static_cast<unsigned long long>(view.epoch), view.the_set.size());

  // Commit check: f+1 valid epoch-proofs from distinct signers, gathered
  // across all nodes' proof stores.
  const auto verdict = client.wait_committed(added.front(), [] {
    std::this_thread::sleep_for(250ms);
    return true;  // a live cluster makes progress on its own
  });
  std::printf("verify(%llu): epoch %llu, %zu valid proofs from %zu nodes -> %s\n",
              static_cast<unsigned long long>(added.front()),
              static_cast<unsigned long long>(verdict.epoch), verdict.valid_proofs,
              verdict.proof_sources, verdict.committed ? "COMMITTED" : "not committed");
  if (!verdict.committed) {
    std::fprintf(stderr, "FAIL: element never reached f+1 epoch-proofs\n");
    return 1;
  }
  std::printf("PASS: live cluster served add/get/verify end to end\n");
  return 0;
}
