// Byzantine tolerance demo: runs a 4-server Hashchain deployment (f = 1)
// with one misbehaving server that (a) refuses to serve batch contents for
// the hashes it announces, (b) signs corrupted epoch-proofs, and (c) pairs
// every batch announcement with a fake hash nobody can reverse, plus a
// Byzantine client injecting invalid elements. Everything added through
// correct servers still commits, the faulty server's proofs are discarded,
// and light clients remain safe even if they happen to query the liar.
//
//   $ ./byzantine_demo
#include <cstdio>

#include "core/invariants.hpp"
#include "runner/experiment.hpp"

int main() {
  using namespace setchain;

  runner::Scenario scenario;
  scenario.algorithm = runner::Algorithm::kHashchain;
  scenario.n = 4;
  scenario.sending_rate = 200;
  scenario.add_duration = sim::from_seconds(5);
  scenario.horizon = sim::from_seconds(120);
  scenario.collector_limit = 25;
  scenario.fidelity = core::Fidelity::kCalibrated;
  scenario.track_ids = true;
  scenario.byz_refuse_batch = {3};    // server 3 withholds batch contents
  scenario.byz_corrupt_proofs = {3};  // ... and signs wrong epoch hashes
  scenario.byz_fake_hashes = {3};     // ... and announces hashes with no batch
  scenario.client_invalid_fraction = 0.15;  // Byzantine clients exist too

  runner::Experiment experiment(scenario);
  experiment.run();
  const auto result = experiment.result();

  std::printf("servers: 4, Byzantine: server 3 (refuses batch service, corrupts"
              " proofs, fakes hashes)\n");
  std::printf("added (valid, accepted): %llu\n",
              static_cast<unsigned long long>(result.elements_added));
  std::printf("committed               : %llu\n",
              static_cast<unsigned long long>(result.elements_committed));
  std::uint64_t rejected = 0;
  for (std::uint32_t i = 0; i < scenario.n; ++i) {
    rejected += experiment.client(i).rejected();
  }
  std::printf("invalid adds rejected   : %llu\n",
              static_cast<unsigned long long>(rejected));

  // 3 of 4 clients talk to correct servers; their elements must all commit.
  // Elements entrusted to the Byzantine server are the paper's "unlucky
  // client" case: the client re-adds via another server after a timeout.
  const double committed_fraction = static_cast<double>(result.elements_committed) /
                                    static_cast<double>(result.elements_added);
  std::printf("committed fraction      : %.2f (>= 0.75 expected: 3 of 4 clients"
              " used correct servers)\n",
              committed_fraction);

  // The corrupt proofs never count: epochs are proven exclusively by the
  // three correct servers.
  bool no_proof_from_liar = true;
  for (std::uint64_t ep = 1; ep <= experiment.server(0).epoch(); ++ep) {
    for (const auto& p : experiment.server(0).proofs_for_epoch(ep)) {
      no_proof_from_liar &= (p.server != 3);
    }
  }
  std::printf("proofs signed by server 3 accepted anywhere: %s\n",
              no_proof_from_liar ? "none" : "SOME (BUG)");

  // A quorum client stays safe even with the liar in its node set: every
  // adopted epoch needs f+1 matching servers, every commit f+1 valid
  // proofs from distinct signers.
  auto client = experiment.make_client();
  const auto verdict = client.verify(experiment.accepted_valid_ids().front());
  std::printf("quorum verify of one committed element: epoch %llu, %zu proofs,"
              " committed %s\n",
              static_cast<unsigned long long>(verdict.epoch), verdict.valid_proofs,
              verdict.committed ? "yes" : "NO");

  const auto servers = experiment.correct_servers();
  const auto safety = core::check_safety(servers);
  std::printf("safety across correct servers: %s\n",
              safety.ok() ? "OK" : safety.to_string().c_str());

  const bool ok = safety.ok() && no_proof_from_liar && verdict.committed &&
                  committed_fraction >= 0.70;
  std::printf("\n%s\n", ok ? "Byzantine demo PASSED" : "Byzantine demo FAILED");
  return ok ? 0 : 1;
}
