// Token ledger: the Appendix-G extension in action — Setchain as a fully
// functional blockchain. Transfers are validated optimistically in parallel
// when added (signatures/syntax only); once an epoch consolidates, every
// server executes its transactions sequentially in canonical order, voiding
// the ones that turn out invalid (double spends). All servers reach
// identical per-epoch state roots.
//
//   $ ./token_ledger
#include <cstdio>

#include "core/hashchain.hpp"
#include "core/invariants.hpp"
#include "exec/executor.hpp"
#include "ledger/ledger_node.hpp"

namespace {

using namespace setchain;

constexpr std::uint32_t kServers = 4;
constexpr exec::AccountId kAlice = 1, kBob = 2, kCarol = 3;

struct Chain {
  core::SetchainParams params;
  crypto::Pki pki{31337};
  ledger::InstantLedger ledger{kServers};
  std::vector<std::unique_ptr<core::HashchainServer>> servers;
  std::vector<std::unique_ptr<exec::EpochExecutor>> executors;

  Chain() {
    params.n = kServers;
    params.f = 1;
    params.fidelity = core::Fidelity::kFull;
    params.collector_limit = 16;
    params.collector_timeout = 0;
    for (crypto::ProcessId s = 0; s < kServers; ++s) pki.register_process(s);
    pki.register_process(100);  // alice's wallet
    pki.register_process(101);  // bob's wallet

    std::vector<core::HashchainServer*> peers;
    for (std::uint32_t i = 0; i < kServers; ++i) {
      auto ex = std::make_unique<exec::EpochExecutor>();
      ex->genesis(kAlice, 1000);
      ex->genesis(kBob, 200);
      ex->genesis(kCarol, 0);
      ex->set_owner(kAlice, 100);
      ex->set_owner(kBob, 101);

      core::ServerContext ctx;
      ctx.ledger = &ledger;
      ctx.pki = &pki;
      ctx.params = &params;
      ctx.on_epoch = [p = ex.get()](const core::EpochRecord& rec,
                                    const std::vector<core::Element>& els) {
        p->on_epoch(rec, els);
      };
      auto srv = std::make_unique<core::HashchainServer>(ctx, i);
      ledger.on_new_block(i, [p = srv.get()](const ledger::Block& b) {
        p->on_new_block(b);
      });
      peers.push_back(srv.get());
      servers.push_back(std::move(srv));
      executors.push_back(std::move(ex));
    }
    for (auto& s : servers) s->connect_peers(peers);
  }

  void settle() {
    for (int i = 0; i < 60; ++i) {
      for (auto& s : servers) s->collector().flush();
      if (!ledger.seal_block()) {
        for (auto& s : servers) s->collector().flush();
        if (!ledger.seal_block()) return;
      }
    }
  }
};

}  // namespace

int main() {
  Chain chain;
  // Each wallet keeps its own nonce stream and submits through one server:
  // Setchain orders *across* epochs only, so a wallet scattering nonces
  // across servers could see later nonces consolidate first (and voided).
  std::uint64_t alice_seq = 1, bob_seq = 1;
  auto alice_sends = [&](exec::TokenTx tx) {
    chain.servers[0]->add(exec::make_token_element(chain.pki, 100, alice_seq++, tx));
  };
  auto bob_sends = [&](exec::TokenTx tx) {
    chain.servers[1]->add(exec::make_token_element(chain.pki, 101, bob_seq++, tx));
  };

  std::printf("genesis: alice=1000, bob=200, carol=0 (supply 1200)\n\n");

  alice_sends({kAlice, kBob, 300, 0});
  bob_sends({kBob, kCarol, 150, 0});
  alice_sends({kAlice, kCarol, 100, 1});
  // Theft attempt: bob's wallet signs a transfer out of ALICE's account.
  // It parses fine and the element signature verifies, but execution voids
  // it: account 1 is owned by client 100.
  bob_sends({kAlice, kBob, 500, 2});
  // Double spend attempt: alice has 600 left and signs two 400-transfers.
  // Both pass optimistic validation (each alone is affordable) — sequential
  // epoch execution must void the second, identically on every server.
  alice_sends({kAlice, kBob, 400, 2});
  alice_sends({kAlice, kCarol, 400, 3});

  chain.settle();

  const auto& ex0 = *chain.executors[0];
  std::printf("executed %llu transfers, voided %llu, across %llu epochs\n",
              static_cast<unsigned long long>(ex0.executed()),
              static_cast<unsigned long long>(ex0.voided()),
              static_cast<unsigned long long>(ex0.epochs_executed()));
  for (const auto& rec : ex0.log()) {
    std::printf("  epoch %llu: %llu -> %llu amount %llu : %s\n",
                static_cast<unsigned long long>(rec.epoch),
                static_cast<unsigned long long>(rec.tx.from),
                static_cast<unsigned long long>(rec.tx.to),
                static_cast<unsigned long long>(rec.tx.amount),
                exec::void_reason_name(rec.verdict));
  }

  std::printf("\nfinal balances (server 0): alice=%llu bob=%llu carol=%llu"
              " (supply %llu)\n",
              static_cast<unsigned long long>(ex0.state().balance(kAlice)),
              static_cast<unsigned long long>(ex0.state().balance(kBob)),
              static_cast<unsigned long long>(ex0.state().balance(kCarol)),
              static_cast<unsigned long long>(ex0.state().total_supply()));

  bool roots_agree = true;
  for (std::uint32_t i = 1; i < kServers; ++i) {
    roots_agree &= (chain.executors[i]->state_root() == ex0.state_root());
  }
  std::printf("state roots identical on all %u servers: %s\n", kServers,
              roots_agree ? "yes" : "NO");

  const bool supply_ok = ex0.state().total_supply() == 1200;
  // Exactly two voids expected: bob's theft attempt and the double spend.
  std::size_t thefts = 0, double_spends = 0;
  for (const auto& rec : ex0.log()) {
    thefts += (rec.verdict == exec::VoidReason::kUnauthorized);
    double_spends += (rec.verdict == exec::VoidReason::kInsufficientFunds);
  }
  std::printf("theft voided: %zu, double spend voided: %zu\n", thefts, double_spends);
  return (roots_agree && supply_ok && thefts == 1 && double_spends == 1) ? 0 : 1;
}
