// Token ledger: the Appendix-G extension in action — Setchain as a fully
// functional blockchain. Transfers are validated optimistically in parallel
// when added (signatures/syntax only); once an epoch consolidates, every
// server executes its transactions sequentially in canonical order, voiding
// the ones that turn out invalid (double spends). All servers reach
// identical per-epoch state roots. Wallets submit through the setchain::api
// facade (one QuorumClient per wallet), and settlement finality is checked
// the way the paper's client does: f+1 epoch-proofs gathered across servers.
//
//   $ ./token_ledger
#include <cstdio>

#include "api/quorum_client.hpp"
#include "core/hashchain.hpp"
#include "core/invariants.hpp"
#include "exec/executor.hpp"
#include "ledger/ledger_node.hpp"

namespace {

using namespace setchain;

constexpr std::uint32_t kServers = 4;
constexpr exec::AccountId kAlice = 1, kBob = 2, kCarol = 3;

struct Chain {
  core::SetchainParams params;
  crypto::Pki pki{31337};
  ledger::InstantLedger ledger{kServers};
  std::vector<std::unique_ptr<core::HashchainServer>> servers;
  std::vector<std::unique_ptr<exec::EpochExecutor>> executors;

  Chain() {
    params.n = kServers;
    params.f = 1;
    params.fidelity = core::Fidelity::kFull;
    params.collector_limit = 16;
    params.collector_timeout = 0;
    for (crypto::ProcessId s = 0; s < kServers; ++s) pki.register_process(s);
    pki.register_process(100);  // alice's wallet
    pki.register_process(101);  // bob's wallet

    std::vector<core::HashchainServer*> peers;
    for (std::uint32_t i = 0; i < kServers; ++i) {
      auto ex = std::make_unique<exec::EpochExecutor>();
      ex->genesis(kAlice, 1000);
      ex->genesis(kBob, 200);
      ex->genesis(kCarol, 0);
      ex->set_owner(kAlice, 100);
      ex->set_owner(kBob, 101);

      core::ServerContext ctx;
      ctx.ledger = &ledger;
      ctx.pki = &pki;
      ctx.params = &params;
      ctx.on_epoch = [p = ex.get()](const core::EpochRecord& rec,
                                    const std::vector<core::Element>& els) {
        p->on_epoch(rec, els);
      };
      auto srv = std::make_unique<core::HashchainServer>(ctx, i);
      ledger.on_new_block(i, [p = srv.get()](const ledger::Block& b) {
        p->on_new_block(b);
      });
      peers.push_back(srv.get());
      servers.push_back(std::move(srv));
      executors.push_back(std::move(ex));
    }
    for (auto& s : servers) s->connect_peers(peers);
  }

  /// A wallet fronts the cluster through the quorum facade; `primary` is the
  /// server it submits through (failover past refusals is automatic).
  api::QuorumClient wallet_client(std::size_t primary) {
    return api::make_quorum_client(servers, pki, params.f, params.fidelity,
                                   api::WritePolicy::kPrimary, primary);
  }

  bool pump() {
    for (auto& s : servers) s->collector().flush();
    return ledger.seal_block();
  }
  void settle() {
    for (int i = 0; i < 60; ++i) {
      if (!pump() && !pump()) return;
    }
  }
};

}  // namespace

int main() {
  Chain chain;
  // Each wallet keeps its own nonce stream and submits through one server
  // (its quorum client's primary): Setchain orders *across* epochs only, so
  // a wallet scattering nonces across servers could see later nonces
  // consolidate first (and voided).
  api::QuorumClient alice_wallet = chain.wallet_client(0);
  api::QuorumClient bob_wallet = chain.wallet_client(1);
  std::uint64_t alice_seq = 1, bob_seq = 1;
  core::ElementId first_transfer = 0;
  auto alice_sends = [&](exec::TokenTx tx) {
    const auto e = exec::make_token_element(chain.pki, 100, alice_seq++, tx);
    if (first_transfer == 0) first_transfer = e.id;
    alice_wallet.add(e);
  };
  auto bob_sends = [&](exec::TokenTx tx) {
    bob_wallet.add(exec::make_token_element(chain.pki, 101, bob_seq++, tx));
  };

  std::printf("genesis: alice=1000, bob=200, carol=0 (supply 1200)\n\n");

  alice_sends({kAlice, kBob, 300, 0});
  bob_sends({kBob, kCarol, 150, 0});
  alice_sends({kAlice, kCarol, 100, 1});
  // Theft attempt: bob's wallet signs a transfer out of ALICE's account.
  // It parses fine and the element signature verifies, but execution voids
  // it: account 1 is owned by client 100.
  bob_sends({kAlice, kBob, 500, 2});
  // Double spend attempt: alice has 600 left and signs two 400-transfers.
  // Both pass optimistic validation (each alone is affordable) — sequential
  // epoch execution must void the second, identically on every server.
  alice_sends({kAlice, kBob, 400, 2});
  alice_sends({kAlice, kCarol, 400, 3});

  chain.settle();

  // Settlement finality through the facade: alice's first transfer must be
  // committed — consolidated into an f+1-agreed epoch carrying f+1 valid
  // proofs from distinct servers, gathered across the cluster.
  const auto finality =
      alice_wallet.wait_committed(first_transfer, [&] { return chain.pump(); });
  std::printf("alice's first transfer: epoch %llu, %zu proofs from %zu servers,"
              " committed %s\n\n",
              static_cast<unsigned long long>(finality.epoch), finality.valid_proofs,
              finality.proof_sources, finality.committed ? "yes" : "NO");

  const auto& ex0 = *chain.executors[0];
  std::printf("executed %llu transfers, voided %llu, across %llu epochs\n",
              static_cast<unsigned long long>(ex0.executed()),
              static_cast<unsigned long long>(ex0.voided()),
              static_cast<unsigned long long>(ex0.epochs_executed()));
  for (const auto& rec : ex0.log()) {
    std::printf("  epoch %llu: %llu -> %llu amount %llu : %s\n",
                static_cast<unsigned long long>(rec.epoch),
                static_cast<unsigned long long>(rec.tx.from),
                static_cast<unsigned long long>(rec.tx.to),
                static_cast<unsigned long long>(rec.tx.amount),
                exec::void_reason_name(rec.verdict));
  }

  std::printf("\nfinal balances (server 0): alice=%llu bob=%llu carol=%llu"
              " (supply %llu)\n",
              static_cast<unsigned long long>(ex0.state().balance(kAlice)),
              static_cast<unsigned long long>(ex0.state().balance(kBob)),
              static_cast<unsigned long long>(ex0.state().balance(kCarol)),
              static_cast<unsigned long long>(ex0.state().total_supply()));

  bool roots_agree = true;
  for (std::uint32_t i = 1; i < kServers; ++i) {
    roots_agree &= (chain.executors[i]->state_root() == ex0.state_root());
  }
  std::printf("state roots identical on all %u servers: %s\n", kServers,
              roots_agree ? "yes" : "NO");

  const bool supply_ok = ex0.state().total_supply() == 1200;
  // Exactly two voids expected: bob's theft attempt and the double spend.
  std::size_t thefts = 0, double_spends = 0;
  for (const auto& rec : ex0.log()) {
    thefts += (rec.verdict == exec::VoidReason::kUnauthorized);
    double_spends += (rec.verdict == exec::VoidReason::kInsufficientFunds);
  }
  std::printf("theft voided: %zu, double spend voided: %zu\n", thefts, double_spends);
  return (roots_agree && supply_ok && thefts == 1 && double_spends == 1 &&
          finality.committed)
             ? 0
             : 1;
}
