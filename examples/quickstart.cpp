// Quickstart: stand up a 4-server Hashchain Setchain on the simulated
// CometBFT ledger, add a handful of elements, wait for commits, and verify
// one element the way the paper's client does — a quorum read reconciled
// from f+1 matching servers plus an f+1 epoch-proof commit check gathered
// across the cluster.
//
//   $ ./quickstart
#include <cstdio>

#include "api/scenario_builder.hpp"
#include "core/invariants.hpp"
#include "runner/experiment.hpp"

int main() {
  using namespace setchain;

  // 1. Describe the deployment: 4 servers (tolerating f=1 Byzantine), full
  //    fidelity (real Ed25519 + SHA-512 + szx compression), clients adding
  //    120 elements/second for three simulated seconds. build() validates
  //    the parameters (f within the Byzantine bound, positive rates, ...).
  const runner::Scenario scenario = api::ScenarioBuilder()
                                        .algorithm(runner::Algorithm::kHashchain)
                                        .servers(4)
                                        .faults(1)
                                        .rate(120)
                                        .add_seconds(3)
                                        .horizon_seconds(60)
                                        .collector(20)
                                        .full_fidelity()
                                        .track_ids()
                                        .build();

  // 2. Build and run. The Experiment wires servers, clients, the PKI and the
  //    consensus simulation together exactly like the paper's docker nodes.
  runner::Experiment experiment(scenario);
  experiment.run();

  const auto result = experiment.result();
  std::printf("added      : %llu elements\n",
              static_cast<unsigned long long>(result.elements_added));
  std::printf("committed  : %llu elements (f+1 epoch-proofs on the ledger)\n",
              static_cast<unsigned long long>(result.elements_committed));
  std::printf("epochs     : %llu\n", static_cast<unsigned long long>(result.epochs));
  std::printf("blocks     : %llu\n", static_cast<unsigned long long>(result.blocks));
  std::printf("sim time   : %.1f s (wall %.0f ms)\n", result.sim_seconds,
              result.wall_ms);

  // 3. Client verification (§2 of the paper): a quorum client reads all
  //    servers, adopts only epochs that f+1 of them agree on, and commits
  //    an element once f+1 distinct servers signed its epoch — no single
  //    server is trusted anywhere in this path.
  api::QuorumClient client = experiment.make_client();
  const core::ElementId some_element = experiment.accepted_valid_ids().front();
  const auto view = client.get();
  const auto verdict = client.verify(some_element);
  std::printf("\nquorum-client check of element %llu across all 4 servers:\n",
              static_cast<unsigned long long>(some_element));
  std::printf("  epochs agreed by f+1    : %llu\n",
              static_cast<unsigned long long>(view.epoch));
  std::printf("  in the consolidated set : %s\n",
              view.the_set.contains(some_element) ? "yes" : "no");
  std::printf("  in epoch                : %llu\n",
              static_cast<unsigned long long>(verdict.epoch));
  std::printf("  valid proofs            : %zu from %zu servers (need f+1 = %u)\n",
              verdict.valid_proofs, verdict.proof_sources, client.quorum());
  std::printf("  committed               : %s\n", verdict.committed ? "yes" : "no");

  // 4. The Setchain properties (1-8) hold at quiescence.
  const auto servers = experiment.correct_servers();
  const auto safety = core::check_safety(servers);
  const auto liveness = core::check_liveness_quiescent(
      servers, experiment.accepted_valid_ids(), experiment.params(), experiment.pki());
  std::printf("\ninvariants: safety %s, liveness %s\n",
              safety.ok() ? "OK" : "VIOLATED", liveness.ok() ? "OK" : "VIOLATED");
  return safety.ok() && liveness.ok() && verdict.committed ? 0 : 1;
}
