// Quickstart: stand up a 4-server Hashchain Setchain on the simulated
// CometBFT ledger, add a handful of elements, wait for commits, and verify
// one element the way a light client would (one get() against one server,
// f+1 epoch-proof check).
//
//   $ ./quickstart
#include <cstdio>

#include "core/invariants.hpp"
#include "runner/experiment.hpp"

int main() {
  using namespace setchain;

  // 1. Describe the deployment: 4 servers (tolerating f=1 Byzantine), full
  //    fidelity (real Ed25519 + SHA-512 + szx compression), clients adding
  //    120 elements/second for three simulated seconds.
  runner::Scenario scenario;
  scenario.algorithm = runner::Algorithm::kHashchain;
  scenario.n = 4;
  scenario.sending_rate = 120;
  scenario.add_duration = sim::from_seconds(3);
  scenario.horizon = sim::from_seconds(60);
  scenario.collector_limit = 20;
  scenario.fidelity = core::Fidelity::kFull;
  scenario.track_ids = true;

  // 2. Build and run. The Experiment wires servers, clients, the PKI and the
  //    consensus simulation together exactly like the paper's docker nodes.
  runner::Experiment experiment(scenario);
  experiment.run();

  const auto result = experiment.result();
  std::printf("added      : %llu elements\n",
              static_cast<unsigned long long>(result.elements_added));
  std::printf("committed  : %llu elements (f+1 epoch-proofs on the ledger)\n",
              static_cast<unsigned long long>(result.elements_committed));
  std::printf("epochs     : %llu\n", static_cast<unsigned long long>(result.epochs));
  std::printf("blocks     : %llu\n", static_cast<unsigned long long>(result.blocks));
  std::printf("sim time   : %.1f s (wall %.0f ms)\n", result.sim_seconds,
              result.wall_ms);

  // 3. Light-client verification (§2 of the paper): talk to ONE server, find
  //    the element's epoch, recompute the epoch hash, and accept it only
  //    with f+1 valid signatures from distinct servers.
  const core::ElementId some_element = experiment.accepted_valid_ids().front();
  const auto verdict = core::SetchainClient::verify(
      experiment.server(1), some_element, experiment.pki(), experiment.params());
  std::printf("\nlight-client check of element %llu against server 1:\n",
              static_cast<unsigned long long>(some_element));
  std::printf("  in the_set   : %s\n", verdict.in_the_set ? "yes" : "no");
  std::printf("  in epoch     : %llu\n", static_cast<unsigned long long>(verdict.epoch));
  std::printf("  valid proofs : %zu (need f+1 = %u)\n", verdict.valid_proofs,
              experiment.params().f + 1);
  std::printf("  committed    : %s\n", verdict.committed ? "yes" : "no");

  // 4. The Setchain properties (1-8) hold at quiescence.
  const auto servers = experiment.correct_servers();
  const auto safety = core::check_safety(servers);
  const auto liveness = core::check_liveness_quiescent(
      servers, experiment.accepted_valid_ids(), experiment.params(), experiment.pki());
  std::printf("\ninvariants: safety %s, liveness %s\n",
              safety.ok() ? "OK" : "VIOLATED", liveness.ok() ? "OK" : "VIOLATED");
  return safety.ok() && liveness.ok() && verdict.committed ? 0 : 1;
}
