// E-voting rounds: the paper's second motivating application (Follow My
// Vote, Chirotonia). Ballots within a voting round need no mutual order —
// only the round boundaries matter — which is exactly the Setchain epoch
// structure. This example runs ballots through Hashchain via the
// setchain::api facade: every voter submits through their own QuorumClient,
// the tally is computed from a quorum-reconciled get() (f+1 servers must
// agree on every epoch counted), duplicate ballots (double voting via
// broadcast) are counted once, and the audit check commits each ballot with
// f+1 epoch-proofs gathered across servers.
//
//   $ ./voting
#include <cstdio>
#include <map>
#include <string>

#include "api/quorum_client.hpp"
#include "core/hashchain.hpp"
#include "core/invariants.hpp"
#include "ledger/ledger_node.hpp"

namespace {

using namespace setchain;

struct Election {
  static constexpr std::uint32_t kServers = 4;
  core::SetchainParams params;
  crypto::Pki pki{777};
  ledger::InstantLedger ledger{kServers};
  std::vector<std::unique_ptr<core::HashchainServer>> servers;
  std::map<core::ElementId, std::string> ballot_choice;  // audit trail

  Election() {
    params.n = kServers;
    params.f = 1;
    params.fidelity = core::Fidelity::kFull;
    params.collector_limit = 64;  // flushed manually at round close
    params.collector_timeout = 0;
    for (crypto::ProcessId s = 0; s < kServers; ++s) pki.register_process(s);

    core::ServerContext ctx;
    ctx.ledger = &ledger;
    ctx.pki = &pki;
    ctx.params = &params;
    std::vector<core::HashchainServer*> peers;
    for (std::uint32_t i = 0; i < kServers; ++i) {
      auto srv = std::make_unique<core::HashchainServer>(ctx, i);
      ledger.on_new_block(i, [p = srv.get()](const ledger::Block& b) {
        p->on_new_block(b);
      });
      peers.push_back(srv.get());
      servers.push_back(std::move(srv));
    }
    for (auto& s : servers) s->connect_peers(peers);
  }

  /// Each voter talks to the cluster through their own quorum client; the
  /// servers are only ever reached through the ISetchainNode interface.
  api::QuorumClient make_client(api::WritePolicy policy, std::size_t primary) {
    return api::make_quorum_client(servers, pki, params.f, params.fidelity, policy,
                                   primary);
  }

  core::Element ballot(crypto::ProcessId voter, std::uint64_t seq,
                       const std::string& choice) {
    core::Element e;
    e.client = voter;
    e.id = core::make_element_id(voter, seq);
    e.payload = codec::to_bytes("ballot:" + choice);
    codec::Writer w;
    w.u64le(e.id);
    w.bytes(e.payload);
    e.sig = pki.sign(voter, w.buffer());
    codec::Writer ser;
    core::serialize_element(ser, e);
    e.wire_size = static_cast<std::uint32_t>(ser.size());
    ballot_choice[e.id] = choice;
    return e;
  }

  /// Close the round: flush collectors and drain the ledger so every pending
  /// ballot lands in consolidated epochs.
  bool pump() {
    for (auto& s : servers) s->collector().flush();
    return ledger.seal_block();
  }
  void close_round() {
    for (int i = 0; i < 60; ++i) {
      if (!pump() && !pump()) return;
    }
  }

  /// Tally every epoch in [from_epoch, to_epoch] from a quorum-reconciled
  /// view: every counted epoch carries f+1 matching server words.
  std::map<std::string, int> tally(api::QuorumClient& observer,
                                   std::uint64_t from_epoch, std::uint64_t to_epoch) {
    std::map<std::string, int> counts;
    const auto view = observer.get();
    for (const auto& rec : view.history) {
      if (rec.number < from_epoch || rec.number > to_epoch) continue;
      for (const auto id : rec.ids) {
        auto it = ballot_choice.find(id);
        if (it != ballot_choice.end()) ++counts[it->second];
      }
    }
    return counts;
  }
};

}  // namespace

int main() {
  Election election;
  // Register 9 voters, each fronting the cluster with their own client.
  std::vector<api::QuorumClient> voters;
  for (crypto::ProcessId v = 1000; v < 1009; ++v) {
    election.pki.register_process(v);
    voters.push_back(
        election.make_client(api::WritePolicy::kPrimary, (v - 1000) % 4));
  }

  // ---- Round 1: voters 1000..1008 vote; one tries to double-vote.
  std::vector<core::ElementId> round1_ballots;
  std::uint64_t seq = 1;
  const char* round1_votes[] = {"fennel", "fennel", "rhubarb", "fennel", "rhubarb",
                                "fennel", "rhubarb", "rhubarb", "fennel"};
  for (int i = 0; i < 9; ++i) {
    const auto b = election.ballot(1000 + static_cast<crypto::ProcessId>(i), seq,
                                   round1_votes[i]);
    round1_ballots.push_back(b.id);
    voters[static_cast<std::size_t>(i)].add(b);
  }
  // Voter 1000 double-votes by broadcasting the SAME signed ballot to every
  // server (WritePolicy::kAll); Unique-Epoch guarantees it is counted once.
  api::QuorumClient spammer = election.make_client(api::WritePolicy::kAll, 1);
  const auto dup = election.ballot(1000, seq, round1_votes[0]);
  spammer.add(dup);

  election.close_round();
  api::QuorumClient observer = election.make_client(api::WritePolicy::kPrimary, 0);
  const std::uint64_t round1_end = observer.get().epoch;
  auto tally1 = election.tally(observer, 1, round1_end);
  std::printf("round 1 closed at epoch %llu (f+1 quorum agreed)\n",
              static_cast<unsigned long long>(round1_end));
  for (const auto& [choice, n] : tally1) std::printf("  %-8s %d\n", choice.c_str(), n);

  // ---- Round 2: a runoff with fewer voters.
  ++seq;
  const char* round2_votes[] = {"fennel", "rhubarb", "fennel", "fennel", "rhubarb"};
  for (int i = 0; i < 5; ++i) {
    const auto b = election.ballot(1000 + static_cast<crypto::ProcessId>(i), seq,
                                   round2_votes[i]);
    voters[static_cast<std::size_t>(i)].add(b);
  }
  election.close_round();
  const std::uint64_t round2_end = observer.get().epoch;
  auto tally2 = election.tally(observer, round1_end + 1, round2_end);
  std::printf("round 2 closed at epoch %llu\n",
              static_cast<unsigned long long>(round2_end));
  for (const auto& [choice, n] : tally2) std::printf("  %-8s %d\n", choice.c_str(), n);

  // An auditor re-verifies every round-1 ballot: each must commit with f+1
  // valid epoch-proofs from distinct servers, gathered across the cluster.
  api::QuorumClient auditor = election.make_client(api::WritePolicy::kPrimary, 3);
  bool all_committed = true;
  for (const auto id : round1_ballots) {
    const auto v = auditor.wait_committed(id, [&] { return election.pump(); });
    all_committed = all_committed && v.committed;
  }
  std::printf("all %zu round-1 ballots committed with f+1 cross-server proofs: %s\n",
              round1_ballots.size(), all_committed ? "yes" : "NO");

  std::vector<const core::SetchainServer*> servers;
  for (auto& s : election.servers) servers.push_back(s.get());
  const bool consistent = core::check_safety(servers).ok();
  std::printf("cross-server consistency: %s\n", consistent ? "OK" : "VIOLATED");

  const bool counts_ok = tally1["fennel"] == 5 && tally1["rhubarb"] == 4 &&
                         tally2["fennel"] == 3 && tally2["rhubarb"] == 2;
  std::printf("double vote counted once: %s\n", counts_ok ? "yes" : "NO");
  const bool nobody_masked = observer.get().masked_nodes == 0;
  std::printf("no server flagged as equivocating: %s\n", nobody_masked ? "yes" : "NO");
  return (all_committed && consistent && counts_ok && nobody_masked) ? 0 : 1;
}
