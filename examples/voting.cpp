// E-voting rounds: the paper's second motivating application (Follow My
// Vote, Chirotonia). Ballots within a voting round need no mutual order —
// only the round boundaries matter — which is exactly the Setchain epoch
// structure. This example runs ballots through Hashchain, uses epochs as
// round barriers, tallies per epoch, and shows that duplicate ballots
// (double voting via two servers) are counted once.
//
//   $ ./voting
#include <cstdio>
#include <map>
#include <string>

#include "core/hashchain.hpp"
#include "core/invariants.hpp"
#include "ledger/ledger_node.hpp"

namespace {

using namespace setchain;

struct Election {
  static constexpr std::uint32_t kServers = 4;
  core::SetchainParams params;
  crypto::Pki pki{777};
  ledger::InstantLedger ledger{kServers};
  std::vector<std::unique_ptr<core::HashchainServer>> servers;
  std::map<core::ElementId, std::string> ballot_choice;  // audit trail

  Election() {
    params.n = kServers;
    params.f = 1;
    params.fidelity = core::Fidelity::kFull;
    params.collector_limit = 64;  // flushed manually at round close
    params.collector_timeout = 0;
    for (crypto::ProcessId s = 0; s < kServers; ++s) pki.register_process(s);

    core::ServerContext ctx;
    ctx.ledger = &ledger;
    ctx.pki = &pki;
    ctx.params = &params;
    std::vector<core::HashchainServer*> peers;
    for (std::uint32_t i = 0; i < kServers; ++i) {
      auto srv = std::make_unique<core::HashchainServer>(ctx, i);
      ledger.on_new_block(i, [p = srv.get()](const ledger::Block& b) {
        p->on_new_block(b);
      });
      peers.push_back(srv.get());
      servers.push_back(std::move(srv));
    }
    for (auto& s : servers) s->connect_peers(peers);
  }

  core::Element ballot(crypto::ProcessId voter, std::uint64_t seq,
                       const std::string& choice) {
    core::Element e;
    e.client = voter;
    e.id = core::make_element_id(voter, seq);
    e.payload = codec::to_bytes("ballot:" + choice);
    codec::Writer w;
    w.u64le(e.id);
    w.bytes(e.payload);
    e.sig = pki.sign(voter, w.buffer());
    codec::Writer ser;
    core::serialize_element(ser, e);
    e.wire_size = static_cast<std::uint32_t>(ser.size());
    ballot_choice[e.id] = choice;
    return e;
  }

  /// Close the round: flush collectors and drain the ledger so every pending
  /// ballot lands in consolidated epochs.
  void close_round() {
    for (int i = 0; i < 60; ++i) {
      for (auto& s : servers) s->collector().flush();
      if (!ledger.seal_block()) {
        for (auto& s : servers) s->collector().flush();
        if (!ledger.seal_block()) return;
      }
    }
  }

  /// Tally every epoch in [from_epoch, to_epoch] from one server's history.
  std::map<std::string, int> tally(std::uint64_t from_epoch, std::uint64_t to_epoch) {
    std::map<std::string, int> counts;
    const auto snap = servers[0]->get();
    for (const auto& rec : *snap.history) {
      if (rec.number < from_epoch || rec.number > to_epoch) continue;
      for (const auto id : rec.ids) {
        auto it = ballot_choice.find(id);
        if (it != ballot_choice.end()) ++counts[it->second];
      }
    }
    return counts;
  }
};

}  // namespace

int main() {
  Election election;
  // Register 9 voters.
  for (crypto::ProcessId v = 1000; v < 1009; ++v) election.pki.register_process(v);

  // ---- Round 1: voters 1000..1008 vote; one tries to double-vote.
  std::uint64_t seq = 1;
  const char* round1_votes[] = {"fennel", "fennel", "rhubarb", "fennel", "rhubarb",
                                "fennel", "rhubarb", "rhubarb", "fennel"};
  for (int i = 0; i < 9; ++i) {
    const auto b = election.ballot(1000 + static_cast<crypto::ProcessId>(i), seq,
                                   round1_votes[i]);
    election.servers[static_cast<std::size_t>(i) % 4]->add(b);
  }
  // Voter 1000 double-votes by submitting the SAME signed ballot to two
  // other servers; Unique-Epoch guarantees it is counted once.
  const auto dup = election.ballot(1000, seq, round1_votes[0]);
  election.servers[1]->add(dup);
  election.servers[2]->add(dup);

  election.close_round();
  const std::uint64_t round1_end = election.servers[0]->epoch();
  auto tally1 = election.tally(1, round1_end);
  std::printf("round 1 closed at epoch %llu\n",
              static_cast<unsigned long long>(round1_end));
  for (const auto& [choice, n] : tally1) std::printf("  %-8s %d\n", choice.c_str(), n);

  // ---- Round 2: a runoff with fewer voters.
  ++seq;
  const char* round2_votes[] = {"fennel", "rhubarb", "fennel", "fennel", "rhubarb"};
  for (int i = 0; i < 5; ++i) {
    const auto b = election.ballot(1000 + static_cast<crypto::ProcessId>(i), seq,
                                   round2_votes[i]);
    election.servers[static_cast<std::size_t>(i) % 4]->add(b);
  }
  election.close_round();
  const std::uint64_t round2_end = election.servers[0]->epoch();
  auto tally2 = election.tally(round1_end + 1, round2_end);
  std::printf("round 2 closed at epoch %llu\n",
              static_cast<unsigned long long>(round2_end));
  for (const auto& [choice, n] : tally2) std::printf("  %-8s %d\n", choice.c_str(), n);

  // Every epoch carries f+1 proofs, so any observer can re-run this tally
  // against a single server and trust it.
  bool all_proven = true;
  for (std::uint64_t ep = 1; ep <= round2_end; ++ep) {
    all_proven = all_proven && election.servers[3]->epoch_proven(ep);
  }
  std::printf("all %llu epochs carry f+1 epoch-proofs: %s\n",
              static_cast<unsigned long long>(round2_end), all_proven ? "yes" : "NO");

  std::vector<const core::SetchainServer*> servers;
  for (auto& s : election.servers) servers.push_back(s.get());
  const bool consistent = core::check_safety(servers).ok();
  std::printf("cross-server consistency: %s\n", consistent ? "OK" : "VIOLATED");

  const bool counts_ok = tally1["fennel"] == 5 && tally1["rhubarb"] == 4 &&
                         tally2["fennel"] == 3 && tally2["rhubarb"] == 2;
  std::printf("double vote counted once: %s\n", counts_ok ? "yes" : "NO");
  return (all_proven && consistent && counts_ok) ? 0 : 1;
}
