// Load-harness tier: the arrival processes must produce the schedules they
// advertise, the pooled source must stripe exactly, and an open-loop fleet
// soak against a live 4-node TCP cluster must come back with clean framing,
// a bounded tail, and accounting that balances to the element
// (offered == sent + shed + pending_end, sent == acked + in_flight_end).
#include "load/fleet.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "core/element.hpp"
#include "load/arrival.hpp"
#include "load/local_cluster.hpp"
#include "workload/arbitrum_like.hpp"

namespace setchain::load {
namespace {

// ------------------------------------------------------------ arrival tests

TEST(ArrivalProcess, UniformIsExact) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kUniform;
  cfg.rate = 100.0;
  ArrivalProcess p(cfg);
  ASSERT_TRUE(p.open_loop());
  for (int i = 1; i <= 1000; ++i) {
    EXPECT_NEAR(p.next(), i * 0.01, 1e-9);
  }
}

TEST(ArrivalProcess, ZeroRateMeansClosedLoop) {
  ArrivalConfig cfg;
  cfg.rate = 0;
  ArrivalProcess p(cfg);
  EXPECT_FALSE(p.open_loop());
}

TEST(ArrivalProcess, PoissonHitsTargetRateAndIsSeeded) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kPoisson;
  cfg.rate = 500.0;
  cfg.seed = 7;

  ArrivalProcess p(cfg);
  const int n = 50'000;
  double t = 0, prev = 0;
  for (int i = 0; i < n; ++i) {
    t = p.next();
    ASSERT_GE(t, prev) << "schedule went backwards";
    prev = t;
  }
  // Realized rate n / t: 50k exponential gaps put the sample mean within a
  // fraction of a percent of 1/rate with overwhelming probability.
  EXPECT_NEAR(n / t, cfg.rate, 0.05 * cfg.rate);

  // Same seed → identical schedule; different seed → different schedule.
  ArrivalProcess again(cfg);
  for (int i = 0; i < 100; ++i) p.next();
  ArrivalProcess replay(cfg);
  cfg.seed = 8;
  ArrivalProcess other(cfg);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const double a = again.next();
    EXPECT_DOUBLE_EQ(a, replay.next());
    if (std::abs(a - other.next()) > 1e-12) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(ArrivalProcess, BurstAlternatesRates) {
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBurst;
  cfg.rate = 100.0;
  cfg.burst_rate = 1000.0;
  cfg.burst_on_s = 1.0;
  cfg.burst_off_s = 4.0;
  cfg.seed = 3;
  ArrivalProcess p(cfg);

  // Bucket arrivals over many periods into on/off windows.
  const double horizon = 100.0;  // 20 periods
  std::uint64_t on = 0, off = 0;
  for (;;) {
    const double t = p.next();
    if (t >= horizon) break;
    const double pos = std::fmod(t, cfg.burst_on_s + cfg.burst_off_s);
    (pos < cfg.burst_on_s ? on : off) += 1;
  }
  // Expect ~20 * 1000 on-arrivals and ~20 * 400 off-arrivals.
  EXPECT_NEAR(static_cast<double>(on), 20'000.0, 0.1 * 20'000.0);
  EXPECT_NEAR(static_cast<double>(off), 8'000.0, 0.1 * 8'000.0);
}

// ------------------------------------------------------------- source tests

TEST(PooledElementSource, StripesExactlyOnce) {
  std::vector<core::Element> pool(10);
  for (std::size_t i = 0; i < pool.size(); ++i) pool[i].id = 1000 + i;

  PooledElementSource src(pool, 3);
  // Session 0 owns 0, 3, 6, 9; session 1 owns 1, 4, 7; session 2 owns 2, 5, 8.
  EXPECT_EQ(src.next(0)->id, 1000u);
  EXPECT_EQ(src.next(1)->id, 1001u);
  EXPECT_EQ(src.next(0)->id, 1003u);
  EXPECT_EQ(src.next(2)->id, 1002u);
  EXPECT_EQ(src.next(0)->id, 1006u);
  EXPECT_EQ(src.next(0)->id, 1009u);
  EXPECT_EQ(src.next(0), nullptr);  // session 0 exhausted
  EXPECT_EQ(src.next(1)->id, 1004u);
  EXPECT_EQ(src.next(1)->id, 1007u);
  EXPECT_EQ(src.next(1), nullptr);
  EXPECT_EQ(src.next(2)->id, 1005u);
  EXPECT_EQ(src.next(2)->id, 1008u);
  EXPECT_EQ(src.next(2), nullptr);
  EXPECT_EQ(src.consumed(), pool.size());
}

// -------------------------------------------------------------- fleet soak

net::NodeHostConfig soak_config() {
  net::NodeHostConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.algorithm = runner::Algorithm::kHashchain;
  cfg.ledger_mode = runner::LedgerMode::kFixedSequencer;
  cfg.seed = 42;
  cfg.collector_limit = 64;
  cfg.collector_timeout = sim::from_millis(50);
  cfg.block_interval = sim::from_millis(50);
  cfg.sync_interval = sim::from_millis(400);
  return cfg;
}

std::vector<core::Element> signed_pool(const net::NodeHostConfig& cfg,
                                       std::size_t budget) {
  crypto::Pki pki(cfg.seed);
  for (crypto::ProcessId p = 0; p < cfg.n + cfg.client_slots; ++p) {
    pki.register_process(p);
  }
  workload::ArbitrumLikeGenerator gen(cfg.seed ^ 0xBE7C4ULL);
  core::ElementFactory factory(gen, pki, core::Fidelity::kFull);
  std::vector<core::Element> pool;
  pool.reserve(budget);
  for (std::size_t s = 0; s < budget; ++s) pool.push_back(factory.make(cfg.n, s));
  return pool;
}

TEST(LoadFleet, OpenLoopSoakBalancesToTheElement) {
  const auto cfg = soak_config();
  LocalCluster cluster(cfg);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  FleetConfig fc;
  fc.targets = cluster.targets();
  fc.cluster = cluster.cluster_id();
  fc.sessions = 32;
  fc.window = 64;

  const auto pool = signed_pool(cfg, 4'000);
  PooledElementSource source(pool, fc.sessions);

  LoadFleet fleet(fc);
  ASSERT_EQ(fleet.connect(), fc.sessions) << "fleet failed to dial the cluster";

  ArrivalConfig arrival;
  arrival.kind = ArrivalKind::kPoisson;
  arrival.rate = 400.0;
  arrival.seed = 11;
  const PhaseStats st = fleet.run_phase(source, arrival, 3.0);
  fleet.close();
  cluster.shutdown();

  // Clean run: every session survived, no framing damage anywhere.
  EXPECT_EQ(st.sessions_alive, fc.sessions);
  EXPECT_EQ(st.decode_errors, 0u);
  EXPECT_EQ(st.io_errors, 0u);
  EXPECT_EQ(cluster.counters_total().decode_errors, 0u);
  EXPECT_EQ(cluster.counters_total().send_drops, 0u);

  // The schedule ran open loop near its target (Poisson, 3 s at 400/s).
  EXPECT_GT(st.offered, 900u);
  EXPECT_LT(st.offered, 1500u);
  EXPECT_EQ(st.shed, 0u) << "cluster fell behind a modest schedule";

  // Offered-vs-completed accounting balances to the element.
  EXPECT_EQ(st.offered, st.sent + st.shed + st.pending_end);
  EXPECT_EQ(st.sent, st.acked + st.in_flight_end)
      << "acks lost with every session alive";
  EXPECT_GT(st.acked, 0u);
  EXPECT_EQ(st.accepted, st.acked) << "cluster refused valid signed adds";

  // Tail bounded: p99 under two seconds on a healthy local cluster, and the
  // recorder saw exactly the acked population.
  EXPECT_EQ(st.latency_us.count(), st.acked);
  EXPECT_LT(st.latency_us.percentile(0.99), 2'000'000u);
  EXPECT_LE(st.queue_peak, fc.max_pending);
}

TEST(LoadFleet, ClosedLoopAndSecondPhaseReuseSessions) {
  const auto cfg = soak_config();
  LocalCluster cluster(cfg);
  cluster.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  FleetConfig fc;
  fc.targets = cluster.targets();
  fc.cluster = cluster.cluster_id();
  fc.sessions = 8;
  fc.window = 16;

  const auto pool = signed_pool(cfg, 60'000);
  PooledElementSource source(pool, fc.sessions);
  LoadFleet fleet(fc);
  ASSERT_EQ(fleet.connect(), fc.sessions);

  // Phase 1: closed loop (rate 0) — offered is defined as sent.
  ArrivalConfig closed;
  closed.rate = 0;
  const PhaseStats p1 = fleet.run_phase(source, closed, 1.0);
  EXPECT_EQ(p1.offered, p1.sent);
  EXPECT_EQ(p1.sent, p1.acked + p1.in_flight_end);
  EXPECT_GT(p1.acked, 0u);
  EXPECT_EQ(p1.decode_errors, 0u);

  // Phase 2 on the SAME sessions: rate curves reuse connections.
  ArrivalConfig open;
  open.kind = ArrivalKind::kUniform;
  open.rate = 200.0;
  const PhaseStats p2 = fleet.run_phase(source, open, 1.0);
  EXPECT_EQ(p2.sessions_alive, fc.sessions);
  EXPECT_EQ(p2.offered, p2.sent + p2.shed + p2.pending_end);
  EXPECT_GT(p2.acked, 0u);

  fleet.close();
  EXPECT_EQ(fleet.sessions_alive(), 0u);
  cluster.shutdown();
}

}  // namespace
}  // namespace setchain::load
