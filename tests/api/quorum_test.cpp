// setchain::api facade tests: the quorum client protocol under Byzantine
// nodes (equivocating snapshots, corrupt proofs, refused writes, proofs
// spread across the cluster), the scenario builder's validation, and the
// bounds-checked epoch-proof accessor.
#include <gtest/gtest.h>

#include <stdexcept>

#include "api/quorum_client.hpp"
#include "api/scenario_builder.hpp"
#include "core/algo_fixture.hpp"
#include "runner/experiment.hpp"
#include "runner/scenario.hpp"

namespace setchain {
namespace {

using core::testing::AlgoHarness;

// ---------------------------------------------------------------------------
// Byzantine node wrappers. QuorumClient only sees ISetchainNode, so a test
// can stand in for a lying server without touching server internals — the
// same seam a remote transport stub will use.

/// Returns a doctored snapshot: content hashes flipped and ids perturbed
/// (a server lying about what the epochs contain).
class EquivocatingNode final : public api::ISetchainNode {
 public:
  explicit EquivocatingNode(core::SetchainServer& real) : real_(real) {}

  bool add(core::Element e) override { return real_.add(std::move(e)); }

  api::NodeSnapshot snapshot() const override {
    const auto s = real_.get();
    fake_history_ = *s.history;
    for (auto& rec : fake_history_) {
      rec.hash[0] ^= 0xFF;
      if (!rec.ids.empty()) rec.ids.front() ^= 0x1;
    }
    api::NodeSnapshot out = s;
    out.history = &fake_history_;
    return out;
  }

  const std::vector<core::EpochProof>& proofs_for_epoch(
      std::uint64_t e) const override {
    return real_.proofs_for_epoch(e);
  }
  std::uint64_t epoch() const override { return real_.epoch(); }
  crypto::ProcessId node_id() const override { return real_.node_id(); }

 private:
  core::SetchainServer& real_;
  mutable std::vector<core::EpochRecord> fake_history_;
};

/// Returns a structurally bogus history: record i claims to be epoch i+2.
class WrongNumberNode final : public api::ISetchainNode {
 public:
  explicit WrongNumberNode(core::SetchainServer& real) : real_(real) {}

  bool add(core::Element e) override { return real_.add(std::move(e)); }

  api::NodeSnapshot snapshot() const override {
    const auto s = real_.get();
    fake_history_ = *s.history;
    for (auto& rec : fake_history_) rec.number += 1;
    api::NodeSnapshot out = s;
    out.history = &fake_history_;
    return out;
  }

  const std::vector<core::EpochProof>& proofs_for_epoch(
      std::uint64_t e) const override {
    return real_.proofs_for_epoch(e);
  }
  std::uint64_t epoch() const override { return real_.epoch(); }
  crypto::ProcessId node_id() const override { return real_.node_id(); }

 private:
  core::SetchainServer& real_;
  mutable std::vector<core::EpochRecord> fake_history_;
};

/// Serves reads truthfully but only reveals the epoch-proofs signed by its
/// own server — so no single node ever holds an f+1 committing proof set
/// and verify() must gather signatures across the cluster.
class ProofSliceNode final : public api::ISetchainNode {
 public:
  explicit ProofSliceNode(core::SetchainServer& real) : real_(real) {}

  bool add(core::Element e) override { return real_.add(std::move(e)); }
  api::NodeSnapshot snapshot() const override { return real_.get(); }

  const std::vector<core::EpochProof>& proofs_for_epoch(
      std::uint64_t e) const override {
    scratch_.clear();
    for (const auto& p : real_.proofs_for_epoch(e)) {
      if (p.server == real_.node_id()) scratch_.push_back(p);
    }
    return scratch_;
  }
  std::uint64_t epoch() const override { return real_.epoch(); }
  crypto::ProcessId node_id() const override { return real_.node_id(); }

 private:
  core::SetchainServer& real_;
  mutable std::vector<core::EpochProof> scratch_;
};

/// Refuses every add; reads pass through.
class RefusingNode final : public api::ISetchainNode {
 public:
  explicit RefusingNode(core::SetchainServer& real) : real_(real) {}

  bool add(core::Element) override { return false; }
  api::NodeSnapshot snapshot() const override { return real_.get(); }
  const std::vector<core::EpochProof>& proofs_for_epoch(
      std::uint64_t e) const override {
    return real_.proofs_for_epoch(e);
  }
  std::uint64_t epoch() const override { return real_.epoch(); }
  crypto::ProcessId node_id() const override { return real_.node_id(); }

 private:
  core::SetchainServer& real_;
};

template <typename Server>
api::QuorumClient make_client(AlgoHarness<Server>& h,
                              std::vector<api::ISetchainNode*> nodes,
                              api::WritePolicy policy = api::WritePolicy::kPrimary,
                              std::size_t primary = 0) {
  return api::make_quorum_client(std::move(nodes), h.pki, h.params.f,
                                 h.params.fidelity, policy, primary);
}

template <typename Server>
std::vector<api::ISetchainNode*> real_nodes(AlgoHarness<Server>& h) {
  std::vector<api::ISetchainNode*> nodes;
  for (auto& s : h.servers) nodes.push_back(s.get());
  return nodes;
}

// ------------------------------------------------------- proofs_for_epoch

TEST(ProofsForEpoch, BoundsCheckedAccessor) {
  AlgoHarness<core::HashchainServer> h(4, 4);
  auto client = make_client(h, real_nodes(h));
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    EXPECT_TRUE(client.add(h.make_element(0, seq)).ok);
  }
  h.seal_rounds();

  const auto& server = *h.servers[0];
  ASSERT_GE(server.epoch(), 1u);
  EXPECT_TRUE(server.proofs_for_epoch(0).empty());  // epoch numbering is 1-based
  EXPECT_GE(server.proofs_for_epoch(1).size(), h.params.f + 1);
  EXPECT_TRUE(server.proofs_for_epoch(server.epoch() + 5).empty());
}

// --------------------------------------------------------- write policies

TEST(QuorumAdd, PrimaryWritesToOneNodeAndFailsOverOnRefusal) {
  AlgoHarness<core::HashchainServer> h(4, 8);
  auto direct = make_client(h, real_nodes(h));
  const auto r1 = direct.add(h.make_element(0, 1));
  EXPECT_TRUE(r1.ok);
  EXPECT_EQ(r1.accepted, 1u);
  EXPECT_EQ(r1.attempted, 1u);

  // Node 0 refuses: the client fails over to node 1 and flags node 0.
  RefusingNode refuser(*h.servers[0]);
  std::vector<api::ISetchainNode*> nodes = real_nodes(h);
  nodes[0] = &refuser;
  auto failover = make_client(h, std::move(nodes));
  const auto r2 = failover.add(h.make_element(0, 2));
  EXPECT_TRUE(r2.ok);
  EXPECT_EQ(r2.accepted, 1u);
  EXPECT_EQ(r2.attempted, 2u);
  EXPECT_EQ(failover.node_status(0), api::NodeStatus::kRefusing);
  EXPECT_EQ(failover.node_status(1), api::NodeStatus::kOk);
}

TEST(QuorumAdd, QuorumAndBroadcastPolicies) {
  AlgoHarness<core::HashchainServer> h(4, 8);
  auto quorum = make_client(h, real_nodes(h), api::WritePolicy::kQuorum);
  const auto rq = quorum.add(h.make_element(0, 1));
  EXPECT_TRUE(rq.ok);
  EXPECT_EQ(rq.accepted, h.params.f + 1);

  auto all = make_client(h, real_nodes(h), api::WritePolicy::kAll);
  const auto ra = all.add(h.make_element(0, 2));
  EXPECT_TRUE(ra.ok);
  EXPECT_EQ(ra.accepted, 4u);
  EXPECT_EQ(ra.attempted, 4u);
}

TEST(QuorumAdd, InvalidElementRefusedWithoutBlameAndWithBoundedFailover) {
  AlgoHarness<core::HashchainServer> h(4, 8);
  auto client = make_client(h, real_nodes(h));
  const auto r = client.add(h.factory.make_invalid(100, 1));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.accepted, 0u);
  // Failover stops after f+1 nodes: that set provably contains a correct
  // server, so further attempts could only waste cluster-wide validation
  // work on an element that is simply bad.
  EXPECT_EQ(r.attempted, h.params.f + 1);
  for (std::size_t i = 0; i < client.node_count(); ++i) {
    EXPECT_EQ(client.node_status(i), api::NodeStatus::kOk) << i;
  }
}

// ------------------------------------------- quorum reads under equivocation

/// The acceptance scenario: n=10, f=3, three Byzantine servers that both
/// sign corrupted epoch-proofs and serve fake snapshots. A quorum client
/// over all ten nodes must reconstruct the correct consolidated view (the
/// liars are outvoted by f+1 correct servers), mask the liars, and commit
/// elements via proofs from the correct seven.
class EquivocationSuite : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 10;

  EquivocationSuite() : h(kN, 4) {
    for (const std::uint32_t s : {7u, 8u, 9u}) {
      auto b = h.servers[s]->byzantine();
      b.corrupt_proofs = true;
      h.servers[s]->set_byzantine(b);
    }
  }

  /// Drive a workload through the facade and quiesce.
  void run_workload() {
    auto submit = make_client(h, real_nodes(h), api::WritePolicy::kPrimary, 0);
    std::uint64_t seq = 0;
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 10; ++i) {
        const auto e = h.make_element(static_cast<std::uint32_t>(i), ++seq);
        if (submit.add(e).ok) accepted.push_back(e.id);
      }
      h.flush_collectors();
      h.ledger.seal_block();
    }
    h.seal_rounds(400);
  }

  /// Ten nodes as the client sees them: 7 honest, 2 content liars, 1
  /// structural liar.
  std::vector<api::ISetchainNode*> byzantine_nodes() {
    liars.clear();
    auto nodes = real_nodes(h);
    liars.push_back(std::make_unique<EquivocatingNode>(*h.servers[7]));
    nodes[7] = liars.back().get();
    liars.push_back(std::make_unique<EquivocatingNode>(*h.servers[8]));
    nodes[8] = liars.back().get();
    auto wrong = std::make_unique<WrongNumberNode>(*h.servers[9]);
    nodes[9] = wrong.get();
    wrong_number = std::move(wrong);
    return nodes;
  }

  AlgoHarness<core::HashchainServer> h;
  std::vector<core::ElementId> accepted;
  std::vector<std::unique_ptr<EquivocatingNode>> liars;
  std::unique_ptr<WrongNumberNode> wrong_number;
};

TEST_F(EquivocationSuite, GetOutvotesEquivocatingServers) {
  ASSERT_EQ(h.params.f, 3u);
  run_workload();
  ASSERT_GT(accepted.size(), 30u);

  auto client = make_client(h, byzantine_nodes());
  const auto view = client.get();

  // The reconciled view is exactly a correct server's history.
  const auto truth = h.servers[0]->get();
  ASSERT_EQ(view.epoch, truth.epoch);
  ASSERT_EQ(view.history.size(), truth.history->size());
  for (std::size_t i = 0; i < view.history.size(); ++i) {
    EXPECT_EQ(view.history[i].number, (*truth.history)[i].number);
    EXPECT_EQ(view.history[i].ids, (*truth.history)[i].ids);
    EXPECT_EQ(view.history[i].hash, (*truth.history)[i].hash);
  }
  for (const auto id : accepted) EXPECT_TRUE(view.the_set.contains(id));

  // All three liars are masked; the correct seven are not.
  EXPECT_EQ(view.masked_nodes, 3u);
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(client.node_status(i), api::NodeStatus::kOk) << i;
  }
  for (std::size_t i = 7; i < 10; ++i) {
    EXPECT_EQ(client.node_status(i), api::NodeStatus::kEquivocating) << i;
  }
}

TEST_F(EquivocationSuite, VerifyCommitsDespiteCorruptProofServers) {
  run_workload();
  auto client = make_client(h, byzantine_nodes());

  const auto v = client.verify(accepted.front());
  EXPECT_TRUE(v.in_epoch);
  // The three corrupt servers' proofs bind the wrong hash and never count;
  // the seven correct signers clear the f+1 = 4 threshold.
  EXPECT_GE(v.valid_proofs, h.params.f + 1);
  EXPECT_LE(v.valid_proofs, 7u);
  EXPECT_TRUE(v.committed);

  // Unknown elements do not commit.
  const auto missing = client.verify(core::make_element_id(99, 12345));
  EXPECT_FALSE(missing.in_epoch);
  EXPECT_FALSE(missing.committed);
}

TEST(QuorumVerify, GathersProofsSpreadAcrossServers) {
  AlgoHarness<core::HashchainServer> h(10, 4);
  std::vector<std::unique_ptr<ProofSliceNode>> slices;
  std::vector<api::ISetchainNode*> nodes;
  for (auto& s : h.servers) {
    slices.push_back(std::make_unique<ProofSliceNode>(*s));
    nodes.push_back(slices.back().get());
  }
  auto client = make_client(h, std::move(nodes));

  std::vector<core::ElementId> accepted;
  for (std::uint64_t seq = 1; seq <= 12; ++seq) {
    const auto e = h.make_element(0, seq);
    ASSERT_TRUE(client.add(e).ok);
    accepted.push_back(e.id);
  }
  h.seal_rounds();

  const auto v = client.verify(accepted.front());
  ASSERT_TRUE(v.in_epoch);
  // No single node reveals more than its own proof — an f+1 set exists only
  // across servers — yet the quorum client commits.
  for (std::size_t i = 0; i < slices.size(); ++i) {
    EXPECT_LE(slices[i]->proofs_for_epoch(v.epoch).size(), 1u) << i;
  }
  EXPECT_TRUE(v.committed);
  EXPECT_GE(v.valid_proofs, h.params.f + 1);
  EXPECT_GE(v.proof_sources, h.params.f + 1);

  // A client pinned to one such node cannot commit: one proof < f+1.
  auto lonely = make_client(h, {slices[0].get()});
  const auto lv = lonely.verify(accepted.front());
  EXPECT_FALSE(lv.committed);
}

TEST(QuorumVerify, WaitCommittedPumpsUntilProofsLand) {
  AlgoHarness<core::HashchainServer> h(4, 4);
  auto client = make_client(h, real_nodes(h));
  const auto e = h.make_element(0, 1);
  ASSERT_TRUE(client.add(e).ok);

  // Nothing sealed yet: not committed.
  EXPECT_FALSE(client.verify(e.id).committed);

  const auto v = client.wait_committed(e.id, [&h] {
    h.flush_collectors();
    return h.ledger.seal_block();
  });
  EXPECT_TRUE(v.committed);
  EXPECT_GE(v.valid_proofs, h.params.f + 1);
}

// ----------------------------------------------- crashed / isolated primaries

// The facade face of a crash fault: a dead primary refuses adds, so the
// kPrimary walk must fail over within f+1 attempts, and serves empty reads,
// so get() reaches its f+1 agreement from the remaining live nodes.
TEST(QuorumUnderCrash, DeadPrimaryFailsOverWithinQuorumAttemptsAndGetAgrees) {
  AlgoHarness<core::HashchainServer> h(4, 4);
  auto client = make_client(h, real_nodes(h));  // kPrimary, primary = node 0
  std::vector<core::ElementId> accepted;

  // Healthy primary: one attempt per add. Collector limit 4 -> the batch
  // self-emits, so nothing is sitting in node 0's collector at crash time.
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    const auto e = h.make_element(0, seq);
    const auto r = client.add(e);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.attempted, 1u);
    accepted.push_back(e.id);
  }
  h.seal_rounds();

  h.servers[0]->crash(/*wipe=*/false);
  EXPECT_TRUE(h.servers[0]->is_down());
  EXPECT_EQ(h.servers[0]->snapshot().history, nullptr);  // serves nothing
  EXPECT_TRUE(h.servers[0]->proofs_for_epoch(1).empty());

  // Adds while the primary is dead: exactly one failover hop (f+1 = 2
  // attempts bound the walk), and node 0 is flagged as refusing.
  for (std::uint64_t seq = 5; seq <= 8; ++seq) {
    const auto e = h.make_element(0, seq);
    const auto r = client.add(e);
    ASSERT_TRUE(r.ok) << seq;
    EXPECT_EQ(r.attempted, 2u);
    EXPECT_EQ(r.accepted, 1u);
    accepted.push_back(e.id);
  }
  EXPECT_EQ(client.node_status(0), api::NodeStatus::kRefusing);

  // get() still reaches f+1 agreement: the three live nodes carry the view.
  const auto view = client.get();
  EXPECT_EQ(view.masked_nodes, 0u);  // dead != equivocating
  const auto truth = h.servers[1]->get();
  ASSERT_EQ(view.epoch, truth.history->size());
  for (const auto id : accepted) {
    if (view.the_set.contains(id)) continue;
    // Post-crash adds are still in live collectors until the next seal.
    EXPECT_GT(id, accepted[3]) << "pre-crash element missing from quorum view";
  }

  h.servers[0]->restart();
  EXPECT_FALSE(h.servers[0]->is_down());
  EXPECT_EQ(h.servers[0]->crash_count(), 1u);
}

// Full-stack variant (satellite of the fault-injection layer): the primary
// both crashes and is partitioned mid-run inside the simulation. Its
// co-located client keeps adding through the facade, so every add during the
// outage fails over; after heal the cluster reconverges and the quorum view
// matches the correct servers.
TEST(QuorumUnderPartition, PrimaryIsolatedMidRunFailsOverAndRecovers) {
  runner::Scenario s;
  s.algorithm = runner::Algorithm::kHashchain;
  s.n = 4;
  s.sending_rate = 200;
  s.collector_limit = 20;
  s.add_duration = sim::from_seconds(5);
  s.horizon = sim::from_seconds(180);
  s.track_ids = true;
  s.faults.faults.push_back(sim::Fault::partition({0}, sim::from_seconds(2.0),
                                                  sim::from_seconds(3.5)));
  s.faults.faults.push_back(sim::Fault::crash(0, sim::from_seconds(2.0),
                                              sim::from_seconds(3.5)));

  runner::Experiment e(s);

  // Mid-outage probe: a fresh kPrimary client pinned to the dead node 0.
  workload::ArbitrumLikeGenerator probe_gen(77);
  core::ElementFactory probe_factory(probe_gen, e.pki(), core::Fidelity::kCalibrated);
  e.pki().register_process(100);
  auto probe = e.make_client(api::WritePolicy::kPrimary, 0);
  e.simulation().schedule_at(sim::from_seconds(2.5), [&] {
    const auto r = probe.add(probe_factory.make(100, 1));
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.attempted, 2u);  // f+1 bounds the failover walk
    EXPECT_EQ(r.accepted, 1u);
    EXPECT_EQ(probe.node_status(0), api::NodeStatus::kRefusing);
  });
  e.run();

  // The dead primary's collector contents are lost with it; everything else
  // must commit (clients failed over, the cluster healed).
  const auto r = e.result();
  EXPECT_GT(r.net_dropped, 0u);
  EXPECT_GE(r.elements_committed + s.collector_limit, r.elements_added);
  EXPECT_GT(r.elements_committed, 0u);
  EXPECT_EQ(e.server(0).crash_count(), 1u);

  // Safety holds across every server, the recovered node 0 included, and a
  // quorum client over all four nodes agrees with the correct servers.
  std::vector<const core::SetchainServer*> all;
  for (std::uint32_t i = 0; i < s.n; ++i) all.push_back(&e.server(i));
  const auto safety = core::check_safety(all);
  EXPECT_TRUE(safety.ok()) << safety.to_string();
  auto reader = e.make_client();
  const auto view = reader.get();
  const auto truth = e.server(1).get();
  ASSERT_EQ(view.epoch, truth.history->size());
  for (std::size_t i = 0; i < view.history.size(); ++i) {
    EXPECT_EQ(view.history[i].hash, (*truth.history)[i].hash);
  }
}

// -------------------------------------------------- scenario builder / parse

TEST(ParseAlgorithm, RoundTripsEveryAlgorithmName) {
  for (const auto a : {runner::Algorithm::kVanilla, runner::Algorithm::kCompresschain,
                       runner::Algorithm::kHashchain}) {
    const auto parsed = runner::parse_algorithm(runner::algorithm_name(a));
    ASSERT_TRUE(parsed.has_value()) << runner::algorithm_name(a);
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_EQ(runner::parse_algorithm("hashchain"), runner::Algorithm::kHashchain);
  EXPECT_EQ(runner::parse_algorithm("HASHCHAIN"), runner::Algorithm::kHashchain);
  EXPECT_FALSE(runner::parse_algorithm("merklechain").has_value());
  EXPECT_FALSE(runner::parse_algorithm("").has_value());
}

TEST(ScenarioValidate, AcceptsDefaultsAndPaperGrid) {
  EXPECT_TRUE(runner::Scenario{}.validate().empty());
  runner::Scenario s;
  s.n = 10;
  s.f = 3;
  EXPECT_TRUE(s.validate().empty());
}

TEST(ScenarioValidate, RejectsEachBrokenParameter) {
  const auto broken = [](auto mutate) {
    runner::Scenario s;
    mutate(s);
    return !s.validate().empty();
  };
  EXPECT_TRUE(broken([](runner::Scenario& s) { s.f = 4; }));  // > (10-1)/3
  EXPECT_TRUE(broken([](runner::Scenario& s) { s.sending_rate = 0; }));
  EXPECT_TRUE(broken([](runner::Scenario& s) { s.collector_limit = 0; }));
  EXPECT_TRUE(broken([](runner::Scenario& s) { s.hashchain_committee = 11; }));
  EXPECT_TRUE(broken([](runner::Scenario& s) { s.add_duration = 0; }));
  EXPECT_TRUE(broken([](runner::Scenario& s) { s.horizon = s.add_duration - 1; }));
  EXPECT_TRUE(broken([](runner::Scenario& s) { s.block_bytes = 0; }));
  EXPECT_TRUE(broken([](runner::Scenario& s) { s.byz_corrupt_proofs = {10}; }));
  EXPECT_TRUE(broken([](runner::Scenario& s) { s.client_invalid_fraction = 1.5; }));
}

TEST(ScenarioValidate, RejectsMalformedFaultPlansOneMessageEach) {
  runner::Scenario s;  // default n = 10
  // Three independent violations -> exactly three messages.
  s.faults.faults.push_back(
      sim::Fault::drop(0, 1, /*probability=*/1.7, sim::from_seconds(2),
                       sim::from_seconds(1)));  // heals before start AND p > 1
  s.faults.faults.push_back(sim::Fault::crash(10, 0, sim::from_seconds(1)));
  const auto errors = s.validate();
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_NE(errors[0].find("heals"), std::string::npos);
  EXPECT_NE(errors[1].find("probability"), std::string::npos);
  EXPECT_NE(errors[2].find("node 10"), std::string::npos);

  // Hashchain light mode models a perfect dissemination layer (peers read
  // each other's stores directly) — fault plans are rejected with it.
  runner::Scenario light;
  light.algorithm = runner::Algorithm::kHashchain;
  light.hash_reversal = false;
  EXPECT_TRUE(light.validate().empty());
  light.faults.faults.push_back(
      sim::Fault::crash(0, sim::from_seconds(1), sim::from_seconds(2)));
  const auto light_errors = light.validate();
  ASSERT_EQ(light_errors.size(), 1u);
  EXPECT_NE(light_errors[0].find("light mode"), std::string::npos);
}

TEST(ScenarioValidate, FaultPlanRoundTripsThroughBuilder) {
  // Valid plan: survives build() and lands in the scenario field-for-field.
  const runner::Scenario s = api::ScenarioBuilder()
                                 .servers(7)
                                 .fault_drop(0, 1, 0.25, 1.0, 2.0)
                                 .fault_partition({1, 2}, 0.5, 3.0, /*symmetric=*/false)
                                 .fault_delay(250, 0.0, 4.0)
                                 .fault_crash(3, 1.0, 2.5, /*wipe=*/true)
                                 .fault_crash(4, 1.0)  // never restarts
                                 .build();
  ASSERT_EQ(s.faults.faults.size(), 5u);
  EXPECT_EQ(s.faults.faults[0].kind, sim::FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(s.faults.faults[0].probability, 0.25);
  EXPECT_EQ(s.faults.faults[1].kind, sim::FaultKind::kPartition);
  EXPECT_EQ(s.faults.faults[1].group, (std::vector<sim::NodeId>{1, 2}));
  EXPECT_FALSE(s.faults.faults[1].symmetric);
  EXPECT_EQ(s.faults.faults[2].kind, sim::FaultKind::kDelaySpike);
  EXPECT_EQ(s.faults.faults[2].extra_delay, sim::from_millis(250));
  EXPECT_EQ(s.faults.faults[3].kind, sim::FaultKind::kCrash);
  EXPECT_TRUE(s.faults.faults[3].wipe_state);
  EXPECT_EQ(s.faults.faults[3].end, sim::from_seconds(2.5));
  EXPECT_FALSE(s.faults.faults[4].heals());

  // Malformed plans refuse to build.
  EXPECT_THROW(api::ScenarioBuilder().servers(4).fault_crash(4, 1.0).build(),
               std::invalid_argument);
  EXPECT_THROW(api::ScenarioBuilder().fault_drop(0, 1, 2.0, 1.0, 2.0).build(),
               std::invalid_argument);
  EXPECT_THROW(api::ScenarioBuilder().fault_delay(100, 3.0, 1.0).build(),
               std::invalid_argument);
  EXPECT_THROW(
      api::ScenarioBuilder().servers(4).fault_partition({0, 1, 2, 3}, 0, 1).build(),
      std::invalid_argument);
}

TEST(ScenarioBuilder, BuildsValidatedScenarios) {
  const runner::Scenario s = api::ScenarioBuilder()
                                 .algorithm("compresschain")
                                 .servers(10)
                                 .faults(3)
                                 .rate(5'000)
                                 .collector(200)
                                 .add_seconds(10)
                                 .horizon_seconds(100)
                                 .byzantine_corrupt_proofs(9)
                                 .seed(42)
                                 .build();
  EXPECT_EQ(s.algorithm, runner::Algorithm::kCompresschain);
  EXPECT_EQ(s.n, 10u);
  EXPECT_EQ(s.f_value(), 3u);
  EXPECT_DOUBLE_EQ(s.sending_rate, 5'000.0);
  EXPECT_EQ(s.collector_limit, 200u);
  EXPECT_EQ(s.byz_corrupt_proofs, std::vector<std::uint32_t>{9});
  EXPECT_EQ(s.seed, 42u);
}

TEST(ScenarioBuilder, RejectsInvalidCombinations) {
  EXPECT_THROW(api::ScenarioBuilder().servers(4).faults(3).build(),
               std::invalid_argument);
  EXPECT_THROW(api::ScenarioBuilder().rate(0).build(), std::invalid_argument);
  EXPECT_THROW(api::ScenarioBuilder().servers(4).committee(5).build(),
               std::invalid_argument);
  EXPECT_THROW(api::ScenarioBuilder().algorithm("merklechain").build(),
               std::invalid_argument);
  EXPECT_THROW(api::ScenarioBuilder().servers(4).byzantine_fake_hashes(4).build(),
               std::invalid_argument);
}

}  // namespace
}  // namespace setchain
