#include <gtest/gtest.h>

#include <algorithm>

#include "algo_fixture.hpp"

namespace setchain::core {
namespace {

using testing::AlgoHarness;

using HashHarness = AlgoHarness<HashchainServer>;
using VanillaHarness = AlgoHarness<VanillaServer>;
using CompressHarness = AlgoHarness<CompresschainServer>;

// --------------------------------------------------- Hashchain batch refusal

TEST(ByzantineHashchain, RefusedBatchNeverConsolidates) {
  HashHarness h(4, 2);  // f = 1
  ServerByzantine byz;
  byz.refuse_batch_service = true;
  h.servers[0]->set_byzantine(byz);

  // Elements enter via the Byzantine server: its hash-batch lands on the
  // ledger, but nobody can retrieve the contents, so no correct server ever
  // co-signs and the hash stays below f+1 signatures.
  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  for (int i = 0; i < 10; ++i) h.ledger.seal_block();

  for (std::uint32_t s = 1; s < 4; ++s) {
    EXPECT_EQ(h.servers[s]->epoch(), 0u) << "server " << s;
    EXPECT_EQ(h.servers[s]->consolidation_backlog(), 0u);  // not wedged
  }
  // The rest of the system keeps working: a correct server's batch
  // consolidates normally.
  h.servers[1]->add(h.make_element(1, 1));
  h.servers[1]->add(h.make_element(1, 2));
  h.seal_rounds(120);
  for (std::uint32_t s = 1; s < 4; ++s) {
    EXPECT_EQ(h.servers[s]->epoch(), 1u) << "server " << s;
    EXPECT_TRUE(h.servers[s]->epoch_proven(1));
  }
  const auto correct = std::vector<const SetchainServer*>{
      h.servers[1].get(), h.servers[2].get(), h.servers[3].get()};
  EXPECT_TRUE(check_safety(correct).ok());
}

TEST(ByzantineHashchain, FakeHashAnnouncementIsHarmless) {
  HashHarness h(4, 2);
  ServerByzantine byz;
  byz.refuse_batch_service = true;
  h.servers[3]->set_byzantine(byz);
  h.servers[3]->byz_announce_fake_hash();  // hash with no batch behind it
  h.servers[3]->byz_announce_fake_hash();

  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.seal_rounds(120);

  const auto correct = std::vector<const SetchainServer*>{
      h.servers[0].get(), h.servers[1].get(), h.servers[2].get()};
  for (const auto* s : correct) {
    EXPECT_EQ(s->epoch(), 1u);  // only the real batch became an epoch
  }
  EXPECT_TRUE(check_safety(correct).ok());
}

TEST(ByzantineHashchain, FakeHashBatchesFlagDoesNotStallHonestServers) {
  // The ServerByzantine::fake_hash_batches flag pairs every real batch
  // announcement with a garbage hash nobody can reverse. Honest servers must
  // consolidate all real traffic — including the flag-carrier's own batches —
  // and ignore the fakes without wedging their consolidation queues.
  HashHarness h(4, 2);
  ServerByzantine byz;
  byz.fake_hash_batches = true;
  h.servers[3]->set_byzantine(byz);

  h.servers[3]->add(h.make_element(3, 1));  // via the Byzantine server
  h.servers[3]->add(h.make_element(3, 2));
  h.servers[0]->add(h.make_element(0, 1));  // via a correct server
  h.servers[0]->add(h.make_element(0, 2));
  h.seal_rounds(200);

  // Two real batches -> two epochs; the fake announcements never become one.
  const auto correct = std::vector<const SetchainServer*>{
      h.servers[0].get(), h.servers[1].get(), h.servers[2].get()};
  for (const auto* s : correct) {
    EXPECT_EQ(s->epoch(), 2u) << "server " << s->id();
    EXPECT_EQ(s->the_set_size(), 4u);
  }
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(h.servers[s]->consolidation_backlog(), 0u) << "server " << s;
    EXPECT_TRUE(h.servers[s]->epoch_proven(1));
    EXPECT_TRUE(h.servers[s]->epoch_proven(2));
  }
  // The flag actually fired: the Byzantine server appended more hash-batch
  // announcements than its two real batches alone would produce.
  EXPECT_GT(h.servers[3]->hash_batches_appended(), 2u);
  EXPECT_TRUE(check_safety(correct).ok());
}

// ----------------------------------------------------------- corrupt proofs

TEST(ByzantineProofs, CorruptProofsAreNotCounted) {
  VanillaHarness h(4);
  ServerByzantine byz;
  byz.corrupt_proofs = true;
  h.servers[2]->set_byzantine(byz);

  h.servers[0]->add(h.make_element(0, 1));
  h.seal_rounds();

  for (const std::uint32_t sidx : {0u, 1u, 3u}) {
    const auto snap = h.servers[sidx]->get();
    ASSERT_EQ(snap.history->size(), 1u);
    // Server 2 signed a wrong hash: its proof must be absent.
    for (const auto& p : (*snap.proofs)[0]) EXPECT_NE(p.server, 2u);
    // Still f+1 = 2 (in fact 3) valid proofs: commit-ability preserved.
    EXPECT_TRUE(h.servers[sidx]->epoch_proven(1));
  }
}

TEST(ByzantineProofs, CompresschainCorruptProofsFiltered) {
  CompressHarness h(4, 2);
  ServerByzantine byz;
  byz.corrupt_proofs = true;
  h.servers[1]->set_byzantine(byz);
  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.seal_rounds();
  for (const std::uint32_t sidx : {0u, 2u, 3u}) {
    const auto snap = h.servers[sidx]->get();
    for (const auto& p : (*snap.proofs)[0]) EXPECT_NE(p.server, 1u);
    EXPECT_TRUE(h.servers[sidx]->epoch_proven(1));
  }
}

// -------------------------------------------------------- Byzantine clients

TEST(ByzantineClients, InvalidElementsRejectedAtAdd) {
  HashHarness h(4, 2);
  EXPECT_FALSE(h.servers[0]->add(h.factory.make_invalid(100, 1)));
  EXPECT_EQ(h.servers[0]->the_set_size(), 0u);
}

TEST(ByzantineClients, DuplicateToAllServersStaysUnique) {
  CompressHarness h(4, 1);
  const Element e = h.make_element(0, 1);
  for (auto& s : h.servers) s->add(e);  // 4 servers, 4 batches, same element
  h.seal_rounds();
  for (auto& s : h.servers) {
    std::size_t occurrences = 0;
    for (const auto& rec : *s->get().history) {
      occurrences += static_cast<std::size_t>(
          std::count(rec.ids.begin(), rec.ids.end(), e.id));
    }
    EXPECT_EQ(occurrences, 1u);
    EXPECT_TRUE(s->get().the_set->contains(e.id));
  }
  EXPECT_TRUE(check_safety(h.all_servers()).ok());
}

TEST(ByzantineClients, ForgedEpochProofFromClientRejected) {
  // A client (not a server) forges an epoch-proof with its own key; servers
  // must not count it even though the signature verifies under *some* key.
  VanillaHarness h(4);
  const Element e = h.make_element(0, 1);
  h.servers[0]->add(e);
  h.ledger.seal_block();  // epoch 1 exists everywhere

  const auto snap = h.servers[0]->get();
  const EpochHash real_hash = (*snap.history)[0].hash;
  // Forge with client 100's key but claim server 1.
  EpochProof forged;
  forged.epoch = 1;
  forged.server = 1;
  forged.epoch_hash = real_hash;
  forged.sig = h.pki.sign(100, codec::ByteView(real_hash.data(), real_hash.size()));
  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kEpochProof;
  codec::Writer w;
  serialize_epoch_proof(w, forged);
  tx.data = w.take();
  tx.wire_size = static_cast<std::uint32_t>(tx.data.size());
  h.ledger.append(2, std::move(tx));
  h.ledger.seal_block();

  // Server 1's genuine proof arrives in the same or later block; the forged
  // one must not have pre-counted for server 1. Count server-1 proofs: at
  // most one, and it must verify.
  h.seal_rounds();
  for (auto& s : h.servers) {
    std::size_t from1 = 0;
    for (const auto& p : (*s->get().proofs)[0]) {
      if (p.server == 1) {
        ++from1;
        EXPECT_TRUE(valid_proof(p, real_hash, h.pki, Fidelity::kFull));
      }
    }
    EXPECT_LE(from1, 1u);
  }
}

// ------------------------------------------- epoch-number bombs (robustness)

TEST(ByzantineProofs, HugeEpochNumberProofIsDropped) {
  VanillaHarness h(4);
  EpochProof bomb;
  bomb.epoch = 1'000'000'000;  // way beyond any real epoch
  bomb.server = 2;
  bomb.sig = h.pki.sign(2, codec::ByteView(bomb.epoch_hash.data(), 64));
  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kEpochProof;
  codec::Writer w;
  serialize_epoch_proof(w, bomb);
  tx.data = w.take();
  tx.wire_size = static_cast<std::uint32_t>(tx.data.size());
  h.ledger.append(2, std::move(tx));
  h.servers[0]->add(h.make_element(0, 1));
  h.seal_rounds();
  // System processed everything; no unbounded pending growth, no crash.
  for (auto& s : h.servers) EXPECT_EQ(s->epoch(), 1u);
}

}  // namespace
}  // namespace setchain::core
