#include "core/hashchain.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "algo_fixture.hpp"

namespace setchain::core {
namespace {

using testing::AlgoHarness;

using HashHarness = AlgoHarness<HashchainServer>;

TEST(Hashchain, BatchAppendsFixedSizeHashBatch) {
  HashHarness h(4, 3);
  for (std::uint64_t i = 0; i < 3; ++i) h.servers[0]->add(h.make_element(0, i));
  ASSERT_EQ(h.ledger.pending(), 1u);
  const auto& tx = h.ledger.txs().get(0);
  EXPECT_EQ(tx.wire_size, kHashBatchWireSize);  // 139 bytes, not the batch
  EXPECT_EQ(h.servers[0]->hash_batches_appended(), 1u);
  EXPECT_EQ(h.servers[0]->store().size(), 1u);  // Register_batch happened
}

TEST(Hashchain, PeersFetchBatchAndCoSign) {
  HashHarness h(4, 2);
  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.ledger.seal_block();  // block 1: server0's hash-batch
  // Upon processing, the other three servers fetch the batch (sync in unit
  // tests) and append their own hash-batches.
  for (auto& s : h.servers) {
    EXPECT_EQ(s->store().size(), 1u) << "server " << s->id();
  }
  EXPECT_EQ(h.ledger.pending(), 3u);  // 3 co-signatures queued
  // Nobody consolidates yet: only 1 signer on the ledger, f+1 = 2 needed.
  for (auto& s : h.servers) EXPECT_EQ(s->epoch(), 0u);

  h.ledger.seal_block();  // block 2: the co-signatures land
  for (auto& s : h.servers) {
    EXPECT_EQ(s->epoch(), 1u) << "server " << s->id();
    EXPECT_EQ((*s->get().history)[0].count, 2u);
  }
}

TEST(Hashchain, FakeHashCausesFailedFetchesButNoBacklog) {
  // A hash announcement with no batch behind it sends every correct server
  // on a doomed fetch; the failure must be accounted (fetches_failed) and
  // must not leave anything in the consolidation queue.
  HashHarness h(4, 2);
  h.servers[3]->byz_announce_fake_hash();
  h.ledger.seal_block();
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_GE(h.servers[s]->fetches_started(), 1u) << "server " << s;
    EXPECT_GE(h.servers[s]->fetches_failed(), 1u) << "server " << s;
    EXPECT_EQ(h.servers[s]->consolidation_backlog(), 0u) << "server " << s;
    EXPECT_EQ(h.servers[s]->epoch(), 0u) << "server " << s;
  }
}

TEST(Hashchain, ConsolidationNeedsFPlusOneSigners) {
  HashHarness h(7, 2);  // f = 2 -> needs 3 signers
  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.ledger.seal_block();  // 1 signer
  for (auto& s : h.servers) EXPECT_EQ(s->epoch(), 0u);
  h.ledger.seal_block();  // 6 more signers land together -> consolidate
  for (auto& s : h.servers) EXPECT_EQ(s->epoch(), 1u);
}

TEST(Hashchain, AllPropertiesAtQuiescence) {
  HashHarness h(4, 4);
  std::vector<ElementId> accepted;
  std::unordered_set<ElementId> created;
  for (std::uint32_t c = 0; c < 4; ++c) {
    for (std::uint64_t i = 0; i < 6; ++i) {
      const Element e = h.make_element(c, i);
      created.insert(e.id);
      if (h.servers[c]->add(e)) accepted.push_back(e.id);
    }
  }
  h.seal_rounds(120);
  const auto servers = h.all_servers();
  EXPECT_TRUE(check_safety(servers).ok()) << check_safety(servers).to_string();
  const auto live = check_liveness_quiescent(servers, accepted, h.params, h.pki);
  EXPECT_TRUE(live.ok()) << live.to_string();
  EXPECT_TRUE(check_add_before_get(servers, created).ok());
}

TEST(Hashchain, EpochProofsTravelInsideBatches) {
  HashHarness h(4, 2);
  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.seal_rounds(120);
  for (auto& s : h.servers) {
    EXPECT_EQ(s->epoch(), 1u);
    EXPECT_TRUE(s->epoch_proven(1)) << "server " << s->id();
    EXPECT_EQ((*s->get().proofs)[0].size(), 4u);  // all correct servers proved
  }
}

TEST(Hashchain, IdenticalBatchesConsolidateOnce) {
  // Two servers happen to build byte-identical batches (same element via a
  // duplicate-submitting client): one hash, one epoch.
  HashHarness h(4, 1);
  const Element e = h.make_element(0, 1);
  h.servers[0]->add(e);
  h.servers[1]->add(e);
  h.seal_rounds(120);
  for (auto& s : h.servers) {
    EXPECT_EQ(s->epoch(), 1u);
    EXPECT_EQ((*s->get().history)[0].count, 1u);
  }
  EXPECT_TRUE(check_safety(h.all_servers()).ok());
}

TEST(Hashchain, UnknownSignerHashBatchIgnored) {
  HashHarness h(4, 2);
  // Forge a hash-batch claiming server id 77 (outside the system).
  EpochHash fake{};
  fake[0] = 1;
  HashBatchMsg hb = make_hash_batch(h.pki, 0, fake, Fidelity::kFull);
  hb.server = 77;
  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kHashBatch;
  codec::Writer w;
  serialize_hash_batch(w, hb);
  tx.data = w.take();
  tx.wire_size = static_cast<std::uint32_t>(tx.data.size());
  h.ledger.append(1, std::move(tx));
  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.seal_rounds(120);
  for (auto& s : h.servers) EXPECT_EQ(s->epoch(), 1u);  // forgery ignored
}

TEST(Hashchain, BadSignatureHashBatchIgnored) {
  HashHarness h(4, 2);
  EpochHash fake{};
  fake[7] = 9;
  HashBatchMsg hb = make_hash_batch(h.pki, 2, fake, Fidelity::kFull);
  hb.sig[0] ^= 0x55;  // break it
  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kHashBatch;
  codec::Writer w;
  serialize_hash_batch(w, hb);
  tx.data = w.take();
  tx.wire_size = static_cast<std::uint32_t>(tx.data.size());
  h.ledger.append(2, std::move(tx));
  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.seal_rounds(120);
  for (auto& s : h.servers) {
    EXPECT_EQ(s->epoch(), 1u);
    // Nothing was ever fetched for the fake hash: no server stores it.
    EXPECT_FALSE(s->store().contains(fake));
  }
}

TEST(Hashchain, LightModeConsolidatesWithoutFetching) {
  HashHarness h(4, 2);
  h.params.hash_reversal = false;  // Hashchain Light (Fig. 2 ablation)
  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.seal_rounds(120);
  for (auto& s : h.servers) {
    EXPECT_EQ(s->epoch(), 1u);
    EXPECT_EQ(s->fetches_started(), 0u);  // no reversal traffic at all
  }
  EXPECT_TRUE(check_safety(h.all_servers()).ok());
}

TEST(Hashchain, ConsolidationOrderIsDeterministicAcrossServers) {
  HashHarness h(4, 1);
  // Three different servers emit batches. Epoch numbering follows the
  // ledger position of each hash's (f+1)-th signature — not the order the
  // hashes were first announced — and that position is identical at every
  // correct server, so all histories agree (P6).
  const Element e0 = h.make_element(0, 1);
  const Element e1 = h.make_element(1, 1);
  const Element e2 = h.make_element(2, 1);
  h.servers[0]->add(e0);
  h.servers[1]->add(e1);
  h.servers[2]->add(e2);
  h.seal_rounds(120);
  const auto snap = h.servers[3]->get();
  ASSERT_EQ(snap.history->size(), 3u);
  std::set<ElementId> epoched;
  for (const auto& rec : *snap.history) {
    ASSERT_EQ(rec.ids.size(), 1u);
    epoched.insert(rec.ids[0]);
  }
  EXPECT_EQ(epoched, (std::set<ElementId>{e0.id, e1.id, e2.id}));
  for (std::uint32_t sidx = 0; sidx < 4; ++sidx) {
    const auto other = h.servers[sidx]->get();
    ASSERT_EQ(other.history->size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ((*other.history)[i].ids, (*snap.history)[i].ids)
          << "server " << sidx << " epoch " << i + 1;
    }
  }
  EXPECT_TRUE(check_safety(h.all_servers()).ok());
}

TEST(Hashchain, CommitteeModeConsolidatesWithFewerSignatures) {
  HashHarness h(7, 2);  // f = 2
  h.params.hashchain_committee = 2 * h.params.f + 1;  // 5 of 7 sign
  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.seal_rounds(150);
  std::uint64_t total_hash_batches = 0;
  for (auto& s : h.servers) {
    EXPECT_GE(s->epoch(), 1u) << "server " << s->id();
    EXPECT_TRUE(s->epoch_proven(1));
    total_hash_batches += s->hash_batches_appended();
  }
  // Non-committee members never co-signed: strictly fewer announcements
  // than the everyone-signs regime would produce for the same batches.
  HashHarness full(7, 2);
  full.servers[0]->add(full.make_element(0, 1));
  full.servers[0]->add(full.make_element(0, 2));
  full.seal_rounds(150);
  std::uint64_t full_hash_batches = 0;
  for (auto& s : full.servers) full_hash_batches += s->hash_batches_appended();
  EXPECT_LT(total_hash_batches, full_hash_batches);
  EXPECT_TRUE(check_safety(h.all_servers()).ok());
}

TEST(Hashchain, CommitteeSurvivesByzantineMember) {
  // With a 2f+1 committee and f Byzantine servers, at least f+1 correct
  // committee members remain: consolidation must still happen no matter
  // which servers the hash selects.
  HashHarness h(4, 2);  // f = 1, committee = 3 of 4
  h.params.hashchain_committee = 3;
  ServerByzantine byz;
  byz.refuse_batch_service = true;
  h.servers[2]->set_byzantine(byz);  // refuses to serve, may be in committee

  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.seal_rounds(150);
  for (const std::uint32_t s : {0u, 1u, 3u}) {
    EXPECT_GE(h.servers[s]->epoch(), 1u) << "server " << s;
  }
}

TEST(Hashchain, CommitteeBelowFPlus1IsClampedUp) {
  HashHarness h(4, 2);  // f = 1
  h.params.hashchain_committee = 1;  // below f+1: must clamp to 2
  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.seal_rounds(150);
  for (auto& s : h.servers) EXPECT_GE(s->epoch(), 1u);
}

TEST(Hashchain, StressManyBatchesStayConsistent) {
  HashHarness h(4, 5);
  std::uint64_t seq = 0;
  for (int round = 0; round < 6; ++round) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      for (int k = 0; k < 5; ++k) h.servers[c]->add(h.make_element(c, seq + k));
    }
    seq += 5;
    h.ledger.seal_block();
  }
  h.seal_rounds(200);
  const auto report = check_safety(h.all_servers());
  EXPECT_TRUE(report.ok()) << report.to_string();
  for (auto& s : h.servers) {
    EXPECT_EQ(s->the_set_size(), 4u * 6u * 5u);
    EXPECT_EQ(s->consolidation_backlog(), 0u);
  }
}

}  // namespace
}  // namespace setchain::core
