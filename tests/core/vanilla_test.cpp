#include "core/vanilla.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "algo_fixture.hpp"

namespace setchain::core {
namespace {

using testing::AlgoHarness;

using VanillaHarness = AlgoHarness<VanillaServer>;

TEST(Vanilla, AddPutsElementInTheSetImmediately) {
  VanillaHarness h;
  const Element e = h.make_element(0, 1);
  EXPECT_TRUE(h.servers[0]->add(e));
  EXPECT_TRUE(h.servers[0]->get().the_set->contains(e.id));  // P2 Add-Get-Local
  EXPECT_FALSE(h.servers[1]->get().the_set->contains(e.id));  // not yet global
}

TEST(Vanilla, AddRejectsInvalidAndDuplicate) {
  VanillaHarness h;
  const Element good = h.make_element(0, 1);
  EXPECT_TRUE(h.servers[0]->add(good));
  EXPECT_FALSE(h.servers[0]->add(good));  // duplicate
  EXPECT_FALSE(h.servers[0]->add(h.factory.make_invalid(100, 2)));
  EXPECT_EQ(h.servers[0]->the_set_size(), 1u);
}

TEST(Vanilla, BlockFormsOneEpoch) {
  VanillaHarness h;
  std::vector<ElementId> ids;
  for (int i = 0; i < 3; ++i) {
    const Element e = h.make_element(0, static_cast<std::uint64_t>(i));
    ids.push_back(e.id);
    h.servers[0]->add(e);
  }
  h.ledger.seal_block();  // all three elements in one block -> one epoch
  for (auto& s : h.servers) {
    EXPECT_EQ(s->epoch(), 1u);
    const auto snap = s->get();
    ASSERT_EQ(snap.history->size(), 1u);
    EXPECT_EQ((*snap.history)[0].count, 3u);
    for (const auto id : ids) EXPECT_TRUE(snap.the_set->contains(id));
  }
}

TEST(Vanilla, EpochContentsAreCanonicallySortedRegardlessOfAddOrder) {
  // The conformance hash is computed over id-sorted contents; the stored
  // EpochRecord must expose that same canonical order no matter how clients
  // interleaved their adds.
  VanillaHarness h;
  h.servers[0]->add(h.make_element(3, 9));  // high client, high seq first
  h.servers[0]->add(h.make_element(0, 2));
  h.servers[0]->add(h.make_element(2, 1));
  h.servers[0]->add(h.make_element(0, 1));
  h.ledger.seal_block();
  for (auto& s : h.servers) {
    const auto snap = s->get();
    ASSERT_EQ(snap.history->size(), 1u);
    const auto& ids = (*snap.history)[0].ids;
    ASSERT_EQ(ids.size(), 4u);
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  }
}

TEST(Vanilla, ElementsSpreadAcrossBlocksMakeMultipleEpochs) {
  VanillaHarness h;
  h.servers[0]->add(h.make_element(0, 1));
  h.ledger.seal_block();
  h.servers[1]->add(h.make_element(1, 1));
  h.ledger.seal_block();
  EXPECT_EQ(h.servers[2]->epoch(), 2u);  // one epoch per element-carrying block
}

TEST(Vanilla, EpochProofsReachFPlusOne) {
  VanillaHarness h;  // n=4, f=1
  h.servers[0]->add(h.make_element(0, 1));
  h.seal_rounds();
  for (auto& s : h.servers) {
    EXPECT_TRUE(s->epoch_proven(1)) << "server " << s->id();  // P8
    const auto snap = s->get();
    // All 4 correct servers end up with proofs on the ledger.
    EXPECT_EQ((*snap.proofs)[0].size(), 4u);
  }
}

TEST(Vanilla, AllPropertiesAtQuiescence) {
  VanillaHarness h;
  std::vector<ElementId> accepted;
  std::unordered_set<ElementId> created;
  for (std::uint32_t c = 0; c < 4; ++c) {
    for (std::uint64_t i = 0; i < 5; ++i) {
      const Element e = h.make_element(c, i);
      created.insert(e.id);
      if (h.servers[c]->add(e)) accepted.push_back(e.id);
    }
  }
  h.seal_rounds();

  const auto servers = h.all_servers();
  EXPECT_TRUE(check_safety(servers).ok()) << check_safety(servers).to_string();
  const auto live = check_liveness_quiescent(servers, accepted, h.params, h.pki);
  EXPECT_TRUE(live.ok()) << live.to_string();
  const auto p7 = check_add_before_get(servers, created);
  EXPECT_TRUE(p7.ok()) << p7.to_string();
}

TEST(Vanilla, DuplicateElementAcrossServersLandsInOneEpochOnly) {
  VanillaHarness h;
  const Element e = h.make_element(0, 1);
  h.servers[0]->add(e);  // a Byzantine-ish client double-submits
  h.servers[1]->add(e);
  h.seal_rounds();
  // P5 Unique-Epoch: despite two ledger appends, one epoch holds the id.
  for (auto& s : h.servers) {
    std::size_t occurrences = 0;
    for (const auto& rec : *s->get().history) {
      occurrences += static_cast<std::size_t>(
          std::count(rec.ids.begin(), rec.ids.end(), e.id));
    }
    EXPECT_EQ(occurrences, 1u);
  }
  EXPECT_TRUE(check_safety(h.all_servers()).ok());
}

TEST(Vanilla, InvalidElementInLedgerIsFiltered) {
  // A Byzantine server appends an invalid element directly to the ledger;
  // correct servers must not epoch it (the "checking if an element is valid
  // cannot be avoided" note in §3).
  VanillaHarness h;
  const Element bad = h.factory.make_invalid(100, 9);
  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kElement;
  codec::Writer w;
  serialize_element(w, bad);
  tx.data = w.take();
  tx.wire_size = static_cast<std::uint32_t>(tx.data.size());
  h.ledger.append(2, std::move(tx));

  h.servers[0]->add(h.make_element(0, 1));
  h.seal_rounds();
  for (auto& s : h.servers) {
    EXPECT_FALSE(s->get().the_set->contains(bad.id));
    for (const auto& rec : *s->get().history) {
      EXPECT_EQ(std::count(rec.ids.begin(), rec.ids.end(), bad.id), 0);
    }
  }
}

TEST(Vanilla, GarbageTransactionsAreIgnored) {
  VanillaHarness h;
  ledger::Transaction junk;
  junk.kind = ledger::TxKind::kOpaque;
  junk.data = codec::to_bytes("\xDE\xAD garbage bytes");
  junk.wire_size = static_cast<std::uint32_t>(junk.data.size());
  h.ledger.append(1, std::move(junk));
  h.servers[0]->add(h.make_element(0, 1));
  h.seal_rounds();
  EXPECT_EQ(h.servers[3]->epoch(), 1u);
  EXPECT_EQ((*h.servers[3]->get().history)[0].count, 1u);
}

TEST(Vanilla, ProofForUnknownEpochIsDeferredNotDropped) {
  VanillaHarness h;
  // Server 0 processes blocks normally; craft a proof for epoch 1 and put it
  // on the ledger *before* any element (so epoch 1 does not exist yet).
  const Element e = h.make_element(0, 1);
  // Compute what epoch 1's hash will be: single element, sorted ids.
  std::vector<std::pair<ElementId, std::uint64_t>> idd{
      {e.id, element_digest(e, Fidelity::kFull)}};
  const EpochHash h1 = epoch_hash(1, idd, Fidelity::kFull);
  const EpochProof early = make_epoch_proof(h.pki, 3, 1, h1, Fidelity::kFull);
  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kEpochProof;
  codec::Writer w;
  serialize_epoch_proof(w, early);
  tx.data = w.take();
  tx.wire_size = static_cast<std::uint32_t>(tx.data.size());
  h.ledger.append(3, std::move(tx));
  h.ledger.seal_block();  // proof lands; epoch 1 does not exist yet

  h.servers[0]->add(e);
  h.seal_rounds();
  // The early proof must have been validated after consolidation: server 3
  // appears among the provers exactly once.
  const auto snap = h.servers[1]->get();
  std::size_t from3 = 0;
  for (const auto& p : (*snap.proofs)[0]) from3 += (p.server == 3);
  EXPECT_EQ(from3, 1u);
}

TEST(Vanilla, ConsistentGetsAcrossManyBlocks) {
  VanillaHarness h;
  std::uint64_t seq = 0;
  for (int round = 0; round < 10; ++round) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      h.servers[c]->add(h.make_element(c, seq));
    }
    ++seq;
    h.ledger.seal_block();
  }
  h.seal_rounds();
  const auto report = check_safety(h.all_servers());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GE(h.servers[0]->epoch(), 10u);
}

}  // namespace
}  // namespace setchain::core
