#include <gtest/gtest.h>

#include <set>

#include "core/batch.hpp"
#include "core/collector.hpp"
#include "core/element.hpp"
#include "core/proofs.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace setchain::core {
namespace {

struct CommonFixture : ::testing::Test {
  crypto::Pki pki{99};
  workload::ArbitrumLikeGenerator gen{4};
  ElementFactory factory{gen, pki, Fidelity::kFull};

  CommonFixture() {
    for (crypto::ProcessId p = 0; p < 4; ++p) pki.register_process(p);
    for (crypto::ProcessId p = 100; p < 104; ++p) pki.register_process(p);
  }
};

// ------------------------------------------------------------------- Element

TEST_F(CommonFixture, ElementIdPacksClientAndSeq) {
  const ElementId id = make_element_id(100, 77);
  EXPECT_EQ(element_client(id), 100u);
  EXPECT_EQ(id & ((1ULL << 40) - 1), 77u);
}

TEST_F(CommonFixture, ElementSerializationRoundtrip) {
  const Element e = factory.make(100, 1);
  codec::Writer w;
  serialize_element(w, e);
  EXPECT_EQ(w.size(), e.wire_size);

  codec::Reader r(w.buffer());
  EXPECT_EQ(r.u8(), kElementTag);
  const auto back = parse_element(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, e.id);
  EXPECT_EQ(back->client, e.client);
  EXPECT_EQ(back->payload, e.payload);
  EXPECT_EQ(back->sig, e.sig);
  EXPECT_EQ(back->wire_size, e.wire_size);
}

TEST_F(CommonFixture, ValidElementAcceptsGenuine) {
  const Element e = factory.make(100, 1);
  EXPECT_TRUE(valid_element(e, pki, Fidelity::kFull));
}

TEST_F(CommonFixture, ValidElementRejectsTamperedPayload) {
  Element e = factory.make(100, 2);
  e.payload[0] ^= 1;
  EXPECT_FALSE(valid_element(e, pki, Fidelity::kFull));
}

TEST_F(CommonFixture, ValidElementRejectsBadSignature) {
  const Element e = factory.make_invalid(100, 3);
  EXPECT_FALSE(valid_element(e, pki, Fidelity::kFull));
}

TEST_F(CommonFixture, ValidElementRejectsClientIdSpoof) {
  // A Byzantine client cannot claim another client's id space: the id is
  // bound to the signer.
  Element e = factory.make(100, 4);
  e.client = 101;
  EXPECT_FALSE(valid_element(e, pki, Fidelity::kFull));
  Element e2 = factory.make(100, 5);
  e2.id = make_element_id(101, 5);
  EXPECT_FALSE(valid_element(e2, pki, Fidelity::kFull));
}

TEST_F(CommonFixture, CalibratedValidityUsesFlag) {
  workload::ArbitrumLikeGenerator g2(5);
  ElementFactory cal(g2, pki, Fidelity::kCalibrated);
  const Element good = cal.make(100, 1);
  const Element bad = cal.make_invalid(100, 2);
  EXPECT_TRUE(valid_element(good, pki, Fidelity::kCalibrated));
  EXPECT_FALSE(valid_element(bad, pki, Fidelity::kCalibrated));
  EXPECT_TRUE(good.payload.empty());  // no bytes materialized
}

TEST_F(CommonFixture, ElementWireSizeTracksTargetDistribution) {
  double sum = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) sum += factory.make(100, 100 + i).wire_size;
  EXPECT_NEAR(sum / n, 438.0, 80.0);
}

// --------------------------------------------------------------- EpochProofs

TEST_F(CommonFixture, EpochProofWireSizeIsExactly139) {
  const EpochHash h{};
  const EpochProof p = make_epoch_proof(pki, 2, 7, h, Fidelity::kFull);
  codec::Writer w;
  serialize_epoch_proof(w, p);
  EXPECT_EQ(w.size(), kEpochProofWireSize);  // the paper's measured length
}

TEST_F(CommonFixture, EpochProofRoundtripAndValidity) {
  std::vector<std::pair<ElementId, std::uint64_t>> ids{{1, 11}, {2, 22}};
  const EpochHash h = epoch_hash(3, ids, Fidelity::kFull);
  const EpochProof p = make_epoch_proof(pki, 1, 3, h, Fidelity::kFull);

  codec::Writer w;
  serialize_epoch_proof(w, p);
  codec::Reader r(w.buffer());
  EXPECT_EQ(r.u8(), kEpochProofTag);
  const auto back = parse_epoch_proof(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->epoch, 3u);
  EXPECT_EQ(back->server, 1u);
  EXPECT_TRUE(valid_proof(*back, h, pki, Fidelity::kFull));
}

TEST_F(CommonFixture, ProofInvalidAgainstWrongEpochHash) {
  const EpochHash h1 = epoch_hash(1, {{1, 1}}, Fidelity::kFull);
  const EpochHash h2 = epoch_hash(1, {{2, 2}}, Fidelity::kFull);
  const EpochProof p = make_epoch_proof(pki, 0, 1, h1, Fidelity::kFull);
  EXPECT_TRUE(valid_proof(p, h1, pki, Fidelity::kFull));
  EXPECT_FALSE(valid_proof(p, h2, pki, Fidelity::kFull));
}

TEST_F(CommonFixture, ProofSignatureFromWrongServerRejected) {
  const EpochHash h = epoch_hash(1, {{1, 1}}, Fidelity::kFull);
  EpochProof p = make_epoch_proof(pki, 0, 1, h, Fidelity::kFull);
  p.server = 1;  // claims server 1 but signed by 0
  EXPECT_FALSE(valid_proof(p, h, pki, Fidelity::kFull));
}

TEST_F(CommonFixture, EpochHashIsOrderInvariantViaSortedInput) {
  // Callers sort (id, digest) pairs; same set -> same hash.
  std::vector<std::pair<ElementId, std::uint64_t>> a{{1, 11}, {2, 22}, {3, 33}};
  const EpochHash h1 = epoch_hash(5, a, Fidelity::kFull);
  const EpochHash h2 = epoch_hash(5, a, Fidelity::kFull);
  EXPECT_EQ(h1, h2);
  a[0].second = 99;
  EXPECT_NE(epoch_hash(5, a, Fidelity::kFull), h1);
  EXPECT_NE(epoch_hash(6, a, Fidelity::kFull), epoch_hash(5, a, Fidelity::kFull));
}

TEST_F(CommonFixture, EpochHashIsPureAcrossFidelities) {
  // The cross-algorithm conformance harness (P9) leans on epoch_hash being a
  // pure function of (number, contents): repeated evaluation agrees in both
  // fidelities, and calibrated stays self-consistent the same way full does.
  const std::vector<std::pair<ElementId, std::uint64_t>> pairs{
      {7, 70}, {8, 80}, {9, 90}};
  for (const auto fid : {Fidelity::kFull, Fidelity::kCalibrated}) {
    const EpochHash h1 = epoch_hash(3, pairs, fid);
    const EpochHash h2 = epoch_hash(3, pairs, fid);
    EXPECT_EQ(h1, h2);
    EXPECT_NE(epoch_hash(4, pairs, fid), h1);
    auto grown = pairs;
    grown.emplace_back(10, 100);
    EXPECT_NE(epoch_hash(3, grown, fid), h1);
  }
  // Empty input is well-defined and number-sensitive too.
  const std::vector<std::pair<ElementId, std::uint64_t>> none;
  EXPECT_NE(epoch_hash(1, none, Fidelity::kFull), epoch_hash(2, none, Fidelity::kFull));
}

// ---------------------------------------------------------------- HashBatch

TEST_F(CommonFixture, HashBatchWireSizeIsExactly139) {
  const EpochHash h{};
  const HashBatchMsg hb = make_hash_batch(pki, 0, h, Fidelity::kFull);
  codec::Writer w;
  serialize_hash_batch(w, hb);
  EXPECT_EQ(w.size(), kHashBatchWireSize);
}

TEST_F(CommonFixture, HashBatchRoundtripAndSignature) {
  EpochHash h{};
  h[0] = 0xAB;
  const HashBatchMsg hb = make_hash_batch(pki, 3, h, Fidelity::kFull);
  codec::Writer w;
  serialize_hash_batch(w, hb);
  codec::Reader r(w.buffer());
  EXPECT_EQ(r.u8(), kHashBatchTag);
  const auto back = parse_hash_batch(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->server, 3u);
  EXPECT_TRUE(valid_hash_batch(*back, pki, Fidelity::kFull));
  auto forged = *back;
  forged.server = 2;
  EXPECT_FALSE(valid_hash_batch(forged, pki, Fidelity::kFull));
}

// --------------------------------------------------------------------- Batch

TEST_F(CommonFixture, BatchSerializationRoundtrip) {
  Batch b;
  for (int i = 0; i < 5; ++i) b.elements.push_back(factory.make(100, 10 + i));
  const EpochHash eh = epoch_hash(1, {{1, 1}}, Fidelity::kFull);
  b.proofs.push_back(make_epoch_proof(pki, 0, 1, eh, Fidelity::kFull));
  b.proofs.push_back(make_epoch_proof(pki, 1, 1, eh, Fidelity::kFull));

  const codec::Bytes bytes = serialize_batch(b);
  const auto back = parse_batch(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->elements.size(), 5u);
  ASSERT_EQ(back->proofs.size(), 2u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(back->elements[static_cast<std::size_t>(i)].id, b.elements[static_cast<std::size_t>(i)].id);
  }
  EXPECT_EQ(back->proofs[0].epoch, 1u);
}

TEST_F(CommonFixture, BatchHashStableAndContentSensitive) {
  Batch b1;
  b1.elements.push_back(factory.make(100, 1));
  Batch b2 = b1;
  EXPECT_EQ(batch_hash(b1, Fidelity::kFull), batch_hash(b2, Fidelity::kFull));
  b2.elements.push_back(factory.make(100, 2));
  EXPECT_NE(batch_hash(b1, Fidelity::kFull), batch_hash(b2, Fidelity::kFull));
  // Calibrated hashing: equally content-sensitive.
  EXPECT_NE(batch_hash(b1, Fidelity::kCalibrated), batch_hash(b2, Fidelity::kCalibrated));
}

TEST_F(CommonFixture, ParseBatchRejectsGarbage) {
  EXPECT_FALSE(parse_batch(codec::to_bytes("not a batch")).has_value());
  // Count bomb.
  codec::Writer w;
  w.varint(10'000'000);
  EXPECT_FALSE(parse_batch(w.buffer()).has_value());
  // Truncated entry.
  Batch b;
  b.elements.push_back(factory.make(100, 1));
  codec::Bytes bytes = serialize_batch(b);
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(parse_batch(bytes).has_value());
  // Trailing garbage.
  codec::Bytes bytes2 = serialize_batch(b);
  bytes2.push_back(0xFF);
  EXPECT_FALSE(parse_batch(bytes2).has_value());
}

TEST_F(CommonFixture, ParseBatchFuzzNeverCrashes) {
  sim::Rng rng(606);
  for (int i = 0; i < 2000; ++i) {
    codec::Bytes junk(rng.next_u64() % 300);
    for (auto& x : junk) x = static_cast<std::uint8_t>(rng.next_u64());
    parse_batch(junk);
  }
  SUCCEED();
}

TEST_F(CommonFixture, CompressedSizeFullVsCalibratedAgree) {
  Batch b;
  for (int i = 0; i < 100; ++i) b.elements.push_back(factory.make(100, 1000 + i));
  const std::uint64_t full = compressed_size(b, Fidelity::kFull, 0.0);
  // Calibrate with the true ratio and compare the model's estimate.
  const double ratio =
      static_cast<double>(serialize_batch(b).size()) / static_cast<double>(full);
  const std::uint64_t cal = compressed_size(b, Fidelity::kCalibrated, ratio);
  EXPECT_NEAR(static_cast<double>(cal), static_cast<double>(full),
              static_cast<double>(full) * 0.05 + 64);
}

// ----------------------------------------------------------------- Collector

TEST(Collector, EmitsAtSizeLimit) {
  std::vector<Batch> out;
  Collector c(nullptr, 3, 0, [&](Batch&& b) { out.push_back(std::move(b)); });
  c.set_origin(2);
  Element e;
  for (int i = 0; i < 7; ++i) {
    e.id = static_cast<ElementId>(i);
    c.add_element(e);
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].elements.size(), 3u);
  EXPECT_EQ(out[0].origin, 2u);
  EXPECT_EQ(c.size(), 1u);  // one leftover pending
  c.flush();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].elements.size(), 1u);
  c.flush();  // empty flush is a no-op
  EXPECT_EQ(out.size(), 3u);
}

TEST(Collector, ProofsCountTowardLimit) {
  std::vector<Batch> out;
  Collector c(nullptr, 2, 0, [&](Batch&& b) { out.push_back(std::move(b)); });
  Element e;
  e.id = 1;
  c.add_element(e);
  EpochProof p;
  p.epoch = 1;
  c.add_proof(p);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].elements.size(), 1u);
  EXPECT_EQ(out[0].proofs.size(), 1u);
}

TEST(Collector, TimeoutFlushesPartialBatch) {
  sim::Simulation sim;
  std::vector<std::pair<sim::Time, std::size_t>> out;
  Collector c(&sim, 100, sim::from_seconds(1), [&](Batch&& b) {
    out.emplace_back(sim.now(), b.entry_count());
  });
  Element e;
  sim.schedule_at(sim::from_seconds(0.5), [&] {
    e.id = 1;
    c.add_element(e);
  });
  sim.schedule_at(sim::from_seconds(0.8), [&] {
    e.id = 2;
    c.add_element(e);
  });
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, sim::from_seconds(1.5));  // 1 s after first entry
  EXPECT_EQ(out[0].second, 2u);
}

TEST(Collector, SizeTriggerCancelsTimer) {
  sim::Simulation sim;
  int emissions = 0;
  Collector c(&sim, 2, sim::from_seconds(1), [&](Batch&&) { ++emissions; });
  Element e;
  sim.schedule_at(0, [&] {
    e.id = 1;
    c.add_element(e);
    e.id = 2;
    c.add_element(e);  // fills -> emit now
  });
  sim.run();
  EXPECT_EQ(emissions, 1);  // no spurious timeout emission later
}

TEST(Collector, BatchUidsAreUniquePerOrigin) {
  std::vector<Batch> out;
  Collector c(nullptr, 1, 0, [&](Batch&& b) { out.push_back(std::move(b)); });
  c.set_origin(3);
  Element e;
  for (int i = 0; i < 5; ++i) {
    e.id = static_cast<ElementId>(i);
    c.add_element(e);
  }
  std::set<std::uint64_t> uids;
  for (const auto& b : out) uids.insert(b.uid);
  EXPECT_EQ(uids.size(), 5u);
}

}  // namespace
}  // namespace setchain::core
