#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "core/client.hpp"
#include "core/compresschain.hpp"
#include "core/hashchain.hpp"
#include "core/invariants.hpp"
#include "core/vanilla.hpp"
#include "ledger/ledger_node.hpp"

namespace setchain::core::testing {

/// Algorithm test harness on the InstantLedger: n servers in full fidelity,
/// fully synchronous and deterministic. Clients are driven manually (no
/// simulation clock); seal_rounds() pumps the ledger until it drains, which
/// is the "eventually" of the liveness properties.
template <typename Server>
struct AlgoHarness {
  std::uint32_t n;
  SetchainParams params;
  crypto::Pki pki{99};
  ledger::InstantLedger ledger;
  workload::ArbitrumLikeGenerator gen{4};
  ElementFactory factory{gen, pki, Fidelity::kFull};
  std::vector<std::unique_ptr<Server>> servers;

  explicit AlgoHarness(std::uint32_t n_servers = 4, std::uint32_t collector_limit = 4)
      : n(n_servers), ledger(n_servers) {
    params.n = n;
    params.f = (n - 1) / 3;
    params.fidelity = Fidelity::kFull;
    params.collector_limit = collector_limit;
    params.collector_timeout = 0;  // no clock: flush manually / by size

    for (crypto::ProcessId p = 0; p < n; ++p) pki.register_process(p);
    for (crypto::ProcessId p = 100; p < 100 + n; ++p) pki.register_process(p);

    ServerContext ctx;
    ctx.ledger = &ledger;
    ctx.pki = &pki;
    ctx.params = &params;
    for (std::uint32_t i = 0; i < n; ++i) {
      auto s = std::make_unique<Server>(ctx, i);
      ledger.on_new_block(i, [p = s.get()](const ledger::Block& b) {
        p->on_new_block(b);
      });
      servers.push_back(std::move(s));
    }
    if constexpr (std::is_same_v<Server, HashchainServer>) {
      std::vector<HashchainServer*> peers;
      for (auto& s : servers) peers.push_back(s.get());
      for (auto& s : servers) s->connect_peers(peers);
    }
  }

  Element make_element(std::uint32_t client_slot, std::uint64_t seq) {
    return factory.make(100 + client_slot, seq);
  }

  /// Flush every server's collector (batch algorithms), if any.
  void flush_collectors() {
    if constexpr (!std::is_same_v<Server, VanillaServer>) {
      for (auto& s : servers) s->collector().flush();
    }
  }

  /// Seal blocks (flushing collectors between rounds) until the system is
  /// quiescent: no pending ledger txs and no partially filled collectors.
  void seal_rounds(int max_rounds = 60) {
    for (int round = 0; round < max_rounds; ++round) {
      flush_collectors();
      if (!ledger.seal_block()) {
        flush_collectors();
        if (!ledger.seal_block()) return;  // fully drained
      }
    }
    FAIL() << "system did not quiesce within " << max_rounds << " seal rounds";
  }

  std::vector<const SetchainServer*> all_servers() const {
    std::vector<const SetchainServer*> out;
    for (const auto& s : servers) out.push_back(s.get());
    return out;
  }
};

// ---------------------------------------------------------------------------
// Cross-algorithm conformance scenario matrix.
//
// One ConformanceScenario describes a deterministic workload (element rate ×
// server count × client-fault mix × server-Byzantine setting) that can be
// replayed identically against all three algorithms; drive_conformance()
// runs it and returns what the conformance suite compares across runs.

struct ConformanceScenario {
  const char* name;
  std::uint32_t n = 4;          ///< server count
  std::uint32_t collector = 4;  ///< collector limit (vanilla ignores it)
  int rounds = 4;               ///< seal rounds interleaved with adds
  int per_round = 10;           ///< adds per round: the element-rate proxy
  double invalid_fraction = 0.0;    ///< badly signed elements (rejected)
  double duplicate_fraction = 0.0;  ///< same element offered to every server
  int corrupt_proofs_server = -1;   ///< index, or -1: signs wrong epoch hashes
  int refuse_batch_server = -1;     ///< index, or -1: drops Request_batch
                                    ///< (clients route around it)
  bool fake_hash_server = false;    ///< server n-1 pairs real announcements
                                    ///< with fake hashes (Hashchain)
  std::uint64_t seed = 1;
};

/// What one algorithm produced for a scenario, read off a correct server
/// after quiescence.
struct ConformanceOutcome {
  std::vector<EpochRecord> history;  ///< correct server's full epoch chain
  std::uint64_t epochs = 0;
  std::uint64_t the_set_size = 0;
};

/// Replay `sc` against algorithm `Server`. Asserts the per-run property set
/// (P1-P8) on the correct servers and hands back the correct-server view via
/// `out`. Exposed as the correct SetchainServer so callers can also build
/// AlgoRun views; keeps the harness alive only for the duration of the call.
template <typename Server>
void drive_conformance(const ConformanceScenario& sc, ConformanceOutcome& out) {
  AlgoHarness<Server> h(sc.n, sc.collector);
  sim::Rng rng(sc.seed);

  std::vector<bool> byzantine(sc.n, false);
  if (sc.corrupt_proofs_server >= 0) {
    ServerByzantine b = h.servers[sc.corrupt_proofs_server]->byzantine();
    b.corrupt_proofs = true;
    h.servers[sc.corrupt_proofs_server]->set_byzantine(b);
    byzantine[sc.corrupt_proofs_server] = true;
  }
  if (sc.refuse_batch_server >= 0) {
    ServerByzantine b = h.servers[sc.refuse_batch_server]->byzantine();
    b.refuse_batch_service = true;
    h.servers[sc.refuse_batch_server]->set_byzantine(b);
    byzantine[sc.refuse_batch_server] = true;
  }
  if (sc.fake_hash_server) {
    ServerByzantine b = h.servers[sc.n - 1]->byzantine();
    b.fake_hash_batches = true;
    h.servers[sc.n - 1]->set_byzantine(b);
    byzantine[sc.n - 1] = true;
  }

  // Clients route around the batch-withholding server: elements entering only
  // its collector would consolidate under vanilla but not under hashchain,
  // which is a client-availability difference, not an algorithm divergence.
  std::vector<std::uint32_t> routable;
  for (std::uint32_t s = 0; s < sc.n; ++s) {
    if (static_cast<int>(s) != sc.refuse_batch_server) routable.push_back(s);
  }

  std::vector<ElementId> accepted;
  std::unordered_set<ElementId> created;
  std::uint64_t seq = 0;
  for (int round = 0; round < sc.rounds; ++round) {
    for (int i = 0; i < sc.per_round; ++i) {
      const auto client = static_cast<std::uint32_t>(rng.uniform_u64(sc.n));
      const auto target = routable[rng.uniform_u64(routable.size())];
      const double dice = rng.uniform01();
      if (dice < sc.invalid_fraction) {
        const Element bad = h.factory.make_invalid(100 + client, seq++);
        created.insert(bad.id);
        EXPECT_FALSE(h.servers[target]->add(bad)) << sc.name;
      } else if (dice < sc.invalid_fraction + sc.duplicate_fraction) {
        const Element e = h.make_element(client, seq++);
        created.insert(e.id);
        bool any = false;
        for (const auto s : routable) any = h.servers[s]->add(e) || any;
        if (any) accepted.push_back(e.id);
      } else {
        const Element e = h.make_element(client, seq++);
        created.insert(e.id);
        if (h.servers[target]->add(e)) accepted.push_back(e.id);
      }
    }
    // Partial seal between bursts: epochs form while traffic still arrives.
    h.flush_collectors();
    h.ledger.seal_block();
  }
  h.seal_rounds(400);

  std::vector<const SetchainServer*> correct;
  for (std::uint32_t s = 0; s < sc.n; ++s) {
    if (!byzantine[s]) correct.push_back(h.servers[s].get());
  }
  const auto safety = check_safety(correct);
  EXPECT_TRUE(safety.ok()) << sc.name << "\n" << safety.to_string();
  const auto live = check_liveness_quiescent(correct, accepted, h.params, h.pki);
  EXPECT_TRUE(live.ok()) << sc.name << "\n" << live.to_string();
  const auto p7 = check_add_before_get(correct, created);
  EXPECT_TRUE(p7.ok()) << sc.name << "\n" << p7.to_string();

  const auto snap = correct.front()->get();
  out.history = *snap.history;
  out.epochs = snap.epoch;
  out.the_set_size = correct.front()->the_set_size();
}

}  // namespace setchain::core::testing
