#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/client.hpp"
#include "core/compresschain.hpp"
#include "core/hashchain.hpp"
#include "core/invariants.hpp"
#include "core/vanilla.hpp"
#include "ledger/ledger_node.hpp"
#include "runner/scenario.hpp"
#include "sim/fault.hpp"

namespace setchain::core::testing {

/// Algorithm test harness on the InstantLedger: n servers in full fidelity,
/// fully synchronous and deterministic. Clients are driven manually (no
/// simulation clock); seal_rounds() pumps the ledger until it drains, which
/// is the "eventually" of the liveness properties.
template <typename Server>
struct AlgoHarness {
  std::uint32_t n;
  SetchainParams params;
  crypto::Pki pki{99};
  ledger::InstantLedger ledger;
  workload::ArbitrumLikeGenerator gen{4};
  ElementFactory factory{gen, pki, Fidelity::kFull};
  std::vector<std::unique_ptr<Server>> servers;

  explicit AlgoHarness(std::uint32_t n_servers = 4, std::uint32_t collector_limit = 4)
      : n(n_servers), ledger(n_servers) {
    params.n = n;
    params.f = (n - 1) / 3;
    params.fidelity = Fidelity::kFull;
    params.collector_limit = collector_limit;
    params.collector_timeout = 0;  // no clock: flush manually / by size

    for (crypto::ProcessId p = 0; p < n; ++p) pki.register_process(p);
    for (crypto::ProcessId p = 100; p < 100 + n; ++p) pki.register_process(p);

    ServerContext ctx;
    ctx.ledger = &ledger;
    ctx.pki = &pki;
    ctx.params = &params;
    for (std::uint32_t i = 0; i < n; ++i) {
      auto s = std::make_unique<Server>(ctx, i);
      ledger.on_new_block(i, [p = s.get()](const ledger::Block& b) {
        p->on_new_block(b);
      });
      servers.push_back(std::move(s));
    }
    if constexpr (std::is_same_v<Server, HashchainServer>) {
      std::vector<HashchainServer*> peers;
      for (auto& s : servers) peers.push_back(s.get());
      for (auto& s : servers) s->connect_peers(peers);
    }
  }

  Element make_element(std::uint32_t client_slot, std::uint64_t seq) {
    return factory.make(100 + client_slot, seq);
  }

  /// Flush every server's collector (batch algorithms), if any.
  void flush_collectors() {
    if constexpr (!std::is_same_v<Server, VanillaServer>) {
      for (auto& s : servers) s->collector().flush();
    }
  }

  /// Seal blocks (flushing collectors between rounds) until the system is
  /// quiescent: no pending ledger txs and no partially filled collectors.
  void seal_rounds(int max_rounds = 60) {
    for (int round = 0; round < max_rounds; ++round) {
      flush_collectors();
      if (!ledger.seal_block()) {
        flush_collectors();
        if (!ledger.seal_block()) return;  // fully drained
      }
    }
    FAIL() << "system did not quiesce within " << max_rounds << " seal rounds";
  }

  std::vector<const SetchainServer*> all_servers() const {
    std::vector<const SetchainServer*> out;
    for (const auto& s : servers) out.push_back(s.get());
    return out;
  }
};

// ---------------------------------------------------------------------------
// Cross-algorithm conformance scenario matrix.
//
// One ConformanceScenario describes a deterministic workload (element rate ×
// server count × client-fault mix × server-Byzantine setting) that can be
// replayed identically against all three algorithms; drive_conformance()
// runs it and returns what the conformance suite compares across runs.

struct ConformanceScenario {
  const char* name;
  std::uint32_t n = 4;          ///< server count
  std::uint32_t collector = 4;  ///< collector limit (vanilla ignores it)
  int rounds = 4;               ///< seal rounds interleaved with adds
  int per_round = 10;           ///< adds per round: the element-rate proxy
  double invalid_fraction = 0.0;    ///< badly signed elements (rejected)
  double duplicate_fraction = 0.0;  ///< same element offered to every server
  int corrupt_proofs_server = -1;   ///< index, or -1: signs wrong epoch hashes
  int refuse_batch_server = -1;     ///< index, or -1: drops Request_batch
                                    ///< (clients route around it)
  bool fake_hash_server = false;    ///< server n-1 pairs real announcements
                                    ///< with fake hashes (Hashchain)
  std::uint64_t seed = 1;
};

/// What one algorithm produced for a scenario, read off a correct server
/// after quiescence.
struct ConformanceOutcome {
  std::vector<EpochRecord> history;  ///< correct server's full epoch chain
  std::uint64_t epochs = 0;
  std::uint64_t the_set_size = 0;
};

/// Replay `sc` against algorithm `Server`. Asserts the per-run property set
/// (P1-P8) on the correct servers and hands back the correct-server view via
/// `out`. Exposed as the correct SetchainServer so callers can also build
/// AlgoRun views; keeps the harness alive only for the duration of the call.
template <typename Server>
void drive_conformance(const ConformanceScenario& sc, ConformanceOutcome& out) {
  AlgoHarness<Server> h(sc.n, sc.collector);
  sim::Rng rng(sc.seed);

  std::vector<bool> byzantine(sc.n, false);
  if (sc.corrupt_proofs_server >= 0) {
    ServerByzantine b = h.servers[sc.corrupt_proofs_server]->byzantine();
    b.corrupt_proofs = true;
    h.servers[sc.corrupt_proofs_server]->set_byzantine(b);
    byzantine[sc.corrupt_proofs_server] = true;
  }
  if (sc.refuse_batch_server >= 0) {
    ServerByzantine b = h.servers[sc.refuse_batch_server]->byzantine();
    b.refuse_batch_service = true;
    h.servers[sc.refuse_batch_server]->set_byzantine(b);
    byzantine[sc.refuse_batch_server] = true;
  }
  if (sc.fake_hash_server) {
    ServerByzantine b = h.servers[sc.n - 1]->byzantine();
    b.fake_hash_batches = true;
    h.servers[sc.n - 1]->set_byzantine(b);
    byzantine[sc.n - 1] = true;
  }

  // Clients route around the batch-withholding server: elements entering only
  // its collector would consolidate under vanilla but not under hashchain,
  // which is a client-availability difference, not an algorithm divergence.
  std::vector<std::uint32_t> routable;
  for (std::uint32_t s = 0; s < sc.n; ++s) {
    if (static_cast<int>(s) != sc.refuse_batch_server) routable.push_back(s);
  }

  std::vector<ElementId> accepted;
  std::unordered_set<ElementId> created;
  std::uint64_t seq = 0;
  for (int round = 0; round < sc.rounds; ++round) {
    for (int i = 0; i < sc.per_round; ++i) {
      const auto client = static_cast<std::uint32_t>(rng.uniform_u64(sc.n));
      const auto target = routable[rng.uniform_u64(routable.size())];
      const double dice = rng.uniform01();
      if (dice < sc.invalid_fraction) {
        const Element bad = h.factory.make_invalid(100 + client, seq++);
        created.insert(bad.id);
        EXPECT_FALSE(h.servers[target]->add(bad)) << sc.name;
      } else if (dice < sc.invalid_fraction + sc.duplicate_fraction) {
        const Element e = h.make_element(client, seq++);
        created.insert(e.id);
        bool any = false;
        for (const auto s : routable) any = h.servers[s]->add(e) || any;
        if (any) accepted.push_back(e.id);
      } else {
        const Element e = h.make_element(client, seq++);
        created.insert(e.id);
        if (h.servers[target]->add(e)) accepted.push_back(e.id);
      }
    }
    // Partial seal between bursts: epochs form while traffic still arrives.
    h.flush_collectors();
    h.ledger.seal_block();
  }
  h.seal_rounds(400);

  std::vector<const SetchainServer*> correct;
  for (std::uint32_t s = 0; s < sc.n; ++s) {
    if (!byzantine[s]) correct.push_back(h.servers[s].get());
  }
  const auto safety = check_safety(correct);
  EXPECT_TRUE(safety.ok()) << sc.name << "\n" << safety.to_string();
  const auto live = check_liveness_quiescent(correct, accepted, h.params, h.pki);
  EXPECT_TRUE(live.ok()) << sc.name << "\n" << live.to_string();
  const auto p7 = check_add_before_get(correct, created);
  EXPECT_TRUE(p7.ok()) << sc.name << "\n" << p7.to_string();

  const auto snap = correct.front()->get();
  out.history = *snap.history;
  out.epochs = snap.epoch;
  out.the_set_size = correct.front()->the_set_size();
}

// ---------------------------------------------------------------------------
// Seeded scenario fuzzing (tests/fuzz/scenario_fuzz_test.cpp).
//
// make_fuzz_case(seed) expands a 64-bit seed into a complete Experiment
// scenario: algorithm × cluster size × rate × fault plan (message drops,
// partitions, delay spikes, crash/restart). The expansion is deterministic,
// so a failing seed IS its reproducer:
//   ./scenario_fuzz_test --gtest_filter='*OneSeed*' with SETCHAIN_FUZZ_ONE=<seed>

struct FuzzCase {
  runner::Scenario scenario;
  /// True when every fault heals inside the add window. The run must then
  /// recover completely, and the harness asserts the full liveness property
  /// set on every server — crashed-and-restarted ones included. With an
  /// unhealed fault only the safety properties are asserted.
  bool check_liveness = true;
  /// Fault kinds present in the plan, indexed by sim::FaultKind.
  bool has_kind[4] = {false, false, false, false};
  bool has_wipe = false;
  std::string summary;  ///< one-line description for failure messages
};

inline FuzzCase make_fuzz_case(std::uint64_t seed) {
  sim::Rng rng(seed ^ 0x5CE4A71F00DULL);
  FuzzCase fc;
  runner::Scenario& s = fc.scenario;

  const std::uint32_t n_choices[] = {4, 4, 5, 7, 10};
  s.n = n_choices[rng.uniform_u64(5)];
  const std::uint32_t f = (s.n - 1) / 3;
  const runner::Algorithm algos[] = {runner::Algorithm::kVanilla,
                                     runner::Algorithm::kCompresschain,
                                     runner::Algorithm::kHashchain};
  s.algorithm = algos[rng.uniform_u64(3)];
  s.sending_rate = 100.0 + static_cast<double>(rng.uniform_u64(400));
  const std::uint32_t c_choices[] = {8, 20, 50};
  s.collector_limit = c_choices[rng.uniform_u64(3)];
  const double add_s = 3.0 + rng.uniform(0.0, 2.0);
  s.add_duration = sim::from_seconds(add_s);
  s.horizon = sim::from_seconds(180);  // generous drain margin for recovery
  s.fidelity = core::Fidelity::kCalibrated;
  s.track_ids = true;
  s.seed = seed ^ 0xF0225EEDULL;

  // Nodes eligible for crashes and partition groups: at most f of them, so
  // the f+1 correct quorums the Setchain properties rely on always exist.
  std::vector<sim::NodeId> pool(s.n);
  for (std::uint32_t i = 0; i < s.n; ++i) pool[i] = i;
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.uniform_u64(i)]);
  }
  pool.resize(1 + rng.uniform_u64(std::max<std::uint32_t>(f, 1)));  // 1..f nodes
  std::vector<sim::NodeId> crashable = pool;  // each node crashes at most once

  auto& faults = s.faults.faults;
  const int n_faults = rng.chance(0.1) ? 0 : 1 + static_cast<int>(rng.uniform_u64(3));
  for (int i = 0; i < n_faults; ++i) {
    // Windows open after traffic exists and close before the add window
    // ends, so a healed plan leaves the system time to recover in-band.
    const double start_s = add_s * rng.uniform(0.10, 0.50);
    const double dur_s = add_s * rng.uniform(0.15, 0.40);
    const sim::Time start = sim::from_seconds(start_s);
    const sim::Time end = sim::from_seconds(start_s + dur_s);
    std::uint64_t kind = rng.uniform_u64(4);
    if (kind == 3 && crashable.empty()) kind = 2;  // every pool node already crashes
    switch (kind) {
      case 0: {  // per-link (or blanket) message loss
        if (rng.chance(0.5)) {
          faults.push_back(sim::Fault::drop(sim::kAnyNode, sim::kAnyNode,
                                            rng.uniform(0.05, 0.35), start, end));
        } else {
          const auto a = static_cast<sim::NodeId>(rng.uniform_u64(s.n));
          auto b = static_cast<sim::NodeId>(rng.uniform_u64(s.n - 1));
          if (b >= a) ++b;
          faults.push_back(sim::Fault::drop(a, b, rng.uniform(0.2, 1.0), start, end));
        }
        fc.has_kind[static_cast<int>(sim::FaultKind::kDrop)] = true;
        break;
      }
      case 1: {  // partition: a subset of the pool vs the rest
        std::vector<sim::NodeId> group(pool.begin(),
                                       pool.begin() + 1 + rng.uniform_u64(pool.size()));
        faults.push_back(sim::Fault::partition(std::move(group), start, end,
                                               /*symmetric=*/rng.chance(0.7)));
        fc.has_kind[static_cast<int>(sim::FaultKind::kPartition)] = true;
        break;
      }
      case 2: {  // latency spike
        const sim::Time extra = sim::from_millis(50.0 + rng.uniform(0.0, 1150.0));
        faults.push_back(sim::Fault::delay_spike(extra, start, end));
        fc.has_kind[static_cast<int>(sim::FaultKind::kDelaySpike)] = true;
        break;
      }
      case 3: {  // crash/restart (state retained or wiped)
        const sim::NodeId node = crashable.back();
        crashable.pop_back();
        const bool wipe = rng.chance(0.5);
        const bool unhealed = rng.chance(0.15);
        faults.push_back(
            sim::Fault::crash(node, start, unhealed ? sim::kNeverHeals : end, wipe));
        if (unhealed) fc.check_liveness = false;
        // Crash-proof submission: every element must reach a correct server
        // even when its primary dies with a full collector.
        s.clients_duplicate_to_all = true;
        fc.has_kind[static_cast<int>(sim::FaultKind::kCrash)] = true;
        fc.has_wipe = fc.has_wipe || wipe;
        break;
      }
    }
  }

  fc.summary = "seed=" + std::to_string(seed) + " algo=" +
               runner::algorithm_name(s.algorithm) + " n=" + std::to_string(s.n) +
               " rate=" + std::to_string(static_cast<int>(s.sending_rate)) +
               " collector=" + std::to_string(s.collector_limit) + " faults=[";
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const auto& flt = faults[i];
    fc.summary += std::string(i ? " " : "") + sim::fault_kind_name(flt.kind) + "(" +
                  std::to_string(sim::to_seconds(flt.start)) + "s-" +
                  (flt.heals() ? std::to_string(sim::to_seconds(flt.end)) + "s"
                               : std::string("never")) +
                  (flt.kind == sim::FaultKind::kCrash && flt.wipe_state ? ",wipe" : "") +
                  ")";
  }
  fc.summary += "]";
  return fc;
}

}  // namespace setchain::core::testing
