#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "core/client.hpp"
#include "core/compresschain.hpp"
#include "core/hashchain.hpp"
#include "core/invariants.hpp"
#include "core/vanilla.hpp"
#include "ledger/ledger_node.hpp"

namespace setchain::core::testing {

/// Algorithm test harness on the InstantLedger: n servers in full fidelity,
/// fully synchronous and deterministic. Clients are driven manually (no
/// simulation clock); seal_rounds() pumps the ledger until it drains, which
/// is the "eventually" of the liveness properties.
template <typename Server>
struct AlgoHarness {
  std::uint32_t n;
  SetchainParams params;
  crypto::Pki pki{99};
  ledger::InstantLedger ledger;
  workload::ArbitrumLikeGenerator gen{4};
  ElementFactory factory{gen, pki, Fidelity::kFull};
  std::vector<std::unique_ptr<Server>> servers;

  explicit AlgoHarness(std::uint32_t n_servers = 4, std::uint32_t collector_limit = 4)
      : n(n_servers), ledger(n_servers) {
    params.n = n;
    params.f = (n - 1) / 3;
    params.fidelity = Fidelity::kFull;
    params.collector_limit = collector_limit;
    params.collector_timeout = 0;  // no clock: flush manually / by size

    for (crypto::ProcessId p = 0; p < n; ++p) pki.register_process(p);
    for (crypto::ProcessId p = 100; p < 100 + n; ++p) pki.register_process(p);

    ServerContext ctx;
    ctx.ledger = &ledger;
    ctx.pki = &pki;
    ctx.params = &params;
    for (std::uint32_t i = 0; i < n; ++i) {
      auto s = std::make_unique<Server>(ctx, i);
      ledger.on_new_block(i, [p = s.get()](const ledger::Block& b) {
        p->on_new_block(b);
      });
      servers.push_back(std::move(s));
    }
    if constexpr (std::is_same_v<Server, HashchainServer>) {
      std::vector<HashchainServer*> peers;
      for (auto& s : servers) peers.push_back(s.get());
      for (auto& s : servers) s->connect_peers(peers);
    }
  }

  Element make_element(std::uint32_t client_slot, std::uint64_t seq) {
    return factory.make(100 + client_slot, seq);
  }

  /// Flush every server's collector (batch algorithms), if any.
  void flush_collectors() {
    if constexpr (!std::is_same_v<Server, VanillaServer>) {
      for (auto& s : servers) s->collector().flush();
    }
  }

  /// Seal blocks (flushing collectors between rounds) until the system is
  /// quiescent: no pending ledger txs and no partially filled collectors.
  void seal_rounds(int max_rounds = 60) {
    for (int round = 0; round < max_rounds; ++round) {
      flush_collectors();
      if (!ledger.seal_block()) {
        flush_collectors();
        if (!ledger.seal_block()) return;  // fully drained
      }
    }
    FAIL() << "system did not quiesce within " << max_rounds << " seal rounds";
  }

  std::vector<const SetchainServer*> all_servers() const {
    std::vector<const SetchainServer*> out;
    for (const auto& s : servers) out.push_back(s.get());
    return out;
  }
};

}  // namespace setchain::core::testing
