// Parameterized property sweep: every algorithm, several cluster sizes and
// collector limits, driven with a randomized workload that mixes valid
// elements, invalid (badly signed) elements, and duplicate submissions to
// multiple servers. After draining, the full Setchain property set (§2,
// Properties 1-8) must hold on every correct server.
#include <gtest/gtest.h>

#include <algorithm>

#include "algo_fixture.hpp"
#include "sim/rng.hpp"

namespace setchain::core {
namespace {

enum class Algo { kVanilla, kCompress, kHash };

struct SweepParam {
  Algo algo;
  std::uint32_t n;
  std::uint32_t collector;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const char* a = info.param.algo == Algo::kVanilla      ? "Vanilla"
                  : info.param.algo == Algo::kCompress   ? "Compress"
                                                         : "Hash";
  return std::string(a) + "_n" + std::to_string(info.param.n) + "_c" +
         std::to_string(info.param.collector) + "_s" + std::to_string(info.param.seed);
}

class PropertySweep : public ::testing::TestWithParam<SweepParam> {};

template <typename Server>
void run_sweep(const SweepParam& p) {
  testing::AlgoHarness<Server> h(p.n, p.collector);
  sim::Rng rng(p.seed);

  std::vector<ElementId> accepted;
  std::unordered_set<ElementId> created;
  std::uint64_t seq = 0;

  const int kRounds = 6;
  const int kPerRound = 12;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kPerRound; ++i) {
      const auto client_slot = static_cast<std::uint32_t>(rng.uniform_u64(p.n));
      const auto server_slot = static_cast<std::uint32_t>(rng.uniform_u64(p.n));
      const double dice = rng.uniform01();
      if (dice < 0.15) {
        // Byzantine client: invalid signature. Must be rejected.
        const Element bad = h.factory.make_invalid(100 + client_slot, seq++);
        created.insert(bad.id);
        EXPECT_FALSE(h.servers[server_slot]->add(bad));
      } else if (dice < 0.30) {
        // Duplicate submission to several servers.
        const Element e = h.make_element(client_slot, seq++);
        created.insert(e.id);
        bool any = false;
        for (auto& s : h.servers) any = s->add(e) || any;
        if (any) accepted.push_back(e.id);
      } else {
        const Element e = h.make_element(client_slot, seq++);
        created.insert(e.id);
        if (h.servers[server_slot]->add(e)) accepted.push_back(e.id);
      }
    }
    // Interleave partial seals with adds: exercises epochs forming while
    // elements are still arriving.
    h.flush_collectors();
    h.ledger.seal_block();
  }
  h.seal_rounds(400);

  const auto servers = h.all_servers();
  const auto safety = check_safety(servers);
  EXPECT_TRUE(safety.ok()) << safety.to_string();
  const auto live = check_liveness_quiescent(servers, accepted, h.params, h.pki);
  EXPECT_TRUE(live.ok()) << live.to_string();
  const auto p7 = check_add_before_get(servers, created);
  EXPECT_TRUE(p7.ok()) << p7.to_string();
}

TEST_P(PropertySweep, AllPropertiesHoldAfterRandomizedWorkload) {
  const auto& p = GetParam();
  switch (p.algo) {
    case Algo::kVanilla:
      run_sweep<VanillaServer>(p);
      break;
    case Algo::kCompress:
      run_sweep<CompresschainServer>(p);
      break;
    case Algo::kHash:
      run_sweep<HashchainServer>(p);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PropertySweep,
    ::testing::Values(
        // Vanilla across cluster sizes.
        SweepParam{Algo::kVanilla, 4, 0, 1}, SweepParam{Algo::kVanilla, 7, 0, 2},
        SweepParam{Algo::kVanilla, 10, 0, 3},
        // Compresschain across cluster sizes and collector limits.
        SweepParam{Algo::kCompress, 4, 3, 4}, SweepParam{Algo::kCompress, 4, 10, 5},
        SweepParam{Algo::kCompress, 7, 5, 6}, SweepParam{Algo::kCompress, 10, 8, 7},
        // Hashchain across cluster sizes and collector limits.
        SweepParam{Algo::kHash, 4, 3, 8}, SweepParam{Algo::kHash, 4, 10, 9},
        SweepParam{Algo::kHash, 7, 5, 10}, SweepParam{Algo::kHash, 10, 8, 11},
        // Repeat seeds on the most complex configuration.
        SweepParam{Algo::kHash, 7, 4, 12}, SweepParam{Algo::kHash, 7, 4, 13},
        SweepParam{Algo::kHash, 7, 4, 14}),
    param_name);

// Cross-algorithm agreement: the three algorithms may form different epoch
// *boundaries*, but each one individually must keep all servers identical —
// verified pairwise within each run by check_safety (P6). Here we also pin
// a regression: the exact number of epochs for a fixed workload and seed
// stays stable across refactorings.
TEST(PropertyRegression, EpochCountStableForFixedWorkload) {
  testing::AlgoHarness<CompresschainServer> h(4, 4);
  for (std::uint32_t c = 0; c < 4; ++c) {
    for (std::uint64_t i = 0; i < 8; ++i) h.servers[c]->add(h.make_element(c, i));
  }
  h.seal_rounds(120);
  EXPECT_EQ(h.servers[0]->epoch(), 8u);  // 32 elements / collector 4
  const auto safety = check_safety(h.all_servers());
  EXPECT_TRUE(safety.ok()) << safety.to_string();
}

}  // namespace
}  // namespace setchain::core
