// Regression + conformance tests for the batched-signature hot path and the
// hot-path bugfix sweep: element wire_size is recomputed from bytes actually
// consumed, valid_elements (batch) agrees with scalar valid_element, presig
// plumbing through valid_proof/valid_hash_batch, and the
// SetchainClient::verify proof-lookup underflow on zero-numbered epoch
// records.
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/element.hpp"
#include "core/proofs.hpp"
#include "core/setchain_base.hpp"

namespace setchain::core {
namespace {

struct BatchPathFixture : ::testing::Test {
  crypto::Pki pki{2718};
  workload::ArbitrumLikeGenerator gen{9};
  ElementFactory factory{gen, pki, Fidelity::kFull};

  BatchPathFixture() {
    for (crypto::ProcessId p = 0; p < 4; ++p) pki.register_process(p);
    for (crypto::ProcessId p = 100; p < 104; ++p) pki.register_process(p);
  }
};

// ------------------------------------------------- Element wire_size (bugfix)

TEST_F(BatchPathFixture, ParseElementWireSizeMatchesBytesConsumed) {
  // Payload sizes straddling the varint length-prefix boundaries (2^7,
  // 2^14): parse(serialize(e)).wire_size must equal serialize(e).size() —
  // recomputed from bytes consumed, not from a size formula that can drift.
  for (const std::size_t payload_size : {1u, 2u, 127u, 128u, 129u, 300u, 16383u, 16384u}) {
    Element e;
    e.client = 100;
    e.id = make_element_id(e.client, payload_size);
    e.payload.resize(payload_size);
    for (std::size_t i = 0; i < payload_size; ++i) {
      e.payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
    }

    codec::Writer w;
    serialize_element(w, e);
    codec::Reader r(w.buffer());
    ASSERT_EQ(r.u8(), kElementTag);
    const auto back = parse_element(r);
    ASSERT_TRUE(back.has_value()) << payload_size;
    EXPECT_EQ(back->wire_size, w.size()) << payload_size;
    EXPECT_TRUE(r.done()) << payload_size;
  }
}

// ------------------------------------------- valid_elements (batch) vs scalar

TEST_F(BatchPathFixture, ValidElementsBatchAgreesWithScalar) {
  std::vector<Element> es;
  for (std::uint64_t i = 0; i < 6; ++i) es.push_back(factory.make(100, i));
  es.push_back(factory.make_invalid(101, 50));        // broken signature
  es.push_back(factory.make(102, 60));
  es[7].payload[0] ^= 1;                              // tampered payload
  es.push_back(factory.make(103, 70));
  es[8].client = 102;                                 // client/id spoof
  es.push_back(factory.make(101, 80));                // valid again

  const auto batch = valid_elements(es, pki, Fidelity::kFull);
  ASSERT_EQ(batch.size(), es.size());
  for (std::size_t i = 0; i < es.size(); ++i) {
    EXPECT_EQ(batch[i], valid_element(es[i], pki, Fidelity::kFull)) << i;
  }
  EXPECT_TRUE(batch[0]);
  EXPECT_FALSE(batch[6]);
  EXPECT_FALSE(batch[7]);
  EXPECT_FALSE(batch[8]);
  EXPECT_TRUE(batch[9]);
}

TEST_F(BatchPathFixture, ValidElementsCalibratedUsesFlags) {
  workload::ArbitrumLikeGenerator g2{5};
  ElementFactory cal(g2, pki, Fidelity::kCalibrated);
  std::vector<Element> es = {cal.make(100, 1), cal.make_invalid(100, 2), cal.make(101, 3)};
  const auto v = valid_elements(es, pki, Fidelity::kCalibrated);
  EXPECT_EQ(v, (std::vector<bool>{true, false, true}));
}

// ------------------------------------------------------------ presig plumbing

TEST_F(BatchPathFixture, ValidProofHonorsPrecomputedSignatureVerdict) {
  EpochHash h{};
  h[0] = 0xAB;
  const EpochProof p = make_epoch_proof(pki, 1, 3, h, Fidelity::kFull);
  EXPECT_TRUE(valid_proof(p, h, pki, Fidelity::kFull));
  EXPECT_TRUE(valid_proof(p, h, pki, Fidelity::kFull, SigCheck::kValid));
  // A precomputed kInvalid verdict short-circuits the (otherwise valid) sig.
  EXPECT_FALSE(valid_proof(p, h, pki, Fidelity::kFull, SigCheck::kInvalid));
  // The hash check still runs before any signature shortcut.
  EpochHash wrong = h;
  wrong[1] ^= 0xFF;
  EXPECT_FALSE(valid_proof(p, wrong, pki, Fidelity::kFull, SigCheck::kValid));
}

TEST_F(BatchPathFixture, BatchCheckProofSigsFindsForgery) {
  EpochHash h{};
  std::vector<EpochProof> ps;
  for (crypto::ProcessId s = 0; s < 4; ++s) {
    ps.push_back(make_epoch_proof(pki, s, 1, h, Fidelity::kFull));
  }
  ps[2].sig[10] ^= 0x04;
  const auto checks = batch_check_proof_sigs(ps, pki, Fidelity::kFull);
  ASSERT_EQ(checks.size(), 4u);
  EXPECT_EQ(checks[0], SigCheck::kValid);
  EXPECT_EQ(checks[1], SigCheck::kValid);
  EXPECT_EQ(checks[2], SigCheck::kInvalid);
  EXPECT_EQ(checks[3], SigCheck::kValid);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_EQ(valid_proof(ps[i], h, pki, Fidelity::kFull, checks[i]),
              valid_proof(ps[i], h, pki, Fidelity::kFull)) << i;
  }
}

TEST_F(BatchPathFixture, BatchCheckHashBatchSigsAgreesWithScalar) {
  EpochHash h{};
  h[5] = 0x5A;
  std::vector<HashBatchMsg> hbs;
  for (crypto::ProcessId s = 0; s < 3; ++s) {
    hbs.push_back(make_hash_batch(pki, s, h, Fidelity::kFull));
  }
  hbs[1].hash[0] ^= 1;  // signature no longer covers this hash
  const auto checks = batch_check_hash_batch_sigs(hbs, pki, Fidelity::kFull);
  for (std::size_t i = 0; i < hbs.size(); ++i) {
    EXPECT_EQ(valid_hash_batch(hbs[i], pki, Fidelity::kFull, checks[i]),
              valid_hash_batch(hbs[i], pki, Fidelity::kFull)) << i;
  }
  EXPECT_EQ(checks[1], SigCheck::kInvalid);
}

TEST_F(BatchPathFixture, BatchCheckLeavesSmallAndCalibratedUnchecked) {
  EpochHash h{};
  std::vector<EpochProof> one = {make_epoch_proof(pki, 0, 1, h, Fidelity::kFull)};
  EXPECT_EQ(batch_check_proof_sigs(one, pki, Fidelity::kFull)[0], SigCheck::kUnchecked);
  std::vector<EpochProof> cal = {make_epoch_proof(pki, 0, 1, h, Fidelity::kCalibrated),
                                 make_epoch_proof(pki, 1, 1, h, Fidelity::kCalibrated)};
  for (const auto c : batch_check_proof_sigs(cal, pki, Fidelity::kCalibrated)) {
    EXPECT_EQ(c, SigCheck::kUnchecked);
  }
}

// ------------------------------- SetchainClient::verify zero-epoch regression

/// Test-only server exposing the protected history so a Byzantine snapshot
/// (zero-numbered epoch record) can be crafted directly.
class RawHistoryServer final : public SetchainServer {
 public:
  RawHistoryServer(ServerContext ctx, crypto::ProcessId id) : SetchainServer(ctx, id) {}
  bool add(Element) override { return false; }
  void push_raw_record(EpochRecord rec) { history_.push_back(std::move(rec)); }
};

TEST_F(BatchPathFixture, ClientVerifyToleratesZeroNumberedEpochRecord) {
  SetchainParams params;
  params.n = 4;
  params.f = 1;
  ServerContext ctx;
  ctx.pki = &pki;
  ctx.params = &params;
  RawHistoryServer server(ctx, 0);

  // A Byzantine server hands back an epoch record with number == 0: the
  // old proof lookup computed proofs[number - 1] == proofs[SIZE_MAX].
  EpochRecord rec;
  rec.number = 0;
  rec.ids = {make_element_id(100, 7)};
  rec.count = 1;
  server.push_raw_record(rec);

  const auto out = SetchainClient::verify(server, make_element_id(100, 7), pki, params);
  EXPECT_TRUE(out.in_epoch);
  EXPECT_EQ(out.epoch, 0u);
  EXPECT_EQ(out.valid_proofs, 0u);  // no proofs counted, no underflow
  EXPECT_FALSE(out.committed);
}

TEST_F(BatchPathFixture, ClientVerifyStillCountsProofsForRealEpochs) {
  SetchainParams params;
  params.n = 4;
  params.f = 1;
  ServerContext ctx;
  ctx.pki = &pki;
  ctx.params = &params;
  RawHistoryServer server(ctx, 0);

  // Consolidate one real epoch through the protected interface by driving
  // absorb via crafted history + proofs the snapshot can see.
  EpochRecord rec;
  rec.number = 1;
  rec.ids = {make_element_id(100, 9)};
  rec.count = 1;
  rec.hash = epoch_hash(1, {{make_element_id(100, 9), 42}}, Fidelity::kFull);
  server.push_raw_record(rec);

  const auto out = SetchainClient::verify(server, make_element_id(100, 9), pki, params);
  EXPECT_TRUE(out.in_epoch);
  EXPECT_EQ(out.epoch, 1u);
  // No proofs appended for this crafted record (proofs_ is empty): the
  // guarded lookup must simply find none rather than read out of range.
  EXPECT_EQ(out.valid_proofs, 0u);
  EXPECT_FALSE(out.committed);
}

}  // namespace
}  // namespace setchain::core
