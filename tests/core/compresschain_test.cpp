#include "core/compresschain.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "algo_fixture.hpp"
#include "codec/lz77.hpp"

namespace setchain::core {
namespace {

using testing::AlgoHarness;

using CompressHarness = AlgoHarness<CompresschainServer>;

TEST(Compresschain, CollectorEmitsAtLimitAndAppendsOneTx) {
  CompressHarness h(4, /*collector_limit=*/3);
  for (std::uint64_t i = 0; i < 3; ++i) {
    h.servers[0]->add(h.make_element(0, i));
  }
  // Batch of 3 fills the collector: exactly one ledger tx appended.
  EXPECT_EQ(h.servers[0]->batches_appended(), 1u);
  EXPECT_EQ(h.ledger.pending(), 1u);
}

TEST(Compresschain, PartialManualFlushConsolidatesRemainder) {
  // A below-limit collector flushed by hand (the timeout path in production)
  // must still form a full epoch everywhere — the conformance driver relies
  // on this to drain stragglers at quiescence.
  CompressHarness h(4, /*collector_limit=*/10);
  for (std::uint64_t i = 0; i < 3; ++i) h.servers[0]->add(h.make_element(0, i));
  EXPECT_EQ(h.servers[0]->batches_appended(), 0u);  // under the limit
  h.servers[0]->collector().flush();
  EXPECT_EQ(h.servers[0]->batches_appended(), 1u);
  h.seal_rounds();
  for (auto& s : h.servers) {
    EXPECT_EQ(s->epoch(), 1u) << "server " << s->id();
    EXPECT_EQ(s->the_set_size(), 3u);
  }
}

TEST(Compresschain, EachCompressedBatchBecomesOneEpoch) {
  CompressHarness h(4, 2);
  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));  // batch A
  h.servers[1]->add(h.make_element(1, 1));
  h.servers[1]->add(h.make_element(1, 2));  // batch B
  h.ledger.seal_block();                    // both batches in ONE block
  for (auto& s : h.servers) {
    EXPECT_EQ(s->epoch(), 2u);  // two epochs from one block
    EXPECT_EQ((*s->get().history)[0].count, 2u);
    EXPECT_EQ((*s->get().history)[1].count, 2u);
  }
}

TEST(Compresschain, TransactionIsActuallyCompressed) {
  CompressHarness h(4, 10);
  for (std::uint64_t i = 0; i < 10; ++i) h.servers[0]->add(h.make_element(0, i));
  ASSERT_EQ(h.ledger.pending(), 1u);
  const auto& tx = h.ledger.txs().get(0);
  // Decompress and parse: must be our batch.
  const auto raw = codec::lz77_decompress(tx.data);
  ASSERT_TRUE(raw.has_value());
  const auto batch = parse_batch(*raw);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->elements.size(), 10u);
  // Compressed smaller than raw (the whole point).
  EXPECT_LT(tx.data.size(), raw->size());
}

TEST(Compresschain, ProofsPiggybackInBatches) {
  CompressHarness h(4, 2);
  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.seal_rounds();
  // After drain: epoch 1 exists and every server holds >= f+1 proofs, all
  // delivered inside later compressed batches.
  for (auto& s : h.servers) {
    EXPECT_EQ(s->epoch(), 1u);
    EXPECT_TRUE(s->epoch_proven(1));
    EXPECT_EQ((*s->get().proofs)[0].size(), 4u);
  }
}

TEST(Compresschain, AllPropertiesAtQuiescence) {
  CompressHarness h(4, 4);
  std::vector<ElementId> accepted;
  std::unordered_set<ElementId> created;
  for (std::uint32_t c = 0; c < 4; ++c) {
    for (std::uint64_t i = 0; i < 7; ++i) {  // 7: forces partial batches too
      const Element e = h.make_element(c, i);
      created.insert(e.id);
      if (h.servers[c]->add(e)) accepted.push_back(e.id);
    }
  }
  h.seal_rounds();
  const auto servers = h.all_servers();
  EXPECT_TRUE(check_safety(servers).ok()) << check_safety(servers).to_string();
  const auto live = check_liveness_quiescent(servers, accepted, h.params, h.pki);
  EXPECT_TRUE(live.ok()) << live.to_string();
  EXPECT_TRUE(check_add_before_get(servers, created).ok());
}

TEST(Compresschain, DuplicateAcrossServersInOneEpochOnly) {
  CompressHarness h(4, 1);  // every element its own batch
  const Element e = h.make_element(0, 1);
  h.servers[0]->add(e);
  h.servers[1]->add(e);  // double-submission: two batches carry the same id
  h.seal_rounds();
  for (auto& s : h.servers) {
    std::size_t occurrences = 0;
    for (const auto& rec : *s->get().history) {
      occurrences += static_cast<std::size_t>(
          std::count(rec.ids.begin(), rec.ids.end(), e.id));
    }
    EXPECT_EQ(occurrences, 1u);  // P5 despite duplicate batches
  }
  EXPECT_TRUE(check_safety(h.all_servers()).ok());
}

TEST(Compresschain, CorruptCompressedDataIsSkipped) {
  CompressHarness h(4, 2);
  // Byzantine server appends bytes that are not a valid szx stream.
  ledger::Transaction junk;
  junk.kind = ledger::TxKind::kCompressedBatch;
  junk.data = codec::to_bytes("SZX1 but actually broken");
  junk.wire_size = static_cast<std::uint32_t>(junk.data.size());
  h.ledger.append(2, std::move(junk));

  // And a stream that decompresses but does not parse as a batch.
  ledger::Transaction junk2;
  junk2.kind = ledger::TxKind::kCompressedBatch;
  junk2.data = codec::lz77_compress(codec::to_bytes("valid szx, invalid batch"));
  junk2.wire_size = static_cast<std::uint32_t>(junk2.data.size());
  h.ledger.append(2, std::move(junk2));

  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.seal_rounds();
  for (auto& s : h.servers) {
    EXPECT_EQ(s->epoch(), 1u);  // only the genuine batch became an epoch
  }
  EXPECT_TRUE(check_safety(h.all_servers()).ok());
}

TEST(Compresschain, InvalidElementsInsideBatchFiltered) {
  CompressHarness h(4, 3);
  // Build a batch mixing valid and invalid elements and append it as a
  // Byzantine server would.
  Batch b;
  const Element good = h.make_element(0, 1);
  b.elements.push_back(good);
  b.elements.push_back(h.factory.make_invalid(101, 1));
  b.elements.push_back(h.factory.make_invalid(101, 2));
  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kCompressedBatch;
  tx.data = codec::lz77_compress(serialize_batch(b));
  tx.wire_size = static_cast<std::uint32_t>(tx.data.size());
  h.ledger.append(3, std::move(tx));
  h.seal_rounds();
  for (auto& s : h.servers) {
    ASSERT_EQ(s->epoch(), 1u);
    EXPECT_EQ((*s->get().history)[0].count, 1u);  // invalid ones filtered
    EXPECT_EQ((*s->get().history)[0].ids[0], good.id);
  }
}

TEST(Compresschain, LightModeSkipsValidationButFormsSameEpochs) {
  CompressHarness h(4, 2);
  h.params.validate = false;  // Compresschain Light (Fig. 2 ablation)
  h.servers[0]->add(h.make_element(0, 1));
  h.servers[0]->add(h.make_element(0, 2));
  h.seal_rounds();
  for (auto& s : h.servers) {
    EXPECT_EQ(s->epoch(), 1u);
    EXPECT_EQ((*s->get().history)[0].count, 2u);
  }
  EXPECT_TRUE(check_safety(h.all_servers()).ok());
}

TEST(Compresschain, ManyRoundsStaysConsistent) {
  CompressHarness h(4, 5);
  std::uint64_t seq = 0;
  for (int round = 0; round < 8; ++round) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      for (int k = 0; k < 3; ++k) h.servers[c]->add(h.make_element(c, seq + k));
    }
    seq += 3;
    h.flush_collectors();
    h.ledger.seal_block();
  }
  h.seal_rounds();
  const auto report = check_safety(h.all_servers());
  EXPECT_TRUE(report.ok()) << report.to_string();
  for (auto& s : h.servers) EXPECT_EQ(s->the_set_size(), 4u * 8u * 3u);
}

}  // namespace
}  // namespace setchain::core
