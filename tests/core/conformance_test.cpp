// Cross-algorithm conformance harness: vanilla, hashchain, and compresschain
// implement the same abstract Setchain data type (§2), so replaying one
// deterministic workload against all three must give the same consolidated
// set and content-pure epoch hashes (P9, check_cross_algorithm), on top of
// each run individually satisfying Properties 1-8. Every scenario-grid point
// below runs all three algorithms; the grid spans element rates, server
// counts, client-fault mixes, and server-Byzantine settings, so any future
// hot-path refactor of one algorithm is checked against the other two.
#include <gtest/gtest.h>

#include "algo_fixture.hpp"

namespace setchain::core {
namespace {

using testing::ConformanceOutcome;
using testing::ConformanceScenario;
using testing::drive_conformance;

struct AllAlgoOutcomes {
  ConformanceOutcome vanilla;
  ConformanceOutcome hashchain;
  ConformanceOutcome compresschain;
};

AllAlgoOutcomes run_all(const ConformanceScenario& sc) {
  AllAlgoOutcomes out;
  drive_conformance<VanillaServer>(sc, out.vanilla);
  drive_conformance<HashchainServer>(sc, out.hashchain);
  drive_conformance<CompresschainServer>(sc, out.compresschain);
  return out;
}

std::string scenario_name(const ::testing::TestParamInfo<ConformanceScenario>& info) {
  return info.param.name;
}

class Conformance : public ::testing::TestWithParam<ConformanceScenario> {};

TEST_P(Conformance, AlgorithmsAgreeOnConsolidatedSetAndHashes) {
  const auto& sc = GetParam();
  const AllAlgoOutcomes out = run_all(sc);

  const std::vector<AlgoRun> runs = {
      {"vanilla", &out.vanilla.history},
      {"hashchain", &out.hashchain.history},
      {"compresschain", &out.compresschain.history},
  };
  const auto report = check_cross_algorithm(runs);
  EXPECT_TRUE(report.ok()) << sc.name << "\n" << report.to_string();

  // The consolidated totals must line up too: the_set at quiescence is
  // exactly the consolidated set (P4), identically sized in all three runs.
  EXPECT_EQ(out.vanilla.the_set_size, out.hashchain.the_set_size) << sc.name;
  EXPECT_EQ(out.vanilla.the_set_size, out.compresschain.the_set_size) << sc.name;

  // Something must actually have consolidated, or the grid point is vacuous.
  EXPECT_GT(out.vanilla.epochs, 0u) << sc.name;
  EXPECT_GT(out.hashchain.epochs, 0u) << sc.name;
  EXPECT_GT(out.compresschain.epochs, 0u) << sc.name;
}

// The grid: element rates (per_round) × server counts (n) × fault settings.
// 15 points × 3 algorithms = 45 runs per ctest invocation.
INSTANTIATE_TEST_SUITE_P(
    Grid, Conformance,
    ::testing::Values(
        // Rate × server-count sweep, no faults.
        ConformanceScenario{
            .name = "n4_low_rate", .n = 4, .collector = 4, .rounds = 3, .per_round = 8, .seed = 101},
        ConformanceScenario{
            .name = "n4_high_rate", .n = 4, .collector = 6, .rounds = 5, .per_round = 24, .seed = 102},
        ConformanceScenario{
            .name = "n7_low_rate", .n = 7, .collector = 5, .rounds = 3, .per_round = 10, .seed = 103},
        ConformanceScenario{
            .name = "n7_high_rate", .n = 7, .collector = 8, .rounds = 5, .per_round = 20, .seed = 104},
        ConformanceScenario{
            .name = "n10_low_rate", .n = 10, .collector = 4, .rounds = 3, .per_round = 8, .seed = 105},
        ConformanceScenario{
            .name = "n10_high_rate", .n = 10, .collector = 10, .rounds = 4, .per_round = 22, .seed = 106},
        // Collector pressure: every element becomes its own batch.
        ConformanceScenario{
            .name = "n4_collector1", .n = 4, .collector = 1, .rounds = 3, .per_round = 8, .seed = 107},
        // Byzantine clients: invalid signatures and duplicate submissions.
        ConformanceScenario{.name = "n4_invalid", .n = 4, .collector = 4, .per_round = 12,
                            .invalid_fraction = 0.25, .seed = 108},
        ConformanceScenario{.name = "n7_duplicates", .n = 7, .collector = 5, .per_round = 12,
                            .duplicate_fraction = 0.3, .seed = 109},
        ConformanceScenario{.name = "n4_invalid_dup", .n = 4, .collector = 4, .per_round = 12,
                            .invalid_fraction = 0.2, .duplicate_fraction = 0.2, .seed = 110},
        // Byzantine servers: corrupt proofs, batch withholding, fake hashes.
        ConformanceScenario{.name = "n4_corrupt_proofs", .n = 4, .collector = 4,
                            .corrupt_proofs_server = 1, .seed = 111},
        ConformanceScenario{.name = "n7_corrupt_invalid", .n = 7, .collector = 5, .per_round = 12,
                            .invalid_fraction = 0.15, .corrupt_proofs_server = 2, .seed = 112},
        ConformanceScenario{.name = "n4_refuse_batch", .n = 4, .collector = 4,
                            .refuse_batch_server = 0, .seed = 113},
        ConformanceScenario{.name = "n4_fake_hashes", .n = 4, .collector = 3,
                            .fake_hash_server = true, .seed = 114},
        // Kitchen sink: every fault class at once, f = 2 tolerates both
        // Byzantine servers (corrupt proofs at 1, fake hashes at n-1).
        ConformanceScenario{.name = "n7_all_faults", .n = 7, .collector = 5, .per_round = 14,
                            .invalid_fraction = 0.15, .duplicate_fraction = 0.15,
                            .corrupt_proofs_server = 1, .fake_hash_server = true, .seed = 115}),
    scenario_name);

// Consistent epoch hashes also means *reproducible* epoch hashes: replaying
// the identical scenario must regenerate bit-identical epoch chains for
// every algorithm (guards against nondeterminism sneaking into the hot
// path — iteration order, uninitialised state, time-dependent hashing).
template <typename Server>
void expect_replay_identical(const ConformanceScenario& sc, const char* algo) {
  ConformanceOutcome a, b;
  drive_conformance<Server>(sc, a);
  drive_conformance<Server>(sc, b);
  ASSERT_EQ(a.history.size(), b.history.size()) << algo;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].ids, b.history[i].ids) << algo << " epoch " << i + 1;
    EXPECT_EQ(a.history[i].hash, b.history[i].hash) << algo << " epoch " << i + 1;
  }
}

TEST(ConformanceReplay, EpochChainsAreDeterministic) {
  const ConformanceScenario sc{.name = "replay", .n = 4, .collector = 4, .per_round = 12,
                               .invalid_fraction = 0.1, .duplicate_fraction = 0.1, .seed = 900};
  expect_replay_identical<VanillaServer>(sc, "vanilla");
  expect_replay_identical<HashchainServer>(sc, "hashchain");
  expect_replay_identical<CompresschainServer>(sc, "compresschain");
}

// The checker itself must catch divergence (meta-test: a harness that cannot
// fail proves nothing).
TEST(ConformanceChecker, FlagsSetDivergenceAndHashImpurity) {
  EpochRecord r1;
  r1.number = 1;
  r1.ids = {1, 2, 3};
  r1.hash.fill(0xAA);
  EpochRecord r2 = r1;
  r2.ids = {1, 2, 4};  // set divergence
  const std::vector<EpochRecord> ha = {r1}, hb = {r2};
  const auto diverged =
      check_cross_algorithm({{"a", &ha}, {"b", &hb}});
  EXPECT_FALSE(diverged.ok());

  EpochRecord r3 = r1;
  r3.hash.fill(0xBB);  // same (number, ids), different hash
  const std::vector<EpochRecord> hc = {r3};
  const auto impure =
      check_cross_algorithm({{"a", &ha}, {"c", &hc}});
  EXPECT_FALSE(impure.ok());

  const std::vector<EpochRecord> hd = {r1};
  EXPECT_TRUE(check_cross_algorithm({{"a", &ha}, {"d", &hd}}).ok());
}

}  // namespace
}  // namespace setchain::core
