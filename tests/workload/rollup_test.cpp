// Optimistic-rollup workload tier: artifact codecs round-trip and reject
// foreign tags, the pre-signed tx pool stripes nonce-ordered traffic, and —
// against a live 4-node TCP cluster — an honest operator's commitments all
// consolidate and verify, while a dishonest operator's corrupted commitment
// is proven fraudulent inside the epoch-barrier fraud window. After each
// live run the cluster is frozen and the Setchain P1–P9 properties are
// checked white-box over every node.
#include "workload/rollup.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <unordered_set>

#include "api/quorum_client.hpp"
#include "core/invariants.hpp"
#include "exec/token_tx.hpp"
#include "load/local_cluster.hpp"
#include "net/remote_node.hpp"

namespace setchain::workload::rollup {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------ codec tests

TEST(RollupCodec, CommitmentRoundTrips) {
  Commitment c;
  c.epoch = 7781;
  for (std::size_t i = 0; i < c.root.size(); ++i) {
    c.root[i] = static_cast<std::uint8_t>(i * 3 + 1);
  }
  const auto bytes = encode_commitment(c);
  const auto back = parse_commitment(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->epoch, c.epoch);
  EXPECT_EQ(back->root, c.root);
}

TEST(RollupCodec, FraudProofRoundTrips) {
  FraudProof f;
  f.accused = (42ull << 40) | 7;
  f.epoch = 99;
  f.claimed.fill(0xAA);
  f.correct.fill(0xBB);
  const auto bytes = encode_fraud_proof(f);
  const auto back = parse_fraud_proof(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->accused, f.accused);
  EXPECT_EQ(back->epoch, f.epoch);
  EXPECT_EQ(back->claimed, f.claimed);
  EXPECT_EQ(back->correct, f.correct);
}

TEST(RollupCodec, TagsAreMutuallyExclusive) {
  Commitment c;
  c.epoch = 1;
  const auto commit_bytes = encode_commitment(c);
  EXPECT_FALSE(parse_fraud_proof(commit_bytes).has_value());
  FraudProof f;
  const auto fraud_bytes = encode_fraud_proof(f);
  EXPECT_FALSE(parse_commitment(fraud_bytes).has_value());
  // A token tx is neither.
  EXPECT_FALSE(parse_commitment(codec::Bytes{exec::kTokenTxTag}).has_value());
  EXPECT_FALSE(parse_fraud_proof(codec::Bytes{}).has_value());
}

// ------------------------------------------------------------- pool tests

TEST(TxPool, StripedNonceOrderPerSession) {
  crypto::Pki pki(42);
  for (crypto::ProcessId p = 0; p < 16; ++p) pki.register_process(p);

  TxPoolConfig cfg;
  cfg.sessions = 4;
  cfg.budget = 200;
  cfg.first_client = 4;
  cfg.client_span = 8;
  cfg.seed = 9;
  const TxPool pool = build_tx_pool(cfg, pki);

  ASSERT_EQ(pool.elements.size(), cfg.budget);
  ASSERT_EQ(pool.accounts.size(), cfg.sessions);
  ASSERT_EQ(pool.index.size(), cfg.budget);  // ids unique

  for (std::size_t i = 0; i < pool.elements.size(); ++i) {
    EXPECT_EQ(pool.index.at(pool.elements[i].id), i);
  }

  // Within a session's stripe the txs spend one account with increasing
  // nonces — the property that lets one TCP connection preserve exec order.
  for (std::uint32_t s = 0; s < cfg.sessions; ++s) {
    std::uint64_t expect_nonce = 0;
    for (std::size_t i = s; i < pool.elements.size(); i += cfg.sessions) {
      const auto tx = exec::parse_token_tx(pool.elements[i].payload);
      ASSERT_TRUE(tx.has_value()) << "pool element is not a token tx";
      EXPECT_EQ(tx->from, pool.accounts[s]);
      EXPECT_EQ(tx->nonce, expect_nonce++);
    }
  }
}

// --------------------------------------------------------- live-cluster tier

struct LiveRollup {
  net::NodeHostConfig cfg;
  load::LocalCluster cluster;
  crypto::Pki pki;
  TxPool pool;

  static net::NodeHostConfig make_config() {
    net::NodeHostConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.algorithm = runner::Algorithm::kHashchain;
    cfg.ledger_mode = runner::LedgerMode::kFixedSequencer;
    cfg.seed = 42;
    cfg.collector_limit = 64;
    cfg.collector_timeout = sim::from_millis(50);
    cfg.block_interval = sim::from_millis(50);
    cfg.sync_interval = sim::from_millis(400);
    return cfg;
  }

  LiveRollup() : cfg(make_config()), cluster(cfg), pki(cfg.seed) {
    for (crypto::ProcessId p = 0; p < cfg.n + cfg.client_slots; ++p) {
      pki.register_process(p);
    }
    TxPoolConfig pc;
    pc.sessions = 8;
    pc.budget = 240;
    pc.first_client = cfg.n;
    pc.client_span = cfg.client_slots - 2;
    pc.seed = cfg.seed;
    pool = build_tx_pool(pc, pki);
  }

  RollupConfig rollup_config() const {
    RollupConfig rc;
    rc.f = cfg.f;
    rc.operator_client = cfg.n + cfg.client_slots - 2;
    rc.verifier_client = cfg.n + cfg.client_slots - 1;
    return rc;
  }

  /// Drive the whole pool through the fleet while the harness runs, then
  /// settle and return the report (cluster left running).
  RollupReport run(const RollupConfig& rc) {
    cluster.start();
    std::this_thread::sleep_for(300ms);

    load::FleetConfig fc;
    fc.targets = cluster.targets();
    fc.cluster = cluster.cluster_id();
    fc.sessions = pool.cfg.sessions;
    fc.window = 32;
    load::LoadFleet fleet(fc);
    EXPECT_EQ(fleet.connect(), fc.sessions);

    RollupHarness harness(cluster.targets(), cluster.cluster_id(), pki, pool,
                          rc);
    harness.start();

    // Rate * duration comfortably exceeds the pool so every tx is offered;
    // surplus arrivals park against the exhausted source.
    load::PooledElementSource source(pool.elements, fc.sessions);
    load::ArrivalConfig arrival;
    arrival.kind = load::ArrivalKind::kPoisson;
    arrival.rate = 200.0;
    arrival.seed = 5;
    const load::PhaseStats st =
        fleet.run_phase(source, arrival, 2.0);
    fleet.close();

    EXPECT_EQ(st.sent, pool.elements.size()) << "pool not fully offered";
    EXPECT_EQ(st.accepted, pool.elements.size());
    EXPECT_EQ(st.decode_errors, 0u);

    return harness.finish();
  }

  /// Freeze the cluster and run the white-box P1–P9 checks: safety on every
  /// node, liveness at quiescence over the accepted population, and
  /// add-before-get over everything any client ever created.
  void check_properties(const RollupReport& report) {
    // Wait for epoch proofs to drain everywhere (the signal behind P8)
    // before freezing, exactly like the tcp_cluster conformance tests.
    std::vector<std::unique_ptr<net::RemoteNode>> stubs;
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      net::TcpRpcChannel::Config ch;
      ch.host = "127.0.0.1";
      ch.port = cluster.port(i);
      ch.client_id = cfg.n;
      ch.cluster = cluster.cluster_id();
      stubs.push_back(std::make_unique<net::RemoteNode>(
          std::make_unique<net::TcpRpcChannel>(ch), i, 3000ms));
    }
    api::QuorumClient client = api::make_quorum_client(
        stubs, pki, cfg.f, core::Fidelity::kFull, api::WritePolicy::kAll);

    std::vector<core::ElementId> accepted;
    for (const auto& e : pool.elements) accepted.push_back(e.id);
    std::unordered_set<core::ElementId> created(accepted.begin(),
                                                accepted.end());
    for (const auto& cs : report.commitments) {
      accepted.push_back(cs.element);
      created.insert(cs.element);
      if (cs.fraud_element != 0) {
        accepted.push_back(cs.fraud_element);
        created.insert(cs.fraud_element);
      }
    }

    const auto deadline = std::chrono::steady_clock::now() + 60s;
    const auto wait_for = [&](const std::function<bool()>& pred) {
      while (std::chrono::steady_clock::now() < deadline) {
        if (pred()) return true;
        std::this_thread::sleep_for(100ms);
      }
      return pred();
    };
    ASSERT_TRUE(wait_for([&] {
      const auto view = client.get();
      for (const auto id : accepted) {
        if (!view.the_set.contains(id)) return false;
      }
      return view.epoch > 0;
    })) << "quorum view never covered the rollup workload";
    ASSERT_TRUE(wait_for([&] {
      const auto view = client.get();
      for (auto& stub : stubs) {
        for (std::uint64_t e = 1; e <= view.epoch; ++e) {
          if (stub->proofs_for_epoch(e).size() < cfg.f + 1) return false;
        }
      }
      return true;
    })) << "epoch proofs never drained to every node";

    cluster.shutdown();

    std::vector<const core::SetchainServer*> servers;
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      servers.push_back(&cluster.host(i).server());
    }
    const auto safety = core::check_safety(servers);
    EXPECT_TRUE(safety.ok()) << safety.to_string();
    const auto liveness = core::check_liveness_quiescent(
        servers, accepted, cluster.host(0).params(), cluster.host(0).pki());
    EXPECT_TRUE(liveness.ok()) << liveness.to_string();
    const auto provenance = core::check_add_before_get(servers, created);
    EXPECT_TRUE(provenance.ok()) << provenance.to_string();
  }
};

TEST(RollupWorkload, HonestOperatorCommitsEveryEpochAndSettles) {
  LiveRollup live;
  const RollupConfig rc = live.rollup_config();
  const RollupReport report = live.run(rc);

  EXPECT_TRUE(report.ok(rc)) << "honest rollup verdict failed";
  EXPECT_EQ(report.txs_executed, live.pool.elements.size());
  EXPECT_TRUE(report.roots_agree);
  EXPECT_FALSE(report.unknown_ids);
  // Every epoch that carried L2 traffic got a commitment, every commitment
  // consolidated and verified, none was contested.
  EXPECT_GT(report.commitments_posted, 0u);
  EXPECT_EQ(report.commitments_consolidated, report.commitments_posted);
  EXPECT_EQ(report.commitments_ok, report.commitments_posted);
  EXPECT_EQ(report.mismatches, 0u);
  EXPECT_EQ(report.fraud_proofs_posted, 0u);
  std::unordered_set<std::uint64_t> committed_epochs;
  for (const auto& cs : report.commitments) {
    EXPECT_TRUE(committed_epochs.insert(cs.epoch).second)
        << "duplicate commitment for epoch " << cs.epoch;
  }

  live.check_properties(report);
}

TEST(RollupWorkload, DishonestOperatorIsCaughtInsideTheWindow) {
  LiveRollup live;
  RollupConfig rc = live.rollup_config();
  rc.dishonest = true;
  rc.corrupt_commit_index = 1;
  const RollupReport report = live.run(rc);

  EXPECT_TRUE(report.ok(rc)) << "dishonest rollup verdict failed";
  // Exactly one commitment lied; the verifier posted exactly one fraud
  // proof, it consolidated, and it landed inside the epoch-barrier window.
  EXPECT_EQ(report.mismatches, 1u);
  EXPECT_EQ(report.fraud_proofs_posted, 1u);
  EXPECT_EQ(report.fraud_proofs_consolidated, 1u);
  EXPECT_EQ(report.frauds_caught_in_window, 1u);
  EXPECT_GT(report.max_fraud_detect_epochs, 0u);
  EXPECT_LE(report.max_fraud_detect_epochs, rc.fraud_window);
  // The lie never corrupted the honest replicas: both executors re-executed
  // identically from consolidated data.
  EXPECT_TRUE(report.roots_agree);
  EXPECT_EQ(report.commitments_ok, report.commitments_consolidated - 1);

  live.check_properties(report);
}

}  // namespace
}  // namespace setchain::workload::rollup
