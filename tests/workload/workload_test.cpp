#include <gtest/gtest.h>

#include <cmath>

#include "codec/lz77.hpp"
#include "metrics/stats.hpp"
#include "workload/arbitrum_like.hpp"

namespace setchain::workload {
namespace {

TEST(ArbitrumLike, SizeDistributionMatchesPaperStatistics) {
  // Paper §4: mean 438 bytes, stddev 753.5 (heavy tail). Our clipped
  // lognormal must land near that mean with a clearly heavy tail.
  ArbitrumLikeGenerator gen(1);
  metrics::RunningStats stats;
  for (int i = 0; i < 200'000; ++i) stats.add(gen.sample_size());
  EXPECT_NEAR(stats.mean(), 438.0, 60.0);
  EXPECT_GT(stats.stddev(), 350.0);
  EXPECT_LT(stats.stddev(), 1000.0);
  EXPECT_GE(stats.min(), 96.0);
  EXPECT_LE(stats.max(), 8192.0);
}

TEST(ArbitrumLike, SizesAreDeterministicPerSeed) {
  ArbitrumLikeGenerator a(7), b(7), c(8);
  bool all_same_ab = true, any_diff_ac = false;
  for (int i = 0; i < 1000; ++i) {
    const auto sa = a.sample_size();
    if (sa != b.sample_size()) all_same_ab = false;
    if (sa != c.sample_size()) any_diff_ac = true;
  }
  EXPECT_TRUE(all_same_ab);
  EXPECT_TRUE(any_diff_ac);
}

TEST(ArbitrumLike, PayloadExactSizeAndDeterminism) {
  ArbitrumLikeGenerator gen(3);
  for (const std::uint32_t size : {96u, 150u, 438u, 1000u, 4096u}) {
    const auto p1 = gen.make_payload(12345, size);
    const auto p2 = gen.make_payload(12345, size);
    EXPECT_EQ(p1.size(), size);
    EXPECT_EQ(p1, p2);
  }
  EXPECT_NE(gen.make_payload(1, 438), gen.make_payload(2, 438));
}

TEST(ArbitrumLike, BatchCompressionRatioInPaperBand) {
  // Paper: Brotli achieves ~2.5-3.5x on batches of 100-500 Arbitrum txs.
  // Our szx codec on the synthetic trace must land in a comparable band for
  // the Compresschain model to transfer (checked for both collector sizes).
  ArbitrumLikeGenerator gen(5);
  for (const int batch_elems : {100, 500}) {
    codec::Bytes batch;
    for (int i = 0; i < batch_elems; ++i) {
      const auto payload = gen.make_payload(static_cast<std::uint64_t>(i) + 1,
                                            gen.sample_size());
      codec::append(batch, payload);
    }
    const auto comp = codec::lz77_compress(batch);
    const double ratio = codec::compression_ratio(batch, comp);
    EXPECT_GT(ratio, 2.2) << batch_elems;
    EXPECT_LT(ratio, 4.5) << batch_elems;
  }
}

TEST(ArbitrumLike, LognormalFitFormula) {
  ArbitrumLikeGenerator gen(1);
  // mean = exp(mu + sigma^2/2) must equal the configured mean.
  const double implied_mean = std::exp(gen.mu() + gen.sigma() * gen.sigma() / 2.0);
  EXPECT_NEAR(implied_mean, 438.0, 1e-6);
}

TEST(ArbitrumLike, SmallPayloadsStillWellFormed) {
  ArbitrumLikeGenerator gen(9);
  const auto p = gen.make_payload(1, 96);
  EXPECT_EQ(p.size(), 96u);
  // Truncated header is fine, but it must still be the deterministic prefix.
  const auto full = gen.make_payload(1, 500);
  EXPECT_TRUE(std::equal(p.begin(), p.begin() + 40, full.begin()));
}

}  // namespace
}  // namespace setchain::workload
