// Exhaustive fault injection against the on-disk formats: flip or truncate
// EVERY byte offset of a recorded WAL segment and a snapshot file, and
// assert recovery always either delivers the exact valid prefix or fails
// with a clean diagnostic — never a crash, never silent divergence. The
// suite is meant to run under ASan/UBSan (CI does), where any OOB read in
// the scan paths turns into a hard failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "storage/storage.hpp"

namespace setchain::storage {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/setchain_fault_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path + "'";
    (void)std::system(cmd.c_str());
  }
};

codec::Bytes read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return codec::Bytes(std::istreambuf_iterator<char>(f),
                      std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const codec::Bytes& data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(data.data()),
          static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(f.good());
}

struct Record {
  WalRecordKind kind;
  std::uint64_t height;
  codec::Bytes payload;
};

/// The reference log: three records of differing kinds and payload sizes,
/// all in one segment. Byte layout is deterministic, so each record's
/// [start, end) offsets are known exactly.
std::vector<Record> reference_records() {
  std::vector<Record> recs;
  recs.push_back({WalRecordKind::kBlock, 1, {0xDE, 0xAD, 0xBE, 0xEF, 0x01}});
  recs.push_back({WalRecordKind::kBatch, 1, {}});
  recs.push_back({WalRecordKind::kBlock, 2, {9, 8, 7, 6, 5, 4, 3, 2, 1}});
  return recs;
}

std::vector<std::size_t> record_ends(const std::vector<Record>& recs) {
  std::vector<std::size_t> ends;
  std::size_t off = 0;
  for (const auto& r : recs) {
    off += Wal::kHeaderBytes + r.payload.size();
    ends.push_back(off);
  }
  return ends;
}

/// Records whose bytes lie entirely below `boundary` must survive; anything
/// at or after it is cut.
std::size_t expected_prefix(const std::vector<std::size_t>& ends,
                            std::size_t boundary) {
  std::size_t n = 0;
  while (n < ends.size() && ends[n] <= boundary) ++n;
  return n;
}

void write_reference_log(const std::string& dir, const std::vector<Record>& recs) {
  Wal wal;
  std::string diag;
  ASSERT_TRUE(wal.open({dir, FsyncMode::kOff}, &diag));
  for (const auto& r : recs) {
    ASSERT_TRUE(wal.append(r.kind, r.height, r.payload));
  }
}

/// Open a damaged log and assert exactly `want_prefix` records of the
/// reference survive, byte-identical, and that damage is diagnosed.
void check_damaged_log(const std::string& dir, const std::vector<Record>& recs,
                       std::size_t want_prefix, bool expect_diag,
                       const std::string& label) {
  {
    Wal wal;
    std::string diag;
    ASSERT_TRUE(wal.open({dir, FsyncMode::kOff}, &diag)) << label;
    if (expect_diag) {
      EXPECT_FALSE(diag.empty()) << label;
      EXPECT_GT(wal.counters().truncated_bytes, 0u) << label;
    }
    std::vector<Record> got;
    std::string rdiag;
    EXPECT_TRUE(wal.replay(
        [&](WalRecordKind kind, std::uint64_t height, codec::ByteView payload) {
          got.push_back(
              {kind, height, codec::Bytes(payload.begin(), payload.end())});
        },
        &rdiag))
        << label << ": " << rdiag;
    ASSERT_EQ(got.size(), want_prefix) << label;
    for (std::size_t i = 0; i < want_prefix; ++i) {
      EXPECT_EQ(got[i].kind, recs[i].kind) << label;
      EXPECT_EQ(got[i].height, recs[i].height) << label;
      EXPECT_EQ(got[i].payload, recs[i].payload) << label;
    }
  }

  // The repair is idempotent: a second open of the same directory is clean.
  Wal again;
  std::string diag2;
  ASSERT_TRUE(again.open({dir, FsyncMode::kOff}, &diag2)) << label;
  EXPECT_TRUE(diag2.empty()) << label << ": " << diag2;
  EXPECT_EQ(again.counters().records_scanned, want_prefix) << label;
}

TEST(WalFault, ByteFlipAtEveryOffset) {
  TempDir ref;
  const auto recs = reference_records();
  write_reference_log(ref.path, recs);
  const std::string name = "/wal-0000000000000001.log";
  const codec::Bytes original = read_file(ref.path + name);
  const auto ends = record_ends(recs);
  ASSERT_EQ(original.size(), ends.back());  // layout assumption holds

  for (std::size_t off = 0; off < original.size(); ++off) {
    TempDir dir;
    codec::Bytes damaged = original;
    damaged[off] ^= 0xFF;
    write_file(dir.path + name, damaged);
    if (::testing::Test::HasFatalFailure()) return;
    // The record containing the flipped byte fails its CRC (or magic/kind/
    // length check); everything before it survives, everything after is cut.
    std::size_t idx = 0;
    while (idx < ends.size() && ends[idx] <= off) ++idx;
    check_damaged_log(dir.path, recs, idx, true, "flip@" + std::to_string(off));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(WalFault, TruncationAtEveryLength) {
  TempDir ref;
  const auto recs = reference_records();
  write_reference_log(ref.path, recs);
  const std::string name = "/wal-0000000000000001.log";
  const codec::Bytes original = read_file(ref.path + name);
  const auto ends = record_ends(recs);

  for (std::size_t len = 0; len < original.size(); ++len) {
    TempDir dir;
    write_file(dir.path + name,
               codec::Bytes(original.begin(), original.begin() + len));
    if (::testing::Test::HasFatalFailure()) return;
    const std::size_t want = expected_prefix(ends, len);
    // A cut exactly on a record boundary leaves no torn bytes to diagnose.
    const bool boundary = want < ends.size() && len == (want == 0 ? 0 : ends[want - 1]);
    check_damaged_log(dir.path, recs, want, !boundary,
                      "truncate@" + std::to_string(len));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SnapshotFault, ByteFlipAtEveryOffsetFallsBack) {
  TempDir ref;
  std::string diag;
  const codec::Bytes body_old = {1, 2, 3, 4};
  const codec::Bytes body_new = {0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80};
  ASSERT_TRUE(write_snapshot_file(ref.path, 5, body_old, &diag));
  ASSERT_TRUE(write_snapshot_file(ref.path, 9, body_new, &diag));
  const std::string old_name = "/snap-0000000000000005.snap";
  const std::string new_name = "/snap-0000000000000009.snap";
  const codec::Bytes old_bytes = read_file(ref.path + old_name);
  const codec::Bytes new_bytes = read_file(ref.path + new_name);
  ASSERT_EQ(new_bytes.size(), kSnapshotHeaderBytes + body_new.size());

  for (std::size_t off = 0; off < new_bytes.size(); ++off) {
    TempDir dir;
    codec::Bytes damaged = new_bytes;
    damaged[off] ^= 0xFF;
    write_file(dir.path + old_name, old_bytes);
    write_file(dir.path + new_name, damaged);
    if (::testing::Test::HasFatalFailure()) return;
    const std::string label = "flip@" + std::to_string(off);

    // The damaged file itself is rejected with a diagnostic...
    std::uint64_t h = 0;
    codec::Bytes body;
    std::string why;
    EXPECT_FALSE(load_snapshot_file(dir.path + new_name, &h, &body, &why)) << label;
    EXPECT_FALSE(why.empty()) << label;

    // ...and the loader falls back to the intact older snapshot.
    const auto loaded = load_latest_snapshot(dir.path);
    ASSERT_TRUE(loaded.has_value()) << label;
    EXPECT_EQ(loaded->height, 5u) << label;
    EXPECT_EQ(loaded->body, body_old) << label;
    EXPECT_EQ(loaded->fallbacks, 1u) << label;
  }
}

TEST(SnapshotFault, TruncationAtEveryLengthFallsBack) {
  TempDir ref;
  std::string diag;
  const codec::Bytes body_old = {7, 7, 7};
  const codec::Bytes body_new = {1, 1, 2, 3, 5, 8, 13, 21};
  ASSERT_TRUE(write_snapshot_file(ref.path, 5, body_old, &diag));
  ASSERT_TRUE(write_snapshot_file(ref.path, 9, body_new, &diag));
  const std::string old_name = "/snap-0000000000000005.snap";
  const std::string new_name = "/snap-0000000000000009.snap";
  const codec::Bytes old_bytes = read_file(ref.path + old_name);
  const codec::Bytes new_bytes = read_file(ref.path + new_name);

  for (std::size_t len = 0; len < new_bytes.size(); ++len) {
    TempDir dir;
    write_file(dir.path + old_name, old_bytes);
    write_file(dir.path + new_name,
               codec::Bytes(new_bytes.begin(), new_bytes.begin() + len));
    if (::testing::Test::HasFatalFailure()) return;
    const std::string label = "truncate@" + std::to_string(len);

    const auto loaded = load_latest_snapshot(dir.path);
    ASSERT_TRUE(loaded.has_value()) << label;
    EXPECT_EQ(loaded->height, 5u) << label;
    EXPECT_EQ(loaded->body, body_old) << label;
    EXPECT_EQ(loaded->fallbacks, 1u) << label;
  }
}

// Facade-level: a WAL damaged mid-file still opens, reports the damage in
// the recovery diagnostic, and replays the valid prefix above the floor.
TEST(StorageFault, FacadeSurvivesMidLogDamage) {
  TempDir dir;
  StorageConfig cfg;
  cfg.dir = dir.path;
  cfg.fsync = FsyncMode::kOff;
  const codec::Bytes payload(32, 0xEE);
  {
    std::string err;
    auto st = Storage::open(cfg, &err);
    ASSERT_NE(st, nullptr) << err;
    for (std::uint64_t h = 1; h <= 6; ++h) {
      ASSERT_TRUE(st->append_block(h, payload));
    }
  }
  // Flip a byte inside record 4's payload (3 full records precede it).
  const std::string wal_file = dir.path + "/wal-0000000000000001.log";
  codec::Bytes bytes = read_file(wal_file);
  const std::size_t rec = Wal::kHeaderBytes + payload.size();
  bytes[3 * rec + Wal::kHeaderBytes + 5] ^= 0xFF;
  write_file(wal_file, bytes);
  if (::testing::Test::HasFatalFailure()) return;

  std::string err;
  auto st = Storage::open(cfg, &err);
  ASSERT_NE(st, nullptr) << err;
  EXPECT_FALSE(st->recovery().diagnostic.empty());
  EXPECT_GT(st->recovery().wal_truncated_bytes, 0u);
  std::uint64_t top = 0, count = 0;
  EXPECT_TRUE(st->replay([&](WalRecordKind kind, std::uint64_t height,
                             codec::ByteView p) {
    (void)kind;
    (void)p;
    top = height;
    ++count;
  }));
  EXPECT_EQ(count, 3u);  // the prefix before the damaged record
  EXPECT_EQ(top, 3u);
  // The node can keep committing after the repair.
  EXPECT_TRUE(st->append_block(4, payload));
}

}  // namespace
}  // namespace setchain::storage
