// Unit tests for the durable storage subsystem: CRC32C vectors, WAL
// append/replay roundtrips, segment rotation + compaction pruning, snapshot
// atomicity + fallback, and the Storage facade's recovery bookkeeping.
#include "storage/storage.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace setchain::storage {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/setchain_storage_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    const std::string cmd = "rm -rf '" + path + "'";
    (void)std::system(cmd.c_str());
  }
};

codec::Bytes bytes_of(std::initializer_list<int> v) {
  codec::Bytes out;
  for (int b : v) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

struct Record {
  WalRecordKind kind;
  std::uint64_t height;
  codec::Bytes payload;
};

std::vector<Record> collect(const Wal& wal, bool* ok = nullptr,
                            std::string* diag = nullptr) {
  std::vector<Record> out;
  std::string local;
  const bool r = wal.replay(
      [&](WalRecordKind kind, std::uint64_t height, codec::ByteView payload) {
        out.push_back({kind, height, codec::Bytes(payload.begin(), payload.end())});
      },
      diag != nullptr ? diag : &local);
  if (ok != nullptr) *ok = r;
  return out;
}

TEST(Crc32c, KnownVectors) {
  const char* nine = "123456789";
  EXPECT_EQ(crc32c(codec::ByteView(reinterpret_cast<const std::uint8_t*>(nine), 9)),
            0xE3069283u);
  const codec::Bytes zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  EXPECT_EQ(crc32c(codec::ByteView()), 0u);
}

TEST(Crc32c, SeedChainsIncrementally) {
  const codec::Bytes data = bytes_of({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  const auto whole = crc32c(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const auto first = crc32c(codec::ByteView(data.data(), split));
    const auto chained =
        crc32c(codec::ByteView(data.data() + split, data.size() - split), first);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(FsyncModeNames, RoundtripAndReject) {
  for (const auto m : {FsyncMode::kAlways, FsyncMode::kInterval, FsyncMode::kOff}) {
    const auto parsed = parse_fsync_mode(fsync_mode_name(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_EQ(parse_fsync_mode("ALWAYS"), FsyncMode::kAlways);  // case-insensitive
  EXPECT_FALSE(parse_fsync_mode("sometimes").has_value());
  EXPECT_FALSE(parse_fsync_mode("").has_value());
}

TEST(Wal, AppendReplayRoundtrip) {
  TempDir dir;
  const std::vector<Record> want = {
      {WalRecordKind::kBlock, 1, bytes_of({0xAA, 0xBB})},
      {WalRecordKind::kBatch, 1, bytes_of({1, 2, 3, 4, 5})},
      {WalRecordKind::kBlock, 2, {}},  // empty payload is legal
      {WalRecordKind::kBlock, 3, codec::Bytes(1000, 0x5C)},
  };
  {
    Wal wal;
    std::string diag;
    ASSERT_TRUE(wal.open({dir.path, FsyncMode::kOff}, &diag));
    EXPECT_TRUE(diag.empty()) << diag;
    for (const auto& r : want) {
      ASSERT_TRUE(wal.append(r.kind, r.height, r.payload));
    }
    EXPECT_EQ(wal.counters().records_appended, want.size());
    EXPECT_EQ(wal.last_height(), 3u);
  }
  Wal wal;
  std::string diag;
  ASSERT_TRUE(wal.open({dir.path, FsyncMode::kOff}, &diag));
  EXPECT_TRUE(diag.empty()) << diag;
  EXPECT_EQ(wal.counters().records_scanned, want.size());
  EXPECT_EQ(wal.last_height(), 3u);

  bool ok = false;
  const auto got = collect(wal, &ok);
  EXPECT_TRUE(ok);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].kind, want[i].kind) << i;
    EXPECT_EQ(got[i].height, want[i].height) << i;
    EXPECT_EQ(got[i].payload, want[i].payload) << i;
  }
}

TEST(Wal, RotatesSegmentsAndReplaysAcrossThem) {
  TempDir dir;
  WalOptions opts{dir.path, FsyncMode::kOff};
  opts.segment_bytes = 256;  // force frequent rotation
  std::string diag;
  {
    Wal wal;
    ASSERT_TRUE(wal.open(opts, &diag));
    const codec::Bytes payload(100, 0x7E);
    for (std::uint64_t h = 1; h <= 20; ++h) {
      ASSERT_TRUE(wal.append(WalRecordKind::kBlock, h, payload));
    }
    EXPECT_GT(wal.segment_count(), 3u);
  }

  Wal reopened;
  ASSERT_TRUE(reopened.open(opts, &diag));
  bool ok = false;
  const auto got = collect(reopened, &ok);
  EXPECT_TRUE(ok);
  ASSERT_EQ(got.size(), 20u);
  for (std::uint64_t h = 1; h <= 20; ++h) {
    EXPECT_EQ(got[h - 1].height, h);
  }
}

TEST(Wal, PruneCoveredDropsOnlyFullyCoveredInactiveSegments) {
  TempDir dir;
  WalOptions opts{dir.path, FsyncMode::kOff};
  opts.segment_bytes = 256;
  Wal wal;
  std::string diag;
  ASSERT_TRUE(wal.open(opts, &diag));
  const codec::Bytes payload(100, 0x11);
  for (std::uint64_t h = 1; h <= 20; ++h) {
    ASSERT_TRUE(wal.append(WalRecordKind::kBlock, h, payload));
  }
  const std::size_t before = wal.segment_count();
  ASSERT_GT(before, 3u);

  wal.prune_covered(10);
  const std::size_t after = wal.segment_count();
  EXPECT_LT(after, before);
  EXPECT_GE(after, 1u);  // the active segment survives any prune
  EXPECT_GT(wal.counters().segments_deleted, 0u);

  // Everything above the prune height is still there, contiguous to 20.
  bool ok = false;
  const auto got = collect(wal, &ok);
  EXPECT_TRUE(ok);
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.back().height, 20u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_EQ(got[i].height, got[i - 1].height + 1);
  }
  EXPECT_LE(got.front().height, 11u);  // no record above the floor was lost

  // Pruning at the tip never deletes the active segment.
  wal.prune_covered(1000);
  EXPECT_GE(wal.segment_count(), 1u);
  ASSERT_TRUE(wal.append(WalRecordKind::kBlock, 21, payload));
}

TEST(Wal, FsyncPolicyCounters) {
  const codec::Bytes payload(10, 1);
  {
    TempDir dir;
    Wal wal;
    std::string diag;
    ASSERT_TRUE(wal.open({dir.path, FsyncMode::kAlways}, &diag));
    for (std::uint64_t h = 1; h <= 5; ++h) {
      ASSERT_TRUE(wal.append(WalRecordKind::kBlock, h, payload));
    }
    EXPECT_GE(wal.counters().fsyncs, 5u);  // one per record
  }
  {
    TempDir dir;
    Wal wal;
    std::string diag;
    ASSERT_TRUE(wal.open({dir.path, FsyncMode::kOff}, &diag));
    for (std::uint64_t h = 1; h <= 5; ++h) {
      ASSERT_TRUE(wal.append(WalRecordKind::kBlock, h, payload));
    }
    EXPECT_EQ(wal.counters().fsyncs, 0u);
    wal.sync();  // explicit barrier still works in kOff
    EXPECT_EQ(wal.counters().fsyncs, 1u);
  }
}

TEST(Wal, TornTailIsTruncatedOnOpen) {
  TempDir dir;
  std::string wal_file;
  const codec::Bytes payload(40, 0x3D);
  {
    Wal wal;
    std::string diag;
    ASSERT_TRUE(wal.open({dir.path, FsyncMode::kOff}, &diag));
    for (std::uint64_t h = 1; h <= 3; ++h) {
      ASSERT_TRUE(wal.append(WalRecordKind::kBlock, h, payload));
    }
  }
  // Simulate a crash mid-append: half a header of garbage at the tail.
  wal_file = dir.path + "/wal-0000000000000001.log";
  {
    std::ofstream f(wal_file, std::ios::binary | std::ios::app);
    ASSERT_TRUE(f.good());
    f.write("\x53\x57\x41\x4C\x01\xFF\xFF", 7);
  }

  Wal wal;
  std::string diag;
  ASSERT_TRUE(wal.open({dir.path, FsyncMode::kOff}, &diag));
  EXPECT_FALSE(diag.empty());  // the cut is reported
  EXPECT_GT(wal.counters().truncated_bytes, 0u);
  bool ok = false;
  const auto got = collect(wal, &ok);
  EXPECT_TRUE(ok);
  ASSERT_EQ(got.size(), 3u);  // the valid prefix survives intact
  EXPECT_EQ(got.back().height, 3u);

  // Appends continue cleanly after the repair, and a further reopen is
  // clean (the repair was written back, not just tolerated in memory).
  ASSERT_TRUE(wal.append(WalRecordKind::kBlock, 4, payload));
  Wal again;
  ASSERT_TRUE(again.open({dir.path, FsyncMode::kOff}, &diag));
  EXPECT_TRUE(diag.empty()) << diag;
  EXPECT_EQ(again.counters().records_scanned, 4u);
}

TEST(Snapshot, WriteLoadListPrune) {
  TempDir dir;
  std::string diag;
  const codec::Bytes body1 = bytes_of({1, 2, 3});
  const codec::Bytes body2(4096, 0xA5);
  ASSERT_TRUE(write_snapshot_file(dir.path, 10, body1, &diag));
  ASSERT_TRUE(write_snapshot_file(dir.path, 25, body2, &diag));

  const auto listed = list_snapshots(dir.path);
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].first, 25u);  // newest first
  EXPECT_EQ(listed[1].first, 10u);

  const auto loaded = load_latest_snapshot(dir.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->height, 25u);
  EXPECT_EQ(loaded->body, body2);
  EXPECT_EQ(loaded->fallbacks, 0u);

  ASSERT_TRUE(write_snapshot_file(dir.path, 40, body1, &diag));
  EXPECT_EQ(prune_snapshots(dir.path, 2), 1u);
  const auto kept = list_snapshots(dir.path);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].first, 40u);
  EXPECT_EQ(kept[1].first, 25u);
}

TEST(Snapshot, FallsBackPastDamagedNewest) {
  TempDir dir;
  std::string diag;
  const codec::Bytes body_old = bytes_of({10, 20, 30});
  ASSERT_TRUE(write_snapshot_file(dir.path, 5, body_old, &diag));
  ASSERT_TRUE(write_snapshot_file(dir.path, 9, bytes_of({40, 50}), &diag));

  // Flip one body byte of the newest: its CRC no longer matches.
  const std::string newest = dir.path + "/snap-0000000000000009.snap";
  {
    std::fstream f(newest, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(kSnapshotHeaderBytes));
    f.put('\x7F');
  }
  std::uint64_t h = 0;
  codec::Bytes body;
  EXPECT_FALSE(load_snapshot_file(newest, &h, &body, &diag));
  EXPECT_FALSE(diag.empty());

  const auto loaded = load_latest_snapshot(dir.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->height, 5u);
  EXPECT_EQ(loaded->body, body_old);
  EXPECT_EQ(loaded->fallbacks, 1u);
  EXPECT_FALSE(loaded->diagnostic.empty());
}

TEST(StorageFacade, SnapshotFloorSplitsReplay) {
  TempDir dir;
  StorageConfig cfg;
  cfg.dir = dir.path + "/data";  // exercises directory creation too
  cfg.fsync = FsyncMode::kOff;
  const codec::Bytes blockp(64, 0xB0);
  const codec::Bytes batchp(64, 0xBA);
  {
    std::string err;
    auto st = Storage::open(cfg, &err);
    ASSERT_NE(st, nullptr) << err;
    for (std::uint64_t h = 1; h <= 10; ++h) {
      ASSERT_TRUE(st->append_block(h, blockp));
      if (h % 2 == 0) ASSERT_TRUE(st->append_batch(h, batchp));
    }
    ASSERT_TRUE(st->write_snapshot(6, bytes_of({9, 9, 9})));
    EXPECT_EQ(st->snapshots_written(), 1u);
    EXPECT_EQ(st->last_snapshot_height(), 6u);
  }

  std::string err;
  auto st = Storage::open(cfg, &err);
  ASSERT_NE(st, nullptr) << err;
  const auto body = st->load_snapshot();
  ASSERT_TRUE(body.has_value());
  EXPECT_EQ(*body, bytes_of({9, 9, 9}));
  EXPECT_TRUE(st->recovery().snapshot_loaded);
  EXPECT_EQ(st->recovery().snapshot_height, 6u);

  // Blocks replay strictly above the floor; a batch stamped AT the floor
  // replays too (it may postdate the snapshot; re-putting is idempotent).
  std::vector<std::pair<WalRecordKind, std::uint64_t>> got;
  EXPECT_TRUE(st->replay([&](WalRecordKind kind, std::uint64_t height,
                             codec::ByteView payload) {
    (void)payload;
    got.push_back({kind, height});
  }));
  for (const auto& [kind, height] : got) {
    if (kind == WalRecordKind::kBlock) {
      EXPECT_GT(height, 6u);
    } else {
      EXPECT_GE(height, 6u);
    }
  }
  std::uint64_t blocks = 0, batches = 0;
  for (const auto& [kind, height] : got) {
    (void)height;
    kind == WalRecordKind::kBlock ? ++blocks : ++batches;
  }
  EXPECT_EQ(blocks, 4u);   // heights 7..10
  EXPECT_EQ(batches, 3u);  // heights 6, 8, 10
  EXPECT_EQ(st->recovery().wal_blocks_replayed, 4u);
  EXPECT_EQ(st->recovery().wal_batches_replayed, 3u);
  EXPECT_GT(st->recovery().wal_records_skipped, 0u);
}

TEST(StorageFacade, RefusesEmptyDir) {
  StorageConfig cfg;
  std::string err;
  EXPECT_EQ(Storage::open(cfg, &err), nullptr);
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace setchain::storage
