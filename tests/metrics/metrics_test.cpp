#include <gtest/gtest.h>

#include <cmath>

#include "metrics/series.hpp"
#include "metrics/stage_recorder.hpp"
#include "metrics/stats.hpp"

namespace setchain::metrics {
namespace {

using sim::from_seconds;

// --------------------------------------------------------------------- stats

TEST(Stats, MeanStddev) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4.0);
  // Sample (n-1) convention: sum of squared deviations 8, variance 8/2 = 4.
  EXPECT_DOUBLE_EQ(stddev({2, 4, 6}), 2.0);
}

TEST(Stats, StddevIsSampleStddevPinnedValues) {
  // {1,2,3,4}: mean 2.5, sum of squared deviations 5, sample variance 5/3.
  EXPECT_NEAR(stddev({1, 2, 3, 4}), std::sqrt(5.0 / 3.0), 1e-12);
  // Degenerate inputs: fewer than two samples have no dispersion estimate.
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({42.0}), 0.0);
  // Constant data: exactly zero (no catastrophic cancellation).
  EXPECT_DOUBLE_EQ(stddev({7, 7, 7, 7}), 0.0);
}

TEST(Stats, RunningStatsUsesSampleVariance) {
  RunningStats rs;
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(2);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);  // one sample: still no estimate
  rs.add(4);
  rs.add(6);
  EXPECT_NEAR(rs.variance(), 4.0, 1e-12);
  EXPECT_NEAR(rs.stddev(), 2.0, 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev({2, 4, 6}), 1e-12);  // conventions agree
}

TEST(Stats, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  RunningStats rs;
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) {
    rs.add(i * 0.5);
    xs.push_back(i * 0.5);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), 0.5);
  EXPECT_DOUBLE_EQ(rs.max(), 50.0);
  EXPECT_EQ(rs.count(), 100u);
}

// ---------------------------------------------------------------- StepSeries

TEST(StepSeries, CountUntil) {
  StepSeries s;
  s.add(from_seconds(1), 10);
  s.add(from_seconds(2), 20);
  s.add(from_seconds(3), 30);
  EXPECT_EQ(s.total(), 60u);
  EXPECT_EQ(s.count_until(from_seconds(0.5)), 0u);
  EXPECT_EQ(s.count_until(from_seconds(1)), 10u);
  EXPECT_EQ(s.count_until(from_seconds(2.5)), 30u);
  EXPECT_EQ(s.count_until(from_seconds(10)), 60u);
}

TEST(StepSeries, OutOfOrderEventsAreSorted) {
  StepSeries s;
  s.add(from_seconds(3), 1);
  s.add(from_seconds(1), 1);
  s.add(from_seconds(2), 1);
  EXPECT_EQ(s.count_until(from_seconds(1.5)), 1u);
  EXPECT_EQ(s.events().front().t, from_seconds(1));
}

TEST(StepSeries, TimeOfKth) {
  StepSeries s;
  s.add(from_seconds(1), 5);
  s.add(from_seconds(4), 5);
  EXPECT_EQ(s.time_of_kth(1), from_seconds(1));
  EXPECT_EQ(s.time_of_kth(5), from_seconds(1));
  EXPECT_EQ(s.time_of_kth(6), from_seconds(4));
  EXPECT_EQ(s.time_of_kth(11), std::numeric_limits<sim::Time>::max());
}

TEST(StepSeries, RollingRateWindow) {
  StepSeries s;
  // 100 el/s for 10 seconds: one event of 100 per second.
  for (int t = 0; t < 10; ++t) s.add(from_seconds(t + 0.5), 100);
  const auto pts =
      s.rolling_rate(from_seconds(2), from_seconds(1), from_seconds(12));
  // At t=2..10 the 2-second window holds 200 elements -> 100 el/s.
  for (const auto& p : pts) {
    if (p.t_seconds >= 2.0 && p.t_seconds <= 10.0) {
      EXPECT_NEAR(p.rate, 100.0, 1e-6) << p.t_seconds;
    }
    if (p.t_seconds >= 12.0) {
      EXPECT_NEAR(p.rate, 0.0, 1e-6);
    }
  }
}

TEST(EmpiricalCdf, MonotoneAndComplete) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0, 2.0, 5.0});
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].x, cdf[i - 1].x);
    EXPECT_GE(cdf[i].f, cdf[i - 1].f);
  }
  EXPECT_DOUBLE_EQ(cdf.back().f, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().x, 5.0);
}

// ------------------------------------------------------------- StageRecorder

StageRecorder::Config cfg(std::uint32_t n, std::uint32_t f, bool per_element) {
  return StageRecorder::Config{n, f, per_element};
}

TEST(StageRecorder, CommitRequiresFPlus1DistinctServers) {
  StageRecorder r(cfg(4, 1, false));
  r.on_add(1, from_seconds(0));
  r.on_add(2, from_seconds(0));
  r.on_epoch_consolidated(1, 2, {}, from_seconds(1));
  EXPECT_EQ(r.committed().total(), 0u);
  r.on_proof_on_ledger(1, 0, from_seconds(2));
  EXPECT_EQ(r.committed().total(), 0u);
  r.on_proof_on_ledger(1, 0, from_seconds(2.5));  // duplicate server: no-op
  EXPECT_EQ(r.committed().total(), 0u);
  r.on_proof_on_ledger(1, 3, from_seconds(3));
  EXPECT_EQ(r.committed().total(), 2u);  // f+1 = 2 distinct servers
  EXPECT_EQ(r.epochs_committed(), 1u);
  // Extra proofs change nothing.
  r.on_proof_on_ledger(1, 2, from_seconds(4));
  EXPECT_EQ(r.committed().total(), 2u);
}

TEST(StageRecorder, EpochConsolidationFirstCallerWins) {
  StageRecorder r(cfg(4, 1, false));
  r.on_epoch_consolidated(1, 10, {}, from_seconds(1));
  r.on_epoch_consolidated(1, 999, {}, from_seconds(2));  // replica report
  r.on_proof_on_ledger(1, 0, from_seconds(3));
  r.on_proof_on_ledger(1, 1, from_seconds(3));
  EXPECT_EQ(r.committed().total(), 10u);
}

TEST(StageRecorder, EfficiencyAt) {
  StageRecorder r(cfg(4, 1, false));
  for (int i = 0; i < 10; ++i) r.on_add(static_cast<std::uint64_t>(i), from_seconds(i));
  r.on_epoch_consolidated(1, 5, {}, from_seconds(20));
  r.on_proof_on_ledger(1, 0, from_seconds(40));
  r.on_proof_on_ledger(1, 1, from_seconds(45));
  EXPECT_DOUBLE_EQ(r.efficiency_at(from_seconds(30)), 0.0);
  EXPECT_DOUBLE_EQ(r.efficiency_at(from_seconds(50)), 0.5);
}

TEST(StageRecorder, PerElementStageLatencies) {
  StageRecorder r(cfg(3, 1, true));
  r.on_add(7, from_seconds(1));
  r.on_mempool_arrival(7, 0, from_seconds(1.5));
  r.on_mempool_arrival(7, 1, from_seconds(2.0));  // f+1 = 2nd arrival
  r.on_mempool_arrival(7, 2, from_seconds(2.5));  // all = 3rd
  r.on_ledger(7, from_seconds(3.0));
  r.on_epoch_consolidated(1, 1, {7}, from_seconds(3.0));
  r.on_proof_on_ledger(1, 0, from_seconds(4.0));
  r.on_proof_on_ledger(1, 1, from_seconds(5.0));

  const auto first = r.stage_latencies(Stage::kMempoolFirst);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_NEAR(first[0], 0.5, 1e-9);
  EXPECT_NEAR(r.stage_latencies(Stage::kMempoolQuorum)[0], 1.0, 1e-9);
  EXPECT_NEAR(r.stage_latencies(Stage::kMempoolAll)[0], 1.5, 1e-9);
  EXPECT_NEAR(r.stage_latencies(Stage::kLedger)[0], 2.0, 1e-9);
  EXPECT_NEAR(r.stage_latencies(Stage::kCommitted)[0], 4.0, 1e-9);
}

TEST(StageRecorder, DuplicateMempoolArrivalFromSameServerStillCountsOnce) {
  // The mempool layer dedups; the recorder trusts one call per (elem, node).
  StageRecorder r(cfg(2, 0, true));
  r.on_add(1, 0);
  r.on_mempool_arrival(1, 0, from_seconds(1));
  EXPECT_EQ(r.stage_latencies(Stage::kMempoolQuorum).size(), 1u);  // f+1 == 1
}

TEST(StageRecorder, CommitTimeOfFraction) {
  StageRecorder r(cfg(4, 1, false));
  for (int i = 0; i < 100; ++i) r.on_add(static_cast<std::uint64_t>(i), 0);
  r.on_epoch_consolidated(1, 50, {}, from_seconds(5));
  r.on_proof_on_ledger(1, 0, from_seconds(10));
  r.on_proof_on_ledger(1, 1, from_seconds(10));
  r.on_epoch_consolidated(2, 50, {}, from_seconds(6));
  r.on_proof_on_ledger(2, 0, from_seconds(20));
  r.on_proof_on_ledger(2, 1, from_seconds(20));

  EXPECT_NEAR(*r.commit_time_of_first(), 10.0, 1e-9);
  EXPECT_NEAR(*r.commit_time_of_fraction(0.10), 10.0, 1e-9);
  EXPECT_NEAR(*r.commit_time_of_fraction(0.50), 10.0, 1e-9);
  EXPECT_NEAR(*r.commit_time_of_fraction(0.51), 20.0, 1e-9);
  EXPECT_FALSE(r.commit_time_of_fraction(1.01).has_value());
}

TEST(StageRecorder, ProofBeforeConsolidationIsNotLost) {
  StageRecorder r(cfg(4, 1, false));
  r.on_add(1, 0);
  r.on_proof_on_ledger(3, 0, from_seconds(1));
  r.on_proof_on_ledger(3, 1, from_seconds(2));
  // Committed with count 0 (consolidation unseen), but no crash and the
  // epoch is marked committed.
  EXPECT_EQ(r.epochs_committed(), 1u);
}

}  // namespace
}  // namespace setchain::metrics
