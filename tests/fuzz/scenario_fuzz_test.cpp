// Seeded scenario fuzzing over the fault-injection layer: every 64-bit seed
// expands (core::testing::make_fuzz_case) into algorithm × cluster size ×
// rate × fault plan, runs the full Experiment, and must uphold
//
//   * the Setchain property set P1-P8 (safety always; the complete liveness
//     set whenever every fault heals inside the add window),
//   * quorum-read agreement: a QuorumClient over all n nodes reconstructs
//     exactly the correct servers' consolidated view,
//   * exact replay determinism: the same seed yields byte-identical epoch
//     hash chains, consolidated sets, and event counts on a second run.
//
// A failing seed is its own reproducer:
//   SETCHAIN_FUZZ_ONE=<seed> ./scenario_fuzz_test --gtest_filter='*OneSeed*'
//
// The pinned corpus below keeps known-interesting seeds green forever, with
// at least one seed per fault kind whose fault path demonstrably fired
// (asserted through the fault-layer counters, not just the plan).
#include <gtest/gtest.h>

#include <cstdlib>
#include <unordered_set>

#include "core/algo_fixture.hpp"
#include "core/invariants.hpp"
#include "runner/experiment.hpp"

namespace setchain {
namespace {

using core::testing::FuzzCase;
using core::testing::make_fuzz_case;

struct FuzzOutcome {
  std::vector<core::EpochHash> epoch_hashes;  ///< reference server's chain
  std::unordered_set<core::ElementId> consolidated;
  std::uint64_t added = 0;
  std::uint64_t committed = 0;
  std::uint64_t events = 0;
  sim::FaultStats net_stats;
  std::uint64_t crashes = 0;
};

/// Nodes that never come back: their final state is a stale (or wiped)
/// snapshot, so the liveness/agreement assertions skip them. Safety still
/// covers them — a frozen prefix must stay consistent.
std::vector<bool> never_restarts(const FuzzCase& fc) {
  std::vector<bool> out(fc.scenario.n, false);
  for (const auto& flt : fc.scenario.faults.faults) {
    if (flt.kind == sim::FaultKind::kCrash && !flt.heals()) out[flt.from] = true;
  }
  return out;
}

/// Run one expanded case, assert the property set, and digest the outcome.
void run_once(const FuzzCase& fc, FuzzOutcome& out) {
  runner::Experiment e(fc.scenario);
  e.run();
  const std::uint32_t n = fc.scenario.n;
  const auto gone = never_restarts(fc);

  std::vector<const core::SetchainServer*> all;
  std::vector<const core::SetchainServer*> recovered;  // every server that ends up
  for (std::uint32_t i = 0; i < n; ++i) {              // with full guarantees
    all.push_back(&e.server(i));
    if (!gone[i]) recovered.push_back(&e.server(i));
  }

  // Safety (P1 Consistent-Sets, P5 Unique-Epoch, P6 Consistent-Gets) holds
  // on every server, dead ones included: a crash may freeze a prefix but can
  // never fork it.
  const auto safety = core::check_safety(all);
  EXPECT_TRUE(safety.ok()) << fc.summary << "\n" << safety.to_string();

  // P7 Add-before-Get: nothing materializes out of thin air, ever.
  const auto p7 = core::check_add_before_get(all, e.created_ids());
  EXPECT_TRUE(p7.ok()) << fc.summary << "\n" << p7.to_string();

  if (fc.check_liveness) {
    // Every fault healed in-band: the run must have fully recovered, healed
    // crash victims included (ledger replay / catch-up rebuilt them).
    const auto live = core::check_liveness_quiescent(recovered, e.accepted_valid_ids(),
                                                     e.params(), e.pki());
    EXPECT_TRUE(live.ok()) << fc.summary << "\n" << live.to_string();
    EXPECT_EQ(e.result().elements_committed, e.result().elements_added) << fc.summary;
  }

  // Quorum-read agreement: a client over all n nodes adopts exactly the
  // consolidated view of the correct servers (their union — at quiescence a
  // correct server with the longest history).
  const core::SetchainServer* ref = nullptr;
  for (const auto* s : recovered) {
    if (ref == nullptr || s->epoch() > ref->epoch()) ref = s;
  }
  ASSERT_NE(ref, nullptr) << fc.summary;
  const auto ref_snap = ref->get();
  auto client = e.make_client();
  const auto view = client.get();
  ASSERT_LE(view.epoch, ref_snap.history->size()) << fc.summary;
  for (std::size_t i = 0; i < view.history.size(); ++i) {
    EXPECT_EQ(view.history[i].hash, (*ref_snap.history)[i].hash) << fc.summary;
    EXPECT_EQ(view.history[i].ids, (*ref_snap.history)[i].ids) << fc.summary;
  }
  if (fc.check_liveness) {
    EXPECT_EQ(view.epoch, ref_snap.history->size()) << fc.summary;
    for (const auto id : e.accepted_valid_ids()) {
      EXPECT_TRUE(view.the_set.contains(id)) << fc.summary << " element " << id;
    }
  }

  // Digest for the replay-determinism comparison.
  out.epoch_hashes.clear();
  out.consolidated.clear();
  for (const auto& rec : *ref_snap.history) {
    out.epoch_hashes.push_back(rec.hash);
    out.consolidated.insert(rec.ids.begin(), rec.ids.end());
  }
  const auto r = e.result();
  out.added = r.elements_added;
  out.committed = r.elements_committed;
  out.events = r.events;
  if (const auto* inj = e.fault_injector()) out.net_stats = inj->stats();
  out.crashes = 0;
  for (std::uint32_t i = 0; i < n; ++i) out.crashes += e.server(i).crash_count();
}

/// Run the case twice and assert byte-exact replay.
void run_twice_and_compare(const FuzzCase& fc, FuzzOutcome& first) {
  run_once(fc, first);
  FuzzOutcome second;
  run_once(fc, second);
  EXPECT_EQ(first.epoch_hashes, second.epoch_hashes) << fc.summary;
  EXPECT_EQ(first.consolidated, second.consolidated) << fc.summary;
  EXPECT_EQ(first.added, second.added) << fc.summary;
  EXPECT_EQ(first.committed, second.committed) << fc.summary;
  EXPECT_EQ(first.events, second.events) << fc.summary;
  EXPECT_EQ(first.crashes, second.crashes) << fc.summary;
  EXPECT_EQ(first.net_stats.total_dropped(), second.net_stats.total_dropped())
      << fc.summary;
}

// --------------------------------------------------------------- pinned corpus

struct CorpusEntry {
  std::uint64_t seed;
  // Which fault paths this seed must demonstrably exercise (fault-layer
  // counters, not plan contents).
  bool drops = false;
  bool partitions = false;
  bool delays = false;
  bool crashes = false;
};

// Seeds picked by sweeping make_fuzz_case: together they cover every fault
// kind (counter-asserted), healed and unhealed plans, wiped and retained
// crashes, and all three algorithms.
//   seed 6   Hashchain n=4: blanket message loss
//   seed 8   Hashchain n=7: crash with NO restart (safety-only seed)
//   seed 12  Vanilla n=4: delay spike
//   seed 16  Vanilla n=4: delay spike + crash with wiped state (ledger replay)
//   seed 21  Hashchain n=4: crash/restart, state retained
//   seed 28  Vanilla n=5: two overlapping partitions
//   seed 31  Compresschain n=4: drop + delay + crash at once
//   seed 37  Vanilla n=7: partition + heavy link loss
constexpr CorpusEntry kCorpus[] = {
    {6, /*drops=*/true, /*partitions=*/false, /*delays=*/false, /*crashes=*/false},
    {8, /*drops=*/false, /*partitions=*/false, /*delays=*/false, /*crashes=*/true},
    {12, /*drops=*/false, /*partitions=*/false, /*delays=*/true, /*crashes=*/false},
    {16, /*drops=*/false, /*partitions=*/false, /*delays=*/true, /*crashes=*/true},
    {21, /*drops=*/false, /*partitions=*/false, /*delays=*/false, /*crashes=*/true},
    {28, /*drops=*/false, /*partitions=*/true, /*delays=*/false, /*crashes=*/false},
    {31, /*drops=*/true, /*partitions=*/false, /*delays=*/true, /*crashes=*/true},
    {37, /*drops=*/true, /*partitions=*/true, /*delays=*/false, /*crashes=*/false},
};

TEST(ScenarioFuzzCorpus, PinnedSeedsUpholdPropertiesAndExerciseEveryFaultKind) {
  bool covered_drop = false, covered_partition = false, covered_delay = false,
       covered_crash = false;
  bool covered_wipe = false;
  for (const auto& entry : kCorpus) {
    const FuzzCase fc = make_fuzz_case(entry.seed);
    SCOPED_TRACE(fc.summary);
    FuzzOutcome out;
    run_twice_and_compare(fc, out);
    covered_wipe = covered_wipe || fc.has_wipe;
    if (entry.drops) {
      // An expected counter implies the plan contains the kind at all...
      EXPECT_TRUE(fc.has_kind[static_cast<int>(sim::FaultKind::kDrop)]);
      // ... and the run must prove the fault path actually fired.
      EXPECT_GT(out.net_stats.dropped_random, 0u) << fc.summary;
      covered_drop = true;
    }
    if (entry.partitions) {
      EXPECT_TRUE(fc.has_kind[static_cast<int>(sim::FaultKind::kPartition)]);
      EXPECT_GT(out.net_stats.dropped_partition, 0u) << fc.summary;
      covered_partition = true;
    }
    if (entry.delays) {
      EXPECT_TRUE(fc.has_kind[static_cast<int>(sim::FaultKind::kDelaySpike)]);
      EXPECT_GT(out.net_stats.delayed, 0u) << fc.summary;
      covered_delay = true;
    }
    if (entry.crashes) {
      EXPECT_TRUE(fc.has_kind[static_cast<int>(sim::FaultKind::kCrash)]);
      EXPECT_GT(out.crashes, 0u) << fc.summary;
      EXPECT_GT(out.net_stats.dropped_crash, 0u) << fc.summary;
      covered_crash = true;
    }
  }
  // The corpus contract: at least one seed per fault kind, and at least one
  // crash that wipes state (the ledger-replay recovery path).
  EXPECT_TRUE(covered_drop);
  EXPECT_TRUE(covered_partition);
  EXPECT_TRUE(covered_delay);
  EXPECT_TRUE(covered_crash);
  EXPECT_TRUE(covered_wipe);
}

// P9 under faults: the three algorithms implement one abstract datatype, so
// the same fuzz case driven through each must consolidate the same element
// set with content-pure epoch hashes. (Client add schedules and fault
// windows are identical across algorithms by construction.)
TEST(ScenarioFuzzCorpus, CrossAlgorithmConformanceUnderFaults) {
  // seed 7: wiped crash + link loss + delay spike; seed 19: partition + delay.
  for (const std::uint64_t seed : {7ull, 19ull}) {
    FuzzCase fc = make_fuzz_case(seed);
    ASSERT_TRUE(fc.check_liveness) << "pick healed corpus seeds for P9";
    std::vector<std::vector<core::EpochRecord>> histories;
    for (const auto algo :
         {runner::Algorithm::kVanilla, runner::Algorithm::kCompresschain,
          runner::Algorithm::kHashchain}) {
      fc.scenario.algorithm = algo;
      runner::Experiment e(fc.scenario);
      e.run();
      EXPECT_EQ(e.result().elements_committed, e.result().elements_added)
          << fc.summary << " " << runner::algorithm_name(algo);
      histories.push_back(*e.server(0).get().history);
    }
    std::vector<core::AlgoRun> runs;
    runs.push_back({"Vanilla", &histories[0]});
    runs.push_back({"Compresschain", &histories[1]});
    runs.push_back({"Hashchain", &histories[2]});
    const auto p9 = core::check_cross_algorithm(runs);
    EXPECT_TRUE(p9.ok()) << fc.summary << "\n" << p9.to_string();
  }
}

// -------------------------------------------------------- fresh random seeds

TEST(ScenarioFuzz, RandomSeeds) {
  const char* count_env = std::getenv("SETCHAIN_FUZZ_SEEDS");
  const char* base_env = std::getenv("SETCHAIN_FUZZ_BASE");
  const int count = count_env ? std::atoi(count_env) : 25;
  const std::uint64_t base =
      base_env ? std::strtoull(base_env, nullptr, 10) : 20260726ull;
  for (int i = 0; i < count; ++i) {
    const FuzzCase fc = make_fuzz_case(base + static_cast<std::uint64_t>(i));
    SCOPED_TRACE(fc.summary);
    FuzzOutcome out;
    run_twice_and_compare(fc, out);
    if (::testing::Test::HasFailure()) break;  // first failing seed is enough
  }
}

// Reproduce one seed from a failure report: SETCHAIN_FUZZ_ONE=<seed>.
TEST(ScenarioFuzz, OneSeed) {
  const char* env = std::getenv("SETCHAIN_FUZZ_ONE");
  if (!env) GTEST_SKIP() << "set SETCHAIN_FUZZ_ONE=<seed> to reproduce a seed";
  const FuzzCase fc = make_fuzz_case(std::strtoull(env, nullptr, 10));
  SCOPED_TRACE(fc.summary);
  FuzzOutcome out;
  run_twice_and_compare(fc, out);
}

// ------------------------------------------ replay determinism under faults
// Same seed + same FaultPlan => byte-identical epoch hash chains across two
// runs, for all three algorithms, with every fault kind active at once.

TEST(FaultReplayDeterminism, ByteIdenticalEpochHashesAllAlgorithms) {
  for (const auto algo : {runner::Algorithm::kVanilla,
                          runner::Algorithm::kCompresschain,
                          runner::Algorithm::kHashchain}) {
    runner::Scenario s;
    s.algorithm = algo;
    s.n = 7;  // f = 2: one partitioned node plus one crashed node
    s.sending_rate = 300;
    s.collector_limit = 20;
    s.add_duration = sim::from_seconds(5);
    s.horizon = sim::from_seconds(180);
    s.track_ids = true;
    s.clients_duplicate_to_all = true;
    s.seed = 0xD5EEDULL;
    auto& faults = s.faults.faults;
    faults.push_back(sim::Fault::drop(sim::kAnyNode, sim::kAnyNode, 0.2,
                                      sim::from_seconds(1.0), sim::from_seconds(2.5)));
    faults.push_back(sim::Fault::partition({1}, sim::from_seconds(1.5),
                                           sim::from_seconds(3.0)));
    faults.push_back(sim::Fault::delay_spike(sim::from_millis(300),
                                             sim::from_seconds(0.5),
                                             sim::from_seconds(4.0)));
    faults.push_back(sim::Fault::crash(2, sim::from_seconds(2.0),
                                       sim::from_seconds(3.5), /*wipe=*/true));

    std::vector<std::vector<core::EpochHash>> chains;
    std::vector<std::uint64_t> events;
    for (int run = 0; run < 2; ++run) {
      runner::Experiment e(s);
      e.run();
      // The fault plan heals by 3.5 s: everything must still commit.
      EXPECT_EQ(e.result().elements_committed, e.result().elements_added)
          << runner::algorithm_name(algo);
      EXPECT_GT(e.result().net_dropped, 0u);
      std::vector<core::EpochHash> chain;
      for (const auto& rec : *e.server(0).get().history) chain.push_back(rec.hash);
      chains.push_back(std::move(chain));
      events.push_back(e.result().events);
    }
    ASSERT_FALSE(chains[0].empty()) << runner::algorithm_name(algo);
    EXPECT_EQ(chains[0], chains[1]) << runner::algorithm_name(algo);
    EXPECT_EQ(events[0], events[1]) << runner::algorithm_name(algo);
  }
}

}  // namespace
}  // namespace setchain
