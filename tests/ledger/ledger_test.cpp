#include <gtest/gtest.h>

#include "ledger/consensus.hpp"
#include "ledger/ledger_node.hpp"
#include "ledger/mempool.hpp"

namespace setchain::ledger {
namespace {

Transaction make_tx(std::uint32_t size, TxKind kind = TxKind::kElement) {
  Transaction tx;
  tx.kind = kind;
  tx.wire_size = size;
  tx.app = std::make_shared<int>(0);  // non-null marker
  return tx;
}

// ------------------------------------------------------------------- Mempool

TEST(Mempool, AddDedupsByIndex) {
  TxTable table;
  Mempool mp;
  const TxIdx idx = table.add(make_tx(100));
  EXPECT_TRUE(mp.add(idx, table.get(idx)));
  EXPECT_FALSE(mp.add(idx, table.get(idx)));
  EXPECT_EQ(mp.pending_count(), 1u);
  EXPECT_EQ(mp.pending_bytes(), 100u);
}

TEST(Mempool, CommittedTxNeverReenters) {
  TxTable table;
  Mempool mp;
  const TxIdx idx = table.add(make_tx(50));
  mp.mark_committed(idx, table.get(idx));  // committed before ever seen
  EXPECT_FALSE(mp.add(idx, table.get(idx)));
  EXPECT_EQ(mp.pending_count(), 0u);
}

TEST(Mempool, MarkCommittedRemovesPending) {
  TxTable table;
  Mempool mp;
  const TxIdx a = table.add(make_tx(10));
  const TxIdx b = table.add(make_tx(20));
  mp.add(a, table.get(a));
  mp.add(b, table.get(b));
  mp.mark_committed(a, table.get(a));
  EXPECT_EQ(mp.pending_count(), 1u);
  EXPECT_EQ(mp.pending_bytes(), 20u);
  const auto reaped = mp.reap(table, 1000);
  EXPECT_EQ(reaped, std::vector<TxIdx>{b});
}

TEST(Mempool, CapacityLimits) {
  TxTable table;
  MempoolConfig cfg;
  cfg.max_txs = 2;
  cfg.max_bytes = 1000;
  Mempool mp(cfg);
  const TxIdx a = table.add(make_tx(400));
  const TxIdx b = table.add(make_tx(400));
  const TxIdx c = table.add(make_tx(400));  // bytes overflow
  EXPECT_TRUE(mp.add(a, table.get(a)));
  EXPECT_TRUE(mp.add(b, table.get(b)));
  EXPECT_FALSE(mp.add(c, table.get(c)));
  EXPECT_EQ(mp.rejected_capacity(), 1u);

  MempoolConfig cfg2;
  cfg2.max_txs = 1;
  Mempool mp2(cfg2);
  const TxIdx d = table.add(make_tx(1));
  const TxIdx e = table.add(make_tx(1));
  EXPECT_TRUE(mp2.add(d, table.get(d)));
  EXPECT_FALSE(mp2.add(e, table.get(e)));  // count overflow
}

TEST(Mempool, ReapRespectsByteBudgetFifo) {
  TxTable table;
  Mempool mp;
  std::vector<TxIdx> idxs;
  for (int i = 0; i < 5; ++i) {
    const TxIdx idx = table.add(make_tx(100));
    idxs.push_back(idx);
    mp.add(idx, table.get(idx));
  }
  const auto reaped = mp.reap(table, 250);
  EXPECT_EQ(reaped, (std::vector<TxIdx>{idxs[0], idxs[1]}));
}

TEST(Mempool, ReapSkipsExcluded) {
  TxTable table;
  Mempool mp;
  const TxIdx a = table.add(make_tx(100));
  const TxIdx b = table.add(make_tx(100));
  mp.add(a, table.get(a));
  mp.add(b, table.get(b));
  std::vector<bool> exclude(2, false);
  exclude[a] = true;
  EXPECT_EQ(mp.reap(table, 1000, &exclude), std::vector<TxIdx>{b});
}

TEST(Mempool, OversizedSingleTxIsSkippedNotBlocking) {
  TxTable table;
  Mempool mp;
  const TxIdx big = table.add(make_tx(5000));
  const TxIdx small = table.add(make_tx(10));
  mp.add(big, table.get(big));
  mp.add(small, table.get(small));
  // A tx larger than the block must not wedge the queue forever.
  EXPECT_EQ(mp.reap(table, 1000), std::vector<TxIdx>{small});
}

// ------------------------------------------------------------- InstantLedger

TEST(InstantLedger, DeliversSameBlocksToAllNodes) {
  InstantLedger ledger(3);
  std::vector<std::vector<std::uint64_t>> seen(3);
  for (std::uint32_t node = 0; node < 3; ++node) {
    ledger.on_new_block(node, [&seen, node](const Block& b) {
      seen[node].push_back(b.height);
    });
  }
  ledger.append(0, make_tx(10));
  ledger.append(1, make_tx(10));
  ledger.seal_block();
  ledger.append(2, make_tx(10));
  ledger.seal_block();
  EXPECT_FALSE(ledger.seal_block());  // nothing pending
  for (const auto& s : seen) EXPECT_EQ(s, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(ledger.height(), 2u);
  EXPECT_EQ(ledger.block_at(1).txs.size(), 2u);
}

TEST(InstantLedger, RespectsBlockCapacity) {
  InstantLedger ledger(1, /*max_block_bytes=*/250);
  for (int i = 0; i < 5; ++i) ledger.append(0, make_tx(100));
  ledger.seal_all();
  EXPECT_EQ(ledger.height(), 3u);  // 2+2+1
  EXPECT_EQ(ledger.block_at(1).txs.size(), 2u);
  EXPECT_EQ(ledger.block_at(3).txs.size(), 1u);
}

// --------------------------------------------------------------- CometbftSim

struct Harness {
  sim::Simulation sim;
  sim::Network net;
  std::vector<sim::BusyResource> cpus;
  std::unique_ptr<CometbftSim> ledger;

  explicit Harness(std::uint32_t n, ConsensusConfig cfg = {}, LedgerHooks hooks = {},
                   sim::NetworkConfig ncfg = {})
      : net(sim, n, ncfg, 7), cpus(n) {
    cfg.n = n;
    ledger = std::make_unique<CometbftSim>(sim, net, cpus, cfg, std::move(hooks));
  }
};

TEST(CometbftSim, ProducesBlocksAtConfiguredRate) {
  std::vector<sim::Time> commit_times;
  ConsensusConfig cfg;
  cfg.block_interval = sim::from_seconds(1.25);
  LedgerHooks hk;
  hk.on_block_committed = [&commit_times](const Block&, sim::Time t) {
    commit_times.push_back(t);
  };
  Harness h2(4, cfg, std::move(hk));
  h2.ledger->start();
  // Feed a steady trickle so every interval has transactions.
  for (int i = 0; i < 40; ++i) {
    h2.sim.schedule_at(sim::from_seconds(0.2 * i), [&h2] {
      h2.ledger->append(0, make_tx(200));
    });
  }
  h2.sim.run_until(sim::from_seconds(12));
  // ~0.8 blocks/s over ~9 s of traffic: expect 6-9 blocks.
  EXPECT_GE(commit_times.size(), 5u);
  EXPECT_LE(commit_times.size(), 10u);
  for (std::size_t i = 1; i < commit_times.size(); ++i) {
    EXPECT_GE(commit_times[i] - commit_times[i - 1], sim::from_seconds(1.2));
  }
}

TEST(CometbftSim, AllNodesSeeSameBlocksInOrder) {
  ConsensusConfig cfg;
  Harness h(4, cfg);
  std::vector<std::vector<std::uint64_t>> heights(4);
  for (std::uint32_t node = 0; node < 4; ++node) {
    h.ledger->on_new_block(node, [&heights, node](const Block& b) {
      heights[node].push_back(b.height);
    });
  }
  h.ledger->start();
  for (int i = 0; i < 30; ++i) {
    h.sim.schedule_at(sim::from_seconds(0.3 * i), [&h, i] {
      h.ledger->append(static_cast<sim::NodeId>(i % 4), make_tx(150));
    });
  }
  h.sim.run_until(sim::from_seconds(60));
  ASSERT_FALSE(heights[0].empty());
  for (std::uint32_t node = 1; node < 4; ++node) {
    EXPECT_EQ(heights[node], heights[0]) << "node " << node;  // Property 10
  }
  for (std::size_t i = 0; i < heights[0].size(); ++i) {
    EXPECT_EQ(heights[0][i], i + 1);  // strictly sequential
  }
}

TEST(CometbftSim, EveryAppendedTxIsEventuallyInExactlyOneBlock) {
  Harness h(4);
  std::vector<int> seen_count;
  h.ledger->on_new_block(0, [&](const Block& b) {
    for (const TxIdx idx : b.txs) {
      if (idx >= seen_count.size()) seen_count.resize(idx + 1, 0);
      ++seen_count[idx];
    }
  });
  h.ledger->start();
  const int kTxs = 100;
  for (int i = 0; i < kTxs; ++i) {
    h.sim.schedule_at(sim::from_seconds(0.05 * i), [&h, i] {
      h.ledger->append(static_cast<sim::NodeId>(i % 4), make_tx(300));
    });
  }
  h.sim.run_until(sim::from_seconds(120));
  ASSERT_EQ(seen_count.size(), static_cast<std::size_t>(kTxs));
  for (int i = 0; i < kTxs; ++i) {
    EXPECT_EQ(seen_count[static_cast<std::size_t>(i)], 1) << "tx " << i;  // P9 + uniqueness
  }
}

TEST(CometbftSim, BlockCapacityRespected) {
  ConsensusConfig cfg;
  cfg.max_block_bytes = 1000;
  Harness h(4, cfg);
  h.ledger->start();
  for (int i = 0; i < 20; ++i) h.ledger->append(0, make_tx(300));
  h.sim.run_until(sim::from_seconds(60));
  ASSERT_GT(h.ledger->height(), 1u);
  for (std::uint64_t ht = 1; ht <= h.ledger->height(); ++ht) {
    std::uint64_t bytes = 0;
    for (const TxIdx idx : h.ledger->block_at(ht).txs) {
      bytes += h.ledger->txs().get(idx).wire_size;
    }
    EXPECT_LE(bytes, 1000u) << "height " << ht;
  }
}

TEST(CometbftSim, CheckTxFiltersInvalid) {
  LedgerHooks hooks;
  hooks.check_tx = [](const Transaction& tx) { return tx.kind != TxKind::kOpaque; };
  Harness h(4, {}, std::move(hooks));
  std::uint64_t committed_txs = 0;
  h.ledger->on_new_block(0, [&](const Block& b) { committed_txs += b.txs.size(); });
  h.ledger->start();
  h.ledger->append(0, make_tx(100, TxKind::kOpaque));   // rejected
  h.ledger->append(0, make_tx(100, TxKind::kElement));  // accepted
  h.sim.run_until(sim::from_seconds(30));
  EXPECT_EQ(committed_txs, 1u);
}

TEST(CometbftSim, MempoolArrivalHookFiresPerNode) {
  std::vector<std::pair<sim::NodeId, TxIdx>> arrivals;
  LedgerHooks hooks;
  hooks.on_mempool_add = [&](sim::NodeId node, TxIdx idx, sim::Time) {
    arrivals.emplace_back(node, idx);
  };
  Harness h(4, {}, std::move(hooks));
  h.ledger->start();
  h.ledger->append(2, make_tx(100));
  h.sim.run_until(sim::from_seconds(5));
  // One arrival per node (origin + 3 peers).
  EXPECT_EQ(arrivals.size(), 4u);
  EXPECT_EQ(arrivals.front().first, 2u);  // origin first
}

TEST(CometbftSim, SilentProposerIsSkippedViaRoundChange) {
  ConsensusConfig cfg;
  cfg.timeout_propose = sim::from_seconds(2);
  Harness h(4, cfg);
  LedgerByzantineConfig byz;
  byz.silent_proposer = true;
  // Heights rotate proposers 1,2,3,0,...; make node 2 silent.
  h.ledger->set_byzantine(2, byz);
  std::vector<sim::NodeId> proposers;
  h.ledger->on_new_block(0, [&](const Block& b) { proposers.push_back(b.proposer); });
  h.ledger->start();
  for (int i = 0; i < 40; ++i) {
    h.sim.schedule_at(sim::from_seconds(0.5 * i), [&h] {
      h.ledger->append(0, make_tx(200));
    });
  }
  h.sim.run_until(sim::from_seconds(40));
  ASSERT_GE(proposers.size(), 5u);
  for (const auto p : proposers) EXPECT_NE(p, 2u);
  EXPECT_EQ(h.ledger->height(), proposers.size());  // chain still grows (liveness)
}

TEST(CometbftSim, ByzantineProposerInjectsGarbageThatAppsMustFilter) {
  ConsensusConfig cfg;
  Harness h(4, cfg);
  LedgerByzantineConfig byz;
  byz.garbage_txs_per_block = 2;
  byz.make_garbage = [] { return make_tx(66, TxKind::kOpaque); };
  h.ledger->set_byzantine(1, byz);
  std::uint64_t garbage_seen = 0, normal_seen = 0;
  h.ledger->on_new_block(3, [&](const Block& b) {
    for (const TxIdx idx : b.txs) {
      if (h.ledger->txs().get(idx).kind == TxKind::kOpaque) {
        ++garbage_seen;
      } else {
        ++normal_seen;
      }
    }
  });
  h.ledger->start();
  for (int i = 0; i < 20; ++i) {
    h.sim.schedule_at(sim::from_seconds(0.5 * i), [&h] {
      h.ledger->append(0, make_tx(200));
    });
  }
  h.sim.run_until(sim::from_seconds(30));
  EXPECT_GT(garbage_seen, 0u);   // Byzantine proposer got junk in
  EXPECT_EQ(normal_seen, 20u);   // honest traffic unaffected
}

TEST(CometbftSim, NetworkDelaySlowsCommitButNotOrder) {
  sim::NetworkConfig ncfg;
  ncfg.extra_delay = sim::from_millis(100);
  ConsensusConfig cfg;
  std::vector<sim::Time> commit_times;
  LedgerHooks hooks;
  hooks.on_block_committed = [&](const Block& b, sim::Time t) {
    commit_times.push_back(t - b.proposed_at);
  };
  Harness h(4, cfg, std::move(hooks), ncfg);
  h.ledger->start();
  for (int i = 0; i < 10; ++i) {
    h.sim.schedule_at(sim::from_seconds(0.5 * i), [&h] {
      h.ledger->append(0, make_tx(100));
    });
  }
  h.sim.run_until(sim::from_seconds(30));
  ASSERT_FALSE(commit_times.empty());
  for (const auto dt : commit_times) {
    // Proposal + prevote + precommit legs each cross the network once:
    // ~3 * 100 ms of injected delay before commit (minus up to 5% jitter).
    EXPECT_GE(dt, sim::from_millis(250));
  }
}

TEST(CometbftSim, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Harness h(4);
    std::vector<std::pair<std::uint64_t, std::size_t>> trace;
    h.ledger->on_new_block(0, [&](const Block& b) {
      trace.emplace_back(b.height, b.txs.size());
    });
    h.ledger->start();
    for (int i = 0; i < 25; ++i) {
      h.sim.schedule_at(sim::from_seconds(0.17 * i), [&h, i] {
        h.ledger->append(static_cast<sim::NodeId>(i % 4), make_tx(100 + i));
      });
    }
    h.sim.run_until(sim::from_seconds(60));
    return std::make_pair(trace, h.sim.executed_events());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(CometbftSim, MempoolCapacityOverflowIsGracefullyDropped) {
  ConsensusConfig cfg;
  cfg.mempool.max_txs = 10;  // tiny pool
  Harness h(4, cfg);
  h.ledger->start();
  for (int i = 0; i < 50; ++i) h.ledger->append(0, make_tx(100));
  h.sim.run_until(sim::from_seconds(120));
  // Overflowing txs were rejected, the rest committed; no crash, no stall.
  EXPECT_GT(h.ledger->mempool(0).rejected_capacity(), 0u);
  EXPECT_GE(h.ledger->height(), 1u);
}

TEST(CometbftSim, QuiescesWhenNoTraffic) {
  Harness h(4);
  h.ledger->start();
  h.ledger->append(0, make_tx(100));
  h.sim.run_until(sim::from_seconds(600));
  // With create_empty_blocks=false the event queue drains after the last
  // block: the run ends long before the horizon.
  EXPECT_TRUE(h.ledger->idle());
  EXPECT_EQ(h.ledger->height(), 1u);
  EXPECT_TRUE(h.sim.empty());
}

}  // namespace
}  // namespace setchain::ledger
