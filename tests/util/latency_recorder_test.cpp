// LatencyRecorder conformance: the log-linear histogram must reproduce a
// sorted-vector percentile oracle within its advertised quantization bound
// (< 1/kSubBuckets relative overestimate, never an underestimate) across
// benign and adversarial sample distributions, and merge() must be exact.
#include "util/latency_recorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

namespace setchain::util {
namespace {

constexpr double kPercentiles[] = {0.01, 0.25, 0.50, 0.90,
                                   0.99, 0.999, 1.0};

/// Exact oracle: the recorder's documented rank, answered from the raw
/// samples. rank = max(1, ceil(p * n)), value = sorted[rank - 1].
std::uint64_t oracle_percentile(std::vector<std::uint64_t> sorted, double p) {
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(n))));
  return sorted[rank - 1];
}

/// Feed `samples` and check every percentile against the oracle: the
/// recorder may overestimate by at most the oracle value's own bucket
/// width (and never past max()), and must never underestimate.
void check_against_oracle(const std::vector<std::uint64_t>& samples) {
  LatencyRecorder rec;
  for (const auto v : samples) rec.record(v);
  ASSERT_EQ(rec.count(), samples.size());

  const auto [mn, mx] = std::minmax_element(samples.begin(), samples.end());
  EXPECT_EQ(rec.min(), *mn);
  EXPECT_EQ(rec.max(), *mx);

  long double exact_sum = 0;
  for (const auto v : samples) exact_sum += static_cast<long double>(v);
  EXPECT_NEAR(rec.mean(),
              static_cast<double>(exact_sum / static_cast<long double>(samples.size())),
              1e-6 * static_cast<double>(exact_sum / static_cast<long double>(samples.size())) + 1e-9);

  for (const double p : kPercentiles) {
    const std::uint64_t truth = oracle_percentile(samples, p);
    const std::uint64_t got = rec.percentile(p);
    EXPECT_GE(got, truth) << "p=" << p << " underestimated";
    EXPECT_LE(got, std::min(LatencyRecorder::bucket_bound(truth), rec.max()))
        << "p=" << p << " beyond the rank value's bucket";
    if (truth > 0) {
      EXPECT_LT(static_cast<double>(got - truth) / static_cast<double>(truth),
                1.0 / static_cast<double>(LatencyRecorder::kSubBuckets))
          << "p=" << p << " relative error bound broken";
    }
  }
}

TEST(LatencyRecorder, EmptyReturnsZeroes) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.min(), 0u);
  EXPECT_EQ(rec.max(), 0u);
  EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
  for (const double p : kPercentiles) EXPECT_EQ(rec.percentile(p), 0u);
}

TEST(LatencyRecorder, SingleSampleIsExactAtEveryPercentile) {
  // The max() clamp makes a single sample exact even deep in the log range.
  for (const std::uint64_t v : {0ull, 1ull, 42ull, 63ull, 64ull, 1'000'000ull,
                                987'654'321ull}) {
    LatencyRecorder rec;
    rec.record(v);
    EXPECT_EQ(rec.min(), v);
    EXPECT_EQ(rec.max(), v);
    EXPECT_DOUBLE_EQ(rec.mean(), static_cast<double>(v));
    for (const double p : kPercentiles) EXPECT_EQ(rec.percentile(p), v) << v;
  }
}

TEST(LatencyRecorder, ExactRegionHasZeroError) {
  // Values below 2 * kSubBuckets get one bucket each: percentiles are exact.
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 10'000; ++i) samples.push_back(rng() % 64);
  LatencyRecorder rec;
  for (const auto v : samples) rec.record(v);
  for (const double p : kPercentiles) {
    EXPECT_EQ(rec.percentile(p), oracle_percentile(samples, p)) << p;
  }
}

TEST(LatencyRecorder, OracleUniform) {
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<std::uint64_t> dist(0, 5'000'000);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 100'000; ++i) samples.push_back(dist(rng));
  check_against_oracle(samples);
}

TEST(LatencyRecorder, OracleLognormal) {
  // The shape real ack latency has: a tight body and a heavy tail spanning
  // several orders of magnitude — exactly what the log buckets are for.
  std::mt19937_64 rng(1234);
  std::lognormal_distribution<double> dist(/*m=*/6.0, /*s=*/2.0);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 100'000; ++i) {
    samples.push_back(static_cast<std::uint64_t>(dist(rng)));
  }
  check_against_oracle(samples);
}

TEST(LatencyRecorder, OracleAdversarialBucketEdges) {
  // Sit exactly on bucket boundaries: powers of two and their neighbours,
  // where an off-by-one in the index math shows up first.
  std::vector<std::uint64_t> samples;
  for (unsigned shift = 0; shift < 40; ++shift) {
    const std::uint64_t v = 1ull << shift;
    for (const std::uint64_t s : {v - 1, v, v + 1}) {
      for (int rep = 0; rep < 50; ++rep) samples.push_back(s);
    }
  }
  check_against_oracle(samples);
}

TEST(LatencyRecorder, OracleAllIdentical) {
  std::vector<std::uint64_t> samples(5'000, 123'456);
  check_against_oracle(samples);
}

TEST(LatencyRecorder, OverflowSaturatesPercentileKeepsExactMax) {
  LatencyRecorder rec;
  const std::uint64_t huge = LatencyRecorder::kMaxTrackable * 8;
  rec.record(huge);
  rec.record(huge + 1);
  EXPECT_EQ(rec.count(), 2u);
  EXPECT_EQ(rec.max(), huge + 1);  // min/max/count stay exact
  // Percentiles saturate at the final bucket's bound.
  EXPECT_EQ(rec.percentile(0.99), LatencyRecorder::kMaxTrackable - 1);
}

TEST(LatencyRecorder, BucketBoundContract) {
  std::mt19937_64 rng(99);
  for (int i = 0; i < 200'000; ++i) {
    const std::uint64_t v = rng() >> (rng() % 24);  // span many octaves
    const std::uint64_t b = LatencyRecorder::bucket_bound(
        std::min(v, LatencyRecorder::kMaxTrackable - 1));
    const std::uint64_t clamped = std::min(v, LatencyRecorder::kMaxTrackable - 1);
    ASSERT_GE(b, clamped);
    if (clamped >= 64) {
      ASSERT_LT(static_cast<double>(b),
                static_cast<double>(clamped) *
                    (1.0 + 1.0 / static_cast<double>(LatencyRecorder::kSubBuckets)));
    } else {
      ASSERT_EQ(b, clamped);  // exact region
    }
  }
}

TEST(LatencyRecorder, RecordNMatchesRepeatedRecord) {
  LatencyRecorder a, b;
  std::mt19937_64 rng(5);
  for (int i = 0; i < 1'000; ++i) {
    const std::uint64_t v = rng() % 1'000'000;
    const std::uint64_t n = 1 + rng() % 7;
    a.record_n(v, n);
    for (std::uint64_t k = 0; k < n; ++k) b.record(v);
  }
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  for (const double p : kPercentiles) EXPECT_EQ(a.percentile(p), b.percentile(p));
}

TEST(LatencyRecorder, MergeIsExactAndAssociative) {
  // Split one stream across three shards; every merge order must equal the
  // single-recorder ground truth bucket-for-bucket (observable through
  // count/min/max/mean and every percentile).
  std::mt19937_64 rng(2026);
  std::lognormal_distribution<double> dist(5.0, 1.5);
  LatencyRecorder all, a, b, c;
  for (int i = 0; i < 30'000; ++i) {
    const auto v = static_cast<std::uint64_t>(dist(rng));
    all.record(v);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
  }

  LatencyRecorder left_first;  // (a + b) + c
  left_first.merge(a);
  left_first.merge(b);
  left_first.merge(c);
  LatencyRecorder right_first;  // a + (b + c)
  LatencyRecorder bc;
  bc.merge(b);
  bc.merge(c);
  right_first.merge(a);
  right_first.merge(bc);

  for (const LatencyRecorder* m : {&left_first, &right_first}) {
    EXPECT_EQ(m->count(), all.count());
    EXPECT_EQ(m->min(), all.min());
    EXPECT_EQ(m->max(), all.max());
    EXPECT_DOUBLE_EQ(m->mean(), all.mean());
    for (double p = 0.0; p <= 1.0; p += 0.01) {
      EXPECT_EQ(m->percentile(p), all.percentile(p)) << p;
    }
  }
}

TEST(LatencyRecorder, MergeEmptyIsIdentity) {
  LatencyRecorder a, empty;
  a.record(17);
  a.record(93'000);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 17u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.max(), a.max());
  EXPECT_EQ(empty.percentile(0.5), a.percentile(0.5));
}

TEST(LatencyRecorder, ClearResets) {
  LatencyRecorder rec;
  for (int i = 0; i < 100; ++i) rec.record(1000 + i);
  rec.clear();
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.percentile(0.99), 0u);
  rec.record(5);
  EXPECT_EQ(rec.count(), 1u);
  EXPECT_EQ(rec.percentile(0.5), 5u);
}

}  // namespace
}  // namespace setchain::util
