// ThreadPool: the one primitive is parallel_for. Covers full index
// coverage (each index exactly once), the zero-worker inline degradation
// every single-core host relies on, concurrent parallel_for calls from
// independent threads, and the determinism contract downstream code builds
// on: Ed25519::verify_batch_sharded must agree with verify_batch verdict-
// for-verdict at every shard count, including batches with bad signatures.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_set>
#include <vector>

#include "crypto/ed25519.hpp"

namespace setchain::util {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroWorkersRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  std::unordered_set<std::thread::id> seen;
  std::size_t count = 0;
  pool.parallel_for(64, [&](std::size_t) {
    seen.insert(std::this_thread::get_id());  // safe: inline = single thread
    ++count;
  });
  EXPECT_EQ(count, 64u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), std::this_thread::get_id());
}

TEST(ThreadPool, ConcurrentParallelForCalls) {
  ThreadPool pool(2);
  constexpr std::size_t kN = 4096;
  std::vector<std::atomic<int>> a(kN), b(kN);
  std::thread other(
      [&] { pool.parallel_for(kN, [&](std::size_t i) { a[i].fetch_add(1); }); });
  pool.parallel_for(kN, [&](std::size_t i) { b[i].fetch_add(1); });
  other.join();
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i].load(), 1);
    ASSERT_EQ(b[i].load(), 1);
  }
}

// The whole reason sharding is allowed to exist: any shard count yields the
// scalar-verify verdict per entry, so the machine-picked count (which varies
// with core count) can never change consensus-visible results.
TEST(ThreadPool, ShardedBatchVerifyAgreesAtEveryShardCount) {
  using crypto::Ed25519;
  constexpr std::size_t kN = 130;  // above the >=128 auto-shard threshold
  std::vector<Ed25519::Seed> seeds(kN);
  std::vector<Ed25519::PublicKey> pubs(kN);
  std::vector<codec::Bytes> messages(kN);
  std::vector<Ed25519::Signature> sigs(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    seeds[i].fill(static_cast<std::uint8_t>(i + 1));
    pubs[i] = Ed25519::public_key(seeds[i]);
    messages[i] = {static_cast<std::uint8_t>(i), 0x5E, 0x7C,
                   static_cast<std::uint8_t>(i >> 3)};
    sigs[i] = Ed25519::sign(seeds[i], pubs[i], messages[i]);
  }
  // Corrupt a scatter of signatures, including both ends and a run inside
  // what will become a single shard, to exercise bisection everywhere.
  for (const std::size_t bad : {std::size_t{0}, std::size_t{17}, std::size_t{64},
                                std::size_t{65}, std::size_t{kN - 1}}) {
    sigs[bad][5] ^= 0x40;
  }
  std::vector<Ed25519::BatchEntry> entries(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    entries[i] = {&pubs[i], messages[i], &sigs[i]};
  }

  const auto reference = Ed25519::verify_batch(entries);
  EXPECT_FALSE(reference.all_valid);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(reference.valid[i],
              Ed25519::verify(pubs[i], messages[i], sigs[i]))
        << "entry " << i;
  }

  for (const std::size_t shards : {1u, 2u, 3u, 5u, 8u}) {
    const auto res = Ed25519::verify_batch_sharded(entries, shards);
    EXPECT_EQ(res.all_valid, reference.all_valid) << shards << " shards";
    ASSERT_EQ(res.valid, reference.valid) << shards << " shards";
  }
}

}  // namespace
}  // namespace setchain::util
