// BufferPool: the frame path's allocator amortization. Covers the reuse
// contract (capacity survives a round trip), the bounded-hoarding rules
// (oversized / overflow buffers are freed, not pooled), the poison-on-
// return debug tripwire for stale zero-copy views, and concurrent checkout
// from many threads (the pool is shared by every transport loop).
#include "util/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace setchain::util {
namespace {

TEST(BufferPool, ReuseRetainsCapacity) {
  BufferPool pool(4, 1u << 20);
  codec::Bytes b = pool.acquire(1024);
  EXPECT_TRUE(b.empty());
  EXPECT_GE(b.capacity(), 1024u);
  b.resize(777, 0xAB);
  const std::size_t cap = b.capacity();
  pool.release(std::move(b));

  auto st = pool.stats();
  EXPECT_EQ(st.acquires, 1u);
  EXPECT_EQ(st.releases, 1u);
  EXPECT_EQ(st.discards, 0u);
  EXPECT_EQ(st.pooled, 1u);

  codec::Bytes again = pool.acquire(16);
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), cap);  // same storage, previous life's capacity
  st = pool.stats();
  EXPECT_EQ(st.reuses, 1u);
  EXPECT_EQ(st.pooled, 0u);
}

TEST(BufferPool, OversizedAndOverflowAreDiscarded) {
  BufferPool pool(2, 4096);

  // Above max_buffer_bytes: freed, never pooled.
  codec::Bytes big = pool.acquire(0);
  big.resize(8192);
  pool.release(std::move(big));
  auto st = pool.stats();
  EXPECT_EQ(st.discards, 1u);
  EXPECT_EQ(st.pooled, 0u);

  // Three buffers in flight at once; releasing all three overflows
  // max_pooled=2 and the last one is freed as well.
  codec::Bytes b0 = pool.acquire(64), b1 = pool.acquire(64), b2 = pool.acquire(64);
  b0.resize(64);
  b1.resize(64);
  b2.resize(64);
  pool.release(std::move(b0));
  pool.release(std::move(b1));
  pool.release(std::move(b2));
  st = pool.stats();
  EXPECT_EQ(st.pooled, 2u);
  EXPECT_EQ(st.discards, 2u);
}

TEST(BufferPool, PoisonOnReturnScrubsReleasedBytes) {
  if (!BufferPool::poison_on_release()) {
    GTEST_SKIP() << "release-time poisoning is compiled out (NDEBUG, no sanitizer)";
  }
  BufferPool pool(4, 1u << 20);
  codec::Bytes b = pool.acquire(256);
  b.resize(256, 0xAB);
  // The storage stays alive inside the pool's free list after release, so a
  // stale pointer — exactly what a leaked zero-copy ByteView would be —
  // must observe the 0xD5 poison rather than the old frame bytes.
  const std::uint8_t* stale = b.data();
  pool.release(std::move(b));
  for (std::size_t i = 0; i < 256; ++i) {
    ASSERT_EQ(stale[i], 0xD5) << "byte " << i << " survived release";
  }
}

TEST(BufferPool, ConcurrentCheckout) {
  BufferPool pool(8, 1u << 20);
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIters; ++i) {
        codec::Bytes b = pool.acquire(64 + (i % 512));
        b.resize(32);
        b[0] = static_cast<std::uint8_t>(t);
        pool.release(std::move(b));
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto st = pool.stats();
  EXPECT_EQ(st.acquires, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(st.releases, st.acquires);
  EXPECT_LE(st.pooled, 8u);
  // Steady state re-serves capacity instead of allocating: with 8 pooled
  // slots and at most 4 buffers in flight, nearly every acquire is a reuse.
  EXPECT_GT(st.reuses, st.acquires / 2);
}

}  // namespace
}  // namespace setchain::util
