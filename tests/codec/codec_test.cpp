#include <gtest/gtest.h>

#include <string>

#include "codec/byte_io.hpp"
#include "codec/hex.hpp"
#include "codec/lz77.hpp"
#include "codec/varint.hpp"
#include "sim/rng.hpp"

namespace setchain::codec {
namespace {

// -------------------------------------------------------------------- varint

TEST(Varint, KnownEncodings) {
  Bytes b;
  put_varint(b, 0);
  EXPECT_EQ(b, Bytes{0x00});
  b.clear();
  put_varint(b, 127);
  EXPECT_EQ(b, Bytes{0x7F});
  b.clear();
  put_varint(b, 128);
  EXPECT_EQ(b, (Bytes{0x80, 0x01}));
  b.clear();
  put_varint(b, 300);
  EXPECT_EQ(b, (Bytes{0xAC, 0x02}));
}

TEST(Varint, SizeMatchesEncoding) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 1ULL << 40,
        0xFFFFFFFFFFFFFFFFULL}) {
    Bytes b;
    put_varint(b, v);
    EXPECT_EQ(b.size(), varint_size(v)) << v;
  }
}

class VarintRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundtrip, Roundtrips) {
  Bytes b;
  put_varint(b, GetParam());
  std::size_t pos = 0;
  const auto back = get_varint(b, pos);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, GetParam());
  EXPECT_EQ(pos, b.size());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundtrip,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 255ULL, 256ULL,
                                           16383ULL, 16384ULL, (1ULL << 32) - 1,
                                           1ULL << 32, 1ULL << 56,
                                           0xFFFFFFFFFFFFFFFFULL));

TEST(Varint, RandomRoundtripSweep) {
  sim::Rng rng(77);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next_u64() >> (rng.next_u64() % 64);
    Bytes b;
    put_varint(b, v);
    std::size_t pos = 0;
    ASSERT_EQ(get_varint(b, pos), v);
  }
}

TEST(Varint, PowerOfTwoBoundarySweep) {
  // Every 2^k - 1 / 2^k / 2^k + 1 for k in [0, 64): the values where the
  // encoded length changes. Roundtrip plus monotone non-decreasing size.
  std::size_t prev_size = 1;
  for (int k = 0; k < 64; ++k) {
    const std::uint64_t p = 1ULL << k;
    for (const std::uint64_t v : {p - 1, p, p + 1}) {
      Bytes b;
      put_varint(b, v);
      std::size_t pos = 0;
      ASSERT_EQ(get_varint(b, pos), v) << "k=" << k << " v=" << v;
      EXPECT_EQ(pos, b.size());
      EXPECT_EQ(b.size(), varint_size(v));
    }
    Bytes at_p;
    put_varint(at_p, p);
    EXPECT_GE(at_p.size(), prev_size) << "size not monotone at 2^" << k;
    prev_size = at_p.size();
  }
}

TEST(Varint, TruncatedInputFails) {
  Bytes b;
  put_varint(b, 1ULL << 40);
  b.pop_back();
  std::size_t pos = 0;
  EXPECT_FALSE(get_varint(b, pos).has_value());
}

TEST(Varint, OverlongEncodingRejected) {
  const Bytes b(11, 0x80);  // 11 continuation bytes
  std::size_t pos = 0;
  EXPECT_FALSE(get_varint(b, pos).has_value());
}

// ----------------------------------------------------------------------- hex

TEST(Hex, RoundtripAndCase) {
  const Bytes raw{0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(to_hex(raw), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), raw);
  EXPECT_EQ(from_hex("0001ABFF"), raw);
}

TEST(Hex, RejectsBadInput) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // non-hex
  EXPECT_EQ(from_hex("")->size(), 0u);
}

TEST(Hex, RandomRoundtripProperty) {
  sim::Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    Bytes raw(rng.next_u64() % 64);
    for (auto& x : raw) x = static_cast<std::uint8_t>(rng.next_u64());
    const std::string h = to_hex(raw);
    EXPECT_EQ(h.size(), raw.size() * 2);
    EXPECT_EQ(from_hex(h), raw);
  }
}

TEST(Hex, RejectsEveryNonHexByte) {
  // A lone bad character anywhere in an otherwise valid string must fail.
  for (int c = 0; c < 256; ++c) {
    const bool is_hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                        (c >= 'A' && c <= 'F');
    std::string s = "00";
    s[1] = static_cast<char>(c);
    EXPECT_EQ(from_hex(s).has_value(), is_hex) << "byte " << c;
  }
}

// ------------------------------------------------------------------- byte_io

TEST(ByteIo, WriterReaderRoundtrip) {
  Writer w;
  w.u8(7).u32le(0xDEADBEEF).u64le(0x0123456789ABCDEFULL).varint(300);
  w.lp_bytes(to_bytes("hello"));
  const Bytes buf = w.take();

  Reader r(buf);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32le(), 0xDEADBEEF);
  EXPECT_EQ(r.u64le(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.varint(), 300u);
  const auto s = r.lp_bytes();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(std::string(s->begin(), s->end()), "hello");
  EXPECT_TRUE(r.done());
}

TEST(ByteIo, UnderflowReturnsNullopt) {
  const Bytes buf{1, 2};
  Reader r(buf);
  EXPECT_FALSE(r.u32le().has_value());
  // Failed reads do not consume.
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_TRUE(r.u8().has_value());
}

TEST(ByteIo, LpBytesWithLyingLengthFails) {
  Writer w;
  w.varint(100);  // claims 100 bytes follow
  w.u8(1);
  const Bytes buf = w.take();
  Reader r(buf);
  EXPECT_FALSE(r.lp_bytes().has_value());
}

// ---------------------------------------------------------------------- lz77

Bytes random_bytes(sim::Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

TEST(Lz77, EmptyInput) {
  const Bytes raw;
  const Bytes comp = lz77_compress(raw);
  const auto back = lz77_decompress(comp);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(Lz77, SingleByte) {
  const Bytes raw{42};
  const auto back = lz77_decompress(lz77_compress(raw));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, raw);
}

TEST(Lz77, HighlyRepetitiveCompressesWell) {
  Bytes raw;
  for (int i = 0; i < 500; ++i) append(raw, "the same sentence again and again. ");
  const Bytes comp = lz77_compress(raw);
  EXPECT_GT(compression_ratio(raw, comp), 20.0);
  EXPECT_EQ(lz77_decompress(comp), raw);
}

TEST(Lz77, RandomDataRoundtripsWithoutBlowup) {
  sim::Rng rng(99);
  const Bytes raw = random_bytes(rng, 100'000);
  const Bytes comp = lz77_compress(raw);
  EXPECT_LT(comp.size(), raw.size() + raw.size() / 50 + 64);  // tiny overhead only
  EXPECT_EQ(lz77_decompress(comp), raw);
}

TEST(Lz77, OverlappingMatchRunLength) {
  Bytes raw(10'000, 'a');  // classic RLE-via-overlap case
  const Bytes comp = lz77_compress(raw);
  EXPECT_LT(comp.size(), 100u);
  EXPECT_EQ(lz77_decompress(comp), raw);
}

class Lz77SizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Lz77SizeSweep, MixedContentRoundtrips) {
  sim::Rng rng(GetParam() * 31 + 1);
  Bytes raw;
  while (raw.size() < GetParam()) {
    if (rng.chance(0.5)) {
      append(raw, "common-prefix/0x00000000000000000000/suffix;");
    } else {
      const Bytes r = random_bytes(rng, 1 + rng.next_u64() % 60);
      append(raw, r);
    }
  }
  raw.resize(GetParam());
  EXPECT_EQ(lz77_decompress(lz77_compress(raw)), raw);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Lz77SizeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 255, 4096,
                                           65535, 65536, 65537, 200'000));

TEST(Lz77, AlmostRepetitiveWithMutationsRoundtrips) {
  // Adversarial for match-finding: long repeats with single-byte corruptions
  // sprinkled in, so matches constantly almost-extend past a mismatch.
  sim::Rng rng(404);
  Bytes raw;
  for (int i = 0; i < 2000; ++i) append(raw, "block-of-repeating-payload-data|");
  for (int i = 0; i < 500; ++i) {
    raw[rng.next_u64() % raw.size()] = static_cast<std::uint8_t>(rng.next_u64());
  }
  const Bytes comp = lz77_compress(raw);
  EXPECT_LT(comp.size(), raw.size() / 2);  // mutations must not kill compression
  EXPECT_EQ(lz77_decompress(comp), raw);
}

TEST(Lz77, LongRangeDuplicateRoundtrips) {
  // Two identical 96 KiB random halves: only long-distance matches can pair
  // them, and the match distances sit near the window bound.
  sim::Rng rng(777);
  Bytes half = random_bytes(rng, 96 * 1024);
  Bytes raw = half;
  raw.insert(raw.end(), half.begin(), half.end());
  const Bytes comp = lz77_compress(raw);
  EXPECT_EQ(lz77_decompress(comp), raw);
  EXPECT_LE(comp.size(), raw.size() + raw.size() / 50 + 64);
}

TEST(Lz77, TwoByteAlternationRoundtrips) {
  // Minimal-period input: matches of maximal length at distance 1-2.
  Bytes raw;
  raw.reserve(50'000);
  for (int i = 0; i < 25'000; ++i) {
    raw.push_back('x');
    raw.push_back('y');
  }
  const Bytes comp = lz77_compress(raw);
  EXPECT_LT(comp.size(), 200u);
  EXPECT_EQ(lz77_decompress(comp), raw);
}

TEST(Lz77, AllByteValuesCycleRoundtrips) {
  Bytes raw;
  for (int rep = 0; rep < 300; ++rep) {
    for (int b = 0; b < 256; ++b) raw.push_back(static_cast<std::uint8_t>(b));
  }
  EXPECT_EQ(lz77_decompress(lz77_compress(raw)), raw);
}

TEST(Lz77, DecompressRejectsBadMagic) {
  Bytes bogus = to_bytes("NOPE this is not szx");
  EXPECT_FALSE(lz77_decompress(bogus).has_value());
}

TEST(Lz77, DecompressRejectsTruncation) {
  Bytes raw;
  for (int i = 0; i < 100; ++i) append(raw, "abcabcabc");
  Bytes comp = lz77_compress(raw);
  for (const std::size_t cut : {comp.size() - 1, comp.size() / 2, std::size_t{5}}) {
    Bytes t(comp.begin(), comp.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(lz77_decompress(t).has_value()) << "cut=" << cut;
  }
}

TEST(Lz77, DecompressRejectsOutOfRangeDistance) {
  // Hand-craft: magic, raw_size=4, match len 4 dist 9 with empty history.
  Writer w;
  w.bytes(to_bytes("SZX1"));
  w.varint(4);
  w.u8(0x01);
  w.varint(4);
  w.varint(9);
  EXPECT_FALSE(lz77_decompress(w.buffer()).has_value());
}

TEST(Lz77, DecompressRejectsSizeMismatch) {
  Writer w;
  w.bytes(to_bytes("SZX1"));
  w.varint(10);  // claims 10 bytes
  w.u8(0x00);
  w.varint(3);
  w.bytes(to_bytes("abc"));  // delivers 3
  EXPECT_FALSE(lz77_decompress(w.buffer()).has_value());
}

TEST(Lz77, DecompressRejectsGiantDeclaredSize) {
  Writer w;
  w.bytes(to_bytes("SZX1"));
  w.varint(std::uint64_t{1} << 40);  // 1 TiB claim
  EXPECT_FALSE(lz77_decompress(w.buffer()).has_value());
}

TEST(Lz77, FuzzDecompressNeverCrashes) {
  sim::Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    Bytes junk = random_bytes(rng, rng.next_u64() % 256);
    // Half the time, start from a valid prefix to get deeper coverage.
    if (rng.chance(0.5) && junk.size() >= 4) {
      junk[0] = 'S';
      junk[1] = 'Z';
      junk[2] = 'X';
      junk[3] = '1';
    }
    lz77_decompress(junk);  // must not crash or hang; result irrelevant
  }
  SUCCEED();
}

}  // namespace
}  // namespace setchain::codec
