#include <gtest/gtest.h>

#include "core/invariants.hpp"
#include "metrics/stats.hpp"
#include "runner/experiment.hpp"
#include "runner/parallel.hpp"

namespace setchain::runner {
namespace {

Scenario base_scenario(Algorithm algo) {
  Scenario s;
  s.algorithm = algo;
  s.n = 4;
  s.sending_rate = 200;
  s.add_duration = sim::from_seconds(5);
  s.horizon = sim::from_seconds(120);
  s.collector_limit = 20;
  s.fidelity = core::Fidelity::kCalibrated;
  s.track_ids = true;
  return s;
}

// ------------------------------------------------ end-to-end, all algorithms

class EndToEnd : public ::testing::TestWithParam<Algorithm> {};

TEST_P(EndToEnd, EverythingAddedGetsCommitted) {
  Experiment e(base_scenario(GetParam()));
  e.run();
  const RunResult r = e.result();
  EXPECT_GT(r.elements_added, 900u);  // ~1000 = 200 el/s * 5 s
  EXPECT_EQ(r.elements_committed, r.elements_added);
  EXPECT_GT(r.epochs, 0u);
  EXPECT_GT(r.blocks, 0u);
  // Natural quiescence well before the horizon.
  EXPECT_LT(r.sim_seconds, 100.0);
}

TEST_P(EndToEnd, SafetyAndLivenessInvariants) {
  Experiment e(base_scenario(GetParam()));
  e.run();
  const auto servers = e.correct_servers();
  const auto safety = core::check_safety(servers);
  EXPECT_TRUE(safety.ok()) << safety.to_string();
  const auto live = core::check_liveness_quiescent(servers, e.accepted_valid_ids(),
                                                   e.params(), e.pki());
  EXPECT_TRUE(live.ok()) << live.to_string();
  const auto p7 = core::check_add_before_get(servers, e.created_ids());
  EXPECT_TRUE(p7.ok()) << p7.to_string();
}

TEST_P(EndToEnd, DeterministicAcrossRuns) {
  const Scenario s = base_scenario(GetParam());
  Experiment a(s), b(s);
  a.run();
  b.run();
  const RunResult ra = a.result(), rb = b.result();
  EXPECT_EQ(ra.elements_added, rb.elements_added);
  EXPECT_EQ(ra.elements_committed, rb.elements_committed);
  EXPECT_EQ(ra.epochs, rb.epochs);
  EXPECT_EQ(ra.blocks, rb.blocks);
  EXPECT_EQ(ra.events, rb.events);
  EXPECT_DOUBLE_EQ(ra.sim_seconds, rb.sim_seconds);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, EndToEnd,
                         ::testing::Values(Algorithm::kVanilla,
                                           Algorithm::kCompresschain,
                                           Algorithm::kHashchain),
                         [](const auto& param_info) {
                           return algorithm_name(param_info.param);
                         });

// ----------------------------------------------------- full-fidelity (small)

TEST(FullFidelity, HashchainEndToEndWithRealCrypto) {
  Scenario s = base_scenario(Algorithm::kHashchain);
  s.fidelity = core::Fidelity::kFull;
  s.sending_rate = 40;  // real Ed25519 signing is costly on the host
  s.add_duration = sim::from_seconds(3);
  Experiment e(s);
  e.run();
  const RunResult r = e.result();
  EXPECT_EQ(r.elements_committed, r.elements_added);
  EXPECT_GT(r.elements_added, 100u);

  const auto servers = e.correct_servers();
  const auto safety = core::check_safety(servers);
  EXPECT_TRUE(safety.ok()) << safety.to_string();
  const auto live = core::check_liveness_quiescent(servers, e.accepted_valid_ids(),
                                                   e.params(), e.pki());
  EXPECT_TRUE(live.ok()) << live.to_string();

  // Light-client workflow (§2): verify one element against ONE server.
  const auto id = e.accepted_valid_ids().front();
  const auto v = core::SetchainClient::verify(e.server(2), id, e.pki(), e.params());
  EXPECT_TRUE(v.in_the_set);
  EXPECT_TRUE(v.in_epoch);
  EXPECT_TRUE(v.committed);
  EXPECT_GE(v.valid_proofs, e.params().f + 1);
}

TEST(FullFidelity, VanillaEndToEndWithRealCrypto) {
  Scenario s = base_scenario(Algorithm::kVanilla);
  s.fidelity = core::Fidelity::kFull;
  s.sending_rate = 40;
  s.add_duration = sim::from_seconds(3);
  Experiment e(s);
  e.run();
  EXPECT_EQ(e.result().elements_committed, e.result().elements_added);
}

TEST(FullFidelity, CompresschainEndToEndWithRealCrypto) {
  Scenario s = base_scenario(Algorithm::kCompresschain);
  s.fidelity = core::Fidelity::kFull;
  s.sending_rate = 40;
  s.add_duration = sim::from_seconds(3);
  Experiment e(s);
  e.run();
  EXPECT_EQ(e.result().elements_committed, e.result().elements_added);
}

// ------------------------------------------------------------ latency stages

TEST(LatencyStages, OrderedAndBounded) {
  Scenario s = base_scenario(Algorithm::kCompresschain);
  s.per_element_metrics = true;
  s.sending_rate = 125;  // paper's Fig. 4 scenario scaled to n=4
  Experiment e(s);
  e.run();
  auto& rec = e.recorder();
  const auto first = rec.stage_latencies(metrics::Stage::kMempoolFirst);
  const auto quorum = rec.stage_latencies(metrics::Stage::kMempoolQuorum);
  const auto all = rec.stage_latencies(metrics::Stage::kMempoolAll);
  const auto ledger = rec.stage_latencies(metrics::Stage::kLedger);
  const auto committed = rec.stage_latencies(metrics::Stage::kCommitted);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(committed.empty());
  // Stage medians must be monotone along the pipeline.
  const auto med = [](std::vector<double> v) { return metrics::percentile(v, 0.5); };
  EXPECT_LE(med(first), med(quorum));
  EXPECT_LE(med(quorum), med(all));
  EXPECT_LE(med(all), med(ledger) + 1e-9);
  EXPECT_LE(med(ledger), med(committed));
  // Paper: commit latency below ~4 s for the batch algorithms at low rate.
  EXPECT_LT(med(committed), 6.0);
}

// ------------------------------------------------------------- stress shapes

TEST(StressShapes, VanillaSaturatesWhereHashchainCopes) {
  Scenario v = base_scenario(Algorithm::kVanilla);
  v.sending_rate = 2000;
  v.add_duration = sim::from_seconds(50);  // the paper's 50 s add window
  v.horizon = sim::from_seconds(200);
  v.track_ids = false;
  const RunResult rv = run_scenario(v);

  Scenario h = v;
  h.algorithm = Algorithm::kHashchain;
  h.collector_limit = 100;
  const RunResult rh = run_scenario(h);

  // Vanilla's ledger-bound throughput (~1k el/s at n=4) cannot keep up with
  // 2000 el/s; Hashchain finishes comfortably (Fig. 1 shape).
  EXPECT_LT(rv.efficiency_50, 0.75);
  EXPECT_GT(rh.efficiency_50, 0.9);
  EXPECT_DOUBLE_EQ(rh.efficiency_100, 1.0);
}

TEST(StressShapes, NetworkDelayReducesEfficiency) {
  Scenario fast = base_scenario(Algorithm::kCompresschain);
  fast.sending_rate = 1000;
  fast.add_duration = sim::from_seconds(20);
  fast.track_ids = false;
  Scenario slow = fast;
  slow.network_delay = sim::from_millis(100);
  const RunResult rf = run_scenario(fast);
  const RunResult rs = run_scenario(slow);
  EXPECT_LE(rs.efficiency_50, rf.efficiency_50 + 1e-9);
  // Both finish eventually (the delay hurts latency, not safety/liveness).
  EXPECT_EQ(rs.elements_committed, rs.elements_added);
}

// ------------------------------------------------------- ledger fault cases

TEST(LedgerFaults, SilentProposerDoesNotStopCommits) {
  Scenario s = base_scenario(Algorithm::kHashchain);
  s.byz_silent_proposers = {1};
  s.horizon = sim::from_seconds(240);
  Experiment e(s);
  e.run();
  const RunResult r = e.result();
  EXPECT_EQ(r.elements_committed, r.elements_added);
}

TEST(LedgerFaults, HashchainSurvivesBatchRefusal) {
  Scenario s = base_scenario(Algorithm::kHashchain);
  s.byz_refuse_batch = {3};
  s.horizon = sim::from_seconds(240);
  s.track_ids = false;
  Experiment e(s);
  e.run();
  const RunResult r = e.result();
  // Elements added via the refusing server are not guaranteed (its batches
  // cannot be retrieved); everything else must commit. 4 equal-rate clients
  // -> at least ~3/4 of elements commit.
  EXPECT_GE(static_cast<double>(r.elements_committed),
            0.70 * static_cast<double>(r.elements_added));
  const auto servers = e.correct_servers();
  const auto safety = core::check_safety(servers);
  EXPECT_TRUE(safety.ok()) << safety.to_string();
}

TEST(LedgerFaults, CorruptProofServerDoesNotBlockCommit) {
  Scenario s = base_scenario(Algorithm::kCompresschain);
  s.byz_corrupt_proofs = {2};
  Experiment e(s);
  e.run();
  const RunResult r = e.result();
  EXPECT_EQ(r.elements_committed, r.elements_added);
}

TEST(LedgerFaults, ByzantineClientsInvalidElementsFiltered) {
  Scenario s = base_scenario(Algorithm::kHashchain);
  s.client_invalid_fraction = 0.3;
  Experiment e(s);
  e.run();
  const RunResult r = e.result();
  // Added counts only accepted (valid) elements; all of them commit.
  EXPECT_EQ(r.elements_committed, r.elements_added);
  std::uint64_t rejected = 0;
  for (std::uint32_t i = 0; i < 4; ++i) rejected += e.client(i).rejected();
  EXPECT_GT(rejected, 0u);
}

// ------------------------------------------------------------- client rates

TEST(Clients, RateControlProducesExpectedVolume) {
  Scenario s = base_scenario(Algorithm::kHashchain);
  s.sending_rate = 400;  // 100 el/s per client over 5 s => ~500 each
  Experiment e(s);
  e.run();
  for (std::uint32_t i = 0; i < s.n; ++i) {
    EXPECT_NEAR(static_cast<double>(e.client(i).added()), 500.0, 5.0) << i;
  }
}

TEST(Clients, DuplicateToAllStillCountsOnce) {
  Scenario s = base_scenario(Algorithm::kCompresschain);
  s.clients_duplicate_to_all = true;
  s.sending_rate = 100;
  Experiment e(s);
  e.run();
  const RunResult r = e.result();
  // Every element accepted somewhere commits exactly once despite being
  // submitted to all four servers.
  EXPECT_EQ(r.elements_committed, r.elements_added);
  const auto safety = core::check_safety(e.correct_servers());
  EXPECT_TRUE(safety.ok()) << safety.to_string();
}

TEST(Clients, CommitTimesAreMonotoneInFraction) {
  Scenario s = base_scenario(Algorithm::kHashchain);
  Experiment e(s);
  e.run();
  double prev = 0.0;
  for (double f = 0.1; f <= 0.51; f += 0.1) {
    const auto t = e.recorder().commit_time_of_fraction(f);
    ASSERT_TRUE(t.has_value()) << f;
    EXPECT_GE(*t, prev);
    prev = *t;
  }
}

// ------------------------------------------------------- parallel sweeps

TEST(ParallelMap, PreservesOrderAndValues) {
  const auto out = parallel_map<int>(100, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(ParallelMap, PropagatesExceptions) {
  EXPECT_THROW(parallel_map<int>(16,
                                 [](std::size_t i) -> int {
                                   if (i == 7) throw std::runtime_error("boom");
                                   return 0;
                                 }),
               std::runtime_error);
}

TEST(ParallelMap, ConcurrentExperimentsMatchSequential) {
  // Two simulations running on different threads must produce exactly the
  // results they produce sequentially (full isolation of Experiment state).
  std::vector<Scenario> scenarios;
  for (int i = 0; i < 4; ++i) {
    Scenario s = base_scenario(i % 2 ? Algorithm::kHashchain
                                     : Algorithm::kCompresschain);
    s.sending_rate = 100 + 40 * i;
    s.track_ids = false;
    scenarios.push_back(s);
  }
  const auto parallel = parallel_map<RunResult>(
      scenarios.size(), [&](std::size_t i) { return run_scenario(scenarios[i]); }, 2);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const RunResult seq = run_scenario(scenarios[i]);
    EXPECT_EQ(parallel[i].elements_added, seq.elements_added) << i;
    EXPECT_EQ(parallel[i].elements_committed, seq.elements_committed) << i;
    EXPECT_EQ(parallel[i].events, seq.events) << i;
  }
}

// ------------------------------------------------------- committee variant

TEST(Committee, EndToEndCommitsEverything) {
  Scenario s = base_scenario(Algorithm::kHashchain);
  s.n = 7;
  s.hashchain_committee = 5;  // 2f+1 with f=2
  Experiment e(s);
  e.run();
  const RunResult r = e.result();
  EXPECT_EQ(r.elements_committed, r.elements_added);
  const auto safety = core::check_safety(e.correct_servers());
  EXPECT_TRUE(safety.ok()) << safety.to_string();
}

// ----------------------------------------------------------- scale sanity

TEST(ScaleSanity, TenServersCalibratedRun) {
  Scenario s = base_scenario(Algorithm::kHashchain);
  s.n = 10;
  s.sending_rate = 1000;
  s.add_duration = sim::from_seconds(10);
  s.collector_limit = 100;
  s.track_ids = false;
  const RunResult r = run_scenario(s);
  EXPECT_EQ(r.elements_committed, r.elements_added);
  EXPECT_GT(r.elements_added, 9000u);
}

}  // namespace
}  // namespace setchain::runner
