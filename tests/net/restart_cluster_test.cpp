// Durable restart of a live 4-node TCP cluster: every node runs with a data
// directory, gets killed hard (pump stopped, sockets closed, host object
// DESTROYED — all in-memory state gone), and is rebooted from disk through
// NodeHost::recover(). The rolling test restarts each node in turn while the
// others keep serving; the whole-quorum test kills all four at once — the
// case no amount of peer catch-up can pass, only durable storage can.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "api/quorum_client.hpp"
#include "net/remote_node.hpp"
#include "net/tcp.hpp"
#include "net_fixture.hpp"
#include "storage/storage.hpp"

namespace setchain::net {
namespace {

using namespace setchain::net::testing;
using namespace std::chrono_literals;

struct DurableCluster {
  static NodeHostConfig make_config(runner::Algorithm algo,
                                    runner::LedgerMode mode,
                                    std::uint64_t snapshot_epochs) {
    NodeHostConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.algorithm = algo;
    cfg.seed = 42;
    cfg.collector_limit = 6;
    cfg.collector_timeout = sim::from_millis(100);
    cfg.block_interval = sim::from_millis(80);
    cfg.sync_interval = sim::from_millis(200);
    cfg.ledger_mode = mode;
    cfg.snapshot_epochs = snapshot_epochs;
    if (mode == runner::LedgerMode::kConsensus) {
      cfg.timeout_propose = sim::from_millis(800);
      cfg.retry_interval = sim::from_millis(200);
    }
    return cfg;
  }

  NodeHostConfig cfg;
  std::string root;  ///< temp data root; node i persists in root/node<i>
  std::vector<std::string> peer_addrs;
  std::vector<std::uint16_t> ports;
  std::vector<std::unique_ptr<storage::Storage>> stores;
  std::vector<std::unique_ptr<sim::Simulation>> sims;
  std::vector<std::unique_ptr<TcpTransport>> transports;
  std::vector<std::unique_ptr<NodeHost>> hosts;
  std::vector<std::thread> pumps;
  std::vector<std::unique_ptr<std::atomic<bool>>> stops;
  /// Ledger height right after recover(), BEFORE the pump starts — the only
  /// race-free read of a live node's height the test thread gets.
  std::vector<std::uint64_t> recovered_height;
  bool stopped = false;
  crypto::Pki pki;

  DurableCluster(runner::Algorithm algo, runner::LedgerMode mode,
                 std::uint64_t snapshot_epochs)
      : cfg(make_config(algo, mode, snapshot_epochs)), pki(cfg.seed) {
    for (crypto::ProcessId p = 0; p < cfg.n + cfg.client_slots; ++p) {
      pki.register_process(p);
    }
    char tmpl[] = "/tmp/setchain_restart_XXXXXX";
    root = ::mkdtemp(tmpl);

    stores.resize(cfg.n);
    sims.resize(cfg.n);
    transports.resize(cfg.n);
    hosts.resize(cfg.n);
    pumps.resize(cfg.n);
    recovered_height.resize(cfg.n, 0);
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      stops.push_back(std::make_unique<std::atomic<bool>>(false));
    }

    // First boot binds ephemeral ports in id order; restarts re-bind the
    // SAME port (SO_REUSEADDR), so peers and clients redial successfully.
    const std::uint64_t cluster = NodeHost::cluster_id_of(cfg);
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      TcpConfig tc;
      tc.self = i;
      tc.n = cfg.n;
      tc.cluster = cluster;
      tc.listen_port = 0;
      tc.peers = peer_addrs;  // ids 0..i-1: exactly the dial targets
      tc.peers.resize(cfg.n);
      transports[i] = std::make_unique<TcpTransport>(tc);
      ports.push_back(transports[i]->listen_port());
      peer_addrs.push_back("127.0.0.1:" + std::to_string(ports[i]));
    }
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      open_storage(i);
      make_host(i);
      run_node(i);
    }
  }

  void open_storage(std::uint32_t i) {
    storage::StorageConfig sc;
    sc.dir = root + "/node" + std::to_string(i);
    // In-process "SIGKILL" never loses the page cache, so kOff keeps the
    // suite fast without weakening what the test proves (state survives the
    // death of every in-memory object, not a power cut).
    sc.fsync = storage::FsyncMode::kOff;
    std::string err;
    stores[i] = storage::Storage::open(sc, &err);
    ASSERT_NE(stores[i], nullptr) << err;
  }

  void make_host(std::uint32_t i) {
    NodeHostConfig c = cfg;
    c.id = i;
    sims[i] = std::make_unique<sim::Simulation>();
    hosts[i] = std::make_unique<NodeHost>(c, *sims[i], *transports[i],
                                          stores[i].get());
    std::string err;
    ASSERT_TRUE(hosts[i]->recover(&err)) << "node " << i << ": " << err;
    recovered_height[i] = hosts[i]->ledger().height();
  }

  void run_node(std::uint32_t i) {
    hosts[i]->start();
    transports[i]->start();
    stops[i]->store(false);
    std::atomic<bool>* stop = stops[i].get();
    pumps[i] = std::thread([this, i, stop] { hosts[i]->run_realtime(*stop); });
  }

  /// Hard kill: pump stopped, sockets closed, and — unlike the plain
  /// tcp_cluster_test kill — the host, ledger, server, simulation and
  /// storage objects are all destroyed. Nothing survives but the data dir.
  /// Returns the ledger height at death (read after the pump joined, so
  /// it is race-free).
  std::uint64_t kill_node(std::uint32_t i) {
    if (!stops[i]->exchange(true) && pumps[i].joinable()) pumps[i].join();
    const std::uint64_t h = hosts[i]->ledger().height();
    transports[i]->stop();
    hosts[i].reset();
    transports[i].reset();
    sims[i].reset();
    stores[i].reset();
    return h;
  }

  /// Reboot a killed node from its data directory, on its original port.
  void restart_node(std::uint32_t i) {
    TcpConfig tc;
    tc.self = i;
    tc.n = cfg.n;
    tc.cluster = NodeHost::cluster_id_of(cfg);
    tc.listen_host = "127.0.0.1";
    tc.listen_port = ports[i];
    tc.peers = peer_addrs;
    transports[i] = std::make_unique<TcpTransport>(tc);
    open_storage(i);
    make_host(i);
    if (::testing::Test::HasFatalFailure()) return;
    run_node(i);
  }

  void shutdown() {
    if (stopped) return;
    stopped = true;
    for (auto& s : stops) s->store(true);
    for (auto& t : pumps) {
      if (t.joinable()) t.join();
    }
    for (auto& t : transports) {
      if (t != nullptr) t->stop();
    }
  }

  ~DurableCluster() {
    shutdown();
    if (!root.empty()) {
      const std::string cmd = "rm -rf '" + root + "'";
      (void)std::system(cmd.c_str());
    }
  }

  api::QuorumClient client(std::vector<std::unique_ptr<RemoteNode>>& stubs) {
    const std::uint64_t cluster = NodeHost::cluster_id_of(cfg);
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      TcpRpcChannel::Config ch;
      ch.host = "127.0.0.1";
      ch.port = ports[i];
      ch.client_id = cfg.n;
      ch.cluster = cluster;
      stubs.push_back(std::make_unique<RemoteNode>(
          std::make_unique<TcpRpcChannel>(ch), i, 3000ms));
    }
    return api::make_quorum_client(stubs, pki, cfg.f, core::Fidelity::kFull,
                                   api::WritePolicy::kAll);
  }

  std::vector<const core::SetchainServer*> servers() const {
    std::vector<const core::SetchainServer*> out;
    for (const auto& h : hosts) out.push_back(&h->server());
    return out;
  }
};

bool wait_until(const std::function<bool()>& pred,
                std::chrono::seconds budget = 60s) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(100ms);
  }
  return pred();
}

void add_all(api::QuorumClient& client, const std::vector<core::Element>& elements,
             std::size_t begin, std::size_t end,
             std::vector<core::ElementId>& accepted) {
  for (std::size_t i = begin; i < end; ++i) {
    const auto r = client.add(elements[i]);
    EXPECT_TRUE(r.ok) << "add refused everywhere for " << elements[i].id;
    if (r.ok) accepted.push_back(elements[i].id);
  }
}

bool view_covers(api::QuorumClient& client,
                 const std::vector<core::ElementId>& accepted) {
  const auto view = client.get();
  for (const auto id : accepted) {
    if (!view.the_set.contains(id)) return false;
  }
  return view.epoch > 0;
}

// Each node of a live cluster is killed (object graph destroyed) and
// rebooted from its data directory in turn, mid-workload, sequencer
// included. The cluster must end fully converged with the consolidated set
// of a never-crashed reference run.
TEST(RestartCluster, RollingRestartEveryNode) {
  DurableCluster cl(runner::Algorithm::kHashchain,
                    runner::LedgerMode::kFixedSequencer,
                    /*snapshot_epochs=*/2);
  if (::testing::Test::HasFatalFailure()) return;

  const auto elements = make_workload(cl.cfg, 24, cl.pki);
  std::vector<core::ElementId> accepted;

  for (std::uint32_t round = 0; round < cl.cfg.n; ++round) {
    // A fresh client per phase: the previous one may hold channels into a
    // node that has since been rebooted (they would heal, but fresh stubs
    // make each phase's adds deterministic).
    std::vector<std::unique_ptr<RemoteNode>> stubs;
    api::QuorumClient client = cl.client(stubs);
    add_all(client, elements, round * 6, (round + 1) * 6, accepted);
    ASSERT_TRUE(wait_until([&] { return view_covers(client, accepted); }))
        << "round " << round << " never converged";
    // Commit this phase's epoch proofs before killing: a node dying with
    // its own proof tx in flight loses it for good (its retransmission
    // state is volatile), and successive rounds could push one epoch
    // below the f+1 the final drain check demands.
    ASSERT_TRUE(wait_until([&] {
      const auto view = client.get();
      for (auto& stub : stubs) {
        for (std::uint64_t e = 1; e <= view.epoch; ++e) {
          if (stub->proofs_for_epoch(e).size() < cl.cfg.f + 1) return false;
        }
      }
      return true;
    })) << "round " << round << " proofs never drained";

    const std::uint64_t h_pre = cl.kill_node(round);
    cl.restart_node(round);
    if (::testing::Test::HasFatalFailure()) return;
    // The reboot resumed from disk, not from height 0, and recovered
    // exactly what the dead process had applied.
    EXPECT_GT(cl.recovered_height[round], 0u) << "node " << round;
    EXPECT_EQ(cl.recovered_height[round], h_pre) << "node " << round;
  }

  // Tail of the workload with everyone alive, then full-drain convergence:
  // quorum view covers everything and every node serves f+1 proofs for
  // every agreed epoch.
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  ASSERT_EQ(accepted.size(), elements.size());
  ASSERT_TRUE(wait_until([&] { return view_covers(client, accepted); }))
      << "cluster never converged after the last reboot";
  ASSERT_TRUE(wait_until([&] {
    const auto view = client.get();
    for (auto& stub : stubs) {
      for (std::uint64_t e = 1; e <= view.epoch; ++e) {
        if (stub->proofs_for_epoch(e).size() < cl.cfg.f + 1) return false;
      }
    }
    return true;
  })) << "epoch proofs never drained to every node";

  const auto verdict = client.verify(accepted.front());
  EXPECT_TRUE(verdict.committed);
  EXPECT_GE(verdict.valid_proofs, cl.cfg.f + 1);

  cl.shutdown();
  const ReferenceRun reference = run_reference(cl.cfg, elements);
  std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
  assert_cluster_matches_reference(cl.servers(), accepted, created,
                                   cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                   reference, "hashchain/rolling-restart");
}

// The whole quorum dies at once — every host object destroyed — and reboots
// from disk. Without durable storage the first workload half would be gone
// (no surviving peer to sync from); with it, the rebooted cluster must
// still serve the old elements, accept new ones, and match the
// never-crashed reference. Also pins down tail-only replay: with a
// 1-epoch snapshot cadence, recovery must replay strictly fewer WAL blocks
// than the chain height.
TEST(RestartCluster, WholeQuorumRestart) {
  DurableCluster cl(runner::Algorithm::kHashchain,
                    runner::LedgerMode::kFixedSequencer,
                    /*snapshot_epochs=*/1);
  if (::testing::Test::HasFatalFailure()) return;

  const auto elements = make_workload(cl.cfg, 24, cl.pki);
  std::vector<core::ElementId> accepted;

  {
    std::vector<std::unique_ptr<RemoteNode>> stubs;
    api::QuorumClient client = cl.client(stubs);
    add_all(client, elements, 0, 12, accepted);
    ASSERT_TRUE(wait_until([&] { return view_covers(client, accepted); }))
        << "pre-kill workload never converged";
    // Drain epoch proofs to the ledger BEFORE the kill. A whole-quorum
    // simultaneous crash is outside the paper's ≤f fault model: every
    // node's in-flight proof tx (and its retransmission state) dies at
    // once, so an epoch caught mid-publish could stay below f+1 proofs
    // forever. Committed proofs are in the WAL and survive.
    ASSERT_TRUE(wait_until([&] {
      const auto view = client.get();
      for (auto& stub : stubs) {
        for (std::uint64_t e = 1; e <= view.epoch; ++e) {
          if (stub->proofs_for_epoch(e).size() < cl.cfg.f + 1) return false;
        }
      }
      return true;
    })) << "pre-kill epoch proofs never drained to every node";
  }
  // Every node must have compacted at least once before the kill, so the
  // recovery-counter assertions below measure snapshot + tail replay and
  // not a full-log replay that happens to pass. Polled via the filesystem
  // (list_snapshots is a pure directory scan) — reading the live Storage
  // counters from the test thread would race with the pump.
  ASSERT_TRUE(wait_until([&] {
    for (std::uint32_t i = 0; i < cl.cfg.n; ++i) {
      const auto snaps =
          storage::list_snapshots(cl.root + "/node" + std::to_string(i));
      if (snaps.empty()) return false;
    }
    return true;
  })) << "snapshot cadence never fired on every node";

  std::vector<std::uint64_t> h_pre(cl.cfg.n);
  for (std::uint32_t i = 0; i < cl.cfg.n; ++i) h_pre[i] = cl.kill_node(i);
  for (std::uint32_t i = 0; i < cl.cfg.n; ++i) {
    cl.restart_node(i);
    if (::testing::Test::HasFatalFailure()) return;
  }

  for (std::uint32_t i = 0; i < cl.cfg.n; ++i) {
    const storage::RecoveryStats* r = cl.hosts[i]->recovery();
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->snapshot_loaded) << "node " << i;
    EXPECT_GT(r->snapshot_height, 0u) << "node " << i;
    // Tail-only replay: the snapshot covered a prefix, the WAL only the gap.
    EXPECT_LT(r->wal_blocks_replayed, h_pre[i]) << "node " << i;
    EXPECT_EQ(r->snapshot_height + r->wal_blocks_replayed,
              cl.recovered_height[i])
        << "node " << i;
    EXPECT_EQ(cl.recovered_height[i], h_pre[i]) << "node " << i;
  }

  // The rebooted cluster still holds the pre-kill workload (nothing but the
  // data dirs survived) and accepts the second half.
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  ASSERT_TRUE(wait_until([&] { return view_covers(client, accepted); }))
      << "rebooted cluster lost the pre-kill workload";
  add_all(client, elements, 12, 24, accepted);
  ASSERT_EQ(accepted.size(), elements.size());
  ASSERT_TRUE(wait_until([&] { return view_covers(client, accepted); }))
      << "rebooted cluster never consolidated the post-restart workload";
  ASSERT_TRUE(wait_until([&] {
    const auto view = client.get();
    for (auto& stub : stubs) {
      for (std::uint64_t e = 1; e <= view.epoch; ++e) {
        if (stub->proofs_for_epoch(e).size() < cl.cfg.f + 1) return false;
      }
    }
    return true;
  })) << "epoch proofs never drained to every node";

  const auto verdict = client.verify(accepted.front());
  EXPECT_TRUE(verdict.committed);
  EXPECT_GE(verdict.valid_proofs, cl.cfg.f + 1);

  cl.shutdown();
  const ReferenceRun reference = run_reference(cl.cfg, elements);
  std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
  assert_cluster_matches_reference(cl.servers(), accepted, created,
                                   cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                   reference, "hashchain/whole-quorum-restart");
}

// Consensus-mode durability: the voting ledger archives committed proposal
// payloads; a whole-quorum restart must resume from the recovered height
// and keep committing (round state is volatile by design — only committed
// blocks persist).
TEST(RestartCluster, ConsensusWholeQuorumRestart) {
  DurableCluster cl(runner::Algorithm::kVanilla, runner::LedgerMode::kConsensus,
                    /*snapshot_epochs=*/1);
  if (::testing::Test::HasFatalFailure()) return;

  const auto elements = make_workload(cl.cfg, 16, cl.pki);
  std::vector<core::ElementId> accepted;
  {
    std::vector<std::unique_ptr<RemoteNode>> stubs;
    api::QuorumClient client = cl.client(stubs);
    add_all(client, elements, 0, 8, accepted);
    ASSERT_TRUE(wait_until([&] { return view_covers(client, accepted); }))
        << "pre-kill workload never converged";
    // Same rationale as WholeQuorumRestart: commit every epoch's proofs
    // before the all-node kill so none are lost beyond the f bound.
    ASSERT_TRUE(wait_until([&] {
      const auto view = client.get();
      for (auto& stub : stubs) {
        for (std::uint64_t e = 1; e <= view.epoch; ++e) {
          if (stub->proofs_for_epoch(e).size() < cl.cfg.f + 1) return false;
        }
      }
      return true;
    })) << "pre-kill epoch proofs never drained to every node";
  }

  std::vector<std::uint64_t> h_pre(cl.cfg.n);
  for (std::uint32_t i = 0; i < cl.cfg.n; ++i) h_pre[i] = cl.kill_node(i);
  for (std::uint32_t i = 0; i < cl.cfg.n; ++i) {
    cl.restart_node(i);
    if (::testing::Test::HasFatalFailure()) return;
    EXPECT_EQ(cl.recovered_height[i], h_pre[i]) << "node " << i;
    EXPECT_GT(cl.recovered_height[i], 0u) << "node " << i;
  }

  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  ASSERT_TRUE(wait_until([&] { return view_covers(client, accepted); }))
      << "rebooted consensus cluster lost the pre-kill workload";
  add_all(client, elements, 8, 16, accepted);
  ASSERT_EQ(accepted.size(), elements.size());
  ASSERT_TRUE(wait_until([&] { return view_covers(client, accepted); }, 90s))
      << "rebooted consensus cluster never committed new work";
  ASSERT_TRUE(wait_until([&] {
    const auto view = client.get();
    for (auto& stub : stubs) {
      for (std::uint64_t e = 1; e <= view.epoch; ++e) {
        if (stub->proofs_for_epoch(e).size() < cl.cfg.f + 1) return false;
      }
    }
    return true;
  })) << "epoch proofs never drained to every node";

  cl.shutdown();
  const ReferenceRun reference = run_reference(cl.cfg, elements);
  std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
  assert_cluster_matches_reference(cl.servers(), accepted, created,
                                   cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                   reference, "vanilla/consensus-restart");
}

}  // namespace
}  // namespace setchain::net
