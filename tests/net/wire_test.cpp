// Wire-codec robustness: per-frame round-trip property tests plus
// malformed-input rejection (truncated at every byte, oversized length
// prefix, bad magic/version/type, trailing garbage) — the codec must be
// total over untrusted bytes, with no crashes under ASan/UBSan.
#include <gtest/gtest.h>

#include "core/batch.hpp"
#include "net/wire.hpp"
#include "sim/rng.hpp"

namespace setchain::net::wire {
namespace {

using codec::Bytes;
using codec::ByteView;

core::Element make_element(crypto::Pki& pki, crypto::ProcessId client,
                           std::uint64_t seq, std::size_t payload_bytes) {
  core::Element e;
  e.id = core::make_element_id(client, seq);
  e.client = client;
  e.payload.resize(payload_bytes);
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    e.payload[i] = static_cast<std::uint8_t>(i * 31 + seq);
  }
  codec::Writer w;
  w.u64le(e.id);
  w.bytes(e.payload);
  e.sig = pki.sign(client, w.buffer());
  e.wire_size = static_cast<std::uint32_t>(core::kElementOverhead + payload_bytes);
  return e;
}

core::EpochProof make_proof(crypto::Pki& pki, std::uint64_t epoch,
                            crypto::ProcessId server) {
  core::EpochHash h{};
  for (std::size_t i = 0; i < h.size(); ++i) {
    h[i] = static_cast<std::uint8_t>(epoch * 7 + i);
  }
  return core::make_epoch_proof(pki, server, epoch, h, core::Fidelity::kFull);
}

// ---------------------------------------------------------------- framing

TEST(WireFraming, RoundTripAndHeaderLayout) {
  const Bytes payload = {1, 2, 3, 4, 5};
  const Bytes frame = encode_frame(MsgType::kEpochRequest, payload);
  ASSERT_EQ(frame.size(), kHeaderSize + payload.size());
  // Pinned header bytes (docs/WIRE_FORMAT.md): magic, version, type, length.
  EXPECT_EQ(frame[0], 'S');
  EXPECT_EQ(frame[1], 'E');
  EXPECT_EQ(frame[2], 'T');
  EXPECT_EQ(frame[3], 'C');
  EXPECT_EQ(frame[4], kVersion);
  EXPECT_EQ(frame[5], static_cast<std::uint8_t>(MsgType::kEpochRequest));
  EXPECT_EQ(codec::read_u32le(ByteView(frame).subspan(6, 4)), payload.size());

  Frame out;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(frame, out, consumed), DecodeStatus::kOk);
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.type, MsgType::kEpochRequest);
  EXPECT_EQ(out.payload, payload);
}

TEST(WireFraming, TruncatedAtEveryByteNeedsMore) {
  const Bytes frame = encode_frame(MsgType::kBlock, Bytes(37, 0xAB));
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    Frame out;
    std::size_t consumed = 99;
    const auto s = decode_frame(ByteView(frame).first(cut), out, consumed);
    EXPECT_EQ(s, DecodeStatus::kNeedMore) << "cut=" << cut;
    EXPECT_EQ(consumed, 0u) << "cut=" << cut;
  }
}

TEST(WireFraming, RejectsBadMagicVersionTypeAndOversizedLength) {
  const Bytes good = encode_frame(MsgType::kHello, Bytes{0, 1, 0, 0, 0, 0, 0, 0, 0, 0});
  Frame out;
  std::size_t consumed = 0;

  Bytes bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(decode_frame(bad_magic, out, consumed), DecodeStatus::kBadMagic);

  Bytes bad_version = good;
  bad_version[4] = 99;
  EXPECT_EQ(decode_frame(bad_version, out, consumed), DecodeStatus::kBadVersion);

  Bytes bad_type = good;
  bad_type[5] = 0xEE;
  EXPECT_EQ(decode_frame(bad_type, out, consumed), DecodeStatus::kBadType);

  // Oversized length prefix: rejected BEFORE any allocation/wait for bytes.
  Bytes oversized = good;
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxPayloadBytes) + 1;
  oversized[6] = static_cast<std::uint8_t>(huge);
  oversized[7] = static_cast<std::uint8_t>(huge >> 8);
  oversized[8] = static_cast<std::uint8_t>(huge >> 16);
  oversized[9] = static_cast<std::uint8_t>(huge >> 24);
  EXPECT_EQ(decode_frame(oversized, out, consumed), DecodeStatus::kOversized);

  // The encoder refuses to build an over-cap frame at all.
  EXPECT_TRUE(encode_frame(MsgType::kBlock, Bytes(kMaxPayloadBytes + 1, 0)).empty());
}

TEST(WireFraming, StreamReaderReassemblesSplitFramesAndSticksOnError) {
  const Bytes f1 = encode_frame(MsgType::kEpochRequest, encode_epoch_request({7}));
  const Bytes f2 = encode_frame(MsgType::kSnapshotRequest, encode_snapshot_request({8}));
  Bytes stream = f1;
  codec::append(stream, f2);

  // Feed one byte at a time: every frame must come out exactly once.
  FrameReader r;
  std::vector<Frame> got;
  for (const auto b : stream) {
    r.feed(ByteView(&b, 1));
    Frame f;
    while (r.next(f) == DecodeStatus::kOk) got.push_back(f);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, MsgType::kEpochRequest);
  EXPECT_EQ(got[1].type, MsgType::kSnapshotRequest);

  // Garbage mid-stream is fatal and sticky (TCP streams cannot resync).
  FrameReader bad;
  bad.feed(codec::to_bytes("not a setchain frame"));
  Frame f;
  EXPECT_EQ(bad.next(f), DecodeStatus::kBadMagic);
  bad.feed(f1);
  EXPECT_EQ(bad.next(f), DecodeStatus::kBadMagic);
  EXPECT_TRUE(bad.failed());
}

// ---------------------------------------------------------------- payloads

TEST(WirePayloads, HelloRoundTripAndBadRole) {
  const Hello h{kRoleClient, 12345, 0xDEADBEEFCAFEF00DULL};
  const auto parsed = parse_hello(encode_hello(h));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->role, h.role);
  EXPECT_EQ(parsed->sender, h.sender);
  EXPECT_EQ(parsed->cluster, h.cluster);

  Bytes bad = encode_hello(h);
  bad[0] = 7;  // role out of range
  EXPECT_FALSE(parse_hello(bad).has_value());
}

TEST(WirePayloads, AddRequestResponseRoundTrip) {
  crypto::Pki pki(7);
  pki.register_process(42);
  AddRequest req;
  req.req_id = 991;
  req.element = make_element(pki, 42, 5, 113);
  const auto parsed = parse_add_request(encode_add_request(req));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->req_id, req.req_id);
  EXPECT_EQ(parsed->element.id, req.element.id);
  EXPECT_EQ(parsed->element.payload, req.element.payload);
  EXPECT_EQ(parsed->element.sig, req.element.sig);
  // The parsed element must still verify: the signature survived the trip.
  EXPECT_TRUE(core::valid_element(parsed->element, pki, core::Fidelity::kFull));

  for (const bool accepted : {false, true}) {
    const auto r = parse_add_response(encode_add_response({17, accepted}));
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->req_id, 17u);
    EXPECT_EQ(r->accepted, accepted);
  }
  EXPECT_FALSE(parse_add_response(Bytes{17, 2}).has_value());  // bool out of range
}

TEST(WirePayloads, SnapshotResponseRoundTripSortedDeltas) {
  SnapshotResponse m;
  m.req_id = 3;
  m.epoch = 2;
  for (std::uint64_t n = 1; n <= 2; ++n) {
    core::EpochRecord rec;
    rec.number = n;
    rec.ids = {n * 100, n * 100 + 1, n * 100 + 77};
    rec.count = rec.ids.size();
    rec.bytes = 4096 * n;
    for (std::size_t i = 0; i < rec.hash.size(); ++i) {
      rec.hash[i] = static_cast<std::uint8_t>(n + i);
    }
    m.history.push_back(rec);
  }
  m.the_set = {100, 101, 177, 200, 201, 277, 999};

  const auto parsed = parse_snapshot_response(encode_snapshot_response(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->req_id, m.req_id);
  EXPECT_EQ(parsed->epoch, m.epoch);
  ASSERT_EQ(parsed->history.size(), m.history.size());
  for (std::size_t i = 0; i < m.history.size(); ++i) {
    EXPECT_EQ(parsed->history[i].number, m.history[i].number);
    EXPECT_EQ(parsed->history[i].ids, m.history[i].ids);
    EXPECT_EQ(parsed->history[i].count, m.history[i].count);
    EXPECT_EQ(parsed->history[i].bytes, m.history[i].bytes);
    EXPECT_EQ(parsed->history[i].hash, m.history[i].hash);
  }
  EXPECT_EQ(parsed->the_set, m.the_set);
}

TEST(WirePayloads, SnapshotRejectsDuplicateIdsAndWraparound) {
  // Hand-build an id list with delta 0 (a duplicate id smuggled past set
  // logic) — the parser must refuse.
  codec::Writer w;
  w.varint(1).varint(0).varint(0);  // req, epoch, history count
  w.varint(2).varint(5).varint(0);  // the_set: 2 ids, first=5, delta=0
  EXPECT_FALSE(parse_snapshot_response(w.buffer()).has_value());

  // Wraparound via a huge delta must be rejected, not wrapped.
  codec::Writer w2;
  w2.varint(1).varint(0).varint(0);
  w2.varint(2).varint(5).varint(~0ULL);  // 5 + 2^64-1 wraps
  EXPECT_FALSE(parse_snapshot_response(w2.buffer()).has_value());
}

TEST(WirePayloads, ProofsRoundTripAndSignatureSurvives) {
  crypto::Pki pki(9);
  for (crypto::ProcessId p = 0; p < 4; ++p) pki.register_process(p);
  ProofsResponse m;
  m.req_id = 44;
  for (crypto::ProcessId s = 0; s < 3; ++s) m.proofs.push_back(make_proof(pki, 6, s));

  const auto parsed = parse_proofs_response(encode_proofs_response(m));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->proofs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed->proofs[i].epoch, m.proofs[i].epoch);
    EXPECT_EQ(parsed->proofs[i].server, m.proofs[i].server);
    EXPECT_TRUE(core::valid_proof(parsed->proofs[i], m.proofs[i].epoch_hash, pki,
                                  core::Fidelity::kFull));
  }

  const auto preq = parse_proofs_request(encode_proofs_request({5, 9}));
  ASSERT_TRUE(preq.has_value());
  EXPECT_EQ(preq->epoch, 9u);
}

TEST(WirePayloads, BlockAndTxSubmitRoundTrip) {
  ledger::Transaction tx1;
  tx1.kind = ledger::TxKind::kElement;
  tx1.wire_size = 321;
  tx1.data = Bytes{1, 9, 8, 7};
  ledger::Transaction tx2;
  tx2.kind = ledger::TxKind::kHashBatch;
  tx2.wire_size = 139;
  tx2.data = Bytes(139, 0x5A);

  const auto sub = parse_tx_submit(encode_tx_submit(tx1));
  ASSERT_TRUE(sub.has_value());
  EXPECT_EQ(sub->tx.kind, tx1.kind);
  EXPECT_EQ(sub->tx.wire_size, tx1.wire_size);
  EXPECT_EQ(sub->tx.data, tx1.data);

  const std::vector<const ledger::Transaction*> txs = {&tx1, &tx2};
  const Bytes payload = encode_block(12, 3, txs);
  const auto block = parse_block(payload);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->height, 12u);
  EXPECT_EQ(block->proposer, 3u);
  ASSERT_EQ(block->txs.size(), 2u);
  EXPECT_EQ(block->txs[1].data, tx2.data);

  EXPECT_FALSE(parse_block(Bytes{0}).has_value());  // height 0 illegal

  // Sync wraps whole block payloads; they must come back bit-identical.
  const auto sync = parse_block_sync_response(
      encode_block_sync_response({ByteView(payload)}));
  ASSERT_TRUE(sync.has_value());
  ASSERT_EQ(sync->blocks.size(), 1u);
  EXPECT_EQ(sync->blocks[0], payload);
  const auto sreq = parse_block_sync_request(encode_block_sync_request({42}));
  ASSERT_TRUE(sreq.has_value());
  EXPECT_EQ(sreq->from_height, 42u);
}

TEST(WirePayloads, BatchExchangeRoundTrip) {
  crypto::Pki pki(11);
  pki.register_process(0);
  pki.register_process(100);
  core::Batch b;
  b.origin = 0;
  b.elements.push_back(make_element(pki, 100, 1, 64));
  b.proofs.push_back(make_proof(pki, 1, 0));
  const Bytes serialized = core::serialize_batch(b);

  BatchRequest req;
  req.requester = 2;
  for (std::size_t i = 0; i < req.hash.size(); ++i) {
    req.hash[i] = static_cast<std::uint8_t>(i * 3);
  }
  const auto preq = parse_batch_request(encode_batch_request(req));
  ASSERT_TRUE(preq.has_value());
  EXPECT_EQ(preq->requester, req.requester);
  EXPECT_EQ(preq->hash, req.hash);

  BatchResponse resp;
  resp.hash = req.hash;
  resp.batch = serialized;
  const auto presp = parse_batch_response(encode_batch_response(resp));
  ASSERT_TRUE(presp.has_value());
  EXPECT_EQ(presp->hash, resp.hash);
  EXPECT_EQ(presp->batch, serialized);
  // The carried batch is still parseable — the nested codec survived.
  const auto inner = core::parse_batch(presp->batch);
  ASSERT_TRUE(inner.has_value());
  EXPECT_EQ(inner->elements.size(), 1u);
  EXPECT_EQ(inner->proofs.size(), 1u);
}

TEST(WirePayloads, ConsensusFramesRoundTrip) {
  crypto::Pki pki(21);
  pki.register_process(2);

  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kElement;
  tx.wire_size = 99;
  tx.data = Bytes{4, 2, 4, 2};

  // A proposal is block bytes + the proposer's signature; the parser must
  // hand back the exact payload bytes (the vote-hash preimage), the signed
  // prefix length, and the signature alongside the decoded block.
  const Bytes block_bytes = encode_block(7, 2, {&tx});
  const auto sig = pki.sign(2, proposal_transcript(0xC0FFEE, block_bytes));
  const Bytes payload = encode_signed_proposal(block_bytes, sig);
  ASSERT_EQ(payload.size(), block_bytes.size() + crypto::Ed25519::kSignatureSize);
  const auto prop = parse_proposal(payload);
  ASSERT_TRUE(prop.has_value());
  EXPECT_EQ(prop->block.height, 7u);
  EXPECT_EQ(prop->block.proposer, 2u);
  ASSERT_EQ(prop->block.txs.size(), 1u);
  EXPECT_EQ(prop->block.txs[0].data, tx.data);
  EXPECT_EQ(prop->raw, payload);
  EXPECT_EQ(prop->block_bytes_len, block_bytes.size());
  EXPECT_EQ(prop->sig, sig);
  // The signature survived the trip: the transcript over the signed prefix
  // still verifies against the proposer's key.
  EXPECT_TRUE(pki.verify(
      2, proposal_transcript(0xC0FFEE, ByteView(prop->raw).first(prop->block_bytes_len)),
      prop->sig));
  EXPECT_FALSE(parse_proposal(Bytes{0}).has_value());  // height 0 illegal
  // A bare (unsigned) block payload is NOT a proposal any more.
  EXPECT_FALSE(parse_proposal(block_bytes).has_value());

  VoteMsg v;
  v.height = 12;
  v.round = 3;
  v.voter = 1;
  for (std::size_t i = 0; i < v.hash.size(); ++i) {
    v.hash[i] = static_cast<std::uint8_t>(i * 5 + 1);
  }
  for (std::size_t i = 0; i < v.sig.size(); ++i) {
    v.sig[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  const auto pv = parse_vote(encode_vote(v));
  ASSERT_TRUE(pv.has_value());
  EXPECT_EQ(pv->height, v.height);
  EXPECT_EQ(pv->round, v.round);
  EXPECT_EQ(pv->voter, v.voter);
  EXPECT_EQ(pv->hash, v.hash);
  EXPECT_EQ(pv->sig, v.sig);
  VoteMsg zero = v;
  zero.height = 0;  // heights are 1-based; 0 would vote on nothing
  EXPECT_FALSE(parse_vote(encode_vote(zero)).has_value());

  RoundSkipMsg s{9, 4, 2};
  for (std::size_t i = 0; i < s.sig.size(); ++i) {
    s.sig[i] = static_cast<std::uint8_t>(i + 11);
  }
  const auto ps = parse_round_skip(encode_round_skip(s));
  ASSERT_TRUE(ps.has_value());
  EXPECT_EQ(ps->height, s.height);
  EXPECT_EQ(ps->round, s.round);
  EXPECT_EQ(ps->voter, s.voter);
  EXPECT_EQ(ps->sig, s.sig);
}

// The two proposal parsers (owning and zero-copy view) must accept and
// reject EXACTLY the same byte strings: an honest node relays only payloads
// the view parser validated, and a receiver must never blame that relayer
// because the owning parser disagreed about well-formedness.
TEST(WirePayloads, ProposalParsersAgreeOnEveryInput) {
  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kElement;
  tx.wire_size = 40;
  tx.data = Bytes{9, 9, 9};
  const Bytes block_bytes = encode_block(3, 1, {&tx});
  crypto::Ed25519::Signature sig{};
  sig.fill(0x5C);
  const Bytes payload = encode_signed_proposal(block_bytes, sig);

  const auto agree = [](ByteView v) {
    const auto owning = parse_proposal(v);
    const auto view = parse_signed_proposal_view(v);
    ASSERT_EQ(owning.has_value(), view.has_value());
    if (owning) {
      EXPECT_EQ(owning->block.height, view->block.height);
      EXPECT_EQ(owning->block.proposer, view->block.proposer);
      EXPECT_EQ(owning->block_bytes_len, view->block_bytes.size());
      EXPECT_EQ(owning->sig, view->sig);
    }
  };

  agree(payload);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    agree(ByteView(payload).first(cut));
  }
  // Single-byte mutations at every position: whatever each does to the
  // grammar, both parsers must rule identically.
  for (std::size_t i = 0; i < payload.size(); ++i) {
    Bytes mutated = payload;
    mutated[i] ^= 0xFF;
    agree(mutated);
  }
  sim::Rng rng(77);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes junk(rng.uniform_u64(96) + 1);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    agree(junk);
  }
}

TEST(WirePayloads, TranscriptsAreDomainSeparated) {
  ProposalHash h{};
  h.fill(0xAA);
  const Bytes block = {1, 2, 3};
  // Different clusters, types, heights and rounds must all change the
  // transcript bytes — equal transcripts would let a signature replay.
  EXPECT_NE(proposal_transcript(1, block), proposal_transcript(2, block));
  EXPECT_NE(vote_transcript(1, MsgType::kPrevote, 5, 0, h),
            vote_transcript(1, MsgType::kPrecommit, 5, 0, h));
  EXPECT_NE(vote_transcript(1, MsgType::kPrevote, 5, 0, h),
            vote_transcript(2, MsgType::kPrevote, 5, 0, h));
  EXPECT_NE(vote_transcript(1, MsgType::kPrevote, 5, 0, h),
            vote_transcript(1, MsgType::kPrevote, 6, 0, h));
  EXPECT_NE(vote_transcript(1, MsgType::kPrevote, 5, 0, h),
            vote_transcript(1, MsgType::kPrevote, 5, 1, h));
  EXPECT_NE(round_skip_transcript(1, 5, 0), round_skip_transcript(1, 5, 1));
  // Distinct message families never collide (distinct domain tags).
  EXPECT_NE(proposal_transcript(1, block),
            round_skip_transcript(1, 5, 0));
}

TEST(WirePayloads, CertifiedBlockRoundTripAndVoterOrdering) {
  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kElement;
  tx.wire_size = 10;
  tx.data = Bytes{1};
  const Bytes block_bytes = encode_block(5, 1, {&tx});
  crypto::Ed25519::Signature psig{};
  psig.fill(0x11);
  const Bytes proposal = encode_signed_proposal(block_bytes, psig);

  std::vector<CommitVote> votes;
  for (std::uint32_t v : {0u, 1u, 3u}) {
    CommitVote cv;
    cv.voter = v;
    cv.sig.fill(static_cast<std::uint8_t>(0x20 + v));
    votes.push_back(cv);
  }
  const Bytes cert = encode_certified_block(proposal, 2, votes);
  const auto parsed = parse_certified_block(cert);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->proposal, proposal);
  EXPECT_EQ(parsed->round, 2u);
  ASSERT_EQ(parsed->votes.size(), 3u);
  for (std::size_t i = 0; i < votes.size(); ++i) {
    EXPECT_EQ(parsed->votes[i].voter, votes[i].voter);
    EXPECT_EQ(parsed->votes[i].sig, votes[i].sig);
  }

  // Duplicate (or descending) voter ids would count one voter twice toward
  // a quorum: the parser must reject them outright.
  std::vector<CommitVote> dup = votes;
  dup.push_back(votes[1]);
  EXPECT_FALSE(parse_certified_block(encode_certified_block(proposal, 2, dup))
                   .has_value());
  std::vector<CommitVote> descending = {votes[2], votes[0]};
  EXPECT_FALSE(
      parse_certified_block(encode_certified_block(proposal, 2, descending))
          .has_value());
  // An empty proposal certifies nothing.
  EXPECT_FALSE(parse_certified_block(encode_certified_block({}, 2, votes))
                   .has_value());
}

TEST(WirePayloads, ClusterIdSeparatesLedgerModes) {
  const auto base = cluster_id(42, 4, 1, 2);
  // Mode 0 (fixed sequencer) is the default and must not disturb ids minted
  // before the mode byte existed — old daemons and new ones interoperate.
  EXPECT_EQ(cluster_id(42, 4, 1, 2, 0), base);
  // Consensus-mode clusters must never handshake with sequencer-mode ones.
  EXPECT_NE(cluster_id(42, 4, 1, 2, 1), base);
  EXPECT_NE(cluster_id(42, 4, 1, 2, 1), cluster_id(42, 4, 1, 2, 2));
}

// Property sweep: every payload parser must reject (a) any strict prefix
// and (b) one byte of trailing garbage — totality over truncation and the
// no-trailing-garbage rule, for every frame type the codec implements.
TEST(WirePayloads, EveryParserRejectsTruncationAndTrailingGarbage) {
  crypto::Pki pki(13);
  pki.register_process(0);
  pki.register_process(1);
  pki.register_process(100);

  SnapshotResponse snap;
  snap.req_id = 1;
  snap.epoch = 1;
  core::EpochRecord rec;
  rec.number = 1;
  rec.ids = {3, 9};
  rec.count = 2;
  rec.bytes = 128;
  snap.history.push_back(rec);
  snap.the_set = {3, 9};

  ProofsResponse proofs;
  proofs.req_id = 2;
  proofs.proofs.push_back(make_proof(pki, 1, 0));

  AddRequest add;
  add.req_id = 3;
  add.element = make_element(pki, 100, 0, 16);

  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kEpochProof;
  tx.wire_size = 139;
  tx.data = Bytes(139, 1);

  BatchRequest breq;
  breq.requester = 1;

  VoteMsg vote;
  vote.height = 4;
  vote.round = 1;
  vote.voter = 2;
  for (std::size_t i = 0; i < vote.hash.size(); ++i) {
    vote.hash[i] = static_cast<std::uint8_t>(i + 1);
  }
  for (std::size_t i = 0; i < vote.sig.size(); ++i) {
    vote.sig[i] = static_cast<std::uint8_t>(i + 2);
  }

  crypto::Ed25519::Signature prop_sig{};
  prop_sig.fill(0x3D);
  const Bytes signed_proposal =
      encode_signed_proposal(encode_block(2, 1, {&tx}), prop_sig);
  CommitVote cv0;
  cv0.voter = 0;
  cv0.sig.fill(0x44);
  CommitVote cv1;
  cv1.voter = 2;
  cv1.sig.fill(0x45);
  const Bytes certified =
      encode_certified_block(signed_proposal, 1, {cv0, cv1});

  struct Case {
    const char* name;
    Bytes payload;
    std::function<bool(ByteView)> parses;
  };
  const std::vector<Case> cases = {
      {"hello", encode_hello({kRoleServer, 1, 2}),
       [](ByteView v) { return parse_hello(v).has_value(); }},
      {"add_req", encode_add_request(add),
       [](ByteView v) { return parse_add_request(v).has_value(); }},
      {"add_resp", encode_add_response({3, true}),
       [](ByteView v) { return parse_add_response(v).has_value(); }},
      {"snap_req", encode_snapshot_request({4}),
       [](ByteView v) { return parse_snapshot_request(v).has_value(); }},
      {"snap_resp", encode_snapshot_response(snap),
       [](ByteView v) { return parse_snapshot_response(v).has_value(); }},
      {"proofs_req", encode_proofs_request({5, 1}),
       [](ByteView v) { return parse_proofs_request(v).has_value(); }},
      {"proofs_resp", encode_proofs_response(proofs),
       [](ByteView v) { return parse_proofs_response(v).has_value(); }},
      {"epoch_req", encode_epoch_request({6}),
       [](ByteView v) { return parse_epoch_request(v).has_value(); }},
      {"epoch_resp", encode_epoch_response({6, 7, 0}),
       [](ByteView v) { return parse_epoch_response(v).has_value(); }},
      {"tx_submit", encode_tx_submit(tx),
       [](ByteView v) { return parse_tx_submit(v).has_value(); }},
      {"block", encode_block(1, 0, {&tx}),
       [](ByteView v) { return parse_block(v).has_value(); }},
      {"sync_req", encode_block_sync_request({1}),
       [](ByteView v) { return parse_block_sync_request(v).has_value(); }},
      {"sync_resp", encode_block_sync_response({}),
       [](ByteView v) { return parse_block_sync_response(v).has_value(); }},
      {"batch_req", encode_batch_request(breq),
       [](ByteView v) { return parse_batch_request(v).has_value(); }},
      {"batch_resp", encode_batch_response({{}, Bytes{1, 2, 3}}),
       [](ByteView v) { return parse_batch_response(v).has_value(); }},
      {"proposal", signed_proposal,
       [](ByteView v) { return parse_proposal(v).has_value(); }},
      {"proposal_view", signed_proposal,
       [](ByteView v) { return parse_signed_proposal_view(v).has_value(); }},
      {"vote", encode_vote(vote),
       [](ByteView v) { return parse_vote(v).has_value(); }},
      {"round_skip", encode_round_skip({4, 1, 2}),
       [](ByteView v) { return parse_round_skip(v).has_value(); }},
      {"certified_block", certified,
       [](ByteView v) { return parse_certified_block(v).has_value(); }},
  };

  for (const auto& c : cases) {
    ASSERT_TRUE(c.parses(c.payload)) << c.name;
    for (std::size_t cut = 0; cut < c.payload.size(); ++cut) {
      EXPECT_FALSE(c.parses(ByteView(c.payload).first(cut)))
          << c.name << " accepted a prefix of " << cut << " bytes";
    }
    Bytes trailing = c.payload;
    trailing.push_back(0x00);
    EXPECT_FALSE(c.parses(trailing)) << c.name << " accepted trailing garbage";
  }
}

// Fuzz-ish sweep: random bytes through every parser and the frame decoder
// must never crash (run under ASan/UBSan in CI) and, for the frame decoder,
// never return kOk (the magic makes random success astronomically unlikely).
TEST(WirePayloads, RandomBytesNeverCrash) {
  sim::Rng rng(20260726);
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes junk(rng.uniform_u64(64) + 1);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
    Frame f;
    std::size_t consumed = 0;
    EXPECT_NE(decode_frame(junk, f, consumed), DecodeStatus::kOk);
    parse_hello(junk);
    parse_add_request(junk);
    parse_add_response(junk);
    parse_snapshot_response(junk);
    parse_proofs_response(junk);
    parse_epoch_response(junk);
    parse_tx_submit(junk);
    parse_block(junk);
    parse_block_sync_response(junk);
    parse_batch_request(junk);
    parse_batch_response(junk);
    parse_proposal(junk);
    parse_signed_proposal_view(junk);
    parse_vote(junk);
    parse_round_skip(junk);
    parse_certified_block(junk);
  }
}

}  // namespace
}  // namespace setchain::net::wire
