// Per-call deadline behaviour of TcpRpcChannel: a silent server (accepts,
// never replies), a blackholed address (SYNs vanish), and a refused port
// must all surface as a clean std::nullopt within the caller's timeout —
// never hang the client on the kernel's minutes-long connect/send defaults.
// This is what lets QuorumClient mask a crashed node and carry on, which
// the consensus fail-over tests lean on.
#include "net/remote_node.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>

#include "net/wire.hpp"

namespace setchain::net {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

/// A TCP listener that accepts connections and then ignores them forever.
/// port == 0 signals a setup failure.
struct SilentServer {
  int listen_fd = -1;
  std::uint16_t port = 0;

  SilentServer() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    socklen_t len = sizeof(addr);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(listen_fd, 4) != 0 ||
        ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      return;
    }
    port = ntohs(addr.sin_port);
  }
  ~SilentServer() {
    if (listen_fd >= 0) ::close(listen_fd);
  }
};

TcpRpcChannel::Config config_for(const std::string& host, std::uint16_t port) {
  TcpRpcChannel::Config ch;
  ch.host = host;
  ch.port = port;
  ch.client_id = 4;
  ch.cluster = 1;
  return ch;
}

/// Call epoch() against `ch` and return (answered, elapsed).
std::pair<bool, std::chrono::milliseconds> timed_call(
    TcpRpcChannel& ch, std::chrono::milliseconds timeout) {
  const auto t0 = Clock::now();
  const auto f =
      ch.call(wire::MsgType::kEpochRequest, wire::encode_epoch_request({1}), timeout);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0);
  return {f.has_value(), elapsed};
}

// A server that accepts the connection but never answers: the call must
// come back empty close to the requested timeout, not block on recv.
TEST(RpcTimeout, SilentServerFailsWithinDeadline) {
  SilentServer srv;
  ASSERT_GT(srv.port, 0);
  TcpRpcChannel ch(config_for("127.0.0.1", srv.port));
  const auto [answered, elapsed] = timed_call(ch, 300ms);
  EXPECT_FALSE(answered);
  EXPECT_LT(elapsed, 3000ms) << "silent server blocked the caller";
}

// A blackholed address (TEST-NET-3, never assigned): connect() cannot
// complete. Depending on the sandbox this is either a silent SYN drop (the
// per-call deadline must cut it off) or an immediate unreachable error —
// both must return std::nullopt quickly instead of the kernel's default
// minutes-long connect timeout.
TEST(RpcTimeout, BlackholedConnectFailsWithinDeadline) {
  TcpRpcChannel ch(config_for("203.0.113.1", 9));
  const auto [answered, elapsed] = timed_call(ch, 300ms);
  EXPECT_FALSE(answered);
  EXPECT_LT(elapsed, 3000ms) << "blackholed connect blocked the caller";
}

// A refused port (nothing listening) fails fast and cleanly — and the
// channel retries the connect on the next call rather than staying poisoned.
TEST(RpcTimeout, RefusedPortFailsCleanlyAndChannelRetries) {
  std::uint16_t dead_port = 0;
  {
    SilentServer probe;  // grab an ephemeral port, then free it
    dead_port = probe.port;
  }
  ASSERT_GT(dead_port, 0);
  TcpRpcChannel ch(config_for("127.0.0.1", dead_port));
  for (int i = 0; i < 2; ++i) {
    const auto [answered, elapsed] = timed_call(ch, 300ms);
    EXPECT_FALSE(answered);
    EXPECT_LT(elapsed, 3000ms);
  }
}

}  // namespace
}  // namespace setchain::net
