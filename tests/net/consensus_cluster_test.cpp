// Consensus-mode live clusters over the loopback transport: the wire-level
// ConsensusLedger must (a) match the in-process sim reference on P1-P9 in
// fault-free runs for every algorithm, (b) keep committing epochs with the
// round-0 proposer crashed — the f-tolerance the fixed sequencer lacks —
// under the PR-4 fault-injection plans with seeded replays, and (c) reject
// malformed or mode-mismatched frames without poisoning a node. The fixed
// sequencer's lost-submit retransmission regression rides along: a submit
// window cut mid-flight must heal by resubmission, not luck.
#include "net/consensus_ledger.hpp"

#include <gtest/gtest.h>

#include "api/quorum_client.hpp"
#include "net/loopback.hpp"
#include "net/remote_node.hpp"
#include "net_fixture.hpp"

namespace setchain::net {
namespace {

using namespace setchain::net::testing;

struct ConsensusCluster {
  NodeHostConfig cfg;
  sim::Simulation sim;
  LoopbackHub hub;
  std::vector<std::unique_ptr<NodeHost>> hosts;
  crypto::Pki pki;

  explicit ConsensusCluster(runner::Algorithm algo, std::uint64_t seed = 42,
                            std::uint32_t n = 4)
      : cfg(make_config(algo, seed, n)), hub(sim, n), pki(cfg.seed) {
    for (crypto::ProcessId p = 0; p < cfg.n + cfg.client_slots; ++p) {
      pki.register_process(p);
    }
  }

  static NodeHostConfig make_config(runner::Algorithm algo, std::uint64_t seed,
                                    std::uint32_t n) {
    NodeHostConfig cfg;
    cfg.n = n;
    cfg.f = (n - 1) / 3;
    cfg.algorithm = algo;
    cfg.seed = seed;
    cfg.collector_limit = 6;
    cfg.collector_timeout = sim::from_millis(200);
    cfg.block_interval = sim::from_millis(150);
    cfg.sync_interval = sim::from_millis(400);
    cfg.ledger_mode = runner::LedgerMode::kConsensus;
    // Rounds must skip past a dead proposer well inside the test budget.
    cfg.timeout_propose = sim::from_millis(600);
    cfg.retry_interval = sim::from_millis(200);
    return cfg;
  }

  void start() {
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      NodeHostConfig c = cfg;
      c.id = i;
      hosts.push_back(std::make_unique<NodeHost>(c, sim, hub.transport(i)));
      hosts.back()->start();
    }
  }

  api::QuorumClient client(std::vector<std::unique_ptr<RemoteNode>>& stubs) {
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      stubs.push_back(std::make_unique<RemoteNode>(
          std::make_unique<LoopbackRpcChannel>(hub, i), i));
    }
    return api::make_quorum_client(stubs, pki, cfg.f, core::Fidelity::kFull,
                                   api::WritePolicy::kAll);
  }

  bool pump_until(const std::function<bool()>& pred, double budget_seconds = 120) {
    const sim::Time deadline = sim.now() + sim::from_seconds(budget_seconds);
    while (sim.now() < deadline) {
      if (pred()) return true;
      sim.run_until(sim.now() + sim::from_millis(250));
    }
    return pred();
  }

  void pump_seconds(double s) { sim.run_until(sim.now() + sim::from_seconds(s)); }

  /// Correct-server views, skipping crashed node indices.
  std::vector<const core::SetchainServer*> servers(
      const std::vector<std::uint32_t>& skip = {}) const {
    std::vector<const core::SetchainServer*> out;
    for (std::uint32_t i = 0; i < hosts.size(); ++i) {
      if (std::find(skip.begin(), skip.end(), i) != skip.end()) continue;
      out.push_back(&hosts[i]->server());
    }
    return out;
  }

  bool consolidated(std::size_t expect,
                    const std::vector<std::uint32_t>& skip = {}) const {
    for (std::uint32_t i = 0; i < hosts.size(); ++i) {
      if (std::find(skip.begin(), skip.end(), i) != skip.end()) continue;
      const auto snap = hosts[i]->server().get();
      std::size_t in_history = 0;
      for (const auto& rec : *snap.history) in_history += rec.ids.size();
      if (in_history < expect) return false;
    }
    return true;
  }

  bool liveness_green(const std::vector<core::ElementId>& accepted,
                      const std::vector<std::uint32_t>& skip = {}) const {
    return core::check_liveness_quiescent(servers(skip), accepted,
                                          hosts[0]->params(), hosts[0]->pki())
        .ok();
  }
};

std::vector<core::ElementId> drive(api::QuorumClient& client,
                                   const std::vector<core::Element>& elements) {
  std::vector<core::ElementId> accepted;
  for (const auto& e : elements) {
    const auto r = client.add(e);
    EXPECT_TRUE(r.ok) << "add refused everywhere, element " << e.id;
    if (r.ok) accepted.push_back(e.id);
  }
  return accepted;
}

class ConsensusClusterConformance
    : public ::testing::TestWithParam<runner::Algorithm> {};

// Fault-free consensus run: every algorithm over the voting ledger must
// produce the exact conformance verdicts (P1-P9 + set equality) of the
// in-process InstantLedger reference — ordering by consensus, not by a
// sequencer, must be invisible to the Setchain layer.
TEST_P(ConsensusClusterConformance, MatchesSimReferenceWithoutSequencer) {
  ConsensusCluster cl(GetParam());
  cl.start();

  const auto elements = make_workload(cl.cfg, 30, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);

  const auto accepted = drive(client, elements);
  ASSERT_EQ(accepted.size(), elements.size());

  ASSERT_TRUE(cl.pump_until([&] { return cl.consolidated(accepted.size()); }))
      << "consensus cluster never consolidated the workload";
  ASSERT_TRUE(cl.pump_until([&] { return cl.liveness_green(accepted); }))
      << "epoch-proof traffic never reached quiescence";

  const ReferenceRun reference = run_reference(cl.cfg, elements);
  std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
  assert_cluster_matches_reference(cl.servers(), accepted, created,
                                   cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                   reference, runner::algorithm_name(GetParam()));

  // Quorum client protocol unchanged on top of consensus ordering.
  const auto view = client.get();
  EXPECT_EQ(view.masked_nodes, 0u);
  for (const auto id : accepted) {
    EXPECT_TRUE(view.the_set.contains(id)) << "quorum view missing " << id;
  }
  const auto verdict = client.verify(accepted.front());
  EXPECT_TRUE(verdict.committed);
  EXPECT_GE(verdict.valid_proofs, cl.cfg.f + 1);

  // Blocks were actually sealed by consensus proposers.
  std::uint64_t sealed = 0;
  for (const auto& h : cl.hosts) sealed += h->ledger().blocks_broadcast();
  EXPECT_GT(sealed, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ConsensusClusterConformance,
                         ::testing::Values(runner::Algorithm::kVanilla,
                                           runner::Algorithm::kCompresschain,
                                           runner::Algorithm::kHashchain),
                         [](const auto& info) {
                           return std::string(runner::algorithm_name(info.param));
                         });

// THE bug this ledger exists to fix: crash the node that proposes height 1
// round 0 (proposer_for(1,0) = 1 % n = node 1) before any work lands, never
// restart it. The fixed sequencer would stall forever if it were node 1;
// consensus must round-skip past the corpse at every height it would have
// proposed and commit the full workload on the survivors.
TEST(ConsensusFailover, ClusterSurvivesRound0ProposerCrash) {
  ConsensusCluster cl(runner::Algorithm::kVanilla);
  sim::FaultPlan plan;
  plan.faults.push_back(
      sim::Fault::crash(/*node=*/1, sim::from_millis(10), sim::kNeverHeals));
  cl.hub.install_faults(plan, /*seed=*/3);
  cl.start();

  const std::vector<std::uint32_t> dead = {1};
  const auto elements = make_workload(cl.cfg, 24, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  // Client frames bypass the injector (kAll still reaches every server);
  // only the server<->server consensus traffic of node 1 is dead.
  const auto accepted = drive(client, elements);
  ASSERT_EQ(accepted.size(), elements.size());

  ASSERT_TRUE(cl.pump_until([&] { return cl.consolidated(accepted.size(), dead); }))
      << "survivors never consolidated past the crashed round-0 proposer";
  ASSERT_TRUE(cl.pump_until([&] { return cl.liveness_green(accepted, dead); }))
      << "survivor epoch-proof traffic never quiesced";
  ASSERT_NE(cl.hub.faults(), nullptr);
  EXPECT_GT(cl.hub.faults()->stats().dropped_crash, 0u);

  // Full conformance on the survivors, against the fault-free reference:
  // the committed set must be exactly the workload, crash or no crash.
  const ReferenceRun reference = run_reference(cl.cfg, elements);
  std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
  assert_cluster_matches_reference(cl.servers(dead), accepted, created,
                                   cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                   reference, "vanilla/proposer-crash");

  // The quorum client still reads an f+1-agreed view across the survivors.
  const auto view = client.get();
  for (const auto id : accepted) {
    EXPECT_TRUE(view.the_set.contains(id)) << "quorum view missing " << id;
  }
}

// Seeded replay oracle (the PR-4 fuzzing discipline on the wire): for each
// seed, the same crash+drop plan over loopback must land on the same P1-P9
// verdicts and the same consolidated set as the in-process reference run of
// that seed's workload.
TEST(ConsensusFailover, SeededCrashPlansReplayAgainstReference) {
  for (const std::uint64_t seed : {7ull, 1234ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ConsensusCluster cl(runner::Algorithm::kHashchain, seed);
    sim::FaultPlan plan;
    plan.faults.push_back(
        sim::Fault::crash(/*node=*/1, sim::from_millis(50), sim::kNeverHeals));
    plan.faults.push_back(sim::Fault::drop(/*from=*/0, /*to=*/2,
                                           /*probability=*/0.5,
                                           sim::from_millis(100),
                                           sim::from_seconds(3)));
    cl.hub.install_faults(plan, /*seed=*/seed);
    cl.start();

    const std::vector<std::uint32_t> dead = {1};
    const auto elements = make_workload(cl.cfg, 18, cl.pki);
    std::vector<std::unique_ptr<RemoteNode>> stubs;
    api::QuorumClient client = cl.client(stubs);
    const auto accepted = drive(client, elements);
    ASSERT_EQ(accepted.size(), elements.size());

    ASSERT_TRUE(
        cl.pump_until([&] { return cl.consolidated(accepted.size(), dead); }))
        << "survivors never consolidated (seed " << seed << ")";
    ASSERT_TRUE(cl.pump_until([&] { return cl.liveness_green(accepted, dead); }));

    const ReferenceRun reference = run_reference(cl.cfg, elements);
    std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
    assert_cluster_matches_reference(cl.servers(dead), accepted, created,
                                     cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                     reference, "hashchain/seeded-crash");
  }
}

// Malformed payloads under every consensus frame type (and a bare kBlock,
// which the consensus dialect does not speak) are counted and ignored.
TEST(ConsensusRobustness, MalformedConsensusFramesAreCountedAndIgnored) {
  ConsensusCluster cl(runner::Algorithm::kVanilla);
  cl.start();

  for (const auto type : {wire::MsgType::kProposal, wire::MsgType::kPrevote,
                          wire::MsgType::kPrecommit, wire::MsgType::kRoundSkip,
                          wire::MsgType::kBlock}) {
    cl.hub.transport(1).send(0, type, codec::to_bytes("junk payload"));
  }
  // Spoofed voter: well-formed vote whose voter field does not match the
  // sending endpoint must be rejected, not recorded for node 3.
  wire::VoteMsg spoof;
  spoof.height = 1;
  spoof.round = 0;
  spoof.voter = 3;
  cl.hub.transport(1).send(0, wire::MsgType::kPrevote, wire::encode_vote(spoof));
  cl.pump_seconds(1);
  EXPECT_EQ(cl.hosts[0]->bad_frames(), 6u);

  // The node still commits a normal workload afterwards.
  const auto elements = make_workload(cl.cfg, 8, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  const auto accepted = drive(client, elements);
  ASSERT_TRUE(cl.pump_until([&] { return cl.consolidated(accepted.size()); }));
}

// Mode mismatch: a sequencer-mode node receiving consensus frames counts
// them as bad (the ledger-mode byte in the cluster id makes this
// unreachable for correctly configured deployments — this is the backstop).
TEST(ConsensusRobustness, SequencerModeRejectsConsensusFrames) {
  sim::Simulation sim;
  LoopbackHub hub(sim, 2);
  NodeHostConfig cfg;
  cfg.n = 2;
  cfg.f = 0;
  cfg.id = 0;
  cfg.algorithm = runner::Algorithm::kVanilla;
  NodeHost host(cfg, sim, hub.transport(0));
  host.start();

  wire::VoteMsg vote;
  vote.height = 1;
  vote.round = 0;
  vote.voter = 1;
  hub.transport(1).send(0, wire::MsgType::kPrevote, wire::encode_vote(vote));
  hub.transport(1).send(0, wire::MsgType::kPrecommit, wire::encode_vote(vote));
  hub.transport(1).send(0, wire::MsgType::kRoundSkip,
                        wire::encode_round_skip({1, 0, 1}));
  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kOpaque;
  tx.wire_size = 4;
  tx.data = codec::Bytes{1, 2, 3, 4};
  hub.transport(1).send(0, wire::MsgType::kProposal, wire::encode_block(1, 1, {&tx}));
  sim.run_until(sim.now() + sim::from_seconds(1));
  EXPECT_EQ(host.bad_frames(), 4u);
}

// Satellite regression for the fixed-sequencer mode: a replica's kTxSubmit
// stream severed mid-flight (100% drop of replica->sequencer frames for a
// window) must heal by capped-backoff retransmission — before this fix a
// lost submit was silently gone and the element never committed.
TEST(SequencerResubmission, LostSubmitWindowHealsByRetransmission) {
  sim::Simulation sim;
  LoopbackHub hub(sim, 4);
  NodeHostConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.algorithm = runner::Algorithm::kVanilla;
  cfg.collector_limit = 6;
  cfg.collector_timeout = sim::from_millis(200);
  cfg.block_interval = sim::from_millis(150);
  cfg.sync_interval = sim::from_millis(400);
  cfg.resubmit_interval = sim::from_millis(300);

  sim::FaultPlan plan;
  plan.faults.push_back(sim::Fault::drop(/*from=*/2, /*to=*/0,
                                         /*probability=*/1.0,
                                         sim::from_millis(100),
                                         sim::from_millis(2500)));
  hub.install_faults(plan, /*seed=*/5);

  std::vector<std::unique_ptr<NodeHost>> hosts;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    NodeHostConfig c = cfg;
    c.id = i;
    hosts.push_back(std::make_unique<NodeHost>(c, sim, hub.transport(i)));
    hosts.back()->start();
  }
  crypto::Pki pki(cfg.seed);
  for (crypto::ProcessId p = 0; p < cfg.n + cfg.client_slots; ++p) {
    pki.register_process(p);
  }

  // Add ONLY through node 2: every element's path to the ledger is the
  // droppable 2->0 submit link — commits prove retransmission, not luck.
  RemoteNode node2(std::make_unique<LoopbackRpcChannel>(hub, 2), 2);
  const auto elements = make_workload(cfg, 8, pki);
  sim.run_until(sim.now() + sim::from_millis(150));  // enter the drop window
  for (const auto& e : elements) EXPECT_TRUE(node2.add(e));

  const auto consolidated = [&] {
    for (const auto& h : hosts) {
      const auto snap = h->server().get();
      std::size_t in_history = 0;
      for (const auto& rec : *snap.history) in_history += rec.ids.size();
      if (in_history < elements.size()) return false;
    }
    return true;
  };
  const sim::Time deadline = sim.now() + sim::from_seconds(60);
  while (sim.now() < deadline && !consolidated()) {
    sim.run_until(sim.now() + sim::from_millis(250));
  }
  ASSERT_NE(hub.faults(), nullptr);
  EXPECT_GT(hub.faults()->stats().dropped_random, 0u)
      << "the drop window never saw a submit — the regression is untested";
  EXPECT_TRUE(consolidated())
      << "elements submitted through the severed link never committed";
  const auto safety = core::check_safety(
      {&hosts[0]->server(), &hosts[1]->server(), &hosts[2]->server(),
       &hosts[3]->server()});
  EXPECT_TRUE(safety.ok()) << safety.to_string();
}

}  // namespace
}  // namespace setchain::net
