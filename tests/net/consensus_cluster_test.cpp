// Consensus-mode live clusters over the loopback transport: the wire-level
// ConsensusLedger must (a) match the in-process sim reference on P1-P9 in
// fault-free runs for every algorithm, (b) keep committing epochs with the
// round-0 proposer crashed — the f-tolerance the fixed sequencer lacks —
// under the PR-4 fault-injection plans with seeded replays, (c) reject
// malformed or mode-mismatched frames without poisoning a node, and (d)
// survive a fully Byzantine member — equivocating proposals, double votes,
// forged votes, junk sync, corrupted frames — by masking the equivocator
// and staying conformant on the honest majority. The fixed
// sequencer's lost-submit retransmission regression rides along: a submit
// window cut mid-flight must heal by resubmission, not luck.
#include "net/consensus_ledger.hpp"

#include <gtest/gtest.h>

#include "api/quorum_client.hpp"
#include "net/loopback.hpp"
#include "net/remote_node.hpp"
#include "net_fixture.hpp"

namespace setchain::net {
namespace {

using namespace setchain::net::testing;

struct ConsensusCluster {
  NodeHostConfig cfg;
  sim::Simulation sim;
  LoopbackHub hub;
  std::vector<std::unique_ptr<NodeHost>> hosts;
  crypto::Pki pki;

  explicit ConsensusCluster(runner::Algorithm algo, std::uint64_t seed = 42,
                            std::uint32_t n = 4)
      : cfg(make_config(algo, seed, n)), hub(sim, n), pki(cfg.seed) {
    for (crypto::ProcessId p = 0; p < cfg.n + cfg.client_slots; ++p) {
      pki.register_process(p);
    }
  }

  static NodeHostConfig make_config(runner::Algorithm algo, std::uint64_t seed,
                                    std::uint32_t n) {
    NodeHostConfig cfg;
    cfg.n = n;
    cfg.f = (n - 1) / 3;
    cfg.algorithm = algo;
    cfg.seed = seed;
    cfg.collector_limit = 6;
    cfg.collector_timeout = sim::from_millis(200);
    cfg.block_interval = sim::from_millis(150);
    cfg.sync_interval = sim::from_millis(400);
    cfg.ledger_mode = runner::LedgerMode::kConsensus;
    // Rounds must skip past a dead proposer well inside the test budget.
    cfg.timeout_propose = sim::from_millis(600);
    cfg.retry_interval = sim::from_millis(200);
    return cfg;
  }

  static constexpr std::uint32_t kNoByz = ~0u;

  /// `byz_node` (if any) runs with every Byzantine consensus behaviour on:
  /// proposal equivocation, double voting, vote forgery, junk sync.
  void start(std::uint32_t byz_node = kNoByz) {
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      NodeHostConfig c = cfg;
      c.id = i;
      c.byz_consensus = (i == byz_node);
      hosts.push_back(std::make_unique<NodeHost>(c, sim, hub.transport(i)));
      hosts.back()->start();
    }
  }

  const ConsensusLedger* cons(std::uint32_t i) const {
    return dynamic_cast<const ConsensusLedger*>(&hosts[i]->ledger());
  }

  api::QuorumClient client(std::vector<std::unique_ptr<RemoteNode>>& stubs) {
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      stubs.push_back(std::make_unique<RemoteNode>(
          std::make_unique<LoopbackRpcChannel>(hub, i), i));
    }
    return api::make_quorum_client(stubs, pki, cfg.f, core::Fidelity::kFull,
                                   api::WritePolicy::kAll);
  }

  bool pump_until(const std::function<bool()>& pred, double budget_seconds = 120) {
    const sim::Time deadline = sim.now() + sim::from_seconds(budget_seconds);
    while (sim.now() < deadline) {
      if (pred()) return true;
      sim.run_until(sim.now() + sim::from_millis(250));
    }
    return pred();
  }

  void pump_seconds(double s) { sim.run_until(sim.now() + sim::from_seconds(s)); }

  /// Correct-server views, skipping crashed node indices.
  std::vector<const core::SetchainServer*> servers(
      const std::vector<std::uint32_t>& skip = {}) const {
    std::vector<const core::SetchainServer*> out;
    for (std::uint32_t i = 0; i < hosts.size(); ++i) {
      if (std::find(skip.begin(), skip.end(), i) != skip.end()) continue;
      out.push_back(&hosts[i]->server());
    }
    return out;
  }

  bool consolidated(std::size_t expect,
                    const std::vector<std::uint32_t>& skip = {}) const {
    for (std::uint32_t i = 0; i < hosts.size(); ++i) {
      if (std::find(skip.begin(), skip.end(), i) != skip.end()) continue;
      const auto snap = hosts[i]->server().get();
      std::size_t in_history = 0;
      for (const auto& rec : *snap.history) in_history += rec.ids.size();
      if (in_history < expect) return false;
    }
    return true;
  }

  bool liveness_green(const std::vector<core::ElementId>& accepted,
                      const std::vector<std::uint32_t>& skip = {}) const {
    return core::check_liveness_quiescent(servers(skip), accepted,
                                          hosts[0]->params(), hosts[0]->pki())
        .ok();
  }
};

std::vector<core::ElementId> drive(api::QuorumClient& client,
                                   const std::vector<core::Element>& elements) {
  std::vector<core::ElementId> accepted;
  for (const auto& e : elements) {
    const auto r = client.add(e);
    EXPECT_TRUE(r.ok) << "add refused everywhere, element " << e.id;
    if (r.ok) accepted.push_back(e.id);
  }
  return accepted;
}

class ConsensusClusterConformance
    : public ::testing::TestWithParam<runner::Algorithm> {};

// Fault-free consensus run: every algorithm over the voting ledger must
// produce the exact conformance verdicts (P1-P9 + set equality) of the
// in-process InstantLedger reference — ordering by consensus, not by a
// sequencer, must be invisible to the Setchain layer.
TEST_P(ConsensusClusterConformance, MatchesSimReferenceWithoutSequencer) {
  ConsensusCluster cl(GetParam());
  cl.start();

  const auto elements = make_workload(cl.cfg, 30, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);

  const auto accepted = drive(client, elements);
  ASSERT_EQ(accepted.size(), elements.size());

  ASSERT_TRUE(cl.pump_until([&] { return cl.consolidated(accepted.size()); }))
      << "consensus cluster never consolidated the workload";
  ASSERT_TRUE(cl.pump_until([&] { return cl.liveness_green(accepted); }))
      << "epoch-proof traffic never reached quiescence";

  const ReferenceRun reference = run_reference(cl.cfg, elements);
  std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
  assert_cluster_matches_reference(cl.servers(), accepted, created,
                                   cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                   reference, runner::algorithm_name(GetParam()));

  // Quorum client protocol unchanged on top of consensus ordering.
  const auto view = client.get();
  EXPECT_EQ(view.masked_nodes, 0u);
  for (const auto id : accepted) {
    EXPECT_TRUE(view.the_set.contains(id)) << "quorum view missing " << id;
  }
  const auto verdict = client.verify(accepted.front());
  EXPECT_TRUE(verdict.committed);
  EXPECT_GE(verdict.valid_proofs, cl.cfg.f + 1);

  // Blocks were actually sealed by consensus proposers.
  std::uint64_t sealed = 0;
  for (const auto& h : cl.hosts) sealed += h->ledger().blocks_broadcast();
  EXPECT_GT(sealed, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ConsensusClusterConformance,
                         ::testing::Values(runner::Algorithm::kVanilla,
                                           runner::Algorithm::kCompresschain,
                                           runner::Algorithm::kHashchain),
                         [](const auto& info) {
                           return std::string(runner::algorithm_name(info.param));
                         });

// THE bug this ledger exists to fix: crash the node that proposes height 1
// round 0 (proposer_for(1,0) = 1 % n = node 1) before any work lands, never
// restart it. The fixed sequencer would stall forever if it were node 1;
// consensus must round-skip past the corpse at every height it would have
// proposed and commit the full workload on the survivors.
TEST(ConsensusFailover, ClusterSurvivesRound0ProposerCrash) {
  ConsensusCluster cl(runner::Algorithm::kVanilla);
  sim::FaultPlan plan;
  plan.faults.push_back(
      sim::Fault::crash(/*node=*/1, sim::from_millis(10), sim::kNeverHeals));
  cl.hub.install_faults(plan, /*seed=*/3);
  cl.start();

  const std::vector<std::uint32_t> dead = {1};
  const auto elements = make_workload(cl.cfg, 24, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  // Client frames bypass the injector (kAll still reaches every server);
  // only the server<->server consensus traffic of node 1 is dead.
  const auto accepted = drive(client, elements);
  ASSERT_EQ(accepted.size(), elements.size());

  ASSERT_TRUE(cl.pump_until([&] { return cl.consolidated(accepted.size(), dead); }))
      << "survivors never consolidated past the crashed round-0 proposer";
  ASSERT_TRUE(cl.pump_until([&] { return cl.liveness_green(accepted, dead); }))
      << "survivor epoch-proof traffic never quiesced";
  ASSERT_NE(cl.hub.faults(), nullptr);
  EXPECT_GT(cl.hub.faults()->stats().dropped_crash, 0u);

  // Full conformance on the survivors, against the fault-free reference:
  // the committed set must be exactly the workload, crash or no crash.
  const ReferenceRun reference = run_reference(cl.cfg, elements);
  std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
  assert_cluster_matches_reference(cl.servers(dead), accepted, created,
                                   cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                   reference, "vanilla/proposer-crash");

  // The quorum client still reads an f+1-agreed view across the survivors.
  const auto view = client.get();
  for (const auto id : accepted) {
    EXPECT_TRUE(view.the_set.contains(id)) << "quorum view missing " << id;
  }
}

// Seeded replay oracle (the PR-4 fuzzing discipline on the wire): for each
// seed, the same crash+drop plan over loopback must land on the same P1-P9
// verdicts and the same consolidated set as the in-process reference run of
// that seed's workload.
TEST(ConsensusFailover, SeededCrashPlansReplayAgainstReference) {
  for (const std::uint64_t seed : {7ull, 1234ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ConsensusCluster cl(runner::Algorithm::kHashchain, seed);
    sim::FaultPlan plan;
    plan.faults.push_back(
        sim::Fault::crash(/*node=*/1, sim::from_millis(50), sim::kNeverHeals));
    plan.faults.push_back(sim::Fault::drop(/*from=*/0, /*to=*/2,
                                           /*probability=*/0.5,
                                           sim::from_millis(100),
                                           sim::from_seconds(3)));
    cl.hub.install_faults(plan, /*seed=*/seed);
    cl.start();

    const std::vector<std::uint32_t> dead = {1};
    const auto elements = make_workload(cl.cfg, 18, cl.pki);
    std::vector<std::unique_ptr<RemoteNode>> stubs;
    api::QuorumClient client = cl.client(stubs);
    const auto accepted = drive(client, elements);
    ASSERT_EQ(accepted.size(), elements.size());

    ASSERT_TRUE(
        cl.pump_until([&] { return cl.consolidated(accepted.size(), dead); }))
        << "survivors never consolidated (seed " << seed << ")";
    ASSERT_TRUE(cl.pump_until([&] { return cl.liveness_green(accepted, dead); }));

    const ReferenceRun reference = run_reference(cl.cfg, elements);
    std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
    assert_cluster_matches_reference(cl.servers(dead), accepted, created,
                                     cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                     reference, "hashchain/seeded-crash");
  }
}

// Malformed payloads under every consensus frame type (and a bare kBlock,
// which the consensus dialect does not speak) are counted and ignored.
TEST(ConsensusRobustness, MalformedConsensusFramesAreCountedAndIgnored) {
  ConsensusCluster cl(runner::Algorithm::kVanilla);
  cl.start();

  for (const auto type : {wire::MsgType::kProposal, wire::MsgType::kPrevote,
                          wire::MsgType::kPrecommit, wire::MsgType::kRoundSkip,
                          wire::MsgType::kBlock}) {
    cl.hub.transport(1).send(0, type, codec::to_bytes("junk payload"));
  }
  // Spoofed voter: well-formed vote whose voter field does not match the
  // sending endpoint must be rejected, not recorded for node 3.
  wire::VoteMsg spoof;
  spoof.height = 1;
  spoof.round = 0;
  spoof.voter = 3;
  cl.hub.transport(1).send(0, wire::MsgType::kPrevote, wire::encode_vote(spoof));
  cl.pump_seconds(1);
  EXPECT_EQ(cl.hosts[0]->bad_frames(), 6u);

  // The node still commits a normal workload afterwards.
  const auto elements = make_workload(cl.cfg, 8, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  const auto accepted = drive(client, elements);
  ASSERT_TRUE(cl.pump_until([&] { return cl.consolidated(accepted.size()); }));
}

// Mode mismatch: a sequencer-mode node receiving consensus frames counts
// them as bad (the ledger-mode byte in the cluster id makes this
// unreachable for correctly configured deployments — this is the backstop).
TEST(ConsensusRobustness, SequencerModeRejectsConsensusFrames) {
  sim::Simulation sim;
  LoopbackHub hub(sim, 2);
  NodeHostConfig cfg;
  cfg.n = 2;
  cfg.f = 0;
  cfg.id = 0;
  cfg.algorithm = runner::Algorithm::kVanilla;
  NodeHost host(cfg, sim, hub.transport(0));
  host.start();

  wire::VoteMsg vote;
  vote.height = 1;
  vote.round = 0;
  vote.voter = 1;
  hub.transport(1).send(0, wire::MsgType::kPrevote, wire::encode_vote(vote));
  hub.transport(1).send(0, wire::MsgType::kPrecommit, wire::encode_vote(vote));
  hub.transport(1).send(0, wire::MsgType::kRoundSkip,
                        wire::encode_round_skip({1, 0, 1}));
  ledger::Transaction tx;
  tx.kind = ledger::TxKind::kOpaque;
  tx.wire_size = 4;
  tx.data = codec::Bytes{1, 2, 3, 4};
  hub.transport(1).send(0, wire::MsgType::kProposal, wire::encode_block(1, 1, {&tx}));
  sim.run_until(sim.now() + sim::from_seconds(1));
  EXPECT_EQ(host.bad_frames(), 4u);
}

// THE Byzantine scenario of this PR: node 1 — the round-0 proposer of
// height 1 — runs every adversarial behaviour at once (equivocating
// proposals, double votes, forged votes, junk sync), signing its conflicting
// messages with its REAL key. The honest majority must detect the
// equivocation, permanently mask the node, reject the forgeries, and still
// commit the full workload with exact P1-P9 conformance against the
// fault-free reference.
TEST(ConsensusByzantine, EquivocatingNodeIsMaskedAndSurvivorsStayConformant) {
  ConsensusCluster cl(runner::Algorithm::kVanilla);
  cl.start(/*byz_node=*/1);

  const std::vector<std::uint32_t> byz = {1};
  const auto elements = make_workload(cl.cfg, 24, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  const auto accepted = drive(client, elements);
  ASSERT_EQ(accepted.size(), elements.size());

  ASSERT_TRUE(cl.pump_until([&] { return cl.consolidated(accepted.size(), byz); }))
      << "honest nodes never consolidated past the Byzantine proposer";
  ASSERT_TRUE(cl.pump_until([&] { return cl.liveness_green(accepted, byz); }))
      << "honest epoch-proof traffic never quiesced";

  std::uint64_t equivocations = 0;
  std::uint64_t sig_rejects = 0;
  std::uint64_t bad = 0;
  std::uint32_t masked_at = 0;
  for (const std::uint32_t i : {0u, 2u, 3u}) {
    const ConsensusLedger* c = cl.cons(i);
    ASSERT_NE(c, nullptr);
    equivocations += c->equivocations_detected();
    sig_rejects += c->vote_sig_rejects();
    bad += cl.hosts[i]->bad_frames();
    if (c->masked(1)) {
      ++masked_at;
      ASSERT_FALSE(c->evidence().empty());
      EXPECT_EQ(c->evidence().front().node, 1u);
    }
    EXPECT_FALSE(c->masked(i)) << "honest node " << i << " masked itself";
  }
  EXPECT_GE(equivocations, 1u);
  EXPECT_EQ(masked_at, 3u) << "an honest node never masked the equivocator";
  EXPECT_GT(sig_rejects, 0u) << "the garbage-signature forgery was never rejected";
  EXPECT_GT(bad, 0u) << "the impersonated vote passed the identity gate";

  const ReferenceRun reference = run_reference(cl.cfg, elements);
  std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
  assert_cluster_matches_reference(cl.servers(byz), accepted, created,
                                   cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                   reference, "vanilla/byzantine-proposer");

  const auto view = client.get();
  for (const auto id : accepted) {
    EXPECT_TRUE(view.the_set.contains(id)) << "quorum view missing " << id;
  }
}

// Vote-equivocation bookkeeping, driven by hand-signed frames (the shared
// test seed lets the harness sign as any node): the second conflicting vote
// masks exactly once with one evidence record, further conflicts are inert,
// round spam is clamped to a bounded number of tracked rounds, and the
// masked set survives a state-snapshot round trip (consensus state v2).
TEST(ConsensusByzantine, VoteEquivocationMasksOnceAndBoundsBookkeeping) {
  ConsensusCluster cl(runner::Algorithm::kVanilla);
  cl.start();

  const std::uint64_t cluster = cl.hosts[0]->cluster();
  const auto send_prevote = [&](std::uint32_t voter, std::uint64_t height,
                                std::uint32_t round, std::uint8_t fill) {
    wire::VoteMsg m;
    m.height = height;
    m.round = round;
    m.voter = voter;
    m.hash.fill(fill);
    m.sig = cl.pki.sign(voter, wire::vote_transcript(cluster, wire::MsgType::kPrevote,
                                                     height, round, m.hash));
    cl.hub.transport(voter).send(0, wire::MsgType::kPrevote, wire::encode_vote(m));
  };

  send_prevote(1, 1, 0, 0x11);
  send_prevote(1, 1, 0, 0x22);
  cl.pump_seconds(1);
  const ConsensusLedger* c0 = cl.cons(0);
  ASSERT_NE(c0, nullptr);
  EXPECT_EQ(c0->equivocations_detected(), 1u);
  EXPECT_TRUE(c0->masked(1));
  EXPECT_EQ(c0->masked_count(), 1u);
  ASSERT_EQ(c0->evidence().size(), 1u);
  EXPECT_EQ(c0->evidence()[0].node, 1u);
  EXPECT_EQ(c0->evidence()[0].kind, 0u);  // conflicting votes

  // Masking is permanent and idempotent: a third conflicting vote changes
  // nothing (it is dropped before it even reaches signature verification).
  send_prevote(1, 1, 0, 0x33);
  cl.pump_seconds(1);
  EXPECT_EQ(c0->equivocations_detected(), 1u);
  EXPECT_EQ(c0->evidence().size(), 1u);

  // Round spam: node 2 names rounds 0..63 of the active height. Before the
  // per-voter slot rework this grew a per-(round, hash) entry for every
  // named round; now at most current_round + 8 lookahead rounds are
  // tracked, one fixed-size slot vector each.
  for (std::uint32_t r = 0; r < 64; ++r) send_prevote(2, 1, r, 0x44);
  cl.pump_seconds(1);
  EXPECT_GE(c0->vote_rounds_tracked(), 1u);
  // The local round may have drifted a little (idle skip quorums), but 64
  // named rounds must never mean 64 tracked rounds.
  EXPECT_LE(c0->vote_rounds_tracked(), c0->current_round() + 9u);

  codec::Writer w;
  cl.hosts[0]->ledger().serialize_state(w);
  codec::Reader r{codec::ByteView(w.buffer())};
  ConsensusLedgerConfig lc;
  lc.n = cl.cfg.n;
  lc.f = cl.cfg.f;
  lc.self = 0;
  ConsensusLedger restored(lc, cl.sim, cl.hub.transport(0));
  ASSERT_TRUE(restored.restore_state(r));
  EXPECT_TRUE(restored.masked(1));
  EXPECT_EQ(restored.equivocations_detected(), 1u);
  ASSERT_EQ(restored.evidence().size(), 1u);
  EXPECT_EQ(restored.evidence()[0].node, 1u);
}

// Future-height intake: exactly ONE height of lookahead is buffered, one
// slot per voter per frame type; anything further ahead is dropped and
// counted. The buffered claims replay through the full validation path on
// commit and must not wedge a later workload.
TEST(ConsensusByzantine, FutureHeightVotesBufferOneHeightOnly) {
  ConsensusCluster cl(runner::Algorithm::kVanilla);
  cl.start();
  const std::uint64_t cluster = cl.hosts[0]->cluster();

  const auto send_signed = [&](std::uint64_t height) {
    wire::VoteMsg m;
    m.height = height;
    m.round = 0;
    m.voter = 2;
    m.hash.fill(0x55);
    m.sig = cl.pki.sign(2, wire::vote_transcript(cluster, wire::MsgType::kPrevote,
                                                 height, 0, m.hash));
    cl.hub.transport(2).send(0, wire::MsgType::kPrevote, wire::encode_vote(m));
  };

  // Active height is 1: height-2 frames park in the buffer (the duplicate
  // prevote takes no second slot), the height-3 frame is dropped.
  send_signed(2);
  send_signed(2);
  send_signed(3);
  wire::RoundSkipMsg skip{2, 0, 2, {}};
  skip.sig = cl.pki.sign(2, wire::round_skip_transcript(cluster, 2, 0));
  cl.hub.transport(2).send(0, wire::MsgType::kRoundSkip,
                           wire::encode_round_skip(skip));
  cl.pump_seconds(1);

  const ConsensusLedger* c0 = cl.cons(0);
  ASSERT_NE(c0, nullptr);
  EXPECT_EQ(c0->votes_buffered(), 2u);  // one prevote slot + one skip slot
  EXPECT_EQ(c0->votes_dropped_ahead(), 1u);

  const auto elements = make_workload(cl.cfg, 8, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  const auto accepted = drive(client, elements);
  ASSERT_TRUE(cl.pump_until([&] { return cl.consolidated(accepted.size()); }));
}

// Random bit-flips on the server<->server links (the kCorrupt fault): every
// corrupted frame must die in a parser, a signature check, or the element
// validators — never in committed state. Conformance against the fault-free
// reference proves it.
TEST(ConsensusRobustness, CorruptedFramesDoNotBreakConformance) {
  ConsensusCluster cl(runner::Algorithm::kVanilla);
  sim::FaultPlan plan;
  plan.faults.push_back(sim::Fault::corrupt(sim::kAnyNode, sim::kAnyNode,
                                            /*probability=*/0.05,
                                            sim::from_millis(10),
                                            sim::from_seconds(30)));
  cl.hub.install_faults(plan, /*seed=*/11);
  cl.start();

  const auto elements = make_workload(cl.cfg, 16, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  const auto accepted = drive(client, elements);
  ASSERT_EQ(accepted.size(), elements.size());

  ASSERT_TRUE(cl.pump_until([&] { return cl.consolidated(accepted.size()); }))
      << "cluster never consolidated under frame corruption";
  ASSERT_TRUE(cl.pump_until([&] { return cl.liveness_green(accepted); }));
  EXPECT_GT(cl.hub.frames_corrupted(), 0u)
      << "the corruption window never touched a frame — the run is vacuous";

  const ReferenceRun reference = run_reference(cl.cfg, elements);
  std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
  assert_cluster_matches_reference(cl.servers(), accepted, created,
                                   cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                   reference, "vanilla/corrupt-frames");
}

// A fabricated block-sync response — structurally a block list, but the
// entry is no valid certified block — must bump cert_rejects and commit
// nothing; the node keeps working afterwards.
TEST(ConsensusRobustness, JunkSyncResponsesAreRejectedAndCounted) {
  ConsensusCluster cl(runner::Algorithm::kVanilla);
  cl.start();

  const codec::Bytes junk = codec::to_bytes("not a certified block");
  std::vector<codec::ByteView> blocks{codec::ByteView(junk)};
  cl.hub.transport(2).send(0, wire::MsgType::kBlockSyncResponse,
                           wire::encode_block_sync_response(blocks));
  cl.pump_seconds(1);
  const ConsensusLedger* c0 = cl.cons(0);
  ASSERT_NE(c0, nullptr);
  EXPECT_EQ(c0->cert_rejects(), 1u);
  EXPECT_EQ(c0->height(), 0u);

  const auto elements = make_workload(cl.cfg, 8, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  const auto accepted = drive(client, elements);
  ASSERT_TRUE(cl.pump_until([&] { return cl.consolidated(accepted.size()); }));
}

// Satellite regression for the fixed-sequencer mode: a replica's kTxSubmit
// stream severed mid-flight (100% drop of replica->sequencer frames for a
// window) must heal by capped-backoff retransmission — before this fix a
// lost submit was silently gone and the element never committed.
TEST(SequencerResubmission, LostSubmitWindowHealsByRetransmission) {
  sim::Simulation sim;
  LoopbackHub hub(sim, 4);
  NodeHostConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.algorithm = runner::Algorithm::kVanilla;
  cfg.collector_limit = 6;
  cfg.collector_timeout = sim::from_millis(200);
  cfg.block_interval = sim::from_millis(150);
  cfg.sync_interval = sim::from_millis(400);
  cfg.resubmit_interval = sim::from_millis(300);

  sim::FaultPlan plan;
  plan.faults.push_back(sim::Fault::drop(/*from=*/2, /*to=*/0,
                                         /*probability=*/1.0,
                                         sim::from_millis(100),
                                         sim::from_millis(2500)));
  hub.install_faults(plan, /*seed=*/5);

  std::vector<std::unique_ptr<NodeHost>> hosts;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    NodeHostConfig c = cfg;
    c.id = i;
    hosts.push_back(std::make_unique<NodeHost>(c, sim, hub.transport(i)));
    hosts.back()->start();
  }
  crypto::Pki pki(cfg.seed);
  for (crypto::ProcessId p = 0; p < cfg.n + cfg.client_slots; ++p) {
    pki.register_process(p);
  }

  // Add ONLY through node 2: every element's path to the ledger is the
  // droppable 2->0 submit link — commits prove retransmission, not luck.
  RemoteNode node2(std::make_unique<LoopbackRpcChannel>(hub, 2), 2);
  const auto elements = make_workload(cfg, 8, pki);
  sim.run_until(sim.now() + sim::from_millis(150));  // enter the drop window
  for (const auto& e : elements) EXPECT_TRUE(node2.add(e));

  const auto consolidated = [&] {
    for (const auto& h : hosts) {
      const auto snap = h->server().get();
      std::size_t in_history = 0;
      for (const auto& rec : *snap.history) in_history += rec.ids.size();
      if (in_history < elements.size()) return false;
    }
    return true;
  };
  const sim::Time deadline = sim.now() + sim::from_seconds(60);
  while (sim.now() < deadline && !consolidated()) {
    sim.run_until(sim.now() + sim::from_millis(250));
  }
  ASSERT_NE(hub.faults(), nullptr);
  EXPECT_GT(hub.faults()->stats().dropped_random, 0u)
      << "the drop window never saw a submit — the regression is untested";
  EXPECT_TRUE(consolidated())
      << "elements submitted through the severed link never committed";
  const auto safety = core::check_safety(
      {&hosts[0]->server(), &hosts[1]->server(), &hosts[2]->server(),
       &hosts[3]->server()});
  EXPECT_TRUE(safety.ok()) << safety.to_string();
}

}  // namespace
}  // namespace setchain::net
