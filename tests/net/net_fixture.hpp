#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>
#include <vector>

#include "core/compresschain.hpp"
#include "core/hashchain.hpp"
#include "core/invariants.hpp"
#include "core/vanilla.hpp"
#include "ledger/ledger_node.hpp"
#include "net/node_host.hpp"

namespace setchain::net::testing {

/// Deterministic workload shared by a live cluster and its reference run:
/// `count` signed elements from client id `cfg.n` (the first pre-registered
/// client slot), exactly what examples/remote_quorum_client generates.
inline std::vector<core::Element> make_workload(const NodeHostConfig& cfg,
                                                std::uint32_t count,
                                                crypto::Pki& pki) {
  workload::ArbitrumLikeGenerator gen(cfg.seed ^ 0xC11E47ULL);
  core::ElementFactory factory(gen, pki, core::Fidelity::kFull);
  std::vector<core::Element> out;
  out.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    out.push_back(factory.make(cfg.n, s));
  }
  return out;
}

struct ReferenceRun {
  std::vector<core::EpochRecord> history;  ///< correct server 0's epoch chain
  std::unordered_set<core::ElementId> the_set;
};

/// The oracle: the same algorithm, same PKI seed, same elements, driven on
/// the deterministic InstantLedger entirely in-process (the harness the
/// conformance suite trusts). Epoch BOUNDARIES may differ from a live run
/// (timing differs); the consolidated set must not, and epoch hashes are
/// content-pure — check_cross_algorithm (P9) asserts exactly that.
template <typename Server>
ReferenceRun run_reference_algo(const NodeHostConfig& cfg,
                                const std::vector<core::Element>& elements) {
  core::SetchainParams params;
  params.n = cfg.n;
  params.f = cfg.f;
  params.fidelity = core::Fidelity::kFull;
  params.collector_limit = cfg.collector_limit;
  params.collector_timeout = 0;  // no clock: flush manually

  crypto::Pki pki(cfg.seed);
  for (crypto::ProcessId p = 0; p < cfg.n + cfg.client_slots; ++p) {
    pki.register_process(p);
  }
  ledger::InstantLedger ledger(cfg.n);

  core::ServerContext ctx;
  ctx.ledger = &ledger;
  ctx.pki = &pki;
  ctx.params = &params;
  std::vector<std::unique_ptr<Server>> servers;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    auto s = std::make_unique<Server>(ctx, i);
    ledger.on_new_block(i, [p = s.get()](const ledger::Block& b) { p->on_new_block(b); });
    servers.push_back(std::move(s));
  }
  if constexpr (std::is_same_v<Server, core::HashchainServer>) {
    std::vector<core::HashchainServer*> peers;
    for (auto& s : servers) peers.push_back(s.get());
    for (auto& s : servers) s->connect_peers(peers);
  }

  const auto flush = [&] {
    if constexpr (!std::is_same_v<Server, core::VanillaServer>) {
      for (auto& s : servers) s->collector().flush();
    }
  };
  // kAll write policy, like the live QuorumClient: every server sees every
  // element (later copies are duplicates the algorithms discard).
  for (const auto& e : elements) {
    for (auto& s : servers) s->add(e);
  }
  for (int round = 0; round < 400; ++round) {
    flush();
    if (!ledger.seal_block()) {
      flush();
      if (!ledger.seal_block()) break;
    }
  }

  ReferenceRun out;
  const auto snap = servers.front()->get();
  out.history = *snap.history;
  out.the_set = *snap.the_set;
  return out;
}

inline ReferenceRun run_reference(const NodeHostConfig& cfg,
                                  const std::vector<core::Element>& elements) {
  switch (cfg.algorithm) {
    case runner::Algorithm::kVanilla:
      return run_reference_algo<core::VanillaServer>(cfg, elements);
    case runner::Algorithm::kCompresschain:
      return run_reference_algo<core::CompresschainServer>(cfg, elements);
    case runner::Algorithm::kHashchain:
      return run_reference_algo<core::HashchainServer>(cfg, elements);
  }
  return {};
}

/// Assert the per-run Setchain property set (P1-P8) plus P9 against the
/// reference run, on the (all-correct) servers of a live cluster.
inline void assert_cluster_matches_reference(
    const std::vector<const core::SetchainServer*>& servers,
    const std::vector<core::ElementId>& accepted,
    const std::unordered_set<core::ElementId>& created,
    const core::SetchainParams& params, const crypto::Pki& pki,
    const ReferenceRun& reference, const char* label) {
  const auto safety = core::check_safety(servers);
  EXPECT_TRUE(safety.ok()) << label << "\n" << safety.to_string();
  const auto live = core::check_liveness_quiescent(servers, accepted, params, pki);
  EXPECT_TRUE(live.ok()) << label << "\n" << live.to_string();
  const auto p7 = core::check_add_before_get(servers, created);
  EXPECT_TRUE(p7.ok()) << label << "\n" << p7.to_string();

  // P9 live-vs-sim: same consolidated set, content-pure hashes wherever the
  // two runs agree on an epoch's (number, contents).
  const auto live_snap = servers.front()->get();
  std::vector<core::AlgoRun> runs;
  runs.push_back({std::string(label) + "/live", live_snap.history});
  runs.push_back({std::string(label) + "/sim-reference", &reference.history});
  const auto p9 = core::check_cross_algorithm(runs);
  EXPECT_TRUE(p9.ok()) << label << "\n" << p9.to_string();

  // Belt and braces: the live consolidated set IS the reference one.
  std::unordered_set<core::ElementId> live_set;
  for (const auto& rec : *live_snap.history) {
    live_set.insert(rec.ids.begin(), rec.ids.end());
  }
  EXPECT_EQ(live_set, reference.the_set) << label;
}

}  // namespace setchain::net::testing
