// Live-cluster conformance over the in-process loopback transport: four
// NodeHosts (the exact stack a TCP daemon runs — wire codec, replicated
// ledger, batch exchange, client RPC) on a shared discrete-event simulation,
// driven through QuorumClient over RemoteNode stubs, checked against the
// Setchain properties (P1-P8), the InstantLedger reference run (P9
// live-vs-sim), and the quorum get/verify client protocol — plus
// fault-injection reuse: the same sim::FaultInjector that rules on the
// pointer network rules on loopback frames.
#include "net/loopback.hpp"

#include <gtest/gtest.h>

#include "api/quorum_client.hpp"
#include "net/remote_node.hpp"
#include "net_fixture.hpp"

namespace setchain::net {
namespace {

using namespace setchain::net::testing;

struct LoopbackCluster {
  NodeHostConfig cfg;
  sim::Simulation sim;
  LoopbackHub hub;
  std::vector<std::unique_ptr<NodeHost>> hosts;
  crypto::Pki pki;  ///< client-side PKI (same seed -> same keys as daemons)

  explicit LoopbackCluster(runner::Algorithm algo, std::uint32_t n = 4)
      : cfg(make_config(algo, n)), hub(sim, n), pki(cfg.seed) {
    for (crypto::ProcessId p = 0; p < cfg.n + cfg.client_slots; ++p) {
      pki.register_process(p);
    }
  }

  static NodeHostConfig make_config(runner::Algorithm algo, std::uint32_t n) {
    NodeHostConfig cfg;
    cfg.n = n;
    cfg.f = (n - 1) / 3;
    cfg.algorithm = algo;
    cfg.seed = 42;
    cfg.collector_limit = 6;
    cfg.collector_timeout = sim::from_millis(200);
    cfg.block_interval = sim::from_millis(150);
    cfg.sync_interval = sim::from_millis(400);
    return cfg;
  }

  void start() {
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      NodeHostConfig c = cfg;
      c.id = i;
      hosts.push_back(std::make_unique<NodeHost>(c, sim, hub.transport(i)));
      hosts.back()->start();
    }
  }

  api::QuorumClient client(std::vector<std::unique_ptr<RemoteNode>>& stubs) {
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      stubs.push_back(std::make_unique<RemoteNode>(
          std::make_unique<LoopbackRpcChannel>(hub, i), i));
    }
    return api::make_quorum_client(stubs, pki, cfg.f, core::Fidelity::kFull,
                                   api::WritePolicy::kAll);
  }

  void pump_seconds(double s) { sim.run_until(sim.now() + sim::from_seconds(s)); }

  /// Pump until `pred` holds (checked every virtual 250 ms). False on
  /// virtual-time budget exhaustion.
  bool pump_until(const std::function<bool()>& pred, double budget_seconds = 120) {
    const sim::Time deadline = sim.now() + sim::from_seconds(budget_seconds);
    while (sim.now() < deadline) {
      if (pred()) return true;
      sim.run_until(sim.now() + sim::from_millis(250));
    }
    return pred();
  }

  std::vector<const core::SetchainServer*> servers() const {
    std::vector<const core::SetchainServer*> out;
    for (const auto& h : hosts) out.push_back(&h->server());
    return out;
  }

  bool all_consolidated(std::size_t expect) const {
    for (const auto& h : hosts) {
      const auto snap = h->server().get();
      std::size_t in_history = 0;
      for (const auto& rec : *snap.history) in_history += rec.ids.size();
      if (in_history < expect) return false;
    }
    return true;
  }

  bool liveness_green(const std::vector<core::ElementId>& accepted) const {
    return core::check_liveness_quiescent(servers(), accepted, hosts[0]->params(),
                                          hosts[0]->pki())
        .ok();
  }
};

/// Drive the workload through the full wire path and return accepted ids.
std::vector<core::ElementId> drive(api::QuorumClient& client,
                                   const std::vector<core::Element>& elements) {
  std::vector<core::ElementId> accepted;
  for (const auto& e : elements) {
    const auto r = client.add(e);
    EXPECT_TRUE(r.ok) << "add refused everywhere, element " << e.id;
    if (r.ok) accepted.push_back(e.id);
  }
  return accepted;
}

class LoopbackClusterConformance
    : public ::testing::TestWithParam<runner::Algorithm> {};

// The tentpole validation: the P1-P9 conformance checks and the quorum
// client protocol, against a 4-node cluster whose every interaction is a
// decoded wire frame, with results matching the in-process sim reference.
TEST_P(LoopbackClusterConformance, WireClusterMatchesSimReference) {
  LoopbackCluster cl(GetParam());
  cl.start();

  const auto elements = make_workload(cl.cfg, 30, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);

  const auto accepted = drive(client, elements);
  ASSERT_EQ(accepted.size(), elements.size());

  // Drain: consolidation everywhere, then the proof traffic behind P8.
  ASSERT_TRUE(cl.pump_until([&] { return cl.all_consolidated(accepted.size()); }))
      << "cluster never consolidated the workload";
  ASSERT_TRUE(cl.pump_until([&] { return cl.liveness_green(accepted); }))
      << "epoch-proof traffic never reached quiescence";

  // P1-P9 against the InstantLedger reference run of the same workload.
  const ReferenceRun reference = run_reference(cl.cfg, elements);
  std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
  assert_cluster_matches_reference(cl.servers(), accepted, created,
                                   cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                   reference,
                                   runner::algorithm_name(GetParam()));

  // Quorum client protocol over the wire: f+1-agreed view + commit check.
  const auto view = client.get();
  EXPECT_EQ(view.masked_nodes, 0u);
  for (const auto id : accepted) {
    EXPECT_TRUE(view.the_set.contains(id)) << "quorum view missing " << id;
  }
  const auto verdict = client.verify(accepted.front());
  EXPECT_TRUE(verdict.in_epoch);
  EXPECT_TRUE(verdict.committed);
  EXPECT_GE(verdict.valid_proofs, cl.cfg.f + 1);

  // The cluster really ran on frames: ledger blocks were broadcast and (for
  // hashchain) batches travelled the exchange.
  EXPECT_GT(cl.hosts[0]->ledger().blocks_broadcast(), 0u);
  std::uint64_t frames = 0;
  for (std::uint32_t i = 0; i < cl.cfg.n; ++i) {
    frames += cl.hub.transport(i).counters().frames_received;
  }
  EXPECT_GT(frames, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, LoopbackClusterConformance,
                         ::testing::Values(runner::Algorithm::kVanilla,
                                           runner::Algorithm::kCompresschain,
                                           runner::Algorithm::kHashchain),
                         [](const auto& info) {
                           return std::string(runner::algorithm_name(info.param));
                         });

// Fault-injector reuse on the loopback transport: a one-way link drop window
// between the sequencer and one replica loses block frames for real (the
// injector counts them), and the sync pull heals the gap after the window —
// the transport equivalent of the PR-4 fault scenarios.
TEST(LoopbackClusterFaults, DirectedDropWindowHealsViaBlockSync) {
  LoopbackCluster cl(runner::Algorithm::kHashchain);
  sim::FaultPlan plan;
  plan.faults.push_back(sim::Fault::drop(/*from=*/0, /*to=*/2, /*probability=*/1.0,
                                         sim::from_millis(200), sim::from_seconds(4)));
  cl.hub.install_faults(plan, /*seed=*/7);
  cl.start();

  const auto elements = make_workload(cl.cfg, 24, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  const auto accepted = drive(client, elements);
  ASSERT_EQ(accepted.size(), elements.size());

  // The victim link really dropped frames (blocks and/or sync responses).
  ASSERT_NE(cl.hub.faults(), nullptr);
  EXPECT_TRUE(cl.pump_until(
      [&] { return cl.hub.faults()->stats().dropped_random > 0; }, 10))
      << "fault window never saw traffic on the victim link";

  // After the heal, node 2 recovers the lost heights via kBlockSyncRequest
  // and the whole cluster converges to full liveness.
  ASSERT_TRUE(cl.pump_until([&] { return cl.all_consolidated(accepted.size()); }))
      << "victim node never caught up past the drop window";
  ASSERT_TRUE(cl.pump_until([&] { return cl.liveness_green(accepted); }));
  const auto safety = core::check_safety(cl.servers());
  EXPECT_TRUE(safety.ok()) << safety.to_string();
  EXPECT_GT(cl.hub.frames_dropped(), 0u);
}

// Symmetric partition of one replica: during the window its announcements
// and fetches go nowhere; afterwards block sync + batch-fetch retries bring
// it back to the exact same state as everyone else.
TEST(LoopbackClusterFaults, PartitionedReplicaRejoins) {
  LoopbackCluster cl(runner::Algorithm::kHashchain);
  sim::FaultPlan plan;
  plan.faults.push_back(sim::Fault::partition({3}, sim::from_millis(200),
                                              sim::from_seconds(5),
                                              /*symmetric=*/true));
  cl.hub.install_faults(plan, /*seed=*/11);
  cl.start();

  const auto elements = make_workload(cl.cfg, 24, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  const auto accepted = drive(client, elements);
  ASSERT_EQ(accepted.size(), elements.size());

  ASSERT_TRUE(cl.pump_until([&] { return cl.all_consolidated(accepted.size()); }))
      << "partitioned node never rejoined";
  ASSERT_TRUE(cl.pump_until([&] { return cl.liveness_green(accepted); }));
  EXPECT_GT(cl.hub.faults()->stats().dropped_partition, 0u);

  // Consistent-Gets across the healed cluster, node 3 included.
  const auto safety = core::check_safety(cl.servers());
  EXPECT_TRUE(safety.ok()) << safety.to_string();
}

// A garbage frame (bad payload for its type) must be counted and ignored,
// never crash a node or poison its state.
TEST(LoopbackClusterRobustness, MalformedPayloadsAreCountedAndIgnored) {
  LoopbackCluster cl(runner::Algorithm::kHashchain);
  cl.start();

  // Raw junk payloads under every server-to-server type, "from" node 1.
  for (const auto type :
       {wire::MsgType::kTxSubmit, wire::MsgType::kBlock,
        wire::MsgType::kBlockSyncRequest, wire::MsgType::kBlockSyncResponse,
        wire::MsgType::kBatchRequest, wire::MsgType::kBatchResponse}) {
    cl.hub.transport(1).send(0, type, codec::to_bytes("junk payload"));
  }
  cl.pump_seconds(1);
  EXPECT_EQ(cl.hosts[0]->bad_frames(), 6u);

  // The node still works: a normal workload goes through untouched.
  const auto elements = make_workload(cl.cfg, 8, cl.pki);
  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  const auto accepted = drive(client, elements);
  ASSERT_TRUE(cl.pump_until([&] { return cl.all_consolidated(accepted.size()); }));
}

}  // namespace
}  // namespace setchain::net
