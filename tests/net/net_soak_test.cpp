// Sustained-load soak of a live 4-node TCP cluster on the event-loop
// transport: a QuorumClient pushes a workload an order of magnitude beyond
// the conformance tests through real sockets, and afterwards the transport
// counters must show a clean run — zero framing errors, zero dropped
// frames, send queues bounded well under the drop limit — and the cluster
// state must still pass the full P1-P9 conformance battery against the
// deterministic sim reference.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/quorum_client.hpp"
#include "net/remote_node.hpp"
#include "net/tcp.hpp"
#include "net_fixture.hpp"

namespace setchain::net {
namespace {

using namespace setchain::net::testing;
using namespace std::chrono_literals;

constexpr std::uint32_t kWorkload = 160;

NodeHostConfig soak_config() {
  NodeHostConfig cfg;
  cfg.n = 4;
  cfg.f = 1;
  cfg.algorithm = runner::Algorithm::kHashchain;
  cfg.seed = 42;
  // Tighter timers than the conformance tests: more epochs, more batch
  // exchange round trips, more frames per element — a denser soak.
  cfg.collector_limit = 8;
  cfg.collector_timeout = sim::from_millis(40);
  cfg.block_interval = sim::from_millis(40);
  cfg.sync_interval = sim::from_millis(150);
  return cfg;
}

TEST(NetSoak, SustainedLoadStaysCleanAndConformant) {
  const NodeHostConfig cfg = soak_config();
  crypto::Pki pki(cfg.seed);
  for (crypto::ProcessId p = 0; p < cfg.n + cfg.client_slots; ++p) {
    pki.register_process(p);
  }

  std::vector<std::unique_ptr<TcpTransport>> transports;
  std::vector<std::unique_ptr<sim::Simulation>> sims;
  std::vector<std::unique_ptr<NodeHost>> hosts;
  std::vector<std::string> peer_addrs;
  const std::uint64_t cluster = NodeHost::cluster_id_of(cfg);
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    TcpConfig tc;
    tc.self = i;
    tc.n = cfg.n;
    tc.cluster = cluster;
    tc.listen_port = 0;
    tc.peers = peer_addrs;
    tc.peers.resize(cfg.n);
    transports.push_back(std::make_unique<TcpTransport>(tc));
    peer_addrs.push_back("127.0.0.1:" +
                         std::to_string(transports[i]->listen_port()));
  }
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    NodeHostConfig c = cfg;
    c.id = i;
    sims.push_back(std::make_unique<sim::Simulation>());
    hosts.push_back(std::make_unique<NodeHost>(c, *sims[i], *transports[i]));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> pumps;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    hosts[i]->start();
    transports[i]->start();
  }
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    pumps.emplace_back([&, i] { hosts[i]->run_realtime(stop); });
  }

  std::vector<std::unique_ptr<RemoteNode>> stubs;
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    TcpRpcChannel::Config ch;
    ch.host = "127.0.0.1";
    ch.port = transports[i]->listen_port();
    ch.client_id = cfg.n;
    ch.cluster = cluster;
    stubs.push_back(std::make_unique<RemoteNode>(
        std::make_unique<TcpRpcChannel>(ch), i, 3000ms));
  }
  api::QuorumClient client = api::make_quorum_client(
      stubs, pki, cfg.f, core::Fidelity::kFull, api::WritePolicy::kAll);

  const auto elements = make_workload(cfg, kWorkload, pki);
  std::vector<core::ElementId> accepted;
  for (const auto& e : elements) {
    const auto r = client.add(e);
    EXPECT_TRUE(r.ok) << "add refused everywhere for " << e.id;
    if (r.ok) accepted.push_back(e.id);
  }
  ASSERT_EQ(accepted.size(), elements.size());

  // Drain: the f+1-agreed view covers the workload and proof traffic has
  // fully settled on every node.
  const auto deadline = std::chrono::steady_clock::now() + 120s;
  const auto wait_for = [&](const std::function<bool()>& pred) {
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(100ms);
    }
    return pred();
  };
  ASSERT_TRUE(wait_for([&] {
    const auto view = client.get();
    for (const auto id : accepted) {
      if (!view.the_set.contains(id)) return false;
    }
    return view.epoch > 0;
  })) << "quorum view never covered the soak workload";
  ASSERT_TRUE(wait_for([&] {
    const auto view = client.get();
    for (auto& stub : stubs) {
      for (std::uint64_t e = 1; e <= view.epoch; ++e) {
        if (stub->proofs_for_epoch(e).size() < cfg.f + 1) return false;
      }
    }
    return true;
  })) << "epoch proofs never drained to every node";

  stop.store(true);
  for (auto& t : pumps) {
    if (t.joinable()) t.join();
  }
  for (auto& t : transports) t->stop();

  // A soak is only a pass if the wire stayed clean the whole way through.
  for (std::uint32_t i = 0; i < cfg.n; ++i) {
    const auto c = transports[i]->counters();
    EXPECT_EQ(c.decode_errors, 0u) << "node " << i;
    EXPECT_EQ(c.send_drops, 0u) << "node " << i;
    EXPECT_EQ(c.send_drops_peer, 0u) << "node " << i;
    EXPECT_EQ(c.send_drops_client, 0u) << "node " << i;
    EXPECT_EQ(c.send_drops_peer + c.send_drops_client, c.send_drops)
        << "node " << i;
    EXPECT_GT(c.frames_sent, static_cast<std::uint64_t>(kWorkload)) << "node " << i;
    // Bounded backpressure: traffic queued (peak > 0) but never came near
    // the drop threshold.
    EXPECT_GT(c.send_queue_peak, 0u) << "node " << i;
    EXPECT_LT(c.send_queue_peak, TcpConfig{}.send_queue_limit / 2) << "node " << i;
  }

  // The usual white-box epilogue: P1-P9 against the sim reference.
  const ReferenceRun reference = run_reference(cfg, elements);
  std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
  std::vector<const core::SetchainServer*> servers;
  for (const auto& h : hosts) servers.push_back(&h->server());
  assert_cluster_matches_reference(servers, accepted, created,
                                   hosts[0]->params(), hosts[0]->pki(),
                                   reference, "hashchain/soak");
}

}  // namespace
}  // namespace setchain::net
