// Live 4-node TCP cluster, in-process: four NodeHosts on real localhost
// sockets (ephemeral ports), each pumped by its own thread, driven from the
// test thread through QuorumClient over TcpRpcChannel/RemoteNode — the
// exact client stack of examples/remote_quorum_client. After the cluster
// drains, the hosts stop and the white-box P1-P9 conformance checks run
// against the InstantLedger reference of the same workload.
#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/quorum_client.hpp"
#include "net/remote_node.hpp"
#include "net_fixture.hpp"

namespace setchain::net {
namespace {

using namespace setchain::net::testing;
using namespace std::chrono_literals;

struct Cluster {
  static NodeHostConfig make_config(runner::Algorithm algo,
                                    runner::LedgerMode mode) {
    NodeHostConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.algorithm = algo;
    cfg.seed = 42;
    cfg.collector_limit = 6;
    cfg.collector_timeout = sim::from_millis(100);
    cfg.block_interval = sim::from_millis(80);
    cfg.sync_interval = sim::from_millis(200);
    cfg.ledger_mode = mode;
    if (mode == runner::LedgerMode::kConsensus) {
      // Real-time test: rounds must skip a dead proposer within seconds.
      cfg.timeout_propose = sim::from_millis(800);
      cfg.retry_interval = sim::from_millis(200);
    }
    return cfg;
  }

  NodeHostConfig cfg;
  std::vector<std::unique_ptr<sim::Simulation>> sims;
  std::vector<std::unique_ptr<TcpTransport>> transports;
  std::vector<std::unique_ptr<NodeHost>> hosts;
  std::vector<std::thread> pumps;
  // One stop flag per node so a single node can be killed mid-run.
  std::vector<std::unique_ptr<std::atomic<bool>>> stops;
  bool stopped = false;
  crypto::Pki pki;

  explicit Cluster(runner::Algorithm algo,
                   runner::LedgerMode mode = runner::LedgerMode::kFixedSequencer)
      : cfg(make_config(algo, mode)), pki(cfg.seed) {
    for (crypto::ProcessId p = 0; p < cfg.n + cfg.client_slots; ++p) {
      pki.register_process(p);
    }

    // Bind each transport on an ephemeral port in id order, collecting the
    // addresses as we go. Dialing only targets LOWER ids, whose transports
    // (and ports) already exist, so the peer list each transport needs is
    // always complete at construction time.
    std::vector<std::string> peer_addrs;
    const std::uint64_t cluster = NodeHost::cluster_id_of(cfg);
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      TcpConfig tc;
      tc.self = i;
      tc.n = cfg.n;
      tc.cluster = cluster;
      tc.listen_port = 0;
      tc.peers = peer_addrs;  // ids 0..i-1: exactly the dial targets
      tc.peers.resize(cfg.n);
      transports.push_back(std::make_unique<TcpTransport>(tc));
      peer_addrs.push_back("127.0.0.1:" +
                           std::to_string(transports[i]->listen_port()));
    }

    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      NodeHostConfig c = cfg;
      c.id = i;
      sims.push_back(std::make_unique<sim::Simulation>());
      hosts.push_back(std::make_unique<NodeHost>(c, *sims[i], *transports[i]));
    }
  }

  void start() {
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      hosts[i]->start();
      transports[i]->start();
    }
    // All stop flags exist before any pump thread runs: a pump dereferences
    // its flag through a stable pointer, never through the still-growing
    // vector (push_back may reallocate under a concurrent reader).
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      stops.push_back(std::make_unique<std::atomic<bool>>(false));
    }
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      std::atomic<bool>* stop = stops[i].get();
      pumps.emplace_back([this, i, stop] { hosts[i]->run_realtime(*stop); });
    }
  }

  /// Take one node down hard: its pump stops, its sockets close, peers see
  /// dead connections. The in-process stand-in for SIGKILLing a daemon.
  void kill_node(std::uint32_t i) {
    if (stops[i]->exchange(true)) return;
    if (pumps[i].joinable()) pumps[i].join();
    transports[i]->stop();
  }

  void shutdown() {
    if (stopped) return;
    stopped = true;
    for (auto& s : stops) s->store(true);
    for (auto& t : pumps) {
      if (t.joinable()) t.join();
    }
    for (auto& t : transports) t->stop();  // idempotent for killed nodes
  }

  ~Cluster() { shutdown(); }

  api::QuorumClient client(std::vector<std::unique_ptr<RemoteNode>>& stubs) {
    const std::uint64_t cluster = NodeHost::cluster_id_of(cfg);
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
      TcpRpcChannel::Config ch;
      ch.host = "127.0.0.1";
      ch.port = transports[i]->listen_port();
      ch.client_id = cfg.n;
      ch.cluster = cluster;
      stubs.push_back(std::make_unique<RemoteNode>(
          std::make_unique<TcpRpcChannel>(ch), i, 3000ms));
    }
    return api::make_quorum_client(stubs, pki, cfg.f, core::Fidelity::kFull,
                                   api::WritePolicy::kAll);
  }

  std::vector<const core::SetchainServer*> servers() const {
    std::vector<const core::SetchainServer*> out;
    for (const auto& h : hosts) out.push_back(&h->server());
    return out;
  }
};

void run_tcp_conformance(runner::Algorithm algo,
                         runner::LedgerMode mode =
                             runner::LedgerMode::kFixedSequencer) {
  Cluster cl(algo, mode);
  cl.start();

  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  const auto elements = make_workload(cl.cfg, 24, cl.pki);

  std::vector<core::ElementId> accepted;
  for (const auto& e : elements) {
    const auto r = client.add(e);
    EXPECT_TRUE(r.ok) << "add refused everywhere for " << e.id;
    if (r.ok) accepted.push_back(e.id);
  }
  ASSERT_EQ(accepted.size(), elements.size());

  // Client-side convergence: every element in the f+1-agreed view, then
  // every node's proof store holds f+1 proofs for every agreed epoch (the
  // signal that the proof traffic behind P8 has fully drained).
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  const auto wait_for = [&](const std::function<bool()>& pred) {
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(100ms);
    }
    return pred();
  };

  ASSERT_TRUE(wait_for([&] {
    const auto view = client.get();
    for (const auto id : accepted) {
      if (!view.the_set.contains(id)) return false;
    }
    return view.epoch > 0;
  })) << "quorum view never covered the workload";

  ASSERT_TRUE(wait_for([&] {
    const auto view = client.get();
    for (auto& stub : stubs) {
      for (std::uint64_t e = 1; e <= view.epoch; ++e) {
        if (stub->proofs_for_epoch(e).size() < cl.cfg.f + 1) return false;
      }
    }
    return true;
  })) << "epoch proofs never drained to every node";

  // Quorum commit check over live TCP.
  const auto verdict = client.verify(accepted.front());
  EXPECT_TRUE(verdict.committed);
  EXPECT_GE(verdict.valid_proofs, cl.cfg.f + 1);

  // Freeze the cluster, then white-box conformance vs the sim reference.
  cl.shutdown();
  const ReferenceRun reference = run_reference(cl.cfg, elements);
  std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
  assert_cluster_matches_reference(cl.servers(), accepted, created,
                                   cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                   reference, runner::algorithm_name(algo));
}

TEST(TcpCluster, HashchainConformanceEndToEnd) {
  run_tcp_conformance(runner::Algorithm::kHashchain);
}

TEST(TcpCluster, VanillaConformanceEndToEnd) {
  run_tcp_conformance(runner::Algorithm::kVanilla);
}

// The full wire path with --ledger consensus: real sockets, voting ledger,
// same P1-P9 verdicts as the sim reference.
TEST(TcpCluster, ConsensusConformanceEndToEnd) {
  run_tcp_conformance(runner::Algorithm::kHashchain,
                      runner::LedgerMode::kConsensus);
}

// The acceptance scenario on real sockets: a consensus cluster keeps
// committing after the round-0 proposer (node 1 = proposer_for(1,0)) is
// killed mid-workload — the exact run that stalls forever under the fixed
// sequencer when its node dies.
TEST(TcpCluster, ConsensusSurvivesProposerKill) {
  Cluster cl(runner::Algorithm::kVanilla, runner::LedgerMode::kConsensus);
  cl.start();

  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  const auto elements = make_workload(cl.cfg, 24, cl.pki);

  // First half of the workload with all four nodes up.
  std::vector<core::ElementId> accepted;
  for (std::size_t i = 0; i < 12; ++i) {
    const auto r = client.add(elements[i]);
    EXPECT_TRUE(r.ok) << "add refused everywhere for " << elements[i].id;
    if (r.ok) accepted.push_back(elements[i].id);
  }
  ASSERT_EQ(accepted.size(), 12u);

  const auto deadline = std::chrono::steady_clock::now() + 90s;
  const auto wait_for = [&](const std::function<bool()>& pred) {
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(100ms);
    }
    return pred();
  };
  ASSERT_TRUE(wait_for([&] {
    const auto view = client.get();
    for (const auto id : accepted) {
      if (!view.the_set.contains(id)) return false;
    }
    return view.epoch > 0;
  })) << "cluster never consolidated the pre-kill workload";

  // SIGKILL stand-in: node 1's pump stops and its sockets close. Every
  // height h with h % 4 == 1 now needs a round skip to commit.
  cl.kill_node(1);

  // Second half, minted AFTER the kill: adds go through (stub 1 just fails
  // fast, per-call deadline) and the survivors must commit all of them.
  for (std::size_t i = 12; i < elements.size(); ++i) {
    const auto r = client.add(elements[i]);
    EXPECT_TRUE(r.ok) << "add refused everywhere for " << elements[i].id;
    if (r.ok) accepted.push_back(elements[i].id);
  }
  ASSERT_EQ(accepted.size(), elements.size());

  ASSERT_TRUE(wait_for([&] {
    const auto view = client.get();
    for (const auto id : accepted) {
      if (!view.the_set.contains(id)) return false;
    }
    return true;
  })) << "survivors never consolidated past the killed proposer";

  // Proofs drain to every SURVIVOR; the quorum commit check still clears
  // f+1 because only one of n=4 nodes is gone.
  ASSERT_TRUE(wait_for([&] {
    const auto view = client.get();
    for (std::uint32_t i = 0; i < stubs.size(); ++i) {
      if (i == 1) continue;
      for (std::uint64_t e = 1; e <= view.epoch; ++e) {
        if (stubs[i]->proofs_for_epoch(e).size() < cl.cfg.f + 1) return false;
      }
    }
    return true;
  })) << "epoch proofs never drained to the survivors";
  const auto verdict = client.verify(accepted.front());
  EXPECT_TRUE(verdict.committed);
  EXPECT_GE(verdict.valid_proofs, cl.cfg.f + 1);

  // Freeze the survivors and run white-box conformance against the
  // fault-free reference: the committed set must be exactly the workload.
  cl.shutdown();
  const ReferenceRun reference = run_reference(cl.cfg, elements);
  std::unordered_set<core::ElementId> created(accepted.begin(), accepted.end());
  std::vector<const core::SetchainServer*> survivors;
  for (std::uint32_t i = 0; i < cl.cfg.n; ++i) {
    if (i != 1) survivors.push_back(&cl.hosts[i]->server());
  }
  assert_cluster_matches_reference(survivors, accepted, created,
                                   cl.hosts[0]->params(), cl.hosts[0]->pki(),
                                   reference, "vanilla/consensus-kill");
}

// Reconnect-with-backoff: a client channel outlives a node... covered at the
// transport level instead: a stranger speaking garbage is cut off without
// disturbing the cluster.
TEST(TcpCluster, GarbageStreamIsRejected) {
  Cluster cl(runner::Algorithm::kVanilla);
  cl.start();

  // Raw socket, no hello, straight garbage: the node must drop the stream
  // (decode error) and keep serving real clients.
  {
    TcpRpcChannel::Config ch;
    ch.host = "127.0.0.1";
    ch.port = cl.transports[0]->listen_port();
    ch.client_id = cl.cfg.n;
    ch.cluster = 0xBAD;  // wrong cluster id: hello refused, stream killed
    TcpRpcChannel bad(ch);
    EXPECT_FALSE(bad.call(wire::MsgType::kEpochRequest,
                          wire::encode_epoch_request({1}), 500ms)
                     .has_value());
  }

  std::vector<std::unique_ptr<RemoteNode>> stubs;
  api::QuorumClient client = cl.client(stubs);
  const auto elements = make_workload(cl.cfg, 4, cl.pki);
  for (const auto& e : elements) {
    EXPECT_TRUE(client.add(e).ok);
  }
  cl.shutdown();
  EXPECT_GT(cl.transports[0]->counters().decode_errors, 0u);
}

}  // namespace
}  // namespace setchain::net
