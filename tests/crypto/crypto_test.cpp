#include <gtest/gtest.h>

#include <string>

#include "codec/hex.hpp"
#include "crypto/bigint.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/fe25519.hpp"
#include "crypto/ge25519.hpp"
#include "crypto/hmac.hpp"
#include "crypto/pki.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "sim/rng.hpp"

namespace setchain::crypto {
namespace {

std::string hex(codec::ByteView b) { return codec::to_hex(b); }

template <std::size_t N>
std::array<std::uint8_t, N> arr(const char* h) {
  const auto b = codec::from_hex(h);
  EXPECT_TRUE(b && b->size() == N);
  std::array<std::uint8_t, N> out{};
  std::copy(b->begin(), b->end(), out.begin());
  return out;
}

// ------------------------------------------------------------------- SHA-256

TEST(Sha256, NistVectors) {
  EXPECT_EQ(hex(Sha256::hash(codec::to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex(Sha256::hash(codec::to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 ctx;
  const codec::Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  const auto d = ctx.finalize();
  EXPECT_EQ(hex(codec::ByteView(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const auto msg = codec::to_bytes("the quick brown fox jumps over the lazy dog etc");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.update(codec::ByteView(msg.data(), split));
    ctx.update(codec::ByteView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(ctx.finalize(), Sha256::hash(msg)) << split;
  }
}

// ------------------------------------------------------------------- SHA-512

TEST(Sha512, NistVectors) {
  EXPECT_EQ(hex(Sha512::hash(codec::to_bytes("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
  EXPECT_EQ(hex(Sha512::hash({})),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
  EXPECT_EQ(
      hex(Sha512::hash(codec::to_bytes(
          "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
          "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
      "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
      "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, MillionA) {
  Sha512 ctx;
  const codec::Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  const auto d = ctx.finalize();
  EXPECT_EQ(hex(codec::ByteView(d.data(), d.size())),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

TEST(Sha512, IncrementalAcrossBlockBoundary) {
  codec::Bytes msg(300);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::uint8_t>(i);
  for (const std::size_t split : {0u, 1u, 63u, 64u, 127u, 128u, 129u, 255u, 300u}) {
    Sha512 ctx;
    ctx.update(codec::ByteView(msg.data(), split));
    ctx.update(codec::ByteView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(ctx.finalize(), Sha512::hash(msg)) << split;
  }
}

// ---------------------------------------------------------------------- HMAC

TEST(Hmac, Rfc4231Case1) {
  const codec::Bytes key(20, 0x0b);
  const auto msg = codec::to_bytes("Hi There");
  const auto mac256 = hmac<Sha256, 64>(key, msg);
  EXPECT_EQ(hex(codec::ByteView(mac256.data(), mac256.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  const auto mac512 = hmac<Sha512, 128>(key, msg);
  EXPECT_EQ(hex(codec::ByteView(mac512.data(), mac512.size())),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde"
            "daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854");
}

TEST(Hmac, Rfc4231Case2) {
  const auto key = codec::to_bytes("Jefe");
  const auto msg = codec::to_bytes("what do ya want for nothing?");
  const auto mac = hmac<Sha256, 64>(key, msg);
  EXPECT_EQ(hex(codec::ByteView(mac.data(), mac.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  const codec::Bytes key(131, 0xaa);  // RFC 4231 case 6 key shape
  const auto msg = codec::to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
  const auto mac = hmac<Sha256, 64>(key, msg);
  EXPECT_EQ(hex(codec::ByteView(mac.data(), mac.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// -------------------------------------------------------------------- bigint

TEST(BigInt, AddSubCarry) {
  U256 a = U256::from_u64(0xFFFFFFFFFFFFFFFFULL);
  const U256 one = U256::from_u64(1);
  EXPECT_EQ(a.add_in_place(one), 0u);
  EXPECT_EQ(a.w[0], 0u);
  EXPECT_EQ(a.w[1], 1u);
  EXPECT_EQ(a.sub_in_place(one), 0u);
  EXPECT_EQ(a.w[0], 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(a.w[1], 0u);
}

TEST(BigInt, SubBorrowsToZero) {
  U256 a = U256::from_u64(5);
  const U256 b = U256::from_u64(7);
  EXPECT_EQ(a.sub_in_place(b), 1u);  // borrow out: a < b
}

TEST(BigInt, MulMatchesSchoolbookSmall) {
  const U256 a = U256::from_u64(0xFFFFFFFFULL);
  const U512 p = mul_256(a, a);
  EXPECT_EQ(p.w[0], 0xFFFFFFFE00000001ULL);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(p.w[i], 0u);
}

TEST(BigInt, ModReducesCorrectly) {
  // x = q*m + r with small values checked exactly.
  const U256 m = U256::from_u64(97);
  U512 x;
  x.w[0] = 12345;
  const U256 r = mod_512(x, m);
  EXPECT_EQ(r.w[0], 12345 % 97);
}

TEST(BigInt, ModOfLargeValue) {
  U512 x;
  for (auto& w : x.w) w = 0xFFFFFFFFFFFFFFFFULL;
  const U256 m = U256::from_u64(1000003);
  const U256 r = mod_512(x, m);
  EXPECT_LT(r.w[0], 1000003u);
  for (int i = 1; i < 4; ++i) EXPECT_EQ(r.w[i], 0u);
}

TEST(BigInt, MulAddModProperty) {
  sim::Rng rng(5);
  const U256 m = U256::from_u64(1'000'000'007ULL);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next_u64() % 1'000'000'007ULL;
    const std::uint64_t b = rng.next_u64() % 1'000'000'007ULL;
    const std::uint64_t c = rng.next_u64() % 1'000'000'007ULL;
    const U256 r = muladd_mod(U256::from_u64(a), U256::from_u64(b), U256::from_u64(c), m);
    const auto expect = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b + c) % 1'000'000'007ULL);
    EXPECT_EQ(r.w[0], expect);
  }
}

TEST(BigInt, BitLengthAndShift) {
  EXPECT_EQ(U256::zero().bit_length(), 0u);
  EXPECT_EQ(U256::from_u64(1).bit_length(), 1u);
  EXPECT_EQ(U256::from_u64(0x8000000000000000ULL).bit_length(), 64u);
  const U256 s = U256::from_u64(1).shl(130);
  EXPECT_EQ(s.bit_length(), 131u);
  EXPECT_TRUE(s.bit(130));
  EXPECT_FALSE(s.bit(129));
}

// ------------------------------------------------------------------- fe25519

TEST(Fe25519, ToFromBytesRoundtrip) {
  sim::Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    std::array<std::uint8_t, 32> b{};
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u64());
    b[31] &= 0x7F;  // < 2^255
    const Fe f = Fe::from_bytes(codec::ByteView(b.data(), b.size()));
    // Values >= p re-encode reduced; values < p roundtrip exactly. Check
    // via double conversion (idempotence of the canonical form).
    const auto c1 = f.to_bytes();
    const Fe g = Fe::from_bytes(codec::ByteView(c1.data(), c1.size()));
    EXPECT_EQ(g.to_bytes(), c1);
  }
}

TEST(Fe25519, FieldAxioms) {
  sim::Rng rng(33);
  for (int i = 0; i < 100; ++i) {
    const Fe a = Fe::from_u64(rng.next_u64());
    const Fe b = Fe::from_u64(rng.next_u64());
    const Fe c = Fe::from_u64(rng.next_u64());
    EXPECT_TRUE((a + b).equals(b + a));
    EXPECT_TRUE((a * b).equals(b * a));
    EXPECT_TRUE(((a + b) * c).equals(a * c + b * c));
    EXPECT_TRUE((a - a).is_zero());
    EXPECT_TRUE((a * Fe::one()).equals(a));
  }
}

TEST(Fe25519, InverseIsInverse) {
  sim::Rng rng(37);
  for (int i = 0; i < 20; ++i) {
    const Fe a = Fe::from_u64(rng.next_u64() | 1);
    EXPECT_TRUE((a * a.invert()).equals(Fe::one()));
  }
}

TEST(Fe25519, SqrtMinusOneSquaresToMinusOne) {
  const Fe i = fe_const::sqrt_m1();
  EXPECT_TRUE(i.square().equals(Fe::one().negate()));
}

TEST(Fe25519, DConstantMatchesRfc8032) {
  // d = 370957059346694393431380835087545651895421138798432190163887855330
  //     85940283555
  const auto d_bytes = fe_const::d().to_bytes();
  EXPECT_EQ(hex(codec::ByteView(d_bytes.data(), 32)),
            "a3785913ca4deb75abd841414d0a700098e879777940c78c73fe6f2bee6c0352");
}

// ------------------------------------------------------------------- ge25519

TEST(Ge25519, BasePointEncoding) {
  const auto enc = Ge::base().compress();
  EXPECT_EQ(hex(codec::ByteView(enc.data(), 32)),
            "5866666666666666666666666666666666666666666666666666666666666666");
}

TEST(Ge25519, IdentityLaws) {
  const Ge b = Ge::base();
  const Ge id = Ge::identity();
  EXPECT_EQ(b.add(id).compress(), b.compress());
  EXPECT_EQ(b.add(b.negate()).compress(), id.compress());
}

TEST(Ge25519, DoubleEqualsAdd) {
  const Ge b = Ge::base();
  EXPECT_EQ(b.dbl().compress(), b.add(b).compress());
}

TEST(Ge25519, ScalarMulDistributes) {
  const Ge b = Ge::base();
  const Ge lhs = b.scalar_mul(U256::from_u64(41)).add(b);
  const Ge rhs = b.scalar_mul(U256::from_u64(42));
  EXPECT_EQ(lhs.compress(), rhs.compress());
}

TEST(Ge25519, DecompressRejectsNonCurvePoints) {
  // y = 2 gives x^2 non-square on edwards25519.
  std::array<std::uint8_t, 32> enc{};
  enc[0] = 2;
  int rejected = 0;
  for (int sign = 0; sign < 2; ++sign) {
    enc[31] = static_cast<std::uint8_t>(sign << 7);
    if (!Ge::decompress(codec::ByteView(enc.data(), 32)).has_value()) ++rejected;
  }
  EXPECT_EQ(rejected, 2);
}

TEST(Ge25519, CompressDecompressRoundtrip) {
  for (std::uint64_t k : {1ULL, 2ULL, 3ULL, 99ULL, 123456789ULL}) {
    const Ge p = Ge::base().scalar_mul(U256::from_u64(k));
    const auto enc = p.compress();
    const auto q = Ge::decompress(codec::ByteView(enc.data(), enc.size()));
    ASSERT_TRUE(q.has_value()) << k;
    EXPECT_EQ(q->compress(), enc) << k;
  }
}

// ------------------------------------------------------------------- Ed25519

struct Rfc8032Vector {
  const char* seed;
  const char* pub;
  const char* msg;
  const char* sig;
};

class Ed25519Rfc : public ::testing::TestWithParam<Rfc8032Vector> {};

TEST_P(Ed25519Rfc, SignAndVerify) {
  const auto& v = GetParam();
  const auto seed = arr<32>(v.seed);
  const auto pub = Ed25519::public_key(seed);
  EXPECT_EQ(hex(codec::ByteView(pub.data(), 32)), v.pub);
  const auto msg = *codec::from_hex(v.msg);
  const auto sig = Ed25519::sign(seed, pub, msg);
  EXPECT_EQ(hex(codec::ByteView(sig.data(), 64)), v.sig);
  EXPECT_TRUE(Ed25519::verify(pub, msg, sig));
}

INSTANTIATE_TEST_SUITE_P(
    Vectors, Ed25519Rfc,
    ::testing::Values(
        Rfc8032Vector{
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
        Rfc8032Vector{
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c", "72",
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
        Rfc8032Vector{
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025", "af82",
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
            "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"},
        // RFC 8032 "TEST SHA(abc)": message is the SHA-512 digest of "abc".
        Rfc8032Vector{
            "833fe62409237b9d62ec77587520911e9a759cec1d19755b7da901b96dca3d42",
            "ec172b93ad5e563bf4932c70e1245034c35467ef2efd4d64ebf819683467e2bf",
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f",
            "dc2a4459e7369633a52b1bf277839a00201009a3efbf3ecb69bea2186c26b589"
            "09351fc9ac90b3ecfdfbc7c66431e0303dca179c138ac17ad9bef1177331a704"}));

TEST(Ed25519, RejectsTamperedMessage) {
  const auto seed = arr<32>(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto pub = Ed25519::public_key(seed);
  const auto msg = codec::to_bytes("payment of 100 to alice");
  const auto sig = Ed25519::sign(seed, pub, msg);
  auto tampered = msg;
  tampered[11] = '9';
  EXPECT_FALSE(Ed25519::verify(pub, tampered, sig));
}

TEST(Ed25519, RejectsTamperedSignatureAnyByte) {
  const auto seed = arr<32>(
      "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7");
  const auto pub = Ed25519::public_key(seed);
  const auto msg = codec::to_bytes("x");
  const auto sig = Ed25519::sign(seed, pub, msg);
  for (std::size_t i = 0; i < sig.size(); i += 7) {
    auto bad = sig;
    bad[i] ^= 0x40;
    EXPECT_FALSE(Ed25519::verify(pub, msg, bad)) << "byte " << i;
  }
}

TEST(Ed25519, RejectsWrongKey) {
  const auto seed1 = arr<32>(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto seed2 = arr<32>(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  const auto pub1 = Ed25519::public_key(seed1);
  const auto pub2 = Ed25519::public_key(seed2);
  const auto msg = codec::to_bytes("hello");
  EXPECT_FALSE(Ed25519::verify(pub2, msg, Ed25519::sign(seed1, pub1, msg)));
}

TEST(Ed25519, RejectsNonCanonicalS) {
  const auto seed = arr<32>(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  const auto pub = Ed25519::public_key(seed);
  const auto msg = codec::to_bytes("m");
  auto sig = Ed25519::sign(seed, pub, msg);
  // Force S >= L by setting its top bits.
  sig[63] |= 0xF0;
  EXPECT_FALSE(Ed25519::verify(pub, msg, sig));
}

TEST(Ed25519, SignVerifyPropertySweep) {
  sim::Rng rng(404);
  for (int i = 0; i < 20; ++i) {
    Ed25519::Seed seed{};
    for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto pub = Ed25519::public_key(seed);
    codec::Bytes msg(rng.next_u64() % 200);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto sig = Ed25519::sign(seed, pub, msg);
    EXPECT_TRUE(Ed25519::verify(pub, msg, sig));
  }
}

// ----------------------------------------------------------------------- PKI

TEST(Pki, DeterministicKeysPerSeed) {
  Pki a(42), b(42), c(43);
  EXPECT_EQ(a.register_process(7), b.register_process(7));
  EXPECT_NE(a.register_process(8), c.register_process(8));
}

TEST(Pki, SignVerifyAcrossProcesses) {
  Pki pki(1);
  pki.register_process(0);
  pki.register_process(1);
  const auto msg = codec::to_bytes("epoch 5 hash");
  const auto sig = pki.sign(0, msg);
  EXPECT_TRUE(pki.verify(0, msg, sig));
  EXPECT_FALSE(pki.verify(1, msg, sig));          // wrong signer
  EXPECT_FALSE(pki.verify(99, msg, sig));         // unknown process
}

TEST(Pki, UnknownProcessThrowsOnSign) {
  Pki pki(1);
  EXPECT_THROW(pki.sign(5, codec::to_bytes("x")), std::out_of_range);
  EXPECT_THROW(pki.public_key(5), std::out_of_range);
}

}  // namespace
}  // namespace setchain::crypto
