// Batch Ed25519 verification: the multi-scalar-mul machinery in ge25519,
// Ed25519::verify_batch (transcript randomizers + bisection culprit
// identification), and the Pki batch API. The contract under test
// throughout: verify_batch agrees with scalar Ed25519::verify entry by
// entry, for valid and invalid signatures alike.
#include <gtest/gtest.h>

#include <vector>

#include "codec/bytes.hpp"
#include "crypto/bigint.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/ge25519.hpp"
#include "crypto/pki.hpp"
#include "crypto/sha512.hpp"
#include "sim/rng.hpp"

namespace setchain::crypto {
namespace {

U256 random_u256(sim::Rng& rng) {
  U256 k;
  for (auto& w : k.w) w = rng.next_u64();
  return k;
}

// ---------------------------------------------------- ge25519 scalar-mul fast paths

TEST(Ge25519MultiScalar, VartimeMatchesPlainScalarMul) {
  sim::Rng rng(2024);
  const Ge p = Ge::base().scalar_mul(U256::from_u64(7));
  for (int i = 0; i < 20; ++i) {
    U256 k = random_u256(rng);
    k.w[3] &= 0x0FFFFFFFFFFFFFFFULL;  // stay under 2^252-ish like real scalars
    EXPECT_EQ(p.scalar_mul_vartime(k).compress(), p.scalar_mul(k).compress()) << i;
  }
}

TEST(Ge25519MultiScalar, VartimeEdgeScalars) {
  const Ge p = Ge::base().scalar_mul(U256::from_u64(11));
  EXPECT_TRUE(p.scalar_mul_vartime(U256::zero()).is_identity());
  EXPECT_EQ(p.scalar_mul_vartime(U256::from_u64(1)).compress(), p.compress());
  for (std::uint64_t k : {2ULL, 15ULL, 16ULL, 17ULL, 255ULL, 65537ULL}) {
    EXPECT_EQ(p.scalar_mul_vartime(U256::from_u64(k)).compress(),
              p.scalar_mul(U256::from_u64(k)).compress())
        << k;
  }
}

TEST(Ge25519MultiScalar, BaseScalarMulMatchesPlain) {
  sim::Rng rng(99);
  for (int i = 0; i < 10; ++i) {
    U256 k = random_u256(rng);
    k.w[3] &= 0x0FFFFFFFFFFFFFFFULL;
    EXPECT_EQ(Ge::base_scalar_mul(k).compress(), Ge::base().scalar_mul(k).compress());
  }
}

TEST(Ge25519MultiScalar, MultiScalarMatchesSumOfScalarMuls) {
  sim::Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    U256 base_k = random_u256(rng);
    base_k.w[3] &= 0x0FFFFFFFFFFFFFFFULL;
    std::vector<Ge::ScalarPoint> terms;
    Ge expected = Ge::base().scalar_mul(base_k);
    for (int j = 0; j < 4; ++j) {
      U256 k = random_u256(rng);
      k.w[3] &= 0x0FFFFFFFFFFFFFFFULL;
      const Ge p = Ge::base().scalar_mul(U256::from_u64(rng.next_u64() | 1));
      terms.push_back(Ge::ScalarPoint{k, p});
      expected = expected.add(p.scalar_mul(k));
    }
    EXPECT_EQ(Ge::multi_scalar_mul(base_k, terms).compress(), expected.compress())
        << trial;
  }
}

TEST(Ge25519MultiScalar, EmptyInputIsIdentity) {
  EXPECT_TRUE(Ge::multi_scalar_mul(U256::zero(), {}).is_identity());
}

TEST(Ge25519MultiScalar, IsIdentityExcludesTwoTorsion) {
  EXPECT_TRUE(Ge::identity().is_identity());
  EXPECT_FALSE(Ge::base().is_identity());
  // (0, -1) has X == 0 like the identity but must not be mistaken for it.
  const Ge minus_one{Fe::zero(), Fe::one().negate(), Fe::one(), Fe::zero()};
  EXPECT_FALSE(minus_one.is_identity());
}

// ------------------------------------------------------------ batch fixtures

struct Signed {
  Ed25519::PublicKey pub;
  codec::Bytes msg;
  Ed25519::Signature sig;
};

std::vector<Signed> make_signed(std::size_t n, std::uint64_t seed_tag) {
  sim::Rng rng(seed_tag);
  std::vector<Signed> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    Ed25519::Seed seed{};
    for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next_u64());
    out[i].pub = Ed25519::public_key(seed);
    out[i].msg.resize(1 + rng.next_u64() % 100);
    for (auto& b : out[i].msg) b = static_cast<std::uint8_t>(rng.next_u64());
    out[i].sig = Ed25519::sign(seed, out[i].pub, out[i].msg);
  }
  return out;
}

std::vector<Ed25519::BatchEntry> entries_of(const std::vector<Signed>& s) {
  std::vector<Ed25519::BatchEntry> out;
  out.reserve(s.size());
  for (const auto& x : s) out.push_back(Ed25519::BatchEntry{&x.pub, x.msg, &x.sig});
  return out;
}

// ------------------------------------------------------- Ed25519::verify_batch

TEST(Ed25519Batch, EmptyBatchIsVacuouslyValid) {
  const auto res = Ed25519::verify_batch({});
  EXPECT_TRUE(res.all_valid);
  EXPECT_TRUE(res.valid.empty());
}

TEST(Ed25519Batch, SingleEntryValidAndInvalid) {
  auto s = make_signed(1, 11);
  auto es = entries_of(s);
  auto res = Ed25519::verify_batch(es);
  EXPECT_TRUE(res.all_valid);
  ASSERT_EQ(res.valid.size(), 1u);
  EXPECT_TRUE(res.valid[0]);

  s[0].sig[5] ^= 0x01;
  res = Ed25519::verify_batch(es);
  EXPECT_FALSE(res.all_valid);
  EXPECT_FALSE(res.valid[0]);
}

TEST(Ed25519Batch, AllValidBatchPasses) {
  for (const std::size_t n : {2u, 8u, 33u}) {
    const auto s = make_signed(n, 100 + n);
    const auto res = Ed25519::verify_batch(entries_of(s));
    EXPECT_TRUE(res.all_valid) << n;
    for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(res.valid[i]) << n << ":" << i;
  }
}

TEST(Ed25519Batch, ExactlyOneForgedCulpritIdentified) {
  // The bisection must pin the single bad signature at any position.
  for (const std::size_t bad : {0u, 3u, 7u, 12u, 15u}) {
    auto s = make_signed(16, 31337);
    s[bad].sig[17] ^= 0x80;  // forge exactly one
    const auto res = Ed25519::verify_batch(entries_of(s));
    EXPECT_FALSE(res.all_valid) << bad;
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(res.valid[i], i != bad) << "bad=" << bad << " i=" << i;
    }
  }
}

TEST(Ed25519Batch, MultipleForgedAllIdentified) {
  auto s = make_signed(20, 555);
  for (const std::size_t bad : {1u, 2u, 9u, 19u}) s[bad].sig[40] ^= 0x22;
  const auto res = Ed25519::verify_batch(entries_of(s));
  EXPECT_FALSE(res.all_valid);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const bool forged = i == 1 || i == 2 || i == 9 || i == 19;
    EXPECT_EQ(res.valid[i], !forged) << i;
  }
}

TEST(Ed25519Batch, WrongMessageRejected) {
  auto s = make_signed(8, 77);
  s[4].msg[0] ^= 0xFF;  // signature no longer covers this message
  const auto res = Ed25519::verify_batch(entries_of(s));
  EXPECT_FALSE(res.all_valid);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(res.valid[i], i != 4) << i;
}

TEST(Ed25519Batch, NonCanonicalSRejected) {
  auto s = make_signed(6, 88);
  s[2].sig[63] |= 0xF0;  // S >= L: must fail the malleability guard
  const auto res = Ed25519::verify_batch(entries_of(s));
  EXPECT_FALSE(res.all_valid);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(res.valid[i], i != 2) << i;
    // Cross-check against the scalar verifier.
    EXPECT_EQ(res.valid[i], Ed25519::verify(s[i].pub, s[i].msg, s[i].sig)) << i;
  }
}

TEST(Ed25519Batch, UndecompressablePointsRejected) {
  auto s = make_signed(5, 99);
  // y = 2 is not on the curve: break A of one entry and R of another.
  s[1].pub.fill(0);
  s[1].pub[0] = 2;
  s[3].sig[0] = 2;
  for (std::size_t i = 1; i < 32; ++i) s[3].sig[i] = 0;
  const auto res = Ed25519::verify_batch(entries_of(s));
  EXPECT_FALSE(res.all_valid);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(res.valid[i], i != 1 && i != 3) << i;
  }
}

TEST(Ed25519Batch, LinearityForgeryWithPredictedRandomizersRejected) {
  // Regression for a soundness hole: an early transcript derived the
  // randomizers z_i from (R, A, message) only. An adversary could then
  // compute z1, z2 ahead of time and doctor two valid signatures as
  // S1' = S1 + z2, S2' = S2 - z1 (mod L): the combination z1*S1' + z2*S2'
  // is unchanged, so the combined check still passed while both signatures
  // were individually invalid. The transcript now absorbs the S halves,
  // which makes the z_i depend on the doctored values themselves; replay
  // the attack against the S-free derivation and require rejection.
  auto s = make_signed(2, 777);

  // Reconstruct the (R, A, M)-only transcript exactly as the vulnerable
  // derivation did.
  Sha512 transcript;
  transcript.update(codec::to_bytes("setchain.ed25519.batch.v1"));
  codec::Bytes count;
  codec::append_u64le(count, 2);
  transcript.update(count);
  for (const auto& x : s) {
    transcript.update(codec::ByteView(x.sig.data(), 32));  // R only, no S
    transcript.update(codec::ByteView(x.pub.data(), x.pub.size()));
    codec::Bytes len;
    codec::append_u64le(len, x.msg.size());
    transcript.update(len);
    transcript.update(x.msg);
  }
  const auto seed = transcript.finalize();
  U256 z[2];
  for (std::uint64_t j = 0; j < 2; ++j) {
    Sha512 zh;
    zh.update(codec::ByteView(seed.data(), seed.size()));
    codec::Bytes idx;
    codec::append_u64le(idx, j);
    zh.update(idx);
    const auto zd = zh.finalize();
    z[j] = U256::from_bytes_le(codec::ByteView(zd.data(), 16));
    if (z[j].is_zero()) z[j] = U256::from_u64(1);
  }

  // Doctor the S halves: S1 += z2, S2 -= z1 (mod L).
  U256 l;
  l.w[0] = 0x5812631A5CF5D3EDULL;
  l.w[1] = 0x14DEF9DEA2F79CD6ULL;
  l.w[3] = 0x1000000000000000ULL;
  const U256 one = U256::from_u64(1);
  U256 s0 = U256::from_bytes_le(codec::ByteView(s[0].sig.data() + 32, 32));
  U256 s1 = U256::from_bytes_le(codec::ByteView(s[1].sig.data() + 32, 32));
  U256 minus_z0 = l;
  minus_z0.sub_in_place(z[0]);
  const auto s0p = muladd_mod(one, s0, z[1], l).to_bytes_le<32>();
  const auto s1p = muladd_mod(one, s1, minus_z0, l).to_bytes_le<32>();
  std::copy(s0p.begin(), s0p.end(), s[0].sig.begin() + 32);
  std::copy(s1p.begin(), s1p.end(), s[1].sig.begin() + 32);

  // Both doctored signatures are individually invalid...
  EXPECT_FALSE(Ed25519::verify(s[0].pub, s[0].msg, s[0].sig));
  EXPECT_FALSE(Ed25519::verify(s[1].pub, s[1].msg, s[1].sig));
  // ...and the batch must agree, not be fooled by the preserved linear sum.
  const auto res = Ed25519::verify_batch(entries_of(s));
  EXPECT_FALSE(res.all_valid);
  EXPECT_FALSE(res.valid[0]);
  EXPECT_FALSE(res.valid[1]);
}

TEST(Ed25519Batch, DeterministicAcrossReplays) {
  auto s = make_signed(10, 123);
  s[6].sig[0] ^= 1;
  const auto es = entries_of(s);
  const auto a = Ed25519::verify_batch(es);
  const auto b = Ed25519::verify_batch(es);
  EXPECT_EQ(a.all_valid, b.all_valid);
  EXPECT_EQ(a.valid, b.valid);
}

TEST(Ed25519Batch, AgreesWithScalarVerifyOnRandomizedSuite) {
  // 1k random cases in batches of 50: ~6% of entries tampered in assorted
  // ways; batch verdicts must equal scalar verdicts everywhere.
  sim::Rng rng(4242);
  std::size_t checked = 0;
  for (int round = 0; round < 20; ++round) {
    auto s = make_signed(50, 9000 + static_cast<std::uint64_t>(round));
    for (auto& x : s) {
      if (!rng.chance(0.06)) continue;
      switch (rng.next_u64() % 4) {
        case 0: x.sig[rng.next_u64() % 64] ^= 0x01; break;              // bad sig byte
        case 1: x.msg[rng.next_u64() % x.msg.size()] ^= 0x01; break;    // bad message
        case 2: x.sig[63] |= 0xE0; break;                               // S >= L
        default: x.pub[rng.next_u64() % 32] ^= 0x01; break;             // bad key
      }
    }
    const auto res = Ed25519::verify_batch(entries_of(s));
    for (std::size_t i = 0; i < s.size(); ++i) {
      const bool scalar = Ed25519::verify(s[i].pub, s[i].msg, s[i].sig);
      ASSERT_EQ(res.valid[i], scalar) << "round " << round << " entry " << i;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 1000u);
}

// ---------------------------------------------------------------- Pki batch

TEST(PkiBatch, MapsVerdictsAndRejectsUnknownSigners) {
  Pki pki(7);
  for (ProcessId id = 0; id < 4; ++id) pki.register_process(id);
  const auto m0 = codec::to_bytes("epoch 1 hash");
  const auto m1 = codec::to_bytes("epoch 2 hash");
  const auto m2 = codec::to_bytes("batch hash");
  const auto s0 = pki.sign(0, m0);
  const auto s1 = pki.sign(1, m1);
  auto s2 = pki.sign(2, m2);
  s2[3] ^= 0xFF;  // forged
  const auto s3 = pki.sign(3, m0);

  const std::vector<Pki::SignedMessage> items = {
      {0, m0, &s0},
      {1, m1, &s1},
      {2, m2, &s2},
      {99, m0, &s3},  // unknown process
      {3, m0, &s3},
  };
  const auto res = pki.verify_batch(items);
  EXPECT_FALSE(res.all_valid);
  ASSERT_EQ(res.valid.size(), 5u);
  EXPECT_TRUE(res.valid[0]);
  EXPECT_TRUE(res.valid[1]);
  EXPECT_FALSE(res.valid[2]);  // forged
  EXPECT_FALSE(res.valid[3]);  // unknown signer
  EXPECT_TRUE(res.valid[4]);
}

TEST(PkiBatch, AllValidAcrossProcesses) {
  Pki pki(21);
  std::vector<codec::Bytes> msgs;
  std::vector<Ed25519::Signature> sigs;
  for (ProcessId id = 0; id < 12; ++id) {
    pki.register_process(id);
    codec::Bytes m = codec::to_bytes("msg-");
    m.push_back(static_cast<std::uint8_t>(id));
    msgs.push_back(std::move(m));
    sigs.push_back(pki.sign(id, msgs.back()));
  }
  std::vector<Pki::SignedMessage> items;
  for (ProcessId id = 0; id < 12; ++id) items.push_back({id, msgs[id], &sigs[id]});
  const auto res = pki.verify_batch(items);
  EXPECT_TRUE(res.all_valid);
}

}  // namespace
}  // namespace setchain::crypto
