#include <gtest/gtest.h>

#include "analysis/model.hpp"

namespace setchain::analysis {
namespace {

ModelParams paper_params(double c, double r) {
  ModelParams p;
  p.block_rate = 0.8;
  p.block_capacity = 500'000;
  p.element_size = 438;
  p.proof_size = 139;
  p.hash_batch_size = 139;
  p.n = 10;
  p.collector_size = c;
  p.compress_ratio = r;
  return p;
}

// Appendix D.1 reports Tv ~= 955, Tc[100] ~= 2497, Tc[500] ~= 3330,
// Th[100] ~= 27157, Th[500] ~= 147857 el/s. Our closed forms implement the
// formulas as printed; tolerances cover rounding in the paper's constants.

TEST(AnalyticalModel, VanillaNearPaperValue) {
  const double tv = vanilla_throughput(paper_params(100, 2.7));
  EXPECT_NEAR(tv, 955.0, 60.0);
}

TEST(AnalyticalModel, CompresschainNearPaperValues) {
  EXPECT_NEAR(compresschain_throughput(paper_params(100, 2.7)), 2497.0, 150.0);
  EXPECT_NEAR(compresschain_throughput(paper_params(500, 3.5)), 3330.0, 200.0);
}

TEST(AnalyticalModel, HashchainNearPaperValues) {
  EXPECT_NEAR(hashchain_throughput(paper_params(100, 2.7)), 27157.0, 1500.0);
  EXPECT_NEAR(hashchain_throughput(paper_params(500, 3.5)), 147857.0, 8000.0);
}

TEST(AnalyticalModel, PaperSpeedupRatios) {
  // "Th[c=500]/Tv ~= 155 and Th[c=500]/Tc[c=500] ~= 44" (§D.1).
  const double tv = vanilla_throughput(paper_params(500, 3.5));
  const double tc = compresschain_throughput(paper_params(500, 3.5));
  const double th = hashchain_throughput(paper_params(500, 3.5));
  EXPECT_NEAR(th / tv, 155.0, 10.0);
  EXPECT_NEAR(th / tc, 44.0, 4.0);
}

TEST(AnalyticalModel, ThroughputScalesLinearlyWithBlockSize) {
  const double t1 = hashchain_throughput(paper_params(500, 3.5));
  auto p = paper_params(500, 3.5);
  p.block_capacity *= 8;  // 4 MB blocks (Fig. 2 right)
  EXPECT_NEAR(hashchain_throughput(p) / t1, 8.0, 1e-9);
}

TEST(AnalyticalModel, FourMegabyteBlocksReachTenToTheSix) {
  // §4.1: "with the usual 4MB blocksize of CometBFT, Hashchain reaches a
  // throughput of 10^6 el/s".
  auto p = paper_params(500, 3.5);
  p.block_capacity = 4e6;
  EXPECT_GT(hashchain_throughput(p), 1e6);
}

TEST(AnalyticalModel, HundredTwentyEightMegabyteBlocks) {
  // "with blocks of 128 MB reaches more than 30 million el/s".
  auto p = paper_params(500, 3.5);
  p.block_capacity = 128e6;
  EXPECT_GT(hashchain_throughput(p), 30e6);
}

TEST(AnalyticalModel, OrderingAlwaysHashGreaterCompressGreaterVanilla) {
  for (double c : {50.0, 100.0, 500.0, 1000.0}) {
    for (double r : {2.0, 2.7, 3.5}) {
      const auto p = paper_params(c, r);
      EXPECT_GT(hashchain_throughput(p), compresschain_throughput(p)) << c << " " << r;
      EXPECT_GT(compresschain_throughput(p), vanilla_throughput(p)) << c << " " << r;
    }
  }
}

TEST(AnalyticalModel, DegenerateInputsReturnZero) {
  auto p = paper_params(5, 3.5);  // collector smaller than n
  EXPECT_DOUBLE_EQ(compresschain_throughput(p), 0.0);
  EXPECT_DOUBLE_EQ(hashchain_throughput(p), 0.0);
  auto q = paper_params(100, 3.5);
  q.block_capacity = 100;  // proofs alone exceed the block
  EXPECT_DOUBLE_EQ(vanilla_throughput(q), 0.0);
}

}  // namespace
}  // namespace setchain::analysis
