#include <gtest/gtest.h>

#include <vector>

#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace setchain::sim {
namespace {

// ---------------------------------------------------------------- Simulation

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulation, EqualTimestampsFireInScheduleOrder) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    s.schedule_at(42, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ScheduleInPastClampsToNow) {
  Simulation s;
  Time fired_at = -1;
  s.schedule_at(100, [&] {
    s.schedule_at(5, [&] { fired_at = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation s;
  int fired = 0;
  for (Time t = 10; t <= 100; t += 10) s.schedule_at(t, [&] { ++fired; });
  s.run_until(50);
  EXPECT_EQ(fired, 5);
  s.run_until(100);
  EXPECT_EQ(fired, 10);
}

TEST(Simulation, CancelledEventDoesNotFire) {
  Simulation s;
  bool fired = false;
  auto h = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 50) s.schedule_in(1, chain);
  };
  s.schedule_at(0, chain);
  s.run();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(s.now(), 49);
}

TEST(Simulation, ClockStaysAtLastEventWhenDrained) {
  Simulation s;
  s.schedule_at(5, [] {});
  s.run_until(1000);
  EXPECT_EQ(s.now(), 5);  // drained early: clock reflects real activity
}

// ----------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng r(11);
  std::array<int, 10> buckets{};
  for (int i = 0; i < 100000; ++i) ++buckets[r.uniform_u64(10)];
  for (const int b : buckets) {
    EXPECT_GT(b, 9000);
    EXPECT_LT(b, 11000);
  }
}

TEST(Rng, NormalMoments) {
  Rng r(5);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(9);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(123);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

// -------------------------------------------------------------- BusyResource

TEST(BusyResource, SequentialJobsQueue) {
  BusyResource r;
  EXPECT_EQ(r.acquire(0, 10), 10);
  EXPECT_EQ(r.acquire(0, 10), 20);   // queued behind the first
  EXPECT_EQ(r.acquire(50, 10), 60);  // idle gap, starts at 50
  EXPECT_EQ(r.total_busy(), 30);
}

TEST(BusyResource, NegativeDurationClamped) {
  BusyResource r;
  EXPECT_EQ(r.acquire(5, -10), 5);
}

// ------------------------------------------------------------------- Network

TEST(Network, DeliversWithLatency) {
  Simulation s;
  NetworkConfig cfg;
  cfg.base_latency = from_millis(1);
  cfg.extra_delay = 0;
  cfg.jitter_fraction = 0.0;
  Network net(s, 3, cfg, 1);
  Time delivered = -1;
  net.send(0, 1, 100, [&] { delivered = s.now(); });
  s.run();
  // 100 bytes at 1 Gb/s is < 1 us serialization; latency dominates.
  EXPECT_GE(delivered, from_millis(1));
  EXPECT_LT(delivered, from_millis(1.2));
}

TEST(Network, ExtraDelayAdds) {
  Simulation s;
  NetworkConfig cfg;
  cfg.base_latency = from_millis(1);
  cfg.extra_delay = from_millis(30);
  cfg.jitter_fraction = 0.0;
  Network net(s, 2, cfg, 1);
  Time delivered = -1;
  net.send(0, 1, 10, [&] { delivered = s.now(); });
  s.run();
  EXPECT_GE(delivered, from_millis(31));
  EXPECT_LT(delivered, from_millis(31.5));
}

TEST(Network, BandwidthSerializationCounts) {
  Simulation s;
  NetworkConfig cfg;
  cfg.base_latency = 0;
  cfg.jitter_fraction = 0.0;
  cfg.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s
  Network net(s, 2, cfg, 1);
  Time delivered = -1;
  net.send(0, 1, 500'000, [&] { delivered = s.now(); });  // 0.5 s to serialize
  s.run();
  EXPECT_NEAR(to_seconds(delivered), 0.5, 0.01);
}

TEST(Network, EgressContentionSerializesSends) {
  Simulation s;
  NetworkConfig cfg;
  cfg.base_latency = 0;
  cfg.jitter_fraction = 0.0;
  cfg.bandwidth_bytes_per_sec = 1e6;
  Network net(s, 3, cfg, 1);
  std::vector<Time> deliveries;
  net.send(0, 1, 500'000, [&] { deliveries.push_back(s.now()); });
  net.send(0, 2, 500'000, [&] { deliveries.push_back(s.now()); });
  s.run();
  ASSERT_EQ(deliveries.size(), 2u);
  // Second message waits for the first to clear the sender's egress link.
  EXPECT_NEAR(to_seconds(deliveries[0]), 0.5, 0.01);
  EXPECT_NEAR(to_seconds(deliveries[1]), 1.0, 0.01);
}

TEST(Network, LoopbackIsFast) {
  Simulation s;
  NetworkConfig cfg;
  cfg.extra_delay = from_millis(100);  // must NOT apply to loopback
  Network net(s, 2, cfg, 1);
  Time delivered = -1;
  net.send(1, 1, 1'000'000, [&] { delivered = s.now(); });
  s.run();
  EXPECT_LT(delivered, from_millis(1));
}

TEST(Network, BroadcastReachesAllPeers) {
  Simulation s;
  Network net(s, 5, {}, 1);
  std::vector<NodeId> seen;
  net.broadcast(2, 100, [&](NodeId peer) { seen.push_back(peer); });
  s.run();
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<NodeId>{0, 1, 3, 4}));
}

TEST(Network, CountsMessagesAndBytes) {
  Simulation s;
  Network net(s, 2, {}, 1);
  net.send(0, 1, 100, [] {});
  net.send(0, 1, 200, [] {});
  s.run();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 300u);
}

// Pinned offered-load accounting: a broadcast counts its bytes once per
// receiver (n-1 sends), and fault-layer drops do not change what was *sent*.
TEST(Network, BroadcastCountsBytesOncePerReceiver) {
  Simulation s;
  Network net(s, 5, {}, 1);
  net.broadcast(2, 100, [](NodeId) {});
  s.run();
  EXPECT_EQ(net.messages_sent(), 4u);  // 5 nodes, everyone but the sender
  EXPECT_EQ(net.bytes_sent(), 400u);   // 100 bytes, once per receiver
  EXPECT_EQ(net.messages_dropped(), 0u);

  // Same broadcast under a full partition: identical sent accounting, every
  // cross-cut copy counted as dropped instead of delivered.
  Simulation s2;
  Network lossy(s2, 5, {}, 1);
  FaultPlan plan;
  plan.faults.push_back(Fault::partition({2}, 0, kNeverHeals));
  lossy.install_faults(plan, 7);
  int delivered = 0;
  lossy.broadcast(2, 100, [&](NodeId) { ++delivered; });
  s2.run();
  EXPECT_EQ(lossy.messages_sent(), 4u);
  EXPECT_EQ(lossy.bytes_sent(), 400u);
  EXPECT_EQ(lossy.messages_dropped(), 4u);
  EXPECT_EQ(delivered, 0);
}

// ------------------------------------------------------------ fault injection

TEST(FaultInjector, DropWindowLosesOnlyMatchingMessages) {
  FaultPlan plan;
  plan.faults.push_back(Fault::drop(0, 1, 1.0, 100, 200));
  FaultInjector inj(plan, 1);
  EXPECT_TRUE(inj.on_message(50, 0, 1).deliver);    // before the window
  EXPECT_FALSE(inj.on_message(150, 0, 1).deliver);  // inside
  EXPECT_TRUE(inj.on_message(150, 1, 0).deliver);   // reverse direction
  EXPECT_TRUE(inj.on_message(200, 0, 1).deliver);   // end is exclusive
  EXPECT_EQ(inj.stats().dropped_random, 1u);
}

TEST(FaultInjector, DropProbabilityIsRoughlyHonored) {
  FaultPlan plan;
  plan.faults.push_back(Fault::drop(kAnyNode, kAnyNode, 0.3, 0, kNeverHeals));
  FaultInjector inj(plan, 42);
  int dropped = 0;
  for (int i = 0; i < 10000; ++i) dropped += inj.on_message(1, 0, 1).deliver ? 0 : 1;
  EXPECT_GT(dropped, 2700);
  EXPECT_LT(dropped, 3300);
}

TEST(FaultInjector, SymmetricAndDirectedPartitions) {
  FaultPlan plan;
  plan.faults.push_back(Fault::partition({0, 1}, 0, 1000, /*symmetric=*/true));
  FaultInjector sym(plan, 1);
  EXPECT_FALSE(sym.on_message(10, 0, 2).deliver);  // group -> rest
  EXPECT_FALSE(sym.on_message(10, 2, 1).deliver);  // rest -> group
  EXPECT_TRUE(sym.on_message(10, 0, 1).deliver);   // inside the group
  EXPECT_TRUE(sym.on_message(10, 2, 3).deliver);   // outside the group
  EXPECT_TRUE(sym.on_message(2000, 0, 2).deliver);  // healed
  EXPECT_EQ(sym.stats().dropped_partition, 2u);

  FaultPlan directed;
  directed.faults.push_back(Fault::partition({0}, 0, 1000, /*symmetric=*/false));
  FaultInjector one_way(directed, 1);
  EXPECT_FALSE(one_way.on_message(10, 0, 2).deliver);  // outbound cut
  EXPECT_TRUE(one_way.on_message(10, 2, 0).deliver);   // inbound still flows
}

TEST(FaultInjector, DelaySpikesAccumulate) {
  FaultPlan plan;
  plan.faults.push_back(Fault::delay_spike(from_millis(30), 0, 1000));
  plan.faults.push_back(Fault::delay_spike(from_millis(20), 0, 500, 0, 1));
  FaultInjector inj(plan, 1);
  EXPECT_EQ(inj.on_message(10, 0, 1).extra_delay, from_millis(50));  // both match
  EXPECT_EQ(inj.on_message(10, 1, 0).extra_delay, from_millis(30));  // blanket only
  EXPECT_EQ(inj.on_message(700, 0, 1).extra_delay, from_millis(30));  // one healed
  EXPECT_EQ(inj.stats().delayed, 3u);
}

TEST(FaultInjector, CrashWindowDownsTheNodeBothWays) {
  FaultPlan plan;
  plan.faults.push_back(Fault::crash(1, 100, 200));
  FaultInjector inj(plan, 1);
  EXPECT_FALSE(inj.node_down(50, 1));
  EXPECT_TRUE(inj.node_down(150, 1));
  EXPECT_FALSE(inj.node_down(200, 1));  // restarted
  EXPECT_FALSE(inj.node_down(150, 0));  // other nodes unaffected
  EXPECT_FALSE(inj.on_message(150, 1, 0).deliver);  // from the dead node
  EXPECT_FALSE(inj.on_message(150, 0, 1).deliver);  // to the dead node
  EXPECT_FALSE(inj.on_message(150, 1, 1).deliver);  // even loopback
  EXPECT_TRUE(inj.on_message(150, 0, 2).deliver);
  EXPECT_EQ(inj.stats().dropped_crash, 3u);
  // A message whose receiver was down at any point in flight is lost at
  // delivery time — even if the node restarted before it arrived.
  EXPECT_FALSE(inj.drop_at_delivery(40, 50, 1));    // flight before the crash
  EXPECT_TRUE(inj.drop_at_delivery(120, 150, 1));   // delivered while down
  EXPECT_TRUE(inj.drop_at_delivery(50, 250, 1));    // flight spans the window
  EXPECT_FALSE(inj.drop_at_delivery(210, 250, 1));  // sent after the restart
  EXPECT_FALSE(inj.drop_at_delivery(50, 250, 0));   // other nodes unaffected
  EXPECT_EQ(inj.stats().dropped_crash, 5u);
}

TEST(FaultInjector, VerdictStreamIsDeterministic) {
  FaultPlan plan;
  plan.faults.push_back(Fault::drop(kAnyNode, kAnyNode, 0.5, 0, kNeverHeals));
  FaultInjector a(plan, 99), b(plan, 99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.on_message(i, 0, 1).deliver, b.on_message(i, 0, 1).deliver) << i;
  }
}

TEST(FaultInjector, DelayedMessageArrivesLate) {
  Simulation s;
  NetworkConfig cfg;
  cfg.base_latency = from_millis(1);
  cfg.jitter_fraction = 0.0;
  Network net(s, 2, cfg, 1);
  FaultPlan plan;
  plan.faults.push_back(Fault::delay_spike(from_millis(100), 0, kNeverHeals));
  net.install_faults(plan, 3);
  Time delivered = -1;
  net.send(0, 1, 10, [&] { delivered = s.now(); });
  s.run();
  EXPECT_GE(delivered, from_millis(101));
  EXPECT_LT(delivered, from_millis(102));
}

TEST(FaultPlanValidate, OneMessagePerViolation) {
  FaultPlan plan;
  // Three violations in one plan: heal before start, probability out of
  // range, crash aimed outside the cluster.
  plan.faults.push_back(Fault::drop(0, 1, 1.5, 100, 50));
  plan.faults.push_back(Fault::crash(9, 0, 100));
  const auto errors = plan.validate(4);
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_NE(errors[0].find("heals"), std::string::npos);
  EXPECT_NE(errors[1].find("probability"), std::string::npos);
  EXPECT_NE(errors[2].find("node 9"), std::string::npos);
}

TEST(FaultPlanValidate, RejectsMalformedPartitionsAndCrashes) {
  const auto bad = [](Fault f, std::uint32_t n = 4) {
    FaultPlan plan;
    plan.faults.push_back(std::move(f));
    return !plan.validate(n).empty();
  };
  EXPECT_TRUE(bad(Fault::partition({}, 0, 100)));            // empty group
  EXPECT_TRUE(bad(Fault::partition({0, 0}, 0, 100)));        // duplicate member
  EXPECT_TRUE(bad(Fault::partition({0, 1, 2, 3}, 0, 100)));  // whole cluster
  EXPECT_TRUE(bad(Fault::partition({7}, 0, 100)));           // outside cluster
  EXPECT_TRUE(bad(Fault::crash(kAnyNode, 0, 100)));          // wildcard crash
  EXPECT_TRUE(bad(Fault::delay_spike(0, 0, 100)));           // zero spike
  EXPECT_TRUE(bad(Fault::drop(0, 1, 0.5, -5, 100)));         // negative start
  // Overlapping crash windows of one node are rejected; disjoint ones pass.
  FaultPlan overlap;
  overlap.faults.push_back(Fault::crash(1, 0, 100));
  overlap.faults.push_back(Fault::crash(1, 50, 150));
  EXPECT_FALSE(overlap.validate(4).empty());
  FaultPlan disjoint;
  disjoint.faults.push_back(Fault::crash(1, 0, 100));
  disjoint.faults.push_back(Fault::crash(1, 100, 150));
  EXPECT_TRUE(disjoint.validate(4).empty());
}

}  // namespace
}  // namespace setchain::sim
