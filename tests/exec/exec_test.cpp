#include <gtest/gtest.h>

#include "../core/algo_fixture.hpp"
#include "exec/executor.hpp"

namespace setchain::exec {
namespace {

// ----------------------------------------------------------------- TokenTx

TEST(TokenTx, SerializationRoundtrip) {
  const TokenTx tx{7, 9, 1234, 5};
  codec::Writer w;
  serialize_token_tx(w, tx);
  const auto back = parse_token_tx(w.buffer());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, tx);
}

TEST(TokenTx, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_token_tx(codec::to_bytes("not a tx")).has_value());
  codec::Writer w;
  w.u8(kTokenTxTag);
  w.u64le(1);  // truncated
  EXPECT_FALSE(parse_token_tx(w.buffer()).has_value());
}

TEST(TokenTx, ElementWrapsAndVerifies) {
  crypto::Pki pki(5);
  pki.register_process(100);
  const auto e = make_token_element(pki, 100, 1, TokenTx{1, 2, 50, 0});
  EXPECT_TRUE(core::valid_element(e, pki, core::Fidelity::kFull));
  const auto tx = parse_token_tx(e.payload);
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(tx->amount, 50u);
}

// -------------------------------------------------------------- LedgerState

TEST(LedgerState, GenesisAndTransfer) {
  LedgerState st;
  st.genesis(1, 100);
  st.genesis(2, 50);
  EXPECT_EQ(st.total_supply(), 150u);
  EXPECT_EQ(st.apply({1, 2, 30, 0}), VoidReason::kNone);
  EXPECT_EQ(st.balance(1), 70u);
  EXPECT_EQ(st.balance(2), 80u);
  EXPECT_EQ(st.total_supply(), 150u);  // conservation
}

TEST(LedgerState, VoidReasons) {
  LedgerState st;
  st.genesis(1, 100);
  EXPECT_EQ(st.apply({1, 1, 10, 0}), VoidReason::kSelfTransfer);
  EXPECT_EQ(st.apply({9, 1, 10, 0}), VoidReason::kUnknownSender);
  EXPECT_EQ(st.apply({1, 2, 10, 5}), VoidReason::kBadNonce);
  EXPECT_EQ(st.apply({1, 2, 500, 0}), VoidReason::kInsufficientFunds);
  // Insufficient funds burned the nonce: a replay with nonce 0 is now stale.
  EXPECT_EQ(st.apply({1, 2, 10, 0}), VoidReason::kBadNonce);
  EXPECT_EQ(st.apply({1, 2, 10, 1}), VoidReason::kNone);
}

TEST(LedgerState, VoidedTxLeavesBalancesUntouched) {
  LedgerState st;
  st.genesis(1, 100);
  const auto root_before = st.state_root();
  EXPECT_NE(st.apply({1, 2, 500, 0}), VoidReason::kNone);  // burns nonce only
  EXPECT_EQ(st.balance(1), 100u);
  EXPECT_EQ(st.balance(2), 0u);
  EXPECT_NE(st.state_root(), root_before);  // nonce change is state too
}

TEST(LedgerState, StateRootCanonicalAndContentSensitive) {
  LedgerState a, b;
  a.genesis(2, 50);
  a.genesis(1, 100);
  b.genesis(1, 100);
  b.genesis(2, 50);
  EXPECT_EQ(a.state_root(), b.state_root());  // insertion order irrelevant
  b.genesis(3, 1);
  EXPECT_NE(a.state_root(), b.state_root());
}

TEST(LedgerState, NonceMustBeSequential) {
  LedgerState st;
  st.genesis(1, 100);
  EXPECT_EQ(st.apply({1, 2, 1, 0}), VoidReason::kNone);
  EXPECT_EQ(st.apply({1, 2, 1, 2}), VoidReason::kBadNonce);  // gap
  EXPECT_EQ(st.apply({1, 2, 1, 1}), VoidReason::kNone);
  EXPECT_EQ(st.nonce(1), 2u);
}

// ------------------------------------------------------------ EpochExecutor

core::EpochRecord record_for(std::uint64_t number, const std::vector<core::Element>& es) {
  core::EpochRecord rec;
  rec.number = number;
  rec.count = es.size();
  for (const auto& e : es) rec.ids.push_back(e.id);
  return rec;
}

struct ExecFixture : ::testing::Test {
  crypto::Pki pki{5};
  EpochExecutor exec;

  ExecFixture() {
    for (crypto::ProcessId c = 100; c < 104; ++c) pki.register_process(c);
    exec.genesis(1, 1000);
    exec.genesis(2, 1000);
  }

  core::Element tx_element(crypto::ProcessId client, std::uint64_t seq,
                           const TokenTx& tx) {
    return make_token_element(pki, client, seq, tx);
  }
};

TEST_F(ExecFixture, ExecutesEpochSequentially) {
  std::vector<core::Element> epoch1{
      tx_element(100, 1, {1, 2, 100, 0}),
      tx_element(100, 2, {2, 1, 30, 0}),
  };
  exec.on_epoch(record_for(1, epoch1), epoch1);
  EXPECT_EQ(exec.state().balance(1), 930u);
  EXPECT_EQ(exec.state().balance(2), 1070u);
  EXPECT_EQ(exec.executed(), 2u);
  EXPECT_EQ(exec.voided(), 0u);
  EXPECT_EQ(exec.epoch_roots().size(), 1u);
}

TEST_F(ExecFixture, DoubleSpendWithinEpochVoidsSecond) {
  // Account 3 has 50; two transfers of 40 each are both individually valid
  // against the pre-state (optimistic validation passes both), but the
  // sequential execution voids the second.
  exec.genesis(3, 50);
  std::vector<core::Element> epoch{
      tx_element(100, 1, {3, 1, 40, 0}),
      tx_element(100, 2, {3, 2, 40, 1}),
  };
  exec.on_epoch(record_for(1, epoch), epoch);
  EXPECT_EQ(exec.executed(), 1u);
  EXPECT_EQ(exec.voided(), 1u);
  EXPECT_EQ(exec.state().balance(3), 10u);
  EXPECT_EQ(exec.log().back().verdict, VoidReason::kInsufficientFunds);
}

TEST_F(ExecFixture, MalformedPayloadVoided) {
  core::Element junk;
  junk.id = core::make_element_id(100, 9);
  junk.client = 100;
  junk.payload = codec::to_bytes("definitely not a token tx");
  std::vector<core::Element> epoch{junk};
  exec.on_epoch(record_for(1, epoch), epoch);
  EXPECT_EQ(exec.voided(), 1u);
  EXPECT_EQ(exec.log().back().verdict, VoidReason::kMalformedPayload);
}

TEST_F(ExecFixture, EpochLimitVoidsOverflowDeterministically) {
  EpochExecutor limited({/*max_txs_per_epoch=*/2});
  limited.genesis(1, 1000);
  std::vector<core::Element> epoch{
      tx_element(100, 1, {1, 2, 1, 0}),
      tx_element(100, 2, {1, 2, 1, 1}),
      tx_element(100, 3, {1, 2, 1, 2}),  // over the cap
  };
  limited.on_epoch(record_for(1, epoch), epoch);
  EXPECT_EQ(limited.executed(), 2u);
  EXPECT_EQ(limited.voided(), 1u);
  EXPECT_EQ(limited.log().back().verdict, VoidReason::kEpochLimitExceeded);
}

// --------------------------------------- end-to-end across Setchain servers

TEST(ExecIntegration, AllServersReachIdenticalStateRoots) {
  using core::testing::AlgoHarness;
  AlgoHarness<core::HashchainServer> h(4, 8);

  // A wallet submits its nonce-ordered transactions through ONE server so
  // they share a batch (Setchain orders across epochs, not within; a wallet
  // that scatters nonces across servers may see them consolidate out of
  // order and voided — exactly the paper's epoch-barrier semantics).
  std::vector<core::Element> all_elements;
  const crypto::ProcessId alice = 100;

  std::uint64_t seq = 1;
  auto submit = [&](std::uint32_t server, const TokenTx& tx) {
    const auto e = make_token_element(h.pki, alice, seq++, tx);
    all_elements.push_back(e);
    h.servers[server]->add(e);
  };
  submit(0, {1, 2, 100, 0});
  submit(0, {2, 1, 10, 0});
  submit(0, {1, 2, 900, 1});   // leaves account 1 nearly empty
  submit(0, {1, 2, 500, 2});   // must void: insufficient funds
  h.seal_rounds(120);

  // Replay every server's history through its own executor; roots and void
  // sets must agree everywhere (deterministic execution, Property 6).
  std::vector<exec::LedgerState::StateRoot> roots;
  std::vector<std::uint64_t> voided;
  for (auto& server : h.servers) {
    exec::EpochExecutor ex;
    ex.genesis(1, 1000);
    ex.genesis(2, 1000);
    const auto snap = server->get();
    std::unordered_map<core::ElementId, const core::Element*> by_id;
    for (const auto& e : all_elements) by_id[e.id] = &e;
    for (const auto& rec : *snap.history) {
      std::vector<core::Element> elements;
      for (const auto id : rec.ids) elements.push_back(*by_id.at(id));
      ex.on_epoch(rec, elements);
    }
    roots.push_back(ex.state_root());
    voided.push_back(ex.voided());
    EXPECT_EQ(ex.state().total_supply(), 2000u);  // conservation everywhere
  }
  for (std::size_t i = 1; i < roots.size(); ++i) {
    EXPECT_EQ(roots[i], roots[0]) << "server " << i;
    EXPECT_EQ(voided[i], voided[0]);
  }
  EXPECT_EQ(voided[0], 1u);  // exactly the double spend voided
}

TEST_F(ExecFixture, UnauthorizedSignerVoided) {
  EpochExecutor ex;
  ex.genesis(1, 100);
  ex.set_owner(1, 100);  // account 1 belongs to client 100
  // Canonical (id-sorted) order: client 100's element precedes client 101's.
  std::vector<core::Element> epoch{
      tx_element(100, 1, {1, 2, 10, 0}),  // the rightful owner
      tx_element(101, 1, {1, 2, 10, 1}),  // client 101 spends client 100's account
  };
  ex.on_epoch(record_for(1, epoch), epoch);
  ASSERT_EQ(ex.log().size(), 2u);
  EXPECT_EQ(ex.log()[0].verdict, VoidReason::kNone);
  EXPECT_EQ(ex.log()[1].verdict, VoidReason::kUnauthorized);
  EXPECT_EQ(ex.state().balance(2), 10u);
}

TEST(ExecIntegration, OnEpochHookFiresFromServers) {
  // Wire the hook directly: a Vanilla server with an executor attached.
  core::SetchainParams params;
  params.n = 4;
  params.f = 1;
  params.fidelity = core::Fidelity::kFull;
  crypto::Pki pki(5);
  for (crypto::ProcessId p = 0; p < 4; ++p) pki.register_process(p);
  pki.register_process(100);
  ledger::InstantLedger ledger(4);

  exec::EpochExecutor ex;
  ex.genesis(1, 100);

  core::ServerContext ctx;
  ctx.ledger = &ledger;
  ctx.pki = &pki;
  ctx.params = &params;
  ctx.on_epoch = [&ex](const core::EpochRecord& rec,
                       const std::vector<core::Element>& els) {
    ex.on_epoch(rec, els);
  };
  core::VanillaServer server(ctx, 0);
  ledger.on_new_block(0, [&server](const ledger::Block& b) { server.on_new_block(b); });

  server.add(make_token_element(pki, 100, 1, {1, 2, 60, 0}));
  ledger.seal_all();
  EXPECT_EQ(ex.epochs_executed(), 1u);
  EXPECT_EQ(ex.state().balance(2), 60u);
}

}  // namespace
}  // namespace setchain::exec
