#!/usr/bin/env bash
# Boot a 4-node Setchain TCP cluster on localhost, run the remote
# quorum-client example against it, and tear everything down — with a hard
# timeout so a wedged cluster can never hang CI. Used by the `smoke_tcp_cluster`
# ctest target and the CI "TCP cluster smoke" step.
#
#   usage: tcp_cluster_smoke.sh <setchain_node> <remote_quorum_client> \
#          [setchain_loadgen] [algo]
#
# When a setchain_loadgen binary is given, phase 5 additionally drives a
# 60-second open-loop rollup load against a fresh consensus cluster.
set -euo pipefail

NODE_BIN=${1:?path to setchain_node}
CLIENT_BIN=${2:?path to remote_quorum_client}
LOADGEN_BIN=${3:-}
ALGO=${4:-hashchain}

N=4
F=1
SEED=42
HOST=127.0.0.1
# Randomized base port keeps parallel ctest invocations off each other.
PORT_BASE=$(( 21000 + RANDOM % 20000 ))
LOG_DIR=$(mktemp -d)
PIDS=()

cleanup() {
  local code=$?
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  if [ "$code" -ne 0 ]; then
    echo "--- daemon logs (${LOG_DIR}) ---" >&2
    tail -n 20 "${LOG_DIR}"/*node*.log >&2 || true
    if [ -s "${LOG_DIR}/loadgen.json" ]; then
      echo "--- loadgen report ---" >&2
      cat "${LOG_DIR}/loadgen.json" >&2 || true
    fi
  fi
  rm -rf "${LOG_DIR}" "${DATA_DIR:-}"
  exit "$code"
}
trap cleanup EXIT INT TERM

PEER_ARGS=()
for i in $(seq 0 $((N - 1))); do
  PEER_ARGS+=(--peer "${HOST}:$((PORT_BASE + i))")
done

for i in $(seq 0 $((N - 1))); do
  "$NODE_BIN" --id "$i" --n "$N" --f "$F" --algo "$ALGO" --seed "$SEED" \
    --listen "${HOST}:$((PORT_BASE + i))" "${PEER_ARGS[@]}" \
    --collector 8 --collector-timeout-ms 150 --block-interval-ms 120 \
    >"${LOG_DIR}/node${i}.log" 2>&1 &
  PIDS+=($!)
done

NODE_ARGS=()
for i in $(seq 0 $((N - 1))); do
  NODE_ARGS+=(--node "${HOST}:$((PORT_BASE + i))")
done

# Hard timeout: the client self-checks (adds, quorum get, f+1 commit proof)
# and exits nonzero on any failure or stall.
timeout --kill-after=10 90 \
  "$CLIENT_BIN" --n "$N" --f "$F" --algo "$ALGO" --seed "$SEED" \
  --count 24 --wait-seconds 45 "${NODE_ARGS[@]}"

echo "tcp_cluster_smoke: PASS (${ALGO}, n=${N}, sequencer)"

# ---- Phase 2: consensus ledger + proposer SIGKILL -------------------------
# Fresh cluster on fresh ports with --ledger consensus. Commit part of a
# workload, then SIGKILL the round-0 proposer of the next heights (node 1 =
# proposer_for(1,0)) and demand a second client run — minting FRESH element
# ids via --first-seq — still commits end to end. Under the fixed sequencer
# an equivalent kill of the sequencer stalls the cluster forever; this is
# the f-tolerance the consensus mode exists to restore.
for pid in "${PIDS[@]}"; do
  kill "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
  wait "$pid" 2>/dev/null || true
done
PIDS=()

PORT_BASE=$(( PORT_BASE + 100 ))
PEER_ARGS=()
for i in $(seq 0 $((N - 1))); do
  PEER_ARGS+=(--peer "${HOST}:$((PORT_BASE + i))")
done

declare -A NODE_PID
for i in $(seq 0 $((N - 1))); do
  "$NODE_BIN" --id "$i" --n "$N" --f "$F" --algo "$ALGO" --seed "$SEED" \
    --ledger consensus --timeout-propose-ms 800 \
    --listen "${HOST}:$((PORT_BASE + i))" "${PEER_ARGS[@]}" \
    --collector 8 --collector-timeout-ms 150 --block-interval-ms 120 \
    >"${LOG_DIR}/consensus_node${i}.log" 2>&1 &
  PIDS+=($!)
  NODE_PID[$i]=$!
done

NODE_ARGS=()
for i in $(seq 0 $((N - 1))); do
  NODE_ARGS+=(--node "${HOST}:$((PORT_BASE + i))")
done

# First client run against the healthy consensus cluster.
timeout --kill-after=10 90 \
  "$CLIENT_BIN" --n "$N" --f "$F" --algo "$ALGO" --seed "$SEED" \
  --ledger consensus --count 12 --wait-seconds 45 "${NODE_ARGS[@]}"

# SIGKILL the round-0 proposer mid-cluster — no shutdown handler runs.
kill -9 "${NODE_PID[1]}" 2>/dev/null || true
wait "${NODE_PID[1]}" 2>/dev/null || true

# Second run with fresh element ids: the survivors must round-skip past the
# corpse at every height it would have proposed and still commit everything.
timeout --kill-after=10 90 \
  "$CLIENT_BIN" --n "$N" --f "$F" --algo "$ALGO" --seed "$SEED" \
  --ledger consensus --count 12 --first-seq 12 --wait-seconds 60 "${NODE_ARGS[@]}"

echo "tcp_cluster_smoke: PASS (${ALGO}, n=${N}, consensus + proposer SIGKILL)"

# ---- Phase 3: durable storage + whole-cluster SIGKILL restart -------------
# Fresh sequencer cluster with per-node --data-dir: commit a workload, then
# SIGKILL EVERY node (no shutdown handler — the WAL tail is all that
# survives), restart all four from their data dirs on the same ports, and
# demand a second client run commit end to end WITHOUT --first-seq: the
# client must derive fresh element ids from the recovered quorum view, which
# only works if recovery actually restored the committed set from disk.
for pid in "${PIDS[@]}"; do
  kill "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
  wait "$pid" 2>/dev/null || true
done
PIDS=()

PORT_BASE=$(( PORT_BASE + 100 ))
DATA_DIR=$(mktemp -d)
PEER_ARGS=()
for i in $(seq 0 $((N - 1))); do
  PEER_ARGS+=(--peer "${HOST}:$((PORT_BASE + i))")
  mkdir -p "${DATA_DIR}/node${i}"
done

# NODE_PID is the (already declared) pid map from phase 2; reuse it.
boot_durable() {
  local phase=$1
  NODE_PID=()
  for i in $(seq 0 $((N - 1))); do
    "$NODE_BIN" --id "$i" --n "$N" --f "$F" --algo "$ALGO" --seed "$SEED" \
      --listen "${HOST}:$((PORT_BASE + i))" "${PEER_ARGS[@]}" \
      --collector 8 --collector-timeout-ms 150 --block-interval-ms 120 \
      --data-dir "${DATA_DIR}/node${i}" --snapshot-epochs 2 \
      >"${LOG_DIR}/durable_${phase}_node${i}.log" 2>&1 &
    PIDS+=($!)
    NODE_PID[$i]=$!
  done
}

boot_durable boot1

NODE_ARGS=()
for i in $(seq 0 $((N - 1))); do
  NODE_ARGS+=(--node "${HOST}:$((PORT_BASE + i))")
done

# First run fills the ledger (and, at --snapshot-epochs 2, the snapshots).
timeout --kill-after=10 90 \
  "$CLIENT_BIN" --n "$N" --f "$F" --algo "$ALGO" --seed "$SEED" \
  --count 16 --wait-seconds 45 "${NODE_ARGS[@]}"

# SIGKILL the entire cluster: nothing survives but the data dirs.
for i in $(seq 0 $((N - 1))); do
  kill -9 "${NODE_PID[$i]}" 2>/dev/null || true
  wait "${NODE_PID[$i]}" 2>/dev/null || true
done
PIDS=()

boot_durable boot2

# Every node must report a recovery with state (snapshot or WAL replay).
sleep 2
for i in $(seq 0 $((N - 1))); do
  if ! grep -q "recovered:" "${LOG_DIR}/durable_boot2_node${i}.log"; then
    echo "FAIL: node ${i} did not log a recovery line" >&2
    exit 1
  fi
done

# Second run with NO --first-seq: the client derives it from the recovered
# view — fresh ids mint and commit only if the restart restored everything.
timeout --kill-after=10 120 \
  "$CLIENT_BIN" --n "$N" --f "$F" --algo "$ALGO" --seed "$SEED" \
  --count 16 --wait-seconds 60 "${NODE_ARGS[@]}" \
  | tee "${LOG_DIR}/durable_client2.log"

if ! grep -q "derived --first-seq 16" "${LOG_DIR}/durable_client2.log"; then
  echo "FAIL: client did not derive --first-seq 16 from the recovered view" >&2
  exit 1
fi

echo "tcp_cluster_smoke: PASS (${ALGO}, n=${N}, durable whole-cluster restart)"

# ---- Phase 4: consensus ledger + one Byzantine node -----------------------
# Fresh consensus cluster where node 1 — the round-0 proposer of height 1 —
# runs --byz-consensus: it equivocates proposals, double-votes, forges votes
# and serves junk sync, all signed with its real key. The client workload
# must still commit end to end on the honest majority, and the honest nodes'
# shutdown summaries must report the equivocator detected and masked.
for pid in "${PIDS[@]}"; do
  kill "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
  wait "$pid" 2>/dev/null || true
done
PIDS=()

PORT_BASE=$(( PORT_BASE + 100 ))
PEER_ARGS=()
for i in $(seq 0 $((N - 1))); do
  PEER_ARGS+=(--peer "${HOST}:$((PORT_BASE + i))")
done

for i in $(seq 0 $((N - 1))); do
  BYZ_ARGS=()
  if [ "$i" -eq 1 ]; then
    BYZ_ARGS=(--byz-consensus)
  fi
  "$NODE_BIN" --id "$i" --n "$N" --f "$F" --algo "$ALGO" --seed "$SEED" \
    --ledger consensus --timeout-propose-ms 800 "${BYZ_ARGS[@]}" \
    --listen "${HOST}:$((PORT_BASE + i))" "${PEER_ARGS[@]}" \
    --collector 8 --collector-timeout-ms 150 --block-interval-ms 120 \
    >"${LOG_DIR}/byz_node${i}.log" 2>&1 &
  PIDS+=($!)
done

NODE_ARGS=()
for i in $(seq 0 $((N - 1))); do
  NODE_ARGS+=(--node "${HOST}:$((PORT_BASE + i))")
done

timeout --kill-after=10 120 \
  "$CLIENT_BIN" --n "$N" --f "$F" --algo "$ALGO" --seed "$SEED" \
  --ledger consensus --count 12 --wait-seconds 60 "${NODE_ARGS[@]}"

# Graceful stop so every daemon prints its consensus counters, then demand
# that at least one honest node detected and masked the equivocator.
for pid in "${PIDS[@]}"; do
  kill "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
  wait "$pid" 2>/dev/null || true
done
PIDS=()

DETECTED=0
for i in 0 2 3; do
  if grep -E "consensus: equivocations=[1-9][0-9]* masked=[1-9]" \
      "${LOG_DIR}/byz_node${i}.log" >/dev/null; then
    DETECTED=1
  fi
done
if [ "$DETECTED" -ne 1 ]; then
  echo "FAIL: no honest node reported the Byzantine peer detected+masked" >&2
  grep -h "consensus:" "${LOG_DIR}"/byz_node*.log >&2 || true
  exit 1
fi

echo "tcp_cluster_smoke: PASS (${ALGO}, n=${N}, consensus + Byzantine node masked)"

# ---- Phase 5: 60-second open-loop rollup load (consensus cluster) ---------
# Fresh consensus cluster, then the load harness: an open-loop client fleet
# (Poisson arrivals, hundreds of concurrent TCP sessions) submitting L2
# token txs while the rollup operator/verifier agents post and audit epoch
# commitments through the same cluster. The loadgen's --check gate fails on
# shed arrivals, framing damage, or a bad rollup verdict; afterwards every
# daemon's shutdown counters must report zero drops and zero decode errors,
# so generator overload cannot masquerade as a pass.
if [ -n "${LOADGEN_BIN}" ]; then
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]}"; do
    wait "$pid" 2>/dev/null || true
  done
  PIDS=()

  PORT_BASE=$(( PORT_BASE + 100 ))
  PEER_ARGS=()
  for i in $(seq 0 $((N - 1))); do
    PEER_ARGS+=(--peer "${HOST}:$((PORT_BASE + i))")
  done

  # Bigger collectors than the earlier phases: at hundreds of elements/sec a
  # tiny collector mints an epoch every few milliseconds, and since the rollup
  # operator posts one commitment per tx-bearing epoch, that amplifies the
  # element stream and bloats every quorum-view poll the verifier makes.
  for i in $(seq 0 $((N - 1))); do
    "$NODE_BIN" --id "$i" --n "$N" --f "$F" --algo "$ALGO" --seed "$SEED" \
      --ledger consensus --timeout-propose-ms 800 \
      --listen "${HOST}:$((PORT_BASE + i))" "${PEER_ARGS[@]}" \
      --collector 64 --collector-timeout-ms 250 --block-interval-ms 120 \
      >"${LOG_DIR}/load_node${i}.log" 2>&1 &
    PIDS+=($!)
  done

  NODE_ARGS=()
  for i in $(seq 0 $((N - 1))); do
    NODE_ARGS+=(--node "${HOST}:$((PORT_BASE + i))")
  done

  # --settle-s 60: after the 60 s load phase the trailing commitments still
  # need to consolidate and be audited; on a loaded single-core runner each
  # settle poll re-verifies a multi-thousand-epoch quorum view, so the default
  # 20 s budget is flaky-tight here.
  sleep 1
  timeout --kill-after=10 200 \
    "$LOADGEN_BIN" "${NODE_ARGS[@]}" --algo "$ALGO" --ledger consensus \
    --seed "$SEED" --workload rollup --sessions 256 --rate 300 \
    --duration-s 60 --settle-s 60 --check >"${LOG_DIR}/loadgen.json"

  # Graceful stop so every daemon prints its transport counters.
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]}"; do
    wait "$pid" 2>/dev/null || true
  done
  PIDS=()

  for i in $(seq 0 $((N - 1))); do
    if ! grep -q "drops(peer=0 client=0)" "${LOG_DIR}/load_node${i}.log"; then
      echo "FAIL: node ${i} dropped frames under load" >&2
      grep -h "stopped:" "${LOG_DIR}/load_node${i}.log" >&2 || true
      exit 1
    fi
    if ! grep -q "decode_errors=0" "${LOG_DIR}/load_node${i}.log"; then
      echo "FAIL: node ${i} saw framing errors under load" >&2
      grep -h "stopped:" "${LOG_DIR}/load_node${i}.log" >&2 || true
      exit 1
    fi
  done

  echo "tcp_cluster_smoke: PASS (${ALGO}, n=${N}, 60 s open-loop rollup load)"
fi
