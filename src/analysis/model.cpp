#include "analysis/model.hpp"

namespace setchain::analysis {

double vanilla_throughput(const ModelParams& p) {
  const double payload = p.block_capacity - static_cast<double>(p.n) * p.proof_size;
  if (payload <= 0) return 0.0;
  return p.block_rate * payload / p.element_size;
}

double compresschain_epoch_bytes(const ModelParams& p) {
  const double c_eff = p.collector_size - static_cast<double>(p.n);
  if (c_eff <= 0 || p.compress_ratio <= 0) return 0.0;
  return (c_eff * p.element_size + static_cast<double>(p.n) * p.proof_size) /
         p.compress_ratio;
}

double compresschain_throughput(const ModelParams& p) {
  const double l = compresschain_epoch_bytes(p);
  const double c_eff = p.collector_size - static_cast<double>(p.n);
  if (l <= 0 || c_eff <= 0) return 0.0;
  return p.block_rate * c_eff * p.block_capacity / l;
}

double hashchain_throughput(const ModelParams& p) {
  const double c_eff = p.collector_size - static_cast<double>(p.n);
  if (c_eff <= 0) return 0.0;
  return p.block_rate * c_eff * p.block_capacity /
         (static_cast<double>(p.n) * p.hash_batch_size);
}

}  // namespace setchain::analysis
