#pragma once

#include <cstdint>

namespace setchain::analysis {

/// Appendix D analytical stationary-throughput model. All three formulas
/// assume every server correct (n epoch-proofs per epoch) and the ledger as
/// the bottleneck.
struct ModelParams {
  double block_rate = 0.8;       ///< R, blocks/s
  double block_capacity = 500'000.0;  ///< C, bytes
  double element_size = 438.0;   ///< le (measured Arbitrum mean)
  double proof_size = 139.0;     ///< lp
  double hash_batch_size = 139.0;  ///< lh
  std::uint32_t n = 10;
  double collector_size = 500.0;  ///< c
  double compress_ratio = 3.5;    ///< r (Brotli/szx measured)
};

/// Tv = R * (C - n*lp) / le  — each block carries n proofs plus elements.
double vanilla_throughput(const ModelParams& p);

/// Compressed length of one epoch: l = ((c-n)*le + n*lp) / r.
double compresschain_epoch_bytes(const ModelParams& p);

/// Tc = R * (c-n) * C / l.
double compresschain_throughput(const ModelParams& p);

/// Th = R * (c-n) * C / (n*lh) — n hash-batches appended per epoch.
double hashchain_throughput(const ModelParams& p);

}  // namespace setchain::analysis
