#pragma once

#include <map>
#include <vector>

#include "crypto/sha256.hpp"
#include "exec/token_tx.hpp"

namespace setchain::exec {

/// Why a transaction was voided during sequential execution (Appendix G:
/// "If a transaction is determined to be invalid it is marked as void").
enum class VoidReason : std::uint8_t {
  kNone = 0,
  kMalformedPayload,
  kUnknownSender,
  kBadNonce,
  kInsufficientFunds,
  kSelfTransfer,
  kEpochLimitExceeded,
  kUnauthorized,
};

const char* void_reason_name(VoidReason r);

struct Account {
  Amount balance = 0;
  std::uint64_t next_nonce = 0;
};

/// Deterministic token-ledger state. Accounts live in an ordered map so the
/// state root (SHA-256 over the sorted account list) is canonical; all
/// correct servers executing the same epochs reach identical roots.
class LedgerState {
 public:
  using StateRoot = crypto::Sha256::Digest;

  /// Credit the genesis allocation (used before any epoch executes).
  void genesis(AccountId account, Amount amount);

  /// Apply one transaction; returns kNone on success, otherwise the state is
  /// untouched and the reason reported.
  VoidReason apply(const TokenTx& tx);

  Amount balance(AccountId account) const;
  std::uint64_t nonce(AccountId account) const;
  Amount total_supply() const { return total_supply_; }
  std::size_t account_count() const { return accounts_.size(); }

  StateRoot state_root() const;

 private:
  std::map<AccountId, Account> accounts_;
  Amount total_supply_ = 0;
};

}  // namespace setchain::exec
