#pragma once

#include <cstdint>
#include <optional>

#include "codec/byte_io.hpp"
#include "core/element.hpp"
#include "crypto/pki.hpp"

namespace setchain::exec {

/// Appendix G extends Setchain to a fully functional blockchain: elements
/// carry transactions with semantics, each transaction is validated
/// optimistically (in parallel, signature + syntax) when added, and the
/// *effects* are computed sequentially once its epoch consolidates. This
/// module implements that extension for a token-transfer state machine.

using AccountId = std::uint64_t;
using Amount = std::uint64_t;

/// A signed token transfer riding inside a Setchain element payload.
struct TokenTx {
  AccountId from = 0;
  AccountId to = 0;
  Amount amount = 0;
  std::uint64_t nonce = 0;  ///< per-sender, strictly increasing from 0

  bool operator==(const TokenTx&) const = default;
};

constexpr std::uint8_t kTokenTxTag = 0x54;  // 'T'

/// Payload layout: tag(1) from(8) to(8) amount(8) nonce(8).
void serialize_token_tx(codec::Writer& w, const TokenTx& tx);
std::optional<TokenTx> parse_token_tx(codec::ByteView payload);

/// Wrap a TokenTx into a signed Setchain element on behalf of `client`.
/// The element id encodes (client, seq) as usual; the payload is the
/// serialized transaction.
core::Element make_token_element(const crypto::Pki& pki, crypto::ProcessId client,
                                 std::uint64_t seq, const TokenTx& tx);

}  // namespace setchain::exec
