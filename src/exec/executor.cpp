#include "exec/executor.hpp"

namespace setchain::exec {

void EpochExecutor::on_epoch(const core::EpochRecord& record,
                             const std::vector<core::Element>& elements) {
  std::uint64_t position = 0;
  for (const auto& element : elements) {
    ExecutedTx rec;
    rec.element = element.id;
    rec.epoch = record.number;

    const auto parsed = parse_token_tx(element.payload);
    if (!parsed) {
      rec.verdict = VoidReason::kMalformedPayload;
    } else {
      rec.tx = *parsed;
      const auto owner = owners_.find(parsed->from);
      if (owner != owners_.end() && owner->second != element.client) {
        rec.verdict = VoidReason::kUnauthorized;
      } else if (cfg_.max_txs_per_epoch != 0 && position >= cfg_.max_txs_per_epoch) {
        // Deterministic overflow cut: the same transactions are voided at
        // every correct server because epoch order is canonical.
        rec.verdict = VoidReason::kEpochLimitExceeded;
      } else {
        rec.verdict = state_.apply(*parsed);
      }
    }
    ++position;
    if (rec.verdict == VoidReason::kNone) {
      ++executed_;
    } else {
      ++voided_;
    }
    log_.push_back(rec);
  }
  ++epochs_executed_;
  epoch_roots_.push_back(state_.state_root());
}

}  // namespace setchain::exec
