#pragma once

#include <deque>

#include "core/setchain_base.hpp"
#include "exec/state.hpp"

namespace setchain::exec {

/// Appendix G: turning the Setchain into a fully functional blockchain.
///
/// (1) When elements are added and epochs are created, each transaction is
///     validated "optimistically by itself ... in parallel, ignoring its
///     semantics" — that is the ordinary Setchain pipeline (signature and
///     syntax checks in valid_element).
/// (2) "After each epoch is consolidated and its transactions ordered, the
///     effect of its transactions can be computed (sequentially) in its
///     actual final position. If a transaction is determined to be invalid
///     it is marked as void."
///
/// One EpochExecutor attaches per server (via ServerContext::on_epoch) and
/// replays consolidated epochs in order against a deterministic LedgerState.
/// Because all correct servers consolidate identical epochs in the same
/// order (Property 6), their executors reach identical state roots —
/// asserted in tests/exec.
class EpochExecutor {
 public:
  struct Config {
    /// Epoch execution cap, mirroring the paper's note that "large epochs
    /// may require large computational resources ... it may be required to
    /// limit epoch sizes" (like Ethereum's block limits). Transactions past
    /// the cap are voided deterministically. 0 = unlimited.
    std::uint64_t max_txs_per_epoch = 0;
  };

  EpochExecutor() = default;
  explicit EpochExecutor(Config cfg) : cfg_(cfg) {}

  /// Seed an account before execution starts (must be identical across
  /// servers, like any genesis).
  void genesis(AccountId account, Amount amount) { state_.genesis(account, amount); }

  /// Bind an account to the client key allowed to spend from it. Transfers
  /// from an owned account inside an element signed by a different client
  /// are voided (kUnauthorized). Unowned accounts are permissive (demo
  /// faucets). Must be configured identically across servers.
  void set_owner(AccountId account, crypto::ProcessId client) {
    owners_[account] = client;
  }

  /// Consume one consolidated epoch (elements in canonical order). Wire this
  /// to ServerContext::on_epoch. Epochs must arrive in increasing order.
  void on_epoch(const core::EpochRecord& record, const std::vector<core::Element>& elements);

  /// Record of one executed transaction.
  struct ExecutedTx {
    core::ElementId element = 0;
    std::uint64_t epoch = 0;
    TokenTx tx;
    VoidReason verdict = VoidReason::kNone;
  };

  const LedgerState& state() const { return state_; }
  LedgerState::StateRoot state_root() const { return state_.state_root(); }
  std::uint64_t epochs_executed() const { return epochs_executed_; }
  std::uint64_t executed() const { return executed_; }
  std::uint64_t voided() const { return voided_; }
  const std::deque<ExecutedTx>& log() const { return log_; }

  /// State root after each executed epoch (index i = epoch i+1), so light
  /// clients can check per-epoch roots like block hashes.
  const std::vector<LedgerState::StateRoot>& epoch_roots() const { return epoch_roots_; }

 private:
  Config cfg_{};
  LedgerState state_;
  std::unordered_map<AccountId, crypto::ProcessId> owners_;
  std::uint64_t epochs_executed_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t voided_ = 0;
  std::deque<ExecutedTx> log_;
  std::vector<LedgerState::StateRoot> epoch_roots_;
};

}  // namespace setchain::exec
