#include "exec/token_tx.hpp"

namespace setchain::exec {

void serialize_token_tx(codec::Writer& w, const TokenTx& tx) {
  w.u8(kTokenTxTag);
  w.u64le(tx.from);
  w.u64le(tx.to);
  w.u64le(tx.amount);
  w.u64le(tx.nonce);
}

std::optional<TokenTx> parse_token_tx(codec::ByteView payload) {
  codec::Reader r(payload);
  const auto tag = r.u8();
  if (!tag || *tag != kTokenTxTag) return std::nullopt;
  TokenTx tx;
  const auto from = r.u64le();
  const auto to = r.u64le();
  const auto amount = r.u64le();
  const auto nonce = r.u64le();
  if (!from || !to || !amount || !nonce) return std::nullopt;
  tx.from = *from;
  tx.to = *to;
  tx.amount = *amount;
  tx.nonce = *nonce;
  return tx;
}

core::Element make_token_element(const crypto::Pki& pki, crypto::ProcessId client,
                                 std::uint64_t seq, const TokenTx& tx) {
  core::Element e;
  e.client = client;
  e.id = core::make_element_id(client, seq);
  codec::Writer payload;
  serialize_token_tx(payload, tx);
  e.payload = payload.take();
  codec::Writer signing;
  signing.u64le(e.id);
  signing.bytes(e.payload);
  e.sig = pki.sign(client, signing.buffer());
  codec::Writer wire;
  core::serialize_element(wire, e);
  e.wire_size = static_cast<std::uint32_t>(wire.size());
  return e;
}

}  // namespace setchain::exec
