#include "exec/state.hpp"

namespace setchain::exec {

const char* void_reason_name(VoidReason r) {
  switch (r) {
    case VoidReason::kNone:
      return "ok";
    case VoidReason::kMalformedPayload:
      return "malformed payload";
    case VoidReason::kUnknownSender:
      return "unknown sender";
    case VoidReason::kBadNonce:
      return "bad nonce";
    case VoidReason::kInsufficientFunds:
      return "insufficient funds";
    case VoidReason::kSelfTransfer:
      return "self transfer";
    case VoidReason::kEpochLimitExceeded:
      return "epoch execution limit exceeded";
    case VoidReason::kUnauthorized:
      return "unauthorized signer";
  }
  return "?";
}

void LedgerState::genesis(AccountId account, Amount amount) {
  accounts_[account].balance += amount;
  total_supply_ += amount;
}

VoidReason LedgerState::apply(const TokenTx& tx) {
  if (tx.from == tx.to) return VoidReason::kSelfTransfer;
  auto from_it = accounts_.find(tx.from);
  if (from_it == accounts_.end()) return VoidReason::kUnknownSender;
  Account& from = from_it->second;
  if (tx.nonce != from.next_nonce) return VoidReason::kBadNonce;
  if (from.balance < tx.amount) {
    // A bad-amount transfer still burns the nonce: replaying it later must
    // not succeed (the sender signed and published it).
    ++from.next_nonce;
    return VoidReason::kInsufficientFunds;
  }
  ++from.next_nonce;
  from.balance -= tx.amount;
  accounts_[tx.to].balance += tx.amount;
  return VoidReason::kNone;
}

Amount LedgerState::balance(AccountId account) const {
  auto it = accounts_.find(account);
  return it == accounts_.end() ? 0 : it->second.balance;
}

std::uint64_t LedgerState::nonce(AccountId account) const {
  auto it = accounts_.find(account);
  return it == accounts_.end() ? 0 : it->second.next_nonce;
}

LedgerState::StateRoot LedgerState::state_root() const {
  crypto::Sha256 h;
  codec::Writer w;
  w.varint(accounts_.size());
  for (const auto& [id, acct] : accounts_) {  // std::map: sorted, canonical
    w.u64le(id);
    w.u64le(acct.balance);
    w.u64le(acct.next_nonce);
  }
  h.update(w.buffer());
  return h.finalize();
}

}  // namespace setchain::exec
