#include "storage/snapshot.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <dirent.h>

#include "storage/wal.hpp"  // crc32c

namespace setchain::storage {
namespace {

void put_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64le(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::string snapshot_path(const std::string& dir, std::uint64_t height) {
  char name[64];
  std::snprintf(name, sizeof(name), "snap-%016" PRIx64 ".snap", height);
  return dir + "/" + name;
}

std::optional<std::uint64_t> parse_snapshot_name(const char* name) {
  std::size_t len = std::strlen(name);
  if (len != 5 + 16 + 5) return std::nullopt;
  if (std::memcmp(name, "snap-", 5) != 0) return std::nullopt;
  if (std::memcmp(name + 21, ".snap", 5) != 0) return std::nullopt;
  std::uint64_t h = 0;
  for (std::size_t i = 5; i < 21; ++i) {
    char c = name[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a') + 10;
    else return std::nullopt;
    h = (h << 4) | digit;
  }
  return h;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

void fsync_dir(const std::string& dir) {
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

void set_diag(std::string* diagnostic, std::string msg) {
  if (diagnostic != nullptr) *diagnostic = std::move(msg);
}

}  // namespace

bool write_snapshot_file(const std::string& dir, std::uint64_t height,
                         codec::ByteView body, std::string* diagnostic) {
  std::uint8_t header[kSnapshotHeaderBytes];
  put_u32le(header, kSnapshotMagic);
  header[4] = kSnapshotVersion;
  put_u64le(header + 5, height);
  put_u64le(header + 13, static_cast<std::uint64_t>(body.size()));
  std::uint32_t crc = crc32c(codec::ByteView(header + 4, 17));
  crc = crc32c(body, crc);
  put_u32le(header + 21, crc);

  std::string final_path = snapshot_path(dir, height);
  std::string tmp_path = final_path + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    set_diag(diagnostic, "cannot create " + tmp_path + ": " + std::strerror(errno));
    return false;
  }
  bool ok = write_all(fd, header, kSnapshotHeaderBytes) &&
            write_all(fd, body.data(), body.size()) && ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    set_diag(diagnostic, "write failed on " + tmp_path + ": " + std::strerror(errno));
    ::unlink(tmp_path.c_str());
    return false;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    set_diag(diagnostic, "rename to " + final_path + " failed: " + std::strerror(errno));
    ::unlink(tmp_path.c_str());
    return false;
  }
  fsync_dir(dir);
  return true;
}

bool load_snapshot_file(const std::string& path, std::uint64_t* height,
                        codec::Bytes* body, std::string* diagnostic) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    set_diag(diagnostic, "cannot open " + path + ": " + std::strerror(errno));
    return false;
  }
  codec::Bytes data;
  std::uint8_t buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      set_diag(diagnostic, "read failed on " + path + ": " + std::strerror(errno));
      return false;
    }
    if (n == 0) break;
    data.insert(data.end(), buf, buf + n);
  }
  ::close(fd);

  if (data.size() < kSnapshotHeaderBytes) {
    set_diag(diagnostic, path + ": shorter than a snapshot header");
    return false;
  }
  const std::uint8_t* h = data.data();
  if (codec::read_u32le(codec::ByteView(h, 4)) != kSnapshotMagic) {
    set_diag(diagnostic, path + ": bad magic");
    return false;
  }
  if (h[4] != kSnapshotVersion) {
    set_diag(diagnostic, path + ": unsupported version " + std::to_string(h[4]));
    return false;
  }
  std::uint64_t file_height = codec::read_u64le(codec::ByteView(h + 5, 8));
  std::uint64_t body_len = codec::read_u64le(codec::ByteView(h + 13, 8));
  std::uint32_t crc = codec::read_u32le(codec::ByteView(h + 21, 4));
  if (data.size() - kSnapshotHeaderBytes != body_len) {
    set_diag(diagnostic, path + ": body length mismatch (header says " +
                             std::to_string(body_len) + ", file has " +
                             std::to_string(data.size() - kSnapshotHeaderBytes) + ")");
    return false;
  }
  std::uint32_t want = crc32c(codec::ByteView(h + 4, 17));
  want = crc32c(codec::ByteView(h + kSnapshotHeaderBytes, body_len), want);
  if (want != crc) {
    set_diag(diagnostic, path + ": CRC mismatch");
    return false;
  }
  if (height != nullptr) *height = file_height;
  if (body != nullptr) body->assign(data.begin() + kSnapshotHeaderBytes, data.end());
  return true;
}

std::vector<std::pair<std::uint64_t, std::string>> list_snapshots(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    if (auto h = parse_snapshot_name(e->d_name)) {
      out.emplace_back(*h, dir + "/" + e->d_name);
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

std::optional<LoadedSnapshot> load_latest_snapshot(const std::string& dir) {
  LoadedSnapshot snap;
  for (const auto& [height, path] : list_snapshots(dir)) {
    std::string why;
    if (load_snapshot_file(path, &snap.height, &snap.body, &why)) return snap;
    ++snap.fallbacks;
    if (!snap.diagnostic.empty()) snap.diagnostic += "; ";
    snap.diagnostic += why;
  }
  return std::nullopt;
}

std::size_t prune_snapshots(const std::string& dir, std::size_t keep) {
  auto snaps = list_snapshots(dir);
  std::size_t removed = 0;
  for (std::size_t i = keep; i < snaps.size(); ++i) {
    if (::unlink(snaps[i].second.c_str()) == 0) ++removed;
  }
  if (removed > 0) fsync_dir(dir);
  return removed;
}

}  // namespace setchain::storage
