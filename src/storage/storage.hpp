#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "codec/bytes.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

namespace setchain::storage {

struct StorageConfig {
  std::string dir;  ///< data directory (created if missing)
  FsyncMode fsync = FsyncMode::kInterval;
  std::uint64_t fsync_interval_ms = 50;
  std::uint64_t segment_bytes = 8u << 20;
  /// Snapshots retained on disk. Two by default: the newest plus one
  /// fallback, so a damaged newest snapshot never strands recovery. The WAL
  /// is pruned against the OLDEST retained snapshot so fallback + WAL gap
  /// always coexist.
  std::uint32_t snapshots_kept = 2;
};

/// What recovery found and did — exposed through NodeHost, printed by
/// setchain_node's shutdown stats, and asserted by restart tests to prove
/// tail-only replay.
struct RecoveryStats {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_height = 0;
  /// Newer-but-damaged snapshot files skipped before one validated.
  std::uint64_t snapshot_fallbacks = 0;
  std::uint64_t wal_blocks_replayed = 0;
  std::uint64_t wal_batches_replayed = 0;
  /// WAL records at or below the snapshot height (already covered).
  std::uint64_t wal_records_skipped = 0;
  std::uint64_t wal_truncated_bytes = 0;
  /// Human-readable account of anything abnormal (torn tail, fallbacks).
  std::string diagnostic;
};

/// Facade tying the WAL and snapshot store to one data directory. Owned by
/// the process hosting a node; NodeHost drives it: load_snapshot() +
/// replay() during recovery, append_block()/append_batch() from commit
/// hooks, write_snapshot() on the epoch cadence. Payloads are opaque bytes
/// here — framing/meaning belong to the callers (docs/STORAGE_FORMAT.md).
class Storage {
 public:
  /// Open (and create if needed) the data directory, scan + repair the WAL.
  /// nullptr + error on I/O failure.
  static std::unique_ptr<Storage> open(const StorageConfig& cfg, std::string* error);

  /// Newest valid snapshot body, or nullopt when none exists. Records
  /// height/fallback counters in recovery().
  std::optional<codec::Bytes> load_snapshot();

  /// Stream WAL records with height > the loaded snapshot's height (all of
  /// them when no snapshot was loaded) through `fn`; covered records are
  /// counted as skipped. Returns false if the scan hit damage (diagnostic
  /// recorded; the delivered prefix is still valid).
  bool replay(const std::function<void(WalRecordKind kind, std::uint64_t height,
                                       codec::ByteView payload)>& fn);

  bool append_block(std::uint64_t height, codec::ByteView payload) {
    return wal_.append(WalRecordKind::kBlock, height, payload);
  }
  bool append_batch(std::uint64_t height, codec::ByteView payload) {
    return wal_.append(WalRecordKind::kBatch, height, payload);
  }

  /// Durably write a snapshot at `height`, prune old snapshots down to
  /// snapshots_kept, and drop WAL segments covered by the oldest retained
  /// snapshot. False + untouched WAL on failure.
  bool write_snapshot(std::uint64_t height, codec::ByteView body);

  /// fdatasync the active WAL segment (shutdown barrier).
  void sync() { wal_.sync(); }

  const RecoveryStats& recovery() const { return recovery_; }
  const WalCounters& wal_counters() const { return wal_.counters(); }
  std::uint64_t wal_last_height() const { return wal_.last_height(); }
  std::size_t wal_segment_count() const { return wal_.segment_count(); }
  std::uint64_t snapshots_written() const { return snapshots_written_; }
  std::uint64_t last_snapshot_height() const { return last_snapshot_height_; }
  const std::string& dir() const { return cfg_.dir; }

 private:
  Storage() = default;

  StorageConfig cfg_;
  Wal wal_;
  RecoveryStats recovery_;
  std::uint64_t snapshots_written_ = 0;
  std::uint64_t last_snapshot_height_ = 0;
};

}  // namespace setchain::storage
