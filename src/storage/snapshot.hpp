#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "codec/bytes.hpp"

namespace setchain::storage {

/// Epoch snapshot files: `snap-<height 16 hex>.snap`, written atomically
/// (tmp + fsync + rename + directory fsync). The header CRC covers the
/// version, height, and body length fields as well as the body, so a bit
/// flip anywhere in the file is detected. docs/STORAGE_FORMAT.md is
/// normative.

constexpr std::uint32_t kSnapshotMagic = 0x504E5353;  // "SSNP" LE
constexpr std::uint8_t kSnapshotVersion = 1;
/// magic(4) + version(1) + height(8) + body_len(8) + crc(4).
constexpr std::size_t kSnapshotHeaderBytes = 25;

/// Atomically write `snap-<height>.snap` in `dir`. False + diagnostic on
/// I/O failure (a stale tmp file may remain; it is ignored by loaders and
/// overwritten by the next attempt).
bool write_snapshot_file(const std::string& dir, std::uint64_t height,
                         codec::ByteView body, std::string* diagnostic);

struct LoadedSnapshot {
  std::uint64_t height = 0;
  codec::Bytes body;
  /// Newer snapshot files that failed validation and were skipped.
  std::uint64_t fallbacks = 0;
  std::string diagnostic;  ///< why each fallback happened (empty when none)
};

/// Load the newest snapshot in `dir` that passes magic/version/CRC
/// validation, falling back to older ones when the newest is damaged.
/// nullopt when no valid snapshot exists (diagnostics are lost in that
/// case — use list_snapshots + load_snapshot_file to inspect).
std::optional<LoadedSnapshot> load_latest_snapshot(const std::string& dir);

/// Validate and read one snapshot file. False + diagnostic on any damage.
bool load_snapshot_file(const std::string& path, std::uint64_t* height,
                        codec::Bytes* body, std::string* diagnostic);

/// All well-named snapshot files in `dir` as (height, path), newest first.
std::vector<std::pair<std::uint64_t, std::string>> list_snapshots(const std::string& dir);

/// Delete all but the newest `keep` snapshots. Returns how many were
/// removed.
std::size_t prune_snapshots(const std::string& dir, std::size_t keep);

}  // namespace setchain::storage
