#include "storage/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <dirent.h>

namespace setchain::storage {
namespace {

// ---- CRC32C (Castagnoli, reflected), slicing-by-4 -------------------------

struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 4> t;
  Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t s = 1; s < 4; ++s) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[s][i] = c;
      }
    }
  }
};

const Crc32cTables& crc_tables() {
  static const Crc32cTables tables;
  return tables;
}

std::int64_t steady_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void put_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64le(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::string segment_path(const std::string& dir, std::uint64_t seq) {
  char name[64];
  std::snprintf(name, sizeof(name), "wal-%016" PRIx64 ".log", seq);
  return dir + "/" + name;
}

/// Parse `wal-<16 hex>.log`; nullopt for anything else in the dir.
std::optional<std::uint64_t> parse_segment_name(const char* name) {
  std::size_t len = std::strlen(name);
  if (len != 4 + 16 + 4) return std::nullopt;
  if (std::memcmp(name, "wal-", 4) != 0) return std::nullopt;
  if (std::memcmp(name + 20, ".log", 4) != 0) return std::nullopt;
  std::uint64_t seq = 0;
  for (std::size_t i = 4; i < 20; ++i) {
    char c = name[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a') + 10;
    else return std::nullopt;
    seq = (seq << 4) | digit;
  }
  return seq;
}

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_file(const std::string& path, codec::Bytes* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  out->clear();
  std::uint8_t buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->insert(out->end(), buf, buf + n);
  }
  ::close(fd);
  return true;
}

void append_diag(std::string* diagnostic, const std::string& msg) {
  if (diagnostic == nullptr) return;
  if (!diagnostic->empty()) *diagnostic += "; ";
  *diagnostic += msg;
}

struct ScannedRecord {
  WalRecordKind kind;
  std::uint64_t height;
  std::size_t payload_off;  ///< into the segment buffer
  std::uint32_t payload_len;
};

/// Walk records in `data`. Returns the byte offset of the valid prefix and
/// appends each valid record to `out`. `*why` describes the first invalid
/// record when the prefix ends before the buffer does.
std::size_t scan_segment(const codec::Bytes& data, std::vector<ScannedRecord>* out,
                         std::string* why) {
  std::size_t off = 0;
  while (data.size() - off >= Wal::kHeaderBytes) {
    const std::uint8_t* h = data.data() + off;
    if (get_u32le(h) != Wal::kRecordMagic) {
      *why = "bad record magic at offset " + std::to_string(off);
      return off;
    }
    std::uint8_t kind = h[4];
    std::uint64_t height = get_u64le(h + 5);
    std::uint32_t len = get_u32le(h + 13);
    std::uint32_t crc = get_u32le(h + 17);
    if (kind != static_cast<std::uint8_t>(WalRecordKind::kBlock) &&
        kind != static_cast<std::uint8_t>(WalRecordKind::kBatch)) {
      *why = "unknown record kind " + std::to_string(kind) + " at offset " + std::to_string(off);
      return off;
    }
    if (len > Wal::kMaxRecordBytes) {
      *why = "oversized record (" + std::to_string(len) + " bytes) at offset " + std::to_string(off);
      return off;
    }
    if (data.size() - off - Wal::kHeaderBytes < len) {
      *why = "torn tail: record at offset " + std::to_string(off) + " needs " +
             std::to_string(len) + " payload bytes, " +
             std::to_string(data.size() - off - Wal::kHeaderBytes) + " present";
      return off;
    }
    // CRC covers kind ‖ height ‖ length ‖ payload, i.e. everything after the
    // magic+crc framing itself.
    std::uint32_t want = crc32c(codec::ByteView(h + 4, 13));
    want = crc32c(codec::ByteView(h + Wal::kHeaderBytes, len), want);
    if (want != crc) {
      *why = "CRC mismatch at offset " + std::to_string(off);
      return off;
    }
    if (out != nullptr) {
      out->push_back(ScannedRecord{static_cast<WalRecordKind>(kind), height,
                                   off + Wal::kHeaderBytes, len});
    }
    off += Wal::kHeaderBytes + len;
  }
  if (off < data.size()) {
    *why = "torn tail: " + std::to_string(data.size() - off) +
           " trailing bytes shorter than a record header";
  }
  return off;
}

void fsync_dir(const std::string& dir) {
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

std::uint32_t crc32c(codec::ByteView data, std::uint32_t seed) {
  const auto& t = crc_tables().t;
  std::uint32_t c = ~seed;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 4) {
    c ^= get_u32le(p);
    c = t[3][c & 0xFF] ^ t[2][(c >> 8) & 0xFF] ^ t[1][(c >> 16) & 0xFF] ^ t[0][c >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) c = t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  return ~c;
}

const char* fsync_mode_name(FsyncMode m) {
  switch (m) {
    case FsyncMode::kAlways: return "always";
    case FsyncMode::kInterval: return "interval";
    case FsyncMode::kOff: return "off";
  }
  return "?";
}

std::optional<FsyncMode> parse_fsync_mode(std::string_view name) {
  std::string low(name);
  for (char& c : low) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (low == "always") return FsyncMode::kAlways;
  if (low == "interval") return FsyncMode::kInterval;
  if (low == "off") return FsyncMode::kOff;
  return std::nullopt;
}

Wal::~Wal() {
  if (fd_ >= 0) {
    if (opts_.fsync != FsyncMode::kOff) ::fdatasync(fd_);
    ::close(fd_);
  }
}

bool Wal::open(WalOptions opts, std::string* diagnostic) {
  if (diagnostic != nullptr) diagnostic->clear();
  opts_ = std::move(opts);
  if (opts_.segment_bytes == 0) opts_.segment_bytes = 8u << 20;

  DIR* d = ::opendir(opts_.dir.c_str());
  if (d == nullptr) {
    append_diag(diagnostic, "cannot open WAL dir " + opts_.dir + ": " + std::strerror(errno));
    return false;
  }
  segments_.clear();
  while (dirent* e = ::readdir(d)) {
    if (auto seq = parse_segment_name(e->d_name)) {
      segments_.push_back(Segment{*seq, segment_path(opts_.dir, *seq), 0, 0});
    }
  }
  ::closedir(d);
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) { return a.seq < b.seq; });

  // Scan every segment; truncate the log at the first invalid record. A cut
  // in the last segment is the expected torn tail; a cut earlier also drops
  // every later segment so the surviving log is a contiguous valid prefix.
  bool cut = false;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    Segment& seg = segments_[i];
    codec::Bytes data;
    if (!read_file(seg.path, &data)) {
      append_diag(diagnostic, "cannot read " + seg.path + ": " + std::strerror(errno));
      cut = true;
      break;
    }
    std::vector<ScannedRecord> recs;
    std::string why;
    std::size_t valid = scan_segment(data, &recs, &why);
    for (const ScannedRecord& r : recs) {
      seg.max_height = std::max(seg.max_height, r.height);
      last_height_ = std::max(last_height_, r.height);
      ++counters_.records_scanned;
    }
    seg.bytes = valid;
    if (valid < data.size()) {
      counters_.truncated_bytes += data.size() - valid;
      append_diag(diagnostic, seg.path + ": " + why + " — truncated to " +
                                  std::to_string(valid) + " bytes");
      if (::truncate(seg.path.c_str(), static_cast<off_t>(valid)) != 0) {
        append_diag(diagnostic, "truncate failed on " + seg.path + ": " + std::strerror(errno));
        return false;
      }
      keep = i + 1;
      cut = true;
      break;
    }
    keep = i + 1;
  }
  if (cut) {
    for (std::size_t i = keep; i < segments_.size(); ++i) {
      codec::Bytes data;
      if (read_file(segments_[i].path, &data)) counters_.truncated_bytes += data.size();
      ::unlink(segments_[i].path.c_str());
      ++counters_.segments_deleted;
      append_diag(diagnostic, "dropped " + segments_[i].path + " (follows a corrupt record)");
    }
    segments_.resize(keep);
    fsync_dir(opts_.dir);
  }

  last_sync_ms_ = steady_ms();
  return open_active_segment(segments_.empty(), diagnostic);
}

bool Wal::open_active_segment(bool create_fresh, std::string* diagnostic) {
  if (create_fresh) {
    std::uint64_t seq = segments_.empty() ? 1 : segments_.back().seq + 1;
    segments_.push_back(Segment{seq, segment_path(opts_.dir, seq), 0, 0});
    ++counters_.segments_created;
  }
  Segment& active = segments_.back();
  fd_ = ::open(active.path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    append_diag(diagnostic, "cannot open " + active.path + ": " + std::strerror(errno));
    return false;
  }
  if (create_fresh) fsync_dir(opts_.dir);
  return true;
}

bool Wal::roll_segment() {
  if (opts_.fsync != FsyncMode::kOff) {
    ::fdatasync(fd_);
    ++counters_.fsyncs;
  }
  ::close(fd_);
  fd_ = -1;
  return open_active_segment(true, nullptr);
}

bool Wal::replay(const std::function<void(WalRecordKind, std::uint64_t, codec::ByteView)>& fn,
                 std::string* diagnostic) const {
  for (const Segment& seg : segments_) {
    codec::Bytes data;
    if (!read_file(seg.path, &data)) {
      append_diag(diagnostic, "cannot read " + seg.path + ": " + std::strerror(errno));
      return false;
    }
    std::vector<ScannedRecord> recs;
    std::string why;
    std::size_t valid = scan_segment(data, &recs, &why);
    for (const ScannedRecord& r : recs) {
      fn(r.kind, r.height, codec::ByteView(data.data() + r.payload_off, r.payload_len));
    }
    if (valid < data.size()) {
      append_diag(diagnostic, seg.path + ": " + why);
      return false;
    }
  }
  return true;
}

bool Wal::append(WalRecordKind kind, std::uint64_t height, codec::ByteView payload) {
  if (fd_ < 0) return false;
  if (payload.size() > kMaxRecordBytes) return false;

  std::uint8_t header[kHeaderBytes];
  put_u32le(header, kRecordMagic);
  header[4] = static_cast<std::uint8_t>(kind);
  put_u64le(header + 5, height);
  put_u32le(header + 13, static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = crc32c(codec::ByteView(header + 4, 13));
  crc = crc32c(payload, crc);
  put_u32le(header + 17, crc);

  if (!write_all(fd_, header, kHeaderBytes) ||
      !write_all(fd_, payload.data(), payload.size())) {
    return false;
  }
  Segment& active = segments_.back();
  active.bytes += kHeaderBytes + payload.size();
  active.max_height = std::max(active.max_height, height);
  last_height_ = std::max(last_height_, height);
  ++counters_.records_appended;
  counters_.bytes_appended += kHeaderBytes + payload.size();
  maybe_fsync();
  if (active.bytes >= opts_.segment_bytes) return roll_segment();
  return true;
}

void Wal::maybe_fsync() {
  switch (opts_.fsync) {
    case FsyncMode::kAlways:
      ::fdatasync(fd_);
      ++counters_.fsyncs;
      break;
    case FsyncMode::kInterval: {
      std::int64_t now = steady_ms();
      if (now - last_sync_ms_ >= static_cast<std::int64_t>(opts_.fsync_interval_ms)) {
        ::fdatasync(fd_);
        ++counters_.fsyncs;
        last_sync_ms_ = now;
      }
      break;
    }
    case FsyncMode::kOff:
      break;
  }
}

void Wal::sync() {
  if (fd_ < 0) return;
  ::fdatasync(fd_);
  ++counters_.fsyncs;
  last_sync_ms_ = steady_ms();
}

void Wal::prune_covered(std::uint64_t height) {
  // The active segment always survives, even when fully covered — it keeps
  // the append path trivial and costs at most one segment of disk.
  std::size_t removed = 0;
  while (segments_.size() > 1 && segments_.front().max_height <= height) {
    ::unlink(segments_.front().path.c_str());
    segments_.erase(segments_.begin());
    ++counters_.segments_deleted;
    ++removed;
  }
  if (removed > 0) fsync_dir(opts_.dir);
}

}  // namespace setchain::storage
