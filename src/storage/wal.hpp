#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "codec/bytes.hpp"

namespace setchain::storage {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected), software
/// slicing-by-4. `seed` chains incremental computations. This is the
/// checksum every on-disk record and snapshot carries — see
/// docs/STORAGE_FORMAT.md.
std::uint32_t crc32c(codec::ByteView data, std::uint32_t seed = 0);

/// When WAL appends reach the platters. `always` fdatasyncs every record
/// (a committed block survives a power cut), `interval` fdatasyncs at most
/// once per fsync_interval_ms (a kill -9 loses nothing, a power cut loses
/// at most the interval), `off` leaves it to the kernel (bench baseline).
enum class FsyncMode : std::uint8_t { kAlways, kInterval, kOff };

const char* fsync_mode_name(FsyncMode m);
/// Inverse of fsync_mode_name, case-insensitive. Unknown names -> nullopt.
std::optional<FsyncMode> parse_fsync_mode(std::string_view name);

/// What one WAL record carries. kBlock: a committed block payload in the
/// wire kBlock/kProposal layout, at its height. kBatch: a Hashchain batch
/// registered in the node's store (64-byte hash followed by the serialized
/// batch bytes), stamped with the ledger height current at write time so
/// segment compaction can reason about coverage uniformly.
enum class WalRecordKind : std::uint8_t { kBlock = 1, kBatch = 2 };

struct WalOptions {
  std::string dir;
  FsyncMode fsync = FsyncMode::kInterval;
  std::uint64_t fsync_interval_ms = 50;
  /// Rotate to a fresh segment once the active one exceeds this.
  std::uint64_t segment_bytes = 8u << 20;
};

struct WalCounters {
  std::uint64_t records_appended = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t segments_created = 0;
  std::uint64_t segments_deleted = 0;
  /// Bytes dropped on open: a torn tail (crash mid-write) or a record whose
  /// CRC no longer matches. The log is always usable up to the cut.
  std::uint64_t truncated_bytes = 0;
  /// Valid records found by the opening scan.
  std::uint64_t records_scanned = 0;
};

/// Append-only write-ahead log over numbered segment files
/// (`wal-<seq 16 hex>.log`). Each record: magic, kind, height, length,
/// CRC32C, payload (docs/STORAGE_FORMAT.md is normative). open() scans the
/// whole log and truncates it to its longest valid prefix — a torn tail
/// from a crash mid-append disappears; corruption deeper in the log cuts
/// everything after it (and reports a diagnostic), never undefined
/// behaviour. Single-owner, not thread-safe: the node's own thread is the
/// only writer, matching the NodeHost threading model.
class Wal {
 public:
  static constexpr std::uint32_t kRecordMagic = 0x4C415753;  // "SWAL" LE
  /// magic(4) + kind(1) + height(8) + length(4) + crc(4).
  static constexpr std::size_t kHeaderBytes = 21;
  /// Sanity cap on a single record (the wire frame cap is 8 MiB).
  static constexpr std::uint64_t kMaxRecordBytes = 16u << 20;

  Wal() = default;
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Scan `opts.dir`, truncate to the longest valid prefix, and open the
  /// active segment for append (creating the first segment when the dir is
  /// empty). Returns false only on real I/O errors; corruption is handled
  /// by truncation and reported through `diagnostic` (set non-empty even on
  /// a true return when anything was cut).
  bool open(WalOptions opts, std::string* diagnostic);

  /// Re-read every record in order. `fn` sees each valid record; iteration
  /// stops at the first invalid one (which open() should already have
  /// removed — hitting one here means the disk changed underneath us and is
  /// reported via `diagnostic` with a false return).
  bool replay(const std::function<void(WalRecordKind kind, std::uint64_t height,
                                       codec::ByteView payload)>& fn,
              std::string* diagnostic) const;

  /// Append one record, honoring the fsync policy and segment rotation.
  /// Returns false on I/O failure (the caller decides whether to carry on
  /// diskless or abort).
  bool append(WalRecordKind kind, std::uint64_t height, codec::ByteView payload);

  /// Force an fdatasync of the active segment (snapshot barrier).
  void sync();

  /// Delete every non-active segment whose records all sit at heights
  /// <= `height` — they are fully covered by a snapshot at `height`.
  void prune_covered(std::uint64_t height);

  bool is_open() const { return fd_ >= 0; }
  const WalCounters& counters() const { return counters_; }
  /// Highest record height appended or scanned (0 when empty).
  std::uint64_t last_height() const { return last_height_; }
  std::size_t segment_count() const { return segments_.size(); }

 private:
  struct Segment {
    std::uint64_t seq = 0;
    std::string path;
    std::uint64_t max_height = 0;  ///< highest record height inside
    std::uint64_t bytes = 0;       ///< valid bytes (scan/appends)
  };

  bool open_active_segment(bool create_fresh, std::string* diagnostic);
  bool roll_segment();
  void maybe_fsync();

  WalOptions opts_;
  std::vector<Segment> segments_;  ///< ascending seq; back() is active
  int fd_ = -1;
  std::uint64_t last_height_ = 0;
  std::int64_t last_sync_ms_ = 0;  ///< steady-clock ms of the last fdatasync
  WalCounters counters_;
};

}  // namespace setchain::storage
