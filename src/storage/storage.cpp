#include "storage/storage.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

namespace setchain::storage {
namespace {

/// mkdir -p: create each path component, tolerating ones that exist.
bool make_dirs(const std::string& path, std::string* error) {
  std::string partial;
  partial.reserve(path.size());
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      partial.push_back(path[i]);
      continue;
    }
    if (!partial.empty() && ::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      if (error != nullptr) {
        *error = "mkdir " + partial + " failed: " + std::strerror(errno);
      }
      return false;
    }
    if (i < path.size()) partial.push_back('/');
  }
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    if (error != nullptr) *error = path + " is not a directory";
    return false;
  }
  return true;
}

}  // namespace

std::unique_ptr<Storage> Storage::open(const StorageConfig& cfg, std::string* error) {
  if (cfg.dir.empty()) {
    if (error != nullptr) *error = "empty data directory";
    return nullptr;
  }
  if (!make_dirs(cfg.dir, error)) return nullptr;

  auto st = std::unique_ptr<Storage>(new Storage());
  st->cfg_ = cfg;
  WalOptions wopts;
  wopts.dir = cfg.dir;
  wopts.fsync = cfg.fsync;
  wopts.fsync_interval_ms = cfg.fsync_interval_ms;
  wopts.segment_bytes = cfg.segment_bytes;
  std::string diag;
  if (!st->wal_.open(std::move(wopts), &diag)) {
    if (error != nullptr) *error = diag;
    return nullptr;
  }
  st->recovery_.diagnostic = diag;  // torn-tail repairs, if any
  st->recovery_.wal_truncated_bytes = st->wal_.counters().truncated_bytes;
  return st;
}

std::optional<codec::Bytes> Storage::load_snapshot() {
  auto snap = load_latest_snapshot(cfg_.dir);
  if (!snap.has_value()) return std::nullopt;
  recovery_.snapshot_loaded = true;
  recovery_.snapshot_height = snap->height;
  recovery_.snapshot_fallbacks = snap->fallbacks;
  last_snapshot_height_ = snap->height;
  if (!snap->diagnostic.empty()) {
    if (!recovery_.diagnostic.empty()) recovery_.diagnostic += "; ";
    recovery_.diagnostic += snap->diagnostic;
  }
  return std::move(snap->body);
}

bool Storage::replay(const std::function<void(WalRecordKind, std::uint64_t,
                                              codec::ByteView)>& fn) {
  const std::uint64_t floor = recovery_.snapshot_height;
  std::string diag;
  bool clean = wal_.replay(
      [&](WalRecordKind kind, std::uint64_t height, codec::ByteView payload) {
        // Blocks at the snapshot height are inside the snapshot by
        // construction; a batch stamped with that height may have been put
        // just after the snapshot, so batches only skip strictly below it
        // (re-putting a snapshotted batch is idempotent).
        bool covered = kind == WalRecordKind::kBlock ? height <= floor : height < floor;
        if (covered && floor != 0) {
          ++recovery_.wal_records_skipped;
          return;
        }
        if (kind == WalRecordKind::kBlock) {
          ++recovery_.wal_blocks_replayed;
        } else {
          ++recovery_.wal_batches_replayed;
        }
        fn(kind, height, payload);
      },
      &diag);
  if (!diag.empty()) {
    if (!recovery_.diagnostic.empty()) recovery_.diagnostic += "; ";
    recovery_.diagnostic += diag;
  }
  return clean;
}

bool Storage::write_snapshot(std::uint64_t height, codec::ByteView body) {
  // The WAL must be on disk up to this height before the snapshot claims to
  // cover it — otherwise a crash right after the prune below could lose the
  // gap between the snapshot and an unsynced tail.
  wal_.sync();
  std::string diag;
  if (!write_snapshot_file(cfg_.dir, height, body, &diag)) return false;
  ++snapshots_written_;
  last_snapshot_height_ = height;
  prune_snapshots(cfg_.dir, cfg_.snapshots_kept);
  auto retained = list_snapshots(cfg_.dir);
  if (!retained.empty()) {
    wal_.prune_covered(retained.back().first);  // oldest retained snapshot
  }
  return true;
}

}  // namespace setchain::storage
