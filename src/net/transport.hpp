#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include "codec/bytes.hpp"
#include "net/wire.hpp"

namespace setchain::net {

/// Addressable peer of a transport. Server nodes use their node id
/// (0 .. n-1); client connections get transport-assigned ids at or above
/// kClientEndpointBase, scoped to the local transport instance.
using EndpointId = std::uint64_t;
inline constexpr EndpointId kClientEndpointBase = 1u << 20;
inline bool is_client_endpoint(EndpointId e) { return e >= kClientEndpointBase; }

/// Inbound-frame sink. Transports invoke it on the owner's dispatch thread
/// only (TcpTransport: inside poll(); LoopbackTransport: inside the shared
/// simulation's events) — node logic never needs locking.
using FrameHandler = std::function<void(EndpointId from, wire::Frame&&)>;

/// Message-passing backend of one node: frames in, frames out, no ordering
/// or delivery guarantee beyond what the backend gives (loopback: in-order
/// unless a fault plan drops; TCP: in-order per connection, frames lost
/// whenever a connection drops). Everything above this interface —
/// replicated ledger, batch exchange, client RPC — must tolerate loss,
/// which is exactly the asynchronous-network model of the paper.
class ITransport {
 public:
  virtual ~ITransport() = default;

  virtual void set_handler(FrameHandler handler) = 0;

  /// Queue `payload` as one `type` frame to `to`. Best-effort: returns false
  /// when there is no live path (unknown endpoint, dead connection, full
  /// send queue) — the frame is dropped and counted, never buffered
  /// indefinitely (bounded queues are the backpressure).
  virtual bool send(EndpointId to, wire::MsgType type, codec::ByteView payload) = 0;

  /// Deliver pending inbound frames to the handler on the calling thread,
  /// waiting up to `max_wait` for the first one. Returns frames delivered.
  /// Loopback transports deliver through the shared simulation instead and
  /// always return 0 here.
  virtual std::size_t poll(std::chrono::milliseconds max_wait) = 0;

  /// This node's id (the endpoint peers reach it under).
  virtual std::uint32_t self() const = 0;

  struct Counters {
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t send_drops = 0;     ///< frames refused by send() (total)
    /// send_drops split by destination class: a peer drop means protocol
    /// traffic was lost to backpressure (a liveness smell worth alerting
    /// on); a client drop merely sheds RPC load (clients retry). The two
    /// always sum to send_drops.
    std::uint64_t send_drops_peer = 0;
    std::uint64_t send_drops_client = 0;
    std::uint64_t decode_errors = 0;  ///< streams killed by a framing error
    std::uint64_t reconnects = 0;     ///< successful re-dials after a drop
    /// High-water mark of any single connection's send queue (frames).
    /// Hitting send_queue_limit is where drops start.
    std::uint64_t send_queue_peak = 0;
  };
  virtual Counters counters() const = 0;
};

}  // namespace setchain::net
