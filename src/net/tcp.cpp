#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace setchain::net {

namespace {

/// Write the whole buffer (handles partial sends). False on any error.
bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t w = ::send(fd, data, len, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    len -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Wait until `fd` is readable (or timeout/stop). Returns -1 on poll error,
/// 0 on timeout, 1 on readable/hup.
int wait_readable(int fd, int timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  const int r = ::poll(&p, 1, timeout_ms);
  if (r < 0) return errno == EINTR ? 0 : -1;
  return r;
}

constexpr int kStopCheckMs = 200;

}  // namespace

bool parse_host_port(const std::string& s, std::string& host, std::uint16_t& port) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) return false;
  host = s.substr(0, colon);
  const std::string port_str = s.substr(colon + 1);
  char* end = nullptr;
  const long p = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || p <= 0 || p > 65535) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

TcpTransport::TcpTransport(TcpConfig cfg) : cfg_(std::move(cfg)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpTransport: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.listen_port);
  if (::inet_pton(AF_INET, cfg_.listen_host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: bad listen host " + cfg_.listen_host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: bind/listen failed on " +
                             cfg_.listen_host + ":" + std::to_string(cfg_.listen_port));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  listen_port_ = ntohs(bound.sin_port);
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (std::uint32_t j = 0; j < cfg_.self && j < cfg_.peers.size(); ++j) {
    if (cfg_.peers[j].empty()) continue;
    dialer_threads_.emplace_back([this, j] { dial_loop(j); });
  }
}

void TcpTransport::stop() {
  if (stop_.exchange(true)) return;
  // Wake everyone: listener via shutdown, connections via shutdown, writers
  // and poll() callers via their condition variables.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    for (auto& [id, conn] : conns_) {
      std::lock_guard<std::mutex> cl(conn->m);
      conn->closed = true;
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
      conn->cv.notify_all();
    }
  }
  inbox_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& t : dialer_threads_) {
    if (t.joinable()) t.join();
  }
  std::vector<Session> sessions;
  {
    std::lock_guard<std::mutex> lk(sessions_m_);
    sessions.swap(session_threads_);
  }
  for (auto& s : sessions) {
    if (s.thread.joinable()) s.thread.join();
  }
  {
    // Every owner thread is joined: dropping the map releases the last
    // references and Conn::~Conn closes the sockets.
    std::lock_guard<std::mutex> lk(conns_m_);
    conns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool TcpTransport::send_hello(int fd) {
  wire::Hello h;
  h.role = wire::kRoleServer;
  h.sender = cfg_.self;
  h.cluster = cfg_.cluster;
  const codec::Bytes frame =
      wire::encode_frame(wire::MsgType::kHello, wire::encode_hello(h));
  return write_all(fd, frame.data(), frame.size());
}

void TcpTransport::accept_loop() {
  while (!stop_.load()) {
    const int r = wait_readable(listen_fd_, kStopCheckMs);
    if (r < 0) return;
    if (r == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load()) return;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lk(sessions_m_);
    // Reap finished sessions first: bounded by live connections, not by
    // the lifetime total of client reconnects.
    for (auto it = session_threads_.begin(); it != session_threads_.end();) {
      if (it->done->load()) {
        it->thread.join();
        it = session_threads_.erase(it);
      } else {
        ++it;
      }
    }
    session_threads_.push_back({std::thread([this, conn, done] {
                                  read_loop(conn, /*inbound=*/true);
                                  done->store(true);
                                }),
                                done});
  }
}

void TcpTransport::dial_loop(std::uint32_t peer) {
  std::string host;
  std::uint16_t port = 0;
  if (!parse_host_port(cfg_.peers[peer], host, port)) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return;

  int backoff_ms = 50;
  bool connected_before = false;
  while (!stop_.load()) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        !send_hello(fd)) {
      ::close(fd);
      // Capped exponential backoff: peers come up in any order, and a
      // crashed peer must not be hammered.
      for (int waited = 0; waited < backoff_ms && !stop_.load(); waited += 10) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      backoff_ms = std::min(backoff_ms * 2, 2000);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (connected_before) ++reconnects_;
    connected_before = true;
    backoff_ms = 50;

    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->endpoint = peer;
    register_conn(peer, conn);
    read_loop(conn, /*inbound=*/false);  // returns on error/EOF/stop
    unregister_conn(peer, conn);
    close_conn(conn);
  }
}

void TcpTransport::read_loop(const ConnPtr& conn, bool inbound) {
  wire::FrameReader reader;
  bool identified = !inbound;  // outbound conns: we know who we dialed
  std::uint8_t buf[64 * 1024];

  while (!stop_.load()) {
    const int r = wait_readable(conn->fd, kStopCheckMs);
    if (r < 0) break;
    if (r == 0) continue;
    const ssize_t got = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (got == 0) break;  // EOF
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bytes_received_ += static_cast<std::uint64_t>(got);
    reader.feed(codec::ByteView(buf, static_cast<std::size_t>(got)));

    wire::Frame f;
    wire::DecodeStatus s;
    bool fatal = false;
    while ((s = reader.next(f)) == wire::DecodeStatus::kOk) {
      if (!identified) {
        // First frame of an inbound connection must be a Hello that names
        // this cluster; anything else is a stranger and the stream dies.
        std::optional<wire::Hello> hello;
        if (f.type == wire::MsgType::kHello) hello = wire::parse_hello(f.payload);
        if (!hello || hello->cluster != cfg_.cluster ||
            (hello->role == wire::kRoleServer && hello->sender >= cfg_.n)) {
          ++decode_errors_;
          fatal = true;
          break;
        }
        conn->endpoint = hello->role == wire::kRoleServer
                             ? static_cast<EndpointId>(hello->sender)
                             : next_client_++;
        register_conn(conn->endpoint, conn);
        identified = true;
        continue;
      }
      if (f.type == wire::MsgType::kHello) continue;  // ignore re-hellos
      ++frames_received_;
      {
        std::lock_guard<std::mutex> lk(inbox_m_);
        inbox_.emplace_back(conn->endpoint, std::move(f));
      }
      inbox_cv_.notify_one();
    }
    if (fatal) break;
    if (s != wire::DecodeStatus::kNeedMore) {
      ++decode_errors_;
      break;  // framing violation: the stream can never resync
    }
  }
  if (inbound) {
    if (identified) unregister_conn(conn->endpoint, conn);
    close_conn(conn);
  }
  // Outbound: dial_loop owns unregister/close so it can reconnect.
}

void TcpTransport::writer_loop(const ConnPtr& conn) {
  for (;;) {
    codec::Bytes next;
    {
      std::unique_lock<std::mutex> lk(conn->m);
      conn->cv.wait_for(lk, std::chrono::milliseconds(kStopCheckMs), [&] {
        return conn->closed || !conn->sendq.empty();
      });
      if (conn->sendq.empty()) {
        if (conn->closed || stop_.load()) return;
        continue;
      }
      next = std::move(conn->sendq.front());
      conn->sendq.pop_front();
    }
    if (!write_all(conn->fd, next.data(), next.size())) {
      // Peer is gone: the reader will notice too; drain nothing further.
      std::lock_guard<std::mutex> lk(conn->m);
      conn->closed = true;
      return;
    }
    frames_sent_ += 1;
    bytes_sent_ += next.size();
  }
}

TcpTransport::Conn::~Conn() {
  // Last reference gone: no thread can touch this connection anymore.
  if (writer.joinable()) writer.join();
  if (fd >= 0) ::close(fd);
}

void TcpTransport::register_conn(EndpointId endpoint, const ConnPtr& conn) {
  conn->writer = std::thread([this, conn] { writer_loop(conn); });
  ConnPtr replaced;
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    auto& slot = conns_[endpoint];
    replaced = slot;
    slot = conn;
  }
  // A reconnect replaces the old (dead) connection for this endpoint. Only
  // WAKE the old threads here — its owner thread joins the writer, and the
  // fd closes when the last reference drops (Conn::~Conn), so the old
  // reader can never race a recycled fd number.
  if (replaced) retire_conn(replaced);
}

void TcpTransport::unregister_conn(EndpointId endpoint, const ConnPtr& conn) {
  std::lock_guard<std::mutex> lk(conns_m_);
  const auto it = conns_.find(endpoint);
  if (it != conns_.end() && it->second == conn) conns_.erase(it);
}

void TcpTransport::retire_conn(const ConnPtr& conn) {
  std::lock_guard<std::mutex> lk(conn->m);
  if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  conn->closed = true;
  conn->cv.notify_all();
}

void TcpTransport::close_conn(const ConnPtr& conn) {
  retire_conn(conn);
  if (conn->writer.joinable()) conn->writer.join();
}

bool TcpTransport::send(EndpointId to, wire::MsgType type, codec::ByteView payload) {
  ConnPtr conn;
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    const auto it = conns_.find(to);
    if (it != conns_.end()) conn = it->second;
  }
  if (!conn) {
    ++send_drops_;
    return false;
  }
  codec::Bytes frame = wire::encode_frame(type, payload);
  if (frame.empty()) {
    ++send_drops_;
    return false;
  }
  {
    std::lock_guard<std::mutex> lk(conn->m);
    if (conn->closed || conn->sendq.size() >= cfg_.send_queue_limit) {
      ++send_drops_;
      return false;
    }
    conn->sendq.push_back(std::move(frame));
  }
  conn->cv.notify_one();
  return true;
}

std::size_t TcpTransport::poll(std::chrono::milliseconds max_wait) {
  std::deque<std::pair<EndpointId, wire::Frame>> batch;
  {
    std::unique_lock<std::mutex> lk(inbox_m_);
    if (inbox_.empty()) {
      inbox_cv_.wait_for(lk, max_wait,
                         [&] { return !inbox_.empty() || stop_.load(); });
    }
    batch.swap(inbox_);
  }
  for (auto& [from, frame] : batch) {
    if (handler_) handler_(from, std::move(frame));
  }
  return batch.size();
}

TcpTransport::Counters TcpTransport::counters() const {
  Counters c;
  c.frames_sent = frames_sent_;
  c.bytes_sent = bytes_sent_;
  c.frames_received = frames_received_;
  c.bytes_received = bytes_received_;
  c.send_drops = send_drops_;
  c.decode_errors = decode_errors_;
  c.reconnects = reconnects_;
  return c;
}

}  // namespace setchain::net
