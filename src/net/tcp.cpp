#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/buffer_pool.hpp"

namespace setchain::net {

namespace {

/// Frames coalesced into one sendmsg() call while flushing a send queue.
constexpr std::size_t kMaxIov = 16;

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

bool parse_host_port(const std::string& s, std::string& host, std::uint16_t& port) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) return false;
  host = s.substr(0, colon);
  const std::string port_str = s.substr(colon + 1);
  char* end = nullptr;
  const long p = std::strtol(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || p <= 0 || p > 65535) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

TcpTransport::TcpTransport(TcpConfig cfg) : cfg_(std::move(cfg)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpTransport: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.listen_port);
  if (::inet_pton(AF_INET, cfg_.listen_host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: bad listen host " + cfg_.listen_host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      // Deep accept backlog: a load-generator fleet dials thousands of
      // client sessions in bursts; a shallow backlog turns those into
      // spurious connection resets before the event loop can accept.
      ::listen(listen_fd_, 1024) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TcpTransport: bind/listen failed on " +
                             cfg_.listen_host + ":" + std::to_string(cfg_.listen_port));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  listen_port_ = ntohs(bound.sin_port);
}

TcpTransport::~TcpTransport() { stop(); }

TcpTransport::Conn::~Conn() {
  // Backstop only: the loop (or stop()) closes reaped connections itself.
  if (fd >= 0) ::close(fd);
}

void TcpTransport::start() {
  if (started_) return;
  started_ = true;
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    throw std::runtime_error("TcpTransport: epoll/eventfd setup failed");
  }
  set_nonblocking(listen_fd_);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  for (std::uint32_t j = 0; j < cfg_.self && j < cfg_.peers.size(); ++j) {
    if (cfg_.peers[j].empty()) continue;
    DialState d;
    d.peer = j;
    d.addr_ok = parse_host_port(cfg_.peers[j], d.host, d.port);
    d.next_attempt = std::chrono::steady_clock::now();
    dials_.push_back(std::move(d));
  }
  loop_thread_ = std::thread([this] { loop_main(); });
}

void TcpTransport::stop() {
  if (stop_.exchange(true)) return;
  wake_loop();
  inbox_cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop is gone: single-threaded teardown from here.
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    conns_.clear();
  }
  auto& pool = util::BufferPool::global();
  for (auto& [fd, conn] : by_fd_) {
    std::lock_guard<std::mutex> lk(conn->m);
    conn->closed = true;
    for (auto& b : conn->sendq) pool.release(std::move(b));
    conn->sendq.clear();
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  by_fd_.clear();
  dials_.clear();
  reap_.clear();
  {
    std::lock_guard<std::mutex> lk(dirty_m_);
    dirty_.clear();
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpTransport::wake_loop() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t w = ::write(wake_fd_, &one, sizeof(one));
}

int TcpTransport::loop_timeout_ms() const {
  // Only dial deadlines need a timer; everything else wakes the loop via
  // wake_fd_ (sends, stop) or socket readiness.
  auto next = std::chrono::steady_clock::time_point::max();
  for (const auto& d : dials_) {
    if (!d.addr_ok || d.conn) continue;
    next = std::min(next, d.next_attempt);
  }
  if (next == std::chrono::steady_clock::time_point::max()) return 1000;
  const auto now = std::chrono::steady_clock::now();
  if (next <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(next - now).count() + 1;
  return static_cast<int>(std::min<long long>(ms, 1000));
}

void TcpTransport::loop_main() {
  epoll_event events[64];
  while (!stop_.load()) {
    const auto now = std::chrono::steady_clock::now();
    for (auto& d : dials_) {
      if (!d.addr_ok || d.conn || now < d.next_attempt) continue;
      attempt_dial(d);
    }
    reap_dead();  // a dial can replace (and retire) a stale connection

    const int n = ::epoll_wait(epoll_fd_, events, 64, loop_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        handle_listen_ready();
        continue;
      }
      if (fd == wake_fd_) {
        handle_wake();
        continue;
      }
      const auto it = by_fd_.find(fd);
      if (it == by_fd_.end()) continue;
      handle_conn_event(it->second, events[i].events);
    }
    reap_dead();
  }
}

void TcpTransport::handle_listen_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient accept failure
    }
    set_nodelay(fd);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      conn->fd = -1;
      continue;
    }
    by_fd_[fd] = conn;  // unidentified until its first frame (a Hello)
  }
}

void TcpTransport::attempt_dial(DialState& d) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(d.port);
  if (::inet_pton(AF_INET, d.host.c_str(), &addr.sin_addr) != 1) {
    d.addr_ok = false;  // unresolvable forever; stop trying (old behavior)
    return;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    fail_dial(d);
    return;
  }
  const int r = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (r != 0 && errno != EINPROGRESS) {
    ::close(fd);
    fail_dial(d);
    return;
  }
  auto conn = std::make_shared<Conn>();
  conn->fd = fd;
  conn->outbound = true;
  conn->dial_peer = d.peer;
  conn->connecting = (r != 0);
  d.conn = conn;
  by_fd_[fd] = conn;
  epoll_event ev{};
  ev.events = conn->connecting ? EPOLLOUT : EPOLLIN;
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  if (!conn->connecting) finish_connect(d);
}

void TcpTransport::fail_dial(DialState& d) {
  // Capped exponential backoff: peers come up in any order, and a crashed
  // peer must not be hammered.
  d.next_attempt =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(d.backoff_ms);
  d.backoff_ms = std::min(d.backoff_ms * 2, 2000);
}

void TcpTransport::finish_connect(DialState& d) {
  const ConnPtr conn = d.conn;
  conn->connecting = false;
  set_nodelay(conn->fd);
  if (d.connected_before) ++reconnects_;
  d.connected_before = true;
  d.backoff_ms = 50;
  conn->endpoint = d.peer;
  conn->identified = true;  // we know who we dialed
  update_interest(conn);
  register_conn(d.peer, conn);
  queue_hello(conn);
  flush_conn(conn);
}

void TcpTransport::queue_hello(const ConnPtr& conn) {
  wire::Hello h;
  h.role = wire::kRoleServer;
  h.sender = cfg_.self;
  h.cluster = cfg_.cluster;
  codec::Bytes frame = util::BufferPool::global().acquire(64);
  wire::encode_frame_into(frame, wire::MsgType::kHello, wire::encode_hello(h));
  std::lock_guard<std::mutex> lk(conn->m);
  conn->sendq.push_front(std::move(frame));  // before anything already queued
}

void TcpTransport::update_interest(const ConnPtr& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN | (conn->want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void TcpTransport::handle_conn_event(const ConnPtr& conn, std::uint32_t ev) {
  if (conn->dead) return;
  if (conn->connecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      err = errno != 0 ? errno : EIO;
    }
    if (err == 0 && (ev & (EPOLLERR | EPOLLHUP)) != 0) err = EIO;
    if (err != 0) {
      mark_dead(conn);  // reap applies the connect backoff
      return;
    }
    for (auto& d : dials_) {
      if (d.conn == conn) {
        finish_connect(d);
        break;
      }
    }
    return;
  }
  if ((ev & EPOLLIN) != 0) handle_readable(conn);
  if (!conn->dead && (ev & EPOLLOUT) != 0) flush_conn(conn);
  if (!conn->dead && (ev & (EPOLLERR | EPOLLHUP)) != 0) mark_dead(conn);
}

void TcpTransport::handle_readable(const ConnPtr& conn) {
  std::vector<std::pair<EndpointId, wire::Frame>> pending;
  std::uint8_t buf[64 * 1024];
  bool dead = false;
  for (;;) {
    const ssize_t got = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (got > 0) {
      bytes_received_ += static_cast<std::uint64_t>(got);
      if (!process_read(conn, codec::ByteView(buf, static_cast<std::size_t>(got)),
                        pending)) {
        dead = true;
        break;
      }
      continue;
    }
    if (got == 0) {
      dead = true;  // EOF
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    dead = true;
    break;
  }
  deliver(std::move(pending));  // frames decoded before any failure still count
  if (dead) mark_dead(conn);
}

bool TcpTransport::process_read(const ConnPtr& conn, codec::ByteView data,
                                std::vector<std::pair<EndpointId, wire::Frame>>& out) {
  if (conn->reader.failed()) return false;
  if (conn->reader.buffered() == 0) {
    // Fast path: frames are parsed straight out of the receive buffer; only
    // a trailing partial frame is copied into the reassembly buffer.
    std::size_t off = 0;
    for (;;) {
      wire::FrameView v;
      std::size_t consumed = 0;
      const auto s = wire::decode_frame_view(data.subspan(off), v, consumed);
      if (s == wire::DecodeStatus::kOk) {
        if (!handle_frame_view(conn, v, out)) return false;
        off += consumed;
        continue;
      }
      if (s == wire::DecodeStatus::kNeedMore) {
        if (off < data.size()) conn->reader.feed(data.subspan(off));
        return true;
      }
      ++decode_errors_;  // framing violation: the stream can never resync
      return false;
    }
  }
  conn->reader.feed(data);
  wire::FrameView v;
  wire::DecodeStatus s;
  while ((s = conn->reader.next_view(v)) == wire::DecodeStatus::kOk) {
    if (!handle_frame_view(conn, v, out)) return false;
  }
  if (s != wire::DecodeStatus::kNeedMore) {
    ++decode_errors_;
    return false;
  }
  return true;
}

bool TcpTransport::handle_frame_view(
    const ConnPtr& conn, const wire::FrameView& v,
    std::vector<std::pair<EndpointId, wire::Frame>>& out) {
  if (!conn->identified) {
    // First frame of an inbound connection must be a Hello that names this
    // cluster; anything else is a stranger and the stream dies.
    std::optional<wire::Hello> hello;
    if (v.type == wire::MsgType::kHello) hello = wire::parse_hello(v.payload);
    if (!hello || hello->cluster != cfg_.cluster ||
        (hello->role == wire::kRoleServer && hello->sender >= cfg_.n)) {
      ++decode_errors_;
      return false;
    }
    conn->endpoint = hello->role == wire::kRoleServer
                         ? static_cast<EndpointId>(hello->sender)
                         : next_client_++;
    register_conn(conn->endpoint, conn);
    conn->identified = true;
    return true;
  }
  if (v.type == wire::MsgType::kHello) return true;  // ignore re-hellos
  ++frames_received_;
  wire::Frame f;
  f.type = v.type;
  f.payload = util::BufferPool::global().acquire(v.payload.size());
  f.payload.assign(v.payload.begin(), v.payload.end());
  out.emplace_back(conn->endpoint, std::move(f));
  return true;
}

void TcpTransport::deliver(std::vector<std::pair<EndpointId, wire::Frame>>&& frames) {
  if (frames.empty()) return;
  {
    std::lock_guard<std::mutex> lk(inbox_m_);
    for (auto& f : frames) inbox_.push_back(std::move(f));
  }
  inbox_cv_.notify_one();
}

void TcpTransport::flush_conn(const ConnPtr& conn) {
  if (conn->dead || conn->connecting) return;
  auto& pool = util::BufferPool::global();
  std::lock_guard<std::mutex> lk(conn->m);
  conn->flush_queued = false;
  while (!conn->sendq.empty()) {
    iovec iov[kMaxIov];
    std::size_t n = 0;
    for (auto it = conn->sendq.begin(); it != conn->sendq.end() && n < kMaxIov;
         ++it, ++n) {
      const std::size_t off = (n == 0) ? conn->front_off : 0;
      iov[n].iov_base = it->data() + off;
      iov[n].iov_len = it->size() - off;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = n;
    const ssize_t w = ::sendmsg(conn->fd, &mh, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel buffer full: hand off to EPOLLOUT and get out of the way.
        if (!conn->want_write) {
          conn->want_write = true;
          update_interest(conn);
        }
        return;
      }
      mark_dead(conn);  // peer is gone; reap releases the queue
      return;
    }
    bytes_sent_ += static_cast<std::uint64_t>(w);
    std::size_t left = static_cast<std::size_t>(w);
    while (left > 0) {
      codec::Bytes& front = conn->sendq.front();
      const std::size_t remain = front.size() - conn->front_off;
      if (left >= remain) {
        left -= remain;
        ++frames_sent_;
        pool.release(std::move(front));
        conn->sendq.pop_front();
        conn->front_off = 0;
      } else {
        conn->front_off += left;
        left = 0;
      }
    }
  }
  if (conn->want_write) {
    conn->want_write = false;
    update_interest(conn);
  }
}

void TcpTransport::mark_dead(const ConnPtr& conn) {
  if (conn->dead) return;
  conn->dead = true;
  reap_.push_back(conn);
}

void TcpTransport::reap_dead() {
  if (reap_.empty()) return;
  std::vector<ConnPtr> reap;
  reap.swap(reap_);
  auto& pool = util::BufferPool::global();
  const auto now = std::chrono::steady_clock::now();
  for (const auto& conn : reap) {
    if (conn->fd >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
      by_fd_.erase(conn->fd);
    }
    {
      std::lock_guard<std::mutex> lk(conn->m);
      conn->closed = true;  // send() refuses from here on
      for (auto& b : conn->sendq) pool.release(std::move(b));
      conn->sendq.clear();
      conn->front_off = 0;
    }
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
    if (conn->identified) unregister_conn(conn->endpoint, conn);
    if (!conn->outbound) continue;
    for (auto& d : dials_) {
      if (d.peer != conn->dial_peer || d.conn != conn) continue;
      d.conn.reset();
      if (conn->connecting) {
        fail_dial(d);  // the attempt failed: back off
      } else {
        d.backoff_ms = 50;  // an established link dropped: redial now
        d.next_attempt = now;
      }
    }
  }
}

void TcpTransport::register_conn(EndpointId endpoint, const ConnPtr& conn) {
  ConnPtr replaced;
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    auto& slot = conns_[endpoint];
    replaced = slot;
    slot = conn;
  }
  // A reconnect replaces the old (dead) connection for this endpoint; the
  // replaced one is reaped at the end of this loop iteration.
  if (replaced && replaced != conn) mark_dead(replaced);
}

void TcpTransport::unregister_conn(EndpointId endpoint, const ConnPtr& conn) {
  std::lock_guard<std::mutex> lk(conns_m_);
  const auto it = conns_.find(endpoint);
  if (it != conns_.end() && it->second == conn) conns_.erase(it);
}

void TcpTransport::handle_wake() {
  std::uint64_t tmp = 0;
  while (::read(wake_fd_, &tmp, sizeof(tmp)) > 0) {
  }
  std::vector<ConnPtr> dirty;
  {
    std::lock_guard<std::mutex> lk(dirty_m_);
    dirty.swap(dirty_);
  }
  for (const auto& conn : dirty) flush_conn(conn);
}

void TcpTransport::count_drop(EndpointId to) {
  ++send_drops_;
  if (is_client_endpoint(to)) {
    ++send_drops_client_;
  } else {
    ++send_drops_peer_;
  }
}

bool TcpTransport::send(EndpointId to, wire::MsgType type, codec::ByteView payload) {
  ConnPtr conn;
  {
    std::lock_guard<std::mutex> lk(conns_m_);
    const auto it = conns_.find(to);
    if (it != conns_.end()) conn = it->second;
  }
  if (!conn) {
    count_drop(to);
    return false;
  }
  auto& pool = util::BufferPool::global();
  codec::Bytes frame = pool.acquire(wire::kHeaderSize + payload.size());
  if (!wire::encode_frame_into(frame, type, payload)) {
    pool.release(std::move(frame));
    count_drop(to);
    return false;
  }
  bool queued = false;
  bool need_wake = false;
  {
    std::lock_guard<std::mutex> lk(conn->m);
    if (!conn->closed && conn->sendq.size() < cfg_.send_queue_limit) {
      conn->sendq.push_back(std::move(frame));
      queued = true;
      const std::uint64_t depth = conn->sendq.size();
      auto peak = send_queue_peak_.load(std::memory_order_relaxed);
      while (depth > peak && !send_queue_peak_.compare_exchange_weak(
                                 peak, depth, std::memory_order_relaxed)) {
      }
      if (!conn->flush_queued) {
        conn->flush_queued = true;
        need_wake = true;
      }
    }
  }
  if (!queued) {
    pool.release(std::move(frame));
    count_drop(to);
    return false;
  }
  if (need_wake) {
    {
      std::lock_guard<std::mutex> lk(dirty_m_);
      dirty_.push_back(conn);
    }
    wake_loop();
  }
  return true;
}

std::size_t TcpTransport::poll(std::chrono::milliseconds max_wait) {
  std::deque<std::pair<EndpointId, wire::Frame>> batch;
  {
    std::unique_lock<std::mutex> lk(inbox_m_);
    if (inbox_.empty()) {
      inbox_cv_.wait_for(lk, max_wait,
                         [&] { return !inbox_.empty() || stop_.load(); });
    }
    batch.swap(inbox_);
  }
  auto& pool = util::BufferPool::global();
  for (auto& [from, frame] : batch) {
    if (handler_) handler_(from, std::move(frame));
    // The handler may steal the payload (move); recycle only what it left
    // behind. A moved-from buffer has no capacity and is skipped.
    if (frame.payload.capacity() != 0) pool.release(std::move(frame.payload));
  }
  return batch.size();
}

TcpTransport::Counters TcpTransport::counters() const {
  Counters c;
  c.frames_sent = frames_sent_;
  c.bytes_sent = bytes_sent_;
  c.frames_received = frames_received_;
  c.bytes_received = bytes_received_;
  c.send_drops = send_drops_;
  c.send_drops_peer = send_drops_peer_;
  c.send_drops_client = send_drops_client_;
  c.decode_errors = decode_errors_;
  c.reconnects = reconnects_;
  c.send_queue_peak = send_queue_peak_;
  return c;
}

}  // namespace setchain::net
