#include "net/node_host.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace setchain::net {

namespace {

std::unique_ptr<IWireLedger> make_ledger(const NodeHostConfig& cfg,
                                         sim::Simulation& sim,
                                         ITransport& transport,
                                         const crypto::Pki* pki,
                                         std::uint64_t cluster) {
  if (cfg.ledger_mode == runner::LedgerMode::kConsensus) {
    ConsensusLedgerConfig lc;
    lc.n = cfg.n;
    lc.f = cfg.f;
    lc.self = cfg.id;
    lc.block_interval = cfg.block_interval;
    lc.max_block_bytes = cfg.max_block_bytes;
    lc.timeout_propose = cfg.timeout_propose;
    lc.retry_interval = cfg.retry_interval;
    lc.sync_interval = cfg.sync_interval;
    lc.pki = pki;
    lc.cluster = cluster;
    if (cfg.byz_consensus) {
      lc.byz.equivocate_proposals = true;
      lc.byz.double_vote = true;
      lc.byz.forge_votes = true;
      lc.byz.junk_sync = true;
    }
    return std::make_unique<ConsensusLedger>(lc, sim, transport);
  }
  ReplicatedLedgerConfig lc;
  lc.n = cfg.n;
  lc.self = cfg.id;
  lc.block_interval = cfg.block_interval;
  lc.max_block_bytes = cfg.max_block_bytes;
  lc.sync_interval = cfg.sync_interval;
  lc.resubmit_interval = cfg.resubmit_interval;
  return std::make_unique<ReplicatedLedger>(lc, sim, transport);
}

}  // namespace

NodeHost::NodeHost(NodeHostConfig cfg, sim::Simulation& sim, ITransport& transport,
                   storage::Storage* storage)
    : cfg_(cfg),
      sim_(sim),
      transport_(transport),
      storage_(storage),
      cluster_(cluster_id_of(cfg)),
      pki_(cfg.seed),
      cpus_(cfg.n),
      ledger_(make_ledger(cfg, sim, transport, &pki_, cluster_)) {
  // Shared deterministic PKI: servers 0..n-1 plus the advertised client id
  // range. Every process of the cluster derives the same keys from the seed.
  for (crypto::ProcessId p = 0; p < cfg_.n + cfg_.client_slots; ++p) {
    pki_.register_process(p);
  }

  params_.n = cfg_.n;
  params_.f = cfg_.f;
  params_.collector_limit = cfg_.collector_limit;
  params_.collector_timeout = cfg_.collector_timeout;
  params_.fidelity = core::Fidelity::kFull;  // real bytes end to end
  params_.validate = true;
  params_.hash_reversal = true;  // the transport IS the reversal service
  params_.lean_state = false;    // snapshots serve real id lists
  params_.request_batch_timeout = cfg_.request_batch_timeout;
  params_.request_batch_retry = cfg_.request_batch_retry;

  core::ServerContext ctx;
  ctx.sim = &sim_;
  ctx.net = nullptr;  // no pointer network: frames or nothing
  ctx.batch_exchange = this;
  ctx.ledger = ledger_.get();
  ctx.pki = &pki_;
  ctx.cpus = &cpus_;
  ctx.params = &params_;

  switch (cfg_.algorithm) {
    case runner::Algorithm::kVanilla: {
      auto s = std::make_unique<core::VanillaServer>(ctx, cfg_.id);
      ledger_->on_new_block(
          cfg_.id, [p = s.get()](const ledger::Block& b) { p->on_new_block(b); });
      server_ = std::move(s);
      break;
    }
    case runner::Algorithm::kCompresschain: {
      auto s = std::make_unique<core::CompresschainServer>(ctx, cfg_.id);
      ledger_->on_new_block(
          cfg_.id, [p = s.get()](const ledger::Block& b) { p->on_new_block(b); });
      server_ = std::move(s);
      break;
    }
    case runner::Algorithm::kHashchain: {
      auto s = std::make_unique<core::HashchainServer>(ctx, cfg_.id);
      hashchain_ = s.get();
      ledger_->on_new_block(
          cfg_.id, [p = s.get()](const ledger::Block& b) { p->on_new_block(b); });
      server_ = std::move(s);
      break;
    }
  }
}

namespace {

/// Snapshot body framing (the payload Storage wraps in its checksummed
/// manifest): version, algorithm + ledger-mode sanity bytes, then the two
/// length-prefixed state sections. docs/STORAGE_FORMAT.md is normative.
constexpr std::uint8_t kSnapshotBodyVersion = 1;

}  // namespace

bool NodeHost::recover(std::string* error) {
  const auto fail = [error](std::string why) {
    if (error != nullptr) *error = std::move(why);
    return false;
  };
  if (storage_ == nullptr) return true;

  // 1. Newest valid snapshot -> ledger + server state. A fresh directory
  // has none; the node recovers from height 0.
  if (const auto body = storage_->load_snapshot()) {
    codec::Reader r(*body);
    const auto version = r.u8();
    if (!version || *version != kSnapshotBodyVersion) {
      return fail("snapshot body: unsupported version");
    }
    const auto alg = r.u8();
    const auto mode = r.u8();
    if (!alg || *alg != static_cast<std::uint8_t>(cfg_.algorithm) || !mode ||
        *mode != static_cast<std::uint8_t>(cfg_.ledger_mode)) {
      return fail("snapshot body: algorithm/ledger-mode mismatch with config");
    }
    const auto ledger_state = r.lp_bytes();
    const auto server_state = r.lp_bytes();
    if (!ledger_state || !server_state) {
      return fail("snapshot body: truncated state sections");
    }
    codec::Reader lr(*ledger_state);
    if (!ledger_->restore_state(lr)) {
      return fail("snapshot body: ledger state did not restore");
    }
    codec::Reader sr(*server_state);
    if (!server_->restore_state(sr)) {
      return fail("snapshot body: server state did not restore");
    }
  }

  // 2. WAL gap -> the normal apply paths. Block records advance the ledger
  // (firing the application callback exactly like a live delivery); batch
  // records refill the Hashchain batch store so the deferred continuations
  // those blocks schedule find their payloads locally instead of fetching.
  bool replay_ok = true;
  storage_->replay([&](storage::WalRecordKind kind, std::uint64_t height,
                       codec::ByteView payload) {
    switch (kind) {
      case storage::WalRecordKind::kBlock:
        if (!ledger_->restore_block(payload)) replay_ok = false;
        break;
      case storage::WalRecordKind::kBatch: {
        (void)height;
        if (hashchain_ == nullptr || payload.size() <= sizeof(core::EpochHash)) break;
        core::EpochHash h;
        std::copy_n(payload.begin(), h.size(), h.begin());
        const auto bytes = payload.subspan(h.size());
        (void)hashchain_->restore_batch(h, codec::Bytes(bytes.begin(), bytes.end()));
        break;
      }
    }
  });
  if (!replay_ok) {
    return fail("WAL replay: a block record did not re-apply (height gap "
                "or corrupt payload past the verified prefix)");
  }

  // 3. Drain the deferred work the replayed blocks scheduled (process_block
  // continuations, consolidation) so the server catches up to the ledger
  // before the transport goes live. Bounded: a batch lost to a torn WAL
  // tail would retry its (dead, transport-down) fetch forever here — break
  // out and let the live fetch path heal it after start().
  std::uint64_t guard = 0;
  while (server_->applied_height() < ledger_->height()) {
    const sim::Time next = sim_.next_event_at();
    if (next == std::numeric_limits<sim::Time>::max()) break;
    if (++guard > 200'000) break;
    sim_.run_until(next);
  }

  // 4. Only NOW arm the durability hooks: everything replayed above is
  // already on disk, and re-logging it would double the WAL every restart.
  install_durability_hooks();

  // 5. Nudge head-of-line consolidation in case the drain left a fully
  // available epoch pending (e.g. the guard tripped or timers interleaved).
  if (hashchain_ != nullptr) hashchain_->kick_recovery();

  last_snapshot_epoch_ = server_->epoch();
  return true;
}

void NodeHost::install_durability_hooks() {
  if (storage_ == nullptr || hooks_installed_) return;
  hooks_installed_ = true;
  ledger_->set_commit_hook([this](std::uint64_t height, codec::ByteView raw) {
    storage_->append_block(height, raw);
  });
  if (hashchain_ != nullptr) {
    // Batch record payload: 64-byte batch hash ‖ serialized batch. Stamped
    // with the CURRENT ledger height — replay keeps batch records at the
    // snapshot height (they may postdate it) and re-putting is idempotent.
    hashchain_->set_store_on_put([this](const core::EpochHash& h,
                                        const core::Batch& batch,
                                        const codec::Bytes& serialized) {
      codec::Writer w;
      w.bytes(codec::ByteView(h.data(), h.size()));
      if (!serialized.empty()) {
        w.bytes(serialized);
      } else {
        w.bytes(core::serialize_batch(batch));
      }
      storage_->append_batch(ledger_->height(), w.take());
    });
  }
}

void NodeHost::start() {
  // Safety net for hosts that skip recover() (in-memory tests attach no
  // storage; durable callers are expected to recover first).
  install_durability_hooks();
  transport_.set_handler(
      [this](EndpointId from, wire::Frame&& f) { on_frame(from, std::move(f)); });
  ledger_->start();
  if (storage_ != nullptr && cfg_.snapshot_epochs > 0) {
    sim_.schedule_in(cfg_.sync_interval, [this] { storage_tick(); });
  }
}

void NodeHost::storage_tick() {
  // Snapshot only a block-consistent cut: the server has applied every
  // committed block, so (ledger state, server state) at this height is
  // exactly what a peer replaying those blocks would compute.
  if (server_->epoch() >= last_snapshot_epoch_ + cfg_.snapshot_epochs &&
      server_->applied_height() == ledger_->height() &&
      ledger_->height() > storage_->last_snapshot_height()) {
    write_snapshot_now();
  }
  sim_.schedule_in(cfg_.sync_interval, [this] { storage_tick(); });
}

void NodeHost::write_snapshot_now() {
  codec::Writer body;
  body.u8(kSnapshotBodyVersion)
      .u8(static_cast<std::uint8_t>(cfg_.algorithm))
      .u8(static_cast<std::uint8_t>(cfg_.ledger_mode));
  codec::Writer lw;
  ledger_->serialize_state(lw);
  body.lp_bytes(lw.buffer());
  codec::Writer sw;
  server_->serialize_state(sw);
  body.lp_bytes(sw.buffer());
  if (storage_->write_snapshot(ledger_->height(), body.buffer())) {
    last_snapshot_epoch_ = server_->epoch();
  }
}

void NodeHost::on_frame(EndpointId from, wire::Frame&& frame) {
  using wire::MsgType;
  switch (frame.type) {
    // ---- server <-> server: ledger replication ----
    case MsgType::kTxSubmit: {
      if (is_client_endpoint(from)) break;  // clients use kAddRequest
      if (auto m = wire::parse_tx_submit(frame.payload)) {
        ledger_->on_tx_submit(from, std::move(*m));
        return;
      }
      break;
    }
    case MsgType::kBlock: {
      if (is_client_endpoint(from)) break;
      if (ledger_->on_block_frame(frame.payload)) return;
      break;
    }
    case MsgType::kBlockSyncRequest: {
      if (is_client_endpoint(from)) break;
      if (auto m = wire::parse_block_sync_request(frame.payload)) {
        ledger_->on_sync_request(from, *m);
        return;
      }
      break;
    }
    case MsgType::kBlockSyncResponse: {
      if (is_client_endpoint(from)) break;
      if (auto m = wire::parse_block_sync_response(frame.payload)) {
        ledger_->on_sync_response(*m);
        return;
      }
      break;
    }

    // ---- server <-> server: consensus-mode ordering. The sequencer-mode
    // ledger rejects these (its on_* defaults return false), so they count
    // as bad frames outside consensus deployments. ----
    case MsgType::kProposal: {
      if (is_client_endpoint(from)) break;
      if (ledger_->on_proposal(from, frame.payload)) return;
      break;
    }
    case MsgType::kPrevote: {
      if (is_client_endpoint(from)) break;
      if (const auto m = wire::parse_vote(frame.payload)) {
        if (ledger_->on_prevote(from, *m)) return;
      }
      break;
    }
    case MsgType::kPrecommit: {
      if (is_client_endpoint(from)) break;
      if (const auto m = wire::parse_vote(frame.payload)) {
        if (ledger_->on_precommit(from, *m)) return;
      }
      break;
    }
    case MsgType::kRoundSkip: {
      if (is_client_endpoint(from)) break;
      if (const auto m = wire::parse_round_skip(frame.payload)) {
        if (ledger_->on_round_skip(from, *m)) return;
      }
      break;
    }

    // ---- server <-> server: Hashchain batch exchange ----
    case MsgType::kBatchRequest: {
      if (hashchain_ == nullptr || is_client_endpoint(from)) break;
      const auto m = wire::parse_batch_request(frame.payload);
      // Anti-spoof: the requester field must name the sending endpoint
      // (responses are routed to it and it must be a cluster server).
      if (!m || m->requester != from || m->requester >= cfg_.n) break;
      hashchain_->serve_batch_request(static_cast<crypto::ProcessId>(m->requester),
                                      m->hash);
      return;
    }
    case MsgType::kBatchResponse: {
      if (hashchain_ == nullptr || is_client_endpoint(from)) break;
      // Zero-copy decode: the batch bytes are viewed in place in the frame
      // payload and copied exactly once, into the Bytes the store keeps.
      const auto m = wire::parse_batch_response_view(frame.payload);
      if (!m) break;
      auto parsed = core::parse_batch(m->batch);
      if (!parsed) break;  // Byzantine junk: the fetch timeout retries elsewhere
      auto batch = std::make_shared<const core::Batch>(std::move(*parsed));
      // batch IS the parse of these bytes, so on_batch_response skips its
      // defensive re-parse; it still re-hashes against the requested hash
      // (the responder is untrusted).
      hashchain_->on_batch_response(m->hash, std::move(batch),
                                    codec::Bytes(m->batch.begin(), m->batch.end()));
      return;
    }

    // ---- client RPC ----
    case MsgType::kAddRequest: {
      if (const auto m = wire::parse_add_request(frame.payload)) {
        handle_add(from, *m);
        return;
      }
      break;
    }
    case MsgType::kSnapshotRequest: {
      if (const auto m = wire::parse_snapshot_request(frame.payload)) {
        handle_snapshot(from, *m);
        return;
      }
      break;
    }
    case MsgType::kProofsRequest: {
      if (const auto m = wire::parse_proofs_request(frame.payload)) {
        handle_proofs(from, *m);
        return;
      }
      break;
    }
    case MsgType::kEpochRequest: {
      if (const auto m = wire::parse_epoch_request(frame.payload)) {
        handle_epoch(from, *m);
        return;
      }
      break;
    }

    case MsgType::kHello:  // transports consume hellos; late ones are noise
    case MsgType::kAddResponse:
    case MsgType::kSnapshotResponse:
    case MsgType::kProofsResponse:
    case MsgType::kEpochResponse:
      break;
  }
  ++bad_frames_;
}

void NodeHost::handle_add(EndpointId from, const wire::AddRequest& m) {
  ++rpcs_served_;
  wire::AddResponse resp;
  resp.req_id = m.req_id;
  resp.accepted = server_->add(m.element);
  transport_.send(from, wire::MsgType::kAddResponse, wire::encode_add_response(resp));
}

void NodeHost::handle_snapshot(EndpointId from, const wire::SnapshotRequest& m) {
  ++rpcs_served_;
  wire::SnapshotResponse resp;
  resp.req_id = m.req_id;
  const api::NodeSnapshot snap = server_->snapshot();

  // The response must fit one frame (wire::kMaxPayloadBytes). A node whose
  // state outgrew the budget serves a consistent PREFIX of its history —
  // epochs 1..k with the epoch field lowered to k — which clients already
  // handle: it is exactly what an honest-but-lagging node looks like, and
  // quorum reads only ever adopt agreed prefixes. the_set is advisory
  // (quorum logic derives its set from history) and is truncated last.
  // Worst-case per-entry costs: record header 3 varints + 64-byte hash,
  // ids/the_set entries one varint delta (<= 10 bytes) each.
  constexpr std::size_t kBudget = 6u << 20;
  constexpr std::size_t kPerRecord = 96;
  constexpr std::size_t kPerId = 10;
  std::size_t used = 0;
  resp.epoch = 0;
  if (snap.history != nullptr) {
    for (const auto& rec : *snap.history) {
      const std::size_t cost = kPerRecord + kPerId * rec.ids.size();
      if (used + cost > kBudget) break;
      used += cost;
      resp.history.push_back(rec);
      resp.epoch = rec.number;
    }
    if (resp.history.size() == snap.history->size()) resp.epoch = snap.epoch;
  }
  if (snap.the_set != nullptr) {
    resp.the_set.assign(snap.the_set->begin(), snap.the_set->end());
    std::sort(resp.the_set.begin(), resp.the_set.end());
    const std::size_t fit = (kBudget - std::min(used, kBudget)) / kPerId;
    if (resp.the_set.size() > fit) resp.the_set.resize(fit);
  }
  transport_.send(from, wire::MsgType::kSnapshotResponse,
                  wire::encode_snapshot_response(resp));
}

void NodeHost::handle_proofs(EndpointId from, const wire::ProofsRequest& m) {
  ++rpcs_served_;
  wire::ProofsResponse resp;
  resp.req_id = m.req_id;
  resp.proofs = server_->proofs_for_epoch(m.epoch);
  transport_.send(from, wire::MsgType::kProofsResponse,
                  wire::encode_proofs_response(resp));
}

void NodeHost::handle_epoch(EndpointId from, const wire::EpochRequest& m) {
  ++rpcs_served_;
  wire::EpochResponse resp;
  resp.req_id = m.req_id;
  resp.epoch = server_->epoch();
  resp.node_id = server_->node_id();
  transport_.send(from, wire::MsgType::kEpochResponse,
                  wire::encode_epoch_response(resp));
}

void NodeHost::send_request(crypto::ProcessId requester, crypto::ProcessId holder,
                            const core::EpochHash& h, std::uint64_t wire_bytes) {
  (void)wire_bytes;  // real transports account real bytes
  wire::BatchRequest m;
  m.requester = requester;
  m.hash = h;
  transport_.send(holder, wire::MsgType::kBatchRequest, wire::encode_batch_request(m));
}

void NodeHost::send_response(crypto::ProcessId responder, crypto::ProcessId requester,
                             const core::EpochHash& h, core::BatchPtr batch,
                             const codec::Bytes* serialized, sim::Time ready_at) {
  (void)responder;
  wire::BatchResponse m;
  m.hash = h;
  m.batch = serialized != nullptr ? *serialized : core::serialize_batch(*batch);
  codec::Bytes payload = wire::encode_batch_response(m);
  // Honor the CPU model's completion time (loopback shares the simulated
  // clock); under a real-time pump the delay is microseconds of virtual
  // time and fires on the next loop turn.
  sim_.schedule_at(std::max(ready_at, sim_.now()),
                   [this, requester, payload = std::move(payload)] {
                     transport_.send(requester, wire::MsgType::kBatchResponse, payload);
                   });
}

void NodeHost::run_realtime(std::atomic<bool>& stop) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  // Recovery replay advances the simulation clock before this pump starts;
  // anchoring virtual time at sim_.now() (not 0) keeps post-replay timers
  // in the future instead of stalling a restarted node.
  const sim::Time v0 = sim_.now();
  const auto virtual_now = [&t0, v0] {
    return v0 + static_cast<sim::Time>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        clock::now() - t0)
                        .count());
  };
  while (!stop.load(std::memory_order_relaxed)) {
    sim_.run_until(virtual_now());
    // Sleep until the next scheduled event, not a fixed granularity: poll()
    // wakes early the moment a frame arrives, and a timer due in 3ms fires
    // in ~3ms instead of on a 50ms grid. The 200ms idle cap only bounds how
    // long a stop request can go unnoticed (the transport has no stop hook
    // into this loop).
    const sim::Time next = sim_.next_event_at();
    const sim::Time now_v = virtual_now();
    std::int64_t wait_ms = 200;
    if (next <= now_v) {
      wait_ms = 0;
    } else if (next != std::numeric_limits<sim::Time>::max()) {
      const sim::Time delta_ns = next - now_v;
      wait_ms = std::min<std::int64_t>(
          wait_ms, static_cast<std::int64_t>((delta_ns + 999'999) / 1'000'000));
    }
    transport_.poll(std::chrono::milliseconds(wait_ms));
  }
}

}  // namespace setchain::net
