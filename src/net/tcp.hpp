#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"

namespace setchain::net {

/// "host:port" -> (host, port). Returns false on malformed input.
bool parse_host_port(const std::string& s, std::string& host, std::uint16_t& port);

struct TcpConfig {
  std::uint32_t self = 0;
  std::uint32_t n = 4;
  std::string listen_host = "127.0.0.1";
  /// 0 binds an ephemeral port (tests); read the real one via listen_port().
  std::uint16_t listen_port = 0;
  /// Peer addresses indexed by node id. Dial rule: node i dials every peer
  /// j < i and accepts from every peer j > i, so each server pair shares
  /// exactly one connection (both directions of traffic flow over it).
  /// Entries for ids >= self may be empty.
  std::vector<std::string> peers;
  /// cluster_id() of this deployment; hellos carrying anything else are
  /// refused (a daemon from another cluster/seed cannot join by accident).
  std::uint64_t cluster = 0;
  /// Bounded per-connection send queue (frames). A full queue drops the
  /// frame (counted): backpressure never blocks the node thread, and the
  /// ledger sync / fetch retry machinery recovers from the loss.
  std::size_t send_queue_limit = 4096;
};

/// Real-socket ITransport: POSIX TCP, one reader and one writer thread per
/// connection, an accept thread, and dialer threads (with capped exponential
/// backoff reconnect) for the peers this node initiates to. Inbound frames
/// land in an inbox the owner drains on its own thread via poll() — node
/// logic stays single-threaded.
class TcpTransport final : public ITransport {
 public:
  /// Binds and listens immediately (so tests can read listen_port() before
  /// any peer starts); no threads run until start().
  explicit TcpTransport(TcpConfig cfg);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void start();
  void stop();

  std::uint16_t listen_port() const { return listen_port_; }

  // ITransport
  void set_handler(FrameHandler handler) override { handler_ = std::move(handler); }
  bool send(EndpointId to, wire::MsgType type, codec::ByteView payload) override;
  std::size_t poll(std::chrono::milliseconds max_wait) override;
  std::uint32_t self() const override { return cfg_.self; }
  Counters counters() const override;

 private:
  struct Conn {
    /// Never mutated after construction; closed exactly once, in the
    /// destructor — i.e. only after every thread touching this connection
    /// has released its reference, so a recycled fd number can never be
    /// shut down or read by a stale thread.
    int fd = -1;
    EndpointId endpoint = 0;
    std::deque<codec::Bytes> sendq;
    std::mutex m;
    std::condition_variable cv;
    bool closed = false;
    std::thread writer;
    ~Conn();
  };
  using ConnPtr = std::shared_ptr<Conn>;

  void accept_loop();
  void dial_loop(std::uint32_t peer);
  /// Reads frames off `conn` until error/EOF/stop. `expected_endpoint` is
  /// set for outbound dials (the hello already happened); inbound
  /// connections are identified by their first frame (a Hello).
  void read_loop(const ConnPtr& conn, bool inbound);
  void writer_loop(const ConnPtr& conn);
  void register_conn(EndpointId endpoint, const ConnPtr& conn);
  void unregister_conn(EndpointId endpoint, const ConnPtr& conn);
  /// Wake a connection's threads so they wind down (shutdown + closed
  /// flag). Callable from ANY thread; never closes the fd (Conn::~Conn
  /// does) and never joins.
  static void retire_conn(const ConnPtr& conn);
  /// Owner-thread epilogue: retire + join the writer. Only the thread that
  /// ran the connection's read loop may call it (single joiner).
  static void close_conn(const ConnPtr& conn);
  bool send_hello(int fd);

  TcpConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  FrameHandler handler_;

  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::vector<std::thread> dialer_threads_;
  /// Inbound session threads, reaped by the accept loop as they finish so
  /// a long-lived daemon serving churning clients does not accumulate
  /// terminated-but-unjoined threads.
  struct Session {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex sessions_m_;
  std::vector<Session> session_threads_;

  std::mutex conns_m_;
  std::unordered_map<EndpointId, ConnPtr> conns_;
  std::atomic<EndpointId> next_client_{kClientEndpointBase};

  std::mutex inbox_m_;
  std::condition_variable inbox_cv_;
  std::deque<std::pair<EndpointId, wire::Frame>> inbox_;

  std::atomic<std::uint64_t> frames_sent_{0}, bytes_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0}, bytes_received_{0};
  std::atomic<std::uint64_t> send_drops_{0}, decode_errors_{0}, reconnects_{0};
};

}  // namespace setchain::net
