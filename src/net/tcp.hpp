#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"

namespace setchain::net {

/// "host:port" -> (host, port). Returns false on malformed input.
bool parse_host_port(const std::string& s, std::string& host, std::uint16_t& port);

struct TcpConfig {
  std::uint32_t self = 0;
  std::uint32_t n = 4;
  std::string listen_host = "127.0.0.1";
  /// 0 binds an ephemeral port (tests); read the real one via listen_port().
  std::uint16_t listen_port = 0;
  /// Peer addresses indexed by node id. Dial rule: node i dials every peer
  /// j < i and accepts from every peer j > i, so each server pair shares
  /// exactly one connection (both directions of traffic flow over it).
  /// Entries for ids >= self may be empty.
  std::vector<std::string> peers;
  /// cluster_id() of this deployment; hellos carrying anything else are
  /// refused (a daemon from another cluster/seed cannot join by accident).
  std::uint64_t cluster = 0;
  /// Bounded per-connection send queue (frames). A full queue drops the
  /// frame (counted): backpressure never blocks the node thread, and the
  /// ledger sync / fetch retry machinery recovers from the loss.
  std::size_t send_queue_limit = 4096;
};

/// Real-socket ITransport on a single epoll event loop: ONE thread runs
/// nonblocking accept, connect, read and write for every connection, with
/// per-connection state machines (identify-by-Hello, FrameReader reassembly,
/// queued writes flushed via sendmsg/writev coalescing) and capped-backoff
/// reconnect folded in as timer deadlines. Thread count is constant in the
/// number of connections — a node serving 64 clients runs one network
/// thread, not 130.
///
/// The owner-thread contract is unchanged from the thread-per-connection
/// transport this replaces: inbound frames land in an inbox the owner
/// drains on its own thread via poll(), send() is callable from any thread
/// and never blocks on the network (bounded queue, drop + count when full).
class TcpTransport final : public ITransport {
 public:
  /// Binds and listens immediately (so tests can read listen_port() before
  /// any peer starts); the event loop does not run until start().
  explicit TcpTransport(TcpConfig cfg);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void start();
  void stop();

  std::uint16_t listen_port() const { return listen_port_; }

  // ITransport
  void set_handler(FrameHandler handler) override { handler_ = std::move(handler); }
  bool send(EndpointId to, wire::MsgType type, codec::ByteView payload) override;
  /// Drains the inbox to the handler. Frame payload buffers are recycled
  /// into the process buffer pool after each handler call returns: handlers
  /// may MOVE the payload out but must not retain views into it.
  std::size_t poll(std::chrono::milliseconds max_wait) override;
  std::uint32_t self() const override { return cfg_.self; }
  Counters counters() const override;

 private:
  /// One connection's state machine. Everything except the send queue is
  /// owned by the event-loop thread; the send queue (sendq/front_off/
  /// flush_queued/closed) is shared with send() callers under `m`.
  struct Conn {
    int fd = -1;
    EndpointId endpoint = 0;
    bool identified = false;  ///< Hello handshake done (inbound) / dialed
    bool connecting = false;  ///< nonblocking connect() still in flight
    bool want_write = false;  ///< EPOLLOUT armed (send queue hit EAGAIN)
    bool dead = false;        ///< queued for reaping this loop iteration
    bool outbound = false;    ///< we dialed it (reap schedules a redial)
    std::uint32_t dial_peer = 0;
    wire::FrameReader reader;

    std::mutex m;
    std::deque<codec::Bytes> sendq;  ///< encoded frames (pooled buffers)
    std::size_t front_off = 0;       ///< bytes of sendq.front() already sent
    bool flush_queued = false;       ///< already on the loop's dirty list
    bool closed = false;             ///< send() must refuse (conn reaped)
    ~Conn();
  };
  using ConnPtr = std::shared_ptr<Conn>;

  /// Reconnect state for one dialed peer: attempts fire as deadlines inside
  /// the event loop (no dialer threads).
  struct DialState {
    std::uint32_t peer = 0;
    std::string host;
    std::uint16_t port = 0;
    bool addr_ok = false;
    int backoff_ms = 50;
    bool connected_before = false;
    std::chrono::steady_clock::time_point next_attempt{};
    ConnPtr conn;  ///< live (or connecting) connection, null between tries
  };

  void loop_main();
  void handle_listen_ready();
  void handle_wake();
  void handle_conn_event(const ConnPtr& conn, std::uint32_t events);
  void handle_readable(const ConnPtr& conn);
  /// Decode `data` (freshly received bytes) through the connection's frame
  /// state. Returns false on a fatal framing/identification error.
  bool process_read(const ConnPtr& conn, codec::ByteView data,
                    std::vector<std::pair<EndpointId, wire::Frame>>& out);
  bool handle_frame_view(const ConnPtr& conn, const wire::FrameView& v,
                         std::vector<std::pair<EndpointId, wire::Frame>>& out);
  void deliver(std::vector<std::pair<EndpointId, wire::Frame>>&& frames);
  /// Write queued frames until drained or EAGAIN; arms/disarms EPOLLOUT.
  void flush_conn(const ConnPtr& conn);
  void attempt_dial(DialState& d);
  void finish_connect(DialState& d);
  void fail_dial(DialState& d);
  void mark_dead(const ConnPtr& conn);
  void reap_dead();
  void register_conn(EndpointId endpoint, const ConnPtr& conn);
  void unregister_conn(EndpointId endpoint, const ConnPtr& conn);
  void update_interest(const ConnPtr& conn);
  void queue_hello(const ConnPtr& conn);
  int loop_timeout_ms() const;
  void wake_loop();
  void count_drop(EndpointId to);

  TcpConfig cfg_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  FrameHandler handler_;

  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread loop_thread_;

  // Event-loop-thread-only state.
  std::unordered_map<int, ConnPtr> by_fd_;
  std::vector<DialState> dials_;
  std::vector<ConnPtr> reap_;

  // send() needs endpoint -> connection; the loop registers/unregisters.
  mutable std::mutex conns_m_;
  std::unordered_map<EndpointId, ConnPtr> conns_;
  std::atomic<EndpointId> next_client_{kClientEndpointBase};

  // Connections with freshly queued sends, handed to the loop via wake_fd_.
  std::mutex dirty_m_;
  std::vector<ConnPtr> dirty_;

  std::mutex inbox_m_;
  std::condition_variable inbox_cv_;
  std::deque<std::pair<EndpointId, wire::Frame>> inbox_;

  std::atomic<std::uint64_t> frames_sent_{0}, bytes_sent_{0};
  std::atomic<std::uint64_t> frames_received_{0}, bytes_received_{0};
  std::atomic<std::uint64_t> send_drops_{0}, send_drops_peer_{0}, send_drops_client_{0};
  std::atomic<std::uint64_t> decode_errors_{0}, reconnects_{0};
  std::atomic<std::uint64_t> send_queue_peak_{0};
};

}  // namespace setchain::net
