#include "net/wire.hpp"

#include <string_view>

#include "sim/rng.hpp"

namespace setchain::net::wire {

// Layouts in this file are NORMATIVE-MIRRORED in docs/WIRE_FORMAT.md: keep
// the two in lockstep (the wire tests pin the documented examples).

bool known_type(std::uint8_t t) {
  switch (static_cast<MsgType>(t)) {
    case MsgType::kHello:
    case MsgType::kAddRequest:
    case MsgType::kAddResponse:
    case MsgType::kSnapshotRequest:
    case MsgType::kSnapshotResponse:
    case MsgType::kProofsRequest:
    case MsgType::kProofsResponse:
    case MsgType::kEpochRequest:
    case MsgType::kEpochResponse:
    case MsgType::kTxSubmit:
    case MsgType::kBlock:
    case MsgType::kBlockSyncRequest:
    case MsgType::kBlockSyncResponse:
    case MsgType::kProposal:
    case MsgType::kPrevote:
    case MsgType::kPrecommit:
    case MsgType::kRoundSkip:
    case MsgType::kBatchRequest:
    case MsgType::kBatchResponse:
      return true;
  }
  return false;
}

const char* type_name(MsgType t) {
  switch (t) {
    case MsgType::kHello: return "HELLO";
    case MsgType::kAddRequest: return "ADD_REQ";
    case MsgType::kAddResponse: return "ADD_RESP";
    case MsgType::kSnapshotRequest: return "SNAPSHOT_REQ";
    case MsgType::kSnapshotResponse: return "SNAPSHOT_RESP";
    case MsgType::kProofsRequest: return "PROOFS_REQ";
    case MsgType::kProofsResponse: return "PROOFS_RESP";
    case MsgType::kEpochRequest: return "EPOCH_REQ";
    case MsgType::kEpochResponse: return "EPOCH_RESP";
    case MsgType::kTxSubmit: return "TX_SUBMIT";
    case MsgType::kBlock: return "BLOCK";
    case MsgType::kBlockSyncRequest: return "BLOCK_SYNC_REQ";
    case MsgType::kBlockSyncResponse: return "BLOCK_SYNC_RESP";
    case MsgType::kProposal: return "PROPOSAL";
    case MsgType::kPrevote: return "PREVOTE";
    case MsgType::kPrecommit: return "PRECOMMIT";
    case MsgType::kRoundSkip: return "ROUND_SKIP";
    case MsgType::kBatchRequest: return "BATCH_REQ";
    case MsgType::kBatchResponse: return "BATCH_RESP";
  }
  return "?";
}

const char* decode_status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kNeedMore: return "need-more";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kOversized: return "oversized";
  }
  return "?";
}

bool encode_frame_into(codec::Bytes& out, MsgType type, codec::ByteView payload) {
  out.clear();
  if (payload.size() > kMaxPayloadBytes) return false;  // never legal to build
  out.reserve(kHeaderSize + payload.size());
  codec::append(out, codec::ByteView(kMagic.data(), kMagic.size()));
  codec::append_u8(out, kVersion);
  codec::append_u8(out, static_cast<std::uint8_t>(type));
  codec::append_u32le(out, static_cast<std::uint32_t>(payload.size()));
  codec::append(out, payload);
  return true;
}

codec::Bytes encode_frame(MsgType type, codec::ByteView payload) {
  codec::Bytes out;
  encode_frame_into(out, type, payload);
  return out;
}

DecodeStatus decode_frame_view(codec::ByteView in, FrameView& out,
                               std::size_t& consumed) {
  consumed = 0;
  if (in.size() < kHeaderSize) return DecodeStatus::kNeedMore;
  for (std::size_t i = 0; i < kMagic.size(); ++i) {
    if (in[i] != kMagic[i]) return DecodeStatus::kBadMagic;
  }
  if (in[4] != kVersion) return DecodeStatus::kBadVersion;
  const std::uint8_t type = in[5];
  if (!known_type(type)) return DecodeStatus::kBadType;
  const std::uint32_t len = codec::read_u32le(in.subspan(6, 4));
  if (len > kMaxPayloadBytes) return DecodeStatus::kOversized;
  if (in.size() < kHeaderSize + len) return DecodeStatus::kNeedMore;
  out.type = static_cast<MsgType>(type);
  out.payload = in.subspan(kHeaderSize, len);
  consumed = kHeaderSize + len;
  return DecodeStatus::kOk;
}

DecodeStatus decode_frame(codec::ByteView in, Frame& out, std::size_t& consumed) {
  FrameView v;
  const DecodeStatus s = decode_frame_view(in, v, consumed);
  if (s != DecodeStatus::kOk) return s;
  out.type = v.type;
  out.payload.assign(v.payload.begin(), v.payload.end());
  return s;
}

void FrameReader::feed(codec::ByteView bytes) {
  if (fatal_ != DecodeStatus::kOk) return;
  // Compact the consumed prefix before growing (bounded memory per peer).
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 4096)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  codec::append(buf_, bytes);
}

DecodeStatus FrameReader::next_view(FrameView& out) {
  if (fatal_ != DecodeStatus::kOk) return fatal_;
  std::size_t consumed = 0;
  const DecodeStatus s =
      decode_frame_view(codec::ByteView(buf_).subspan(pos_), out, consumed);
  if (s == DecodeStatus::kOk) {
    pos_ += consumed;
    return s;
  }
  if (s != DecodeStatus::kNeedMore) fatal_ = s;  // streams cannot resync
  return s;
}

DecodeStatus FrameReader::next(Frame& out) {
  FrameView v;
  const DecodeStatus s = next_view(v);
  if (s != DecodeStatus::kOk) return s;
  out.type = v.type;
  out.payload.assign(v.payload.begin(), v.payload.end());
  return s;
}

// ---------------------------------------------------------------------------
// Payloads.
// ---------------------------------------------------------------------------

std::uint64_t cluster_id(std::uint64_t seed, std::uint32_t n, std::uint32_t f,
                         std::uint8_t algorithm, std::uint8_t ledger_mode) {
  std::uint64_t s = seed ^ 0xC1D57E55ULL;
  std::uint64_t v = sim::splitmix64(s);
  s ^= (static_cast<std::uint64_t>(n) << 32) | (static_cast<std::uint64_t>(f) << 8) |
       algorithm;
  v ^= sim::splitmix64(s);
  // Folded as an extra mixing stage so mode-0 (fixed sequencer) ids are
  // byte-identical to the historical four-parameter derivation. The dialect
  // revision rides in the same stage: a consensus binary speaking an older
  // frame layout derives a different id and is refused at Hello.
  if (ledger_mode != 0) {
    s ^= static_cast<std::uint64_t>(ledger_mode) << 16;
    s ^= static_cast<std::uint64_t>(kConsensusWireRevision) << 24;
    v ^= sim::splitmix64(s);
  }
  return v;
}

namespace {

/// Shared epilogue of every parser: the payload must be consumed exactly
/// (trailing garbage is a protocol violation, not padding).
template <typename T>
std::optional<T> finish(const codec::Reader& r, T&& value) {
  if (!r.done()) return std::nullopt;
  return std::forward<T>(value);
}

void put_sorted_ids(codec::Writer& w, const std::vector<core::ElementId>& ids) {
  w.varint(ids.size());
  core::ElementId prev = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    w.varint(i == 0 ? ids[i] : ids[i] - prev);  // strictly increasing input
    prev = ids[i];
  }
}

/// Bound a list reserve by the bytes actually present: each entry encodes
/// to at least `min_entry_bytes`, so any count above remaining/min is a lie
/// and any honest count reserves no more memory than the payload justifies
/// (a 30-byte frame claiming 8M entries must not allocate gigabytes).
std::size_t reserve_bound(const codec::Reader& r, std::uint64_t count,
                          std::size_t min_entry_bytes) {
  const std::size_t plausible = r.remaining() / std::max<std::size_t>(min_entry_bytes, 1);
  return static_cast<std::size_t>(std::min<std::uint64_t>(count, plausible));
}

/// Sorted-delta id list; rejects lists that are not strictly increasing
/// (delta 0 after the first entry would smuggle duplicates past set logic).
bool get_sorted_ids(codec::Reader& r, std::vector<core::ElementId>& out,
                    std::size_t max_count) {
  const auto count = r.varint();
  if (!count || *count > max_count) return false;
  out.clear();
  out.reserve(reserve_bound(r, *count, 1));
  core::ElementId prev = 0;
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto delta = r.varint();
    if (!delta) return false;
    if (i > 0 && *delta == 0) return false;
    const core::ElementId id = prev + *delta;
    if (i > 0 && id < prev) return false;  // wraparound
    out.push_back(id);
    prev = id;
  }
  return true;
}

/// A snapshot/proof response can legitimately carry many entries, but any
/// count beyond what fits the frame cap is hostile. Counts are sanity-
/// checked against this, and every reserve additionally goes through
/// reserve_bound() so allocation is bounded by the bytes actually present.
constexpr std::size_t kMaxListCount = kMaxPayloadBytes;

/// Minimum encoded sizes (bytes) of the variable-count entries, for
/// reserve_bound(): an epoch record is 3 varints + 64-byte hash + id list,
/// an epoch-proof entry is tag + 138 fixed bytes, a transaction is
/// kind + wire_size varint + lp_bytes.
constexpr std::size_t kMinEpochRecordBytes = 68;
constexpr std::size_t kMinProofEntryBytes = 100;
constexpr std::size_t kMinTxBytes = 3;

}  // namespace

codec::Bytes encode_hello(const Hello& h) {
  codec::Writer w;
  w.u8(h.role).varint(h.sender).u64le(h.cluster);
  return w.take();
}

std::optional<Hello> parse_hello(codec::ByteView payload) {
  codec::Reader r(payload);
  Hello h;
  const auto role = r.u8();
  const auto sender = r.varint();
  const auto cluster = r.u64le();
  if (!role || !sender || !cluster) return std::nullopt;
  if (*role != kRoleServer && *role != kRoleClient) return std::nullopt;
  h.role = *role;
  h.sender = *sender;
  h.cluster = *cluster;
  return finish(r, std::move(h));
}

codec::Bytes encode_add_request(const AddRequest& m) {
  codec::Writer w;
  w.varint(m.req_id);
  core::serialize_element(w, m.element);
  return w.take();
}

std::optional<AddRequest> parse_add_request(codec::ByteView payload) {
  codec::Reader r(payload);
  AddRequest m;
  const auto req = r.varint();
  const auto tag = r.u8();
  if (!req || !tag || *tag != core::kElementTag) return std::nullopt;
  auto e = core::parse_element(r);
  if (!e) return std::nullopt;
  m.req_id = *req;
  m.element = std::move(*e);
  return finish(r, std::move(m));
}

codec::Bytes encode_add_response(const AddResponse& m) {
  codec::Writer w;
  w.varint(m.req_id).u8(m.accepted ? 1 : 0);
  return w.take();
}

std::optional<AddResponse> parse_add_response(codec::ByteView payload) {
  codec::Reader r(payload);
  AddResponse m;
  const auto req = r.varint();
  const auto acc = r.u8();
  if (!req || !acc || *acc > 1) return std::nullopt;
  m.req_id = *req;
  m.accepted = *acc == 1;
  return finish(r, std::move(m));
}

codec::Bytes encode_snapshot_request(const SnapshotRequest& m) {
  codec::Writer w;
  w.varint(m.req_id);
  return w.take();
}

std::optional<SnapshotRequest> parse_snapshot_request(codec::ByteView payload) {
  codec::Reader r(payload);
  const auto req = r.varint();
  if (!req) return std::nullopt;
  return finish(r, SnapshotRequest{*req});
}

codec::Bytes encode_snapshot_response(const SnapshotResponse& m) {
  codec::Writer w;
  w.varint(m.req_id).varint(m.epoch).varint(m.history.size());
  for (const auto& rec : m.history) {
    w.varint(rec.number).varint(rec.count).varint(rec.bytes);
    w.bytes(codec::ByteView(rec.hash.data(), rec.hash.size()));
    put_sorted_ids(w, rec.ids);
  }
  put_sorted_ids(w, m.the_set);
  return w.take();
}

std::optional<SnapshotResponse> parse_snapshot_response(codec::ByteView payload) {
  codec::Reader r(payload);
  SnapshotResponse m;
  const auto req = r.varint();
  const auto epoch = r.varint();
  const auto hist = r.varint();
  if (!req || !epoch || !hist || *hist > kMaxListCount) return std::nullopt;
  m.req_id = *req;
  m.epoch = *epoch;
  m.history.reserve(reserve_bound(r, *hist, kMinEpochRecordBytes));
  for (std::uint64_t i = 0; i < *hist; ++i) {
    core::EpochRecord rec;
    const auto number = r.varint();
    const auto count = r.varint();
    const auto bytes = r.varint();
    if (!number || !count || !bytes) return std::nullopt;
    const auto hash = r.bytes(rec.hash.size());
    if (!hash) return std::nullopt;
    rec.number = *number;
    rec.count = *count;
    rec.bytes = *bytes;
    std::copy(hash->begin(), hash->end(), rec.hash.begin());
    if (!get_sorted_ids(r, rec.ids, kMaxListCount)) return std::nullopt;
    m.history.push_back(std::move(rec));
  }
  if (!get_sorted_ids(r, m.the_set, kMaxListCount)) return std::nullopt;
  return finish(r, std::move(m));
}

codec::Bytes encode_proofs_request(const ProofsRequest& m) {
  codec::Writer w;
  w.varint(m.req_id).varint(m.epoch);
  return w.take();
}

std::optional<ProofsRequest> parse_proofs_request(codec::ByteView payload) {
  codec::Reader r(payload);
  const auto req = r.varint();
  const auto epoch = r.varint();
  if (!req || !epoch) return std::nullopt;
  return finish(r, ProofsRequest{*req, *epoch});
}

codec::Bytes encode_proofs_response(const ProofsResponse& m) {
  codec::Writer w;
  w.varint(m.req_id).varint(m.proofs.size());
  for (const auto& p : m.proofs) core::serialize_epoch_proof(w, p);
  return w.take();
}

std::optional<ProofsResponse> parse_proofs_response(codec::ByteView payload) {
  codec::Reader r(payload);
  ProofsResponse m;
  const auto req = r.varint();
  const auto count = r.varint();
  if (!req || !count || *count > kMaxListCount) return std::nullopt;
  m.req_id = *req;
  m.proofs.reserve(reserve_bound(r, *count, kMinProofEntryBytes));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto tag = r.u8();
    if (!tag || *tag != core::kEpochProofTag) return std::nullopt;
    auto p = core::parse_epoch_proof(r);
    if (!p) return std::nullopt;
    m.proofs.push_back(std::move(*p));
  }
  return finish(r, std::move(m));
}

codec::Bytes encode_epoch_request(const EpochRequest& m) {
  codec::Writer w;
  w.varint(m.req_id);
  return w.take();
}

std::optional<EpochRequest> parse_epoch_request(codec::ByteView payload) {
  codec::Reader r(payload);
  const auto req = r.varint();
  if (!req) return std::nullopt;
  return finish(r, EpochRequest{*req});
}

codec::Bytes encode_epoch_response(const EpochResponse& m) {
  codec::Writer w;
  w.varint(m.req_id).varint(m.epoch).varint(m.node_id);
  return w.take();
}

std::optional<EpochResponse> parse_epoch_response(codec::ByteView payload) {
  codec::Reader r(payload);
  const auto req = r.varint();
  const auto epoch = r.varint();
  const auto node = r.varint();
  if (!req || !epoch || !node) return std::nullopt;
  return finish(r, EpochResponse{*req, *epoch, *node});
}

namespace {

void put_tx(codec::Writer& w, const ledger::Transaction& tx) {
  w.u8(static_cast<std::uint8_t>(tx.kind));
  w.varint(tx.wire_size);
  w.lp_bytes(tx.data);
}

std::optional<TxView> get_tx_view(codec::Reader& r) {
  const auto kind = r.u8();
  const auto wire = r.varint();
  if (!kind || !wire) return std::nullopt;
  if (*kind > static_cast<std::uint8_t>(ledger::TxKind::kHashBatch)) return std::nullopt;
  if (*wire > kMaxPayloadBytes) return std::nullopt;
  const auto data = r.lp_bytes();
  if (!data) return std::nullopt;
  TxView tx;
  tx.kind = static_cast<ledger::TxKind>(*kind);
  tx.wire_size = static_cast<std::uint32_t>(*wire);
  tx.data = *data;
  return tx;
}

std::optional<ledger::Transaction> get_tx(codec::Reader& r) {
  const auto v = get_tx_view(r);
  if (!v) return std::nullopt;
  ledger::Transaction tx;
  tx.kind = v->kind;
  tx.wire_size = v->wire_size;
  tx.data.assign(v->data.begin(), v->data.end());
  return tx;
}

/// Block grammar shared by kBlock and the signed kProposal prefix. Does NOT
/// require the reader to be exhausted — the caller decides what follows.
std::optional<BlockView> get_block_view(codec::Reader& r) {
  BlockView m;
  const auto height = r.varint();
  const auto proposer = r.varint();
  const auto count = r.varint();
  if (!height || *height == 0 || !proposer || !count) return std::nullopt;
  if (*proposer > 0xFFFFFFFFull || *count > kMaxListCount) return std::nullopt;
  m.height = *height;
  m.proposer = static_cast<std::uint32_t>(*proposer);
  m.txs.reserve(reserve_bound(r, *count, kMinTxBytes));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto tx = get_tx_view(r);
    if (!tx) return std::nullopt;
    m.txs.push_back(*tx);
  }
  return m;
}

}  // namespace

codec::Bytes encode_tx_submit(const ledger::Transaction& tx) {
  codec::Writer w;
  put_tx(w, tx);
  return w.take();
}

std::optional<TxSubmit> parse_tx_submit(codec::ByteView payload) {
  codec::Reader r(payload);
  auto tx = get_tx(r);
  if (!tx) return std::nullopt;
  TxSubmit m;
  m.tx = std::move(*tx);
  return finish(r, std::move(m));
}

codec::Bytes encode_block(std::uint64_t height, std::uint32_t proposer,
                          const std::vector<const ledger::Transaction*>& txs) {
  codec::Writer w;
  w.varint(height).varint(proposer).varint(txs.size());
  for (const auto* tx : txs) put_tx(w, *tx);
  return w.take();
}

std::optional<BlockView> parse_block_view(codec::ByteView payload) {
  codec::Reader r(payload);
  auto m = get_block_view(r);
  if (!m) return std::nullopt;
  return finish(r, std::move(*m));
}

std::optional<BlockMsg> parse_block(codec::ByteView payload) {
  auto v = parse_block_view(payload);
  if (!v) return std::nullopt;
  BlockMsg m;
  m.height = v->height;
  m.proposer = v->proposer;
  m.txs.reserve(v->txs.size());
  for (const auto& t : v->txs) {
    ledger::Transaction tx;
    tx.kind = t.kind;
    tx.wire_size = t.wire_size;
    tx.data.assign(t.data.begin(), t.data.end());
    m.txs.push_back(std::move(tx));
  }
  return m;
}

codec::Bytes encode_block_sync_request(const BlockSyncRequest& m) {
  codec::Writer w;
  w.varint(m.from_height);
  return w.take();
}

std::optional<BlockSyncRequest> parse_block_sync_request(codec::ByteView payload) {
  codec::Reader r(payload);
  const auto from = r.varint();
  if (!from) return std::nullopt;
  return finish(r, BlockSyncRequest{*from});
}

codec::Bytes encode_block_sync_response(const std::vector<codec::ByteView>& blocks) {
  codec::Writer w;
  w.varint(blocks.size());
  for (const auto& b : blocks) w.lp_bytes(b);
  return w.take();
}

std::optional<BlockSyncResponse> parse_block_sync_response(codec::ByteView payload) {
  codec::Reader r(payload);
  BlockSyncResponse m;
  const auto count = r.varint();
  if (!count || *count > kMaxListCount) return std::nullopt;
  m.blocks.reserve(reserve_bound(r, *count, 1));
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto b = r.lp_bytes();
    if (!b) return std::nullopt;
    m.blocks.emplace_back(b->begin(), b->end());
  }
  return finish(r, std::move(m));
}

std::optional<SignedProposalView> parse_signed_proposal_view(codec::ByteView payload) {
  codec::Reader r(payload);
  auto block = get_block_view(r);
  if (!block) return std::nullopt;
  SignedProposalView m;
  m.block = std::move(*block);
  m.block_bytes = payload.first(r.position());
  const auto sig = r.bytes(m.sig.size());
  if (!sig) return std::nullopt;
  std::copy(sig->begin(), sig->end(), m.sig.begin());
  return finish(r, std::move(m));
}

std::optional<ProposalMsg> parse_proposal(codec::ByteView payload) {
  // Wrapper over the view parser — one grammar, so the owning and the
  // zero-copy parsers accept exactly the same byte strings (a retransmitter
  // of a payload the view parser accepted can never be blamed here). The
  // raw bytes are retained: they are the preimage of the proposal hash and
  // must be retransmittable verbatim.
  const auto v = parse_signed_proposal_view(payload);
  if (!v) return std::nullopt;
  ProposalMsg m;
  m.block.height = v->block.height;
  m.block.proposer = v->block.proposer;
  m.block.txs.reserve(v->block.txs.size());
  for (const auto& t : v->block.txs) {
    ledger::Transaction tx;
    tx.kind = t.kind;
    tx.wire_size = t.wire_size;
    tx.data.assign(t.data.begin(), t.data.end());
    m.block.txs.push_back(std::move(tx));
  }
  m.raw.assign(payload.begin(), payload.end());
  m.block_bytes_len = v->block_bytes.size();
  m.sig = v->sig;
  return m;
}

codec::Bytes encode_signed_proposal(codec::ByteView block_bytes,
                                    const crypto::Ed25519::Signature& sig) {
  codec::Writer w;
  w.bytes(block_bytes);
  w.bytes(codec::ByteView(sig.data(), sig.size()));
  return w.take();
}

codec::Bytes encode_vote(const VoteMsg& m) {
  codec::Writer w;
  w.varint(m.height).varint(m.round).varint(m.voter);
  w.bytes(codec::ByteView(m.hash.data(), m.hash.size()));
  w.bytes(codec::ByteView(m.sig.data(), m.sig.size()));
  return w.take();
}

std::optional<VoteMsg> parse_vote(codec::ByteView payload) {
  codec::Reader r(payload);
  VoteMsg m;
  const auto height = r.varint();
  const auto round = r.varint();
  const auto voter = r.varint();
  if (!height || *height == 0 || !round || !voter) return std::nullopt;
  if (*round > 0xFFFFFFFFull || *voter > 0xFFFFFFFFull) return std::nullopt;
  const auto hash = r.bytes(m.hash.size());
  if (!hash) return std::nullopt;
  std::copy(hash->begin(), hash->end(), m.hash.begin());
  const auto sig = r.bytes(m.sig.size());
  if (!sig) return std::nullopt;
  std::copy(sig->begin(), sig->end(), m.sig.begin());
  m.height = *height;
  m.round = static_cast<std::uint32_t>(*round);
  m.voter = static_cast<std::uint32_t>(*voter);
  return finish(r, std::move(m));
}

codec::Bytes encode_round_skip(const RoundSkipMsg& m) {
  codec::Writer w;
  w.varint(m.height).varint(m.round).varint(m.voter);
  w.bytes(codec::ByteView(m.sig.data(), m.sig.size()));
  return w.take();
}

std::optional<RoundSkipMsg> parse_round_skip(codec::ByteView payload) {
  codec::Reader r(payload);
  RoundSkipMsg m;
  const auto height = r.varint();
  const auto round = r.varint();
  const auto voter = r.varint();
  if (!height || *height == 0 || !round || !voter) return std::nullopt;
  if (*round > 0xFFFFFFFFull || *voter > 0xFFFFFFFFull) return std::nullopt;
  const auto sig = r.bytes(m.sig.size());
  if (!sig) return std::nullopt;
  std::copy(sig->begin(), sig->end(), m.sig.begin());
  m.height = *height;
  m.round = static_cast<std::uint32_t>(*round);
  m.voter = static_cast<std::uint32_t>(*voter);
  return finish(r, std::move(m));
}

namespace {

// Transcript domain tags. Distinct per message family; the trailing
// revision digit moves with kConsensusWireRevision so a transcript from an
// older dialect never verifies under a newer one.
constexpr std::string_view kProposalDomain = "SETC/consensus/proposal/2";
constexpr std::string_view kVoteDomain = "SETC/consensus/vote/2";
constexpr std::string_view kSkipDomain = "SETC/consensus/skip/2";

void put_domain(codec::Writer& w, std::string_view d) {
  w.bytes(codec::ByteView(reinterpret_cast<const std::uint8_t*>(d.data()), d.size()));
}

/// Smallest certificate vote entry: voter varint (>=1 byte) + 64-byte sig.
constexpr std::size_t kMinCommitVoteBytes = 65;

}  // namespace

codec::Bytes proposal_transcript(std::uint64_t cluster, codec::ByteView block_bytes) {
  codec::Writer w;
  put_domain(w, kProposalDomain);
  w.u64le(cluster);
  w.bytes(block_bytes);
  return w.take();
}

codec::Bytes vote_transcript(std::uint64_t cluster, MsgType type,
                             std::uint64_t height, std::uint32_t round,
                             const ProposalHash& hash) {
  codec::Writer w;
  put_domain(w, kVoteDomain);
  w.u64le(cluster);
  w.u8(static_cast<std::uint8_t>(type));
  w.u64le(height).u32le(round);
  w.bytes(codec::ByteView(hash.data(), hash.size()));
  return w.take();
}

codec::Bytes round_skip_transcript(std::uint64_t cluster, std::uint64_t height,
                                   std::uint32_t round) {
  codec::Writer w;
  put_domain(w, kSkipDomain);
  w.u64le(cluster);
  w.u64le(height).u32le(round);
  return w.take();
}

codec::Bytes encode_certified_block(codec::ByteView proposal, std::uint32_t round,
                                    const std::vector<CommitVote>& votes) {
  codec::Writer w;
  w.lp_bytes(proposal);
  w.varint(round);
  w.varint(votes.size());
  for (const auto& v : votes) {
    w.varint(v.voter);
    w.bytes(codec::ByteView(v.sig.data(), v.sig.size()));
  }
  return w.take();
}

std::optional<CertifiedBlockMsg> parse_certified_block(codec::ByteView payload) {
  codec::Reader r(payload);
  CertifiedBlockMsg m;
  const auto proposal = r.lp_bytes();
  if (!proposal || proposal->empty()) return std::nullopt;
  m.proposal.assign(proposal->begin(), proposal->end());
  const auto round = r.varint();
  const auto count = r.varint();
  if (!round || *round > 0xFFFFFFFFull || !count || *count > kMaxListCount) {
    return std::nullopt;
  }
  m.round = static_cast<std::uint32_t>(*round);
  m.votes.reserve(reserve_bound(r, *count, kMinCommitVoteBytes));
  for (std::uint64_t i = 0; i < *count; ++i) {
    CommitVote v;
    const auto voter = r.varint();
    if (!voter || *voter > 0xFFFFFFFFull) return std::nullopt;
    v.voter = static_cast<std::uint32_t>(*voter);
    // Strictly increasing voter ids: no voter can be counted twice toward
    // the quorum, and verifiers get the entries pre-sorted.
    if (!m.votes.empty() && v.voter <= m.votes.back().voter) return std::nullopt;
    const auto sig = r.bytes(v.sig.size());
    if (!sig) return std::nullopt;
    std::copy(sig->begin(), sig->end(), v.sig.begin());
    m.votes.push_back(v);
  }
  return finish(r, std::move(m));
}

codec::Bytes encode_batch_request(const BatchRequest& m) {
  codec::Writer w;
  w.varint(m.requester);
  w.bytes(codec::ByteView(m.hash.data(), m.hash.size()));
  return w.take();
}

std::optional<BatchRequest> parse_batch_request(codec::ByteView payload) {
  codec::Reader r(payload);
  BatchRequest m;
  const auto requester = r.varint();
  if (!requester) return std::nullopt;
  const auto hash = r.bytes(m.hash.size());
  if (!hash) return std::nullopt;
  m.requester = *requester;
  std::copy(hash->begin(), hash->end(), m.hash.begin());
  return finish(r, std::move(m));
}

codec::Bytes encode_batch_response(const BatchResponse& m) {
  codec::Writer w;
  w.bytes(codec::ByteView(m.hash.data(), m.hash.size()));
  w.lp_bytes(m.batch);
  return w.take();
}

std::optional<BatchResponseView> parse_batch_response_view(codec::ByteView payload) {
  codec::Reader r(payload);
  BatchResponseView m;
  const auto hash = r.bytes(m.hash.size());
  if (!hash) return std::nullopt;
  std::copy(hash->begin(), hash->end(), m.hash.begin());
  const auto batch = r.lp_bytes();
  if (!batch) return std::nullopt;
  m.batch = *batch;
  return finish(r, std::move(m));
}

std::optional<BatchResponse> parse_batch_response(codec::ByteView payload) {
  const auto v = parse_batch_response_view(payload);
  if (!v) return std::nullopt;
  BatchResponse m;
  m.hash = v->hash;
  m.batch.assign(v->batch.begin(), v->batch.end());
  return m;
}

}  // namespace setchain::net::wire
