#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/pki.hpp"
#include "net/wire_ledger.hpp"
#include "sim/simulation.hpp"

namespace setchain::net {

/// Test-only adversarial behaviours of a ConsensusLedger instance: a live
/// malicious variant for Byzantine-path tests (the honest code paths are
/// untouched when no flag is set). The flags drive the equivocation /
/// forgery scenarios in tests/net/consensus_cluster_test.cpp and the
/// `--byz-consensus` smoke-test node.
struct ConsensusByzantinePlan {
  /// Seal TWO validly signed, conflicting proposals for one height and
  /// split them between the peers (even ids get one, odd ids the other).
  bool equivocate_proposals = false;
  /// Follow every honest vote with a second validly signed vote for a
  /// fabricated hash in the same round.
  bool double_vote = false;
  /// Broadcast votes that impersonate another voter and votes carrying
  /// garbage signatures.
  bool forge_votes = false;
  /// Serve corrupted certified blocks to sync requesters.
  bool junk_sync = false;

  bool any() const {
    return equivocate_proposals || double_vote || forge_votes || junk_sync;
  }
};

/// Retained proof of one equivocation: the two conflicting signed messages
/// (truncated to a bounded prefix — enough to identify, not to replay an
/// 8 MiB payload pair from memory forever). One record per masked node.
struct EquivocationEvidence {
  std::uint32_t node = 0;
  std::uint64_t height = 0;
  std::uint8_t kind = 0;  ///< 0 = conflicting votes, 1 = conflicting proposals
  codec::Bytes first;
  codec::Bytes second;
};

struct ConsensusLedgerConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;  ///< fault-tolerance target (n >= 3f+1)
  std::uint32_t self = 0;
  /// Pacing for FRESH proposals: a proposer seals a new block from its
  /// mempool at most this often (same role as the sequencer's seal tick).
  sim::Time block_interval = sim::from_millis(150);
  std::uint64_t max_block_bytes = 500'000;
  /// Round liveness timeout: if a height has work pending and no block
  /// committed for this long, broadcast a round-skip (the proposer looks
  /// dead). f+1 skip wishes advance the round to the next proposer.
  sim::Time timeout_propose = sim::from_millis(3000);
  /// Base cadence for retransmitting consensus state (held proposal + own
  /// votes) and own uncommitted submissions; doubles per idle attempt,
  /// capped at 8x.
  sim::Time retry_interval = sim::from_millis(400);
  sim::Time sync_interval = sim::from_millis(400);
  std::size_t max_sync_blocks = 64;
  /// Node keys (paper PKI): proposals and votes are signed with the
  /// sender's key and verified against the claimed author's. Null disables
  /// signing/verification (bare unit harnesses only — a live NodeHost
  /// always provides one).
  const crypto::Pki* pki = nullptr;
  /// cluster_id() of this deployment: mixed into every signing transcript,
  /// so signatures never replay across deployments.
  std::uint64_t cluster = 0;
  ConsensusByzantinePlan byz;  ///< test-only; default = honest
};

/// Wire-level consensus block ledger: the CometbftSim state machine
/// (src/ledger/consensus.hpp) ported onto real frames, replacing the fixed
/// sequencer so a live cluster keeps the paper's f-tolerance — any f failed
/// nodes (including every would-be proposer) and epochs keep committing.
///
/// AUTHENTICATED Tendermint-lite, one active height H = applied+1 at a time.
/// Every consensus frame is signed with the author's Ed25519 key from the
/// PKI, over a domain-separated transcript that mixes the cluster id (and,
/// for votes, the frame type) — see wire.hpp transcripts. The threat model
/// (docs/ARCHITECTURE.md): up to f Byzantine servers may equivocate, forge,
/// replay, or corrupt frames; they can no longer impersonate another server
/// or split honest nodes onto conflicting commits.
///
///  * proposer_for(H, r) = (H + r) % n. The round-r proposer broadcasts a
///    kProposal (block bytes ‖ proposer signature); everyone hashes the
///    FULL payload bytes (SHA-256) and votes on the hash, so ANY holder can
///    retransmit the original bytes past a crashed proposer while the
///    signature still binds the payload to the scheduled proposer
///    (proposer_for visits every id, so an in-range `proposer` field names
///    the rounds r ≡ proposer − H (mod n) that node is scheduled for; the
///    signature makes the claim unforgeable).
///  * Each node prevotes at most once per round: its locked hash if locked,
///    else the lowest proposal hash it holds (a deterministic tie-break that
///    needs no leader), else it waits. 2f+1 prevotes for one (round, hash)
///    form a polka: the node locks that hash and precommits it, once per
///    round. 2f+1 precommits for one (round, hash) commit the proposal —
///    applied when the payload is held (retransmission fetches it if not).
///  * Votes are verified in batches: structurally valid signed votes queue
///    and a zero-delay drain runs ONE Ed25519::verify_batch over everything
///    that arrived together, then applies the valid ones (invalid
///    signatures count into vote_sig_rejects() and are dropped).
///  * Equivocation: a voter whose two validly signed votes name different
///    hashes for one (height, round), or a proposer with two validly signed
///    payloads for one height, is PERMANENTLY masked — its votes and skips
///    are ignored from then on, the conflict is counted
///    (equivocations_detected()) and the conflicting evidence retained
///    (evidence()). The first recorded vote stands: honest voters vote once
///    per round, so any two 2f+1 quorums still intersect in an honest
///    voter and conflicting commits remain impossible. The masked set and
///    evidence survive restarts (state snapshot v2). Payloads from a masked
///    proposer are still usable as commit candidates (content is
///    client-submitted either way); holding is capped at 2 payloads per
///    proposer per height — lower hashes evict higher ones — so an
///    equivocator cannot balloon memory, and the lowest-hash prevote rule
///    still converges. A node missing an evicted payload that later gets a
///    commit quorum heals via certified block sync like any straggler.
///  * Locks persist across rounds within a height and are never released
///    (no unlock rule): a locked node only ever prevotes its lock. A
///    minority (<= f) stuck locked on a hash the majority abandoned heals
///    via block sync once the majority commits.
///  * Dead proposer: when work is pending and timeout_propose elapses with
///    no commit, a node broadcasts a signed kRoundSkip for its current
///    round and rebroadcasts it every further timeout. Skip wishes from f+1
///    distinct unmasked nodes (self included) advance the round.
///  * Votes one height AHEAD are buffered (one per voter per frame type)
///    and re-validated when the height advances — a node one commit behind
///    no longer eats a full timeout because its peers' precommits arrived
///    early (votes_buffered() / votes_dropped_ahead() count the traffic).
///  * Submissions gossip: append() broadcasts kTxSubmit to every peer and
///    retransmits with capped backoff until the tx's content key lands in a
///    committed block; receivers dedup against mempool + committed history,
///    and commits prune the mempool — P10 inclusion without a
///    distinguished node.
///  * Catch-up: commits are archived as CERTIFIED blocks (proposal + the
///    2f+1 signed precommits that committed it) and served byte-identical
///    via rotating kBlockSyncRequest pulls. A sync receiver verifies the
///    certificate (proposer signature + quorum of valid precommit
///    signatures) before applying — a Byzantine peer can no longer feed a
///    straggler a fabricated chain.
///
/// Single-threaded like everything in src/net: frames and timer ticks run on
/// the owning NodeHost's simulation loop.
class ConsensusLedger final : public IWireLedger {
 public:
  ConsensusLedger(ConsensusLedgerConfig cfg, sim::Simulation& timers,
                  ITransport& transport);

  void start() override;

  // IBlockLedger. `append` returns the local submission ordinal (see
  // ReplicatedLedger::append for why that is enough in live deployments).
  ledger::TxIdx append(sim::NodeId origin, ledger::Transaction tx) override;
  void on_new_block(sim::NodeId node, std::function<void(const ledger::Block&)> cb) override;
  const ledger::TxTable& txs() const override { return table_; }
  std::uint64_t height() const override { return applied_; }

  // Frame entry points (NodeHost routes inbound frames here).
  void on_tx_submit(EndpointId from, wire::TxSubmit&& m) override;
  /// kBlock is not part of the consensus dialect (blocks travel as
  /// certified proposals inside sync responses): always false.
  bool on_block_frame(codec::ByteView payload) override;
  void on_sync_request(EndpointId from, const wire::BlockSyncRequest& m) override;
  void on_sync_response(const wire::BlockSyncResponse& m) override;
  bool on_proposal(EndpointId from, codec::ByteView payload) override;
  bool on_prevote(EndpointId from, const wire::VoteMsg& m) override;
  bool on_precommit(EndpointId from, const wire::VoteMsg& m) override;
  bool on_round_skip(EndpointId from, const wire::RoundSkipMsg& m) override;

  std::size_t pending_txs() const override {
    return mempool_.size() + own_pending_.size();
  }
  /// Quiescence probe: nothing uncommitted anywhere this node can see.
  bool idle() const override {
    return mempool_.empty() && own_pending_.empty() && proposals_.empty();
  }
  std::uint64_t blocks_broadcast() const override { return blocks_broadcast_; }

  // Durable storage (see IWireLedger).
  void set_commit_hook(CommitHook hook) override { commit_hook_ = std::move(hook); }
  void serialize_state(codec::Writer& w) const override;
  bool restore_state(codec::Reader& r) override;
  bool restore_block(codec::ByteView payload) override;
  std::uint64_t base_height() const override { return raw_base_; }

  std::uint32_t current_round() const { return cur_round_; }
  std::uint32_t proposer_for(std::uint64_t height1based, std::uint32_t round) const {
    return static_cast<std::uint32_t>((height1based + round) % cfg_.n);
  }

  // Byzantine-defence observability (tests, tooling, smoke greps).
  std::uint64_t equivocations_detected() const { return equivocations_detected_; }
  std::uint64_t vote_sig_rejects() const { return vote_sig_rejects_; }
  std::uint64_t cert_rejects() const { return cert_rejects_; }
  std::uint64_t votes_buffered() const { return votes_buffered_; }
  std::uint64_t votes_dropped_ahead() const { return votes_dropped_ahead_; }
  bool masked(std::uint32_t node) const {
    return node < masked_.size() && masked_[node];
  }
  std::uint32_t masked_count() const;
  const std::vector<EquivocationEvidence>& evidence() const { return evidence_; }
  /// Bounded-bookkeeping probe: rounds currently tracked across both vote
  /// maps (each holds exactly one fixed-size slot vector per round).
  std::size_t vote_rounds_tracked() const {
    return prevotes_.size() + precommits_.size();
  }

 private:
  struct MempoolEntry {
    std::string key;  ///< tx_dedup_key
    ledger::Transaction tx;
  };
  /// One of our own submissions, rebroadcast until committed.
  struct OwnSubmit {
    ledger::Transaction tx;
    std::uint32_t attempt = 0;
    sim::Time next_send = 0;
  };
  struct HeldProposal {
    wire::BlockMsg block;
    codec::Bytes raw;  ///< exact payload bytes (hash preimage; retransmit unit)
  };
  /// The one recorded vote of a voter in a round. A second hash from the
  /// same voter is equivocation, not a second entry — this is what bounds
  /// the vote maps at one slot per voter per round.
  struct VoteSlot {
    bool set = false;
    wire::ProposalHash hash{};
    crypto::Ed25519::Signature sig{};
  };
  using RoundVotes = std::vector<VoteSlot>;  ///< indexed by voter, size n

  /// A structurally valid signed vote/skip awaiting batch verification.
  struct PendingVote {
    wire::MsgType type = wire::MsgType::kPrevote;
    wire::VoteMsg vote;       ///< kRoundSkip rides here with hash zeroed
    codec::Bytes transcript;  ///< signing transcript (stable for the batch)
  };

  /// Buffered votes for height active+1, one slot per voter per frame
  /// type; replayed through the normal handlers when the height advances.
  struct FutureVotes {
    std::vector<std::optional<wire::VoteMsg>> prevotes;
    std::vector<std::optional<wire::VoteMsg>> precommits;
    std::vector<std::optional<wire::RoundSkipMsg>> skips;
  };

  std::uint32_t quorum() const { return 2 * cfg_.f + 1; }
  std::uint32_t skip_quorum() const { return cfg_.f + 1; }
  std::uint64_t active_height() const { return applied_ + 1; }

  void tick();
  void sync_tick();
  void maybe_propose();
  void maybe_prevote();
  void check_polka();
  void try_commit();
  void retransmit();
  void note_work();  ///< first work for this height arms the round deadline
  void broadcast(wire::MsgType type, codec::ByteView payload);
  /// Byzantine splits: even-id peers get `even`, odd-id peers get `odd`.
  void broadcast_split(wire::MsgType type, codec::ByteView even, codec::ByteView odd);
  void seal_and_broadcast_fresh();

  // Signing / verification.
  crypto::Ed25519::Signature sign_proposal(codec::ByteView block_bytes) const;
  crypto::Ed25519::Signature sign_vote(wire::MsgType type, const wire::VoteMsg& m) const;
  crypto::Ed25519::Signature sign_skip(const wire::RoundSkipMsg& m) const;
  /// Shared vote/skip frame entry: identity and height gating, future-height
  /// buffering, then the batch-verify queue. `type` selects the handler the
  /// verified vote is applied through.
  bool on_vote_frame(wire::MsgType type, EndpointId from, const wire::VoteMsg& m);
  void enqueue_verify(wire::MsgType type, const wire::VoteMsg& m);
  void drain_verify();
  /// Apply one signature-checked vote (or reject it). Re-validates height /
  /// round / masking: the world may have moved while the vote sat in the
  /// verification queue.
  void apply_vote(wire::MsgType type, const wire::VoteMsg& m, bool sig_valid);
  /// Record a verified (pre)vote; returns true if newly set. Detects and
  /// masks vote equivocation.
  bool record_vote(std::map<std::uint32_t, RoundVotes>& rounds, std::uint32_t round,
                   const wire::ProposalHash& hash, std::uint32_t voter,
                   const crypto::Ed25519::Signature& sig);
  /// Permanently mask `node` for equivocation; keeps the first evidence.
  void mask_node(std::uint32_t node, std::uint8_t kind, codec::ByteView first,
                 codec::ByteView second);
  void send_precommit(std::uint32_t round, const wire::ProposalHash& hash);
  void maybe_advance_round();
  /// Verify a certified block (parse + proposer signature + precommit
  /// quorum); returns the materialized proposal on success.
  std::optional<wire::ProposalMsg> check_certified(codec::ByteView cert_payload) const;
  /// Apply a committed proposal at active_height() and reset per-height
  /// state. `cert_raw` is the certified-block payload that proves the
  /// commit — it is what gets archived, WAL-logged, and served to sync.
  void commit_block(const wire::BlockMsg& block, codec::ByteView cert_raw);
  void replay_buffered_votes();

  ConsensusLedgerConfig cfg_;
  sim::Simulation& timers_;
  ITransport& transport_;
  sim::Time tick_interval_ = 0;

  // Committed state.
  ledger::TxTable table_;
  std::deque<std::shared_ptr<ledger::Block>> chain_;
  /// Committed CERTIFIED block payloads, byte-identical to what was
  /// verified; raw_blocks_[h-1-raw_base_] is what sync serves for height h.
  /// Heights <= raw_base_ were compacted into a snapshot and are gone.
  std::deque<codec::Bytes> raw_blocks_;
  std::function<void(const ledger::Block&)> app_cb_;
  std::uint64_t applied_ = 0;
  std::uint64_t raw_base_ = 0;
  std::unordered_set<std::string> committed_keys_;
  CommitHook commit_hook_;

  // Mempool (gossip-fed, pruned at commit).
  std::deque<MempoolEntry> mempool_;
  std::unordered_set<std::string> mempool_keys_;
  std::unordered_map<std::string, OwnSubmit> own_pending_;

  // Per-height consensus state, reset by commit_block.
  std::map<wire::ProposalHash, HeldProposal> proposals_;  ///< begin() = lowest hash
  std::map<std::uint32_t, RoundVotes> prevotes_;
  std::map<std::uint32_t, RoundVotes> precommits_;
  std::map<std::uint32_t, wire::VoteMsg> my_prevotes_;    ///< round -> vote sent
  std::map<std::uint32_t, wire::VoteMsg> my_precommits_;  ///< round -> vote sent
  std::set<std::uint32_t> proposed_rounds_;
  /// skip_want_[i] = 1 + highest round node i asked to skip (0 = none):
  /// f+1 nodes with skip_want_ > cur_round_ advance the round.
  std::vector<std::uint32_t> skip_want_;
  std::optional<wire::ProposalHash> lock_hash_;
  std::uint32_t lock_round_ = 0;
  std::uint32_t cur_round_ = 0;
  bool work_seen_ = false;         ///< height has something to commit
  sim::Time round_deadline_ = 0;   ///< armed while work_seen_
  sim::Time next_propose_time_ = 0;  ///< fresh-seal pacing
  sim::Time retry_at_ = 0;
  std::uint32_t retry_attempt_ = 0;

  // Byzantine defences (masking persists across heights and restarts).
  std::vector<bool> masked_;
  std::vector<EquivocationEvidence> evidence_;
  std::uint64_t equivocations_detected_ = 0;
  std::uint64_t vote_sig_rejects_ = 0;
  std::uint64_t cert_rejects_ = 0;
  std::uint64_t votes_buffered_ = 0;
  std::uint64_t votes_dropped_ahead_ = 0;
  std::deque<PendingVote> pending_verify_;
  bool verify_scheduled_ = false;
  FutureVotes future_;
  bool forged_this_height_ = false;  ///< byz.forge_votes pacing

  std::uint64_t appended_ = 0;
  std::uint64_t blocks_broadcast_ = 0;  ///< fresh proposals sealed here
  std::uint32_t sync_cursor_ = 0;
  bool started_ = false;
};

}  // namespace setchain::net
