#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/wire_ledger.hpp"
#include "sim/simulation.hpp"

namespace setchain::net {

struct ConsensusLedgerConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;  ///< crash-fault tolerance target (n >= 3f+1)
  std::uint32_t self = 0;
  /// Pacing for FRESH proposals: a proposer seals a new block from its
  /// mempool at most this often (same role as the sequencer's seal tick).
  sim::Time block_interval = sim::from_millis(150);
  std::uint64_t max_block_bytes = 500'000;
  /// Round liveness timeout: if a height has work pending and no block
  /// committed for this long, broadcast a round-skip (the proposer looks
  /// dead). f+1 skip wishes advance the round to the next proposer.
  sim::Time timeout_propose = sim::from_millis(3000);
  /// Base cadence for retransmitting consensus state (held proposal + own
  /// votes) and own uncommitted submissions; doubles per idle attempt,
  /// capped at 8x.
  sim::Time retry_interval = sim::from_millis(400);
  sim::Time sync_interval = sim::from_millis(400);
  std::size_t max_sync_blocks = 64;
};

/// Wire-level consensus block ledger: the CometbftSim state machine
/// (src/ledger/consensus.hpp) ported onto real frames, replacing the fixed
/// sequencer so a live cluster keeps the paper's f-tolerance — any f crashed
/// nodes (including every would-be proposer) and epochs keep committing.
///
/// Crash-fault Tendermint-lite, one active height H = applied+1 at a time:
///
///  * proposer_for(H, r) = (H + r) % n. The round-r proposer broadcasts a
///    kProposal (payload layout == kBlock); everyone hashes the payload
///    bytes (SHA-256) and votes on the hash, so ANY holder can retransmit
///    the original bytes past a crashed proposer.
///  * Each node prevotes at most once per round: its locked hash if locked,
///    else the lowest proposal hash it holds (a deterministic tie-break that
///    needs no leader), else it waits. 2f+1 prevotes for one (round, hash)
///    form a polka: the node locks that hash and precommits it, once per
///    round. 2f+1 precommits for one (round, hash) commit the proposal —
///    applied when the payload is held (retransmission fetches it if not).
///  * Locks persist across rounds within a height and are never released
///    (no unlock rule): a locked node only ever prevotes its lock, which
///    gives safety under crash faults without vote justifications. A
///    minority (<= f) stuck locked on a hash the majority abandoned heals
///    via block sync once the majority commits.
///  * Dead proposer: when work is pending and timeout_propose elapses with
///    no commit, a node broadcasts kRoundSkip for its current round and
///    rebroadcasts it every further timeout. Skip wishes from f+1 distinct
///    nodes (self included) advance the round; the new proposer rebroadcasts
///    its locked/held proposal rather than sealing fresh, so one height
///    converges on one payload.
///  * Submissions gossip: append() broadcasts kTxSubmit to every peer and
///    retransmits with capped backoff until the tx's content key lands in a
///    committed block; receivers dedup against mempool + committed history,
///    and commits prune the mempool, so every correct proposer eventually
///    holds (or has committed) every submission — P10 inclusion without a
///    distinguished node.
///  * Catch-up: committed proposal payloads are archived verbatim and served
///    byte-identical via rotating kBlockSyncRequest pulls; sync responses
///    commit directly (peers are honest in the crash model), which is also
///    how a lagging or stuck-locked node rejoins the active height.
///
/// Single-threaded like everything in src/net: frames and timer ticks run on
/// the owning NodeHost's simulation loop.
class ConsensusLedger final : public IWireLedger {
 public:
  ConsensusLedger(ConsensusLedgerConfig cfg, sim::Simulation& timers,
                  ITransport& transport);

  void start() override;

  // IBlockLedger. `append` returns the local submission ordinal (see
  // ReplicatedLedger::append for why that is enough in live deployments).
  ledger::TxIdx append(sim::NodeId origin, ledger::Transaction tx) override;
  void on_new_block(sim::NodeId node, std::function<void(const ledger::Block&)> cb) override;
  const ledger::TxTable& txs() const override { return table_; }
  std::uint64_t height() const override { return applied_; }

  // Frame entry points (NodeHost routes inbound frames here).
  void on_tx_submit(EndpointId from, wire::TxSubmit&& m) override;
  /// kBlock is not part of the consensus dialect (blocks travel as
  /// committed kProposal payloads inside sync responses): always false.
  bool on_block_frame(codec::ByteView payload) override;
  void on_sync_request(EndpointId from, const wire::BlockSyncRequest& m) override;
  void on_sync_response(const wire::BlockSyncResponse& m) override;
  bool on_proposal(EndpointId from, codec::ByteView payload) override;
  bool on_prevote(EndpointId from, const wire::VoteMsg& m) override;
  bool on_precommit(EndpointId from, const wire::VoteMsg& m) override;
  bool on_round_skip(EndpointId from, const wire::RoundSkipMsg& m) override;

  std::size_t pending_txs() const override {
    return mempool_.size() + own_pending_.size();
  }
  /// Quiescence probe: nothing uncommitted anywhere this node can see.
  bool idle() const override {
    return mempool_.empty() && own_pending_.empty() && proposals_.empty();
  }
  std::uint64_t blocks_broadcast() const override { return blocks_broadcast_; }

  // Durable storage (see IWireLedger).
  void set_commit_hook(CommitHook hook) override { commit_hook_ = std::move(hook); }
  void serialize_state(codec::Writer& w) const override;
  bool restore_state(codec::Reader& r) override;
  bool restore_block(codec::ByteView payload) override;
  std::uint64_t base_height() const override { return raw_base_; }

  std::uint32_t current_round() const { return cur_round_; }
  std::uint32_t proposer_for(std::uint64_t height1based, std::uint32_t round) const {
    return static_cast<std::uint32_t>((height1based + round) % cfg_.n);
  }

 private:
  struct MempoolEntry {
    std::string key;  ///< tx_dedup_key
    ledger::Transaction tx;
  };
  /// One of our own submissions, rebroadcast until committed.
  struct OwnSubmit {
    ledger::Transaction tx;
    std::uint32_t attempt = 0;
    sim::Time next_send = 0;
  };
  struct HeldProposal {
    wire::BlockMsg block;
    codec::Bytes raw;  ///< exact payload bytes (hash preimage; sync source)
  };
  /// Votes for one (round, hash): one slot per voter.
  using VoteBits = std::vector<bool>;

  std::uint32_t quorum() const { return 2 * cfg_.f + 1; }
  std::uint32_t skip_quorum() const { return cfg_.f + 1; }
  std::uint64_t active_height() const { return applied_ + 1; }

  void tick();
  void sync_tick();
  void maybe_propose();
  void maybe_prevote();
  void check_polka();
  void try_commit();
  void retransmit();
  void note_work();  ///< first work for this height arms the round deadline
  void broadcast(wire::MsgType type, codec::ByteView payload);
  void seal_and_broadcast_fresh();
  /// Record a (pre)vote; returns true if newly set.
  bool record_vote(std::map<std::uint32_t, std::map<wire::ProposalHash, VoteBits>>& rounds,
                   std::uint32_t round, const wire::ProposalHash& hash,
                   std::uint32_t voter);
  void send_precommit(std::uint32_t round, const wire::ProposalHash& hash);
  void maybe_advance_round();
  /// Apply a committed proposal at active_height() and reset per-height state.
  void commit_block(const wire::BlockMsg& block, codec::ByteView raw);

  ConsensusLedgerConfig cfg_;
  sim::Simulation& timers_;
  ITransport& transport_;
  sim::Time tick_interval_ = 0;

  // Committed state.
  ledger::TxTable table_;
  std::deque<std::shared_ptr<ledger::Block>> chain_;
  /// Committed proposal payloads, byte-identical to what was voted on;
  /// raw_blocks_[h-1-raw_base_] is what sync serves for height h. Heights
  /// <= raw_base_ were compacted into a snapshot and are gone.
  std::deque<codec::Bytes> raw_blocks_;
  std::function<void(const ledger::Block&)> app_cb_;
  std::uint64_t applied_ = 0;
  std::uint64_t raw_base_ = 0;
  std::unordered_set<std::string> committed_keys_;
  CommitHook commit_hook_;

  // Mempool (gossip-fed, pruned at commit).
  std::deque<MempoolEntry> mempool_;
  std::unordered_set<std::string> mempool_keys_;
  std::unordered_map<std::string, OwnSubmit> own_pending_;

  // Per-height consensus state, reset by commit_block.
  std::map<wire::ProposalHash, HeldProposal> proposals_;  ///< begin() = lowest hash
  std::map<std::uint32_t, std::map<wire::ProposalHash, VoteBits>> prevotes_;
  std::map<std::uint32_t, std::map<wire::ProposalHash, VoteBits>> precommits_;
  std::map<std::uint32_t, wire::VoteMsg> my_prevotes_;    ///< round -> vote sent
  std::map<std::uint32_t, wire::VoteMsg> my_precommits_;  ///< round -> vote sent
  std::set<std::uint32_t> proposed_rounds_;
  /// skip_want_[i] = 1 + highest round node i asked to skip (0 = none):
  /// f+1 nodes with skip_want_ > cur_round_ advance the round.
  std::vector<std::uint32_t> skip_want_;
  std::optional<wire::ProposalHash> lock_hash_;
  std::uint32_t lock_round_ = 0;
  std::uint32_t cur_round_ = 0;
  bool work_seen_ = false;         ///< height has something to commit
  sim::Time round_deadline_ = 0;   ///< armed while work_seen_
  sim::Time next_propose_time_ = 0;  ///< fresh-seal pacing
  sim::Time retry_at_ = 0;
  std::uint32_t retry_attempt_ = 0;

  std::uint64_t appended_ = 0;
  std::uint64_t blocks_broadcast_ = 0;  ///< fresh proposals sealed here
  std::uint32_t sync_cursor_ = 0;
  bool started_ = false;
};

}  // namespace setchain::net
