#include "net/loopback.hpp"

namespace setchain::net {

LoopbackHub::LoopbackHub(sim::Simulation& sim, std::uint32_t n, sim::Time latency)
    : sim_(sim), n_(n), latency_(latency) {
  transports_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    transports_.push_back(std::make_unique<LoopbackTransport>(*this, i));
  }
}

void LoopbackHub::install_faults(sim::FaultPlan plan, std::uint64_t seed) {
  injector_ = std::make_unique<sim::FaultInjector>(std::move(plan), seed);
}

EndpointId LoopbackHub::register_client(FrameHandler handler) {
  const EndpointId id = next_client_++;
  clients_[id] = std::move(handler);
  return id;
}

bool LoopbackHub::route(EndpointId from, EndpointId to, wire::MsgType type,
                        codec::ByteView payload) {
  const bool known =
      is_client_endpoint(to) ? clients_.contains(to) : to < transports_.size();
  if (!known) return false;

  codec::Bytes frame_bytes = wire::encode_frame(type, payload);
  if (frame_bytes.empty()) return false;  // oversized payload

  sim::Time extra = 0;
  if (injector_ && !is_client_endpoint(from) && !is_client_endpoint(to)) {
    // Same oracle, same precedence as the pointer-based Network: crashes,
    // partitions, and random loss drop the frame; spikes delay it.
    const auto verdict = injector_->on_message(
        sim_.now(), static_cast<sim::NodeId>(from), static_cast<sim::NodeId>(to));
    if (!verdict.deliver) {
      ++dropped_;
      return true;  // "sent", then lost in transit — like a dead TCP conn
    }
    extra = verdict.extra_delay;
    if (verdict.corrupt) {
      // Deterministic in-flight mangling: flip the final byte (for signed
      // consensus frames that is the signature tail) and one byte in the
      // middle of the payload. The header is left intact when a payload
      // exists, so the damage reaches the parsers and signature checks
      // rather than dying at the framer every time.
      frame_bytes.back() ^= 0xA5;
      if (frame_bytes.size() > wire::kHeaderSize + 1) {
        const std::size_t mid =
            wire::kHeaderSize + (frame_bytes.size() - wire::kHeaderSize) / 2;
        frame_bytes[mid] ^= 0x5A;
      }
      ++corrupted_;
    }
  }
  sim_.schedule_in(latency_ + extra,
                   [this, from, to, bytes = std::move(frame_bytes)]() mutable {
                     deliver(from, to, std::move(bytes));
                   });
  return true;
}

void LoopbackHub::deliver(EndpointId from, EndpointId to, codec::Bytes frame_bytes) {
  if (is_client_endpoint(to)) {
    const auto it = clients_.find(to);
    if (it == clients_.end()) return;
    wire::Frame f;
    std::size_t consumed = 0;
    if (wire::decode_frame(frame_bytes, f, consumed) != wire::DecodeStatus::kOk) return;
    it->second(from, std::move(f));
    return;
  }
  transports_[static_cast<std::size_t>(to)]->receive(from, frame_bytes);
}

bool LoopbackTransport::send(EndpointId to, wire::MsgType type,
                             codec::ByteView payload) {
  if (!hub_.route(self_, to, type, payload)) {
    ++counters_.send_drops;
    if (is_client_endpoint(to)) {
      ++counters_.send_drops_client;
    } else {
      ++counters_.send_drops_peer;
    }
    return false;
  }
  ++counters_.frames_sent;
  counters_.bytes_sent += wire::kHeaderSize + payload.size();
  return true;
}

void LoopbackTransport::receive(EndpointId from, codec::ByteView frame_bytes) {
  // Decode through the same streaming reader TCP uses: loopback runs
  // exercise the real codec end to end, not a shortcut.
  wire::FrameReader reader;
  reader.feed(frame_bytes);
  wire::Frame f;
  if (reader.next(f) != wire::DecodeStatus::kOk) {
    ++counters_.decode_errors;
    return;
  }
  ++counters_.frames_received;
  counters_.bytes_received += frame_bytes.size();
  if (handler_) handler_(from, std::move(f));
}

}  // namespace setchain::net
