#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "codec/byte_io.hpp"
#include "codec/bytes.hpp"
#include "core/element.hpp"
#include "core/epoch_record.hpp"
#include "core/proofs.hpp"
#include "crypto/ed25519.hpp"
#include "ledger/transaction.hpp"

namespace setchain::net::wire {

// ---------------------------------------------------------------------------
// Setchain wire protocol v1 — framing.
//
// NORMATIVE SPEC: docs/WIRE_FORMAT.md. Every constant, frame type, and field
// layout in this header is documented there; changes to either file must be
// mirrored in the other (the wire tests pin both directions).
//
// Frame layout (10-byte fixed header + payload):
//   magic    4 bytes  'S' 'E' 'T' 'C'
//   version  u8       kVersion (1)
//   type     u8       MsgType tag
//   length   u32le    payload byte count, <= kMaxPayloadBytes
//   payload  `length` bytes (per-type layout below)
// ---------------------------------------------------------------------------

inline constexpr std::array<std::uint8_t, 4> kMagic = {'S', 'E', 'T', 'C'};
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 10;
/// Hard payload cap: a length prefix above this is a protocol violation and
/// the stream is dead (prevents a hostile peer from forcing huge allocations).
inline constexpr std::size_t kMaxPayloadBytes = 8u << 20;  // 8 MiB

/// Frame type tags (docs/WIRE_FORMAT.md §Frame types).
enum class MsgType : std::uint8_t {
  // Connection bring-up (consumed by the transport layer, not the node).
  kHello = 0x01,

  // Client -> node RPC (request/response, client-chosen req_id correlation).
  kAddRequest = 0x10,
  kAddResponse = 0x11,
  kSnapshotRequest = 0x12,
  kSnapshotResponse = 0x13,
  kProofsRequest = 0x14,
  kProofsResponse = 0x15,
  kEpochRequest = 0x16,
  kEpochResponse = 0x17,

  // Server <-> server: replicated-ledger traffic.
  kTxSubmit = 0x20,
  kBlock = 0x21,
  kBlockSyncRequest = 0x22,
  kBlockSyncResponse = 0x23,

  // Server <-> server: consensus-mode ordering (proposal voting; only
  // spoken by clusters deployed with LedgerMode::kConsensus).
  kProposal = 0x24,
  kPrevote = 0x25,
  kPrecommit = 0x26,
  kRoundSkip = 0x27,

  // Server <-> server: Hashchain batch exchange (Request_batch service).
  kBatchRequest = 0x30,
  kBatchResponse = 0x31,
};

bool known_type(std::uint8_t t);
const char* type_name(MsgType t);

struct Frame {
  MsgType type = MsgType::kHello;
  codec::Bytes payload;
};

/// Non-owning frame: `payload` is a view into the decoder's input buffer.
/// Lifetime is the caller's problem — see FrameReader::next_view and
/// docs/WIRE_FORMAT.md "Zero-copy views" for the exact rules.
struct FrameView {
  MsgType type = MsgType::kHello;
  codec::ByteView payload;
};

/// Encode one frame (header + payload). Payloads above kMaxPayloadBytes are
/// a programming error (assert in debug, truncated streams otherwise never
/// leave this process: the encoder refuses and returns an empty buffer).
codec::Bytes encode_frame(MsgType type, codec::ByteView payload);

/// Same encoding, but into a caller-supplied (typically pooled) buffer:
/// `out` is cleared and refilled with header + payload. Returns false (and
/// leaves `out` empty) on an oversized payload. This is the hot-path
/// encoder — it reuses `out`'s capacity instead of allocating per frame.
bool encode_frame_into(codec::Bytes& out, MsgType type, codec::ByteView payload);

enum class DecodeStatus : std::uint8_t {
  kOk,
  kNeedMore,     ///< not enough bytes yet (stream: keep reading)
  kBadMagic,     ///< stream corrupt / not a Setchain peer
  kBadVersion,   ///< incompatible protocol version
  kBadType,      ///< unknown frame type tag
  kOversized,    ///< length prefix above kMaxPayloadBytes
};
const char* decode_status_name(DecodeStatus s);

/// One-shot decode of a frame at the start of `in`. On kOk, `consumed` is
/// the total frame size (header + payload). Any other status leaves
/// `consumed` at 0; statuses other than kNeedMore mean the stream can never
/// recover (close the connection).
DecodeStatus decode_frame(codec::ByteView in, Frame& out, std::size_t& consumed);

/// Zero-copy variant: on kOk, `out.payload` views into `in` (no copy). The
/// view is only valid while the bytes backing `in` stay put.
DecodeStatus decode_frame_view(codec::ByteView in, FrameView& out,
                               std::size_t& consumed);

/// Incremental frame reassembly over a byte stream (TCP). Feed received
/// bytes; poll frames until kNeedMore. A fatal status is sticky: the reader
/// refuses further frames (the transport closes the connection).
class FrameReader {
 public:
  void feed(codec::ByteView bytes);
  /// Extract the next complete frame. kOk fills `out`; kNeedMore means feed
  /// more bytes; anything else is fatal and sticky.
  DecodeStatus next(Frame& out);
  /// Zero-copy variant: on kOk, `out.payload` views into the reader's
  /// internal buffer. The view is INVALIDATED by the next feed() call
  /// (feed may compact the buffer); it survives further next_view() calls,
  /// so a receive loop may drain every buffered frame, hand the views to
  /// parse_*_view, and only then feed more bytes.
  DecodeStatus next_view(FrameView& out);
  bool failed() const { return fatal_ != DecodeStatus::kOk; }
  DecodeStatus error() const { return fatal_; }
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  codec::Bytes buf_;
  std::size_t pos_ = 0;
  DecodeStatus fatal_ = DecodeStatus::kOk;
};

// ---------------------------------------------------------------------------
// Payload layouts. Every parse_* is total over untrusted bytes: it returns
// nullopt on truncation, overlong varints, bad tags, out-of-range values,
// or trailing garbage (the payload must be consumed exactly).
// ---------------------------------------------------------------------------

/// Consensus wire dialect revision. Bumped when the consensus frame layouts
/// (kProposal/kPrevote/kPrecommit/kRoundSkip and the certified-block sync
/// payload) change incompatibly; mixed into cluster_id() for non-sequencer
/// modes so old consensus binaries are cleanly rejected at the Hello
/// handshake instead of mis-parsing signed frames. Revision 2 = signed
/// consensus frames (Ed25519 over domain-separated transcripts).
inline constexpr std::uint8_t kConsensusWireRevision = 2;

/// Identifies a cluster instance: every process derives the same value from
/// the shared (seed, n, f, algorithm, ledger_mode) deployment parameters, so
/// a daemon refuses peers/clients configured for a different cluster.
/// `ledger_mode` folds the ordering layer in (0 = fixed sequencer, the
/// historical value — ids for mode 0 are unchanged from v1 four-parameter
/// derivations): a consensus-mode daemon and a sequencer-mode daemon can
/// never join one cluster and deadlock on each other's ledger traffic.
/// Non-zero modes additionally mix kConsensusWireRevision, so binaries
/// speaking different consensus dialects split into disjoint clusters.
std::uint64_t cluster_id(std::uint64_t seed, std::uint32_t n, std::uint32_t f,
                         std::uint8_t algorithm, std::uint8_t ledger_mode = 0);

inline constexpr std::uint8_t kRoleServer = 0;
inline constexpr std::uint8_t kRoleClient = 1;

/// kHello: role u8, sender varint, cluster u64le.
struct Hello {
  std::uint8_t role = kRoleServer;
  std::uint64_t sender = 0;   ///< server: node id; client: PKI process id
  std::uint64_t cluster = 0;  ///< cluster_id() of the sender's configuration
};
codec::Bytes encode_hello(const Hello& h);
std::optional<Hello> parse_hello(codec::ByteView payload);

/// kAddRequest: req_id varint, element (kElementTag + element fields — the
/// same self-describing entry layout batches and ledger txs use).
struct AddRequest {
  std::uint64_t req_id = 0;
  core::Element element;
};
codec::Bytes encode_add_request(const AddRequest& m);
std::optional<AddRequest> parse_add_request(codec::ByteView payload);

/// kAddResponse: req_id varint, accepted u8 (0/1).
struct AddResponse {
  std::uint64_t req_id = 0;
  bool accepted = false;
};
codec::Bytes encode_add_response(const AddResponse& m);
std::optional<AddResponse> parse_add_response(codec::ByteView payload);

/// kSnapshotRequest / kProofsRequest / kEpochRequest share one shape:
/// req_id varint [, epoch varint for kProofsRequest].
struct SnapshotRequest {
  std::uint64_t req_id = 0;
};
codec::Bytes encode_snapshot_request(const SnapshotRequest& m);
std::optional<SnapshotRequest> parse_snapshot_request(codec::ByteView payload);

/// kSnapshotResponse: req_id varint, epoch varint, history count varint,
/// records (number varint, count varint, bytes varint, hash 64 raw, id
/// count varint, ids as sorted varint deltas), the_set count varint + ids
/// as sorted varint deltas. Delta coding: first id absolute, each later id
/// stored as (id - previous id); ids are strictly increasing.
struct SnapshotResponse {
  std::uint64_t req_id = 0;
  std::uint64_t epoch = 0;
  std::vector<core::EpochRecord> history;
  std::vector<core::ElementId> the_set;  ///< sorted ascending
};
codec::Bytes encode_snapshot_response(const SnapshotResponse& m);
std::optional<SnapshotResponse> parse_snapshot_response(codec::ByteView payload);

struct ProofsRequest {
  std::uint64_t req_id = 0;
  std::uint64_t epoch = 0;
};
codec::Bytes encode_proofs_request(const ProofsRequest& m);
std::optional<ProofsRequest> parse_proofs_request(codec::ByteView payload);

/// kProofsResponse: req_id varint, count varint, proofs (kEpochProofTag +
/// epoch-proof fields each).
struct ProofsResponse {
  std::uint64_t req_id = 0;
  std::vector<core::EpochProof> proofs;
};
codec::Bytes encode_proofs_response(const ProofsResponse& m);
std::optional<ProofsResponse> parse_proofs_response(codec::ByteView payload);

struct EpochRequest {
  std::uint64_t req_id = 0;
};
codec::Bytes encode_epoch_request(const EpochRequest& m);
std::optional<EpochRequest> parse_epoch_request(codec::ByteView payload);

/// kEpochResponse: req_id varint, epoch varint, node_id varint.
struct EpochResponse {
  std::uint64_t req_id = 0;
  std::uint64_t epoch = 0;
  std::uint64_t node_id = 0;
};
codec::Bytes encode_epoch_response(const EpochResponse& m);
std::optional<EpochResponse> parse_epoch_response(codec::ByteView payload);

/// kTxSubmit: kind u8, wire_size varint, data lp_bytes — one ledger
/// transaction forwarded to the sequencer. The same (kind, wire_size, data)
/// triple encodes each transaction inside kBlock payloads.
struct TxSubmit {
  ledger::Transaction tx;  ///< uid unset (the sequencer assigns it)
};
codec::Bytes encode_tx_submit(const ledger::Transaction& tx);
std::optional<TxSubmit> parse_tx_submit(codec::ByteView payload);

/// kBlock: height varint, proposer varint, tx count varint, txs (kTxSubmit
/// triple each). Heights are 1-based and delivered in order at every node.
struct BlockMsg {
  std::uint64_t height = 0;
  std::uint32_t proposer = 0;
  std::vector<ledger::Transaction> txs;
};
codec::Bytes encode_block(std::uint64_t height, std::uint32_t proposer,
                          const std::vector<const ledger::Transaction*>& txs);
std::optional<BlockMsg> parse_block(codec::ByteView payload);

/// Zero-copy forms of the bulky payloads: identical validation to the
/// owning parsers (they are implemented as wrappers over these), but tx /
/// batch bytes are views into the input payload instead of copies. Callers
/// use them to validate-and-hash, or to decide a frame is a duplicate,
/// BEFORE paying for materialization.
struct TxView {
  ledger::TxKind kind = ledger::TxKind::kElement;
  std::uint32_t wire_size = 0;
  codec::ByteView data;
};
struct BlockView {
  std::uint64_t height = 0;
  std::uint32_t proposer = 0;
  std::vector<TxView> txs;
};
std::optional<BlockView> parse_block_view(codec::ByteView payload);

/// kBlockSyncRequest: from_height varint ("send me blocks >= from_height").
struct BlockSyncRequest {
  std::uint64_t from_height = 0;
};
codec::Bytes encode_block_sync_request(const BlockSyncRequest& m);
std::optional<BlockSyncRequest> parse_block_sync_request(codec::ByteView payload);

/// kBlockSyncResponse: count varint, blocks (each an lp_bytes-wrapped kBlock
/// payload). Responses are capped (config) so one reply never exceeds the
/// frame limit; the requester keeps asking until caught up.
struct BlockSyncResponse {
  std::vector<codec::Bytes> blocks;  ///< kBlock payloads, ascending heights
};
codec::Bytes encode_block_sync_response(const std::vector<codec::ByteView>& blocks);
std::optional<BlockSyncResponse> parse_block_sync_response(codec::ByteView payload);

/// kProposal: a consensus-mode block proposal, SIGNED by its proposer.
/// Layout: block bytes (the kBlock layout: height varint, proposer varint,
/// tx count varint, txs) followed by the proposer's 64-byte Ed25519
/// signature over proposal_transcript(cluster, block bytes). The 32-byte
/// proposal hash that every vote carries is SHA-256 of the FULL payload
/// (block bytes ‖ signature), so ANY holder can retransmit the original
/// bytes past a crashed proposer and the hash stays stable while the
/// signature still binds the payload to its author. No round field: a
/// round-r' re-broadcast of a round-r proposal is byte-identical (prevote
/// discipline plus the signature, not the transport sender, carries the
/// safety argument — see ConsensusLedger).
struct ProposalMsg {
  BlockMsg block;
  codec::Bytes raw;                  ///< exact payload bytes (vote-hash preimage)
  std::size_t block_bytes_len = 0;   ///< prefix of `raw` the signature covers
  crypto::Ed25519::Signature sig{};  ///< proposer signature (transcript-bound)
};
std::optional<ProposalMsg> parse_proposal(codec::ByteView payload);

/// Zero-copy kProposal: validates the identical grammar to parse_proposal
/// (the owning parser is a wrapper over this one, so the two can never
/// disagree on which bytes are well-formed — an honest retransmitter of a
/// payload this parser accepted is never blamed for it downstream).
struct SignedProposalView {
  BlockView block;
  codec::ByteView block_bytes;       ///< signed prefix of the payload
  crypto::Ed25519::Signature sig{};
};
std::optional<SignedProposalView> parse_signed_proposal_view(codec::ByteView payload);

/// Assemble a kProposal payload: `block_bytes` must be encode_block()
/// output; `sig` the proposer's signature over
/// proposal_transcript(cluster, block_bytes).
codec::Bytes encode_signed_proposal(codec::ByteView block_bytes,
                                    const crypto::Ed25519::Signature& sig);

inline constexpr std::size_t kProposalHashSize = 32;
using ProposalHash = std::array<std::uint8_t, kProposalHashSize>;

/// kPrevote / kPrecommit share one layout: height varint, round varint,
/// voter varint, proposal hash 32 raw (SHA-256 of the kProposal payload),
/// voter signature 64 raw over vote_transcript(cluster, type, ...). The
/// signature binds the vote to the cluster AND the frame type, so a prevote
/// can never be replayed as a precommit (or into another deployment).
struct VoteMsg {
  std::uint64_t height = 0;
  std::uint32_t round = 0;
  std::uint32_t voter = 0;
  ProposalHash hash{};
  crypto::Ed25519::Signature sig{};
};
codec::Bytes encode_vote(const VoteMsg& m);
std::optional<VoteMsg> parse_vote(codec::ByteView payload);

/// kRoundSkip: height varint, round varint, voter varint, voter signature
/// 64 raw over round_skip_transcript(cluster, ...) — "I want to move past
/// round `round` of `height`" (the proposer looks dead from here).
struct RoundSkipMsg {
  std::uint64_t height = 0;
  std::uint32_t round = 0;
  std::uint32_t voter = 0;
  crypto::Ed25519::Signature sig{};
};
codec::Bytes encode_round_skip(const RoundSkipMsg& m);
std::optional<RoundSkipMsg> parse_round_skip(codec::ByteView payload);

// ---------------------------------------------------------------------------
// Consensus signing transcripts. Signatures never cover raw frame payloads
// directly: each is over a domain-separated transcript that mixes the
// cluster id (no cross-deployment replay) and, for votes, the frame type
// (no prevote->precommit replay). Layouts are pinned in docs/WIRE_FORMAT.md.
// ---------------------------------------------------------------------------

/// Proposer transcript: domain tag ‖ cluster u64le ‖ block bytes.
codec::Bytes proposal_transcript(std::uint64_t cluster, codec::ByteView block_bytes);

/// Vote transcript (type must be kPrevote or kPrecommit):
/// domain tag ‖ cluster u64le ‖ type u8 ‖ height u64le ‖ round u32le ‖ hash 32.
codec::Bytes vote_transcript(std::uint64_t cluster, MsgType type,
                             std::uint64_t height, std::uint32_t round,
                             const ProposalHash& hash);

/// Round-skip transcript: domain tag ‖ cluster u64le ‖ height u64le ‖ round u32le.
codec::Bytes round_skip_transcript(std::uint64_t cluster, std::uint64_t height,
                                   std::uint32_t round);

// ---------------------------------------------------------------------------
// Certified blocks: the consensus-mode block-sync / durability unit. A bare
// proposal proves nothing about commitment, so consensus-mode
// kBlockSyncResponse entries (and WAL block records) wrap the proposal in
// the precommit quorum that committed it — a receiver verifies the
// certificate instead of trusting the peer that served it.
// ---------------------------------------------------------------------------

/// One precommit of a commit certificate: the voter id and its signature
/// over vote_transcript(cluster, kPrecommit, height, round, hash).
struct CommitVote {
  std::uint32_t voter = 0;
  crypto::Ed25519::Signature sig{};
};

/// Certified block layout: proposal lp_bytes (a full signed kProposal
/// payload), round varint (the round the quorum formed in), vote count
/// varint, votes (voter varint ‖ sig 64 each, voter ids STRICTLY
/// increasing — the parser rejects duplicates, so a certificate can never
/// count one voter twice).
struct CertifiedBlockMsg {
  codec::Bytes proposal;  ///< signed kProposal payload, verbatim
  std::uint32_t round = 0;
  std::vector<CommitVote> votes;
};
codec::Bytes encode_certified_block(codec::ByteView proposal, std::uint32_t round,
                                    const std::vector<CommitVote>& votes);
std::optional<CertifiedBlockMsg> parse_certified_block(codec::ByteView payload);

/// kBatchRequest: requester varint, hash 64 raw (Request_batch(h)).
struct BatchRequest {
  std::uint64_t requester = 0;
  core::EpochHash hash{};
};
codec::Bytes encode_batch_request(const BatchRequest& m);
std::optional<BatchRequest> parse_batch_request(codec::ByteView payload);

/// kBatchResponse: hash 64 raw, batch lp_bytes (serialize_batch output;
/// the receiver re-parses and re-hashes — the responder may be Byzantine).
struct BatchResponse {
  core::EpochHash hash{};
  codec::Bytes batch;
};
codec::Bytes encode_batch_response(const BatchResponse& m);
std::optional<BatchResponse> parse_batch_response(codec::ByteView payload);

/// Zero-copy kBatchResponse: `batch` views into the payload (see TxView).
struct BatchResponseView {
  core::EpochHash hash{};
  codec::ByteView batch;
};
std::optional<BatchResponseView> parse_batch_response_view(codec::ByteView payload);

}  // namespace setchain::net::wire
