#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "api/node.hpp"
#include "net/loopback.hpp"
#include "net/wire.hpp"

namespace setchain::net {

/// Blocking request/response channel from a client to ONE node. One call in
/// flight at a time (QuorumClient is sequential); the response to a call is
/// the next frame the node sends on this channel.
class IRpcChannel {
 public:
  virtual ~IRpcChannel() = default;

  /// Send one `type` frame and wait for the node's reply. nullopt on
  /// timeout or a dead/unreachable connection — the caller treats the node
  /// as unreachable for this call (it may recover later).
  virtual std::optional<wire::Frame> call(wire::MsgType type, codec::ByteView payload,
                                          std::chrono::milliseconds timeout) = 0;
};

/// Real-socket channel: lazily connects (and re-connects after failures),
/// introduces itself with a client Hello, then speaks framed RPC.
class TcpRpcChannel final : public IRpcChannel {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::uint64_t client_id = 0;  ///< PKI process id of this client
    std::uint64_t cluster = 0;    ///< wire::cluster_id of the deployment
  };
  explicit TcpRpcChannel(Config cfg) : cfg_(std::move(cfg)) {}
  ~TcpRpcChannel() override;

  TcpRpcChannel(const TcpRpcChannel&) = delete;
  TcpRpcChannel& operator=(const TcpRpcChannel&) = delete;

  std::optional<wire::Frame> call(wire::MsgType type, codec::ByteView payload,
                                  std::chrono::milliseconds timeout) override;

 private:
  /// Non-blocking connect + client Hello, all bounded by `deadline`: a
  /// silent/blackholed peer costs at most the caller's RPC timeout.
  bool ensure_connected(std::chrono::steady_clock::time_point deadline);
  void disconnect();

  Config cfg_;
  int fd_ = -1;
};

/// Loopback channel for in-process wire-protocol clusters: frames travel
/// through the LoopbackHub and the shared simulation is pumped (in small
/// virtual-time slices) until the reply lands. `timeout` is interpreted in
/// VIRTUAL time — deterministic like everything else on the hub.
class LoopbackRpcChannel final : public IRpcChannel {
 public:
  /// `hub` must outlive the channel (tests own both).
  LoopbackRpcChannel(LoopbackHub& hub, std::uint32_t target_node);
  /// Unregisters the endpoint: a reply still queued in the simulation
  /// after a timed-out call is dropped by the hub instead of invoking a
  /// handler whose captures are gone.
  ~LoopbackRpcChannel() override;

  std::optional<wire::Frame> call(wire::MsgType type, codec::ByteView payload,
                                  std::chrono::milliseconds timeout) override;

 private:
  LoopbackHub& hub_;
  std::uint32_t target_;
  EndpointId endpoint_;
  std::optional<wire::Frame> pending_;
};

/// TCP/loopback-backed ISetchainNode: the client-side stub that lets
/// QuorumClient (and everything else written against the node interface)
/// talk to a live cluster unchanged.
///
/// Lifetimes: snapshot() returns views into caches owned by this stub,
/// valid until the NEXT snapshot() call (remote state is copied, exactly
/// what the interface contract demands of quorum readers). A node that
/// fails to answer within the RPC timeout serves the same empty
/// views/refusals a crashed in-process server does — unreachable and down
/// are indistinguishable to a client, as in the paper's model.
class RemoteNode final : public api::ISetchainNode {
 public:
  RemoteNode(std::unique_ptr<IRpcChannel> channel, crypto::ProcessId node_id,
             std::chrono::milliseconds rpc_timeout = std::chrono::milliseconds(2000));

  bool add(core::Element e) override;
  api::NodeSnapshot snapshot() const override;
  const std::vector<core::EpochProof>& proofs_for_epoch(
      std::uint64_t epoch_number) const override;
  std::uint64_t epoch() const override;
  crypto::ProcessId node_id() const override { return node_id_; }

  std::uint64_t rpc_failures() const { return failures_; }

 private:
  std::optional<wire::Frame> call(wire::MsgType type, codec::ByteView payload) const;

  std::unique_ptr<IRpcChannel> channel_;
  crypto::ProcessId node_id_;
  std::chrono::milliseconds timeout_;

  // RPC bookkeeping + response caches (mutable: reads are RPCs).
  mutable std::uint64_t next_req_ = 1;
  mutable std::uint64_t failures_ = 0;
  mutable std::unordered_set<core::ElementId> the_set_cache_;
  mutable std::vector<core::EpochRecord> history_cache_;
  mutable std::map<std::uint64_t, std::vector<core::EpochProof>> proofs_cache_;
};

}  // namespace setchain::net
