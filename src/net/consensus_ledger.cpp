#include "net/consensus_ledger.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace setchain::net {

ConsensusLedger::ConsensusLedger(ConsensusLedgerConfig cfg, sim::Simulation& timers,
                                 ITransport& transport)
    : cfg_(cfg), timers_(timers), transport_(transport) {
  // Same single-frame invariant as the sequencer ledger: a proposal must fit
  // a kProposal broadcast and ride alone in a kBlockSyncResponse.
  cfg_.max_block_bytes = std::min(cfg_.max_block_bytes, wire::kMaxPayloadBytes / 2);
  // One recurring tick drives proposing, deadlines and retransmission; keep
  // it a few times finer than the shortest timer it serves.
  tick_interval_ = std::max<sim::Time>(
      sim::from_millis(10), std::min(cfg_.block_interval, cfg_.timeout_propose) / 3);
}

void ConsensusLedger::start() {
  if (started_) return;
  started_ = true;
  skip_want_.assign(cfg_.n, 0);
  const sim::Time now = timers_.now();
  round_deadline_ = now + cfg_.timeout_propose;
  retry_at_ = now + cfg_.retry_interval;
  timers_.schedule_in(tick_interval_, [this] { tick(); });
  timers_.schedule_in(cfg_.sync_interval, [this] { sync_tick(); });
}

void ConsensusLedger::broadcast(wire::MsgType type, codec::ByteView payload) {
  for (std::uint32_t peer = 0; peer < cfg_.n; ++peer) {
    if (peer == cfg_.self) continue;
    transport_.send(peer, type, payload);
  }
}

void ConsensusLedger::note_work() {
  if (work_seen_) return;
  work_seen_ = true;
  round_deadline_ = timers_.now() + cfg_.timeout_propose;
}

ledger::TxIdx ConsensusLedger::append(sim::NodeId origin, ledger::Transaction tx) {
  (void)origin;  // every tx of this node funnels through its own transport
  const auto ordinal = static_cast<ledger::TxIdx>(appended_++);
  std::string key = tx_dedup_key(tx);
  if (committed_keys_.count(key) || mempool_keys_.count(key)) return ordinal;
  // Gossip to every peer: any of them may end up proposing the block this
  // tx commits in. Rebroadcast with capped backoff until committed.
  broadcast(wire::MsgType::kTxSubmit, wire::encode_tx_submit(tx));
  auto& own = own_pending_[key];
  own.tx = tx;
  own.attempt = 0;
  own.next_send = timers_.now() + cfg_.retry_interval;
  mempool_keys_.insert(key);
  mempool_.push_back(MempoolEntry{std::move(key), std::move(tx)});
  note_work();
  return ordinal;
}

void ConsensusLedger::on_new_block(sim::NodeId node,
                                   std::function<void(const ledger::Block&)> cb) {
  (void)node;  // one node per process: only the local callback exists
  app_cb_ = std::move(cb);
}

void ConsensusLedger::on_tx_submit(EndpointId from, wire::TxSubmit&& m) {
  (void)from;
  std::string key = tx_dedup_key(m.tx);
  // Dedup against history AND mempool: peers retransmit until committed.
  if (committed_keys_.count(key) || mempool_keys_.count(key)) return;
  mempool_keys_.insert(key);
  mempool_.push_back(MempoolEntry{std::move(key), std::move(m.tx)});
  note_work();
}

bool ConsensusLedger::on_block_frame(codec::ByteView payload) {
  (void)payload;  // consensus clusters never speak bare kBlock
  return false;
}

bool ConsensusLedger::on_proposal(EndpointId from, codec::ByteView payload) {
  (void)from;  // any holder may retransmit, so the sender need not be the proposer
  // Validate and dedup on a zero-copy view first: proposals are rebroadcast
  // by every holder, so most arrivals are duplicates — those are dropped
  // after a hash over the payload, without materializing a single tx.
  const auto v = wire::parse_block_view(payload);
  if (!v) return false;
  if (v->proposer >= cfg_.n) return false;
  if (v->height != active_height()) return true;  // stale/ahead: ignore
  const wire::ProposalHash hash = crypto::Sha256::hash(payload);
  if (proposals_.contains(hash)) return true;
  auto m = wire::parse_proposal(payload);  // first sighting: materialize
  if (!m) return false;
  if (proposals_.emplace(hash, HeldProposal{std::move(m->block), std::move(m->raw)})
          .second) {
    note_work();
    maybe_prevote();
    check_polka();
    try_commit();  // precommit quorum may have been waiting on this payload
  }
  return true;
}

bool ConsensusLedger::on_prevote(EndpointId from, const wire::VoteMsg& m) {
  if (m.voter >= cfg_.n || m.voter != from) return false;
  if (m.height != active_height()) return true;  // stale/ahead: ignore
  if (record_vote(prevotes_, m.round, m.hash, m.voter)) {
    note_work();
    check_polka();
  }
  return true;
}

bool ConsensusLedger::on_precommit(EndpointId from, const wire::VoteMsg& m) {
  if (m.voter >= cfg_.n || m.voter != from) return false;
  if (m.height != active_height()) return true;  // stale/ahead: ignore
  if (record_vote(precommits_, m.round, m.hash, m.voter)) {
    note_work();
    try_commit();
  }
  return true;
}

bool ConsensusLedger::on_round_skip(EndpointId from, const wire::RoundSkipMsg& m) {
  if (m.voter >= cfg_.n || m.voter != from) return false;
  if (m.height != active_height()) return true;  // stale/ahead: ignore
  skip_want_[m.voter] = std::max(skip_want_[m.voter], m.round + 1);
  note_work();
  maybe_advance_round();
  return true;
}

bool ConsensusLedger::record_vote(
    std::map<std::uint32_t, std::map<wire::ProposalHash, VoteBits>>& rounds,
    std::uint32_t round, const wire::ProposalHash& hash, std::uint32_t voter) {
  VoteBits& bits = rounds[round][hash];
  if (bits.empty()) bits.assign(cfg_.n, false);
  if (bits[voter]) return false;
  bits[voter] = true;
  return true;
}

void ConsensusLedger::tick() {
  timers_.schedule_in(tick_interval_, [this] { tick(); });
  maybe_propose();
  maybe_prevote();
  check_polka();
  try_commit();

  const sim::Time now = timers_.now();
  if (work_seen_ && now >= round_deadline_) {
    // No commit despite pending work: the round proposer looks dead. Ask to
    // skip (and re-ask every further timeout — skips may be lost too).
    skip_want_[cfg_.self] = std::max(skip_want_[cfg_.self], cur_round_ + 1);
    const wire::RoundSkipMsg m{active_height(), cur_round_, cfg_.self};
    broadcast(wire::MsgType::kRoundSkip, wire::encode_round_skip(m));
    round_deadline_ = now + cfg_.timeout_propose;
    maybe_advance_round();
  }

  // Own submissions: per-entry capped backoff, independent of consensus
  // retransmission (a lost kTxSubmit must not wait behind a quiet height).
  for (auto& [key, e] : own_pending_) {
    if (e.next_send > now) continue;
    broadcast(wire::MsgType::kTxSubmit, wire::encode_tx_submit(e.tx));
    e.attempt = std::min<std::uint32_t>(e.attempt + 1, 3);
    e.next_send = now + cfg_.retry_interval * (sim::Time{1} << e.attempt);
  }

  if (now >= retry_at_) {
    retransmit();
    retry_attempt_ = std::min<std::uint32_t>(retry_attempt_ + 1, 3);
    retry_at_ = now + cfg_.retry_interval * (sim::Time{1} << retry_attempt_);
  }
}

void ConsensusLedger::maybe_propose() {
  if (proposer_for(active_height(), cur_round_) != cfg_.self) return;
  if (proposed_rounds_.count(cur_round_)) return;
  if (lock_hash_) {
    // Locked: only ever re-offer the locked payload (if held; otherwise the
    // holders' retransmission will deliver it first).
    const auto it = proposals_.find(*lock_hash_);
    if (it == proposals_.end()) return;
    broadcast(wire::MsgType::kProposal, it->second.raw);
  } else if (!proposals_.empty()) {
    // Re-offer the lowest held proposal rather than sealing a competing
    // one: one height should converge on one payload.
    broadcast(wire::MsgType::kProposal, proposals_.begin()->second.raw);
  } else if (!mempool_.empty() && timers_.now() >= next_propose_time_) {
    seal_and_broadcast_fresh();
  } else {
    return;
  }
  proposed_rounds_.insert(cur_round_);
  maybe_prevote();
}

void ConsensusLedger::seal_and_broadcast_fresh() {
  // Pack up to max_block_bytes of mempool txs in arrival order. The txs
  // STAY in the mempool until committed — the proposal may lose its round.
  std::vector<const ledger::Transaction*> block_txs;
  wire::BlockMsg block;
  block.height = active_height();
  block.proposer = cfg_.self;
  std::uint64_t bytes = 0;
  for (const auto& entry : mempool_) {
    const std::uint64_t size = entry.tx.wire_size;
    if (!block_txs.empty() && bytes + size > cfg_.max_block_bytes) break;
    block_txs.push_back(&entry.tx);
    block.txs.push_back(entry.tx);
    bytes += size;
  }
  codec::Bytes raw =
      wire::encode_block(block.height, block.proposer, block_txs);
  const wire::ProposalHash hash = crypto::Sha256::hash(raw);
  broadcast(wire::MsgType::kProposal, raw);
  proposals_.emplace(hash, HeldProposal{std::move(block), std::move(raw)});
  ++blocks_broadcast_;
  next_propose_time_ = timers_.now() + cfg_.block_interval;
  note_work();
}

void ConsensusLedger::maybe_prevote() {
  if (my_prevotes_.count(cur_round_)) return;
  wire::ProposalHash hash;
  if (lock_hash_) {
    hash = *lock_hash_;  // locked nodes only ever prevote their lock
  } else if (!proposals_.empty()) {
    hash = proposals_.begin()->first;  // deterministic leaderless tie-break
  } else {
    return;  // nothing to vote on yet
  }
  wire::VoteMsg m;
  m.height = active_height();
  m.round = cur_round_;
  m.voter = cfg_.self;
  m.hash = hash;
  my_prevotes_[cur_round_] = m;
  record_vote(prevotes_, m.round, m.hash, m.voter);
  broadcast(wire::MsgType::kPrevote, wire::encode_vote(m));
  check_polka();
}

void ConsensusLedger::check_polka() {
  // A polka (2f+1 prevotes for one (round, hash)) locks the hash and
  // triggers our precommit for that round. Late polkas from earlier rounds
  // still count — commits are valid from any round — but we never vote in
  // rounds we have not reached.
  //
  // Collect first, act after: send_precommit may complete a commit quorum,
  // and commit_block clears prevotes_ — sending mid-iteration would leave
  // this loop walking a destroyed map.
  std::vector<std::pair<std::uint32_t, wire::ProposalHash>> to_precommit;
  for (const auto& [round, by_hash] : prevotes_) {
    if (round > cur_round_) break;
    for (const auto& [hash, bits] : by_hash) {
      if (static_cast<std::uint32_t>(std::count(bits.begin(), bits.end(), true)) <
          quorum()) {
        continue;
      }
      if (!lock_hash_ || round >= lock_round_) {
        lock_hash_ = hash;
        lock_round_ = round;
      }
      if (!my_precommits_.count(round)) to_precommit.emplace_back(round, hash);
    }
  }
  const std::uint64_t height_before = applied_;
  for (const auto& [round, hash] : to_precommit) {
    if (applied_ != height_before) break;  // committed: votes are for a closed height
    if (!my_precommits_.count(round)) send_precommit(round, hash);
  }
}

void ConsensusLedger::send_precommit(std::uint32_t round,
                                     const wire::ProposalHash& hash) {
  wire::VoteMsg m;
  m.height = active_height();
  m.round = round;
  m.voter = cfg_.self;
  m.hash = hash;
  my_precommits_[round] = m;
  record_vote(precommits_, m.round, m.hash, m.voter);
  broadcast(wire::MsgType::kPrecommit, wire::encode_vote(m));
  try_commit();
}

void ConsensusLedger::try_commit() {
  for (const auto& [round, by_hash] : precommits_) {
    for (const auto& [hash, bits] : by_hash) {
      if (static_cast<std::uint32_t>(std::count(bits.begin(), bits.end(), true)) <
          quorum()) {
        continue;
      }
      const auto it = proposals_.find(hash);
      if (it == proposals_.end()) continue;  // retransmission will deliver it
      // Move the payload out first: commit_block resets proposals_.
      const HeldProposal held = std::move(it->second);
      commit_block(held.block, held.raw);
      return;
    }
  }
}

void ConsensusLedger::maybe_advance_round() {
  bool advanced = false;
  for (;;) {
    std::uint32_t wanting = 0;
    for (const auto want : skip_want_) {
      if (want > cur_round_) ++wanting;
    }
    if (wanting < skip_quorum()) break;
    ++cur_round_;
    advanced = true;
  }
  if (!advanced) return;
  const sim::Time now = timers_.now();
  round_deadline_ = now + cfg_.timeout_propose;
  retry_attempt_ = 0;
  retry_at_ = now + cfg_.retry_interval;
  maybe_propose();
  maybe_prevote();
  check_polka();
  try_commit();
}

void ConsensusLedger::retransmit() {
  // Any holder re-offers the relevant proposal: this is what routes payload
  // bytes around a crashed proposer (votes name only the hash).
  if (!proposals_.empty()) {
    auto it = proposals_.begin();
    if (lock_hash_) {
      const auto locked = proposals_.find(*lock_hash_);
      if (locked != proposals_.end()) it = locked;
    }
    broadcast(wire::MsgType::kProposal, it->second.raw);
  }
  if (const auto it = my_prevotes_.find(cur_round_); it != my_prevotes_.end()) {
    broadcast(wire::MsgType::kPrevote, wire::encode_vote(it->second));
  }
  if (const auto it = my_precommits_.find(cur_round_); it != my_precommits_.end()) {
    broadcast(wire::MsgType::kPrecommit, wire::encode_vote(it->second));
  }
}

void ConsensusLedger::commit_block(const wire::BlockMsg& block, codec::ByteView raw) {
  auto applied = std::make_shared<ledger::Block>();
  applied->height = block.height;
  applied->proposer = block.proposer;
  applied->proposed_at = timers_.now();
  applied->first_commit_at = timers_.now();
  for (const auto& tx : block.txs) {
    std::string key = tx_dedup_key(tx);
    // Deterministic safety net: committed_keys_ is a pure function of the
    // committed prefix, so every node skips exactly the same duplicates.
    if (!committed_keys_.insert(key).second) continue;
    own_pending_.erase(key);
    mempool_keys_.erase(key);
    applied->bytes += tx.wire_size;
    applied->txs.push_back(table_.add(tx));
  }
  if (!mempool_.empty()) {
    std::deque<MempoolEntry> kept;
    for (auto& entry : mempool_) {
      if (mempool_keys_.count(entry.key)) kept.push_back(std::move(entry));
    }
    mempool_.swap(kept);
  }
  raw_blocks_.emplace_back(raw.begin(), raw.end());
  chain_.push_back(applied);
  applied_ = applied->height;
  // WAL the exact committed payload (covers both the vote-quorum and the
  // sync-response commit paths). Unset during recovery replay, so replayed
  // blocks are never re-logged.
  if (commit_hook_) commit_hook_(applied->height, raw);

  // Fresh height: all consensus state was scoped to the one we just closed.
  proposals_.clear();
  prevotes_.clear();
  precommits_.clear();
  my_prevotes_.clear();
  my_precommits_.clear();
  proposed_rounds_.clear();
  skip_want_.assign(cfg_.n, 0);
  lock_hash_.reset();
  lock_round_ = 0;
  cur_round_ = 0;
  work_seen_ = !mempool_.empty();
  const sim::Time now = timers_.now();
  round_deadline_ = now + cfg_.timeout_propose;
  retry_attempt_ = 0;
  retry_at_ = now + cfg_.retry_interval;

  if (app_cb_) app_cb_(*chain_.back());
  maybe_propose();
  maybe_prevote();
}

void ConsensusLedger::sync_tick() {
  timers_.schedule_in(cfg_.sync_interval, [this] { sync_tick(); });
  // Rotate across every peer: any live node serves the committed chain.
  std::uint32_t target = sync_cursor_++ % cfg_.n;
  if (target == cfg_.self) target = sync_cursor_++ % cfg_.n;
  const wire::BlockSyncRequest req{applied_ + 1};
  transport_.send(target, wire::MsgType::kBlockSyncRequest,
                  wire::encode_block_sync_request(req));
}

void ConsensusLedger::on_sync_request(EndpointId from, const wire::BlockSyncRequest& m) {
  // Heights at or below raw_base_ were compacted into a snapshot: they
  // cannot be served, and the requester's rotation finds a peer that still
  // holds them (or one that recovered from an older snapshot).
  if (m.from_height == 0 || m.from_height > applied_ ||
      m.from_height <= raw_base_) {
    return;
  }
  std::vector<codec::ByteView> views;
  std::uint64_t bytes = 0;
  for (std::uint64_t h = m.from_height;
       h <= applied_ && views.size() < cfg_.max_sync_blocks; ++h) {
    const codec::Bytes& b = raw_blocks_[h - 1 - raw_base_];  // committed bytes, verbatim
    if (!views.empty() && bytes + b.size() > wire::kMaxPayloadBytes / 2) break;
    bytes += b.size();
    views.emplace_back(b);
  }
  transport_.send(from, wire::MsgType::kBlockSyncResponse,
                  wire::encode_block_sync_response(views));
}

void ConsensusLedger::on_sync_response(const wire::BlockSyncResponse& m) {
  for (const auto& payload : m.blocks) {
    auto b = wire::parse_proposal(payload);
    if (!b) return;
    // Sync sources only serve COMMITTED blocks (honest peers, crash model),
    // so apply directly; any in-flight consensus state for this height is
    // abandoned by commit_block's reset.
    if (b->block.height != active_height()) continue;
    commit_block(b->block, b->raw);
  }
}

namespace {
constexpr std::uint8_t kConsensusStateVersion = 1;
}

void ConsensusLedger::serialize_state(codec::Writer& w) const {
  w.u8(kConsensusStateVersion);
  w.varint(applied_);
  w.varint(appended_);
  w.varint(table_.size());
  w.varint(committed_keys_.size());
  for (const std::string& key : committed_keys_) {
    w.lp_bytes(codec::ByteView(reinterpret_cast<const std::uint8_t*>(key.data()),
                               key.size()));
  }
}

bool ConsensusLedger::restore_state(codec::Reader& r) {
  const auto version = r.u8();
  if (!version || *version != kConsensusStateVersion) return false;
  const auto applied = r.varint();
  const auto appended = r.varint();
  const auto tx_count = r.varint();
  const auto key_count = r.varint();
  if (!applied || !appended || !tx_count || !key_count) return false;
  applied_ = *applied;
  raw_base_ = *applied;  // everything below lives only in the snapshot
  appended_ = *appended;
  table_.set_base(static_cast<ledger::TxIdx>(*tx_count));
  committed_keys_.clear();
  for (std::uint64_t i = 0; i < *key_count; ++i) {
    const auto key = r.lp_bytes();
    if (!key) return false;
    committed_keys_.emplace(reinterpret_cast<const char*>(key->data()), key->size());
  }
  return true;
}

bool ConsensusLedger::restore_block(codec::ByteView payload) {
  auto b = wire::parse_proposal(payload);
  if (!b) return false;
  if (b->block.height != active_height()) return false;
  // The WAL record IS a committed proposal payload: reuse the sync-response
  // commit path. The mempool is empty during recovery, so the propose /
  // prevote kicks at the end of commit_block are no-ops, and the commit
  // hook is not installed yet, so nothing is re-logged. Not-yet-started:
  // skip_want_ may be empty, which assign() in commit_block handles.
  if (skip_want_.size() != cfg_.n) skip_want_.assign(cfg_.n, 0);
  commit_block(b->block, b->raw);
  return true;
}

}  // namespace setchain::net
