#include "net/consensus_ledger.hpp"

#include <algorithm>
#include <utility>

#include "crypto/sha256.hpp"

namespace setchain::net {

namespace {
constexpr std::uint8_t kConsensusStateVersion = 2;
/// Rounds a vote may run ahead of the local round before it is ignored: a
/// Byzantine voter spraying far-future rounds would otherwise allocate one
/// n-slot vector per round it names.
constexpr std::uint32_t kMaxRoundsAhead = 8;
/// Held payloads per proposer per height. An equivocator signs many
/// payloads; two is enough to prove the equivocation and keep the lowest
/// hash available as the convergence target, without unbounded memory.
constexpr std::size_t kMaxHeldPerProposer = 2;
/// Evidence keeps a prefix of each conflicting message, not the whole
/// (possibly 8 MiB) payload pair.
constexpr std::size_t kEvidencePrefixBytes = 512;

codec::Bytes evidence_prefix(codec::ByteView b) {
  const std::size_t n = std::min(b.size(), kEvidencePrefixBytes);
  return codec::Bytes(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(n));
}
}  // namespace

ConsensusLedger::ConsensusLedger(ConsensusLedgerConfig cfg, sim::Simulation& timers,
                                 ITransport& transport)
    : cfg_(cfg), timers_(timers), transport_(transport) {
  // Same single-frame invariant as the sequencer ledger: a proposal must fit
  // a kProposal broadcast and ride alone in a kBlockSyncResponse.
  cfg_.max_block_bytes = std::min(cfg_.max_block_bytes, wire::kMaxPayloadBytes / 2);
  // One recurring tick drives proposing, deadlines and retransmission; keep
  // it a few times finer than the shortest timer it serves.
  tick_interval_ = std::max<sim::Time>(
      sim::from_millis(10), std::min(cfg_.block_interval, cfg_.timeout_propose) / 3);
  masked_.assign(cfg_.n, false);
  future_.prevotes.assign(cfg_.n, std::nullopt);
  future_.precommits.assign(cfg_.n, std::nullopt);
  future_.skips.assign(cfg_.n, std::nullopt);
}

void ConsensusLedger::start() {
  if (started_) return;
  started_ = true;
  skip_want_.assign(cfg_.n, 0);
  const sim::Time now = timers_.now();
  round_deadline_ = now + cfg_.timeout_propose;
  retry_at_ = now + cfg_.retry_interval;
  timers_.schedule_in(tick_interval_, [this] { tick(); });
  timers_.schedule_in(cfg_.sync_interval, [this] { sync_tick(); });
}

std::uint32_t ConsensusLedger::masked_count() const {
  return static_cast<std::uint32_t>(std::count(masked_.begin(), masked_.end(), true));
}

void ConsensusLedger::broadcast(wire::MsgType type, codec::ByteView payload) {
  for (std::uint32_t peer = 0; peer < cfg_.n; ++peer) {
    if (peer == cfg_.self) continue;
    transport_.send(peer, type, payload);
  }
}

void ConsensusLedger::broadcast_split(wire::MsgType type, codec::ByteView even,
                                      codec::ByteView odd) {
  for (std::uint32_t peer = 0; peer < cfg_.n; ++peer) {
    if (peer == cfg_.self) continue;
    transport_.send(peer, type, (peer % 2 == 0) ? even : odd);
  }
}

// --- Signing -----------------------------------------------------------------

crypto::Ed25519::Signature ConsensusLedger::sign_proposal(
    codec::ByteView block_bytes) const {
  if (!cfg_.pki) return {};
  return cfg_.pki->sign(cfg_.self,
                        wire::proposal_transcript(cfg_.cluster, block_bytes));
}

crypto::Ed25519::Signature ConsensusLedger::sign_vote(wire::MsgType type,
                                                      const wire::VoteMsg& m) const {
  if (!cfg_.pki) return {};
  return cfg_.pki->sign(
      cfg_.self, wire::vote_transcript(cfg_.cluster, type, m.height, m.round, m.hash));
}

crypto::Ed25519::Signature ConsensusLedger::sign_skip(
    const wire::RoundSkipMsg& m) const {
  if (!cfg_.pki) return {};
  return cfg_.pki->sign(cfg_.self,
                        wire::round_skip_transcript(cfg_.cluster, m.height, m.round));
}

void ConsensusLedger::note_work() {
  if (work_seen_) return;
  work_seen_ = true;
  round_deadline_ = timers_.now() + cfg_.timeout_propose;
}

ledger::TxIdx ConsensusLedger::append(sim::NodeId origin, ledger::Transaction tx) {
  (void)origin;  // every tx of this node funnels through its own transport
  const auto ordinal = static_cast<ledger::TxIdx>(appended_++);
  std::string key = tx_dedup_key(tx);
  if (committed_keys_.count(key) || mempool_keys_.count(key)) return ordinal;
  // Gossip to every peer: any of them may end up proposing the block this
  // tx commits in. Rebroadcast with capped backoff until committed.
  broadcast(wire::MsgType::kTxSubmit, wire::encode_tx_submit(tx));
  auto& own = own_pending_[key];
  own.tx = tx;
  own.attempt = 0;
  own.next_send = timers_.now() + cfg_.retry_interval;
  mempool_keys_.insert(key);
  mempool_.push_back(MempoolEntry{std::move(key), std::move(tx)});
  note_work();
  return ordinal;
}

void ConsensusLedger::on_new_block(sim::NodeId node,
                                   std::function<void(const ledger::Block&)> cb) {
  (void)node;  // one node per process: only the local callback exists
  app_cb_ = std::move(cb);
}

void ConsensusLedger::on_tx_submit(EndpointId from, wire::TxSubmit&& m) {
  (void)from;
  std::string key = tx_dedup_key(m.tx);
  // Dedup against history AND mempool: peers retransmit until committed.
  if (committed_keys_.count(key) || mempool_keys_.count(key)) return;
  mempool_keys_.insert(key);
  mempool_.push_back(MempoolEntry{std::move(key), std::move(m.tx)});
  note_work();
}

bool ConsensusLedger::on_block_frame(codec::ByteView payload) {
  (void)payload;  // consensus clusters never speak bare kBlock
  return false;
}

bool ConsensusLedger::on_proposal(EndpointId from, codec::ByteView payload) {
  (void)from;  // any holder may retransmit, so the sender need not be the proposer
  // Validate and dedup on a zero-copy view first: proposals are rebroadcast
  // by every holder, so most arrivals are duplicates — those are dropped
  // after a hash over the payload, without materializing a single tx.
  const auto v = wire::parse_signed_proposal_view(payload);
  if (!v) return false;
  const std::uint32_t proposer = v->block.proposer;
  if (proposer >= cfg_.n) return false;
  if (v->block.height != active_height()) return true;  // stale/ahead: ignore
  const wire::ProposalHash hash = crypto::Sha256::hash(payload);
  if (proposals_.contains(hash)) return true;
  // The proposer signature binds the payload to its scheduled author. An
  // invalid signature blames the SENDER: honest holders verified the frame
  // before relaying it, so whoever handed us a forgery authored the forgery.
  if (cfg_.pki && !cfg_.pki->verify(
                      proposer, wire::proposal_transcript(cfg_.cluster, v->block_bytes),
                      v->sig)) {
    return false;
  }

  // Proposer equivocation: a second validly signed payload for this height
  // permanently masks the proposer's votes (the payloads themselves remain
  // usable commit candidates — content is client-submitted either way, and
  // refusing them would let an equivocator stall the height it proposed).
  const HeldProposal* prior = nullptr;
  std::size_t held_here = 0;
  for (const auto& [h, held] : proposals_) {
    if (held.block.proposer != proposer) continue;
    ++held_here;
    if (!prior) prior = &held;
  }
  if (prior && !masked_[proposer]) {
    mask_node(proposer, 1, prior->raw, payload);
  }
  // Holding cap: keep the LOWEST hashes per proposer (the prevote
  // tie-break's convergence targets); a lower newcomer evicts the highest
  // non-locked held payload, a higher newcomer is dropped. A node missing
  // an evicted payload that later sees its commit quorum heals via
  // certified sync like any straggler.
  if (held_here >= kMaxHeldPerProposer) {
    auto victim = proposals_.end();
    for (auto it = proposals_.rbegin(); it != proposals_.rend(); ++it) {
      if (it->second.block.proposer != proposer) continue;
      if (lock_hash_ && it->first == *lock_hash_) continue;
      victim = std::prev(it.base());
      break;
    }
    if (victim == proposals_.end() || !(hash < victim->first)) return true;
    proposals_.erase(victim);
  }

  auto m = wire::parse_proposal(payload);  // same grammar as the view: cannot fail
  if (!m) return false;
  if (proposals_.emplace(hash, HeldProposal{std::move(m->block), std::move(m->raw)})
          .second) {
    note_work();
    maybe_prevote();
    check_polka();
    try_commit();  // precommit quorum may have been waiting on this payload
  }
  return true;
}

// --- Vote intake: identity gate -> future buffer -> batch verify -> apply ----

bool ConsensusLedger::on_vote_frame(wire::MsgType type, EndpointId from,
                                    const wire::VoteMsg& m) {
  // Votes are never relayed (only proposals are), so the author must be the
  // transport sender; an impersonated vote is the SENDER's fault.
  if (m.voter >= cfg_.n || m.voter != from) return false;
  if (masked_[m.voter]) return true;  // equivocator: drop silently
  const std::uint64_t active = active_height();
  if (m.height < active) return true;  // stale: the height already closed
  if (m.height == active + 1) {
    // One height of lookahead, one slot per voter per frame type: a node one
    // commit behind re-validates these the moment it catches up instead of
    // eating a full round timeout.
    if (type == wire::MsgType::kRoundSkip) {
      auto& slot = future_.skips[m.voter];
      if (!slot) {
        slot = wire::RoundSkipMsg{m.height, m.round, m.voter, m.sig};
        ++votes_buffered_;
      }
    } else {
      auto& slots = (type == wire::MsgType::kPrevote) ? future_.prevotes
                                                      : future_.precommits;
      auto& slot = slots[m.voter];
      if (!slot) {
        slot = m;
        ++votes_buffered_;
      }
    }
    return true;
  }
  if (m.height > active + 1) {
    ++votes_dropped_ahead_;
    return true;
  }
  if (m.round > cur_round_ + kMaxRoundsAhead) return true;  // round-spam guard
  // Exact-duplicate fast path: retransmissions skip re-verification.
  if (type == wire::MsgType::kRoundSkip) {
    if (skip_want_[m.voter] > m.round) return true;
  } else {
    const auto& rounds =
        (type == wire::MsgType::kPrevote) ? prevotes_ : precommits_;
    if (const auto it = rounds.find(m.round); it != rounds.end()) {
      const VoteSlot& slot = it->second[m.voter];
      if (slot.set && slot.hash == m.hash) return true;
    }
  }
  enqueue_verify(type, m);
  return true;
}

bool ConsensusLedger::on_prevote(EndpointId from, const wire::VoteMsg& m) {
  return on_vote_frame(wire::MsgType::kPrevote, from, m);
}

bool ConsensusLedger::on_precommit(EndpointId from, const wire::VoteMsg& m) {
  return on_vote_frame(wire::MsgType::kPrecommit, from, m);
}

bool ConsensusLedger::on_round_skip(EndpointId from, const wire::RoundSkipMsg& m) {
  wire::VoteMsg v;
  v.height = m.height;
  v.round = m.round;
  v.voter = m.voter;
  v.sig = m.sig;  // hash stays zero: skips sign no hash
  return on_vote_frame(wire::MsgType::kRoundSkip, from, v);
}

void ConsensusLedger::enqueue_verify(wire::MsgType type, const wire::VoteMsg& m) {
  if (!cfg_.pki) {
    // Bare harnesses without keys keep the old synchronous semantics.
    apply_vote(type, m, true);
    return;
  }
  PendingVote pv;
  pv.type = type;
  pv.vote = m;
  pv.transcript =
      (type == wire::MsgType::kRoundSkip)
          ? wire::round_skip_transcript(cfg_.cluster, m.height, m.round)
          : wire::vote_transcript(cfg_.cluster, type, m.height, m.round, m.hash);
  pending_verify_.push_back(std::move(pv));
  if (!verify_scheduled_) {
    // Zero-delay drain: every structurally valid vote that arrived at this
    // sim instant verifies in ONE Ed25519 batch check.
    verify_scheduled_ = true;
    timers_.schedule_in(0, [this] { drain_verify(); });
  }
}

void ConsensusLedger::drain_verify() {
  verify_scheduled_ = false;
  std::deque<PendingVote> batch;
  batch.swap(pending_verify_);
  if (batch.empty()) return;
  std::vector<crypto::Pki::SignedMessage> items;
  items.reserve(batch.size());
  for (const PendingVote& pv : batch) {
    items.push_back(crypto::Pki::SignedMessage{
        pv.vote.voter, codec::ByteView(pv.transcript), &pv.vote.sig});
  }
  const crypto::Ed25519::BatchResult result = cfg_.pki->verify_batch(items);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    apply_vote(batch[i].type, batch[i].vote, result.valid[i]);
  }
}

void ConsensusLedger::apply_vote(wire::MsgType type, const wire::VoteMsg& m,
                                 bool sig_valid) {
  if (!sig_valid) {
    ++vote_sig_rejects_;
    return;
  }
  if (masked_[m.voter]) return;  // masked while queued
  // The world may have moved while the vote sat in the verify queue.
  const std::uint64_t active = active_height();
  if (m.height != active) {
    if (m.height == active + 1) {
      // A commit landed mid-queue and the vote now points one height ahead
      // again: re-buffer it instead of dropping it.
      if (type == wire::MsgType::kRoundSkip) {
        auto& slot = future_.skips[m.voter];
        if (!slot) {
          slot = wire::RoundSkipMsg{m.height, m.round, m.voter, m.sig};
          ++votes_buffered_;
        }
      } else {
        auto& slots = (type == wire::MsgType::kPrevote) ? future_.prevotes
                                                        : future_.precommits;
        if (!slots[m.voter]) {
          slots[m.voter] = m;
          ++votes_buffered_;
        }
      }
    }
    return;
  }
  if (m.round > cur_round_ + kMaxRoundsAhead) return;
  switch (type) {
    case wire::MsgType::kPrevote:
      if (record_vote(prevotes_, m.round, m.hash, m.voter, m.sig)) {
        note_work();
        check_polka();
      }
      break;
    case wire::MsgType::kPrecommit:
      if (record_vote(precommits_, m.round, m.hash, m.voter, m.sig)) {
        note_work();
        try_commit();
      }
      break;
    case wire::MsgType::kRoundSkip:
      skip_want_[m.voter] = std::max(skip_want_[m.voter], m.round + 1);
      note_work();
      maybe_advance_round();
      break;
    default:
      break;
  }
}

bool ConsensusLedger::record_vote(std::map<std::uint32_t, RoundVotes>& rounds,
                                  std::uint32_t round, const wire::ProposalHash& hash,
                                  std::uint32_t voter,
                                  const crypto::Ed25519::Signature& sig) {
  RoundVotes& rv = rounds[round];
  if (rv.empty()) rv.assign(cfg_.n, VoteSlot{});
  VoteSlot& slot = rv[voter];
  if (slot.set && slot.hash == hash) return false;  // retransmission
  if (slot.set) {
    // Two validly signed hashes from one voter for one (height, round):
    // equivocation. The FIRST recorded vote stands — honest voters vote once
    // per round, so any two 2f+1 quorums still intersect in an honest
    // once-voting node and conflicting commits stay impossible.
    wire::VoteMsg first;
    first.height = active_height();
    first.round = round;
    first.voter = voter;
    first.hash = slot.hash;
    first.sig = slot.sig;
    wire::VoteMsg second = first;
    second.hash = hash;
    second.sig = sig;
    mask_node(voter, 0, wire::encode_vote(first), wire::encode_vote(second));
    return false;
  }
  slot.set = true;
  slot.hash = hash;
  slot.sig = sig;
  return true;
}

void ConsensusLedger::mask_node(std::uint32_t node, std::uint8_t kind,
                                codec::ByteView first, codec::ByteView second) {
  if (node >= masked_.size() || masked_[node]) return;
  masked_[node] = true;
  ++equivocations_detected_;
  EquivocationEvidence ev;
  ev.node = node;
  ev.height = active_height();
  ev.kind = kind;
  ev.first = evidence_prefix(first);
  ev.second = evidence_prefix(second);
  evidence_.push_back(std::move(ev));
}

// --- Timers ------------------------------------------------------------------

void ConsensusLedger::tick() {
  timers_.schedule_in(tick_interval_, [this] { tick(); });
  maybe_propose();
  maybe_prevote();
  check_polka();
  try_commit();

  const sim::Time now = timers_.now();

  if (cfg_.byz.forge_votes && !forged_this_height_ && work_seen_) {
    // Byzantine: one impersonated vote (author != transport sender — every
    // receiver rejects the frame outright) and one vote with a garbage
    // signature (passes the identity gate, dies in batch verification).
    forged_this_height_ = true;
    wire::VoteMsg imp;
    imp.height = active_height();
    imp.round = cur_round_;
    imp.voter = (cfg_.self + 1) % cfg_.n;
    imp.hash.fill(0x42);
    broadcast(wire::MsgType::kPrevote, wire::encode_vote(imp));
    wire::VoteMsg garbage;
    garbage.height = active_height();
    garbage.round = cur_round_;
    garbage.voter = cfg_.self;
    garbage.hash.fill(0x66);
    broadcast(wire::MsgType::kPrevote, wire::encode_vote(garbage));
  }

  if (work_seen_ && now >= round_deadline_) {
    // No commit despite pending work: the round proposer looks dead. Ask to
    // skip (and re-ask every further timeout — skips may be lost too).
    skip_want_[cfg_.self] = std::max(skip_want_[cfg_.self], cur_round_ + 1);
    wire::RoundSkipMsg m{active_height(), cur_round_, cfg_.self, {}};
    m.sig = sign_skip(m);
    broadcast(wire::MsgType::kRoundSkip, wire::encode_round_skip(m));
    round_deadline_ = now + cfg_.timeout_propose;
    maybe_advance_round();
  }

  // Own submissions: per-entry capped backoff, independent of consensus
  // retransmission (a lost kTxSubmit must not wait behind a quiet height).
  for (auto& [key, e] : own_pending_) {
    if (e.next_send > now) continue;
    broadcast(wire::MsgType::kTxSubmit, wire::encode_tx_submit(e.tx));
    e.attempt = std::min<std::uint32_t>(e.attempt + 1, 3);
    e.next_send = now + cfg_.retry_interval * (sim::Time{1} << e.attempt);
  }

  if (now >= retry_at_) {
    retransmit();
    retry_attempt_ = std::min<std::uint32_t>(retry_attempt_ + 1, 3);
    retry_at_ = now + cfg_.retry_interval * (sim::Time{1} << retry_attempt_);
  }
}

void ConsensusLedger::maybe_propose() {
  if (proposer_for(active_height(), cur_round_) != cfg_.self) return;
  if (proposed_rounds_.count(cur_round_)) return;
  if (lock_hash_) {
    // Locked: only ever re-offer the locked payload (if held; otherwise the
    // holders' retransmission will deliver it first).
    const auto it = proposals_.find(*lock_hash_);
    if (it == proposals_.end()) return;
    broadcast(wire::MsgType::kProposal, it->second.raw);
  } else if (!proposals_.empty()) {
    // Re-offer the lowest held proposal rather than sealing a competing
    // one: one height should converge on one payload.
    broadcast(wire::MsgType::kProposal, proposals_.begin()->second.raw);
  } else if (!mempool_.empty() && timers_.now() >= next_propose_time_) {
    seal_and_broadcast_fresh();
  } else {
    return;
  }
  proposed_rounds_.insert(cur_round_);
  maybe_prevote();
}

void ConsensusLedger::seal_and_broadcast_fresh() {
  // Pack up to max_block_bytes of mempool txs in arrival order. The txs
  // STAY in the mempool until committed — the proposal may lose its round.
  std::vector<const ledger::Transaction*> block_txs;
  wire::BlockMsg block;
  block.height = active_height();
  block.proposer = cfg_.self;
  std::uint64_t bytes = 0;
  for (const auto& entry : mempool_) {
    const std::uint64_t size = entry.tx.wire_size;
    if (!block_txs.empty() && bytes + size > cfg_.max_block_bytes) break;
    block_txs.push_back(&entry.tx);
    block.txs.push_back(entry.tx);
    bytes += size;
  }
  codec::Bytes block_bytes =
      wire::encode_block(block.height, block.proposer, block_txs);
  codec::Bytes raw =
      wire::encode_signed_proposal(block_bytes, sign_proposal(block_bytes));

  if (cfg_.byz.equivocate_proposals) {
    // Byzantine: seal a SECOND, conflicting but validly signed payload for
    // the same height and split the peers. We hold (and retransmit) the
    // honest payload ourselves, so receivers of the alternate eventually see
    // both and mask us.
    wire::BlockMsg alt = block;
    std::vector<const ledger::Transaction*> alt_txs = block_txs;
    if (alt_txs.size() >= 2) {
      std::reverse(alt_txs.begin(), alt_txs.end());
      std::reverse(alt.txs.begin(), alt.txs.end());
    } else {
      alt_txs.clear();
      alt.txs.clear();
    }
    codec::Bytes alt_bytes =
        wire::encode_block(alt.height, alt.proposer, alt_txs);
    codec::Bytes alt_raw =
        wire::encode_signed_proposal(alt_bytes, sign_proposal(alt_bytes));
    broadcast_split(wire::MsgType::kProposal, raw, alt_raw);
  } else {
    broadcast(wire::MsgType::kProposal, raw);
  }

  const wire::ProposalHash hash = crypto::Sha256::hash(raw);
  proposals_.emplace(hash, HeldProposal{std::move(block), std::move(raw)});
  ++blocks_broadcast_;
  next_propose_time_ = timers_.now() + cfg_.block_interval;
  note_work();
}

void ConsensusLedger::maybe_prevote() {
  if (my_prevotes_.count(cur_round_)) return;
  wire::ProposalHash hash;
  if (lock_hash_) {
    hash = *lock_hash_;  // locked nodes only ever prevote their lock
  } else if (!proposals_.empty()) {
    hash = proposals_.begin()->first;  // deterministic leaderless tie-break
  } else {
    return;  // nothing to vote on yet
  }
  wire::VoteMsg m;
  m.height = active_height();
  m.round = cur_round_;
  m.voter = cfg_.self;
  m.hash = hash;
  m.sig = sign_vote(wire::MsgType::kPrevote, m);
  my_prevotes_[cur_round_] = m;
  record_vote(prevotes_, m.round, m.hash, m.voter, m.sig);
  broadcast(wire::MsgType::kPrevote, wire::encode_vote(m));
  if (cfg_.byz.double_vote) {
    // Byzantine: a second validly signed prevote for a fabricated hash in
    // the same round — the receivers must mask us, not count both.
    wire::VoteMsg evil = m;
    evil.hash[0] ^= 0xFF;
    evil.sig = sign_vote(wire::MsgType::kPrevote, evil);
    broadcast(wire::MsgType::kPrevote, wire::encode_vote(evil));
  }
  check_polka();
}

void ConsensusLedger::check_polka() {
  // A polka (2f+1 prevotes for one (round, hash)) locks the hash and
  // triggers our precommit for that round. Late polkas from earlier rounds
  // still count — commits are valid from any round — but we never vote in
  // rounds we have not reached.
  //
  // Collect first, act after: send_precommit may complete a commit quorum,
  // and commit_block clears prevotes_ — sending mid-iteration would leave
  // this loop walking a destroyed map.
  std::vector<std::pair<std::uint32_t, wire::ProposalHash>> to_precommit;
  for (const auto& [round, rv] : prevotes_) {
    if (round > cur_round_) break;
    std::map<wire::ProposalHash, std::uint32_t> tally;
    for (const VoteSlot& slot : rv) {
      if (slot.set) ++tally[slot.hash];
    }
    for (const auto& [hash, count] : tally) {
      if (count < quorum()) continue;
      if (!lock_hash_ || round >= lock_round_) {
        lock_hash_ = hash;
        lock_round_ = round;
      }
      if (!my_precommits_.count(round)) to_precommit.emplace_back(round, hash);
    }
  }
  const std::uint64_t height_before = applied_;
  for (const auto& [round, hash] : to_precommit) {
    if (applied_ != height_before) break;  // committed: votes are for a closed height
    if (!my_precommits_.count(round)) send_precommit(round, hash);
  }
}

void ConsensusLedger::send_precommit(std::uint32_t round,
                                     const wire::ProposalHash& hash) {
  wire::VoteMsg m;
  m.height = active_height();
  m.round = round;
  m.voter = cfg_.self;
  m.hash = hash;
  m.sig = sign_vote(wire::MsgType::kPrecommit, m);
  my_precommits_[round] = m;
  record_vote(precommits_, m.round, m.hash, m.voter, m.sig);
  broadcast(wire::MsgType::kPrecommit, wire::encode_vote(m));
  if (cfg_.byz.double_vote) {
    wire::VoteMsg evil = m;
    evil.hash[0] ^= 0xFF;
    evil.sig = sign_vote(wire::MsgType::kPrecommit, evil);
    broadcast(wire::MsgType::kPrecommit, wire::encode_vote(evil));
  }
  try_commit();
}

void ConsensusLedger::try_commit() {
  for (const auto& [round, rv] : precommits_) {
    std::map<wire::ProposalHash, std::uint32_t> tally;
    for (const VoteSlot& slot : rv) {
      if (slot.set) ++tally[slot.hash];
    }
    for (const auto& [hash, count] : tally) {
      if (count < quorum()) continue;
      const auto it = proposals_.find(hash);
      if (it == proposals_.end()) continue;  // retransmission will deliver it
      // Assemble the commit certificate from the quorum's own signatures
      // (slots are voter-indexed, so the voter ids come out ascending — the
      // strictly-increasing wire rule holds by construction).
      std::vector<wire::CommitVote> cert_votes;
      cert_votes.reserve(count);
      for (std::uint32_t voter = 0; voter < cfg_.n; ++voter) {
        const VoteSlot& slot = rv[voter];
        if (slot.set && slot.hash == hash) {
          cert_votes.push_back(wire::CommitVote{voter, slot.sig});
        }
      }
      // Move the payload out first: commit_block resets proposals_.
      const HeldProposal held = std::move(it->second);
      const codec::Bytes cert =
          wire::encode_certified_block(held.raw, round, cert_votes);
      commit_block(held.block, cert);
      return;
    }
  }
}

void ConsensusLedger::maybe_advance_round() {
  bool advanced = false;
  for (;;) {
    std::uint32_t wanting = 0;
    for (std::uint32_t i = 0; i < cfg_.n; ++i) {
      if (!masked_[i] && skip_want_[i] > cur_round_) ++wanting;
    }
    if (wanting < skip_quorum()) break;
    ++cur_round_;
    advanced = true;
  }
  if (!advanced) return;
  const sim::Time now = timers_.now();
  round_deadline_ = now + cfg_.timeout_propose;
  retry_attempt_ = 0;
  retry_at_ = now + cfg_.retry_interval;
  maybe_propose();
  maybe_prevote();
  check_polka();
  try_commit();
}

void ConsensusLedger::retransmit() {
  // Any holder re-offers the relevant proposal: this is what routes payload
  // bytes around a crashed proposer (votes name only the hash).
  if (!proposals_.empty()) {
    auto it = proposals_.begin();
    if (lock_hash_) {
      const auto locked = proposals_.find(*lock_hash_);
      if (locked != proposals_.end()) it = locked;
    }
    broadcast(wire::MsgType::kProposal, it->second.raw);
  }
  if (const auto it = my_prevotes_.find(cur_round_); it != my_prevotes_.end()) {
    broadcast(wire::MsgType::kPrevote, wire::encode_vote(it->second));
  }
  if (const auto it = my_precommits_.find(cur_round_); it != my_precommits_.end()) {
    broadcast(wire::MsgType::kPrecommit, wire::encode_vote(it->second));
  }
}

void ConsensusLedger::commit_block(const wire::BlockMsg& block,
                                   codec::ByteView cert_raw) {
  auto applied = std::make_shared<ledger::Block>();
  applied->height = block.height;
  applied->proposer = block.proposer;
  applied->proposed_at = timers_.now();
  applied->first_commit_at = timers_.now();
  for (const auto& tx : block.txs) {
    std::string key = tx_dedup_key(tx);
    // Deterministic safety net: committed_keys_ is a pure function of the
    // committed prefix, so every node skips exactly the same duplicates.
    if (!committed_keys_.insert(key).second) continue;
    own_pending_.erase(key);
    mempool_keys_.erase(key);
    applied->bytes += tx.wire_size;
    applied->txs.push_back(table_.add(tx));
  }
  if (!mempool_.empty()) {
    std::deque<MempoolEntry> kept;
    for (auto& entry : mempool_) {
      if (mempool_keys_.count(entry.key)) kept.push_back(std::move(entry));
    }
    mempool_.swap(kept);
  }
  raw_blocks_.emplace_back(cert_raw.begin(), cert_raw.end());
  chain_.push_back(applied);
  applied_ = applied->height;
  // WAL the exact CERTIFIED payload (covers both the vote-quorum and the
  // sync-response commit paths): recovery and sync receivers re-verify the
  // certificate instead of trusting the bytes. Unset during recovery
  // replay, so replayed blocks are never re-logged.
  if (commit_hook_) commit_hook_(applied->height, cert_raw);

  // Fresh height: all consensus state was scoped to the one we just closed.
  // The masked set and evidence are NOT reset — equivocation is forever.
  proposals_.clear();
  prevotes_.clear();
  precommits_.clear();
  my_prevotes_.clear();
  my_precommits_.clear();
  proposed_rounds_.clear();
  skip_want_.assign(cfg_.n, 0);
  lock_hash_.reset();
  lock_round_ = 0;
  cur_round_ = 0;
  forged_this_height_ = false;
  work_seen_ = !mempool_.empty();
  const sim::Time now = timers_.now();
  round_deadline_ = now + cfg_.timeout_propose;
  retry_attempt_ = 0;
  retry_at_ = now + cfg_.retry_interval;

  if (app_cb_) app_cb_(*chain_.back());
  replay_buffered_votes();
  maybe_propose();
  maybe_prevote();
}

void ConsensusLedger::replay_buffered_votes() {
  FutureVotes buffered;
  buffered.prevotes.swap(future_.prevotes);
  buffered.precommits.swap(future_.precommits);
  buffered.skips.swap(future_.skips);
  future_.prevotes.assign(cfg_.n, std::nullopt);
  future_.precommits.assign(cfg_.n, std::nullopt);
  future_.skips.assign(cfg_.n, std::nullopt);
  // Feed buffered votes back through the normal frame path: the identity
  // gate, height checks and signature verification all re-run (the buffer
  // holds claims, not facts).
  for (const auto& v : buffered.prevotes) {
    if (v) on_prevote(v->voter, *v);
  }
  for (const auto& v : buffered.precommits) {
    if (v) on_precommit(v->voter, *v);
  }
  for (const auto& s : buffered.skips) {
    if (s) on_round_skip(s->voter, *s);
  }
}

// --- Certified-block verification (sync + recovery) --------------------------

std::optional<wire::ProposalMsg> ConsensusLedger::check_certified(
    codec::ByteView cert_payload) const {
  auto cert = wire::parse_certified_block(cert_payload);
  if (!cert) return std::nullopt;
  auto prop = wire::parse_proposal(cert->proposal);
  if (!prop) return std::nullopt;
  if (prop->block.proposer >= cfg_.n) return std::nullopt;
  if (cert->votes.size() < quorum()) return std::nullopt;
  // Voter ids are strictly increasing (wire rule), so checking the last
  // covers them all.
  if (cert->votes.back().voter >= cfg_.n) return std::nullopt;
  if (cfg_.pki) {
    const wire::ProposalHash hash = crypto::Sha256::hash(cert->proposal);
    const codec::Bytes prop_transcript = wire::proposal_transcript(
        cfg_.cluster, codec::ByteView(cert->proposal).first(prop->block_bytes_len));
    const codec::Bytes vote_transcript = wire::vote_transcript(
        cfg_.cluster, wire::MsgType::kPrecommit, prop->block.height, cert->round,
        hash);
    std::vector<crypto::Pki::SignedMessage> items;
    items.reserve(cert->votes.size() + 1);
    items.push_back(crypto::Pki::SignedMessage{
        prop->block.proposer, codec::ByteView(prop_transcript), &prop->sig});
    for (const wire::CommitVote& v : cert->votes) {
      items.push_back(crypto::Pki::SignedMessage{
          v.voter, codec::ByteView(vote_transcript), &v.sig});
    }
    const crypto::Ed25519::BatchResult result = cfg_.pki->verify_batch(items);
    if (!result.all_valid) return std::nullopt;
  }
  return prop;
}

void ConsensusLedger::sync_tick() {
  timers_.schedule_in(cfg_.sync_interval, [this] { sync_tick(); });
  // Rotate across every peer: any live node serves the committed chain.
  std::uint32_t target = sync_cursor_++ % cfg_.n;
  if (target == cfg_.self) target = sync_cursor_++ % cfg_.n;
  const wire::BlockSyncRequest req{applied_ + 1};
  transport_.send(target, wire::MsgType::kBlockSyncRequest,
                  wire::encode_block_sync_request(req));
}

void ConsensusLedger::on_sync_request(EndpointId from, const wire::BlockSyncRequest& m) {
  // Heights at or below raw_base_ were compacted into a snapshot: they
  // cannot be served, and the requester's rotation finds a peer that still
  // holds them (or one that recovered from an older snapshot).
  if (m.from_height == 0 || m.from_height > applied_ ||
      m.from_height <= raw_base_) {
    return;
  }
  std::vector<codec::ByteView> views;
  std::uint64_t bytes = 0;
  for (std::uint64_t h = m.from_height;
       h <= applied_ && views.size() < cfg_.max_sync_blocks; ++h) {
    const codec::Bytes& b = raw_blocks_[h - 1 - raw_base_];  // committed bytes, verbatim
    if (!views.empty() && bytes + b.size() > wire::kMaxPayloadBytes / 2) break;
    bytes += b.size();
    views.emplace_back(b);
  }
  if (cfg_.byz.junk_sync) {
    // Byzantine: serve certificate bytes with one flipped byte each. The
    // receiver's check_certified must reject them without crashing (and
    // count cert_rejects); its rotation then finds an honest server.
    std::vector<codec::Bytes> mangled;
    mangled.reserve(views.size());
    for (const codec::ByteView v : views) {
      codec::Bytes b(v.begin(), v.end());
      if (!b.empty()) b[b.size() / 2] ^= 0x5A;
      mangled.push_back(std::move(b));
    }
    std::vector<codec::ByteView> mangled_views;
    mangled_views.reserve(mangled.size());
    for (const codec::Bytes& b : mangled) mangled_views.emplace_back(b);
    transport_.send(from, wire::MsgType::kBlockSyncResponse,
                    wire::encode_block_sync_response(mangled_views));
    return;
  }
  transport_.send(from, wire::MsgType::kBlockSyncResponse,
                  wire::encode_block_sync_response(views));
}

void ConsensusLedger::on_sync_response(const wire::BlockSyncResponse& m) {
  for (const auto& payload : m.blocks) {
    // Verify the certificate, not the peer: a Byzantine server cannot feed
    // a straggler a fabricated chain. One bad entry poisons the whole reply
    // (the sender is lying or corrupt either way).
    auto prop = check_certified(payload);
    if (!prop) {
      ++cert_rejects_;
      return;
    }
    if (prop->block.height != active_height()) continue;
    commit_block(prop->block, payload);
  }
}

// --- Durable state -----------------------------------------------------------

void ConsensusLedger::serialize_state(codec::Writer& w) const {
  w.u8(kConsensusStateVersion);
  w.varint(applied_);
  w.varint(appended_);
  w.varint(table_.size());
  w.varint(committed_keys_.size());
  for (const std::string& key : committed_keys_) {
    w.lp_bytes(codec::ByteView(reinterpret_cast<const std::uint8_t*>(key.data()),
                               key.size()));
  }
  // v2: Byzantine defences survive restarts — an equivocator stays masked.
  w.varint(equivocations_detected_);
  std::vector<std::uint32_t> masked_ids;
  for (std::uint32_t i = 0; i < masked_.size(); ++i) {
    if (masked_[i]) masked_ids.push_back(i);
  }
  w.varint(masked_ids.size());
  for (const std::uint32_t id : masked_ids) w.varint(id);
  w.varint(evidence_.size());
  for (const EquivocationEvidence& ev : evidence_) {
    w.varint(ev.node);
    w.varint(ev.height);
    w.u8(ev.kind);
    w.lp_bytes(ev.first);
    w.lp_bytes(ev.second);
  }
}

bool ConsensusLedger::restore_state(codec::Reader& r) {
  const auto version = r.u8();
  if (!version || *version != kConsensusStateVersion) return false;
  const auto applied = r.varint();
  const auto appended = r.varint();
  const auto tx_count = r.varint();
  const auto key_count = r.varint();
  if (!applied || !appended || !tx_count || !key_count) return false;
  applied_ = *applied;
  raw_base_ = *applied;  // everything below lives only in the snapshot
  appended_ = *appended;
  table_.set_base(static_cast<ledger::TxIdx>(*tx_count));
  committed_keys_.clear();
  for (std::uint64_t i = 0; i < *key_count; ++i) {
    const auto key = r.lp_bytes();
    if (!key) return false;
    committed_keys_.emplace(reinterpret_cast<const char*>(key->data()), key->size());
  }
  const auto equivocations = r.varint();
  const auto masked_count = r.varint();
  if (!equivocations || !masked_count || *masked_count > cfg_.n) return false;
  equivocations_detected_ = *equivocations;
  masked_.assign(cfg_.n, false);
  for (std::uint64_t i = 0; i < *masked_count; ++i) {
    const auto id = r.varint();
    if (!id || *id >= cfg_.n) return false;
    masked_[*id] = true;
  }
  const auto ev_count = r.varint();
  if (!ev_count || *ev_count > cfg_.n) return false;
  evidence_.clear();
  for (std::uint64_t i = 0; i < *ev_count; ++i) {
    EquivocationEvidence ev;
    const auto node = r.varint();
    const auto height = r.varint();
    const auto kind = r.u8();
    const auto first = r.lp_bytes();
    const auto second = r.lp_bytes();
    if (!node || *node >= cfg_.n || !height || !kind || *kind > 1 || !first ||
        !second) {
      return false;
    }
    ev.node = static_cast<std::uint32_t>(*node);
    ev.height = *height;
    ev.kind = *kind;
    ev.first.assign(first->begin(), first->end());
    ev.second.assign(second->begin(), second->end());
    evidence_.push_back(std::move(ev));
  }
  return true;
}

bool ConsensusLedger::restore_block(codec::ByteView payload) {
  // The WAL record IS a certified block: re-verify the certificate on
  // replay (a corrupted or truncated ledger entry must not resurrect as
  // committed state).
  auto prop = check_certified(payload);
  if (!prop) return false;
  if (prop->block.height != active_height()) return false;
  // Reuse the sync-response commit path. The mempool is empty during
  // recovery, so the propose / prevote kicks at the end of commit_block are
  // no-ops, and the commit hook is not installed yet, so nothing is
  // re-logged. Not-yet-started: skip_want_ may be empty, which assign() in
  // commit_block handles.
  if (skip_want_.size() != cfg_.n) skip_want_.assign(cfg_.n, 0);
  commit_block(prop->block, payload);
  return true;
}

}  // namespace setchain::net
