#include "net/remote_node.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>

namespace setchain::net {

// ---------------------------------------------------------------------- TCP

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline`, clamped to >= 0 (poll timeout arg).
int remaining_ms(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > std::numeric_limits<int>::max()) return std::numeric_limits<int>::max();
  return static_cast<int>(left.count());
}

/// Write all of `frame` to a non-blocking socket before `deadline`.
bool send_all(int fd, const codec::Bytes& frame, Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t w = ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int wait = remaining_ms(deadline);
      if (wait == 0) return false;  // deadline: a stuck peer must not block us
      pollfd p{fd, POLLOUT, 0};
      const int r = ::poll(&p, 1, wait);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace

TcpRpcChannel::~TcpRpcChannel() { disconnect(); }

void TcpRpcChannel::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool TcpRpcChannel::ensure_connected(Clock::time_point deadline) {
  if (fd_ >= 0) return true;
  // Non-blocking end to end: connect() against a silent or blackholed
  // address must surface as a clean per-call timeout, never hang the
  // client for the kernel's minutes-long default.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return false;
    }
    for (;;) {
      const int wait = remaining_ms(deadline);
      pollfd p{fd, POLLOUT, 0};
      const int r = ::poll(&p, 1, wait);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) {  // timeout (or poll failure): report unreachable
        ::close(fd);
        return false;
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return false;
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  wire::Hello h;
  h.role = wire::kRoleClient;
  h.sender = cfg_.client_id;
  h.cluster = cfg_.cluster;
  const codec::Bytes frame =
      wire::encode_frame(wire::MsgType::kHello, wire::encode_hello(h));
  if (!send_all(fd, frame, deadline)) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

std::optional<wire::Frame> TcpRpcChannel::call(wire::MsgType type,
                                               codec::ByteView payload,
                                               std::chrono::milliseconds timeout) {
  using clock = Clock;
  const auto deadline = clock::now() + timeout;
  if (!ensure_connected(deadline)) return std::nullopt;

  const codec::Bytes frame = wire::encode_frame(type, payload);
  if (!send_all(fd_, frame, deadline)) {
    disconnect();  // stream state unknown: next call reconnects fresh
    return std::nullopt;
  }

  wire::FrameReader reader;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    wire::Frame f;
    const auto s = reader.next(f);
    if (s == wire::DecodeStatus::kOk) return f;
    if (s != wire::DecodeStatus::kNeedMore) {
      disconnect();  // framing violation: the stream can never resync
      return std::nullopt;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - clock::now());
    if (left.count() <= 0) {
      disconnect();  // a late reply would desync call/response pairing
      return std::nullopt;
    }
    pollfd p{fd_, POLLIN, 0};
    const int r = ::poll(&p, 1, static_cast<int>(left.count()));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) {
      disconnect();
      return std::nullopt;
    }
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;  // spurious wakeup on the non-blocking socket
    }
    if (got <= 0) {
      disconnect();
      return std::nullopt;
    }
    reader.feed(codec::ByteView(buf, static_cast<std::size_t>(got)));
  }
}

// ----------------------------------------------------------------- loopback

LoopbackRpcChannel::LoopbackRpcChannel(LoopbackHub& hub, std::uint32_t target_node)
    : hub_(hub), target_(target_node) {
  endpoint_ = hub_.register_client(
      [this](EndpointId, wire::Frame&& f) { pending_ = std::move(f); });
}

LoopbackRpcChannel::~LoopbackRpcChannel() { hub_.unregister_client(endpoint_); }

std::optional<wire::Frame> LoopbackRpcChannel::call(wire::MsgType type,
                                                    codec::ByteView payload,
                                                    std::chrono::milliseconds timeout) {
  pending_.reset();
  if (!hub_.route(endpoint_, target_, type, payload)) return std::nullopt;
  sim::Simulation& sim = hub_.simulation();
  const sim::Time deadline =
      sim.now() + sim::from_millis(static_cast<double>(timeout.count()));
  // Pump the shared simulation in small virtual slices until the reply (or
  // the virtual deadline): node handlers, ledger timers, and our delivery
  // all run inside these events — fully deterministic.
  while (!pending_ && sim.now() < deadline) {
    sim.run_until(sim.now() + sim::from_millis(1));
  }
  auto out = std::move(pending_);
  pending_.reset();
  return out;
}

// --------------------------------------------------------------- RemoteNode

RemoteNode::RemoteNode(std::unique_ptr<IRpcChannel> channel, crypto::ProcessId node_id,
                       std::chrono::milliseconds rpc_timeout)
    : channel_(std::move(channel)), node_id_(node_id), timeout_(rpc_timeout) {}

std::optional<wire::Frame> RemoteNode::call(wire::MsgType type,
                                            codec::ByteView payload) const {
  auto f = channel_->call(type, payload, timeout_);
  if (!f) ++failures_;
  return f;
}

bool RemoteNode::add(core::Element e) {
  wire::AddRequest req;
  req.req_id = next_req_++;
  req.element = std::move(e);
  const auto f = call(wire::MsgType::kAddRequest, wire::encode_add_request(req));
  if (!f || f->type != wire::MsgType::kAddResponse) return false;
  const auto resp = wire::parse_add_response(f->payload);
  return resp && resp->req_id == req.req_id && resp->accepted;
}

api::NodeSnapshot RemoteNode::snapshot() const {
  const wire::SnapshotRequest req{next_req_++};
  const auto f =
      call(wire::MsgType::kSnapshotRequest, wire::encode_snapshot_request(req));
  if (!f || f->type != wire::MsgType::kSnapshotResponse) return {};
  auto resp = wire::parse_snapshot_response(f->payload);
  if (!resp || resp->req_id != req.req_id) return {};

  history_cache_ = std::move(resp->history);
  the_set_cache_.clear();
  the_set_cache_.insert(resp->the_set.begin(), resp->the_set.end());

  api::NodeSnapshot snap;
  snap.the_set = &the_set_cache_;
  snap.history = &history_cache_;
  snap.epoch = resp->epoch;
  snap.proofs = nullptr;  // remote clients use proofs_for_epoch()
  return snap;
}

const std::vector<core::EpochProof>& RemoteNode::proofs_for_epoch(
    std::uint64_t epoch_number) const {
  static const std::vector<core::EpochProof> kNoProofs;
  const wire::ProofsRequest req{next_req_++, epoch_number};
  const auto f = call(wire::MsgType::kProofsRequest, wire::encode_proofs_request(req));
  if (!f || f->type != wire::MsgType::kProofsResponse) return kNoProofs;
  auto resp = wire::parse_proofs_response(f->payload);
  if (!resp || resp->req_id != req.req_id) return kNoProofs;
  // Node-based map: the returned reference stays valid across later calls
  // for other epochs (a re-fetch of the same epoch updates in place).
  auto& slot = proofs_cache_[epoch_number];
  slot = std::move(resp->proofs);
  return slot;
}

std::uint64_t RemoteNode::epoch() const {
  const wire::EpochRequest req{next_req_++};
  const auto f = call(wire::MsgType::kEpochRequest, wire::encode_epoch_request(req));
  if (!f || f->type != wire::MsgType::kEpochResponse) return 0;
  const auto resp = wire::parse_epoch_response(f->payload);
  if (!resp || resp->req_id != req.req_id) return 0;
  return resp->epoch;
}

}  // namespace setchain::net
