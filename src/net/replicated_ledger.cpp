#include "net/replicated_ledger.hpp"

#include <algorithm>

namespace setchain::net {

ReplicatedLedger::ReplicatedLedger(ReplicatedLedgerConfig cfg, sim::Simulation& timers,
                                   ITransport& transport)
    : cfg_(cfg), timers_(timers), transport_(transport) {
  // A block must always fit one frame — both as a kBlock broadcast and
  // alone inside a kBlockSyncResponse — or it could never be delivered and
  // every replica would stall at its height forever. Clamp to half the
  // frame cap (leaves room for per-tx and response framing overhead).
  cfg_.max_block_bytes = std::min(cfg_.max_block_bytes, wire::kMaxPayloadBytes / 2);
}

void ReplicatedLedger::start() {
  if (started_) return;
  started_ = true;
  if (is_sequencer()) {
    timers_.schedule_in(cfg_.block_interval, [this] { seal_tick(); });
  } else {
    timers_.schedule_in(cfg_.sync_interval, [this] { sync_tick(); });
    timers_.schedule_in(cfg_.resubmit_interval, [this] { resubmit_tick(); });
  }
}

ledger::TxIdx ReplicatedLedger::append(sim::NodeId origin, ledger::Transaction tx) {
  (void)origin;  // every tx of this node funnels through its own transport
  const auto ordinal = static_cast<ledger::TxIdx>(appended_++);
  std::string key = tx_dedup_key(tx);
  // Recovery replay re-appends the proofs the previous life of this process
  // already published (byte-identical, thanks to deterministic signatures):
  // drop anything whose content already committed.
  if (committed_keys_.count(key)) return ordinal;
  if (is_sequencer()) {
    // Locally ordered work shares the dedup set with forwarded submits, so
    // a local re-append and a replica's retransmission of the same content
    // can never be sealed twice.
    if (!seen_submits_.insert(std::move(key)).second) return ordinal;
    pending_.push_back(std::move(tx));
  } else {
    const codec::Bytes payload = wire::encode_tx_submit(tx);
    transport_.send(cfg_.sequencer, wire::MsgType::kTxSubmit, payload);
    // Track until its key shows up in an applied block: the first send may
    // ride a connection that drops, and a lost submit would otherwise be
    // silently gone (the sequencer dedups, so the retries are safe).
    auto [it, inserted] = inflight_.try_emplace(std::move(key));
    if (inserted) {
      it->second.tx = std::move(tx);
      it->second.attempt = 0;
      it->second.next_send = timers_.now() + cfg_.resubmit_interval;
    }
  }
  return ordinal;
}

void ReplicatedLedger::on_new_block(sim::NodeId node,
                                    std::function<void(const ledger::Block&)> cb) {
  (void)node;  // one node per process: only the local callback exists
  app_cb_ = std::move(cb);
}

void ReplicatedLedger::on_tx_submit(EndpointId from, wire::TxSubmit&& m) {
  (void)from;
  if (!is_sequencer()) return;  // misrouted: only the sequencer orders
  // Dedup by content hash: replicas retransmit submissions until committed,
  // so the same tx may arrive many times. Keys are kept forever — a retry
  // can land long after its tx was sealed (and can even outlive a restart:
  // committed_keys_ restores from the snapshot, seen_submits_ from it).
  std::string key = tx_dedup_key(m.tx);
  if (committed_keys_.count(key)) return;
  if (!seen_submits_.insert(std::move(key)).second) return;
  pending_.push_back(std::move(m.tx));
}

void ReplicatedLedger::seal_tick() {
  timers_.schedule_in(cfg_.block_interval, [this] { seal_tick(); });
  if (pending_.empty()) return;  // create_empty_blocks=false behaviour

  // Pack up to max_block_bytes of submissions, in arrival order.
  std::vector<const ledger::Transaction*> block_txs;
  auto block = std::make_shared<ledger::Block>();
  block->height = delivered_ + 1;
  block->proposer = cfg_.self;
  block->proposed_at = timers_.now();
  block->first_commit_at = timers_.now();
  while (!pending_.empty()) {
    const std::uint64_t size = pending_.front().wire_size;
    if (!block->txs.empty() && block->bytes + size > cfg_.max_block_bytes) break;
    const ledger::TxIdx idx = table_.add(std::move(pending_.front()));
    pending_.pop_front();
    block->txs.push_back(idx);
    block->bytes += size;
    block_txs.push_back(&table_.get(idx));
    committed_keys_.insert(tx_dedup_key(table_.get(idx)));
  }

  const codec::Bytes payload =
      wire::encode_block(block->height, block->proposer, block_txs);
  // WAL write BEFORE the broadcast: once a peer has seen this block, a crash
  // here must not let the restarted sequencer re-seal the height with
  // different contents (that would fork the chain).
  if (commit_hook_) commit_hook_(block->height, payload);
  for (std::uint32_t peer = 0; peer < cfg_.n; ++peer) {
    if (peer == cfg_.self) continue;
    transport_.send(peer, wire::MsgType::kBlock, payload);
  }
  ++blocks_broadcast_;

  chain_.push_back(block);
  delivered_ = block->height;
  if (app_cb_) app_cb_(*chain_.back());
}

void ReplicatedLedger::sync_tick() {
  timers_.schedule_in(cfg_.sync_interval, [this] { sync_tick(); });
  // Rotate the pull target across every live peer, not just the sequencer:
  // all nodes serve sync from their applied chain, so catch-up keeps
  // working while any one peer is down.
  std::uint32_t target = sync_cursor_++ % cfg_.n;
  if (target == cfg_.self) target = sync_cursor_++ % cfg_.n;
  const wire::BlockSyncRequest req{delivered_ + 1};
  transport_.send(target, wire::MsgType::kBlockSyncRequest,
                  wire::encode_block_sync_request(req));
}

void ReplicatedLedger::resubmit_tick() {
  timers_.schedule_in(cfg_.resubmit_interval, [this] { resubmit_tick(); });
  const sim::Time now = timers_.now();
  for (auto& [key, entry] : inflight_) {
    if (entry.next_send > now) continue;
    transport_.send(cfg_.sequencer, wire::MsgType::kTxSubmit,
                    wire::encode_tx_submit(entry.tx));
    entry.attempt = std::min<std::uint32_t>(entry.attempt + 1, 3);
    entry.next_send = now + cfg_.resubmit_interval * (sim::Time{1} << entry.attempt);
  }
}

bool ReplicatedLedger::on_block_frame(codec::ByteView payload) {
  auto m = wire::parse_block(payload);
  if (!m) return false;  // malformed: drop (a Byzantine sequencer is out of model)
  ingest(std::move(*m));
  return true;
}

void ReplicatedLedger::ingest(wire::BlockMsg&& m) {
  if (is_sequencer()) return;          // the sequencer never imports blocks
  if (m.height <= delivered_) return;  // duplicate (sync overlap)
  buffered_.emplace(m.height, std::move(m));  // no-op when already buffered
  deliver_ready();
}

const ledger::Block& ReplicatedLedger::apply_txs(std::uint64_t height,
                                                 std::uint32_t proposer,
                                                 std::vector<ledger::Transaction>&& txs) {
  auto block = std::make_shared<ledger::Block>();
  block->height = height;
  block->proposer = proposer;
  block->proposed_at = timers_.now();
  block->first_commit_at = timers_.now();
  for (auto& tx : txs) {
    const std::uint64_t size = tx.wire_size;
    std::string key = tx_dedup_key(tx);
    inflight_.erase(key);  // committed: stop retransmitting
    // A sequencer replaying its own WAL must also refuse these submits when
    // replicas retransmit them post-restart.
    if (is_sequencer()) seen_submits_.insert(key);
    committed_keys_.insert(std::move(key));
    block->txs.push_back(table_.add(std::move(tx)));
    block->bytes += size;
  }
  chain_.push_back(block);
  delivered_ = height;
  return *chain_.back();
}

void ReplicatedLedger::deliver_ready() {
  // Strict height order (the ledger's P10): holes wait for sync to fill.
  for (auto it = buffered_.begin();
       it != buffered_.end() && it->first == delivered_ + 1;
       it = buffered_.erase(it)) {
    wire::BlockMsg& m = it->second;
    const ledger::Block& block = apply_txs(m.height, m.proposer, std::move(m.txs));
    if (commit_hook_) {
      // Re-encode from the table: canonical varints make this byte-identical
      // to the frame the sequencer broadcast.
      const codec::Bytes raw = encode_block_at(block.height);
      commit_hook_(block.height, raw);
    }
    if (app_cb_) app_cb_(block);
  }
}

codec::Bytes ReplicatedLedger::encode_block_at(std::uint64_t height1based) const {
  const auto& block = *chain_.at(height1based - 1 - base_height_);
  std::vector<const ledger::Transaction*> txs;
  txs.reserve(block.txs.size());
  for (const auto idx : block.txs) txs.push_back(&table_.get(idx));
  return wire::encode_block(block.height, block.proposer, txs);
}

void ReplicatedLedger::on_sync_request(EndpointId from, const wire::BlockSyncRequest& m) {
  // Any node serves sync from its applied chain (crash model: peers are
  // honest, so a replica's copy is as good as the sequencer's). Heights at
  // or below base_height_ were compacted into a snapshot and cannot be
  // served — the requester's rotation finds a peer with a longer chain.
  if (m.from_height == 0 || m.from_height > delivered_ ||
      m.from_height <= base_height_) {
    return;
  }
  std::vector<codec::Bytes> encoded;
  std::vector<codec::ByteView> views;
  std::uint64_t bytes = 0;
  for (std::uint64_t h = m.from_height;
       h <= delivered_ && encoded.size() < cfg_.max_sync_blocks; ++h) {
    codec::Bytes b = encode_block_at(h);
    // Budget check BEFORE including: the response must stay under the
    // frame cap. A single block always fits alone (max_block_bytes is
    // clamped to half the cap), so the requester always makes progress.
    if (!encoded.empty() && bytes + b.size() > wire::kMaxPayloadBytes / 2) break;
    bytes += b.size();
    encoded.push_back(std::move(b));
  }
  views.reserve(encoded.size());
  for (const auto& b : encoded) views.emplace_back(b);
  transport_.send(from, wire::MsgType::kBlockSyncResponse,
                  wire::encode_block_sync_response(views));
}

void ReplicatedLedger::on_sync_response(const wire::BlockSyncResponse& m) {
  for (const auto& payload : m.blocks) {
    auto block = wire::parse_block(payload);
    if (!block) return;
    ingest(std::move(*block));
  }
}

namespace {
constexpr std::uint8_t kReplicatedStateVersion = 1;
}

void ReplicatedLedger::serialize_state(codec::Writer& w) const {
  w.u8(kReplicatedStateVersion);
  w.varint(delivered_);
  w.varint(appended_);
  w.varint(table_.size());
  w.varint(committed_keys_.size());
  for (const std::string& key : committed_keys_) {
    w.lp_bytes(codec::ByteView(reinterpret_cast<const std::uint8_t*>(key.data()),
                               key.size()));
  }
}

bool ReplicatedLedger::restore_state(codec::Reader& r) {
  const auto version = r.u8();
  if (!version || *version != kReplicatedStateVersion) return false;
  const auto delivered = r.varint();
  const auto appended = r.varint();
  const auto tx_count = r.varint();
  const auto key_count = r.varint();
  if (!delivered || !appended || !tx_count || !key_count) return false;
  delivered_ = *delivered;
  base_height_ = *delivered;  // everything below lives only in the snapshot
  appended_ = *appended;
  // Keep uid assignment continuous with the pre-crash run even though the
  // committed tx contents below the snapshot are gone.
  table_.set_base(static_cast<ledger::TxIdx>(*tx_count));
  committed_keys_.clear();
  for (std::uint64_t i = 0; i < *key_count; ++i) {
    const auto key = r.lp_bytes();
    if (!key) return false;
    committed_keys_.emplace(reinterpret_cast<const char*>(key->data()), key->size());
  }
  // The sequencer's submit-dedup set was a superset of the committed set;
  // the uncommitted remainder died with the process and its origins will
  // retransmit it.
  if (is_sequencer()) seen_submits_ = committed_keys_;
  return true;
}

bool ReplicatedLedger::restore_block(codec::ByteView payload) {
  auto m = wire::parse_block(payload);
  if (!m) return false;
  if (m->height != delivered_ + 1) return false;
  // Apply through the shared path — bypassing ingest()'s sequencer guard on
  // purpose: a restarted sequencer rebuilds its own sealed chain this way.
  // The commit hook is not fired (the record came FROM the WAL) and nothing
  // goes out on the wire.
  const ledger::Block& block = apply_txs(m->height, m->proposer, std::move(m->txs));
  if (app_cb_) app_cb_(block);
  return true;
}

}  // namespace setchain::net
