#pragma once

#include <functional>
#include <string>

#include "codec/byte_io.hpp"
#include "crypto/sha256.hpp"
#include "ledger/ledger_node.hpp"
#include "net/transport.hpp"

namespace setchain::net {

/// Content hash of one ledger transaction — SHA-256 over (kind byte ‖ data),
/// the dedup key both live ledger modes use for submit retransmission:
/// the origin resends a pending tx until this key appears in an applied
/// block, and receivers drop submits whose key they already hold, so
/// retries are always safe.
inline std::string tx_dedup_key(const ledger::Transaction& tx) {
  crypto::Sha256 h;
  const std::uint8_t kind = static_cast<std::uint8_t>(tx.kind);
  h.update(codec::ByteView(&kind, 1));
  h.update(tx.data);
  const auto d = h.finalize();
  return std::string(reinterpret_cast<const char*>(d.data()), d.size());
}

/// Transport-facing face shared by the two live ledger modes —
/// ReplicatedLedger (fixed sequencer) and ConsensusLedger (wire-level
/// consensus fail-over): the paper's IBlockLedger toward the Setchain
/// algorithms, plus the frame entry points NodeHost routes inbound ledger
/// traffic to. Every on_* handler that can face a malformed or misrouted
/// payload returns false so the host counts it as a bad frame.
class IWireLedger : public ledger::IBlockLedger {
 public:
  /// Arm the mode's timers (seal/sync/consensus ticks). Call once, before
  /// the first frame is dispatched.
  virtual void start() = 0;

  // Frames both modes speak.
  virtual void on_tx_submit(EndpointId from, wire::TxSubmit&& m) = 0;
  /// False when the payload does not parse as a block.
  virtual bool on_block_frame(codec::ByteView payload) = 0;
  virtual void on_sync_request(EndpointId from, const wire::BlockSyncRequest& m) = 0;
  virtual void on_sync_response(const wire::BlockSyncResponse& m) = 0;

  // Consensus-mode frames. The sequencer ledger does not speak them: the
  // defaults reject, and NodeHost counts the frame as bad (a consensus
  // frame reaching a sequencer-mode daemon means a misconfigured peer —
  // normally impossible, the ledger mode is folded into the cluster id).
  virtual bool on_proposal(EndpointId from, codec::ByteView payload) {
    (void)from;
    (void)payload;
    return false;
  }
  virtual bool on_prevote(EndpointId from, const wire::VoteMsg& m) {
    (void)from;
    (void)m;
    return false;
  }
  virtual bool on_precommit(EndpointId from, const wire::VoteMsg& m) {
    (void)from;
    (void)m;
    return false;
  }
  virtual bool on_round_skip(EndpointId from, const wire::RoundSkipMsg& m) {
    (void)from;
    (void)m;
    return false;
  }

  /// Locally-originated work not yet committed (mempool + in-flight
  /// submissions awaiting their block).
  virtual std::size_t pending_txs() const = 0;
  /// Quiescence probe: nothing pending locally and no delivery hole.
  virtual bool idle() const = 0;
  virtual std::uint64_t blocks_broadcast() const = 0;

  // ---- durable storage (src/storage, wired by NodeHost) ----

  /// Fired once per locally committed block with its height and the exact
  /// durable payload (kBlock layout for the sequencer; a CERTIFIED block —
  /// proposal plus its precommit quorum — for consensus mode, so replay can
  /// re-verify the certificate). The sequencer fires it BEFORE broadcasting
  /// a sealed block so
  /// a crash cannot publish a block the restarted process no longer has
  /// (which could fork the chain when it re-seals that height differently).
  /// NodeHost points this at the WAL — installed only after recovery replay
  /// so replayed blocks are not re-logged.
  using CommitHook = std::function<void(std::uint64_t height, codec::ByteView raw)>;
  virtual void set_commit_hook(CommitHook hook) = 0;

  /// Serialize the committed-ledger state into a snapshot body section:
  /// applied height, submission ordinal, committed tx count, and the
  /// committed content-key set that makes post-restart re-publication safe
  /// (docs/STORAGE_FORMAT.md). Chain payload bytes are NOT included — the
  /// WAL holds the tail, the snapshot compacts everything below it.
  virtual void serialize_state(codec::Writer& w) const = 0;
  /// Inverse, onto a freshly constructed not-yet-started ledger. After a
  /// successful restore the ledger reports height() == the snapshot height
  /// and base_height() == the same (compacted prefix). False on malformed
  /// input.
  virtual bool restore_state(codec::Reader& r) = 0;
  /// Replay one WAL block record (wire payload) during recovery. Must be
  /// the next height (height()+1); the block flows through the normal
  /// apply path including the application callback, but never back out to
  /// the wire or the commit hook. False on parse failure or height gap.
  virtual bool restore_block(codec::ByteView payload) = 0;
  /// Heights <= this are compacted away: no chain/raw storage, block-sync
  /// cannot be served below it (a fresh node that far behind needs a
  /// snapshot transfer, which is future work).
  virtual std::uint64_t base_height() const = 0;
};

}  // namespace setchain::net
