#pragma once

#include <deque>
#include <map>
#include <memory>

#include "ledger/ledger_node.hpp"
#include "net/transport.hpp"
#include "sim/simulation.hpp"

namespace setchain::net {

struct ReplicatedLedgerConfig {
  std::uint32_t n = 4;
  std::uint32_t self = 0;
  /// Fixed sequencer (node 0 by default): the node that orders transactions
  /// into blocks. Total order = the sequencer's seal order; every replica
  /// applies blocks strictly by height. Sequencer fail-over is future work
  /// (ROADMAP); the conformance oracle for faults stays the DES sim.
  std::uint32_t sequencer = 0;
  sim::Time block_interval = sim::from_millis(150);
  std::uint64_t max_block_bytes = 500'000;
  /// Replica catch-up cadence: ask the sequencer for blocks above our height
  /// this often. Recovers anything a dropped connection (or loopback fault
  /// window) lost, and lets late-starting daemons join mid-stream.
  sim::Time sync_interval = sim::from_millis(400);
  std::size_t max_sync_blocks = 64;  ///< blocks per sync response (frame cap)
};

/// The paper's abstract block ledger (P9/P10/P11) over a real transport:
/// a sequencer-ordered replicated log of opaque transactions.
///
///  * append(tx): local on the sequencer; forwarded as a kTxSubmit frame
///    otherwise. The tx is serialized bytes end to end — exactly what the
///    full-fidelity algorithms put in tx.data.
///  * The sequencer seals pending txs into a block every block_interval and
///    broadcasts kBlock frames; replicas apply blocks in height order,
///    buffering holes and filling them via kBlockSyncRequest.
///  * Every node materializes the same TxTable in the same order, so TxIdx
///    and uid assignments agree cluster-wide — the same invariant the
///    simulated CometBFT gives the algorithms.
///
/// Liveness under loss: ledger frames may vanish (TCP reconnect, loopback
/// fault injection). The periodic sync pull is the catch-up path; a replica
/// is eventually consistent as long as the sequencer stays reachable.
class ReplicatedLedger final : public ledger::IBlockLedger {
 public:
  ReplicatedLedger(ReplicatedLedgerConfig cfg, sim::Simulation& timers,
                   ITransport& transport);

  /// Arm the seal (sequencer) / sync (replica) timers. Call once, before
  /// the first frame is dispatched.
  void start();

  // IBlockLedger. `append` returns the local submission ordinal — NOT a
  // table index for frames still in flight to the sequencer; live
  // deployments leave the metrics taps (the only consumers) unwired.
  ledger::TxIdx append(sim::NodeId origin, ledger::Transaction tx) override;
  void on_new_block(sim::NodeId node, std::function<void(const ledger::Block&)> cb) override;
  const ledger::TxTable& txs() const override { return table_; }
  std::uint64_t height() const override { return delivered_; }

  // Frame entry points (NodeHost routes inbound ledger frames here).
  void on_tx_submit(wire::TxSubmit&& m);
  /// False when the payload does not parse as a block (counted upstream).
  bool on_block_frame(codec::ByteView payload);
  void on_sync_request(EndpointId from, const wire::BlockSyncRequest& m);
  void on_sync_response(const wire::BlockSyncResponse& m);

  bool is_sequencer() const { return cfg_.self == cfg_.sequencer; }
  std::size_t pending_txs() const { return pending_.size(); }
  /// Quiescence probe: nothing pending locally and no delivery hole.
  bool idle() const { return pending_.empty() && buffered_.empty(); }
  std::uint64_t blocks_broadcast() const { return blocks_broadcast_; }

 private:
  void seal_tick();
  void sync_tick();
  void ingest(wire::BlockMsg&& m);
  void deliver_ready();
  /// Re-encode block `height1based` from the local table (sync responses).
  codec::Bytes encode_block_at(std::uint64_t height1based) const;

  ReplicatedLedgerConfig cfg_;
  sim::Simulation& timers_;
  ITransport& transport_;

  ledger::TxTable table_;
  std::deque<ledger::Transaction> pending_;  ///< sequencer: unsealed submissions
  /// Applied chain; deque gives stable references for the deferred
  /// process_block continuations the servers schedule.
  std::deque<std::shared_ptr<ledger::Block>> chain_;
  std::map<std::uint64_t, wire::BlockMsg> buffered_;  ///< holes ahead of delivered_
  std::function<void(const ledger::Block&)> app_cb_;

  std::uint64_t delivered_ = 0;  ///< highest height applied locally
  std::uint64_t appended_ = 0;   ///< local submission ordinal
  std::uint64_t blocks_broadcast_ = 0;
  bool started_ = false;
};

}  // namespace setchain::net
