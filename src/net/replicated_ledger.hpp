#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/wire_ledger.hpp"
#include "sim/simulation.hpp"

namespace setchain::net {

struct ReplicatedLedgerConfig {
  std::uint32_t n = 4;
  std::uint32_t self = 0;
  /// Fixed sequencer (node 0 by default): the node that orders transactions
  /// into blocks. Total order = the sequencer's seal order; every replica
  /// applies blocks strictly by height. This mode has NO fail-over — a dead
  /// sequencer halts epoch progress (deploy ConsensusLedger when the
  /// paper's f-tolerance matters; this mode is the fast bench default).
  std::uint32_t sequencer = 0;
  sim::Time block_interval = sim::from_millis(150);
  std::uint64_t max_block_bytes = 500'000;
  /// Replica catch-up cadence: ask a live peer for blocks above our height
  /// this often. Recovers anything a dropped connection (or loopback fault
  /// window) lost, and lets late-starting daemons join mid-stream. Targets
  /// rotate round-robin across ALL peers — every node serves sync from its
  /// applied chain, so healing has no single point of failure.
  sim::Time sync_interval = sim::from_millis(400);
  std::size_t max_sync_blocks = 64;  ///< blocks per sync response (frame cap)
  /// Base backoff for retransmitting in-flight submissions (doubles per
  /// attempt, capped at 8x): a kTxSubmit lost on a dropped connection is
  /// resent until its tx appears in an applied block.
  sim::Time resubmit_interval = sim::from_millis(300);
};

/// The paper's abstract block ledger (P9/P10/P11) over a real transport:
/// a sequencer-ordered replicated log of opaque transactions.
///
///  * append(tx): local on the sequencer; forwarded as a kTxSubmit frame
///    otherwise, and RETRANSMITTED with capped backoff until the tx shows
///    up in an applied block (the sequencer dedups by content hash, so
///    retries are safe). The tx is serialized bytes end to end — exactly
///    what the full-fidelity algorithms put in tx.data.
///  * The sequencer seals pending txs into a block every block_interval and
///    broadcasts kBlock frames; replicas apply blocks in height order,
///    buffering holes and filling them via kBlockSyncRequest — pulled from
///    peers in rotation, not just the sequencer.
///  * Every node materializes the same TxTable in the same order, so TxIdx
///    and uid assignments agree cluster-wide — the same invariant the
///    simulated CometBFT gives the algorithms.
///
/// Liveness under loss: ledger frames may vanish (TCP reconnect, loopback
/// fault injection). The submit retransmission and the periodic sync pull
/// are the catch-up paths; a replica is eventually consistent as long as
/// the sequencer stays reachable.
class ReplicatedLedger final : public IWireLedger {
 public:
  ReplicatedLedger(ReplicatedLedgerConfig cfg, sim::Simulation& timers,
                   ITransport& transport);

  void start() override;

  // IBlockLedger. `append` returns the local submission ordinal — NOT a
  // table index for frames still in flight to the sequencer; live
  // deployments leave the metrics taps (the only consumers) unwired.
  ledger::TxIdx append(sim::NodeId origin, ledger::Transaction tx) override;
  void on_new_block(sim::NodeId node, std::function<void(const ledger::Block&)> cb) override;
  const ledger::TxTable& txs() const override { return table_; }
  std::uint64_t height() const override { return delivered_; }

  // Frame entry points (NodeHost routes inbound ledger frames here).
  void on_tx_submit(EndpointId from, wire::TxSubmit&& m) override;
  bool on_block_frame(codec::ByteView payload) override;
  void on_sync_request(EndpointId from, const wire::BlockSyncRequest& m) override;
  void on_sync_response(const wire::BlockSyncResponse& m) override;

  bool is_sequencer() const { return cfg_.self == cfg_.sequencer; }
  std::size_t pending_txs() const override {
    return pending_.size() + inflight_.size();
  }
  /// Quiescence probe: nothing pending locally, nothing awaiting its block,
  /// and no delivery hole.
  bool idle() const override {
    return pending_.empty() && inflight_.empty() && buffered_.empty();
  }
  std::uint64_t blocks_broadcast() const override { return blocks_broadcast_; }

  // Durable storage (see IWireLedger).
  void set_commit_hook(CommitHook hook) override { commit_hook_ = std::move(hook); }
  void serialize_state(codec::Writer& w) const override;
  bool restore_state(codec::Reader& r) override;
  bool restore_block(codec::ByteView payload) override;
  std::uint64_t base_height() const override { return base_height_; }

 private:
  /// One submission forwarded to the sequencer and not yet seen in a block.
  struct InflightSubmit {
    ledger::Transaction tx;
    std::uint32_t attempt = 0;
    sim::Time next_send = 0;
  };

  void seal_tick();
  void sync_tick();
  void resubmit_tick();
  void ingest(wire::BlockMsg&& m);
  void deliver_ready();
  void apply_block(std::shared_ptr<ledger::Block> block);
  /// Apply one in-order block's transactions: dedup-key bookkeeping, table
  /// adds, chain append. Shared by live delivery and WAL replay.
  const ledger::Block& apply_txs(std::uint64_t height, std::uint32_t proposer,
                                 std::vector<ledger::Transaction>&& txs);
  /// Re-encode block `height1based` from the local table (sync responses,
  /// WAL records). Height must be > base_height_.
  codec::Bytes encode_block_at(std::uint64_t height1based) const;

  ReplicatedLedgerConfig cfg_;
  sim::Simulation& timers_;
  ITransport& transport_;

  ledger::TxTable table_;
  std::deque<ledger::Transaction> pending_;  ///< sequencer: unsealed submissions
  /// Applied chain; deque gives stable references for the deferred
  /// process_block continuations the servers schedule. chain_[h-1-base_height_]
  /// is the block at height h; heights <= base_height_ were compacted into a
  /// snapshot and are gone.
  std::deque<std::shared_ptr<ledger::Block>> chain_;
  std::map<std::uint64_t, wire::BlockMsg> buffered_;  ///< holes ahead of delivered_
  std::function<void(const ledger::Block&)> app_cb_;

  /// Replica side of lost-submit recovery: everything forwarded and not yet
  /// committed, keyed by tx_dedup_key, retransmitted with capped backoff.
  std::unordered_map<std::string, InflightSubmit> inflight_;
  /// Sequencer side: content keys ever accepted (pending or sealed), so a
  /// retransmitted submit can never enter a block twice.
  std::unordered_set<std::string> seen_submits_;
  /// Content keys of every committed tx, on every role. Persisted in
  /// snapshots: after a restart the WAL-gap replay re-publishes the proofs
  /// it re-derives, and because Ed25519 is deterministic those re-appends
  /// are byte-identical — this set drops them in append() instead of
  /// letting them bloat the chain.
  std::unordered_set<std::string> committed_keys_;

  std::uint64_t delivered_ = 0;    ///< highest height applied locally
  std::uint64_t base_height_ = 0;  ///< heights <= this compacted away
  std::uint64_t appended_ = 0;     ///< local submission ordinal
  std::uint64_t blocks_broadcast_ = 0;
  std::uint32_t sync_cursor_ = 0;  ///< round-robin peer cursor for sync pulls
  bool started_ = false;
  CommitHook commit_hook_;
};

}  // namespace setchain::net
