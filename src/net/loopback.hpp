#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"
#include "sim/fault.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace setchain::net {

class LoopbackTransport;

/// In-process message hub: the drop-in stand-in for a TCP deployment that
/// runs the ENTIRE wire-protocol stack (encode -> frame -> decode) inside
/// one process on a shared discrete-event simulation. Deliveries are
/// scheduled with a per-hop latency, and an optional sim::FaultInjector —
/// the same oracle the pointer-based Network uses — rules on every
/// server<->server frame, so transport-level fault scenarios replay
/// deterministically from (plan, seed).
///
/// Endpoints: node ids 0..n-1 are the cluster servers (attach a
/// LoopbackTransport per node); register_client() adds client endpoints
/// (>= kClientEndpointBase) whose frames bypass fault injection (faults
/// model the server network; an unreachable client is just a closed test).
class LoopbackHub {
 public:
  LoopbackHub(sim::Simulation& sim, std::uint32_t n,
              sim::Time latency = sim::from_micros(120));

  /// Arm frame-level fault injection (server<->server hops only).
  void install_faults(sim::FaultPlan plan, std::uint64_t seed);
  const sim::FaultInjector* faults() const { return injector_.get(); }

  /// The per-node transport facade for node `id`.
  LoopbackTransport& transport(std::uint32_t id) { return *transports_[id]; }

  /// Register a client endpoint; its inbound frames go to `handler`.
  EndpointId register_client(FrameHandler handler);
  /// Remove a client endpoint. MUST be called before whatever the handler
  /// captures dies — deliveries already scheduled in the simulation are
  /// dropped once the endpoint is gone (LoopbackRpcChannel does this in
  /// its destructor).
  void unregister_client(EndpointId id) { clients_.erase(id); }

  /// Route one encoded frame from `from` to `to` (delivery is a scheduled
  /// sim event; the fault injector may drop or delay it). Returns false for
  /// unknown destinations.
  bool route(EndpointId from, EndpointId to, wire::MsgType type,
             codec::ByteView payload);

  sim::Simulation& simulation() { return sim_; }
  std::uint32_t size() const { return n_; }
  std::uint64_t frames_dropped() const { return dropped_; }
  std::uint64_t frames_corrupted() const { return corrupted_; }

 private:
  friend class LoopbackTransport;
  void deliver(EndpointId from, EndpointId to, codec::Bytes frame_bytes);

  sim::Simulation& sim_;
  std::uint32_t n_;
  sim::Time latency_;
  std::unique_ptr<sim::FaultInjector> injector_;
  std::vector<std::unique_ptr<LoopbackTransport>> transports_;
  std::unordered_map<EndpointId, FrameHandler> clients_;
  EndpointId next_client_ = kClientEndpointBase;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
};

/// ITransport face of one hub node. send() encodes the frame to real bytes
/// and the receiving side decodes them through the same FrameReader the TCP
/// backend uses — loopback runs are a full rehearsal of the wire format.
class LoopbackTransport final : public ITransport {
 public:
  LoopbackTransport(LoopbackHub& hub, std::uint32_t self) : hub_(hub), self_(self) {}

  void set_handler(FrameHandler handler) override { handler_ = std::move(handler); }
  bool send(EndpointId to, wire::MsgType type, codec::ByteView payload) override;
  /// Loopback delivers through the hub's simulation; nothing to poll.
  std::size_t poll(std::chrono::milliseconds) override { return 0; }
  std::uint32_t self() const override { return self_; }
  Counters counters() const override { return counters_; }

 private:
  friend class LoopbackHub;
  void receive(EndpointId from, codec::ByteView frame_bytes);

  LoopbackHub& hub_;
  std::uint32_t self_;
  FrameHandler handler_;
  Counters counters_;
};

}  // namespace setchain::net
