#pragma once

#include <atomic>
#include <memory>

#include "core/batch_exchange.hpp"
#include "core/compresschain.hpp"
#include "core/hashchain.hpp"
#include "core/vanilla.hpp"
#include "crypto/pki.hpp"
#include "net/consensus_ledger.hpp"
#include "net/replicated_ledger.hpp"
#include "net/transport.hpp"
#include "net/wire_ledger.hpp"
#include "runner/scenario.hpp"
#include "sim/simulation.hpp"
#include "storage/storage.hpp"

namespace setchain::net {

struct NodeHostConfig {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  std::uint32_t id = 0;
  runner::Algorithm algorithm = runner::Algorithm::kHashchain;
  /// PKI master seed — every daemon and client of one cluster shares it, so
  /// all processes derive identical keys (the paper's PKI assumption; a
  /// production deployment would distribute real keys instead).
  std::uint64_t seed = 42;
  /// Client process ids n .. n+client_slots-1 are pre-registered in the PKI
  /// so their element signatures verify.
  std::uint32_t client_slots = 64;

  std::uint32_t collector_limit = 8;
  sim::Time collector_timeout = sim::from_millis(200);
  sim::Time block_interval = sim::from_millis(150);
  std::uint64_t max_block_bytes = 500'000;
  sim::Time sync_interval = sim::from_millis(400);
  sim::Time request_batch_timeout = sim::from_millis(500);
  sim::Time request_batch_retry = sim::from_millis(100);

  /// How blocks get ordered: a fixed sequencer (fast, no fail-over) or
  /// wire-level consensus (any f crashed nodes tolerated). Folded into the
  /// cluster id, so mixed-mode clusters cannot form by accident.
  runner::LedgerMode ledger_mode = runner::LedgerMode::kFixedSequencer;
  sim::Time timeout_propose = sim::from_millis(3000);   ///< consensus round timeout
  sim::Time retry_interval = sim::from_millis(400);     ///< consensus retransmit base
  sim::Time resubmit_interval = sim::from_millis(300);  ///< sequencer-mode resubmit base

  /// Epoch-snapshot compaction cadence: once the node's epoch has advanced
  /// this far past the last snapshot (and applied height == ledger height,
  /// so the materialized state is block-consistent), serialize the state
  /// into a snapshot and prune covered WAL segments. 0 disables compaction
  /// (the WAL grows without bound — fine for tests and short runs). Only
  /// meaningful when a Storage is attached.
  std::uint64_t snapshot_epochs = 0;

  /// TEST-ONLY: run the consensus ledger with every Byzantine behaviour
  /// enabled (proposal equivocation, double voting, vote forgery, junk
  /// sync). The shared-seed PKI means this node signs its conflicting
  /// messages with its real key — exactly the adversary the masking and
  /// certificate checks defend against. Ignored in sequencer mode.
  bool byz_consensus = false;
};

/// One live Setchain node: a full-fidelity SetchainServer (vanilla /
/// compresschain / hashchain), the transport-replicated ledger, the
/// Hashchain batch exchange, and the client RPC service — everything behind
/// one ITransport. Single-threaded: frames arrive through on_frame (wired
/// to the transport handler) and timers fire through the simulation used as
/// a timer queue; with a TcpTransport, run_realtime() pumps both against
/// the wall clock, with a LoopbackHub the shared simulation drives it.
///
/// The identical NodeHost serves both backends, so the loopback conformance
/// suite exercises byte-for-byte the stack a TCP daemon runs.
class NodeHost final : public core::IBatchExchange {
 public:
  /// `storage` (optional) makes the node durable: committed blocks and
  /// received batches are WAL-logged, epoch snapshots compact the log, and
  /// recover() resumes from disk. The Storage outlives the host; nullptr
  /// runs the node fully in-memory (the pre-durability behavior).
  NodeHost(NodeHostConfig cfg, sim::Simulation& sim, ITransport& transport,
           storage::Storage* storage = nullptr);

  /// Restore state from the attached Storage: load the newest valid
  /// snapshot into the ledger + server, replay the WAL gap through the
  /// normal block-apply path, drain the resulting deferred work, then
  /// install the durability hooks so NEW commits get logged (replayed ones
  /// are not re-logged). Call once, BEFORE start(); a fresh data directory
  /// recovers to height 0 and just installs the hooks. Returns false (with
  /// a diagnostic in `error`) when the on-disk state is unusable — config
  /// mismatch or malformed snapshot body; torn WAL tails are repaired, not
  /// errors. Without a Storage this is a no-op returning true.
  bool recover(std::string* error = nullptr);

  /// Wire the transport handler and arm the ledger timers. Call once,
  /// after recover() when a Storage is attached.
  void start();

  /// Inbound frame dispatch (the transport handler; exposed for tests).
  void on_frame(EndpointId from, wire::Frame&& frame);

  /// Real-time pump for socket-backed hosts: advances the timer queue along
  /// the wall clock and polls the transport, until `stop` is set.
  void run_realtime(std::atomic<bool>& stop);

  // core::IBatchExchange (Hashchain fetch traffic -> wire frames).
  void send_request(crypto::ProcessId requester, crypto::ProcessId holder,
                    const core::EpochHash& h, std::uint64_t wire_bytes) override;
  void send_response(crypto::ProcessId responder, crypto::ProcessId requester,
                     const core::EpochHash& h, core::BatchPtr batch,
                     const codec::Bytes* serialized, sim::Time ready_at) override;

  core::SetchainServer& server() { return *server_; }
  const core::SetchainServer& server() const { return *server_; }
  IWireLedger& ledger() { return *ledger_; }
  const IWireLedger& ledger() const { return *ledger_; }
  crypto::Pki& pki() { return pki_; }
  const core::SetchainParams& params() const { return params_; }
  const NodeHostConfig& config() const { return cfg_; }
  std::uint64_t cluster() const { return cluster_; }

  std::uint64_t rpcs_served() const { return rpcs_served_; }
  std::uint64_t bad_frames() const { return bad_frames_; }

  /// Recovery counters from the attached Storage (nullptr when in-memory).
  const storage::RecoveryStats* recovery() const {
    return storage_ != nullptr ? &storage_->recovery() : nullptr;
  }
  storage::Storage* storage() { return storage_; }

  static std::uint64_t cluster_id_of(const NodeHostConfig& cfg) {
    return wire::cluster_id(cfg.seed, cfg.n, cfg.f,
                            static_cast<std::uint8_t>(cfg.algorithm),
                            static_cast<std::uint8_t>(cfg.ledger_mode));
  }

 private:
  void handle_add(EndpointId from, const wire::AddRequest& m);
  void handle_snapshot(EndpointId from, const wire::SnapshotRequest& m);
  void handle_proofs(EndpointId from, const wire::ProofsRequest& m);
  void handle_epoch(EndpointId from, const wire::EpochRequest& m);

  /// Point the ledger commit hook and the Hashchain batch store at the WAL.
  /// Installed at the END of recovery so replayed records are not re-logged.
  void install_durability_hooks();
  /// Periodic check of the epoch-snapshot cadence (rides sync_interval).
  void storage_tick();
  void write_snapshot_now();

  NodeHostConfig cfg_;
  sim::Simulation& sim_;
  ITransport& transport_;
  storage::Storage* storage_;  ///< nullptr = in-memory node
  std::uint64_t cluster_;

  crypto::Pki pki_;
  core::SetchainParams params_;
  std::vector<sim::BusyResource> cpus_;
  std::unique_ptr<IWireLedger> ledger_;  ///< ReplicatedLedger or ConsensusLedger
  std::unique_ptr<core::SetchainServer> server_;
  core::HashchainServer* hashchain_ = nullptr;  ///< set when algorithm is Hashchain

  std::uint64_t rpcs_served_ = 0;
  std::uint64_t bad_frames_ = 0;
  std::uint64_t last_snapshot_epoch_ = 0;
  bool hooks_installed_ = false;
};

}  // namespace setchain::net
