#pragma once

#include <cstddef>
#include <vector>

namespace setchain::metrics {

/// Small numeric helpers shared by the experiment reports.
///
/// Dispersion is reported as SAMPLE statistics (Bessel's n-1 correction):
/// experiment runs are finite samples of the simulated processes, and the
/// free function and RunningStats must agree — the guard `size() < 2`
/// already implied the sample convention.

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);  ///< sample stddev (n-1); <2 values -> 0

/// p in [0,1]; linear interpolation between order statistics. Empty input
/// returns 0.
double percentile(std::vector<double> xs, double p);

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1); fewer than 2 values -> 0
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace setchain::metrics
