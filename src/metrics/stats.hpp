#pragma once

#include <cstddef>
#include <vector>

namespace setchain::metrics {

/// Small numeric helpers shared by the experiment reports.

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);  ///< population stddev

/// p in [0,1]; linear interpolation between order statistics. Empty input
/// returns 0.
double percentile(std::vector<double> xs, double p);

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace setchain::metrics
