#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace setchain::metrics {

/// A (time, count) step event: `count` items passed a stage at `t`.
struct StepEvent {
  sim::Time t;
  std::uint64_t count;
};

/// Monotone step series of counted events (elements added / committed ...).
/// Events may be appended out of order; accessors sort lazily.
class StepSeries {
 public:
  void add(sim::Time t, std::uint64_t count);

  std::uint64_t total() const { return total_; }

  /// Items with event time <= t.
  std::uint64_t count_until(sim::Time t) const;

  /// Time by which `k` items had passed (kMaxTime if fewer than k ever do).
  sim::Time time_of_kth(std::uint64_t k) const;

  /// Rolling average rate (items/second) over `window`, sampled every
  /// `step`, from 0 to `horizon`. Matches the paper's "rolling average
  /// number of elements committed in 9 seconds" presentation.
  struct RatePoint {
    double t_seconds;
    double rate;
  };
  std::vector<RatePoint> rolling_rate(sim::Time window, sim::Time step,
                                      sim::Time horizon) const;

  const std::vector<StepEvent>& events() const;

 private:
  void ensure_sorted() const;

  mutable std::vector<StepEvent> events_;
  mutable bool sorted_ = true;
  std::uint64_t total_ = 0;
};

/// Empirical CDF over latency samples (seconds).
struct CdfPoint {
  double x;
  double f;  ///< fraction of samples <= x
};
std::vector<CdfPoint> empirical_cdf(std::vector<double> samples,
                                    std::size_t max_points = 200);

}  // namespace setchain::metrics
