#include "metrics/series.hpp"

#include <algorithm>
#include <limits>

namespace setchain::metrics {

void StepSeries::add(sim::Time t, std::uint64_t count) {
  if (count == 0) return;
  if (!events_.empty() && t < events_.back().t) sorted_ = false;
  events_.push_back({t, count});
  total_ += count;
}

void StepSeries::ensure_sorted() const {
  if (sorted_) return;
  std::stable_sort(events_.begin(), events_.end(),
                   [](const StepEvent& a, const StepEvent& b) { return a.t < b.t; });
  sorted_ = true;
}

std::uint64_t StepSeries::count_until(sim::Time t) const {
  ensure_sorted();
  std::uint64_t acc = 0;
  for (const auto& e : events_) {
    if (e.t > t) break;
    acc += e.count;
  }
  return acc;
}

sim::Time StepSeries::time_of_kth(std::uint64_t k) const {
  if (k == 0) return 0;
  ensure_sorted();
  std::uint64_t acc = 0;
  for (const auto& e : events_) {
    acc += e.count;
    if (acc >= k) return e.t;
  }
  return std::numeric_limits<sim::Time>::max();
}

std::vector<StepSeries::RatePoint> StepSeries::rolling_rate(sim::Time window,
                                                            sim::Time step,
                                                            sim::Time horizon) const {
  ensure_sorted();
  std::vector<RatePoint> out;
  if (step <= 0 || window <= 0) return out;
  std::size_t lo = 0, hi = 0;
  std::uint64_t in_window = 0;
  for (sim::Time t = step; t <= horizon; t += step) {
    const sim::Time begin = t - window;
    while (hi < events_.size() && events_[hi].t <= t) in_window += events_[hi++].count;
    while (lo < hi && events_[lo].t <= begin) in_window -= events_[lo++].count;
    out.push_back({sim::to_seconds(t),
                   static_cast<double>(in_window) / sim::to_seconds(window)});
  }
  return out;
}

const std::vector<StepEvent>& StepSeries::events() const {
  ensure_sorted();
  return events_;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples, std::size_t max_points) {
  std::vector<CdfPoint> out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  const std::size_t stride = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += stride) {
    out.push_back({samples[i], static_cast<double>(i + 1) / static_cast<double>(n)});
  }
  if (out.back().x != samples.back() || out.back().f != 1.0) {
    out.push_back({samples.back(), 1.0});
  }
  return out;
}

}  // namespace setchain::metrics
