#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

namespace setchain::metrics {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 1.0);
  const double idx = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace setchain::metrics
