#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "metrics/series.hpp"
#include "sim/time.hpp"

namespace setchain::metrics {

/// Pipeline stages an element passes through, mirroring Fig. 4 of the paper:
/// client add -> first CometBFT mempool -> f+1 mempools -> all mempools ->
/// included in a ledger block -> committed (f+1 epoch-proofs on the ledger).
enum class Stage : std::uint8_t {
  kMempoolFirst = 0,
  kMempoolQuorum = 1,  ///< f+1 mempools
  kMempoolAll = 2,
  kLedger = 3,
  kCommitted = 4,
};
constexpr std::size_t kStageCount = 5;

/// Central measurement sink for an experiment run. Two granularities:
///
/// * Aggregate (default): only counts over time (added / committed step
///   series, per-epoch element counts). O(epochs) memory; used for the
///   throughput and efficiency sweeps, where runs reach 10^5..10^6 elements.
/// * Per-element: additionally records every stage timestamp per element for
///   the latency-CDF experiments (Fig. 4), which run at modest rates.
///
/// Commit accounting implements the paper's definition: an element is
/// committed when the epoch containing it has f+1 valid epoch-proofs
/// included in ledger blocks. Proofs are deduplicated per (epoch, server).
class StageRecorder {
 public:
  struct Config {
    std::uint32_t n = 4;         ///< number of servers
    std::uint32_t f = 1;         ///< fault bound; commit threshold is f+1
    bool per_element = false;
  };

  explicit StageRecorder(Config cfg) : cfg_(cfg) {}

  // ---- ingestion (called by clients / servers / ledger glue) ----

  void on_add(std::uint64_t element_id, sim::Time t);

  /// Element's carrying transaction arrived in `server`'s mempool.
  void on_mempool_arrival(std::uint64_t element_id, std::uint32_t server, sim::Time t);

  /// Element's carrying transaction was finalized in a ledger block.
  void on_ledger(std::uint64_t element_id, sim::Time t);

  /// A (new) epoch was consolidated with `count` elements. The first caller
  /// wins (all correct servers build identical epochs); repeat calls for the
  /// same epoch are ignored. `element_ids` may be empty in aggregate mode.
  void on_epoch_consolidated(std::uint64_t epoch, std::uint64_t count,
                             const std::vector<std::uint64_t>& element_ids, sim::Time t);

  /// A valid epoch-proof for `epoch` signed by `server` appeared on the
  /// ledger. Triggers commit when f+1 distinct servers have proofs on-chain.
  void on_proof_on_ledger(std::uint64_t epoch, std::uint32_t server, sim::Time t);

  // ---- queries ----

  const StepSeries& added() const { return added_; }
  const StepSeries& committed() const { return committed_; }

  /// committed(t) / added(total): the paper's efficiency metric, evaluated
  /// at 50/75/100 s in Fig. 3.
  double efficiency_at(sim::Time t) const;

  /// Latency samples (seconds from add) for a stage; per-element mode only.
  std::vector<double> stage_latencies(Stage stage) const;

  /// Commit time (seconds) of the k-th committed element (Fig. 5 uses the
  /// first element and the 10%..50% fractions).
  std::optional<double> commit_time_of_fraction(double fraction) const;
  std::optional<double> commit_time_of_first() const;

  std::uint64_t epochs_consolidated() const { return epochs_.size(); }
  std::uint64_t epochs_committed() const { return epochs_committed_; }

  const Config& config() const { return cfg_; }

 private:
  struct ElemTimes {
    sim::Time add = -1;
    std::array<sim::Time, kStageCount> stage{-1, -1, -1, -1, -1};
    std::uint32_t mempool_arrivals = 0;
  };
  struct EpochInfo {
    std::uint64_t count = 0;
    std::vector<std::uint64_t> element_ids;
    std::unordered_set<std::uint32_t> proof_servers;
    bool committed = false;
  };

  ElemTimes& elem(std::uint64_t id) { return elements_[id]; }

  Config cfg_;
  StepSeries added_;
  StepSeries committed_;
  std::unordered_map<std::uint64_t, ElemTimes> elements_;  // per-element mode
  std::unordered_map<std::uint64_t, EpochInfo> epochs_;
  std::uint64_t epochs_committed_ = 0;
};

}  // namespace setchain::metrics
