#include "metrics/stage_recorder.hpp"

namespace setchain::metrics {

void StageRecorder::on_add(std::uint64_t element_id, sim::Time t) {
  added_.add(t, 1);
  if (cfg_.per_element) elem(element_id).add = t;
}

void StageRecorder::on_mempool_arrival(std::uint64_t element_id, std::uint32_t server,
                                       sim::Time t) {
  (void)server;
  if (!cfg_.per_element) return;
  auto& e = elem(element_id);
  ++e.mempool_arrivals;
  auto& st = e.stage;
  const auto idx = [](Stage s) { return static_cast<std::size_t>(s); };
  if (st[idx(Stage::kMempoolFirst)] < 0) st[idx(Stage::kMempoolFirst)] = t;
  if (e.mempool_arrivals == cfg_.f + 1 && st[idx(Stage::kMempoolQuorum)] < 0) {
    st[idx(Stage::kMempoolQuorum)] = t;
  }
  if (e.mempool_arrivals == cfg_.n && st[idx(Stage::kMempoolAll)] < 0) {
    st[idx(Stage::kMempoolAll)] = t;
  }
}

void StageRecorder::on_ledger(std::uint64_t element_id, sim::Time t) {
  if (!cfg_.per_element) return;
  auto& e = elem(element_id);
  auto& slot = e.stage[static_cast<std::size_t>(Stage::kLedger)];
  if (slot < 0) slot = t;
}

void StageRecorder::on_epoch_consolidated(std::uint64_t epoch, std::uint64_t count,
                                          const std::vector<std::uint64_t>& element_ids,
                                          sim::Time t) {
  (void)t;
  auto [it, inserted] = epochs_.try_emplace(epoch);
  if (!inserted) return;  // identical across correct servers; first wins
  it->second.count = count;
  if (cfg_.per_element) it->second.element_ids = element_ids;
}

void StageRecorder::on_proof_on_ledger(std::uint64_t epoch, std::uint32_t server,
                                       sim::Time t) {
  auto it = epochs_.find(epoch);
  if (it == epochs_.end()) {
    // Proof observed before any server reported consolidation; create the
    // record so the proof is not lost (count filled in later).
    it = epochs_.try_emplace(epoch).first;
  }
  EpochInfo& info = it->second;
  if (info.committed) return;
  info.proof_servers.insert(server);
  if (info.proof_servers.size() >= cfg_.f + 1) {
    info.committed = true;
    ++epochs_committed_;
    committed_.add(t, info.count);
    if (cfg_.per_element) {
      for (const auto id : info.element_ids) {
        auto& slot = elem(id).stage[static_cast<std::size_t>(Stage::kCommitted)];
        if (slot < 0) slot = t;
      }
    }
  }
}

double StageRecorder::efficiency_at(sim::Time t) const {
  const std::uint64_t total_added = added_.total();
  if (total_added == 0) return 1.0;
  return static_cast<double>(committed_.count_until(t)) /
         static_cast<double>(total_added);
}

std::vector<double> StageRecorder::stage_latencies(Stage stage) const {
  std::vector<double> out;
  out.reserve(elements_.size());
  const auto idx = static_cast<std::size_t>(stage);
  for (const auto& [id, e] : elements_) {
    if (e.add < 0 || e.stage[idx] < 0) continue;
    out.push_back(sim::to_seconds(e.stage[idx] - e.add));
  }
  return out;
}

std::optional<double> StageRecorder::commit_time_of_fraction(double fraction) const {
  const std::uint64_t total_added = added_.total();
  if (total_added == 0) return std::nullopt;
  const auto k = static_cast<std::uint64_t>(fraction * static_cast<double>(total_added));
  if (k == 0) return commit_time_of_first();
  const sim::Time t = committed_.time_of_kth(k);
  if (t == std::numeric_limits<sim::Time>::max()) return std::nullopt;
  return sim::to_seconds(t);
}

std::optional<double> StageRecorder::commit_time_of_first() const {
  const sim::Time t = committed_.time_of_kth(1);
  if (t == std::numeric_limits<sim::Time>::max()) return std::nullopt;
  return sim::to_seconds(t);
}

}  // namespace setchain::metrics
