#pragma once

#include <functional>

#include "ledger/transaction.hpp"

namespace setchain::ledger {

/// The paper's abstract *block-based ledger* L (§2): `append(tx)` submits a
/// transaction, `new_block(B)` notifies every server of each finalized block,
/// with guarantees
///   P9  (Ledger-Add-Eventual-Notify)  appended valid txs end up in a block
///                                     notified to all correct servers,
///   P10 (Ledger-Consistent-Notification) same blocks, same order, and
///   P11 (Notification-Implies-Append) no spurious transactions.
///
/// Two implementations:
///  * CometbftSim  — the full Tendermint-style consensus simulation
///                   (ledger/consensus.hpp), used by the experiments;
///  * InstantLedger — a zero-latency deterministic ledger for algorithm unit
///                   tests (this header).
class IBlockLedger {
 public:
  virtual ~IBlockLedger() = default;

  /// Submit `tx` through server `origin`'s ledger node
  /// (CometBFT BroadcastTxAsync). Returns the transaction's table index.
  virtual TxIdx append(sim::NodeId origin, Transaction tx) = 0;

  /// Register server `node`'s FinalizeBlock / new_block(B) callback.
  virtual void on_new_block(sim::NodeId node, std::function<void(const Block&)> cb) = 0;

  virtual const TxTable& txs() const = 0;
  virtual std::uint64_t height() const = 0;
};

/// Deterministic, zero-latency ledger for unit tests: appends accumulate in
/// a pending queue; `seal_block()` packs them (up to `max_block_bytes`) into
/// the next block and synchronously notifies every node in id order.
class InstantLedger final : public IBlockLedger {
 public:
  InstantLedger(std::uint32_t n, std::uint64_t max_block_bytes = 500'000)
      : n_(n), max_block_bytes_(max_block_bytes), callbacks_(n) {}

  TxIdx append(sim::NodeId origin, Transaction tx) override;
  void on_new_block(sim::NodeId node, std::function<void(const Block&)> cb) override;
  const TxTable& txs() const override { return table_; }
  std::uint64_t height() const override { return chain_.size(); }

  /// Pack pending txs into one block and deliver it. Returns false when
  /// nothing was pending (no empty blocks, like CometBFT's
  /// create_empty_blocks=false default).
  bool seal_block(sim::Time now = 0);

  /// Seal until the pending queue is empty.
  void seal_all(sim::Time now = 0);

  std::size_t pending() const { return pending_.size(); }
  const Block& block_at(std::uint64_t height1based) const {
    return chain_.at(height1based - 1);
  }

 private:
  std::uint32_t n_;
  std::uint64_t max_block_bytes_;
  TxTable table_;
  std::vector<TxIdx> pending_;
  std::deque<Block> chain_;  ///< deque: stable references for deferred apps
  std::vector<std::function<void(const Block&)>> callbacks_;
};

}  // namespace setchain::ledger
