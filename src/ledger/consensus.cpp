#include "ledger/consensus.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace setchain::ledger {

CometbftSim::CometbftSim(sim::Simulation& sim, sim::Network& net,
                         std::vector<sim::BusyResource>& cpus, ConsensusConfig cfg,
                         LedgerHooks hooks)
    : sim_(sim),
      net_(net),
      cpus_(cpus),
      cfg_(cfg),
      hooks_(std::move(hooks)),
      quorum_(2 * ((cfg.n - 1) / 3) + 1),
      mempools_(cfg.n, Mempool(cfg.mempool)),
      app_cbs_(cfg.n),
      byzantine_(cfg.n),
      next_deliver_(cfg.n, 1),
      deliver_buffer_(cfg.n) {
  assert(cpus_.size() >= cfg_.n);
}

void CometbftSim::set_byzantine(sim::NodeId node, LedgerByzantineConfig cfg) {
  byzantine_.at(node) = std::move(cfg);
}

void CometbftSim::on_new_block(sim::NodeId node, std::function<void(const Block&)> cb) {
  app_cbs_.at(node) = std::move(cb);
}

void CometbftSim::start() {
  if (started_) return;
  started_ = true;
  last_scheduled_height_ = next_height_;
  schedule_propose(next_height_, 0, sim_.now() + cfg_.block_interval);
}

TxIdx CometbftSim::append(sim::NodeId origin, Transaction tx) {
  const TxIdx idx = table_.add(std::move(tx));
  const Transaction& stored = table_.get(idx);

  // CheckTx at the origin node (CPU-modeled), then mempool insert + gossip.
  const sim::Time cost = hooks_.check_tx_cost ? hooks_.check_tx_cost(stored) : 0;
  const sim::Time done = cpus_[origin].acquire(sim_.now(), cost);
  sim_.schedule_at(done, [this, origin, idx] {
    const Transaction& checked = table_.get(idx);
    if (hooks_.check_tx && !hooks_.check_tx(checked)) return;  // rejected locally
    accept_into_mempool(origin, idx);
    // Disseminate to every peer (see class comment on the gossip model).
    gossip_tx(origin, idx);
  });
  return idx;
}

void CometbftSim::gossip_tx(sim::NodeId origin, TxIdx idx) {
  const Transaction& tx = table_.get(idx);
  for (sim::NodeId peer = 0; peer < cfg_.n; ++peer) {
    if (peer == origin) continue;
    if (mempools_[peer].seen(idx)) continue;  // re-gossip: peer already has it
    if (net_.node_down(peer)) continue;  // doomed send; re-gossip covers heals
    net_.send(origin, peer, tx.wire_size, [this, peer, idx] {
      const Transaction& received = table_.get(idx);
      const sim::Time peer_cost =
          hooks_.check_tx_cost ? hooks_.check_tx_cost(received) : 0;
      const sim::Time peer_done = cpus_[peer].acquire(sim_.now(), peer_cost);
      sim_.schedule_at(peer_done, [this, peer, idx] {
        const Transaction& accepted = table_.get(idx);
        if (hooks_.check_tx && !hooks_.check_tx(accepted)) return;
        accept_into_mempool(peer, idx);
      });
    });
  }
}

void CometbftSim::accept_into_mempool(sim::NodeId node, TxIdx idx) {
  if (!mempools_[node].add(idx, table_.get(idx))) return;
  if (hooks_.on_mempool_add) hooks_.on_mempool_add(node, idx, sim_.now());
  // A waiting proposer (empty mempool, create_empty_blocks=false) wakes up
  // as soon as the first transaction lands.
  if (waiting_for_txs_ && node == proposer_for(next_height_, current_round_)) {
    waiting_for_txs_ = false;
    schedule_propose(next_height_, current_round_,
                     std::max(sim_.now(), earliest_propose_));
  } else if (waiting_for_txs_) {
    // Landed at a non-proposer while the proposer starves — on a lossy
    // network the gossip hop to the proposer may have been lost, so make
    // sure the re-gossip chain is alive to hand it over.
    schedule_regossip();
  }
}

void CometbftSim::schedule_propose(std::uint64_t height, std::uint32_t round,
                                   sim::Time at) {
  earliest_propose_ = at;
  sim_.schedule_at(at, [this, height, round] { try_propose(height, round); });
}

CometbftSim::HeightState& CometbftSim::height_state(std::uint64_t height) {
  auto it = inflight_.find(height);
  if (it == inflight_.end()) {
    HeightState st;
    st.has_proposal.assign(cfg_.n, 0);
    st.prevotes.assign(cfg_.n, 0);
    st.precommits.assign(cfg_.n, 0);
    st.prevote_from.assign(std::size_t{cfg_.n} * cfg_.n, 0);
    st.precommit_from.assign(std::size_t{cfg_.n} * cfg_.n, 0);
    st.sent_prevote.assign(cfg_.n, 0);
    st.sent_precommit.assign(cfg_.n, 0);
    st.committed.assign(cfg_.n, 0);
    it = inflight_.emplace(height, std::move(st)).first;
  }
  return it->second;
}

void CometbftSim::try_propose(std::uint64_t height, std::uint32_t round) {
  if (height != next_height_ || round != current_round_) return;  // stale event
  const sim::NodeId proposer = proposer_for(height, round);

  if (byzantine_[proposer].silent_proposer || net_.node_down(proposer)) {
    // Correct nodes time out waiting for the proposal and move to the next
    // round with the next proposer (Tendermint round skip). A crashed
    // proposer looks exactly like a silent one from the outside.
    current_round_ = round + 1;
    schedule_propose(height, current_round_, sim_.now() + cfg_.timeout_propose);
    return;
  }

  std::vector<TxIdx> txs =
      mempools_[proposer].reap(table_, cfg_.max_block_bytes, &proposed_);
  if (txs.empty() && !cfg_.create_empty_blocks &&
      byzantine_[proposer].garbage_txs_per_block == 0) {
    waiting_for_txs_ = true;  // woken by accept_into_mempool
    // On a lossy network the wake-up gossip may itself be lost (or the
    // transactions may be stranded in other nodes' mempools): keep nudging,
    // starting each waiting episode at the base cadence.
    regossip_attempt_ = 0;
    schedule_regossip();
    return;
  }

  // Byzantine proposers may slip arbitrary transactions into their own
  // blocks without CheckTx (the application layer must survive this).
  std::uint64_t bytes = cfg_.proposal_overhead;
  for (std::uint32_t i = 0; i < byzantine_[proposer].garbage_txs_per_block; ++i) {
    if (!byzantine_[proposer].make_garbage) break;
    txs.push_back(table_.add(byzantine_[proposer].make_garbage()));
  }
  for (const TxIdx idx : txs) {
    bytes += table_.get(idx).wire_size;
    if (idx >= proposed_.size()) proposed_.resize(idx + 1, false);
    proposed_[idx] = true;
  }

  auto block = std::make_shared<Block>();
  block->height = height;
  block->proposer = proposer;
  block->proposed_at = sim_.now();
  block->txs = std::move(txs);
  block->bytes = bytes;

  HeightState& st = height_state(height);
  st.block = block;

  // The next height is scheduled when its proposer commits this block (see
  // commit_at): cadence = max(block_interval, consensus latency +
  // timeout_commit), like CometBFT.
  next_height_ = height + 1;
  current_round_ = 0;

  // Proposal dissemination, then two all-to-all vote rounds.
  deliver_proposal(proposer, height);
  for (sim::NodeId peer = 0; peer < cfg_.n; ++peer) {
    if (peer == proposer) continue;
    net_.send(proposer, peer, bytes, [this, peer, height] {
      deliver_proposal(peer, height);
    });
  }
  schedule_retry(height);
}

void CometbftSim::deliver_proposal(sim::NodeId node, std::uint64_t height) {
  // A height leaves inflight_ once committed everywhere; consensus traffic
  // still in flight then (retransmissions, slow links) must not resurrect it.
  const auto it = inflight_.find(height);
  if (it == inflight_.end()) return;
  HeightState& st = it->second;
  if (st.has_proposal[node]) return;
  st.has_proposal[node] = 1;
  if (st.sent_prevote[node]) return;
  st.sent_prevote[node] = 1;
  deliver_prevote(node, node, height);  // own vote counts immediately
  for (sim::NodeId peer = 0; peer < cfg_.n; ++peer) {
    if (peer == node) continue;
    net_.send(node, peer, cfg_.vote_size,
              [this, node, peer, height] { deliver_prevote(node, peer, height); });
  }
}

void CometbftSim::deliver_prevote(sim::NodeId from, sim::NodeId at,
                                  std::uint64_t height) {
  const auto it = inflight_.find(height);
  if (it == inflight_.end()) return;  // committed everywhere; stale vote
  HeightState& st = it->second;
  auto& seen = st.prevote_from[std::size_t{at} * cfg_.n + from];
  if (seen) return;  // retransmitted vote: already counted
  seen = 1;
  ++st.prevotes[at];
  if (st.prevotes[at] >= quorum_ && st.has_proposal[at] && !st.sent_precommit[at]) {
    st.sent_precommit[at] = 1;
    deliver_precommit(at, at, height);
    for (sim::NodeId peer = 0; peer < cfg_.n; ++peer) {
      if (peer == at) continue;
      net_.send(at, peer, cfg_.vote_size,
                [this, at, peer, height] { deliver_precommit(at, peer, height); });
    }
  }
}

void CometbftSim::deliver_precommit(sim::NodeId from, sim::NodeId at,
                                    std::uint64_t height) {
  const auto it = inflight_.find(height);
  if (it == inflight_.end()) return;  // committed everywhere; stale vote
  HeightState& st = it->second;
  auto& seen = st.precommit_from[std::size_t{at} * cfg_.n + from];
  if (seen) return;
  seen = 1;
  ++st.precommits[at];
  if (st.precommits[at] >= quorum_ && st.has_proposal[at] && !st.committed[at]) {
    commit_at(at, height);
  }
}

void CometbftSim::commit_at(sim::NodeId node, std::uint64_t height) {
  HeightState& st = height_state(height);
  st.committed[node] = 1;
  ++st.commit_count;

  if (!st.first_commit_done) {
    st.first_commit_done = true;
    st.block->first_commit_at = sim_.now();
    // chain_ is kept in height order even if a block's first commit lands
    // before its predecessor's (possible under extreme network delays).
    pending_chain_.emplace(height, st.block);
    while (!pending_chain_.empty() &&
           pending_chain_.begin()->first == chain_.size() + 1) {
      chain_.push_back(pending_chain_.begin()->second);
      pending_chain_.erase(pending_chain_.begin());
    }
    if (hooks_.on_block_committed) hooks_.on_block_committed(*st.block, sim_.now());
  }

  for (const TxIdx idx : st.block->txs) {
    mempools_[node].mark_committed(idx, table_.get(idx));
  }

  // A proposer cannot start height h+1 before committing height h: schedule
  // the next proposal once the upcoming proposer commits this block.
  if (height + 1 == next_height_ && node == proposer_for(next_height_, 0) &&
      last_scheduled_height_ < next_height_) {
    last_scheduled_height_ = next_height_;
    const sim::Time at = std::max(st.block->proposed_at + cfg_.block_interval,
                                  sim_.now() + cfg_.timeout_commit);
    schedule_propose(next_height_, 0, at);
  }

  // Deliver FinalizeBlock strictly in height order at each node (P10);
  // a block overtaking a slower predecessor waits in the buffer.
  deliver_buffer_[node].emplace(height, st.block);
  auto& buf = deliver_buffer_[node];
  while (!buf.empty() && buf.begin()->first == next_deliver_[node]) {
    const auto block = buf.begin()->second;
    buf.erase(buf.begin());
    ++next_deliver_[node];
    if (app_cbs_[node]) app_cbs_[node](*block);
  }

  if (st.commit_count == cfg_.n) inflight_.erase(height);
}

void CometbftSim::schedule_retry(std::uint64_t height) {
  if (!net_.lossy()) return;
  HeightState& st = height_state(height);
  // Capped exponential backoff: a height stuck behind an unhealed fault must
  // not turn the retransmission path into a message storm.
  const sim::Time backoff =
      cfg_.retry_interval *
      static_cast<sim::Time>(1u << std::min<std::uint32_t>(st.retry_attempt, 3));
  ++st.retry_attempt;
  sim_.schedule_in(backoff, [this, height] { retry_height(height); });
}

void CometbftSim::retry_height(std::uint64_t height) {
  const auto it = inflight_.find(height);
  if (it == inflight_.end()) return;  // committed everywhere: retries stop
  HeightState& st = it->second;
  if (!st.block) return;

  // Chain-progress fallback: height h+1 is normally scheduled when its
  // proposer commits h; if that proposer is crashed it never commits, so
  // schedule anyway (try_propose round-skips past down proposers).
  if (st.first_commit_done && height + 1 == next_height_ &&
      last_scheduled_height_ < next_height_) {
    last_scheduled_height_ = next_height_;
    schedule_propose(next_height_, 0, sim_.now() + cfg_.timeout_commit);
  }

  // Forward the proposal from ANY live holder (CometBFT gossips proposals
  // peer-to-peer, so a dead original proposer does not strand the block).
  sim::NodeId holder = cfg_.n;
  for (sim::NodeId node = 0; node < cfg_.n; ++node) {
    if (st.has_proposal[node] && !net_.node_down(node)) {
      holder = node;
      break;
    }
  }
  if (holder < cfg_.n) {
    for (sim::NodeId peer = 0; peer < cfg_.n; ++peer) {
      if (st.has_proposal[peer] || net_.node_down(peer)) continue;
      net_.send(holder, peer, st.block->bytes,
                [this, peer, height] { deliver_proposal(peer, height); });
    }
  }

  // Retransmit recorded votes to exactly the peers still missing them;
  // sender-deduplicated receipt makes duplicates harmless. Known-down
  // senders and receivers are skipped — the post-heal pass covers them.
  for (sim::NodeId voter = 0; voter < cfg_.n; ++voter) {
    if (net_.node_down(voter)) continue;
    for (sim::NodeId peer = 0; peer < cfg_.n; ++peer) {
      if (peer == voter || net_.node_down(peer)) continue;
      if (st.sent_prevote[voter] &&
          !st.prevote_from[std::size_t{peer} * cfg_.n + voter]) {
        net_.send(voter, peer, cfg_.vote_size, [this, voter, peer, height] {
          deliver_prevote(voter, peer, height);
        });
      }
      if (st.sent_precommit[voter] &&
          !st.precommit_from[std::size_t{peer} * cfg_.n + voter]) {
        net_.send(voter, peer, cfg_.vote_size, [this, voter, peer, height] {
          deliver_precommit(voter, peer, height);
        });
      }
    }
  }
  schedule_retry(height);
}

void CometbftSim::schedule_regossip() {
  if (!net_.lossy() || regossip_scheduled_) return;
  regossip_scheduled_ = true;
  // Same capped backoff as retry_height: transactions stranded at a
  // never-healing node must not busy-poll the scheduler to the horizon.
  const sim::Time backoff =
      cfg_.retry_interval *
      static_cast<sim::Time>(1u << std::min<std::uint32_t>(regossip_attempt_, 3));
  ++regossip_attempt_;
  sim_.schedule_in(backoff, [this] { regossip_pending(); });
}

void CometbftSim::regossip_pending() {
  regossip_scheduled_ = false;
  if (!waiting_for_txs_) return;
  // A down proposer cannot be woken by arriving transactions: hand the
  // height to the next proposer in rotation (try_propose does the skip).
  if (net_.node_down(proposer_for(next_height_, current_round_))) {
    waiting_for_txs_ = false;
    schedule_propose(next_height_, current_round_,
                     std::max(sim_.now(), earliest_propose_));
    return;
  }
  // Re-offer every pending transaction to the peers still missing it, from
  // its first live holder only (several nodes usually hold the same tx; one
  // copy per missing peer is enough). The mempool's seen-filter keeps this
  // quiet once gossip has converged.
  bool any_pending = false;
  std::unordered_set<TxIdx> offered;
  for (sim::NodeId node = 0; node < cfg_.n; ++node) {
    const bool down = net_.node_down(node);
    for (const TxIdx idx : mempools_[node].pending_list()) {
      if (idx < proposed_.size() && proposed_[idx]) continue;
      // Transactions stranded at a down node still keep the chain ticking —
      // the holder may heal — but nothing can be gossiped from it now.
      any_pending = true;
      if (down) continue;
      if (!offered.insert(idx).second) continue;
      gossip_tx(node, idx);
    }
  }
  // Nothing left to hand over: let the chain die so the run can drain (a
  // future append re-arms it through accept_into_mempool).
  if (any_pending) schedule_regossip();
}

void CometbftSim::replay_range(sim::NodeId node, std::uint64_t from_height) {
  if (!app_cbs_[node]) return;
  for (std::uint64_t h = std::max<std::uint64_t>(from_height, 1);
       h < next_deliver_[node]; ++h) {
    app_cbs_[node](*chain_[h - 1]);
  }
}

bool CometbftSim::idle() const {
  for (const auto& [h, st] : inflight_) {
    if (st.block) return false;  // proposed but not yet committed everywhere
  }
  return true;
}

}  // namespace setchain::ledger
