#include "ledger/mempool.hpp"

namespace setchain::ledger {

bool Mempool::add(TxIdx idx, const Transaction& tx) {
  ensure(idx, seen_);
  if (seen_[idx]) return false;
  if (count_ + 1 > cfg_.max_txs || bytes_ + tx.wire_size > cfg_.max_bytes) {
    ++rejected_capacity_;
    return false;
  }
  seen_[idx] = true;
  ensure(idx, pending_);
  pending_[idx] = true;
  fifo_.push_back(idx);
  ++count_;
  bytes_ += tx.wire_size;
  return true;
}

void Mempool::mark_committed(TxIdx idx, const Transaction& tx) {
  ensure(idx, seen_);
  const bool was_pending = idx < pending_.size() && pending_[idx];
  seen_[idx] = true;
  if (was_pending) {
    pending_[idx] = false;
    --count_;
    bytes_ -= tx.wire_size;
    // The fifo entry is removed lazily during reap.
  }
}

std::vector<TxIdx> Mempool::pending_list() const {
  std::vector<TxIdx> out;
  out.reserve(count_);
  for (const TxIdx idx : fifo_) {
    if (idx < pending_.size() && pending_[idx]) out.push_back(idx);
  }
  return out;
}

std::vector<TxIdx> Mempool::reap(const TxTable& table, std::uint64_t max_bytes,
                                 const std::vector<bool>* exclude) {
  // Prune committed entries off the front so repeated reaps stay cheap.
  while (!fifo_.empty()) {
    const TxIdx front = fifo_.front();
    if (front < pending_.size() && pending_[front]) break;
    fifo_.pop_front();
  }
  std::vector<TxIdx> out;
  std::uint64_t used = 0;
  for (const TxIdx idx : fifo_) {
    if (idx >= pending_.size() || !pending_[idx]) continue;
    if (exclude && idx < exclude->size() && (*exclude)[idx]) continue;
    const std::uint32_t sz = table.get(idx).wire_size;
    if (used + sz > max_bytes) {
      if (out.empty()) continue;  // single oversized tx: skip it, try next
      break;
    }
    used += sz;
    out.push_back(idx);
  }
  return out;
}

}  // namespace setchain::ledger
