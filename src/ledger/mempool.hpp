#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "ledger/transaction.hpp"

namespace setchain::ledger {

/// Per-node unconfirmed-transaction pool, mirroring the CometBFT mempool
/// the paper tunes ("mempool size has been set to 10,000,000 transactions or
/// 2 GB, whichever is reached first", §4).
struct MempoolConfig {
  std::uint64_t max_txs = 10'000'000;
  std::uint64_t max_bytes = std::uint64_t{2} << 30;  // 2 GiB
};

class Mempool {
 public:
  explicit Mempool(MempoolConfig cfg = {}) : cfg_(cfg) {}

  /// Insert if never seen and within capacity. Returns true when inserted.
  bool add(TxIdx idx, const Transaction& tx);

  /// A transaction that was committed must never re-enter (gossip may
  /// deliver it late); `mark_committed` also removes it if pending.
  void mark_committed(TxIdx idx, const Transaction& tx);

  bool seen(TxIdx idx) const { return idx < seen_.size() && seen_[idx]; }

  /// FIFO reap of pending transactions up to `max_bytes` total. Prunes
  /// already-committed entries from the queue front as a side effect.
  /// Entries whose index is set in `exclude` (when provided) are skipped —
  /// the consensus layer uses this to avoid re-proposing transactions that
  /// sit in a proposed-but-not-yet-committed block.
  std::vector<TxIdx> reap(const TxTable& table, std::uint64_t max_bytes,
                          const std::vector<bool>* exclude = nullptr);

  std::uint64_t pending_count() const { return count_; }
  std::uint64_t pending_bytes() const { return bytes_; }
  std::uint64_t rejected_capacity() const { return rejected_capacity_; }

  /// Snapshot of the currently-pending transactions in FIFO order. Used by
  /// the consensus layer's re-gossip path on lossy networks (CometBFT keeps
  /// retransmitting mempool contents; the one-shot gossip model needs the
  /// same escape hatch once messages can be lost).
  std::vector<TxIdx> pending_list() const;

 private:
  void ensure(std::size_t idx, std::vector<bool>& v) const {
    if (idx >= v.size()) v.resize(idx + 1, false);
  }

  MempoolConfig cfg_;
  std::deque<TxIdx> fifo_;
  mutable std::vector<bool> seen_;     // ever added or committed
  mutable std::vector<bool> pending_;  // currently in pool
  std::uint64_t count_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t rejected_capacity_ = 0;
};

}  // namespace setchain::ledger
