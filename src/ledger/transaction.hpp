#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "codec/bytes.hpp"
#include "sim/network.hpp"
#include "sim/time.hpp"

namespace setchain::ledger {

/// Index into the run-wide TxTable. Transactions are stored once and
/// referenced by index from mempools and blocks, keeping high-rate runs
/// (millions of ledger transactions) cheap in memory.
using TxIdx = std::uint32_t;

/// Application-level meaning of a ledger transaction. The ledger itself is
/// agnostic ("we prefer not to call this object a blockchain since its
/// transactions have no semantics" — §2); the tag lets the Setchain layer
/// dispatch without re-parsing in calibrated-fidelity runs.
enum class TxKind : std::uint8_t {
  kOpaque = 0,           ///< unknown bytes (e.g. garbage from a Byzantine node)
  kElement = 1,          ///< Vanilla: one Setchain element
  kEpochProof = 2,       ///< Vanilla: one epoch-proof
  kCompressedBatch = 3,  ///< Compresschain: one compressed batch
  kHashBatch = 4,        ///< Hashchain: <hash, signature, server>
};

struct Transaction {
  std::uint64_t uid = 0;        ///< globally unique id (dedup key)
  TxKind kind = TxKind::kOpaque;
  std::uint32_t wire_size = 0;  ///< bytes on the wire / in a block
  codec::Bytes data;            ///< serialized form (full fidelity)
  std::shared_ptr<const void> app;  ///< semantic payload (calibrated fidelity)

  /// Typed access to the calibrated-fidelity payload.
  template <typename T>
  const T* app_as() const {
    return static_cast<const T*>(app.get());
  }
};

struct Block {
  std::uint64_t height = 0;  ///< 1-based
  sim::NodeId proposer = 0;
  sim::Time proposed_at = 0;
  sim::Time first_commit_at = 0;  ///< earliest commit across correct nodes
  std::vector<TxIdx> txs;
  std::uint64_t bytes = 0;
};

/// Run-wide transaction arena. Appends only; uids are assigned sequentially
/// so per-node dedup can use plain bit vectors. A recovered node restores
/// only the committed suffix of the table: set_base() shifts the index
/// origin so uids stay continuous with the pre-crash run while the dropped
/// prefix costs no memory.
class TxTable {
 public:
  /// Stores `tx`, assigns its uid, returns its index (== uid).
  TxIdx add(Transaction tx);

  const Transaction& get(TxIdx idx) const { return txs_[idx - base_]; }
  std::size_t size() const { return base_ + txs_.size(); }

  /// Declare that indices [0, base) are forgotten (snapshot recovery). Only
  /// valid on an empty table; get() for a forgotten index is undefined.
  void set_base(TxIdx base) { base_ = base; }
  TxIdx base() const { return base_; }

 private:
  std::deque<Transaction> txs_;
  TxIdx base_ = 0;
};

}  // namespace setchain::ledger
