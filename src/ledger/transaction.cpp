#include "ledger/transaction.hpp"

namespace setchain::ledger {

TxIdx TxTable::add(Transaction tx) {
  const TxIdx idx = base_ + static_cast<TxIdx>(txs_.size());
  tx.uid = idx;
  txs_.push_back(std::move(tx));
  return idx;
}

}  // namespace setchain::ledger
