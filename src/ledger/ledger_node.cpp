#include "ledger/ledger_node.hpp"

namespace setchain::ledger {

TxIdx InstantLedger::append(sim::NodeId origin, Transaction tx) {
  (void)origin;
  const TxIdx idx = table_.add(std::move(tx));
  pending_.push_back(idx);
  return idx;
}

void InstantLedger::on_new_block(sim::NodeId node, std::function<void(const Block&)> cb) {
  callbacks_.at(node) = std::move(cb);
}

bool InstantLedger::seal_block(sim::Time now) {
  if (pending_.empty()) return false;

  Block b;
  b.height = chain_.size() + 1;
  b.proposer = static_cast<sim::NodeId>(chain_.size() % n_);
  b.proposed_at = now;
  b.first_commit_at = now;

  std::uint64_t used = 0;
  std::size_t taken = 0;
  for (; taken < pending_.size(); ++taken) {
    const std::uint32_t sz = table_.get(pending_[taken]).wire_size;
    if (!b.txs.empty() && used + sz > max_block_bytes_) break;
    used += sz;
    b.txs.push_back(pending_[taken]);
  }
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(taken));
  b.bytes = used;
  chain_.push_back(b);

  // Synchronous in-order delivery: Properties 9-11 hold by construction.
  const Block& sealed = chain_.back();
  for (std::uint32_t node = 0; node < n_; ++node) {
    if (callbacks_[node]) callbacks_[node](sealed);
  }
  return true;
}

void InstantLedger::seal_all(sim::Time now) {
  while (seal_block(now)) {
  }
}

}  // namespace setchain::ledger
