#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "ledger/ledger_node.hpp"
#include "ledger/mempool.hpp"
#include "sim/resource.hpp"
#include "sim/simulation.hpp"

namespace setchain::ledger {

/// Timing/size parameters of the simulated CometBFT deployment, calibrated
/// to the paper's measurements: ~0.8 blocks/s, 0.5 MB blocks by default.
struct ConsensusConfig {
  std::uint32_t n = 4;
  /// Minimum spacing between consecutive proposals. Together with
  /// timeout_commit this yields the paper's ~0.8 blocks/s on a LAN.
  sim::Time block_interval = sim::from_seconds(1.25);
  /// CometBFT-style pause between committing height h and proposing h+1.
  /// The next proposal fires at max(prev_proposal + block_interval,
  /// next_proposer_commit + timeout_commit): on a LAN the interval
  /// dominates; under injected WAN delay the commit path lengthens and the
  /// block rate drops below 0.8/s, exactly how network_delay degrades
  /// efficiency in Fig. 3c.
  sim::Time timeout_commit = sim::from_seconds(1.15);
  std::uint64_t max_block_bytes = 500'000;
  sim::Time timeout_propose = sim::from_seconds(3.0);
  std::uint32_t vote_size = 150;          ///< prevote/precommit wire bytes
  std::uint32_t proposal_overhead = 200;  ///< block header bytes
  bool create_empty_blocks = false;       ///< CometBFT default behaviour
  /// Retransmission / catch-up cadence on lossy networks (fault injection):
  /// stuck heights re-disseminate their proposal and recorded votes, and
  /// waiting proposers trigger a mempool re-gossip, every this often (with
  /// capped exponential backoff). Real CometBFT gets the same effect from
  /// its gossip reactors and blocksync; the one-shot dissemination model
  /// needs it explicitly once messages can be lost. Only armed when the
  /// Network has a fault plan installed.
  sim::Time retry_interval = sim::from_seconds(2);
  MempoolConfig mempool;
};

/// Application hooks (ABCI-style) plus measurement taps.
struct LedgerHooks {
  /// CheckTx: stateless validity filter run by every node before a tx enters
  /// its mempool. Invalid txs are dropped (never gossiped onward).
  std::function<bool(const Transaction&)> check_tx;
  /// CPU time CheckTx consumes (applied to the node's BusyResource).
  std::function<sim::Time(const Transaction&)> check_tx_cost;
  /// A tx entered `node`'s mempool at `t` (drives the Fig.-4 mempool CDFs).
  std::function<void(sim::NodeId node, TxIdx idx, sim::Time t)> on_mempool_add;
  /// A block reached its first commit (canonical "in the ledger" time).
  std::function<void(const Block&, sim::Time)> on_block_committed;
};

/// Byzantine behaviours at the ledger layer (for fault-injection tests).
struct LedgerByzantineConfig {
  bool silent_proposer = false;  ///< never proposes; triggers round skips
  std::uint32_t garbage_txs_per_block = 0;  ///< injected into own proposals
  std::function<Transaction()> make_garbage;
};

/// Discrete-event simulation of a CometBFT-style BFT ledger:
/// mempool + gossip, rotating proposer, propose -> prevote -> precommit ->
/// commit with quorum 2f'+1 (f' = floor((n-1)/3)), per-node commit times
/// driven by the network model, round skips on silent proposers, and
/// FinalizeBlock delivery per node (ABCI; the Setchain algorithms run
/// there, exactly like the paper's implementation).
///
/// Dissemination is modeled as direct origin-to-peers sends rather than
/// epidemic flooding; with full-mesh clusters of 4-10 nodes this has the
/// same per-link byte load as CometBFT's gossip while costing O(n) instead
/// of O(n^2) simulation events per transaction (DESIGN.md, substitutions).
class CometbftSim final : public IBlockLedger {
 public:
  CometbftSim(sim::Simulation& sim, sim::Network& net,
              std::vector<sim::BusyResource>& cpus, ConsensusConfig cfg,
              LedgerHooks hooks);

  // IBlockLedger
  TxIdx append(sim::NodeId origin, Transaction tx) override;
  void on_new_block(sim::NodeId node, std::function<void(const Block&)> cb) override;
  const TxTable& txs() const override { return table_; }
  std::uint64_t height() const override { return chain_.size(); }

  /// Start the proposal schedule. Call once before running the simulation.
  void start();

  void set_byzantine(sim::NodeId node, LedgerByzantineConfig cfg);

  const Block& block_at(std::uint64_t height1based) const {
    return *chain_.at(height1based - 1);
  }
  const Mempool& mempool(sim::NodeId node) const { return mempools_[node]; }
  std::uint32_t quorum() const { return quorum_; }

  /// True once every inflight height has committed everywhere (drain check).
  bool idle() const;

  /// Crash recovery: re-run FinalizeBlock at `node` for the already-delivered
  /// heights [from_height, delivered], in order — the recovering server
  /// rebuilds its derived state from the ledger, which is exactly the
  /// persistence model the Setchain algorithms assume. A wiped restart
  /// replays from 1; a retained one from its last applied height + 1 (blocks
  /// that were delivered but still queued on the CPU when the process died).
  void replay_range(sim::NodeId node, std::uint64_t from_height);

 private:
  struct HeightState {
    std::shared_ptr<Block> block;
    std::vector<std::uint8_t> has_proposal;
    std::vector<std::uint8_t> prevotes;    ///< distinct prevotes seen, per node
    std::vector<std::uint8_t> precommits;  ///< distinct precommits seen, per node
    /// Sender-deduplicated vote receipt ([receiver * n + sender]): lossy-mode
    /// retransmissions must never double-count a vote toward the quorum.
    std::vector<std::uint8_t> prevote_from;
    std::vector<std::uint8_t> precommit_from;
    std::vector<std::uint8_t> sent_prevote;
    std::vector<std::uint8_t> sent_precommit;
    std::vector<std::uint8_t> committed;
    std::uint32_t commit_count = 0;
    std::uint32_t retry_attempt = 0;
    bool first_commit_done = false;
  };

  sim::NodeId proposer_for(std::uint64_t height, std::uint32_t round) const {
    return static_cast<sim::NodeId>((height + round) % cfg_.n);
  }

  void schedule_propose(std::uint64_t height, std::uint32_t round, sim::Time at);
  void try_propose(std::uint64_t height, std::uint32_t round);
  void deliver_proposal(sim::NodeId node, std::uint64_t height);
  void deliver_prevote(sim::NodeId from, sim::NodeId at, std::uint64_t height);
  void deliver_precommit(sim::NodeId from, sim::NodeId at, std::uint64_t height);
  void commit_at(sim::NodeId node, std::uint64_t height);
  void accept_into_mempool(sim::NodeId node, TxIdx idx);
  void gossip_tx(sim::NodeId origin, TxIdx idx);
  HeightState& height_state(std::uint64_t height);

  // Lossy-network recovery (no-ops on a perfect network).
  void schedule_retry(std::uint64_t height);
  void retry_height(std::uint64_t height);
  void schedule_regossip();
  void regossip_pending();

  sim::Simulation& sim_;
  sim::Network& net_;
  std::vector<sim::BusyResource>& cpus_;
  ConsensusConfig cfg_;
  LedgerHooks hooks_;
  std::uint32_t quorum_;

  TxTable table_;
  std::vector<Mempool> mempools_;
  std::vector<std::function<void(const Block&)>> app_cbs_;
  std::vector<LedgerByzantineConfig> byzantine_;
  std::vector<std::shared_ptr<Block>> chain_;
  std::map<std::uint64_t, std::shared_ptr<Block>> pending_chain_;
  std::map<std::uint64_t, HeightState> inflight_;

  std::uint64_t next_height_ = 1;
  std::uint64_t last_scheduled_height_ = 0;
  std::uint32_t current_round_ = 0;
  bool waiting_for_txs_ = false;
  bool regossip_scheduled_ = false;
  std::uint32_t regossip_attempt_ = 0;  ///< backoff step, reset per episode
  sim::Time earliest_propose_ = 0;
  bool started_ = false;

  /// Txs already placed in a proposed block; excluded from later reaps so no
  /// transaction is ever included twice (ledger-level uniqueness).
  std::vector<bool> proposed_;
  /// Per-node in-order FinalizeBlock delivery (Property 10): blocks that
  /// commit at a node ahead of a predecessor are buffered here.
  std::vector<std::uint64_t> next_deliver_;
  std::vector<std::map<std::uint64_t, std::shared_ptr<const Block>>> deliver_buffer_;
};

}  // namespace setchain::ledger
