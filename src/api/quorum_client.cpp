#include "api/quorum_client.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace setchain::api {

QuorumClient::QuorumClient(std::vector<ISetchainNode*> nodes, const crypto::Pki& pki,
                           Config cfg)
    : nodes_(std::move(nodes)),
      pki_(&pki),
      cfg_(cfg),
      status_(nodes_.size(), NodeStatus::kOk) {}

QuorumClient::AddResult QuorumClient::add(core::Element e) {
  AddResult r;
  const std::size_t n = nodes_.size();
  if (n == 0) return r;
  const std::size_t start = cfg_.primary % n;

  std::vector<std::size_t> refused;
  // `last` hands the element over by move: no further offer can happen.
  const auto offer = [&](std::size_t i, bool last) {
    ++r.attempted;
    const bool accepted = last ? nodes_[i]->add(std::move(e)) : nodes_[i]->add(e);
    if (accepted) {
      ++r.accepted;
    } else {
      refused.push_back(i);
    }
  };

  switch (cfg_.write_policy) {
    case WritePolicy::kAll:
      for (std::size_t k = 0; k < n; ++k) offer((start + k) % n, k + 1 == n);
      r.ok = r.accepted >= 1;
      break;
    case WritePolicy::kQuorum:
      for (std::size_t k = 0; k < n && r.accepted < quorum(); ++k) {
        offer((start + k) % n, k + 1 == n);
      }
      r.ok = r.accepted >= quorum();
      break;
    case WritePolicy::kPrimary: {
      // Failover: walk past refusing nodes until one accepts. f+1 distinct
      // nodes always include a correct server, so trying more than that
      // cannot help — it only lets a flood of invalid elements charge
      // validation work on the whole cluster instead of f+1 nodes.
      const std::size_t attempts = std::min<std::size_t>(n, quorum());
      for (std::size_t k = 0; k < attempts && r.accepted == 0; ++k) {
        offer((start + k) % n, k + 1 == attempts);
      }
      // Refusing a fresh element the next node then accepted is misbehaving
      // (or unreachable); remember it. Blame is kPrimary-only: broadcast
      // policies legitimately see "already known" refusals, and when nobody
      // accepts the element itself was bad.
      if (r.accepted > 0) {
        for (const auto i : refused) {
          if (status_[i] == NodeStatus::kOk) status_[i] = NodeStatus::kRefusing;
        }
      }
      r.ok = r.accepted >= 1;
      break;
    }
  }
  return r;
}

QuorumClient::View QuorumClient::get() {
  View view;

  std::vector<NodeSnapshot> snaps(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (status_[i] != NodeStatus::kEquivocating) snaps[i] = nodes_[i]->snapshot();
  }

  // Adopt epochs in order while f+1 nodes agree on an identical
  // (hash, contents) record. At most f nodes are Byzantine, so an f+1
  // quorum always contains a correct server's word.
  for (std::uint64_t e = 1;; ++e) {
    // (hash, ids) -> supporting node indices.
    std::map<std::pair<core::EpochHash, std::vector<core::ElementId>>,
             std::vector<std::size_t>>
        ballots;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (status_[i] == NodeStatus::kEquivocating) continue;
      if (snaps[i].history == nullptr || snaps[i].history->size() < e) continue;
      const core::EpochRecord& rec = (*snaps[i].history)[e - 1];
      if (rec.number != e) {
        // A history whose i-th record is not epoch i is structurally bogus.
        status_[i] = NodeStatus::kEquivocating;
        continue;
      }
      ballots[{rec.hash, rec.ids}].push_back(i);
    }

    const auto winner =
        std::find_if(ballots.begin(), ballots.end(), [&](const auto& kv) {
          return kv.second.size() >= quorum();
        });
    if (winner == ballots.end()) break;  // no quorum: epoch e is not committed yet

    // Nodes voting against the quorum record are equivocating: their word
    // contradicts at least one correct server. Mask them from now on.
    for (const auto& [key, supporters] : ballots) {
      if (&key == &winner->first) continue;
      for (const auto i : supporters) status_[i] = NodeStatus::kEquivocating;
    }

    view.history.push_back((*snaps[winner->second.front()].history)[e - 1]);
    view.epoch = e;
  }

  for (const auto& rec : view.history) {
    view.the_set.insert(rec.ids.begin(), rec.ids.end());
  }
  for (const auto s : status_) {
    if (s == NodeStatus::kEquivocating) ++view.masked_nodes;
  }
  return view;
}

QuorumClient::VerifyResult QuorumClient::verify(core::ElementId id) {
  VerifyResult out;
  const View view = get();

  const core::EpochRecord* rec = nullptr;
  for (const auto& r : view.history) {
    if (std::binary_search(r.ids.begin(), r.ids.end(), id)) {
      rec = &r;
      break;
    }
  }
  if (rec == nullptr) return out;
  out.in_epoch = true;
  out.epoch = rec->number;

  // Gather proofs for the agreed epoch hash across EVERY live node: the
  // f+1 signatures may be spread over the cluster, with no single server
  // holding a committing set. Each signing server counts once.
  std::unordered_set<crypto::ProcessId> signers;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (status_[i] == NodeStatus::kEquivocating) continue;
    bool contributed = false;
    for (const auto& p : nodes_[i]->proofs_for_epoch(rec->number)) {
      if (p.epoch != rec->number) continue;  // lying proof store
      if (!core::valid_proof(p, rec->hash, *pki_, cfg_.fidelity)) continue;
      if (signers.insert(p.server).second) contributed = true;
    }
    if (contributed) ++out.proof_sources;
  }
  out.valid_proofs = signers.size();
  out.committed = out.valid_proofs >= quorum();
  return out;
}

QuorumClient::VerifyResult QuorumClient::wait_committed(
    core::ElementId id, const std::function<bool()>& pump, int max_rounds) {
  VerifyResult v = verify(id);
  for (int round = 0; round < max_rounds && !v.committed; ++round) {
    const bool progressed = pump ? pump() : false;
    v = verify(id);
    if (!progressed && !v.committed) break;
  }
  return v;
}

QuorumClient make_quorum_client(std::vector<ISetchainNode*> nodes,
                                const crypto::Pki& pki, std::uint32_t f,
                                core::Fidelity fidelity, WritePolicy policy,
                                std::size_t primary) {
  QuorumClient::Config cfg;
  cfg.f = f;
  cfg.write_policy = policy;
  cfg.primary = primary;
  cfg.fidelity = fidelity;
  return QuorumClient(std::move(nodes), pki, cfg);
}

}  // namespace setchain::api
