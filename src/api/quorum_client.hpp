#pragma once

#include <cstdint>
#include <functional>
#include <iterator>
#include <unordered_set>
#include <vector>

#include "api/node.hpp"
#include "crypto/pki.hpp"

namespace setchain::api {

/// How an add() is fanned out across the client's node set.
enum class WritePolicy : std::uint8_t {
  kPrimary,  ///< one node (the primary), failing over past refusals
  kQuorum,   ///< f+1 distinct nodes must accept
  kAll,      ///< broadcast to every node (the paper's Byzantine-client-proof
             ///< submission: at least one correct server receives it)
};

/// Client-side health verdict for one node, learned from its responses.
enum class NodeStatus : std::uint8_t {
  kOk,
  /// Refused a kPrimary add that a failover target then accepted. Only the
  /// primary walk assigns blame: under kQuorum/kAll broadcast a refusal is
  /// routinely just "already known" and says nothing about the node.
  kRefusing,
  kEquivocating,  ///< reported an epoch that contradicts the f+1 quorum
};

/// The paper's quorum-based Setchain client (§2: the datatype is defined
/// through add/get plus epoch-proof commit checks, and a client trusts no
/// single server). A QuorumClient owns handles to n nodes of which at most
/// f are Byzantine:
///
/// * `add(e)` is fanned out according to the WritePolicy, failing over past
///   nodes that refuse.
/// * `get()` reconstructs the consolidated view epoch by epoch, adopting an
///   epoch only when f+1 nodes report an identical (hash, contents) record —
///   so at least one correct server vouches for it. Nodes contradicting an
///   adopted quorum record are masked as equivocating from then on.
/// * `verify(id)` commits an element only on f+1 valid epoch-proofs from
///   distinct signing servers, gathered across ALL nodes' proof stores — no
///   single server needs to hold (or can fake) the committing proof set.
///
/// Nodes are accessed through ISetchainNode only: in-process servers today,
/// remote stubs tomorrow, Byzantine wrappers in tests.
class QuorumClient {
 public:
  struct Config {
    std::uint32_t f = 1;  ///< Byzantine bound; quorum threshold is f+1
    WritePolicy write_policy = WritePolicy::kPrimary;
    std::size_t primary = 0;  ///< first node tried for kPrimary/kQuorum adds
    core::Fidelity fidelity = core::Fidelity::kFull;
  };

  /// `pki` must outlive the client. Quorum reads need nodes.size() >= f+1.
  QuorumClient(std::vector<ISetchainNode*> nodes, const crypto::Pki& pki, Config cfg);

  struct AddResult {
    std::size_t accepted = 0;   ///< nodes that accepted the element
    std::size_t attempted = 0;  ///< nodes offered the element
    bool ok = false;            ///< the write policy's threshold was met
  };
  /// S.add(e) under the configured WritePolicy. Threshold for `ok`:
  /// kPrimary >= 1 accept within f+1 attempts (that set provably contains
  /// a correct server, so walking further only spreads load from bad
  /// elements), kQuorum >= f+1 accepts, kAll >= 1 accept after offering
  /// everyone. A refusal may mean "invalid", "already known", or "node
  /// down/unreachable" — only the kPrimary failover walk assigns blame
  /// (kRefusing) since broadcast refusals are routinely just duplicates.
  /// ok==true is NOT commitment: that is verify()'s f+1-proof check.
  AddResult add(core::Element e);

  /// Client-side consolidated view: exactly the epochs with f+1 agreement.
  struct View {
    std::vector<core::EpochRecord> history;  ///< epochs 1..epoch, adopted copies
    std::unordered_set<core::ElementId> the_set;  ///< union of history contents
    std::uint64_t epoch = 0;         ///< last epoch with an f+1 quorum
    std::size_t masked_nodes = 0;    ///< nodes currently masked as equivocating
  };
  /// Quorum read: snapshots every non-masked node, then adopts epochs in
  /// order while f+1 nodes report an IDENTICAL (hash, contents) record —
  /// at most f are Byzantine, so each adopted record carries a correct
  /// server's word. Stops at the first epoch without such a quorum (a
  /// trailing epoch still consolidating is simply not visible yet). Nodes
  /// contradicting an adopted record — or serving a structurally bogus
  /// history — are masked as equivocating for the lifetime of this client;
  /// down/unreachable nodes just don't vote and are NOT masked (they may
  /// recover). With more than f nodes unreachable the view legitimately
  /// shrinks to the epochs that still muster f+1.
  View get();

  struct VerifyResult {
    bool in_epoch = false;
    std::uint64_t epoch = 0;
    std::size_t valid_proofs = 0;   ///< distinct servers with a valid proof
    std::size_t proof_sources = 0;  ///< distinct nodes that supplied one
    bool committed = false;         ///< in_epoch && valid_proofs >= f+1
  };
  /// Commit check for one element against the quorum view. Proofs are
  /// validated against the f+1-agreed epoch hash, so a Byzantine node can
  /// neither sneak a proof for a fake epoch in nor suppress the quorum;
  /// each signing server counts once no matter how many nodes relay its
  /// proof. committed==true needs f+1 valid proofs from DISTINCT signers,
  /// gathered across ALL non-masked nodes — correct by the f bound even
  /// when no single server holds a committing set. in_epoch==false means
  /// the element has not reached any f+1-agreed epoch yet (or never will:
  /// a refused/invalid element looks the same — poll wait_committed to
  /// distinguish "not yet" from "never" within a bounded wait).
  VerifyResult verify(core::ElementId id);

  /// Poll verify(id) until committed, calling `pump` between attempts to
  /// make progress (seal a ledger block, advance the simulation, sleep a
  /// beat of wall time against a live cluster, ...). Stops early when
  /// pump() reports no more progress is possible, so a dead deployment
  /// returns promptly instead of burning max_rounds.
  VerifyResult wait_committed(core::ElementId id, const std::function<bool()>& pump,
                              int max_rounds = 60);

  std::size_t node_count() const { return nodes_.size(); }
  /// Health verdict learned from node i's past responses: kRefusing from a
  /// kPrimary failover walk, kEquivocating once its word contradicted an
  /// f+1 quorum (permanent for this client's lifetime — an equivocator is
  /// provably faulty, not slow).
  NodeStatus node_status(std::size_t i) const { return status_[i]; }
  /// The f+1 threshold every read/commit decision uses.
  std::uint32_t quorum() const { return cfg_.f + 1; }
  const Config& config() const { return cfg_; }

 private:
  std::vector<ISetchainNode*> nodes_;
  const crypto::Pki* pki_;
  Config cfg_;
  std::vector<NodeStatus> status_;
};

/// Assemble a QuorumClient from an explicit node list — the one place that
/// fills in a Config, shared by Experiment, the examples, and tests.
QuorumClient make_quorum_client(std::vector<ISetchainNode*> nodes,
                                const crypto::Pki& pki, std::uint32_t f,
                                core::Fidelity fidelity,
                                WritePolicy policy = WritePolicy::kPrimary,
                                std::size_t primary = 0);

/// Same, over any container of server pointers (raw or smart) whose
/// pointees implement ISetchainNode.
template <typename Servers>
QuorumClient make_quorum_client(const Servers& servers, const crypto::Pki& pki,
                                std::uint32_t f, core::Fidelity fidelity,
                                WritePolicy policy = WritePolicy::kPrimary,
                                std::size_t primary = 0) {
  std::vector<ISetchainNode*> nodes;
  nodes.reserve(std::size(servers));
  for (const auto& s : servers) nodes.push_back(&*s);
  return make_quorum_client(std::move(nodes), pki, f, fidelity, policy, primary);
}

}  // namespace setchain::api
