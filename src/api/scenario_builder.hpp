#pragma once

#include <string_view>

#include "runner/scenario.hpp"

namespace setchain::api {

/// Fluent front end for runner::Scenario — deployment descriptions read as a
/// sentence instead of brace-initialized field soup, and build() refuses to
/// hand out a scenario that Scenario::validate() rejects:
///
///   auto scenario = api::ScenarioBuilder()
///                       .algorithm(runner::Algorithm::kHashchain)
///                       .servers(10)
///                       .faults(3)
///                       .rate(10'000)
///                       .add_seconds(50)
///                       .build();
class ScenarioBuilder {
 public:
  ScenarioBuilder& algorithm(runner::Algorithm a);
  /// By name ("vanilla" / "compresschain" / "hashchain", case-insensitive);
  /// unknown names surface as a build() error.
  ScenarioBuilder& algorithm(std::string_view name);

  ScenarioBuilder& servers(std::uint32_t n);
  /// Byzantine bound f used for every f+1 threshold. Values above
  /// floor((n-1)/3) are rejected at build().
  ScenarioBuilder& faults(std::uint32_t f);
  ScenarioBuilder& rate(double el_per_s);
  ScenarioBuilder& collector(std::uint32_t entries);
  ScenarioBuilder& network_delay_ms(double ms);
  ScenarioBuilder& add_seconds(double s);
  ScenarioBuilder& horizon_seconds(double s);
  ScenarioBuilder& block(double interval_s, std::uint64_t bytes);
  ScenarioBuilder& committee(std::uint32_t k);
  ScenarioBuilder& hash_reversal(bool on);
  ScenarioBuilder& validate_batches(bool on);
  ScenarioBuilder& fidelity(core::Fidelity f);
  ScenarioBuilder& full_fidelity() { return fidelity(core::Fidelity::kFull); }
  ScenarioBuilder& lean_state(bool on = true);
  ScenarioBuilder& per_element_metrics(bool on = true);
  ScenarioBuilder& track_ids(bool on = true);
  ScenarioBuilder& seed(std::uint64_t seed);

  // Fault injection (repeatable; node indices are checked at build()).
  ScenarioBuilder& byzantine_silent_proposer(std::uint32_t node);
  ScenarioBuilder& byzantine_refuse_batch(std::uint32_t node);
  ScenarioBuilder& byzantine_corrupt_proofs(std::uint32_t node);
  ScenarioBuilder& byzantine_fake_hashes(std::uint32_t node);
  ScenarioBuilder& client_invalid_fraction(double fraction);
  ScenarioBuilder& clients_duplicate_to_all(bool on = true);

  // Network/process fault schedule (repeatable; validated at build()).
  // Times are seconds of sim time; `sim::kAnyNode` is the link wildcard.
  /// Append an arbitrary pre-built fault.
  ScenarioBuilder& fault(sim::Fault f);
  /// Drop each from->to message with `probability` during [start_s, end_s).
  ScenarioBuilder& fault_drop(sim::NodeId from, sim::NodeId to, double probability,
                              double start_s, double end_s);
  /// Cut `group` off from the rest of the cluster during [start_s, heal_s);
  /// `symmetric=false` cuts only the group's outbound direction.
  ScenarioBuilder& fault_partition(std::vector<sim::NodeId> group, double start_s,
                                   double heal_s, bool symmetric = true);
  /// Add `extra_ms` to every message during [start_s, end_s).
  ScenarioBuilder& fault_delay(double extra_ms, double start_s, double end_s);
  /// Crash `node` at start_s; restart at restart_s (pass
  /// `ScenarioBuilder::kNoRestart` to keep it down), optionally wiping its
  /// consolidated state (rebuilt from the ledger on restart).
  static constexpr double kNoRestart = -1.0;
  ScenarioBuilder& fault_crash(sim::NodeId node, double start_s,
                               double restart_s = kNoRestart, bool wipe = false);

  /// Validated scenario; throws std::invalid_argument listing every violated
  /// constraint (f > (n-1)/3, zero rates, committee > n, ...).
  runner::Scenario build() const;

  /// The scenario as accumulated so far, unvalidated (for introspection).
  const runner::Scenario& peek() const { return scenario_; }

 private:
  runner::Scenario scenario_;
  std::string bad_algorithm_;  ///< unparseable algorithm name, reported at build()
};

}  // namespace setchain::api
