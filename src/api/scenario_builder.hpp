#pragma once

#include <string_view>

#include "runner/scenario.hpp"

namespace setchain::api {

/// Fluent front end for runner::Scenario — deployment descriptions read as a
/// sentence instead of brace-initialized field soup, and build() refuses to
/// hand out a scenario that Scenario::validate() rejects:
///
///   auto scenario = api::ScenarioBuilder()
///                       .algorithm(runner::Algorithm::kHashchain)
///                       .servers(10)
///                       .faults(3)
///                       .rate(10'000)
///                       .add_seconds(50)
///                       .build();
class ScenarioBuilder {
 public:
  ScenarioBuilder& algorithm(runner::Algorithm a);
  /// By name ("vanilla" / "compresschain" / "hashchain", case-insensitive);
  /// unknown names surface as a build() error.
  ScenarioBuilder& algorithm(std::string_view name);

  /// Cluster size n (the paper's server_count). build() rejects 0.
  ScenarioBuilder& servers(std::uint32_t n);
  /// Byzantine bound f used for every f+1 threshold — quorum reads, commit
  /// proofs, hash-batch consolidation. Values above floor((n-1)/3), the
  /// bound the CometBFT deployment actually tolerates, are rejected at
  /// build(); defaults to that bound when never set.
  ScenarioBuilder& faults(std::uint32_t f);
  /// Total client sending rate (elements/second across the cluster).
  /// Non-positive rates are rejected at build().
  ScenarioBuilder& rate(double el_per_s);
  /// Collector size (entries) for Compresschain/Hashchain batch formation;
  /// a smaller collector fills (and consolidates) faster at more ledger
  /// traffic per element. Ignored by Vanilla.
  ScenarioBuilder& collector(std::uint32_t entries);
  /// Artificial one-way delay added to every message (Table 1's
  /// network_delay WAN-emulation knob).
  ScenarioBuilder& network_delay_ms(double ms);
  /// How long clients keep adding. Liveness properties are asserted only
  /// for elements accepted in this window.
  ScenarioBuilder& add_seconds(double s);
  /// Hard stop for the run: traffic still in flight at the horizon is
  /// abandoned, so drain-sensitive checks need horizon >> add window
  /// (fault scenarios need recovery slack too).
  ScenarioBuilder& horizon_seconds(double s);
  /// Ledger pacing: proposal interval and maximum block payload bytes.
  ScenarioBuilder& block(double interval_s, std::uint64_t bytes);
  /// Live-deployment ordering mode: a fixed sequencer (fast, no fail-over)
  /// or wire-level consensus (any f crashed nodes tolerated). The DES
  /// Experiment path models its own ledger and ignores this knob.
  ScenarioBuilder& ledger_mode(runner::LedgerMode m);
  /// By name ("sequencer" / "consensus", case-insensitive); unknown names
  /// surface as a build() error.
  ScenarioBuilder& ledger_mode(std::string_view name);
  /// Hashchain signer committee size (0 = every server co-signs, the
  /// paper's evaluated variant). Values below f+1 are clamped up to f+1 —
  /// consolidation requires f+1 signatures. Larger than n is rejected.
  ScenarioBuilder& committee(std::uint32_t k);
  /// Hashchain hash-reversal service on/off. Off = the "Light" ablation,
  /// which assumes ALL servers correct: build() rejects combining it with
  /// a fault plan or Byzantine servers.
  ScenarioBuilder& hash_reversal(bool on);
  /// Compresschain receive-side decompress+validate on/off (off = the
  /// "Light" ablation; trusts peers, for throughput ceilings only).
  ScenarioBuilder& validate_batches(bool on);
  /// kFull = real crypto/bytes end to end; kCalibrated = virtual payloads
  /// with calibrated CPU charges (high-rate sweeps). Conformance and
  /// Byzantine tests want kFull so forged signatures actually fail.
  ScenarioBuilder& fidelity(core::Fidelity f);
  ScenarioBuilder& full_fidelity() { return fidelity(core::Fidelity::kFull); }
  /// Drop per-element set bookkeeping (highest-rate sweeps). Disables the
  /// id-level invariant checks — the workload guarantees uniqueness.
  ScenarioBuilder& lean_state(bool on = true);
  /// Record per-element stage latencies (Fig. 4 CDFs); costs host memory.
  ScenarioBuilder& per_element_metrics(bool on = true);
  /// Keep accepted/created id lists — required by the liveness invariant
  /// checks (P2-P4, P7) and the quorum-read tests.
  ScenarioBuilder& track_ids(bool on = true);
  /// Master seed: PKI keys, workload, network jitter, and the fault
  /// injector all derive from it, so (scenario, seed) replays exactly.
  ScenarioBuilder& seed(std::uint64_t seed);

  // Application-level Byzantine behaviours (repeatable; node indices are
  // checked at build()). Byzantine servers forfeit every guarantee: the
  // property checkers and `Experiment::correct_servers()` exclude them,
  // and the f bound caps how many a scenario may configure meaningfully.
  /// Ledger node `node` never proposes; consensus round-skips past it.
  ScenarioBuilder& byzantine_silent_proposer(std::uint32_t node);
  /// Server `node` silently drops Request_batch service calls; fetchers
  /// time out and retry other signers (f+1 signers include a correct one).
  ScenarioBuilder& byzantine_refuse_batch(std::uint32_t node);
  /// Server `node` signs wrong epoch hashes; its proofs fail validation
  /// everywhere and never count toward the f+1 commit threshold.
  ScenarioBuilder& byzantine_corrupt_proofs(std::uint32_t node);
  /// Hashchain server `node` pairs every real announcement with a fake
  /// hash nobody can reverse; correct servers must not stall on it.
  ScenarioBuilder& byzantine_fake_hashes(std::uint32_t node);
  /// Fraction of client elements created with bad signatures — correct
  /// servers refuse them (they never enter the_set or any epoch).
  ScenarioBuilder& client_invalid_fraction(double fraction);
  /// Clients offer every element to ALL servers (the paper's
  /// Byzantine-client-proof submission). Required for full liveness under
  /// crash faults: an element held only by a crashing server's collector
  /// dies with it otherwise.
  ScenarioBuilder& clients_duplicate_to_all(bool on = true);

  // Network/process fault schedule (repeatable; validated at build()).
  // Times are seconds of sim time; `sim::kAnyNode` is the link wildcard.
  /// Append an arbitrary pre-built fault.
  ScenarioBuilder& fault(sim::Fault f);
  /// Drop each from->to message with `probability` during [start_s, end_s).
  ScenarioBuilder& fault_drop(sim::NodeId from, sim::NodeId to, double probability,
                              double start_s, double end_s);
  /// Cut `group` off from the rest of the cluster during [start_s, heal_s);
  /// `symmetric=false` cuts only the group's outbound direction.
  ScenarioBuilder& fault_partition(std::vector<sim::NodeId> group, double start_s,
                                   double heal_s, bool symmetric = true);
  /// Add `extra_ms` to every message during [start_s, end_s).
  ScenarioBuilder& fault_delay(double extra_ms, double start_s, double end_s);
  /// Crash `node` at start_s; restart at restart_s (pass
  /// `ScenarioBuilder::kNoRestart` to keep it down), optionally wiping its
  /// consolidated state (rebuilt from the ledger on restart).
  static constexpr double kNoRestart = -1.0;
  ScenarioBuilder& fault_crash(sim::NodeId node, double start_s,
                               double restart_s = kNoRestart, bool wipe = false);

  /// Validated scenario; throws std::invalid_argument listing every violated
  /// constraint (f > (n-1)/3, zero rates, committee > n, ...).
  runner::Scenario build() const;

  /// The scenario as accumulated so far, unvalidated (for introspection).
  const runner::Scenario& peek() const { return scenario_; }

 private:
  runner::Scenario scenario_;
  std::string bad_algorithm_;    ///< unparseable algorithm name, reported at build()
  std::string bad_ledger_mode_;  ///< unparseable ledger mode, reported at build()
};

}  // namespace setchain::api
