#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/element.hpp"
#include "core/epoch_record.hpp"
#include "core/proofs.hpp"

namespace setchain::api {

/// S.get_v(): (the_set, history, epoch, proofs) — views into one node's live
/// state. Pointers stay valid only while the node is alive and unmodified;
/// quorum-reading clients copy what they adopt.
struct NodeSnapshot {
  const std::unordered_set<core::ElementId>* the_set = nullptr;
  const std::vector<core::EpochRecord>* history = nullptr;  ///< [i] = epoch i+1
  std::uint64_t epoch = 0;
  /// Raw per-epoch proof store, indexed epoch-1 like `history`. Prefer the
  /// bounds-checked ISetchainNode::proofs_for_epoch() accessor, which owns
  /// the index convention.
  const std::vector<std::vector<core::EpochProof>>* proofs = nullptr;
};

/// The client-facing surface of one Setchain server — the datatype API the
/// paper specifies (add / get / epoch-proofs), abstracted away from concrete
/// server classes. `SetchainServer` implements it in-process;
/// `net::RemoteNode` implements it over a socket against a live cluster.
/// Everything client-shaped (QuorumClient, examples, light-client checks)
/// talks to this interface only, so a node here may equally be a correct
/// server, a Byzantine wrapper in a test, or a remote stub.
///
/// Failure semantics, uniform across implementations: a node that is down,
/// crashed, or unreachable (an RPC timeout on a remote stub) REFUSES adds
/// and serves empty reads — indistinguishable from a silent Byzantine
/// server, which is exactly why no caller may trust one node. Quorum
/// callers (QuorumClient) tolerate up to f nodes behaving this way per
/// operation.
class ISetchainNode {
 public:
  virtual ~ISetchainNode() = default;

  /// S.add_v(e). False when the element is invalid (bad signature,
  /// malformed), already known to this node, or the node is down /
  /// unreachable — acceptance by ONE node is no commitment (the element
  /// may still die with that node's collector; broadcast policies and the
  /// f+1 commit check exist for exactly that reason).
  virtual bool add(core::Element e) = 0;

  /// S.get_v(). Untrusted: a Byzantine node may return anything, so a
  /// client must reconcile snapshots across f+1 nodes before believing a
  /// record (QuorumClient::get does). Down/unreachable nodes serve empty
  /// views (null pointers, epoch 0). Remote stubs return views into their
  /// own caches, valid until the next snapshot() call on the same stub.
  virtual NodeSnapshot snapshot() const = 0;

  /// Epoch-proofs this node holds for epoch `epoch_number` (1-based, the
  /// paper's numbering). Bounds-checked: epoch 0, an epoch this node has
  /// not consolidated yet, or a down/unreachable node yields an empty
  /// list. This accessor is the single owner of the "epoch i lives at
  /// index i-1" convention. Any single node's proof store may be partial
  /// or fake — commit decisions need f+1 VALID proofs from distinct
  /// signers, validated against the quorum-agreed epoch hash, gathered
  /// across all nodes (QuorumClient::verify).
  virtual const std::vector<core::EpochProof>& proofs_for_epoch(
      std::uint64_t epoch_number) const = 0;

  /// Number of epochs this node has consolidated; 0 when down/unreachable.
  /// An honest-but-slow node legitimately trails the cluster, and a
  /// Byzantine one may claim anything — never a commit signal by itself.
  virtual std::uint64_t epoch() const = 0;

  /// The server's process id in the PKI (who signs its epoch-proofs).
  virtual crypto::ProcessId node_id() const = 0;
};

}  // namespace setchain::api
