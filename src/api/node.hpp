#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/element.hpp"
#include "core/epoch_record.hpp"
#include "core/proofs.hpp"

namespace setchain::api {

/// S.get_v(): (the_set, history, epoch, proofs) — views into one node's live
/// state. Pointers stay valid only while the node is alive and unmodified;
/// quorum-reading clients copy what they adopt.
struct NodeSnapshot {
  const std::unordered_set<core::ElementId>* the_set = nullptr;
  const std::vector<core::EpochRecord>* history = nullptr;  ///< [i] = epoch i+1
  std::uint64_t epoch = 0;
  /// Raw per-epoch proof store, indexed epoch-1 like `history`. Prefer the
  /// bounds-checked ISetchainNode::proofs_for_epoch() accessor, which owns
  /// the index convention.
  const std::vector<std::vector<core::EpochProof>>* proofs = nullptr;
};

/// The client-facing surface of one Setchain server — the datatype API the
/// paper specifies (add / get / epoch-proofs), abstracted away from concrete
/// server classes. `SetchainServer` implements it in-process; a future
/// transport backend implements it over a socket. Everything client-shaped
/// (QuorumClient, examples, light-client checks) talks to this interface
/// only, so a node here may equally be a correct server, a Byzantine
/// wrapper in a test, or a remote stub.
class ISetchainNode {
 public:
  virtual ~ISetchainNode() = default;

  /// S.add_v(e). False when the element is invalid or already known.
  virtual bool add(core::Element e) = 0;

  /// S.get_v(). Untrusted: a Byzantine node may return anything.
  virtual NodeSnapshot snapshot() const = 0;

  /// Epoch-proofs this node holds for epoch `epoch_number` (1-based, the
  /// paper's numbering). Bounds-checked: epoch 0 or an epoch this node has
  /// not consolidated yet yields an empty list. This accessor is the single
  /// owner of the "epoch i lives at index i-1" convention.
  virtual const std::vector<core::EpochProof>& proofs_for_epoch(
      std::uint64_t epoch_number) const = 0;

  /// Number of epochs this node has consolidated.
  virtual std::uint64_t epoch() const = 0;

  /// The server's process id in the PKI (who signs its epoch-proofs).
  virtual crypto::ProcessId node_id() const = 0;
};

}  // namespace setchain::api
