#include "api/scenario_builder.hpp"

#include <stdexcept>

namespace setchain::api {

ScenarioBuilder& ScenarioBuilder::algorithm(runner::Algorithm a) {
  scenario_.algorithm = a;
  bad_algorithm_.clear();
  return *this;
}

ScenarioBuilder& ScenarioBuilder::algorithm(std::string_view name) {
  if (const auto a = runner::parse_algorithm(name)) {
    scenario_.algorithm = *a;
    bad_algorithm_.clear();
  } else {
    bad_algorithm_ = std::string(name);
  }
  return *this;
}

ScenarioBuilder& ScenarioBuilder::servers(std::uint32_t n) {
  scenario_.n = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::faults(std::uint32_t f) {
  scenario_.f = f;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::rate(double el_per_s) {
  scenario_.sending_rate = el_per_s;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::collector(std::uint32_t entries) {
  scenario_.collector_limit = entries;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::network_delay_ms(double ms) {
  scenario_.network_delay = sim::from_millis(ms);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::add_seconds(double s) {
  scenario_.add_duration = sim::from_seconds(s);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::horizon_seconds(double s) {
  scenario_.horizon = sim::from_seconds(s);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::block(double interval_s, std::uint64_t bytes) {
  scenario_.block_interval = sim::from_seconds(interval_s);
  scenario_.block_bytes = bytes;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::ledger_mode(runner::LedgerMode m) {
  scenario_.ledger_mode = m;
  bad_ledger_mode_.clear();
  return *this;
}

ScenarioBuilder& ScenarioBuilder::ledger_mode(std::string_view name) {
  if (const auto m = runner::parse_ledger_mode(name)) {
    scenario_.ledger_mode = *m;
    bad_ledger_mode_.clear();
  } else {
    bad_ledger_mode_ = std::string(name);
  }
  return *this;
}

ScenarioBuilder& ScenarioBuilder::committee(std::uint32_t k) {
  scenario_.hashchain_committee = k;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::hash_reversal(bool on) {
  scenario_.hash_reversal = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::validate_batches(bool on) {
  scenario_.validate_batches = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fidelity(core::Fidelity f) {
  scenario_.fidelity = f;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::lean_state(bool on) {
  scenario_.lean_state = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::per_element_metrics(bool on) {
  scenario_.per_element_metrics = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::track_ids(bool on) {
  scenario_.track_ids = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t seed) {
  scenario_.seed = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::byzantine_silent_proposer(std::uint32_t node) {
  scenario_.byz_silent_proposers.push_back(node);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::byzantine_refuse_batch(std::uint32_t node) {
  scenario_.byz_refuse_batch.push_back(node);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::byzantine_corrupt_proofs(std::uint32_t node) {
  scenario_.byz_corrupt_proofs.push_back(node);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::byzantine_fake_hashes(std::uint32_t node) {
  scenario_.byz_fake_hashes.push_back(node);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::client_invalid_fraction(double fraction) {
  scenario_.client_invalid_fraction = fraction;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::clients_duplicate_to_all(bool on) {
  scenario_.clients_duplicate_to_all = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fault(sim::Fault f) {
  scenario_.faults.faults.push_back(std::move(f));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fault_drop(sim::NodeId from, sim::NodeId to,
                                             double probability, double start_s,
                                             double end_s) {
  return fault(sim::Fault::drop(from, to, probability, sim::from_seconds(start_s),
                                sim::from_seconds(end_s)));
}

ScenarioBuilder& ScenarioBuilder::fault_partition(std::vector<sim::NodeId> group,
                                                  double start_s, double heal_s,
                                                  bool symmetric) {
  return fault(sim::Fault::partition(std::move(group), sim::from_seconds(start_s),
                                     sim::from_seconds(heal_s), symmetric));
}

ScenarioBuilder& ScenarioBuilder::fault_delay(double extra_ms, double start_s,
                                              double end_s) {
  return fault(sim::Fault::delay_spike(sim::from_millis(extra_ms),
                                       sim::from_seconds(start_s),
                                       sim::from_seconds(end_s)));
}

ScenarioBuilder& ScenarioBuilder::fault_crash(sim::NodeId node, double start_s,
                                              double restart_s, bool wipe) {
  const sim::Time restart =
      restart_s < 0 ? sim::kNeverHeals : sim::from_seconds(restart_s);
  return fault(sim::Fault::crash(node, sim::from_seconds(start_s), restart, wipe));
}

runner::Scenario ScenarioBuilder::build() const {
  if (!bad_algorithm_.empty()) {
    throw std::invalid_argument("invalid scenario:\n  - unknown algorithm '" +
                                bad_algorithm_ +
                                "' (expected vanilla, compresschain, or hashchain)");
  }
  if (!bad_ledger_mode_.empty()) {
    throw std::invalid_argument("invalid scenario:\n  - unknown ledger mode '" +
                                bad_ledger_mode_ +
                                "' (expected sequencer or consensus)");
  }
  return runner::throw_if_invalid(scenario_);
}

}  // namespace setchain::api
