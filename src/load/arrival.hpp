#pragma once

#include <cstdint>

#include "sim/rng.hpp"

namespace setchain::load {

/// Arrival-process shapes for open-loop load generation.
enum class ArrivalKind : std::uint8_t {
  kUniform,  ///< deterministic fixed inter-arrival gap (1/rate)
  kPoisson,  ///< exponential gaps — the classic open-loop client model
  kBurst,    ///< Poisson alternating base-rate / burst-rate phases
};

const char* arrival_kind_name(ArrivalKind k);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Target arrivals/second across the WHOLE fleet (not per session).
  /// 0 disables the schedule: the fleet runs closed-loop, windows kept full.
  double rate = 0;
  /// kBurst phase lengths: the process alternates `burst_on_s` seconds at
  /// `burst_rate` with `burst_off_s` seconds at `rate`, starting bursty.
  double burst_on_s = 1.0;
  double burst_off_s = 4.0;
  /// Rate during the burst phase; 0 means 4x the base rate.
  double burst_rate = 0;
  std::uint64_t seed = 1;
};

/// Generates the absolute arrival schedule for one load phase: next()
/// returns nondecreasing offsets in seconds from the phase start. The
/// schedule depends only on the config (seeded RNG), never on responses —
/// that independence is what makes the harness open-loop: a slow server
/// cannot slow down the offered load, it can only grow its own queue.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalConfig& cfg);

  bool open_loop() const { return cfg_.rate > 0; }

  /// Next arrival offset (seconds from phase start). Only meaningful when
  /// open_loop(); closed-loop phases never consult the schedule.
  double next();

 private:
  /// Offered rate at offset `t` (piecewise-constant for kBurst).
  double rate_at(double t) const;
  /// End of the constant-rate segment containing `t` (inf for non-burst).
  double segment_end(double t) const;

  ArrivalConfig cfg_;
  sim::Rng rng_;
  double t_ = 0;
};

}  // namespace setchain::load
