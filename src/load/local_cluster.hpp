#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "load/fleet.hpp"
#include "net/node_host.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"

namespace setchain::load {

/// An in-process n-node cluster over real TCP — the exact NodeHost /
/// TcpTransport stack the daemon runs, with one realtime pump thread per
/// node. Lifted from the bench's ad-hoc cluster so the bench, the loadgen
/// CLI, and the load/rollup test tiers all boot the identical topology.
class LocalCluster {
 public:
  /// `cfg.id` is ignored (each node gets its own); listen ports are
  /// ephemeral — read them back via targets()/port().
  explicit LocalCluster(const net::NodeHostConfig& cfg);
  ~LocalCluster();
  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  void start();
  void shutdown();

  std::uint32_t nodes() const { return cfg_.n; }
  std::uint64_t cluster_id() const { return cluster_; }
  const net::NodeHostConfig& config() const { return cfg_; }
  std::uint16_t port(std::uint32_t i) const { return transports_[i]->listen_port(); }
  /// Client-facing addresses, FleetConfig-ready.
  std::vector<Target> targets() const;

  net::NodeHost& host(std::uint32_t i) { return *hosts_[i]; }
  const net::NodeHost& host(std::uint32_t i) const { return *hosts_[i]; }

  /// Transport counters summed across nodes (drops/decode errors feed the
  /// post-run health checks).
  net::ITransport::Counters counters_total() const;

 private:
  net::NodeHostConfig cfg_;
  std::uint64_t cluster_ = 0;
  std::vector<std::unique_ptr<sim::Simulation>> sims_;
  std::vector<std::unique_ptr<net::TcpTransport>> transports_;
  std::vector<std::unique_ptr<net::NodeHost>> hosts_;
  std::vector<std::thread> pumps_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
};

}  // namespace setchain::load
