#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "codec/bytes.hpp"
#include "core/element.hpp"
#include "load/arrival.hpp"
#include "net/wire.hpp"
#include "util/latency_recorder.hpp"

namespace setchain::load {

/// One node's client-facing address.
struct Target {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Supplies the elements a fleet offers. next(session) hands out the next
/// element for one session, or nullptr when that session's supply is
/// exhausted. Called only from the fleet thread; returned pointers must stay
/// valid until the phase ends (sources hold pre-generated pools).
class IElementSource {
 public:
  virtual ~IElementSource() = default;
  virtual const core::Element* next(std::uint32_t session) = 0;
};

/// Pre-generated element pool striped across sessions: session s consumes
/// pool[s], pool[s + stride], ... so every element is offered at most once
/// and per-client (id) sequence order is preserved within a session.
class PooledElementSource final : public IElementSource {
 public:
  PooledElementSource(const std::vector<core::Element>& pool,
                      std::uint32_t sessions);
  const core::Element* next(std::uint32_t session) override;
  std::uint64_t consumed() const { return consumed_; }

 private:
  const std::vector<core::Element>& pool_;
  std::size_t stride_;
  std::vector<std::size_t> cursor_;
  std::uint64_t consumed_ = 0;
};

struct FleetConfig {
  std::vector<Target> targets;  ///< node addresses; session i pins to i % size
  std::uint64_t cluster = 0;    ///< cluster_id() for the Hello handshake
  std::uint32_t sessions = 64;
  /// Max in-flight (unacked) requests per session — the local memory bound.
  std::uint32_t window = 64;
  /// Max queued-but-unsent arrivals per session before the fleet sheds the
  /// arrival (counted, never silently dropped): bounds generator memory when
  /// the cluster falls behind an open-loop schedule.
  std::uint32_t max_pending = 1024;
  /// Sessions dialed concurrently during connect() — bounds SYN pressure on
  /// the nodes' accept queues when the fleet is thousands strong.
  std::uint32_t connect_batch = 256;
  double connect_timeout_s = 20.0;
  /// Post-phase grace window collecting in-flight acks (tail latency).
  double drain_s = 1.5;
};

/// Everything one load phase measured. Accounting identities (pinned by
/// tests): offered == sent + shed + pending_end, sent == acked + in_flight_end
/// when every session survived (dead sessions abandon their in-flight).
struct PhaseStats {
  double wall_s = 0;
  std::uint64_t offered = 0;   ///< arrivals the schedule produced
  std::uint64_t shed = 0;      ///< arrivals dropped at a full pending queue
  std::uint64_t sent = 0;      ///< requests written to a socket
  std::uint64_t acked = 0;     ///< responses matched to a request
  std::uint64_t accepted = 0;  ///< acks with accepted == true
  std::uint64_t io_errors = 0;      ///< sessions lost to socket errors / EOF
  std::uint64_t decode_errors = 0;  ///< sessions lost to framing errors
  std::uint64_t pending_end = 0;    ///< arrivals still queued at phase end
  std::uint64_t in_flight_end = 0;  ///< requests never acked by drain end
  std::uint64_t queue_peak = 0;     ///< max per-session pending backlog seen
  std::uint64_t outbuf_peak = 0;    ///< max per-session unsent bytes seen
  std::uint32_t sessions_alive = 0;
  /// Schedule-to-ack latency, microseconds (open loop charges queueing
  /// delay behind a saturated cluster to the cluster, as it should).
  util::LatencyRecorder latency_us;
};

/// An open-loop client fleet: N concurrent QuorumClient-equivalent add
/// sessions over real TCP sockets, all multiplexed on ONE epoll loop and
/// driven by the calling thread. The generator must scale better than the
/// system under test — an event loop keeps its thread count at 1 and its
/// memory at O(sessions), where thread-per-client would melt first.
///
/// Lifecycle: connect() dials and handshakes every session (batched),
/// run_phase() drives one measured phase (callable repeatedly for rate
/// curves; sessions persist across phases), close() hangs up.
class LoadFleet {
 public:
  explicit LoadFleet(FleetConfig cfg);
  ~LoadFleet();
  LoadFleet(const LoadFleet&) = delete;
  LoadFleet& operator=(const LoadFleet&) = delete;

  /// Dial every session (connect_batch at a time, nonblocking) and send the
  /// client Hello. Returns the number of sessions that came up.
  std::uint32_t connect();

  /// Drive one phase: schedule arrivals per `arrival` (rate 0 = closed
  /// loop), offer elements from `source`, collect acks, then drain.
  PhaseStats run_phase(IElementSource& source, const ArrivalConfig& arrival,
                       double duration_s);

  void close();
  std::uint32_t sessions_alive() const;

 private:
  struct Session;
  using Clock = std::chrono::steady_clock;

  bool start_dial(Session& s);
  void finish_dial(Session& s);
  void kill(Session& s, PhaseStats* st, bool decode_error);
  /// Push outbuf bytes; false while backpressured (EPOLLOUT armed) or dead.
  bool flush(Session& s, PhaseStats* st);
  void read_acks(Session& s, PhaseStats& st, Clock::time_point now);
  /// Encode+send while window and supply allow. Closed loop keeps the
  /// window full; open loop consumes the session's pending queue.
  void pump(Session& s, IElementSource& source, PhaseStats& st,
            bool closed_loop);
  Session* pick_session();
  void update_interest(Session& s);

  FleetConfig cfg_;
  int epoll_fd_ = -1;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::uint8_t> rbuf_;
  std::size_t rr_ = 0;
  std::uint32_t alive_ = 0;
};

}  // namespace setchain::load
