#include "load/local_cluster.hpp"

#include <string>

namespace setchain::load {

LocalCluster::LocalCluster(const net::NodeHostConfig& cfg) : cfg_(cfg) {
  cluster_ = net::NodeHost::cluster_id_of(cfg_);
  std::vector<std::string> peer_addrs;
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    net::TcpConfig tc;
    tc.self = i;
    tc.n = cfg_.n;
    tc.cluster = cluster_;
    tc.listen_port = 0;
    tc.peers = peer_addrs;
    tc.peers.resize(cfg_.n);
    transports_.push_back(std::make_unique<net::TcpTransport>(tc));
    peer_addrs.push_back("127.0.0.1:" +
                         std::to_string(transports_[i]->listen_port()));
  }
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    net::NodeHostConfig c = cfg_;
    c.id = i;
    sims_.push_back(std::make_unique<sim::Simulation>());
    hosts_.push_back(std::make_unique<net::NodeHost>(c, *sims_[i], *transports_[i]));
  }
}

void LocalCluster::start() {
  if (started_) return;
  started_ = true;
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    hosts_[i]->start();
    transports_[i]->start();
  }
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    pumps_.emplace_back([this, i] { hosts_[i]->run_realtime(stop_); });
  }
}

void LocalCluster::shutdown() {
  if (stop_.exchange(true)) return;
  for (auto& t : pumps_) {
    if (t.joinable()) t.join();
  }
  for (auto& t : transports_) t->stop();
}

LocalCluster::~LocalCluster() { shutdown(); }

std::vector<Target> LocalCluster::targets() const {
  std::vector<Target> out;
  out.reserve(cfg_.n);
  for (std::uint32_t i = 0; i < cfg_.n; ++i) {
    out.push_back(Target{"127.0.0.1", transports_[i]->listen_port()});
  }
  return out;
}

net::ITransport::Counters LocalCluster::counters_total() const {
  net::ITransport::Counters total;
  for (const auto& t : transports_) {
    const auto c = t->counters();
    total.frames_sent += c.frames_sent;
    total.bytes_sent += c.bytes_sent;
    total.frames_received += c.frames_received;
    total.bytes_received += c.bytes_received;
    total.send_drops += c.send_drops;
    total.send_drops_peer += c.send_drops_peer;
    total.send_drops_client += c.send_drops_client;
    total.decode_errors += c.decode_errors;
    total.reconnects += c.reconnects;
    total.send_queue_peak = std::max(total.send_queue_peak, c.send_queue_peak);
  }
  return total;
}

}  // namespace setchain::load
